// dcsr_lint — repo-invariant linter for the dcSR tree (no libclang, just a
// comment/literal-stripping scanner plus regex and brace matching).
//
// The concurrency and determinism contract (ROADMAP "Threading model") is
// prose; this tool is the part of it that can be machine-checked at review
// time. Enforced invariants:
//
//   [threads]       no raw std::thread / std::jthread / std::async outside
//                   the sanctioned sites: the pool itself
//                   (src/util/thread_pool.cpp may use std::thread) and the
//                   segment-lookahead pipeline
//                   (src/core/client_pipeline.cpp may use std::async).
//   [atomic-float]  no std::atomic<float/double/long double> anywhere —
//                   float atomics invite reduction-order races that break
//                   bit-identical-across-thread-counts.
//   [random]        no rand()/srand()/std::random_device outside
//                   src/util/rng.* — all randomness flows through the
//                   deterministic, forkable Rng.
//   [module-infer]  every concrete nn::Module subclass declares
//                   `infer(...) const` — the stateless, concurrency-safe
//                   entry point PR 2 made mandatory.
//   [const-forward] no forward( call inside a `const` member function —
//                   forward() mutates layer caches; const paths must call
//                   infer().
//   [infer-alloc]   no allocating kernel spellings (matmul(, matmul_tn(,
//                   matmul_nt(, matmul*_naive(, im2col() inside an
//                   `infer(...) const` / `infer_into(...) const` body under
//                   src/nn/ — the inference hot path must use the *_into
//                   variants so steady-state playback stays allocation-free
//                   (PR 4's workspace contract).
//   [raw-index]     no raw `.data()[` element access outside src/tensor/ —
//                   pointer arithmetic on the backing store bypasses the
//                   DCSR_BOUNDS_CHECK accessors (PR 5's checked-view
//                   contract). A kernel that has been audited can opt a line
//                   out with a `// dcsr-lint: allow(raw-index)` annotation.
//   [reinterpret]   no reinterpret_cast outside the serialisation boundary
//                   (src/codec/bits.*, src/stream/model_bundle.*,
//                   src/util/file.cpp) — type punning anywhere else defeats
//                   the typed-error hardening of the parse surfaces.
//   [raw-intrinsics] no SIMD intrinsics outside src/simd/ — neither the
//                   vendor headers (<immintrin.h>, <emmintrin.h>,
//                   <x86intrin.h>, <arm_neon.h>, ...) nor the intrinsic
//                   identifiers themselves (_mm_*/_mm256_*/vld1*/vst1*).
//                   Per-ISA code lives behind the dispatch table
//                   (simd/dispatch.hpp) where every kernel is pinned bitwise
//                   against the scalar oracle; an intrinsic anywhere else is
//                   an unpinned, unported fast path.
//   [pragma-once]   every header starts its include guard with #pragma once.
//
// Usage:
//   dcsr_lint <src-root>     scan every .hpp/.cpp under <src-root>
//   dcsr_lint --self-test    run the embedded known-bad/known-good fixtures
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Source preparation.
// ---------------------------------------------------------------------------

// Replaces the contents of comments and string/char literals with spaces,
// preserving every newline so byte offsets map to the original line numbers.
// Handles line/block comments, escape sequences, and raw string literals.
std::string strip_comments_and_literals(const std::string& src) {
  std::string out(src.size(), ' ');
  for (std::size_t i = 0; i < src.size(); ++i)
    if (src[i] == '\n') out[i] = '\n';

  std::size_t i = 0;
  const auto copy = [&](std::size_t at) { out[at] = src[at]; };
  while (i < src.size()) {
    const char c = src[i];
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;  // line comment
    } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      i = std::min(src.size(), i + 2);  // block comment
    } else if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      // Raw string literal R"delim( ... )delim".
      std::size_t p = i + 2;
      std::string delim;
      while (p < src.size() && src[p] != '(') delim += src[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t end = src.find(close, p);
      i = (end == std::string::npos) ? src.size() : end + close.size();
    } else if (c == '"' || c == '\'') {
      // Skip the literal body; keep the delimiters so tokens stay separated.
      copy(i);
      const char q = c;
      ++i;
      while (i < src.size() && src[i] != q) {
        if (src[i] == '\\') ++i;
        ++i;
      }
      if (i < src.size()) copy(i++);
    } else {
      copy(i);
      ++i;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

// Position one past the matching '}' for the '{' at `open`, or npos.
std::size_t match_brace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Rules. Each takes the normalised path, the raw source and the stripped
// source and appends findings.
// ---------------------------------------------------------------------------

void rule_threads(const std::string& path, const std::string& stripped,
                  std::vector<Finding>& findings) {
  static const std::regex re(R"(std::(thread|jthread|async)\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
       it != std::sregex_iterator(); ++it) {
    const std::string token = (*it)[1].str();
    const bool pool_file = path_ends_with(path, "util/thread_pool.cpp");
    const bool pipeline_file = path_ends_with(path, "core/client_pipeline.cpp");
    if (pool_file && (token == "thread" || token == "jthread")) continue;
    if (pipeline_file && token == "async") continue;
    findings.push_back(
        {path, line_of(stripped, static_cast<std::size_t>(it->position())),
         "threads",
         "raw std::" + token +
             " outside the sanctioned sites (util/thread_pool.cpp, "
             "core/client_pipeline.cpp); use parallel_for"});
  }
}

void rule_atomic_float(const std::string& path, const std::string& stripped,
                       std::vector<Finding>& findings) {
  static const std::regex re(
      R"(std::atomic\s*<\s*(float|double|long\s+double)\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
       it != std::sregex_iterator(); ++it)
    findings.push_back(
        {path, line_of(stripped, static_cast<std::size_t>(it->position())),
         "atomic-float",
         "std::atomic<" + (*it)[1].str() +
             "> is banned: float atomics make accumulation order depend on "
             "scheduling; reduce serially in index order instead"});
}

void rule_random(const std::string& path, const std::string& stripped,
                 std::vector<Finding>& findings) {
  if (path.find("util/rng.") != std::string::npos) return;
  static const std::regex re_call(R"((^|[^\w:.>])(srand|rand)\s*\()");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re_call);
       it != std::sregex_iterator(); ++it)
    findings.push_back(
        {path,
         line_of(stripped,
                 static_cast<std::size_t>(it->position() + it->length(1))),
         "random",
         (*it)[2].str() +
             "() outside util/rng.*: all randomness must flow through the "
             "deterministic dcsr::Rng"});
  static const std::regex re_dev(R"(std::random_device\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re_dev);
       it != std::sregex_iterator(); ++it)
    findings.push_back(
        {path, line_of(stripped, static_cast<std::size_t>(it->position())),
         "random",
         "std::random_device outside util/rng.*: non-deterministic seeding "
         "breaks run-to-run reproducibility"});
}

void rule_module_infer(const std::string& path, const std::string& stripped,
                       std::vector<Finding>& findings) {
  static const std::regex re(
      R"(class\s+(\w+)(\s+final)?\s*:\s*public\s+(?:nn::)?Module\b)");
  static const std::regex re_infer(R"(\binfer\s*\([^;{)]*\)\s*const\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t pos = static_cast<std::size_t>(it->position());
    const std::size_t open = stripped.find('{', pos);
    if (open == std::string::npos) continue;  // forward declaration
    const std::size_t close = match_brace(stripped, open);
    if (close == std::string::npos) continue;
    const std::string body = stripped.substr(open, close - open);
    if (!std::regex_search(body, re_infer))
      findings.push_back(
          {path, line_of(stripped, pos), "module-infer",
           "class " + (*it)[1].str() +
               " derives from nn::Module but does not declare "
               "`infer(...) const` — every concrete layer must provide the "
               "stateless, thread-safe inference path"});
  }
}

void rule_const_forward(const std::string& path, const std::string& stripped,
                        std::vector<Finding>& findings) {
  static const std::regex re_const_fn(
      R"(\)\s*const\b(\s*(noexcept|override|final))*\s*\{)");
  static const std::regex re_forward(R"(\bforward\s*\()");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), re_const_fn);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    const std::size_t close = match_brace(stripped, open);
    if (close == std::string::npos) continue;
    const std::string body = stripped.substr(open, close - open);
    for (auto fw = std::sregex_iterator(body.begin(), body.end(), re_forward);
         fw != std::sregex_iterator(); ++fw) {
      // std::forward (perfect forwarding) is not Module::forward.
      const std::size_t fpos = static_cast<std::size_t>(fw->position());
      if (fpos >= 5 && body.compare(fpos - 5, 5, "std::") == 0) continue;
      findings.push_back(
          {path, line_of(stripped, open + fpos), "const-forward",
           "forward( called inside a const member function: forward() "
           "mutates layer caches — const paths must call infer()"});
    }
  }
}

void rule_infer_alloc(const std::string& path, const std::string& stripped,
                      std::vector<Finding>& findings) {
  // Scoped to the layer library: src/nn/ is where the workspace contract is
  // mandatory. (src/sr orchestrates through the same infer_into path but is
  // covered transitively — its intermediates are workspace checkouts.)
  if (path.find("src/nn/") == std::string::npos) return;
  static const std::regex re_infer_fn(
      R"(\binfer(_into)?\s*\([^;{)]*\)\s*const\b(\s*(noexcept|override|final))*\s*\{)");
  // The `(?=\()`-style guard is spelled as a trailing `\(` in the match: the
  // *_into spellings do not match because '(' does not directly follow the
  // banned token.
  static const std::regex re_alloc(
      R"(\b(matmul(_tn|_nt)?(_naive)?|im2col)\s*\()");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), re_infer_fn);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    const std::size_t close = match_brace(stripped, open);
    if (close == std::string::npos) continue;
    const std::string body = stripped.substr(open, close - open);
    for (auto al = std::sregex_iterator(body.begin(), body.end(), re_alloc);
         al != std::sregex_iterator(); ++al)
      findings.push_back(
          {path,
           line_of(stripped, open + static_cast<std::size_t>(al->position())),
           "infer-alloc",
           (*al)[1].str() +
               "( allocates a fresh Tensor inside an infer path: the "
               "inference hot loop must stay allocation-free — use the "
               "*_into variant with a caller/workspace-owned destination"});
  }
}

// The raw line of source containing byte `pos` (stripped and raw share byte
// offsets, so a position found in the stripped text indexes the same line).
std::string raw_line_at(const std::string& raw, std::size_t pos) {
  const std::size_t begin = raw.rfind('\n', pos);
  const std::size_t start = (begin == std::string::npos) ? 0 : begin + 1;
  std::size_t end = raw.find('\n', pos);
  if (end == std::string::npos) end = raw.size();
  return raw.substr(start, end - start);
}

void rule_raw_index(const std::string& path, const std::string& raw,
                    const std::string& stripped,
                    std::vector<Finding>& findings) {
  // The tensor library itself implements the checked accessors on top of the
  // backing store; everywhere else must go through them.
  if (path.find("src/tensor/") != std::string::npos) return;
  static const std::regex re(R"(\.data\s*\(\s*\)\s*\[)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t pos = static_cast<std::size_t>(it->position());
    if (raw_line_at(raw, pos).find("dcsr-lint: allow(raw-index)") !=
        std::string::npos)
      continue;  // audited kernel line, explicitly annotated
    findings.push_back(
        {path, line_of(stripped, pos), "raw-index",
         "raw .data()[ indexing outside src/tensor/ bypasses the "
         "DCSR_BOUNDS_CHECK accessors — use at()/view()/slice(), or "
         "annotate an audited kernel line with "
         "`// dcsr-lint: allow(raw-index)`"});
  }
}

void rule_reinterpret(const std::string& path, const std::string& stripped,
                      std::vector<Finding>& findings) {
  // Type punning is confined to the byte-oriented serialisation boundary.
  const bool sanctioned = path.find("codec/bits.") != std::string::npos ||
                          path.find("stream/model_bundle.") !=
                              std::string::npos ||
                          path_ends_with(path, "util/file.cpp");
  if (sanctioned) return;
  static const std::regex re(R"(\breinterpret_cast\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
       it != std::sregex_iterator(); ++it)
    findings.push_back(
        {path, line_of(stripped, static_cast<std::size_t>(it->position())),
         "reinterpret",
         "reinterpret_cast outside the serialisation boundary (codec/bits.*, "
         "stream/model_bundle.*, util/file.cpp): type punning elsewhere "
         "defeats the typed-error parse contract"});
}

void rule_raw_intrinsics(const std::string& path, const std::string& stripped,
                         std::vector<Finding>& findings) {
  // Per-ISA code is confined to src/simd/, behind the dispatch table.
  if (path.find("src/simd/") != std::string::npos) return;
  static const std::regex re(
      R"(#\s*include\s*<\w*intrin\.h>|#\s*include\s*<arm_neon\.h>|\b_mm\d*_\w+|\bvld\d\w*|\bvst\d\w*)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
       it != std::sregex_iterator(); ++it)
    findings.push_back(
        {path, line_of(stripped, static_cast<std::size_t>(it->position())),
         "raw-intrinsics",
         "SIMD intrinsics outside src/simd/: per-ISA kernels must live "
         "behind the dispatch table (simd/dispatch.hpp), where they are "
         "pinned bitwise against the scalar oracle"});
}

void rule_raw_getenv(const std::string& path, const std::string& stripped,
                     std::vector<Finding>& findings) {
  // Every environment read flows through util/env.cpp's hardened parsers
  // (env_raw/env_int/env_bool): trailing garbage, empty strings and
  // overflow are rejected once, centrally, instead of re-decided (or
  // forgotten) at each call site.
  if (path_ends_with(path, "util/env.cpp")) return;
  static const std::regex re(
      R"((^|[^\w:.>])((?:std::|::)?(?:secure_)?getenv)\s*\()");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
       it != std::sregex_iterator(); ++it)
    findings.push_back(
        {path,
         line_of(stripped,
                 static_cast<std::size_t>(it->position() + it->length(1))),
         "raw-getenv",
         (*it)[2].str() +
             " outside src/util/env.cpp: read the environment through "
             "env_raw/env_int/env_bool (util/env.hpp), which reject trailing "
             "garbage and overflow instead of silently truncating"});
}

void rule_pragma_once(const std::string& path, const std::string& raw,
                      std::vector<Finding>& findings) {
  if (!path_ends_with(path, ".hpp") && !path_ends_with(path, ".h")) return;
  static const std::regex re(R"(#\s*pragma\s+once)");
  if (!std::regex_search(raw, re))
    findings.push_back({path, 1, "pragma-once",
                        "header is missing #pragma once"});
}

std::vector<Finding> run_rules(const std::string& path, const std::string& raw) {
  const std::string stripped = strip_comments_and_literals(raw);
  std::vector<Finding> findings;
  rule_threads(path, stripped, findings);
  rule_atomic_float(path, stripped, findings);
  rule_random(path, stripped, findings);
  rule_module_infer(path, stripped, findings);
  rule_const_forward(path, stripped, findings);
  rule_infer_alloc(path, stripped, findings);
  rule_raw_index(path, raw, stripped, findings);
  rule_reinterpret(path, stripped, findings);
  rule_raw_intrinsics(path, stripped, findings);
  rule_raw_getenv(path, stripped, findings);
  rule_pragma_once(path, raw, findings);
  return findings;
}

// ---------------------------------------------------------------------------
// Tree scan.
// ---------------------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

int scan_tree(const fs::path& root) {
  if (!fs::exists(root)) {
    std::cerr << "dcsr_lint: no such directory: " << root << "\n";
    return 2;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root))
    if (entry.is_regular_file() && lintable(entry.path()))
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "dcsr_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string path = file.generic_string();
    for (auto& f : run_rules(path, ss.str())) findings.push_back(std::move(f));
  }

  for (const auto& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  if (!findings.empty()) {
    std::cout << "dcsr_lint: " << findings.size() << " violation(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "dcsr_lint: " << files.size() << " files clean\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Self-test: every banned pattern must be caught, every sanctioned site must
// pass. Fixtures exercise the allowlists with fake paths.
// ---------------------------------------------------------------------------

struct Fixture {
  const char* name;
  const char* path;
  const char* source;
  const char* rule;      // rule expected to fire (nullptr: expect clean)
};

const Fixture kFixtures[] = {
    // [threads]
    {"raw std::thread in a kernel", "src/codec/encoder.cpp",
     "void f() { std::thread t([]{}); t.join(); }", "threads"},
    {"raw std::async in a kernel", "src/sr/trainer.cpp",
     "auto r = std::async(std::launch::async, []{});", "threads"},
    {"std::jthread anywhere", "src/stream/session.cpp",
     "std::jthread t([]{});", "threads"},
    {"std::thread inside the pool", "src/util/thread_pool.cpp",
     "std::vector<std::thread> workers; unsigned n = "
     "std::thread::hardware_concurrency();",
     nullptr},
    {"std::async in the segment pipeline", "src/core/client_pipeline.cpp",
     "next = std::async(std::launch::async, produce, s + 1);", nullptr},
    {"std::async is not sanctioned in the pool", "src/util/thread_pool.cpp",
     "auto r = std::async([]{});", "threads"},
    {"std::this_thread is not std::thread", "src/device/latency.cpp",
     "std::this_thread::yield();", nullptr},
    {"std::thread in a comment", "src/codec/encoder.cpp",
     "// std::thread is banned here\nint x;", nullptr},
    // [atomic-float]
    {"atomic float accumulator", "src/sr/trainer.cpp",
     "std::atomic<float> loss{0.0f};", "atomic-float"},
    {"atomic double accumulator", "src/sr/trainer.cpp",
     "std::atomic<double> loss{0.0};", "atomic-float"},
    {"atomic int is fine", "src/sr/trainer.cpp",
     "std::atomic<int> counter{0};", nullptr},
    // [random]
    {"libc rand()", "src/video/noise.cpp", "int r = rand();", "random"},
    {"libc srand()", "src/video/noise.cpp", "srand(42);", "random"},
    {"std::random_device", "src/cluster/kmeans.cpp",
     "std::random_device rd; auto s = rd();", "random"},
    {"rand() inside util/rng.*", "src/util/rng.cpp", "int r = rand();",
     nullptr},
    {"identifier containing rand", "src/codec/motion.cpp",
     "int strand(int x); int y = strand(3);", nullptr},
    {"member named rand", "src/codec/motion.cpp", "int y = gen.rand();",
     nullptr},
    // [module-infer]
    {"Module subclass without const infer", "src/nn/foo.hpp",
     "#pragma once\nclass Foo final : public Module {\n"
     " public:\n  Tensor forward(const Tensor& x) override;\n"
     "  Tensor backward(const Tensor& g) override;\n};\n",
     "module-infer"},
    {"Module subclass with const infer", "src/nn/foo.hpp",
     "#pragma once\nclass Foo final : public Module {\n"
     " public:\n  Tensor forward(const Tensor& x) override;\n"
     "  Tensor infer(const Tensor& x) const override;\n"
     "  Tensor backward(const Tensor& g) override;\n};\n",
     nullptr},
    {"qualified nn::Module base without infer", "src/sr/bar.hpp",
     "#pragma once\nclass Bar final : public nn::Module {\n"
     "  int infer_count_;\n};\n",
     "module-infer"},
    // [const-forward]
    {"forward() called from const method", "src/nn/foo.cpp",
     "Tensor Foo::infer(const Tensor& x) const { return forward(x); }",
     "const-forward"},
    {"member forward() from const method", "src/sr/baz.cpp",
     "Tensor Baz::infer(const Tensor& x) const { return head_.forward(x); }",
     "const-forward"},
    {"infer calling infer is fine", "src/nn/foo.cpp",
     "Tensor Foo::infer(const Tensor& x) const { return inner_.infer(x); }",
     nullptr},
    {"std::forward is not Module::forward", "src/util/meta.hpp",
     "#pragma once\ntemplate <class F> int call(F&& f) const_dummy();\n"
     "struct S { template <class T> int g(T&& t) const {"
     " return h(std::forward(t)); } };\n",
     nullptr},
    {"forward from non-const method is fine", "src/nn/foo.cpp",
     "Tensor Foo::forward(const Tensor& x) { return inner_.forward(x); }",
     nullptr},
    // [infer-alloc]
    {"allocating im2col in an infer body", "src/nn/conv.cpp",
     "Tensor Conv2d::infer(const Tensor& x) const {\n"
     "  Tensor cols = im2col(x, 0, kernel_, stride_, pad_);\n"
     "  return cols;\n}\n",
     "infer-alloc"},
    {"allocating matmul in an infer_into body", "src/nn/linear.cpp",
     "void Linear::infer_into(const Tensor& x, Tensor& out, Workspace& ws) "
     "const {\n  out = matmul(x, weight_.value);\n}\n",
     "infer-alloc"},
    {"naive matmul in an infer body", "src/nn/linear.cpp",
     "Tensor Linear::infer(const Tensor& x) const {\n"
     "  return matmul_tn_naive(x, weight_.value);\n}\n",
     "infer-alloc"},
    {"*_into spellings in infer_into are fine", "src/nn/linear.cpp",
     "void Linear::infer_into(const Tensor& x, Tensor& out, Workspace& ws) "
     "const {\n  matmul_nt_into(x, weight_.value, out);\n"
     "  im2col_into(x, 0, 3, 1, 1, out);\n}\n",
     nullptr},
    {"allocating matmul in forward is fine", "src/nn/linear.cpp",
     "Tensor Linear::forward(const Tensor& x) {\n"
     "  return matmul_nt(x, weight_.value);\n}\n",
     nullptr},
    {"allocating matmul in infer outside src/nn", "src/sr/patchnet.cpp",
     "Tensor PatchNet::infer(const Tensor& x) const {\n"
     "  return matmul(x, proj_);\n}\n",
     nullptr},
    // [raw-index]
    {"raw .data()[ in a layer", "src/nn/foo.cpp",
     "void f(const Tensor& t) { float y = t.data()[0]; (void)y; }",
     "raw-index"},
    {"raw .data()[ with spacing", "src/codec/residual.cpp",
     "float y = t.data () [i];", "raw-index"},
    {".data()[ inside src/tensor is fine", "src/tensor/ops.cpp",
     "float y = t.data()[0];", nullptr},
    {"annotated audited kernel line is fine", "src/nn/conv_kernels.cpp",
     "float y = t.data()[0];  // dcsr-lint: allow(raw-index)", nullptr},
    {".data() without indexing is fine", "src/stream/manifest.cpp",
     "const std::uint8_t* p = buf.data(); use(p, buf.size());", nullptr},
    // [reinterpret]
    {"reinterpret_cast in a kernel", "src/nn/conv.cpp",
     "auto* p = reinterpret_cast<const char*>(src);", "reinterpret"},
    {"reinterpret_cast in the bit packer is fine", "src/codec/bits.cpp",
     "auto* p = reinterpret_cast<const char*>(src);", nullptr},
    {"reinterpret_cast in the bundle codec is fine",
     "src/stream/model_bundle.cpp",
     "auto* p = reinterpret_cast<const std::uint8_t*>(src);", nullptr},
    {"reinterpret_cast in file I/O is fine", "src/util/file.cpp",
     "out.write(reinterpret_cast<const char*>(buf.data()), n);", nullptr},
    {"reinterpret_cast in a comment is fine", "src/core/session.cpp",
     "// reinterpret_cast is banned here\nint x;", nullptr},
    // [raw-intrinsics]
    {"immintrin include outside src/simd", "src/tensor/ops.cpp",
     "#include <immintrin.h>", "raw-intrinsics"},
    {"emmintrin include outside src/simd", "src/codec/dct.cpp",
     "#include <emmintrin.h>", "raw-intrinsics"},
    {"arm_neon include outside src/simd", "src/image/convert.cpp",
     "#include <arm_neon.h>", "raw-intrinsics"},
    {"_mm256_ intrinsic outside src/simd", "src/nn/conv.cpp",
     "auto v = _mm256_loadu_ps(p);", "raw-intrinsics"},
    {"_mm_ intrinsic outside src/simd", "src/codec/quant.cpp",
     "auto v = _mm_add_ps(a, b);", "raw-intrinsics"},
    {"NEON vld1 outside src/simd", "src/image/resize.cpp",
     "auto v = vld1q_f32(p);", "raw-intrinsics"},
    {"intrinsics inside src/simd are fine", "src/simd/kernels_avx2.cpp",
     "#include <immintrin.h>\nauto v = _mm256_loadu_ps(p);", nullptr},
    {"intrinsic named in a comment is fine", "src/tensor/ops.cpp",
     "// the avx2 backend uses _mm256_fmadd_ps here\nint x;", nullptr},
    // [raw-getenv]
    {"std::getenv outside util/env.cpp", "src/codec/encoder.cpp",
     "const char* v = std::getenv(\"DCSR_X\"); use(v);", "raw-getenv"},
    {"bare getenv outside util/env.cpp", "src/stream/fleet.cpp",
     "const char* v = getenv(\"HOME\"); use(v);", "raw-getenv"},
    {"secure_getenv outside util/env.cpp", "src/util/thread_pool.cpp",
     "const char* v = secure_getenv(\"DCSR_THREADS\"); use(v);", "raw-getenv"},
    {"std::getenv inside util/env.cpp is fine", "src/util/env.cpp",
     "const char* v = std::getenv(name); use(v);", nullptr},
    {"env_raw wrapper call is fine", "src/util/thread_pool.cpp",
     "const char* v = env_raw(\"DCSR_THREADS\"); use(v);", nullptr},
    {"identifier ending in getenv is fine", "src/stream/session.cpp",
     "int my_getenv(int); int y = my_getenv(3);", nullptr},
    {"getenv in a comment is fine", "src/codec/encoder.cpp",
     "// std::getenv is banned here\nint x;", nullptr},
    // [pragma-once]
    {"header without pragma once", "src/nn/foo.hpp",
     "class Foo final : public Module { Tensor infer(const Tensor&) const; };",
     "pragma-once"},
    {"source file needs no pragma once", "src/nn/foo.cpp", "int x;", nullptr},
};

int self_test() {
  int failures = 0;
  for (const Fixture& fx : kFixtures) {
    const auto findings = run_rules(fx.path, fx.source);
    const bool fired =
        fx.rule != nullptr &&
        std::any_of(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == fx.rule; });
    bool ok;
    if (fx.rule == nullptr) {
      ok = findings.empty();
    } else {
      // The expected rule must fire, and nothing else may (fixtures are
      // minimal: one violation each).
      ok = fired && findings.size() == 1;
    }
    if (!ok) {
      ++failures;
      std::cout << "FAIL: " << fx.name << " (expected "
                << (fx.rule ? fx.rule : "clean") << ", got";
      if (findings.empty()) std::cout << " clean";
      for (const auto& f : findings) std::cout << " [" << f.rule << "]";
      std::cout << ")\n";
    } else {
      std::cout << "ok:   " << fx.name << "\n";
    }
  }
  const std::size_t total = sizeof(kFixtures) / sizeof(kFixtures[0]);
  std::cout << "dcsr_lint self-test: " << (total - static_cast<std::size_t>(failures))
            << "/" << total << " fixtures passed\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: dcsr_lint <src-root> | dcsr_lint --self-test\n";
    return 2;
  }
  const std::string arg = argv[1];
  if (arg == "--self-test") return self_test();
  return scan_tree(arg);
}
