#!/usr/bin/env bash
# Runs the micro-kernel benchmarks and records the results as
# BENCH_kernels.json at the repo root, giving future PRs a perf trajectory
# to diff against. Includes the steady-state playback bench
# (BM_EdsrEnhanceSteadyState), whose ws_miss_per_frame / ws_hit_per_frame
# counters land in the JSON — ws_miss_per_frame must read 0.
# Usage: tools/run_benches.sh [extra benchmark args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

if [ ! -x "$BUILD/bench/bench_micro_kernels" ]; then
  cmake -B "$BUILD" -S "$ROOT"
  cmake --build "$BUILD" -j --target bench_micro_kernels
fi

"$BUILD/bench/bench_micro_kernels" \
  --benchmark_format=json \
  --benchmark_out="$ROOT/BENCH_kernels.json" \
  --benchmark_out_format=json \
  "$@" >/dev/null

echo "wrote $ROOT/BENCH_kernels.json"
