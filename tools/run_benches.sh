#!/usr/bin/env bash
# Runs the micro-kernel benchmarks and records the results as
# BENCH_kernels.json at the repo root, giving future PRs a perf trajectory
# to diff against. Includes the steady-state playback bench
# (BM_EdsrEnhanceSteadyState), whose ws_miss_per_frame / ws_hit_per_frame
# counters land in the JSON — ws_miss_per_frame must read 0.
#
# Also runs the fleet-scale serving simulator (dcsr_fleet) at 1e5 and 1e6
# sessions plus a popularity-skew sweep and the --sr-demo cross-session SR
# batching comparison (dense fleet, windows {0,50,250} ms) and records
# BENCH_fleet.json: sessions/sec, per-tier hit rates, model bytes/user and
# SR batch occupancy / server seconds — the fleet trajectory the ROADMAP's
# "millions of users" item asks for plus the serving-tier batching deltas.
#
# Refuses to record numbers from a non-Release build: an -O0 run looks like
# a 10-30x regression and would poison the trajectory. Set
# DCSR_BENCH_ALLOW_DEBUG=1 to override; the run then proceeds but the JSON
# still self-identifies via its dcsr_build_type context field (stamped into
# the binary from CMAKE_BUILD_TYPE), so the artifact cannot masquerade as a
# Release measurement.
#
# The bench binary also stamps dcsr_simd_backend / dcsr_simd_dispatch into
# the JSON context; select a backend with DCSR_SIMD=scalar|sse2|avx2.
# Usage: tools/run_benches.sh [extra benchmark args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

if [ ! -x "$BUILD/bench/bench_micro_kernels" ]; then
  cmake -B "$BUILD" -S "$ROOT"
  cmake --build "$BUILD" -j --target bench_micro_kernels
fi

build_type=""
if [ -f "$BUILD/CMakeCache.txt" ]; then
  build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
fi
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    if [ "${DCSR_BENCH_ALLOW_DEBUG:-0}" != "1" ]; then
      echo "run_benches.sh: refusing to benchmark a '${build_type:-unknown}'" \
           "build at $BUILD" >&2
      echo "  configure with -DCMAKE_BUILD_TYPE=Release (or RelWithDebInfo)," \
           "or set DCSR_BENCH_ALLOW_DEBUG=1 to record anyway" >&2
      exit 1
    fi
    echo "run_benches.sh: WARNING recording from a '${build_type:-unknown}'" \
         "build — numbers are NOT comparable to Release runs" >&2
    ;;
esac

"$BUILD/bench/bench_micro_kernels" \
  --benchmark_format=json \
  --benchmark_out="$ROOT/BENCH_kernels.json" \
  --benchmark_out_format=json \
  "$@" >/dev/null

echo "wrote $ROOT/BENCH_kernels.json"

if [ ! -x "$BUILD/tools/dcsr_fleet" ]; then
  cmake --build "$BUILD" -j --target dcsr_fleet
fi
"$BUILD/tools/dcsr_fleet" \
  --sessions 100000,1000000 \
  --videos 2000 --skew 0.8 --seed 1 --edge-mb 16 \
  --sweep-skew "0.2,0.6,1.0,1.4" \
  --sr-demo \
  --json "$ROOT/BENCH_fleet.json"
