// Deterministic mutation fuzzer for every parse surface in the repo.
//
//   dcsr_fuzz <harness|all> [--iters N] [--seed S] [--start I]
//   dcsr_fuzz --replay FILE [--harness H]
//   dcsr_fuzz --write-corpus DIR
//
// Harnesses: bits, container, decoder, manifest, playlist, bundle.
//
// No libFuzzer: iteration i seeds its own util/rng generator from (seed, i),
// so any finding reproduces exactly with `--iters 1 --start i --seed S` —
// on any machine, in any build. Run under ASan/UBSan (tools/run_checks.sh
// fuzz-smoke leg) the harnesses also catch silent out-of-bounds reads that
// never surface as exceptions.
//
// On a contract escape (an exception outside the harness's typed-error set,
// or a writer/reader roundtrip mismatch) the offending input is written to
// ./fuzz-crash-<harness>.bin and the exit code is 1. Minimise by hand (the
// inputs are tiny), then check the result into tests/corpus/ and pin it in
// regression_corpus().
//
// --replay feeds one file to a harness (guessed from the filename prefix if
// --harness is omitted) and reports the outcome. --write-corpus regenerates
// the checked-in regression corpus bytes.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/fuzz.hpp"
#include "simd/dispatch.hpp"

namespace {

using dcsr::core::fuzz::FuzzFailure;
using dcsr::core::fuzz::FuzzStats;
using dcsr::core::fuzz::Harness;
using dcsr::core::fuzz::ReplayOutcome;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "dcsr_fuzz: cannot open " << path << "\n";
    std::exit(2);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream f(path, std::ios::binary);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

std::optional<Harness> harness_from_filename(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  for (const Harness h : dcsr::core::fuzz::all_harnesses())
    if (name.rfind(dcsr::core::fuzz::harness_name(h), 0) == 0) return h;
  return std::nullopt;
}

const char* outcome_name(ReplayOutcome o) {
  switch (o) {
    case ReplayOutcome::kParsed: return "parsed";
    case ReplayOutcome::kTypedError: return "typed-error";
    case ReplayOutcome::kSafeError: return "safe-error";
  }
  return "?";
}

int usage() {
  std::cerr
      << "usage: dcsr_fuzz <harness|all> [--iters N] [--seed S] [--start I]\n"
         "       dcsr_fuzz --replay FILE [--harness H]\n"
         "       dcsr_fuzz --write-corpus DIR\n"
         "harnesses: bits container decoder manifest playlist bundle\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    std::fprintf(stderr, "%s\n", dcsr::simd::report().c_str());
  } catch (const dcsr::simd::SimdDispatchError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::uint64_t iters = 10000, seed = 1, start = 0;
  std::string target, replay_path, corpus_dir, harness_override;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::exit(usage());
      }
      return args[++i];
    };
    if (a == "--iters") {
      iters = std::stoull(next());
    } else if (a == "--seed") {
      seed = std::stoull(next());
    } else if (a == "--start") {
      start = std::stoull(next());
    } else if (a == "--replay") {
      replay_path = next();
    } else if (a == "--harness") {
      harness_override = next();
    } else if (a == "--write-corpus") {
      corpus_dir = next();
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      target = a;
    }
  }

  if (!corpus_dir.empty()) {
    for (const auto& [name, bytes] : dcsr::core::fuzz::regression_corpus()) {
      write_file(corpus_dir + "/" + name, bytes);
      std::cout << "wrote " << corpus_dir << "/" << name << " (" << bytes.size()
                << " bytes)\n";
    }
    return 0;
  }

  if (!replay_path.empty()) {
    const auto h = harness_override.empty()
                       ? harness_from_filename(replay_path)
                       : dcsr::core::fuzz::harness_from_name(harness_override);
    if (!h) {
      std::cerr << "dcsr_fuzz: cannot infer harness for " << replay_path
                << "; pass --harness\n";
      return 2;
    }
    const auto outcome = dcsr::core::fuzz::replay(*h, read_file(replay_path));
    std::cout << dcsr::core::fuzz::harness_name(*h) << " "
              << outcome_name(outcome) << "\n";
    return 0;
  }

  std::vector<Harness> targets;
  if (target == "all") {
    targets = dcsr::core::fuzz::all_harnesses();
  } else if (const auto h = dcsr::core::fuzz::harness_from_name(target)) {
    targets = {*h};
  } else {
    return usage();
  }

  for (const Harness h : targets) {
    try {
      const FuzzStats stats = dcsr::core::fuzz::run(h, seed, iters, start);
      std::cout << dcsr::core::fuzz::harness_name(h) << ": "
                << stats.iterations << " iterations, " << stats.parsed
                << " parsed, " << stats.typed_errors << " typed errors, "
                << stats.safe_errors << " safe errors\n";
    } catch (const FuzzFailure& e) {
      const std::string crash_file =
          std::string("fuzz-crash-") +
          dcsr::core::fuzz::harness_name(e.harness()) + ".bin";
      write_file(crash_file, e.input());
      std::cerr << "FAIL: " << e.what() << "\n"
                << "input saved to " << crash_file << " (" << e.input().size()
                << " bytes); reproduce with: dcsr_fuzz "
                << dcsr::core::fuzz::harness_name(e.harness()) << " --seed "
                << seed << " --start " << e.iteration() << " --iters 1\n";
      return 1;
    }
  }
  return 0;
}
