#!/usr/bin/env bash
# Single verification gate for the tree. Runs ten legs, each test leg in
# its own build directory so instrumented artifacts never mix:
#
#   default     RelWithDebInfo build + full ctest suite (includes the
#               Lint.SelfTest / Lint.SrcTree invariant checks and the
#               Fuzz.*Smoke / FuzzCorpus.* deterministic-fuzz gates)
#   checked     -DDCSR_CHECKED=ON: every runtime invariant checker on —
#               the parallel_for write-claim race detector, bounds-checked
#               tensor access, workspace NaN poisoning, per-layer
#               finiteness scans and the hot-path heap auditor (the full
#               suite runs with DCSR_ALLOC_CHECK enforcement live, so any
#               unsanctioned allocation inside a guarded hot path fails
#               its test) — including the checked-build negative tests
#   asan        AddressSanitizer + UndefinedBehaviorSanitizer, full suite
#   tsan        ThreadSanitizer, full suite forced to DCSR_THREADS=4 so the
#               pool, the segment pipeline and the shared-model inference
#               paths actually run multi-threaded under the detector
#   simd        full ctest suite once per SIMD backend the host supports
#               (DCSR_SIMD=scalar/sse2/avx2 in the default build), so every
#               kernel backend — not just the one the dispatcher would pick
#               — passes the whole tree. Also asserts the negative path:
#               requesting an unknown backend name must fail loudly.
#   bench-smoke every microbenchmark for a single iteration in the default
#               build — catches bench bit-rot (and exercises the
#               steady-state workspace counters) without a timed run
#   fuzz-smoke  dcsr_fuzz all harnesses, 10k seeded iterations each, in the
#               ASan/UBSan build — any contract escape (UB, crash, untyped
#               exception) fails the leg and prints the repro command
#   fleet-smoke dcsr_fleet at a small session count in the checked build
#               (every invariant checker on), run once under DCSR_THREADS=1
#               and once under DCSR_THREADS=4 — the two JSON artifacts must
#               be byte-identical, pinning the fleet determinism contract
#               (including the per-event heap-allocation counters) end to
#               end through the CLI
#   decode-smoke dcsr_cli in the checked build: synth the same video at
#               slice counts 1/2/4, decode every container under both
#               DCSR_THREADS=1 and =4, and byte-diff all six raw-YUV dumps
#               against each other — decoded output must be bit-identical
#               across slice counts AND thread counts. Also decodes the
#               committed pre-slice (v2, sliceless) fixture to pin backward
#               compatibility through the CLI.
#   tidy        clang-tidy over every translation unit in src/ against the
#               checked-in .clang-tidy, driven by the default build's
#               compile_commands.json; any diagnostic fails the leg. If
#               clang-tidy is not installed the leg SKIPs loudly (still
#               exits 0) rather than failing a host without LLVM tooling.
#
# Every leg configures its build with -DDCSR_WERROR=ON: the gate never
# accretes warnings, while the tier-1 build stays plain -Wall -Wextra.
#
# Usage: tools/run_checks.sh [leg...]
#   e.g. tools/run_checks.sh            # all ten legs
#        tools/run_checks.sh tsan       # just the TSan leg
#        tools/run_checks.sh default checked fuzz-smoke
#
# Prints a per-leg summary and exits nonzero if any leg fails.
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
  LEGS=(default checked asan tsan simd bench-smoke fuzz-smoke fleet-smoke decode-smoke tidy)
fi

declare -A STATUS

run_leg() {
  local leg="$1" build cmake_args=() env_prefix=()
  case "$leg" in
    default)
      # Same configuration as the tier-1 build; reuses its directory.
      build="${DEFAULT_BUILD_DIR:-$ROOT/build}"
      ;;
    checked)
      build="${CHECKED_BUILD_DIR:-$ROOT/build-checked}"
      cmake_args+=(-DDCSR_CHECKED=ON)
      # Enforcement defaults on in a checked build; being explicit here
      # documents that this leg is the one that runs the whole suite with
      # the heap auditor throwing.
      env_prefix=(env DCSR_ALLOC_CHECK=1)
      ;;
    asan)
      build="${SAN_BUILD_DIR:-$ROOT/build-san}"
      cmake_args+=(-DDCSR_SANITIZE=address,undefined)
      # halt_on_error: UBSan already aborts via -fno-sanitize-recover; make
      # ASan leak/heap reports fail the run too instead of printing on.
      export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
      export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
      ;;
    tsan)
      build="${TSAN_BUILD_DIR:-$ROOT/build-tsan}"
      cmake_args+=(-DDCSR_SANITIZE=thread)
      export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
      env_prefix=(env DCSR_THREADS=4)
      ;;
    simd)
      # Tier-1 suite once per SIMD backend. The bench binary validates
      # DCSR_SIMD in main() before running anything, so it doubles as a
      # cheap support probe: exit 0 = backend available on this host.
      build="${DEFAULT_BUILD_DIR:-$ROOT/build}"
      echo
      echo "=== leg: $leg (build dir: $build) ==="
      cmake -B "$build" -S "$ROOT" -DDCSR_WERROR=ON || return 1
      cmake --build "$build" -j || return 1
      local probe="$build/bench/bench_micro_kernels"
      if env DCSR_SIMD=definitely-not-a-backend \
          "$probe" --benchmark_list_tests=true >/dev/null 2>&1; then
        echo "simd leg: unknown DCSR_SIMD value was silently accepted" >&2
        return 1
      fi
      local b ran=0
      for b in scalar sse2 avx2; do
        if env DCSR_SIMD="$b" \
            "$probe" --benchmark_list_tests=true >/dev/null 2>&1; then
          echo "--- simd leg: full suite with DCSR_SIMD=$b ---"
          env DCSR_SIMD="$b" \
            ctest --test-dir "$build" --output-on-failure -j || return 1
          ran=$((ran + 1))
        else
          echo "--- simd leg: backend '$b' unsupported on this host," \
               "dispatcher refused it (expected) ---"
        fi
      done
      # scalar is always compiled in; zero passes means the probe is broken.
      [ "$ran" -ge 1 ] || { echo "simd leg: no backend ran" >&2; return 1; }
      return 0
      ;;
    bench-smoke)
      # Every benchmark, one iteration each, in the default build. Not a
      # perf measurement — a does-it-still-run gate for the bench binary.
      build="${DEFAULT_BUILD_DIR:-$ROOT/build}"
      echo
      echo "=== leg: $leg (build dir: $build) ==="
      cmake -B "$build" -S "$ROOT" -DDCSR_WERROR=ON || return 1
      cmake --build "$build" -j --target bench_micro_kernels || return 1
      "$build/bench/bench_micro_kernels" --benchmark_min_time=0 || return 1
      return 0
      ;;
    fuzz-smoke)
      # Long deterministic fuzz pass under ASan/UBSan (shares the asan leg's
      # build directory). The ctest Fuzz.*Smoke gates run a short slice of
      # the same loops in every build; this leg is the deeper sweep.
      build="${SAN_BUILD_DIR:-$ROOT/build-san}"
      export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
      export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
      echo
      echo "=== leg: $leg (build dir: $build) ==="
      cmake -B "$build" -S "$ROOT" -DDCSR_WERROR=ON -DDCSR_SANITIZE=address,undefined || return 1
      cmake --build "$build" -j --target dcsr_fuzz || return 1
      "$build/tools/dcsr_fuzz" all --iters 10000 --seed 1 || return 1
      return 0
      ;;
    fleet-smoke)
      # Fleet simulator end-to-end through the CLI, small session count,
      # checked build (shares the checked leg's directory). Two runs at
      # different thread counts must emit byte-identical JSON: the sweep's
      # parallel_for_writes claims plus the serial per-run event loop make
      # the summary independent of DCSR_THREADS by construction, and this
      # leg holds the CLI to it.
      build="${CHECKED_BUILD_DIR:-$ROOT/build-checked}"
      echo
      echo "=== leg: $leg (build dir: $build) ==="
      cmake -B "$build" -S "$ROOT" -DDCSR_WERROR=ON -DDCSR_CHECKED=ON || return 1
      cmake --build "$build" -j --target dcsr_fleet || return 1
      local fa="$build/fleet-smoke-t1.json" fb="$build/fleet-smoke-t4.json"
      env DCSR_THREADS=1 "$build/tools/dcsr_fleet" \
        --sessions 5000 --videos 200 --sweep-skew "0.4,1.2" \
        --json "$fa" || return 1
      env DCSR_THREADS=4 "$build/tools/dcsr_fleet" \
        --sessions 5000 --videos 200 --sweep-skew "0.4,1.2" \
        --json "$fb" || return 1
      # Strip throughput fields before diffing: wall-clock timing is the one
      # part of the artifact that legitimately varies between runs.
      if ! diff <(grep -v -e '"wall_seconds"' -e '"sessions_per_second"' "$fa") \
                <(grep -v -e '"wall_seconds"' -e '"sessions_per_second"' "$fb"); then
        echo "fleet-smoke: DCSR_THREADS=1 and =4 runs disagree" >&2
        return 1
      fi
      echo "fleet-smoke: summaries bit-identical across thread counts"
      return 0
      ;;
    decode-smoke)
      # Slice-parallel decode determinism end-to-end through the CLI in the
      # checked build: the same source encoded at 1/2/4 slices, decoded at
      # 1 and 4 threads, must produce byte-identical raw-YUV dumps — the
      # restricted-intra slice format guarantees reconstruction does not
      # depend on the slice partition, and parallel_for_writes' disjoint
      # row claims guarantee it does not depend on the thread count.
      build="${CHECKED_BUILD_DIR:-$ROOT/build-checked}"
      echo
      echo "=== leg: $leg (build dir: $build) ==="
      cmake -B "$build" -S "$ROOT" -DDCSR_WERROR=ON -DDCSR_CHECKED=ON || return 1
      cmake --build "$build" -j --target dcsr_cli || return 1
      local cli="$build/tools/dcsr_cli" s t ref=""
      for s in 1 2 4; do
        "$cli" synth "$build/decode-smoke-s$s.dcv" sports 7 2 30 "$s" \
          >/dev/null || return 1
        for t in 1 4; do
          env DCSR_THREADS="$t" "$cli" decode "$build/decode-smoke-s$s.dcv" \
            "$build/decode-smoke-s$s-t$t.yuv" >/dev/null || return 1
          if [ -z "$ref" ]; then
            ref="$build/decode-smoke-s$s-t$t.yuv"
          elif ! cmp -s "$ref" "$build/decode-smoke-s$s-t$t.yuv"; then
            echo "decode-smoke: slices=$s DCSR_THREADS=$t output differs" \
                 "from $ref" >&2
            return 1
          fi
        done
      done
      echo "decode-smoke: YUV bit-identical across slices {1,2,4} x threads {1,4}"
      # Backward compatibility: the committed pre-slice v2 container must
      # still decode through the same CLI path.
      env DCSR_THREADS=4 "$cli" decode "$ROOT/tests/data/pre-slice-v2.dcv" \
        "$build/decode-smoke-preslice.yuv" >/dev/null || return 1
      echo "decode-smoke: pre-slice v2 fixture decodes"
      return 0
      ;;
    tidy)
      # clang-tidy over src/ with the checked-in .clang-tidy. Uses the
      # default build's compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
      # is always on). Any diagnostic is a failure; a host without clang-tidy
      # SKIPs loudly instead of failing, since the tool is optional tooling,
      # not a build dependency.
      build="${DEFAULT_BUILD_DIR:-$ROOT/build}"
      echo
      echo "=== leg: $leg (build dir: $build) ==="
      if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "tidy leg: SKIP — clang-tidy not installed on this host" \
             "(install LLVM tooling to run it; the leg passes vacuously)"
        return 0
      fi
      cmake -B "$build" -S "$ROOT" -DDCSR_WERROR=ON || return 1
      if [ ! -f "$build/compile_commands.json" ]; then
        echo "tidy leg: $build/compile_commands.json missing" >&2
        return 1
      fi
      local srcs
      srcs=$(find "$ROOT/src" -name '*.cpp' | sort)
      # --warnings-as-errors promotes every enabled check; the leg fails on
      # any finding in any translation unit (kept going to report them all).
      local rc=0 f
      for f in $srcs; do
        clang-tidy -p "$build" --quiet --warnings-as-errors='*' "$f" || rc=1
      done
      return $rc
      ;;
    *)
      echo "run_checks.sh: unknown leg '$leg' (default|checked|asan|tsan|simd|bench-smoke|fuzz-smoke|fleet-smoke|decode-smoke|tidy)" >&2
      return 2
      ;;
  esac

  echo
  echo "=== leg: $leg (build dir: $build) ==="
  cmake -B "$build" -S "$ROOT" -DDCSR_WERROR=ON "${cmake_args[@]}" || return 1
  cmake --build "$build" -j || return 1
  "${env_prefix[@]}" ctest --test-dir "$build" --output-on-failure -j || return 1
}

FAILED=0
for leg in "${LEGS[@]}"; do
  if run_leg "$leg"; then
    STATUS[$leg]=PASS
  else
    STATUS[$leg]=FAIL
    FAILED=1
  fi
done

echo
echo "=== run_checks summary ==="
for leg in "${LEGS[@]}"; do
  printf '  %-8s %s\n' "$leg" "${STATUS[$leg]}"
done
if [ "$FAILED" -ne 0 ]; then
  echo "run_checks: FAILED"
  exit 1
fi
echo "run_checks: all legs passed"
