#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and runs
# the tier-1 test suite under it. A separate build directory keeps the
# instrumented artifacts away from the regular build.
# Usage: tools/run_checks.sh [extra ctest args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${SAN_BUILD_DIR:-$ROOT/build-san}"

cmake -B "$BUILD" -S "$ROOT" -DDCSR_SANITIZE=address,undefined
cmake --build "$BUILD" -j

# halt_on_error: UBSan already aborts via -fno-sanitize-recover; make ASan
# leak/heap reports fail the run too instead of printing and continuing.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

ctest --test-dir "$BUILD" --output-on-failure -j "$@"
echo "sanitizer checks passed"
