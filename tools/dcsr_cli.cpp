// dcsr_cli — command-line front end for the codec and container layers.
//
//   dcsr_cli synth  <out.dcv> [genre] [seed] [seconds] [crf] [slices]
//       Generates a synthetic genre video, splits it at scene changes,
//       encodes it (optionally as multiple macroblock-row slices per frame),
//       and writes a .dcv container.
//
//   dcsr_cli decode <in.dcv> <out.yuv>
//       Decodes the container and dumps raw little-endian f32 planes
//       (y, then u, then v, per frame in display order). The byte stream
//       is bit-exact across DCSR_THREADS and slice counts, which makes it
//       the comparison surface for the decode-smoke CI leg.
//
//   dcsr_cli info   <in.dcv>
//       Prints container metadata and per-frame-type bitstream statistics.
//
//   dcsr_cli verify <in.dcv> [genre] [seed] [seconds]
//       Decodes the container and, given the original synthesis parameters,
//       regenerates the source and reports luma PSNR per segment.
//
//   dcsr_cli deploy <dir> [genre] [seed] [seconds]
//       Runs the full server-side dcSR pipeline (split / encode at CRF 51 /
//       cluster / train micro models) and writes a CDN deployment directory
//       (video.dcv + models.bin + playlist.txt + meta.txt).
//
//   dcsr_cli play   <dir> [genre] [seed] [seconds]
//       Loads a deployment, streams it through the model cache, decodes with
//       in-loop micro-model enhancement, and reports quality vs LOW.
//
// Videos are 96x64 @ 10 fps (the repo's experiment scale).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "codec/analyze.hpp"
#include "core/deployment.hpp"
#include "core/client_pipeline.hpp"
#include "stream/session.hpp"
#include "codec/container.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "simd/dispatch.hpp"
#include "split/segmenter.hpp"
#include "util/file.hpp"
#include "util/table.hpp"
#include "video/genres.hpp"

using namespace dcsr;

namespace {

constexpr int kWidth = 96, kHeight = 64;
constexpr double kFps = 10.0;

Genre genre_by_name(const std::string& name) {
  for (const Genre g : all_genres())
    if (genre_name(g) == name) return g;
  std::fprintf(stderr, "unknown genre '%s' (try: ", name.c_str());
  for (const Genre g : all_genres()) std::fprintf(stderr, "%s ", genre_name(g).c_str());
  std::fprintf(stderr, ")\n");
  std::exit(2);
}

int cmd_synth(int argc, char** argv) {
  const std::string out = argv[0];
  const Genre genre = genre_by_name(argc > 1 ? argv[1] : "news");
  const auto seed = static_cast<std::uint64_t>(argc > 2 ? std::atoll(argv[2]) : 1);
  const double seconds = argc > 3 ? std::atof(argv[3]) : 20.0;
  const int crf = argc > 4 ? std::atoi(argv[4]) : 35;
  const int slices = argc > 5 ? std::atoi(argv[5]) : 1;

  const auto video = make_genre_video(genre, seed, kWidth, kHeight, seconds, kFps);
  const auto segments = split::variable_segments(*video);
  codec::CodecConfig cfg;
  cfg.crf = crf;
  cfg.slices = slices;
  const auto encoded = codec::Encoder(cfg).encode(*video, segments);

  ByteWriter w;
  codec::write_container(encoded, w);
  write_file(out, w.bytes());
  std::printf("wrote %s: %d frames in %zu segments, %.1f KB (crf %d, %d slices)\n",
              out.c_str(), encoded.frame_count(), encoded.segments.size(),
              w.size() / 1e3, crf, slices);
  return 0;
}

int cmd_decode(int argc, char** argv) {
  (void)argc;
  ByteReader r(read_file(argv[0]));
  const codec::EncodedVideo encoded = codec::read_container(r);

  codec::Decoder dec(encoded.width, encoded.height, encoded.crf);
  ByteWriter yuv;
  int frames = 0;
  for (const auto& seg : encoded.segments) {
    for (const FrameYUV& f : dec.decode_segment(seg)) {
      yuv.write_f32_span(f.y.data(), f.y.size());
      yuv.write_f32_span(f.u.data(), f.u.size());
      yuv.write_f32_span(f.v.data(), f.v.size());
      ++frames;
    }
  }
  write_file(argv[1], yuv.bytes());
  std::printf("decoded %s -> %s: %d frames, %.1f KB of f32 planes\n",
              argv[0], argv[1], frames, yuv.size() / 1e3);
  return 0;
}

int cmd_info(int argc, char** argv) {
  (void)argc;
  ByteReader r(read_file(argv[0]));
  const codec::EncodedVideo video = codec::read_container(r);
  std::printf("%s: %dx%d @ %.1f fps, crf %d, %zu segments, %d frames, %.1f KB\n\n",
              argv[0], video.width, video.height, video.fps, video.crf,
              video.segments.size(), video.frame_count(),
              video.size_bytes() / 1e3);

  const codec::StreamStats s = codec::analyze(video);
  Table t({"type", "frames", "bytes", "mean bytes/frame", "byte share"});
  t.add_row({"I", std::to_string(s.i_frames), std::to_string(s.i_bytes),
             fmt(s.mean_i_bytes(), 1), fmt(100.0 * s.i_byte_share(), 1) + "%"});
  t.add_row({"P", std::to_string(s.p_frames), std::to_string(s.p_bytes),
             fmt(s.mean_p_bytes(), 1),
             fmt(100.0 * s.p_bytes / std::max<std::uint64_t>(1, s.total_bytes()), 1) + "%"});
  t.add_row({"B", std::to_string(s.b_frames), std::to_string(s.b_bytes),
             fmt(s.mean_b_bytes(), 1),
             fmt(100.0 * s.b_bytes / std::max<std::uint64_t>(1, s.total_bytes()), 1) + "%"});
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int cmd_verify(int argc, char** argv) {
  ByteReader r(read_file(argv[0]));
  const codec::EncodedVideo encoded = codec::read_container(r);
  const Genre genre = genre_by_name(argc > 1 ? argv[1] : "news");
  const auto seed = static_cast<std::uint64_t>(argc > 2 ? std::atoll(argv[2]) : 1);
  const double seconds = argc > 3 ? std::atof(argv[3]) : 20.0;
  const auto video =
      make_genre_video(genre, seed, encoded.width, encoded.height, seconds, kFps);
  if (video->frame_count() != encoded.frame_count()) {
    std::fprintf(stderr, "frame count mismatch: container %d vs synth %d\n",
                 encoded.frame_count(), video->frame_count());
    return 1;
  }

  codec::Decoder dec(encoded.width, encoded.height, encoded.crf);
  Table t({"segment", "frames", "mean luma PSNR"});
  int base = 0;
  for (std::size_t s = 0; s < encoded.segments.size(); ++s) {
    const auto frames = dec.decode_segment(encoded.segments[s]);
    double acc = 0.0;
    for (std::size_t i = 0; i < frames.size(); ++i)
      acc += psnr_luma(rgb_to_yuv420(video->frame(base + static_cast<int>(i))),
                       frames[i]);
    t.add_row({std::to_string(s), std::to_string(frames.size()),
               fmt(acc / static_cast<double>(frames.size()), 2)});
    base += static_cast<int>(frames.size());
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int cmd_deploy(int argc, char** argv) {
  const std::string dir = argv[0];
  const Genre genre = genre_by_name(argc > 1 ? argv[1] : "news");
  const auto seed = static_cast<std::uint64_t>(argc > 2 ? std::atoll(argv[2]) : 1);
  const double seconds = argc > 3 ? std::atof(argv[3]) : 30.0;

  const auto video = make_genre_video(genre, seed, kWidth, kHeight, seconds, kFps);
  core::ServerConfig cfg;
  cfg.vae = {.input_size = 16, .latent_dim = 6, .base_channels = 4, .hidden = 48};
  cfg.vae_epochs = 12;
  cfg.micro = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
  cfg.k_max = 6;
  cfg.training = {.iterations = 400, .patch_size = 24, .batch_size = 4, .lr = 3e-3};

  std::printf("running server pipeline on %s (seed %llu, %.0f s)...\n",
              genre_name(genre).c_str(), static_cast<unsigned long long>(seed),
              seconds);
  const core::ServerResult server = core::run_server_pipeline(*video, cfg);
  core::write_deployment(server, dir, /*fp16=*/true);
  std::printf("wrote deployment to %s: %zu segments, %d micro models (fp16)\n",
              dir.c_str(), server.segments.size(), server.k);
  return 0;
}

int cmd_play(int argc, char** argv) {
  const std::string dir = argv[0];
  const Genre genre = genre_by_name(argc > 1 ? argv[1] : "news");
  const auto seed = static_cast<std::uint64_t>(argc > 2 ? std::atoll(argv[2]) : 1);
  const double seconds = argc > 3 ? std::atof(argv[3]) : 30.0;

  const core::Deployment dep = core::load_deployment(dir);
  const auto video = make_genre_video(genre, seed, dep.video.width,
                                      dep.video.height, seconds, kFps);
  if (video->frame_count() != dep.video.frame_count()) {
    std::fprintf(stderr, "frame count mismatch: deployment %d vs synth %d\n",
                 dep.video.frame_count(), video->frame_count());
    return 1;
  }

  const auto session = stream::simulate_session(dep.manifest);
  std::printf("session: %.1f KB video + %.1f KB models (%d downloads, %d cache hits)\n",
              session.video_bytes / 1e3, session.model_bytes / 1e3,
              session.model_downloads, session.cache_hits);

  const auto low = core::play_low(dep.video, *video);
  const auto dcsr = core::play_dcsr(dep.video, dep.labels, dep.models, *video);
  std::printf("LOW  : %.2f dB PSNR / %.4f SSIM\n", low.mean_psnr, low.mean_ssim);
  std::printf("dcSR : %.2f dB PSNR / %.4f SSIM  (%+.2f dB)\n", dcsr.mean_psnr,
              dcsr.mean_ssim, dcsr.mean_psnr - low.mean_psnr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage:\n"
                 "  dcsr_cli synth  <out.dcv> [genre] [seed] [seconds] [crf] [slices]\n"
                 "  dcsr_cli decode <in.dcv> <out.yuv>\n"
                 "  dcsr_cli info   <in.dcv>\n"
                 "  dcsr_cli verify <in.dcv> [genre] [seed] [seconds]\n"
                 "  dcsr_cli deploy <dir>    [genre] [seed] [seconds]\n"
                 "  dcsr_cli play   <dir>    [genre] [seed] [seconds]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    std::fprintf(stderr, "%s\n", simd::report().c_str());
    if (cmd == "synth") return cmd_synth(argc - 2, argv + 2);
    if (cmd == "decode") {
      if (argc < 4) {
        std::fprintf(stderr, "usage: dcsr_cli decode <in.dcv> <out.yuv>\n");
        return 2;
      }
      return cmd_decode(argc - 2, argv + 2);
    }
    if (cmd == "info") return cmd_info(argc - 2, argv + 2);
    if (cmd == "verify") return cmd_verify(argc - 2, argv + 2);
    if (cmd == "deploy") return cmd_deploy(argc - 2, argv + 2);
    if (cmd == "play") return cmd_play(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
