// dcsr_fleet — event-driven fleet-scale serving simulator.
//
// Drives 1e5..1e7 synthetic streaming sessions (Zipf video popularity,
// diurnal arrivals, three-device mix) through per-client model caches
// backed by a shared byte-budget LRU edge tier, and reports per-tier
// hit rates, byte totals, latency percentiles and sessions/sec — the
// paper's Fig. 10 network-usage claim restated at fleet scale.
//
//   dcsr_fleet [--sessions N[,N...]] [--videos V] [--skew Z] [--seed S]
//              [--edge-mb M] [--sweep-skew "0.2,0.6,1.0"] [--reps R]
//              [--sr-window MS] [--sr-base-ms MS] [--sr-frame-ms MS]
//              [--sr-demo] [--json out.json]
//
//   --sessions   comma list of fleet sizes to run (default 100000)
//   --videos     catalog size (default 1000)
//   --skew       Zipf popularity exponent for videos (default 0.8)
//   --seed       workload seed (default 1)
//   --edge-mb    shared edge cache budget in MiB (default 16)
//   --sweep-skew run one fleet per skew value, in parallel via
//                run_fleet_sweep, and print hit rate vs skew
//   --reps       replications per configuration (seeds seed..seed+R-1),
//                also through run_fleet_sweep (default 1)
//   --horizon    arrival horizon in seconds (default 86400, one diurnal
//                day; shorter horizons pack the same sessions denser)
//   --sr-window  I-frame SR batching window in ms (0 = every request is
//                its own infer call; default 0)
//   --sr-base-ms per-infer dispatch cost of the SR server model (default 8)
//   --sr-frame-ms marginal per-frame cost of one batch item (default 4)
//   --sr-demo    append the canonical cross-session SR batching comparison:
//                a dense fleet (50k sessions, 200 videos, skew 1.1, 1 h
//                horizon) swept over batching windows {0, 50, 250} ms, so
//                occupancy > 1 and the server-time saving show up in the
//                table and the JSON alongside the scale trajectory
//   --json       write machine-readable results (BENCH_fleet.json format)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "stream/fleet.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace dcsr;
using namespace dcsr::stream;

namespace {

std::vector<double> parse_list(const char* arg) {
  std::vector<double> out;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::atof(s.substr(pos, next - pos).c_str()));
    pos = next + 1;
  }
  return out;
}

struct TimedRun {
  FleetConfig cfg;
  FleetSummary summary;
  double wall_seconds = 0.0;

  double sessions_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(summary.sessions) / wall_seconds
               : 0.0;
  }
};

// Runs a batch of configs through the parallel sweep, timing the whole
// batch and attributing wall time pro rata by session count (individual
// runs overlap, so per-run wall clocks would double-count).
std::vector<TimedRun> run_batch(const std::vector<FleetConfig>& configs) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<FleetSummary> summaries = run_fleet_sweep(configs);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  std::uint64_t total_sessions = 0;
  for (const auto& s : summaries) total_sessions += s.sessions;
  std::vector<TimedRun> out;
  out.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    TimedRun r;
    r.cfg = configs[i];
    r.summary = summaries[i];
    r.wall_seconds =
        total_sessions
            ? wall * static_cast<double>(summaries[i].sessions) /
                  static_cast<double>(total_sessions)
            : wall;
    out.push_back(r);
  }
  return out;
}

void print_runs(const char* title, const std::vector<TimedRun>& runs) {
  std::printf("\n%s\n", title);
  Table t({"sessions", "skew", "edge MiB", "client hit", "edge hit",
           "model KB/user", "fetch p50/p99 ms", "startup p50/p99 s",
           "rebuf p99 s", "sr occ", "sr p99 ms", "sessions/s"});
  for (const auto& r : runs) {
    const auto& s = r.summary;
    t.add_row({std::to_string(s.sessions),
               fmt(r.cfg.workload.video_zipf_skew, 2),
               fmt(static_cast<double>(r.cfg.edge_budget_bytes) / (1 << 20), 0),
               fmt(100.0 * s.client_hit_rate(), 1) + "%",
               fmt(100.0 * s.edge_hit_rate(), 1) + "%",
               fmt(s.model_bytes_per_session() / 1e3, 1),
               fmt(s.fetch_latency_p50_s * 1e3, 1) + "/" +
                   fmt(s.fetch_latency_p99_s * 1e3, 1),
               fmt(s.startup_p50_s, 2) + "/" + fmt(s.startup_p99_s, 2),
               fmt(s.rebuffer_p99_s, 2), fmt(s.sr_batch_occupancy(), 2),
               fmt(s.sr_latency_p99_s * 1e3, 1),
               fmt(r.sessions_per_second(), 0)});
  }
  std::printf("%s", t.to_string().c_str());
}

void write_json(const char* path, const std::vector<TimedRun>& runs) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "dcsr_fleet: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    const auto& s = r.summary;
    std::fprintf(
        f,
        "    {\n"
        "      \"sessions\": %llu,\n"
        "      \"videos\": %d,\n"
        "      \"zipf_skew\": %.4f,\n"
        "      \"seed\": %llu,\n"
        "      \"edge_budget_bytes\": %llu,\n"
        "      \"segments\": %llu,\n"
        "      \"aborted_dead_network\": %llu,\n"
        "      \"client_hit_rate\": %.6f,\n"
        "      \"edge_hit_rate\": %.6f,\n"
        "      \"edge_evictions\": %llu,\n"
        "      \"edge_resident_bytes\": %llu,\n"
        "      \"video_bytes\": %llu,\n"
        "      \"model_bytes_last_mile\": %llu,\n"
        "      \"model_bytes_origin\": %llu,\n"
        "      \"model_bytes_per_user\": %.1f,\n"
        "      \"fetch_latency_p50_s\": %.6f,\n"
        "      \"fetch_latency_p99_s\": %.6f,\n"
        "      \"startup_p50_s\": %.4f,\n"
        "      \"startup_p99_s\": %.4f,\n"
        "      \"rebuffer_p50_s\": %.4f,\n"
        "      \"rebuffer_p99_s\": %.4f,\n"
        "      \"mean_quality_db\": %.4f,\n"
        "      \"advance_heap_allocs\": %llu,\n"
        "      \"advance_heap_allocs_sanctioned\": %llu,\n"
        "      \"sr_batch_window_s\": %.4f,\n"
        "      \"sr_frames\": %llu,\n"
        "      \"sr_batches\": %llu,\n"
        "      \"sr_batch_occupancy\": %.4f,\n"
        "      \"sr_latency_p50_s\": %.6f,\n"
        "      \"sr_latency_p99_s\": %.6f,\n"
        "      \"sr_server_seconds\": %.4f,\n"
        "      \"sr_sessions_per_server_second\": %.2f,\n"
        "      \"wall_seconds\": %.4f,\n"
        "      \"sessions_per_second\": %.1f\n"
        "    }%s\n",
        static_cast<unsigned long long>(s.sessions), r.cfg.workload.videos,
        r.cfg.workload.video_zipf_skew,
        static_cast<unsigned long long>(r.cfg.seed),
        static_cast<unsigned long long>(r.cfg.edge_budget_bytes),
        static_cast<unsigned long long>(s.segments),
        static_cast<unsigned long long>(s.aborted_dead_network),
        s.client_hit_rate(), s.edge_hit_rate(),
        static_cast<unsigned long long>(s.edge_evictions),
        static_cast<unsigned long long>(s.edge_resident_bytes),
        static_cast<unsigned long long>(s.video_bytes),
        static_cast<unsigned long long>(s.model_bytes_last_mile),
        static_cast<unsigned long long>(s.model_bytes_origin),
        s.model_bytes_per_session(), s.fetch_latency_p50_s,
        s.fetch_latency_p99_s, s.startup_p50_s, s.startup_p99_s,
        s.rebuffer_p50_s, s.rebuffer_p99_s, s.mean_quality_db,
        static_cast<unsigned long long>(s.advance_heap_allocs),
        static_cast<unsigned long long>(s.advance_heap_allocs_sanctioned),
        r.cfg.sr_batch_window_seconds,
        static_cast<unsigned long long>(s.sr_frames),
        static_cast<unsigned long long>(s.sr_batches),
        s.sr_batch_occupancy(), s.sr_latency_p50_s, s.sr_latency_p99_s,
        s.sr_server_seconds, s.sr_sessions_per_server_second(),
        r.wall_seconds, r.sessions_per_second(),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> session_counts{100000};
  std::vector<double> skew_sweep;
  int videos = 1000;
  double skew = 0.8;
  std::uint64_t seed = 1;
  double edge_mb = 16.0;
  int reps = 1;
  double horizon_s = 0.0;  // 0 = keep the workload default
  double sr_window_ms = 0.0;
  double sr_base_ms = 8.0;
  double sr_frame_ms = 4.0;
  bool sr_demo = false;
  const char* json_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dcsr_fleet: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--sessions"))
      session_counts = parse_list(need("--sessions"));
    else if (!std::strcmp(argv[i], "--videos"))
      videos = std::atoi(need("--videos"));
    else if (!std::strcmp(argv[i], "--skew"))
      skew = std::atof(need("--skew"));
    else if (!std::strcmp(argv[i], "--seed"))
      seed = static_cast<std::uint64_t>(std::atoll(need("--seed")));
    else if (!std::strcmp(argv[i], "--edge-mb"))
      edge_mb = std::atof(need("--edge-mb"));
    else if (!std::strcmp(argv[i], "--sweep-skew"))
      skew_sweep = parse_list(need("--sweep-skew"));
    else if (!std::strcmp(argv[i], "--reps"))
      reps = std::atoi(need("--reps"));
    else if (!std::strcmp(argv[i], "--horizon"))
      horizon_s = std::atof(need("--horizon"));
    else if (!std::strcmp(argv[i], "--sr-window"))
      sr_window_ms = std::atof(need("--sr-window"));
    else if (!std::strcmp(argv[i], "--sr-base-ms"))
      sr_base_ms = std::atof(need("--sr-base-ms"));
    else if (!std::strcmp(argv[i], "--sr-frame-ms"))
      sr_frame_ms = std::atof(need("--sr-frame-ms"));
    else if (!std::strcmp(argv[i], "--sr-demo"))
      sr_demo = true;
    else if (!std::strcmp(argv[i], "--json"))
      json_path = need("--json");
    else {
      std::fprintf(stderr, "dcsr_fleet: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (session_counts.empty() || reps < 1) {
    std::fprintf(stderr, "dcsr_fleet: nothing to run\n");
    return 2;
  }

  try {
    std::printf("fleet simulator: %d videos, edge budget %.0f MiB, %d thread(s)\n",
                videos, edge_mb, default_thread_count());

    FleetConfig base;
    base.workload.videos = videos;
    base.workload.video_zipf_skew = skew;
    base.edge_budget_bytes =
        static_cast<std::uint64_t>(edge_mb * (1 << 20));
    base.seed = seed;
    if (horizon_s > 0.0) base.workload.horizon_seconds = horizon_s;
    base.sr_batch_window_seconds = sr_window_ms / 1e3;
    base.sr_base_latency_seconds = sr_base_ms / 1e3;
    base.sr_per_frame_seconds = sr_frame_ms / 1e3;

    std::vector<FleetConfig> configs;
    for (const double n : session_counts) {
      for (int r = 0; r < reps; ++r) {
        FleetConfig c = base;
        c.workload.sessions = static_cast<std::size_t>(n);
        c.seed = seed + static_cast<std::uint64_t>(r);
        configs.push_back(c);
      }
    }
    std::vector<TimedRun> runs = run_batch(configs);
    print_runs("fleet scale trajectory", runs);

    if (!skew_sweep.empty()) {
      std::vector<FleetConfig> sweep;
      for (const double z : skew_sweep) {
        FleetConfig c = base;
        c.workload.sessions = static_cast<std::size_t>(session_counts.front());
        c.workload.video_zipf_skew = z;
        sweep.push_back(c);
      }
      const std::vector<TimedRun> sweep_runs = run_batch(sweep);
      print_runs("edge hit rate vs popularity skew", sweep_runs);
      runs.insert(runs.end(), sweep_runs.begin(), sweep_runs.end());
    }

    if (sr_demo) {
      // Dense enough that concurrent sessions actually share cluster models
      // inside a sub-second window; the window=0 row is the unbatched
      // baseline every other row's sr_server_seconds is read against.
      std::vector<FleetConfig> demo;
      for (const double wms : {0.0, 50.0, 250.0}) {
        FleetConfig c = base;
        c.workload.sessions = 50000;
        c.workload.videos = 200;
        c.workload.video_zipf_skew = 1.1;
        c.workload.horizon_seconds = 3600.0;
        c.sr_batch_window_seconds = wms / 1e3;
        demo.push_back(c);
      }
      const std::vector<TimedRun> demo_runs = run_batch(demo);
      print_runs("cross-session SR batching: dense fleet, window {0,50,250} ms",
                 demo_runs);
      runs.insert(runs.end(), demo_runs.begin(), demo_runs.end());
    }

    if (json_path) write_json(json_path, runs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dcsr_fleet: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
