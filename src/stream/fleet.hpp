#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "stream/workload.hpp"

namespace dcsr::stream {

/// Byte-budget LRU cache for the shared CDN/edge tier, keyed by global
/// cluster id. Unlike the client-side ModelCache (Algorithm 1, unbounded —
/// a client only ever holds one video's handful of micro models), the edge
/// serves the whole fleet and must evict: inserting past the budget drops
/// least-recently-used entries until the new one fits. Objects larger than
/// the whole budget are served but never admitted (counted as bypasses).
class LruByteCache {
 public:
  explicit LruByteCache(std::uint64_t budget_bytes);

  /// Looks up `key`; returns true on a hit (refreshing its recency). On a
  /// miss the entry is admitted with `bytes`, evicting LRU entries as
  /// needed, and false is returned.
  bool fetch(int key, std::uint64_t bytes);

  bool contains(int key) const noexcept { return map_.count(key) > 0; }

  /// Keys from least- to most-recently used — lets tests pin the exact
  /// eviction order instead of just the survivor set.
  std::vector<int> keys_lru_to_mru() const;

  std::uint64_t budget_bytes() const noexcept { return budget_; }
  std::uint64_t resident_bytes() const noexcept { return resident_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t bypasses() const noexcept { return bypasses_; }
  std::size_t size() const noexcept { return map_.size(); }

 private:
  struct Entry {
    int key;
    std::uint64_t bytes;
  };
  std::uint64_t budget_;
  std::uint64_t resident_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, bypasses_ = 0;
  std::list<Entry> order_;  // front = MRU, back = LRU
  std::unordered_map<int, std::list<Entry>::iterator> map_;
};

/// Fixed-bin latency/duration histogram: deterministic percentile estimates
/// in O(bins) memory regardless of how many sessions stream, so a 1e7-user
/// run does not hold 1e8 raw samples. Samples beyond the binned range land
/// in an overflow bucket whose percentile reports the exact maximum seen.
class DurationHistogram {
 public:
  DurationHistogram(double bin_seconds, std::size_t bins);

  void add(double seconds) noexcept;

  /// p in [0, 100]; returns the midpoint of the bin holding the p-th
  /// percentile sample (0 when empty, the exact max for overflow samples).
  double percentile(double p) const noexcept;

  std::uint64_t count() const noexcept { return total_; }

 private:
  std::vector<std::uint64_t> counts_;
  double bin_seconds_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
  double max_seen_ = 0.0;
};

/// Everything that parameterises one fleet run on top of the workload: the
/// ABR policy every client runs, the shared edge tier, and the network.
struct FleetConfig {
  WorkloadConfig workload;
  AbrConfig abr;
  std::uint64_t seed = 1;

  std::uint64_t edge_budget_bytes = 16ull << 20;  // shared edge model cache
  double edge_latency_seconds = 0.02;    // model fetch RTT, edge hit
  double origin_latency_seconds = 0.25;  // edge miss → origin round trip

  /// Base last-mile throughput (bytes/s) before the per-device-class scale;
  /// each class gets its own seeded Markov (Gilbert-Elliott) trace over the
  /// workload horizon.
  double base_rate_bytes_per_s = 60000.0;

  /// I-frame SR serving model. Every segment that carries a cluster model
  /// costs one I-frame enhancement; the serving tier runs Edsr
  /// enhance_batch_into, so concurrent requests for the *same* cluster model
  /// can share one batched infer call. With `sr_batch_window_seconds == 0`
  /// every request is its own batch (occupancy 1). With a positive window,
  /// the first request for a cluster opens a batch that closes `window`
  /// seconds later; requests arriving before the close join it. A batch of k
  /// frames occupies the server for `base + k * per_frame` seconds and each
  /// member observes `wait_until_close + base + k * per_frame` latency.
  /// Serving is accounted out-of-band (it never perturbs the ABR loop), so
  /// enabling batching changes only the sr_* summary fields.
  double sr_batch_window_seconds = 0.0;
  double sr_base_latency_seconds = 0.008;  // per-infer dispatch + weight traffic
  double sr_per_frame_seconds = 0.004;     // marginal cost of one batch item
};

/// Aggregate of one fleet run. Deliberately flat (no heap members): sweep
/// replications write their summaries into disjoint slots under
/// parallel_for_writes, so the struct's own bytes are the declared claim.
struct FleetSummary {
  std::uint64_t sessions = 0;
  std::uint64_t aborted_dead_network = 0;
  std::uint64_t segments = 0;

  std::uint64_t video_bytes = 0;
  std::uint64_t model_bytes_last_mile = 0;  // model bytes clients downloaded
  std::uint64_t model_bytes_origin = 0;     // model bytes edge pulled from origin

  // Heap traffic observed inside the guarded per-event advance step (zero
  // unless the build carries the DCSR_ALLOC_CHECK interposer). Every raw
  // allocation must be sanctioned (cache admissions, first-touch growth) —
  // the fleet loop itself is heap-silent, and tests pin the two equal.
  std::uint64_t advance_heap_allocs = 0;
  std::uint64_t advance_heap_allocs_sanctioned = 0;

  std::uint64_t client_hits = 0;    // served from the device's ModelCache
  std::uint64_t client_misses = 0;  // had to leave the device
  std::uint64_t edge_hits = 0;      // client misses served by the edge tier
  std::uint64_t edge_misses = 0;    // went all the way to origin
  std::uint64_t edge_evictions = 0;
  std::uint64_t edge_bypasses = 0;
  std::uint64_t edge_resident_bytes = 0;  // cache occupancy at end of run

  // Model-fetch latency across all client fetch attempts (client hits are
  // 0 s) and per-session playback health, as histogram percentiles.
  double fetch_latency_p50_s = 0.0, fetch_latency_p99_s = 0.0;
  double startup_p50_s = 0.0, startup_p99_s = 0.0;
  double rebuffer_p50_s = 0.0, rebuffer_p99_s = 0.0;

  // I-frame SR serving: frames enhanced, batched infer calls issued, and
  // the per-frame latency (batch wait + service) distribution. With the
  // batch window off, sr_batches == sr_frames and occupancy is exactly 1.
  std::uint64_t sr_frames = 0;
  std::uint64_t sr_batches = 0;
  double sr_latency_p50_s = 0.0, sr_latency_p99_s = 0.0;
  double sr_server_seconds = 0.0;  // total server busy time across batches

  double mean_quality_db = 0.0;
  double mean_rung = 0.0;

  double client_hit_rate() const noexcept {
    const auto n = client_hits + client_misses;
    return n ? static_cast<double>(client_hits) / static_cast<double>(n) : 0.0;
  }
  double edge_hit_rate() const noexcept {
    const auto n = edge_hits + edge_misses;
    return n ? static_cast<double>(edge_hits) / static_cast<double>(n) : 0.0;
  }
  double model_bytes_per_session() const noexcept {
    return sessions ? static_cast<double>(model_bytes_last_mile) /
                          static_cast<double>(sessions)
                    : 0.0;
  }
  double total_bytes_per_session() const noexcept {
    return sessions ? static_cast<double>(video_bytes + model_bytes_last_mile) /
                          static_cast<double>(sessions)
                    : 0.0;
  }
  double sr_batch_occupancy() const noexcept {
    return sr_batches ? static_cast<double>(sr_frames) /
                            static_cast<double>(sr_batches)
                      : 0.0;
  }
  /// Sessions one SR server can sustain per busy-second — the serving-side
  /// throughput figure batching is meant to improve.
  double sr_sessions_per_server_second() const noexcept {
    return sr_server_seconds > 0.0
               ? static_cast<double>(sessions) / sr_server_seconds
               : 0.0;
  }
};

/// Runs the event-driven fleet simulation: sessions arrive per the
/// workload's diurnal process and advance segment by segment through a
/// single time-ordered event queue — each step is an AbrSession download
/// whose micro model resolves through client cache → shared edge LRU →
/// origin, with the tier latency charged onto that segment's download.
/// Fully deterministic from cfg (+ its seed): repeated runs produce
/// field-for-field identical summaries.
FleetSummary run_fleet(const FleetConfig& cfg);

/// Runs independent fleet configurations (replication seeds, skew sweeps)
/// in parallel through parallel_for_writes — one config per output slot, so
/// the PR-1 bit-identical-across-DCSR_THREADS contract holds: each run is
/// self-contained and serial inside, and slots are disjoint claims.
std::vector<FleetSummary> run_fleet_sweep(const std::vector<FleetConfig>& configs);

}  // namespace dcsr::stream
