#pragma once

#include <set>

namespace dcsr::stream {

/// Algorithm 1 of the paper: the client-side micro-model cache. Models are
/// keyed by cluster label; once downloaded, a model is never fetched again —
/// segments that revisit an earlier scene (the long-term temporal
/// correlation dcSR exploits) hit the cache.
class ModelCache {
 public:
  /// Looks up a label, downloading on miss (the DOWNLOAD(L) of line 6).
  /// Returns true on a cache hit.
  bool fetch(int label);

  bool contains(int label) const noexcept { return cache_.count(label) > 0; }

  int hits() const noexcept { return hits_; }
  int downloads() const noexcept { return downloads_; }
  std::size_t size() const noexcept { return cache_.size(); }

  void clear() noexcept {
    cache_.clear();
    hits_ = 0;
    downloads_ = 0;
  }

 private:
  std::set<int> cache_;
  int hits_ = 0;
  int downloads_ = 0;
};

}  // namespace dcsr::stream
