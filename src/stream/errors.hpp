#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace dcsr::stream {

/// Thrown when a manifest fails to parse — the binary form or the text
/// playlist. Derives std::invalid_argument (what parse_playlist historically
/// threw). `where()` is a byte offset for the binary manifest and a 1-based
/// line number for the text playlist; the what() string says which.
class ManifestError : public std::invalid_argument {
 public:
  ManifestError(const std::string& what, std::size_t where,
                const char* unit = "byte offset")
      : std::invalid_argument(what + " (" + unit + " " + std::to_string(where) +
                              ")"),
        where_(where) {}

  std::size_t where() const noexcept { return where_; }

 private:
  std::size_t where_;
};

/// Thrown when a model bundle fails structural validation: bad magic,
/// implausible entry count, truncated or corrupt payload. Derives
/// std::invalid_argument; `byte_offset()` names the offending field.
class BundleError : public std::invalid_argument {
 public:
  BundleError(const std::string& what, std::size_t byte_offset)
      : std::invalid_argument(what + " (byte offset " +
                              std::to_string(byte_offset) + ")"),
        byte_offset_(byte_offset) {}

  std::size_t byte_offset() const noexcept { return byte_offset_; }

 private:
  std::size_t byte_offset_;
};

}  // namespace dcsr::stream
