#pragma once

#include <string>

#include "stream/manifest.hpp"

namespace dcsr::stream {

/// Text playlist format for dcSR manifests — the HLS-flavoured integration
/// surface a real CDN/player pair would exchange. One line per directive:
///
///   #DCSR-PLAYLIST:1
///   #MODELS:<count>
///   #MODEL:<label>:<bytes>
///   #SEGMENT:<index>:<frames>:<video-bytes>:<model-label|->
///   #END
///
/// Labels use "-" for kNoModel. The parser is strict: unknown directives,
/// out-of-range labels, or a missing #END throw std::invalid_argument.
std::string write_playlist(const Manifest& manifest);

Manifest parse_playlist(const std::string& text);

}  // namespace dcsr::stream
