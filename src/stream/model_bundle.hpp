#pragma once

#include <cstdint>
#include <vector>

#include "util/serialize.hpp"

namespace dcsr::stream {

/// A labelled, integrity-checked package of serialised micro models — what
/// the CDN actually stores and the client actually downloads. Each entry is
/// a label plus an opaque payload (fp32 or fp16 model bytes) with a CRC-32;
/// the client can fetch and verify one model without touching the rest.
struct ModelBundleEntry {
  int label = 0;
  std::vector<std::uint8_t> payload;
};

class ModelBundle {
 public:
  /// Adds a model; labels must be unique.
  void add(int label, std::vector<std::uint8_t> payload);

  bool contains(int label) const noexcept;
  const std::vector<std::uint8_t>& payload(int label) const;

  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<ModelBundleEntry>& entries() const noexcept { return entries_; }

  /// Total serialised size (what a full-bundle download costs).
  std::uint64_t total_bytes() const noexcept;

  /// Wire format: magic | count | per entry (label | size | crc32 | bytes).
  void serialize(ByteWriter& out) const;

  /// Parses and verifies every entry's CRC; throws std::invalid_argument on
  /// corruption, duplicate labels, or truncation.
  static ModelBundle deserialize(ByteReader& in);

 private:
  std::vector<ModelBundleEntry> entries_;
};

}  // namespace dcsr::stream
