#include "stream/playlist.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "stream/errors.hpp"

namespace dcsr::stream {

namespace {

[[noreturn]] void fail(const std::string& why, std::size_t line_no = 0) {
  throw ManifestError("parse_playlist: " + why, line_no, "line");
}

// Splits "a:b:c" after a known prefix into fields.
std::vector<std::string> fields_after(const std::string& line,
                                      const std::string& prefix) {
  std::vector<std::string> out;
  std::string rest = line.substr(prefix.size());
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = rest.find(':', pos);
    if (next == std::string::npos) {
      out.push_back(rest.substr(pos));
      break;
    }
    out.push_back(rest.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

std::uint64_t to_u64(const std::string& s, std::size_t line_no) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size())
    fail("bad number '" + s + "'", line_no);
  return v;
}

}  // namespace

std::string write_playlist(const Manifest& manifest) {
  std::ostringstream os;
  os << "#DCSR-PLAYLIST:1\n";
  os << "#MODELS:" << manifest.model_bytes.size() << '\n';
  for (std::size_t m = 0; m < manifest.model_bytes.size(); ++m)
    os << "#MODEL:" << m << ':' << manifest.model_bytes[m] << '\n';
  for (const auto& seg : manifest.segments) {
    os << "#SEGMENT:" << seg.segment_index << ':' << seg.frame_count << ':'
       << seg.video_bytes << ':';
    if (seg.model_label == kNoModel) {
      os << '-';
    } else {
      os << seg.model_label;
    }
    os << '\n';
  }
  os << "#END\n";
  return os.str();
}

Manifest parse_playlist(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  const auto next_line = [&]() -> bool {
    if (!std::getline(is, line)) return false;
    ++line_no;
    return true;
  };

  if (!next_line() || line != "#DCSR-PLAYLIST:1")
    fail("missing or unsupported header", line_no);

  Manifest manifest;
  if (!next_line() || line.rfind("#MODELS:", 0) != 0)
    fail("missing #MODELS", line_no);
  const auto n_models = to_u64(line.substr(8), line_no);
  if (n_models > 1u << 20) fail("implausible model count", line_no);

  for (std::uint64_t m = 0; m < n_models; ++m) {
    if (!next_line() || line.rfind("#MODEL:", 0) != 0)
      fail("missing #MODEL line", line_no);
    const auto f = fields_after(line, "#MODEL:");
    if (f.size() != 2) fail("malformed #MODEL", line_no);
    if (to_u64(f[0], line_no) != m)
      fail("model labels must be dense and ordered", line_no);
    manifest.model_bytes.push_back(to_u64(f[1], line_no));
  }

  bool ended = false;
  while (next_line()) {
    if (line.empty()) continue;
    if (line == "#END") {
      ended = true;
      break;
    }
    if (line.rfind("#SEGMENT:", 0) != 0)
      fail("unknown directive: " + line, line_no);
    const auto f = fields_after(line, "#SEGMENT:");
    if (f.size() != 4) fail("malformed #SEGMENT", line_no);
    SegmentEntry seg;
    seg.segment_index = static_cast<int>(to_u64(f[0], line_no));
    seg.frame_count = static_cast<int>(to_u64(f[1], line_no));
    seg.video_bytes = to_u64(f[2], line_no);
    if (f[3] == "-") {
      seg.model_label = kNoModel;
    } else {
      seg.model_label = static_cast<int>(to_u64(f[3], line_no));
      if (static_cast<std::size_t>(seg.model_label) >= manifest.model_bytes.size())
        fail("segment references unknown model", line_no);
    }
    if (seg.segment_index != static_cast<int>(manifest.segments.size()))
      fail("segments must be dense and ordered", line_no);
    manifest.segments.push_back(seg);
  }
  if (!ended) fail("missing #END", line_no);
  return manifest;
}

}  // namespace dcsr::stream
