#pragma once

#include <vector>

#include "stream/manifest.hpp"
#include "stream/model_cache.hpp"

namespace dcsr::stream {

struct SessionConfig {
  /// Caching per Algorithm 1. Disabling it re-downloads a model every time
  /// its label appears — the ablation quantifying what the cache saves.
  bool enable_model_cache = true;

  /// Stop after this many segments (-1 = play to the end). Lets experiments
  /// model users who abandon a video early — the scenario where NAS/NEMO's
  /// download-everything-up-front model wastes the most bandwidth.
  int watch_segments = -1;
};

/// Per-segment download record.
struct SegmentLog {
  int segment_index = 0;
  std::uint64_t video_bytes = 0;
  std::uint64_t model_bytes = 0;  // 0 on cache hit or kNoModel
  bool cache_hit = false;
};

/// Network usage of one playback session.
struct SessionResult {
  std::vector<SegmentLog> log;
  std::uint64_t video_bytes = 0;
  std::uint64_t model_bytes = 0;
  int model_downloads = 0;
  int cache_hits = 0;

  std::uint64_t total_bytes() const noexcept { return video_bytes + model_bytes; }
};

/// Simulates a playback session against a manifest: fetch each segment's
/// video bytes, consult the cache for its model, download on miss.
/// Single-model manifests (NAS/NEMO) naturally download their model once,
/// with the first segment — matching "downloaded in the beginning of the
/// video streaming".
SessionResult simulate_session(const Manifest& manifest,
                               const SessionConfig& cfg = {});

}  // namespace dcsr::stream
