#include "stream/abr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcsr::stream {

double ThroughputTrace::bytes_between(double t0, double t1) const noexcept {
  if (bytes_per_second.empty() || t1 <= t0) return 0.0;
  double total = 0.0;
  double t = t0;
  while (t < t1) {
    const auto idx = std::min<std::size_t>(
        static_cast<std::size_t>(t), bytes_per_second.size() - 1);
    const double slice_end = std::min(t1, std::floor(t) + 1.0);
    total += bytes_per_second[idx] * (slice_end - t);
    t = slice_end;
  }
  return total;
}

double ThroughputTrace::seconds_to_download(double t0, double bytes) const noexcept {
  if (bytes <= 0.0) return 0.0;
  if (bytes_per_second.empty()) return 1e18;
  double remaining = bytes;
  double t = t0;
  while (true) {
    const auto idx = std::min<std::size_t>(
        static_cast<std::size_t>(t), bytes_per_second.size() - 1);
    const double rate = bytes_per_second[idx];
    const double slice_end = std::floor(t) + 1.0;
    const double slice = slice_end - t;
    if (rate > 0.0 && remaining <= rate * slice) return (t + remaining / rate) - t0;
    remaining -= rate * slice;
    t = slice_end;
    if (t - t0 > 1e7) return 1e18;  // dead network
  }
}

AbrResult simulate_abr(const std::vector<Rung>& ladder,
                       const std::vector<std::uint64_t>& model_bytes_per_segment,
                       const ThroughputTrace& network, const AbrConfig& cfg) {
  if (ladder.empty() || ladder[0].segment_bytes.empty())
    throw std::invalid_argument("simulate_abr: empty ladder");
  const std::size_t n_segments = ladder[0].segment_bytes.size();
  for (const auto& rung : ladder)
    if (rung.segment_bytes.size() != n_segments)
      throw std::invalid_argument("simulate_abr: ladder rungs disagree on segments");
  if (!model_bytes_per_segment.empty() &&
      model_bytes_per_segment.size() != n_segments)
    throw std::invalid_argument("simulate_abr: model byte vector length mismatch");

  AbrResult result;
  double clock = 0.0;           // wall time
  double buffer = 0.0;          // seconds of video buffered
  double est_throughput = 0.0;  // EWMA, bytes/s (0 = no sample yet)
  bool started = false;

  for (std::size_t i = 0; i < n_segments; ++i) {
    // --- rung selection -----------------------------------------------------
    int rung = 0;
    if (cfg.policy == AbrPolicy::kBufferBased) {
      // Linear map from buffer occupancy: lowest rung inside the reservoir,
      // top rung when the buffer approaches its cap.
      const double cushion =
          std::max(1e-9, cfg.max_buffer_seconds - cfg.reservoir_seconds -
                             cfg.segment_seconds);
      const double level =
          std::clamp((buffer - cfg.reservoir_seconds) / cushion, 0.0, 1.0);
      rung = static_cast<int>(
          std::floor(level * static_cast<double>(ladder.size() - 1) + 0.5));
    } else if (est_throughput > 0.0) {
      for (int r = static_cast<int>(ladder.size()) - 1; r >= 0; --r) {
        const double rate_needed =
            static_cast<double>(ladder[static_cast<std::size_t>(r)].segment_bytes[i]) /
            cfg.segment_seconds;
        if (rate_needed <= cfg.safety * est_throughput) {
          rung = r;
          break;
        }
      }
    }
    if (cfg.dcsr_aware) {
      // Stop climbing once enhancement already reaches the target quality:
      // take the LOWEST rung that satisfies the target (subject to the
      // throughput cap chosen above).
      for (int r = 0; r <= rung; ++r) {
        if (ladder[static_cast<std::size_t>(r)].enhanced_quality_db >=
            cfg.target_quality_db) {
          rung = r;
          break;
        }
      }
    }

    // --- download -------------------------------------------------------------
    const double model_bytes =
        model_bytes_per_segment.empty()
            ? 0.0
            : static_cast<double>(model_bytes_per_segment[i]);
    const double bytes =
        static_cast<double>(ladder[static_cast<std::size_t>(rung)].segment_bytes[i]) +
        model_bytes;
    const double dl = network.seconds_to_download(clock, bytes);

    AbrSegmentLog log;
    log.segment = static_cast<int>(i);
    log.rung = rung;
    log.download_seconds = dl;
    log.bytes = static_cast<std::uint64_t>(bytes);

    // --- buffer dynamics --------------------------------------------------------
    // Playback drains the buffer while we download (after startup).
    if (started) {
      if (buffer >= dl) {
        buffer -= dl;
      } else {
        log.rebuffer_seconds = dl - buffer;
        buffer = 0.0;
      }
    }
    clock += dl;
    buffer += cfg.segment_seconds;
    if (!started && buffer >= cfg.startup_buffer_seconds) started = true;
    // Respect the buffer cap: wait (playing) before requesting more.
    if (buffer > cfg.max_buffer_seconds) {
      const double wait = buffer - cfg.max_buffer_seconds;
      clock += wait;
      buffer = cfg.max_buffer_seconds;
    }

    // --- state updates -----------------------------------------------------------
    if (dl > 0.0) {
      const double sample = bytes / dl;
      est_throughput = est_throughput == 0.0
                           ? sample
                           : cfg.ewma_alpha * sample +
                                 (1.0 - cfg.ewma_alpha) * est_throughput;
    }
    const auto& chosen = ladder[static_cast<std::size_t>(rung)];
    log.quality_db =
        cfg.dcsr_aware ? chosen.enhanced_quality_db : chosen.base_quality_db;

    result.rebuffer_seconds += log.rebuffer_seconds;
    result.total_bytes += log.bytes;
    result.mean_quality_db += log.quality_db;
    result.mean_rung += rung;
    result.log.push_back(log);
  }

  const auto n = static_cast<double>(n_segments);
  result.mean_quality_db /= n;
  result.mean_rung /= n;
  return result;
}

double qoe_score(const AbrResult& result, const QoeWeights& weights) {
  if (result.log.empty()) return 0.0;
  double switches = 0.0;
  for (std::size_t i = 1; i < result.log.size(); ++i)
    switches += std::abs(result.log[i].quality_db - result.log[i - 1].quality_db);
  const auto n = static_cast<double>(result.log.size());
  return result.mean_quality_db - weights.switch_penalty * switches / n -
         weights.rebuffer_penalty * result.rebuffer_seconds / n;
}

}  // namespace dcsr::stream
