#include "stream/abr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcsr::stream {

namespace {

// Trace slot for a (possibly negative, possibly huge) time. Negative clocks
// clamp to slot 0 and times beyond the trace clamp to the last slot — both
// previously went through a raw double→size_t cast, which is UB for negative
// or out-of-range values.
std::size_t trace_slot(double t, std::size_t n) noexcept {
  if (!(t > 0.0)) return 0;  // negative, zero, NaN
  if (t >= static_cast<double>(n)) return n - 1;
  return static_cast<std::size_t>(t);
}

}  // namespace

double ThroughputTrace::bytes_between(double t0, double t1) const noexcept {
  t0 = std::max(t0, 0.0);
  t1 = std::max(t1, 0.0);
  if (bytes_per_second.empty() || t1 <= t0) return 0.0;
  const auto n = static_cast<double>(bytes_per_second.size());
  double total = 0.0;
  double t = t0;
  while (t < t1) {
    // Beyond the trace the last value repeats forever: close the form
    // instead of iterating (for t large enough that floor(t)+1 == t the
    // second-by-second loop would never advance).
    if (t >= n) {
      total += bytes_per_second.back() * (t1 - t);
      break;
    }
    const auto idx = trace_slot(t, bytes_per_second.size());
    const double slice_end = std::min(t1, std::floor(t) + 1.0);
    total += bytes_per_second[idx] * (slice_end - t);
    t = slice_end;
  }
  return total;
}

double ThroughputTrace::seconds_to_download(double t0, double bytes) const noexcept {
  t0 = std::max(t0, 0.0);
  if (bytes <= 0.0) return 0.0;
  if (bytes_per_second.empty()) return kDeadNetworkSeconds;
  const auto n = static_cast<double>(bytes_per_second.size());
  double remaining = bytes;
  double t = t0;
  while (true) {
    // Past the trace end the rate is constant (last value repeats): either
    // it delivers the rest in closed form or the link is dead. This also
    // avoids the non-terminating loop at times where floor(t)+1 == t.
    if (t >= n) {
      const double rate = bytes_per_second.back();
      // (t - t0) first: at huge t0 the remainder term would cancel out of
      // (t + remaining/rate) - t0 entirely.
      const double total = rate > 0.0 ? (t - t0) + remaining / rate
                                      : kDeadNetworkSeconds;
      // Keep the historical horizon: a link that needs more than 1e7 s is
      // as good as dead, whatever its nominal rate.
      return total > 1e7 ? kDeadNetworkSeconds : total;
    }
    const auto idx = trace_slot(t, bytes_per_second.size());
    const double rate = bytes_per_second[idx];
    const double slice_end = std::floor(t) + 1.0;
    const double slice = slice_end - t;
    if (rate > 0.0 && remaining <= rate * slice) return (t + remaining / rate) - t0;
    remaining -= rate * slice;
    t = slice_end;
    if (t - t0 > 1e7) return kDeadNetworkSeconds;  // dead network
  }
}

AbrSession::AbrSession(const std::vector<Rung>& ladder, const AbrConfig& cfg,
                       double start_clock)
    : ladder_(&ladder), cfg_(cfg), clock_(start_clock) {
  if (ladder.empty() || ladder[0].segment_bytes.empty())
    throw std::invalid_argument("AbrSession: empty ladder");
  n_segments_ = ladder[0].segment_bytes.size();
  for (const auto& rung : ladder)
    if (rung.segment_bytes.size() != n_segments_)
      throw std::invalid_argument("AbrSession: ladder rungs disagree on segments");
}

int AbrSession::choose_rung(std::size_t segment) const {
  const std::vector<Rung>& ladder = *ladder_;
  int rung = 0;
  if (cfg_.policy == AbrPolicy::kBufferBased) {
    // Linear map from buffer occupancy: lowest rung inside the reservoir,
    // top rung when the buffer approaches its cap.
    const double cushion =
        std::max(1e-9, cfg_.max_buffer_seconds - cfg_.reservoir_seconds -
                           cfg_.segment_seconds);
    const double level =
        std::clamp((buffer_ - cfg_.reservoir_seconds) / cushion, 0.0, 1.0);
    rung = static_cast<int>(
        std::floor(level * static_cast<double>(ladder.size() - 1) + 0.5));
  } else if (est_throughput_ > 0.0) {
    for (int r = static_cast<int>(ladder.size()) - 1; r >= 0; --r) {
      const double rate_needed =
          static_cast<double>(
              ladder[static_cast<std::size_t>(r)].segment_bytes[segment]) /
          cfg_.segment_seconds;
      if (rate_needed <= cfg_.safety * est_throughput_) {
        rung = r;
        break;
      }
    }
  }
  if (cfg_.dcsr_aware) {
    // Stop climbing once enhancement already reaches the target quality:
    // take the LOWEST rung that satisfies the target (subject to the
    // throughput cap chosen above).
    for (int r = 0; r <= rung; ++r) {
      if (ladder[static_cast<std::size_t>(r)].enhanced_quality_db >=
          cfg_.target_quality_db) {
        rung = r;
        break;
      }
    }
  }
  return rung;
}

AbrSegmentLog AbrSession::step(std::size_t segment, int rung, double model_bytes,
                               double extra_seconds,
                               const ThroughputTrace& network) {
  const std::vector<Rung>& ladder = *ladder_;
  const double bytes =
      static_cast<double>(
          ladder[static_cast<std::size_t>(rung)].segment_bytes[segment]) +
      model_bytes;
  const double net_dl = network.seconds_to_download(clock_, bytes);

  AbrSegmentLog log;
  log.segment = static_cast<int>(segment);
  log.rung = rung;
  log.download_seconds = net_dl;
  log.bytes = static_cast<std::uint64_t>(bytes);
  const auto& chosen = ladder[static_cast<std::size_t>(rung)];
  log.quality_db =
      cfg_.dcsr_aware ? chosen.enhanced_quality_db : chosen.base_quality_db;

  if (net_dl >= kDeadNetworkSeconds) {
    // The link will never deliver this segment. Do NOT fold the sentinel
    // into the clock, the buffer or the EWMA — flag the stall and freeze
    // all accounting at this point.
    dead_network_ = true;
    return log;
  }
  const double dl = net_dl + extra_seconds;
  log.download_seconds = dl;

  // --- buffer dynamics ------------------------------------------------------
  // Playback drains the buffer while we download (after startup). Before
  // playback starts, the same wall time is startup delay: it was previously
  // dropped on the floor, under-reporting slow starts.
  if (started_) {
    if (buffer_ >= dl) {
      buffer_ -= dl;
    } else {
      log.rebuffer_seconds = dl - buffer_;
      buffer_ = 0.0;
    }
  } else {
    log.startup_seconds = dl;
    startup_seconds_ += dl;
  }
  clock_ += dl;
  buffer_ += cfg_.segment_seconds;
  if (!started_ && buffer_ >= cfg_.startup_buffer_seconds) started_ = true;
  // Respect the buffer cap: wait (playing) before requesting more.
  if (buffer_ > cfg_.max_buffer_seconds) {
    const double wait = buffer_ - cfg_.max_buffer_seconds;
    clock_ += wait;
    buffer_ = cfg_.max_buffer_seconds;
  }

  // --- state updates --------------------------------------------------------
  // The EWMA samples the network's actual delivery rate, so cache-tier
  // latency (extra_seconds) is excluded: it does not reflect link capacity.
  if (net_dl > 0.0) {
    const double sample = bytes / net_dl;
    est_throughput_ = est_throughput_ == 0.0
                          ? sample
                          : cfg_.ewma_alpha * sample +
                                (1.0 - cfg_.ewma_alpha) * est_throughput_;
  }
  return log;
}

AbrResult simulate_abr(const std::vector<Rung>& ladder,
                       const std::vector<std::uint64_t>& model_bytes_per_segment,
                       const ThroughputTrace& network, const AbrConfig& cfg) {
  if (ladder.empty() || ladder[0].segment_bytes.empty())
    throw std::invalid_argument("simulate_abr: empty ladder");
  const std::size_t n_segments = ladder[0].segment_bytes.size();
  for (const auto& rung : ladder)
    if (rung.segment_bytes.size() != n_segments)
      throw std::invalid_argument("simulate_abr: ladder rungs disagree on segments");
  if (!model_bytes_per_segment.empty() &&
      model_bytes_per_segment.size() != n_segments)
    throw std::invalid_argument("simulate_abr: model byte vector length mismatch");

  AbrSession session(ladder, cfg);
  AbrResult result;
  for (std::size_t i = 0; i < n_segments; ++i) {
    const int rung = session.choose_rung(i);
    const double model_bytes =
        model_bytes_per_segment.empty()
            ? 0.0
            : static_cast<double>(model_bytes_per_segment[i]);
    const AbrSegmentLog log = session.step(i, rung, model_bytes, 0.0, network);
    if (session.dead_network()) {
      result.aborted_dead_network = true;
      break;
    }
    result.rebuffer_seconds += log.rebuffer_seconds;
    result.total_bytes += log.bytes;
    result.mean_quality_db += log.quality_db;
    result.mean_rung += rung;
    result.log.push_back(log);
  }
  result.startup_seconds = session.startup_seconds();

  // Means are over the segments actually delivered — an aborted session must
  // not divide by segments it never played (or by zero).
  if (!result.log.empty()) {
    const auto n = static_cast<double>(result.log.size());
    result.mean_quality_db /= n;
    result.mean_rung /= n;
  }
  return result;
}

double qoe_score(const AbrResult& result, const QoeWeights& weights) {
  if (result.log.empty()) return 0.0;
  double switches = 0.0;
  for (std::size_t i = 1; i < result.log.size(); ++i)
    switches += std::abs(result.log[i].quality_db - result.log[i - 1].quality_db);
  const auto n = static_cast<double>(result.log.size());
  return result.mean_quality_db - weights.switch_penalty * switches / n -
         weights.rebuffer_penalty * result.rebuffer_seconds / n -
         weights.startup_penalty * result.startup_seconds / n;
}

}  // namespace dcsr::stream
