#include "stream/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "stream/manifest.hpp"  // kNoModel
#include "stream/model_cache.hpp"
#include "stream/net_traces.hpp"
#include "util/alloc_check.hpp"
#include "util/thread_pool.hpp"

namespace dcsr::stream {

// ---------------------------------------------------------------------------
// LruByteCache

LruByteCache::LruByteCache(std::uint64_t budget_bytes) : budget_(budget_bytes) {}

bool LruByteCache::fetch(int key, std::uint64_t bytes) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);  // refresh to MRU
    return true;
  }
  ++misses_;
  if (bytes > budget_) {
    // Larger than the whole cache: serve it but never admit it, otherwise
    // one oversized object would flush the entire tier.
    ++bypasses_;
    return false;
  }
  while (resident_ + bytes > budget_ && !order_.empty()) {
    const Entry& victim = order_.back();
    resident_ -= victim.bytes;
    map_.erase(victim.key);
    order_.pop_back();
    ++evictions_;
  }
  {
    // Admission allocates a list node and a map slot by design (this models
    // an edge-tier download, not per-frame work), so it is sanctioned even
    // when the caller holds a hot-path guard.
    AllocAllowScope allow;
    order_.push_front({key, bytes});
    map_[key] = order_.begin();
  }
  resident_ += bytes;
  return false;
}

std::vector<int> LruByteCache::keys_lru_to_mru() const {
  std::vector<int> keys;
  keys.reserve(order_.size());
  for (auto it = order_.rbegin(); it != order_.rend(); ++it)
    keys.push_back(it->key);
  return keys;
}

// ---------------------------------------------------------------------------
// DurationHistogram

DurationHistogram::DurationHistogram(double bin_seconds, std::size_t bins)
    : counts_(bins, 0), bin_seconds_(bin_seconds) {}

void DurationHistogram::add(double seconds) noexcept {
  seconds = std::max(seconds, 0.0);
  max_seen_ = std::max(max_seen_, seconds);
  const auto bin = static_cast<std::size_t>(seconds / bin_seconds_);
  if (bin < counts_.size())
    ++counts_[bin];
  else
    ++overflow_;
  ++total_;
}

double DurationHistogram::percentile(double p) const noexcept {
  if (total_ == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) >= target && counts_[b] > 0)
      return (static_cast<double>(b) + 0.5) * bin_seconds_;
  }
  return max_seen_;  // percentile falls in the overflow bucket
}

// ---------------------------------------------------------------------------
// Event-driven fleet loop

namespace {

// Per-session live state, created at arrival and destroyed at completion.
// The AbrSession's clock is wall time (seeded with the arrival), so every
// session reads the shared diurnal traces at the right offset.
struct ActiveSession {
  AbrSession abr;
  ModelCache client_cache;  // Algorithm 1, per device
  std::uint32_t spec = 0;   // index into workload.sessions
  int next_segment = 0;
  double quality_sum = 0.0;
  double rung_sum = 0.0;
  double rebuffer_sum = 0.0;

  ActiveSession(const std::vector<Rung>& ladder, const AbrConfig& cfg,
                double arrival, std::uint32_t spec_index)
      : abr(ladder, cfg, arrival), spec(spec_index) {}
};

struct Event {
  double time = 0.0;
  std::uint32_t session = 0;
};

// Min-heap ordering with a session-id tie-break: simultaneous events pop in
// a deterministic order, never in heap-internal order.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.session > b.session;
  }
};

}  // namespace

FleetSummary run_fleet(const FleetConfig& cfg) {
  const Workload workload = generate_workload(cfg.workload, cfg.seed);

  // One Gilbert-Elliott trace per device class over the full horizon; the
  // last value repeats for sessions that outlive it. Forked from the run
  // seed so the sweep's replications are independent but reproducible.
  Rng trace_root(cfg.seed ^ 0x5eedf1ee7u);
  std::vector<ThroughputTrace> class_traces;
  class_traces.reserve(workload.device_mix.size());
  const int trace_seconds =
      std::max(60, static_cast<int>(cfg.workload.horizon_seconds));
  for (const auto& cls : workload.device_mix) {
    MarkovTraceConfig mt;
    mt.good_rate = cfg.base_rate_bytes_per_s * cls.network_scale;
    mt.bad_rate = mt.good_rate / 8.0;
    Rng class_rng = trace_root.fork();
    class_traces.push_back(markov_trace(mt, trace_seconds, class_rng));
  }

  LruByteCache edge(cfg.edge_budget_bytes);
  DurationHistogram fetch_hist(0.001, 4096);   // 1 ms bins to ~4 s
  DurationHistogram startup_hist(0.05, 4096);  // 50 ms bins to ~205 s
  DurationHistogram rebuffer_hist(0.05, 4096);
  DurationHistogram sr_hist(0.001, 4096);      // SR wait + service, 1 ms bins

  FleetSummary sum;
  sum.sessions = workload.sessions.size();

  // One open SR batch per cluster model. Requests arrive in global event
  // order (the queue is time-sorted), so a request past the batch's close
  // time lazily flushes it before opening the next one.
  struct OpenBatch {
    double close = 0.0;
    std::vector<double> waits;  // each member's wait until the batch closes
  };
  std::unordered_map<int, OpenBatch> sr_open;

  auto flush_sr_batch = [&](OpenBatch& b) {
    const std::size_t k = b.waits.size();
    if (k == 0) return;
    const double service = cfg.sr_base_latency_seconds +
                           cfg.sr_per_frame_seconds * static_cast<double>(k);
    for (const double w : b.waits) sr_hist.add(w + service);
    sum.sr_server_seconds += service;
    sum.sr_frames += k;
    ++sum.sr_batches;
    b.waits.clear();
  };

  auto sr_request = [&](int cluster, double now) {
    if (cfg.sr_batch_window_seconds <= 0.0) {
      // Unbatched serving: every I frame is its own infer call.
      const double service =
          cfg.sr_base_latency_seconds + cfg.sr_per_frame_seconds;
      sr_hist.add(service);
      sum.sr_server_seconds += service;
      ++sum.sr_frames;
      ++sum.sr_batches;
      return;
    }
    // Batch assembly allocates (map slot, wait-list growth) by design — it
    // models server-side queueing, not per-frame client work.
    AllocAllowScope allow;
    OpenBatch& b = sr_open[cluster];
    if (!b.waits.empty() && now > b.close) flush_sr_batch(b);
    if (b.waits.empty()) b.close = now + cfg.sr_batch_window_seconds;
    b.waits.push_back(b.close - now);
  };

  std::unordered_map<std::uint32_t, ActiveSession> active;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::size_t next_arrival = 0;

  auto finalize = [&](ActiveSession& s, bool aborted) {
    const int played = s.next_segment;
    if (played > 0) {
      sum.mean_quality_db += s.quality_sum;
      sum.mean_rung += s.rung_sum;
    }
    if (aborted) ++sum.aborted_dead_network;
    startup_hist.add(s.abr.startup_seconds());
    rebuffer_hist.add(s.rebuffer_sum);
  };

  // Advance session `id` through one segment at the current event time.
  // Returns false when the session finished (or hit a dead network).
  auto advance_one = [&](std::uint32_t id) -> bool {
    ActiveSession& s = active.at(id);
    const SessionSpec& spec = workload.sessions[s.spec];
    const VideoMeta& meta =
        workload.catalog[static_cast<std::size_t>(spec.video)];
    const auto seg = static_cast<std::size_t>(s.next_segment);

    const int rung = s.abr.choose_rung(seg);

    // Resolve the segment's micro model through the tier hierarchy.
    double model_bytes = 0.0;
    double extra_latency = 0.0;
    const int cluster = meta.segment_cluster[seg];
    if (cluster != kNoModel) {
      // The segment's I frame gets enhanced with the cluster model; the
      // serving tier may coalesce this with concurrent same-cluster
      // requests into one batched infer (enhance_batch_into).
      sr_request(cluster, s.abr.clock());
      if (s.client_cache.fetch(cluster)) {
        ++sum.client_hits;
        fetch_hist.add(0.0);
      } else {
        ++sum.client_misses;
        const std::uint64_t bytes = workload.cluster_model_bytes
            [static_cast<std::size_t>(cluster)];
        model_bytes = static_cast<double>(bytes);
        sum.model_bytes_last_mile += bytes;
        if (edge.fetch(cluster, bytes)) {
          ++sum.edge_hits;
          extra_latency = cfg.edge_latency_seconds;
        } else {
          ++sum.edge_misses;
          extra_latency = cfg.origin_latency_seconds;
          sum.model_bytes_origin += bytes;
        }
        fetch_hist.add(extra_latency);
      }
    }

    const ThroughputTrace& trace =
        class_traces[static_cast<std::size_t>(spec.device_class)];
    const AbrSegmentLog log =
        s.abr.step(seg, rung, model_bytes, extra_latency, trace);
    if (s.abr.dead_network()) {
      finalize(s, /*aborted=*/true);
      return false;
    }

    ++sum.segments;
    sum.video_bytes += log.bytes - static_cast<std::uint64_t>(model_bytes);
    s.quality_sum += log.quality_db;
    s.rung_sum += rung;
    s.rebuffer_sum += log.rebuffer_seconds;
    ++s.next_segment;
    if (s.next_segment >= spec.watch_segments) {
      finalize(s, /*aborted=*/false);
      return false;
    }
    return true;
  };

  // The per-event step runs under a hot-path guard: any heap traffic inside
  // it must be sanctioned (cache admissions, container first-touch), and the
  // raw/sanctioned delta is exported so tests and the CLI can pin the loop
  // heap-silent. In builds without the interposer the deltas are zero.
  auto advance = [&](std::uint32_t id) -> bool {
    const AllocStats before = thread_alloc_stats();
    bool alive;
    {
      HotPathGuard alloc_guard("stream/fleet.cpp:advance");
      alive = advance_one(id);
    }
    const AllocStats after = thread_alloc_stats();
    sum.advance_heap_allocs += after.allocs - before.allocs;
    sum.advance_heap_allocs_sanctioned += after.sanctioned - before.sanctioned;
    return alive;
  };

  const std::size_t n_specs = workload.sessions.size();
  while (next_arrival < n_specs || !queue.empty()) {
    // Merge the arrival-sorted spec list with the pending-segment queue;
    // arrivals win ties so a new viewer's first request lands before an
    // existing session's same-instant continuation.
    const bool take_arrival =
        next_arrival < n_specs &&
        (queue.empty() ||
         workload.sessions[next_arrival].arrival_seconds <= queue.top().time);
    if (take_arrival) {
      const auto id = static_cast<std::uint32_t>(next_arrival);
      const SessionSpec& spec = workload.sessions[next_arrival];
      const VideoMeta& meta =
          workload.catalog[static_cast<std::size_t>(spec.video)];
      active.emplace(
          std::piecewise_construct, std::forward_as_tuple(id),
          std::forward_as_tuple(meta.ladder, cfg.abr, spec.arrival_seconds, id));
      ++next_arrival;
      if (advance(id))
        queue.push({active.at(id).abr.clock(), id});
      else
        active.erase(id);
    } else {
      const Event ev = queue.top();
      queue.pop();
      if (advance(ev.session))
        queue.push({active.at(ev.session).abr.clock(), ev.session});
      else
        active.erase(ev.session);
    }
  }

  // Flush still-open SR batches in cluster order so the floating-point sums
  // never depend on hash-map iteration order.
  {
    std::vector<int> open_clusters;
    open_clusters.reserve(sr_open.size());
    for (const auto& [c, b] : sr_open)
      if (!b.waits.empty()) open_clusters.push_back(c);
    std::sort(open_clusters.begin(), open_clusters.end());
    for (const int c : open_clusters) flush_sr_batch(sr_open.at(c));
  }

  if (sum.segments > 0) {
    sum.mean_quality_db /= static_cast<double>(sum.segments);
    sum.mean_rung /= static_cast<double>(sum.segments);
  }
  sum.edge_evictions = edge.evictions();
  sum.edge_bypasses = edge.bypasses();
  sum.edge_resident_bytes = edge.resident_bytes();
  sum.fetch_latency_p50_s = fetch_hist.percentile(50.0);
  sum.fetch_latency_p99_s = fetch_hist.percentile(99.0);
  sum.startup_p50_s = startup_hist.percentile(50.0);
  sum.startup_p99_s = startup_hist.percentile(99.0);
  sum.rebuffer_p50_s = rebuffer_hist.percentile(50.0);
  sum.rebuffer_p99_s = rebuffer_hist.percentile(99.0);
  sum.sr_latency_p50_s = sr_hist.percentile(50.0);
  sum.sr_latency_p99_s = sr_hist.percentile(99.0);
  return sum;
}

std::vector<FleetSummary> run_fleet_sweep(const std::vector<FleetConfig>& configs) {
  std::vector<FleetSummary> out(configs.size());
  if (configs.empty()) return out;
  parallel_for_writes(
      0, static_cast<std::int64_t>(configs.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        return span_of(out.data() + lo, static_cast<std::size_t>(hi - lo));
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          out[static_cast<std::size_t>(i)] =
              run_fleet(configs[static_cast<std::size_t>(i)]);
      },
      "stream/fleet.cpp:run_fleet_sweep");
  return out;
}

}  // namespace dcsr::stream
