#include "stream/model_bundle.hpp"

#include <stdexcept>

#include "codec/container.hpp"  // crc32
#include "stream/errors.hpp"

namespace dcsr::stream {

namespace {
constexpr std::uint32_t kMagic = 0x64634d42;  // "dcMB"
}

void ModelBundle::add(int label, std::vector<std::uint8_t> payload) {
  if (contains(label))
    throw std::invalid_argument("ModelBundle::add: duplicate label");
  entries_.push_back({label, std::move(payload)});
}

bool ModelBundle::contains(int label) const noexcept {
  for (const auto& e : entries_)
    if (e.label == label) return true;
  return false;
}

const std::vector<std::uint8_t>& ModelBundle::payload(int label) const {
  for (const auto& e : entries_)
    if (e.label == label) return e.payload;
  throw std::out_of_range("ModelBundle::payload: unknown label");
}

std::uint64_t ModelBundle::total_bytes() const noexcept {
  std::uint64_t n = 8;  // magic + count
  for (const auto& e : entries_) n += 12 + e.payload.size();
  return n;
}

void ModelBundle::serialize(ByteWriter& out) const {
  out.write_u32(kMagic);
  out.write_u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    out.write_u32(static_cast<std::uint32_t>(e.label));
    out.write_u32(static_cast<std::uint32_t>(e.payload.size()));
    out.write_u32(codec::crc32(e.payload.data(), e.payload.size()));
    for (const auto b : e.payload) out.write_u8(b);
  }
}

ModelBundle ModelBundle::deserialize(ByteReader& in) {
  const std::size_t magic_at = in.position();
  if (in.read_u32() != kMagic)
    throw BundleError("ModelBundle: bad magic", magic_at);
  const std::size_t count_at = in.position();
  const std::uint32_t count = in.read_u32();
  if (count > 1u << 16)
    throw BundleError("ModelBundle: implausible entry count", count_at);
  ModelBundle bundle;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t entry_at = in.position();
    const int label = static_cast<int>(in.read_u32());
    const std::uint32_t size = in.read_u32();
    const std::uint32_t crc = in.read_u32();
    if (size > in.remaining())
      throw BundleError("ModelBundle: truncated payload", entry_at);
    std::vector<std::uint8_t> payload(size);
    for (auto& b : payload) b = in.read_u8();
    if (codec::crc32(payload.data(), payload.size()) != crc)
      throw BundleError("ModelBundle: payload CRC mismatch", entry_at);
    if (bundle.contains(label))
      throw BundleError("ModelBundle: duplicate label", entry_at);
    bundle.add(label, std::move(payload));
  }
  return bundle;
}

}  // namespace dcsr::stream
