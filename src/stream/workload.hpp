#pragma once

#include <cstdint>
#include <vector>

#include "device/profiles.hpp"
#include "stream/abr.hpp"
#include "util/rng.hpp"

namespace dcsr::stream {

/// Deterministic Zipf(s) sampler over ranks 0..n-1: P(rank k) ∝ (k+1)^-s.
/// The inverse CDF is precomputed once, so sampling is a binary search —
/// cheap enough to draw per-segment cluster labels for millions of sessions.
/// s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(int n, double skew);

  int sample(Rng& rng) const noexcept;

  /// P(rank <= k), exposed for distribution sanity tests.
  double cdf(int k) const noexcept { return cdf_[static_cast<std::size_t>(k)]; }
  int size() const noexcept { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

/// Sinusoidal diurnal arrival-rate profile: rate(t) peaks at `peak_hour`
/// and bottoms out 12 h later. amplitude = 0 is a homogeneous process;
/// amplitude in [0, 1) keeps the rate strictly positive.
struct DiurnalPattern {
  double amplitude = 0.6;
  double peak_hour = 20.0;           // 8 pm — the evening streaming peak
  double period_seconds = 86400.0;

  /// Relative arrival intensity at wall time t (mean 1 over a full period).
  double rate(double t_seconds) const noexcept;
};

/// Device classes in the fleet, mirroring the paper's three measured
/// devices (src/device). The network multiplier scales the shared base
/// throughput trace per class: mobile SoCs sit on slower links.
struct DeviceClass {
  device::DeviceProfile profile;
  double weight = 1.0;            // mix share (normalised internally)
  double network_scale = 1.0;     // multiplier on the base trace
};

/// Default three-class mix: Jetson (mobile, slow link), laptop, desktop.
std::vector<DeviceClass> default_device_mix();

/// Everything that parameterises the synthetic fleet workload. All
/// randomness flows from one seed through util/rng, so a config + seed pair
/// reproduces the exact same catalog and session list.
struct WorkloadConfig {
  std::size_t sessions = 100000;
  int videos = 1000;
  double video_zipf_skew = 0.8;   // popularity skew across the catalog

  double horizon_seconds = 86400.0;  // one simulated day
  DiurnalPattern diurnal;

  // Catalog shape. Videos draw their per-segment cluster labels from a
  // GLOBAL cluster pool (the paper's key asset: micro models are
  // per-cluster, not per-video, so popular clusters recur across videos and
  // hit a shared edge cache). cluster_zipf_skew controls how concentrated
  // that sharing is.
  int segments_min = 12;
  int segments_max = 45;
  int global_clusters = 512;
  int clusters_per_video = 8;
  double cluster_zipf_skew = 1.1;

  // Micro-model sizes (bytes), uniform in [min, max] per global cluster —
  // the repo's fp16 micro models are ~100 KB.
  std::uint64_t model_bytes_min = 80000;
  std::uint64_t model_bytes_max = 160000;

  // Three-rung ladder byte scale: rung r's per-segment bytes are
  // segment_bytes_base << r, jittered ±20% per segment.
  std::uint64_t segment_bytes_base = 40000;
  int ladder_rungs = 3;

  // Mean watch time in segments (geometric abandonment, clamped to the
  // video length) — early abandonment is the scenario where per-cluster
  // caching beats download-everything-up-front.
  double mean_watch_segments = 18.0;
};

/// One video in the synthetic catalog: a bitrate ladder plus the global
/// cluster id enhancing each segment.
struct VideoMeta {
  std::vector<Rung> ladder;
  std::vector<int> segment_cluster;  // global cluster id per segment
};

/// One viewer: when they arrive, what they watch, on what device, for how
/// long, and the private RNG stream their session consumes.
struct SessionSpec {
  double arrival_seconds = 0.0;
  int video = 0;
  int device_class = 0;
  int watch_segments = 0;
  std::uint64_t rng_seed = 0;
};

/// A fully materialised fleet workload: catalog + per-cluster model sizes +
/// the arrival-ordered session list.
struct Workload {
  std::vector<VideoMeta> catalog;
  std::vector<std::uint64_t> cluster_model_bytes;  // by global cluster id
  std::vector<DeviceClass> device_mix;
  std::vector<SessionSpec> sessions;  // sorted by arrival time
};

/// Generates the workload deterministically from (cfg, seed): Zipf video
/// popularity, diurnal arrivals (inverse-CDF over a piecewise-constant rate
/// table), device mix, geometric watch times. Throws std::invalid_argument
/// on nonsensical configs (no sessions, no videos, empty ladder...).
Workload generate_workload(const WorkloadConfig& cfg, std::uint64_t seed);

}  // namespace dcsr::stream
