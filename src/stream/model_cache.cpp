#include "stream/model_cache.hpp"

namespace dcsr::stream {

bool ModelCache::fetch(int label) {
  if (cache_.count(label) > 0) {
    ++hits_;
    return true;
  }
  cache_.insert(label);
  ++downloads_;
  return false;
}

}  // namespace dcsr::stream
