#include "stream/model_cache.hpp"

#include "util/alloc_check.hpp"

namespace dcsr::stream {

bool ModelCache::fetch(int label) {
  if (cache_.count(label) > 0) {
    ++hits_;
    return true;
  }
  {
    // A miss models a model download — admission allocates a set node by
    // design, so it is sanctioned even inside a hot-path guard.
    AllocAllowScope allow;
    cache_.insert(label);
  }
  ++downloads_;
  return false;
}

}  // namespace dcsr::stream
