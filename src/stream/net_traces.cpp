#include "stream/net_traces.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcsr::stream {

ThroughputTrace constant_trace(double bytes_per_s, int seconds) {
  if (seconds <= 0) throw std::invalid_argument("constant_trace: bad duration");
  return {std::vector<double>(static_cast<std::size_t>(seconds), bytes_per_s)};
}

ThroughputTrace step_trace(double before, double after, int step_at, int seconds) {
  if (seconds <= 0 || step_at < 0)
    throw std::invalid_argument("step_trace: bad arguments");
  ThroughputTrace t;
  t.bytes_per_second.reserve(static_cast<std::size_t>(seconds));
  for (int s = 0; s < seconds; ++s)
    t.bytes_per_second.push_back(s < step_at ? before : after);
  return t;
}

ThroughputTrace markov_trace(const MarkovTraceConfig& cfg, int seconds, Rng& rng) {
  if (seconds <= 0) throw std::invalid_argument("markov_trace: bad duration");
  ThroughputTrace t;
  t.bytes_per_second.reserve(static_cast<std::size_t>(seconds));
  bool good = true;
  for (int s = 0; s < seconds; ++s) {
    const double flip = rng.uniform();
    if (good && flip < cfg.p_good_to_bad) good = false;
    else if (!good && flip < cfg.p_bad_to_good) good = true;
    const double base = good ? cfg.good_rate : cfg.bad_rate;
    const double jittered = base * (1.0 + cfg.jitter * rng.normal());
    t.bytes_per_second.push_back(std::max(jittered, base * 0.1));
  }
  return t;
}

}  // namespace dcsr::stream
