#pragma once

#include <cstdint>
#include <vector>

namespace dcsr::stream {

/// One rung of a bitrate ladder: the same video encoded at one CRF.
struct Rung {
  int crf = 51;
  std::vector<std::uint64_t> segment_bytes;  // per segment, from the encoder
  double base_quality_db = 0.0;      // decoded quality without SR
  double enhanced_quality_db = 0.0;  // quality after dcSR enhancement
};

/// Sentinel returned by ThroughputTrace::seconds_to_download when the link
/// cannot deliver the requested bytes within any plausible horizon (an
/// all-zero trace, for instance). Callers must treat any value >= this as
/// "the network is dead", never feed it into clock/buffer arithmetic —
/// AbrSession::step does exactly that and raises dead_network() instead.
inline constexpr double kDeadNetworkSeconds = 1e18;

/// Per-second available network throughput (bytes/s).
struct ThroughputTrace {
  std::vector<double> bytes_per_second;

  /// Total bytes deliverable in [t0, t1) (seconds, fractional ok); the trace
  /// repeats its last value beyond its end. Negative times clamp to 0 (the
  /// trace has no past).
  double bytes_between(double t0, double t1) const noexcept;

  /// Seconds needed from time t0 to deliver `bytes`; negative t0 clamps to
  /// 0. Returns kDeadNetworkSeconds when the link never delivers them.
  double seconds_to_download(double t0, double bytes) const noexcept;
};

/// Rate-based ABR with a playback buffer, extended with the paper's
/// "super-resolved quality as ABR input" idea (§4):
///
///  - classic mode picks the highest rung whose bitrate fits under
///    safety * estimated_throughput (throughput is an EWMA of measured
///    download rates);
///  - dcSR-aware mode additionally stops climbing the ladder once a rung's
///    *enhanced* quality reaches `target_quality_db`: when the micro models
///    can recover the quality anyway, spending bandwidth on a higher rung
///    is wasted.
enum class AbrPolicy {
  /// Rate-based: highest rung under safety * EWMA(throughput).
  kRateBased,
  /// Buffer-based (BBA-style, in the spirit of the BOLA/BBA line the paper
  /// cites): the rung is a linear function of buffer occupancy between a
  /// reservoir and a cushion — no throughput estimation at all.
  kBufferBased,
};

struct AbrConfig {
  AbrPolicy policy = AbrPolicy::kRateBased;
  double segment_seconds = 4.0;
  double safety = 0.8;
  double ewma_alpha = 0.6;          // weight of the newest throughput sample
  double startup_buffer_seconds = 4.0;
  double max_buffer_seconds = 16.0;
  double reservoir_seconds = 4.0;   // buffer-based: below this, lowest rung
  bool dcsr_aware = false;
  double target_quality_db = 0.0;   // only used when dcsr_aware
};

struct AbrSegmentLog {
  int segment = 0;
  int rung = 0;
  double download_seconds = 0.0;
  double rebuffer_seconds = 0.0;
  double startup_seconds = 0.0;  // pre-playback wait charged to this segment
  double quality_db = 0.0;   // delivered quality (enhanced when dcsr_aware)
  std::uint64_t bytes = 0;   // video + model bytes fetched for this segment
};

struct AbrResult {
  std::vector<AbrSegmentLog> log;
  double rebuffer_seconds = 0.0;
  double startup_seconds = 0.0;  // wall time before playback first started
  double mean_quality_db = 0.0;
  double mean_rung = 0.0;
  std::uint64_t total_bytes = 0;
  /// True when the network went dead mid-session (seconds_to_download hit
  /// kDeadNetworkSeconds): accounting stops at the stall point — the log
  /// holds only the segments actually delivered, and no sentinel value ever
  /// enters the totals.
  bool aborted_dead_network = false;
};

/// Stepwise form of the ABR simulation: one playback session advanced a
/// segment at a time, so a caller that owns the clock (the fleet simulator's
/// event queue) can interleave many sessions and charge cache-tier latency
/// onto individual downloads. `simulate_abr` below is exactly a loop over
/// this class — they cannot drift apart.
///
/// Protocol per segment i: `choose_rung(i)` (pure, from current state), then
/// `step(i, rung, model_bytes, extra_seconds, network)` which downloads,
/// drains/fills the buffer and updates the throughput EWMA. After any step,
/// `dead_network()` must be checked: when it is set the step performed no
/// accounting and the session is over.
class AbrSession {
 public:
  /// Validates the ladder (non-empty, rungs agree on segment count) like
  /// simulate_abr always has; throws std::invalid_argument. The ladder must
  /// outlive the session. `start_clock` offsets the session's local clock —
  /// the fleet uses wall-clock arrival times so all sessions share one
  /// diurnal trace timeline.
  AbrSession(const std::vector<Rung>& ladder, const AbrConfig& cfg,
             double start_clock = 0.0);

  /// Rung the policy picks for segment i given the current buffer /
  /// throughput state (includes the dcSR-aware lowering).
  int choose_rung(std::size_t segment) const;

  /// Advances through segment i: downloads the chosen rung's bytes plus
  /// `model_bytes` over `network` starting at clock(), with `extra_seconds`
  /// of cache/CDN fetch latency charged like download time (it drains the
  /// buffer the same way). Returns the per-segment log entry. If the
  /// download hits kDeadNetworkSeconds the session flips dead_network(),
  /// performs NO state update, and the returned log carries the sentinel in
  /// download_seconds purely for diagnosis.
  AbrSegmentLog step(std::size_t segment, int rung, double model_bytes,
                     double extra_seconds, const ThroughputTrace& network);

  std::size_t segment_count() const noexcept { return n_segments_; }
  double clock() const noexcept { return clock_; }
  double buffer_seconds() const noexcept { return buffer_; }
  bool started() const noexcept { return started_; }
  bool dead_network() const noexcept { return dead_network_; }
  double startup_seconds() const noexcept { return startup_seconds_; }

 private:
  const std::vector<Rung>* ladder_;
  AbrConfig cfg_;
  std::size_t n_segments_ = 0;
  double clock_ = 0.0;           // wall time
  double buffer_ = 0.0;          // seconds of video buffered
  double est_throughput_ = 0.0;  // EWMA, bytes/s (0 = no sample yet)
  double startup_seconds_ = 0.0;
  bool started_ = false;
  bool dead_network_ = false;
};

/// Simulates one playback session over the ladder. `model_bytes_per_segment`
/// is the extra model download charged to each segment (zero after a cache
/// hit — compute it with ModelCache/simulate_session); pass an empty vector
/// for model-free methods.
AbrResult simulate_abr(const std::vector<Rung>& ladder,
                       const std::vector<std::uint64_t>& model_bytes_per_segment,
                       const ThroughputTrace& network, const AbrConfig& cfg);

/// Standard linear QoE model from the ABR literature (Pensieve/BOLA-style):
///   QoE = mean quality − switch_penalty * mean |quality change|
///                      − rebuffer_penalty * (rebuffer seconds / segment)
///                      − startup_penalty * (startup seconds / segment).
/// Quality is the per-segment delivered dB from the AbrResult log. Startup
/// delay is penalised like rebuffering but with its own (customarily
/// milder) weight, as in the MPC/Pensieve QoE variants.
struct QoeWeights {
  double switch_penalty = 1.0;
  double rebuffer_penalty = 4.3;  // the customary Pensieve weight (dB/s)
  double startup_penalty = 1.0;   // startup hurts less than a mid-stream stall
};
double qoe_score(const AbrResult& result, const QoeWeights& weights = {});

}  // namespace dcsr::stream
