#pragma once

#include <cstdint>
#include <vector>

namespace dcsr::stream {

/// One rung of a bitrate ladder: the same video encoded at one CRF.
struct Rung {
  int crf = 51;
  std::vector<std::uint64_t> segment_bytes;  // per segment, from the encoder
  double base_quality_db = 0.0;      // decoded quality without SR
  double enhanced_quality_db = 0.0;  // quality after dcSR enhancement
};

/// Per-second available network throughput (bytes/s).
struct ThroughputTrace {
  std::vector<double> bytes_per_second;

  /// Total bytes deliverable in [t0, t1) (seconds, fractional ok); the trace
  /// repeats its last value beyond its end.
  double bytes_between(double t0, double t1) const noexcept;

  /// Seconds needed from time t0 to deliver `bytes`.
  double seconds_to_download(double t0, double bytes) const noexcept;
};

/// Rate-based ABR with a playback buffer, extended with the paper's
/// "super-resolved quality as ABR input" idea (§4):
///
///  - classic mode picks the highest rung whose bitrate fits under
///    safety * estimated_throughput (throughput is an EWMA of measured
///    download rates);
///  - dcSR-aware mode additionally stops climbing the ladder once a rung's
///    *enhanced* quality reaches `target_quality_db`: when the micro models
///    can recover the quality anyway, spending bandwidth on a higher rung
///    is wasted.
enum class AbrPolicy {
  /// Rate-based: highest rung under safety * EWMA(throughput).
  kRateBased,
  /// Buffer-based (BBA-style, in the spirit of the BOLA/BBA line the paper
  /// cites): the rung is a linear function of buffer occupancy between a
  /// reservoir and a cushion — no throughput estimation at all.
  kBufferBased,
};

struct AbrConfig {
  AbrPolicy policy = AbrPolicy::kRateBased;
  double segment_seconds = 4.0;
  double safety = 0.8;
  double ewma_alpha = 0.6;          // weight of the newest throughput sample
  double startup_buffer_seconds = 4.0;
  double max_buffer_seconds = 16.0;
  double reservoir_seconds = 4.0;   // buffer-based: below this, lowest rung
  bool dcsr_aware = false;
  double target_quality_db = 0.0;   // only used when dcsr_aware
};

struct AbrSegmentLog {
  int segment = 0;
  int rung = 0;
  double download_seconds = 0.0;
  double rebuffer_seconds = 0.0;
  double quality_db = 0.0;   // delivered quality (enhanced when dcsr_aware)
  std::uint64_t bytes = 0;   // video + model bytes fetched for this segment
};

struct AbrResult {
  std::vector<AbrSegmentLog> log;
  double rebuffer_seconds = 0.0;
  double mean_quality_db = 0.0;
  double mean_rung = 0.0;
  std::uint64_t total_bytes = 0;
};

/// Simulates one playback session over the ladder. `model_bytes_per_segment`
/// is the extra model download charged to each segment (zero after a cache
/// hit — compute it with ModelCache/simulate_session); pass an empty vector
/// for model-free methods.
AbrResult simulate_abr(const std::vector<Rung>& ladder,
                       const std::vector<std::uint64_t>& model_bytes_per_segment,
                       const ThroughputTrace& network, const AbrConfig& cfg);

/// Standard linear QoE model from the ABR literature (Pensieve/BOLA-style):
///   QoE = mean quality − switch_penalty * mean |quality change|
///                      − rebuffer_penalty * (rebuffer seconds / segment).
/// Quality is the per-segment delivered dB from the AbrResult log.
struct QoeWeights {
  double switch_penalty = 1.0;
  double rebuffer_penalty = 4.3;  // the customary Pensieve weight (dB/s)
};
double qoe_score(const AbrResult& result, const QoeWeights& weights = {});

}  // namespace dcsr::stream
