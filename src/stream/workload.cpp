#include "stream/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcsr::stream {

ZipfSampler::ZipfSampler(int n, double skew) {
  if (n <= 0) throw std::invalid_argument("ZipfSampler: need at least one rank");
  if (skew < 0.0) throw std::invalid_argument("ZipfSampler: negative skew");
  cdf_.resize(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (int k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -skew);
    cdf_[static_cast<std::size_t>(k)] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail unreachable
}

int ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin());
}

double DiurnalPattern::rate(double t_seconds) const noexcept {
  const double phase =
      2.0 * 3.14159265358979323846 *
      (t_seconds / period_seconds - peak_hour * 3600.0 / period_seconds);
  return 1.0 + amplitude * std::cos(phase);
}

std::vector<DeviceClass> default_device_mix() {
  return {
      {device::jetson_xavier_nx(), 0.25, 0.5},
      {device::laptop_gtx1060(), 0.45, 1.0},
      {device::desktop_rtx2070(), 0.30, 2.0},
  };
}

namespace {

// Piecewise-constant inverse CDF over the diurnal rate, one bin per
// 15 simulated minutes: arrival times are drawn by inverting a uniform
// sample through the cumulative rate table, giving a deterministic
// non-homogeneous process without thinning (whose rejection loop would make
// the draw count data-dependent).
class ArrivalSampler {
 public:
  ArrivalSampler(const DiurnalPattern& diurnal, double horizon) {
    const int bins = std::max(1, static_cast<int>(horizon / 900.0));
    cum_.resize(static_cast<std::size_t>(bins) + 1, 0.0);
    bin_seconds_ = horizon / static_cast<double>(bins);
    for (int b = 0; b < bins; ++b) {
      const double mid = (static_cast<double>(b) + 0.5) * bin_seconds_;
      cum_[static_cast<std::size_t>(b) + 1] =
          cum_[static_cast<std::size_t>(b)] +
          std::max(diurnal.rate(mid), 1e-9) * bin_seconds_;
    }
  }

  double sample(Rng& rng) const noexcept {
    const double u = rng.uniform() * cum_.back();
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
    const auto hi = std::min<std::size_t>(
        static_cast<std::size_t>(it - cum_.begin()), cum_.size() - 1);
    const std::size_t lo = hi - 1;
    const double frac = (u - cum_[lo]) / std::max(cum_[hi] - cum_[lo], 1e-30);
    return (static_cast<double>(lo) + frac) * bin_seconds_;
  }

 private:
  std::vector<double> cum_;
  double bin_seconds_ = 0.0;
};

}  // namespace

Workload generate_workload(const WorkloadConfig& cfg, std::uint64_t seed) {
  if (cfg.sessions == 0) throw std::invalid_argument("generate_workload: no sessions");
  if (cfg.videos <= 0) throw std::invalid_argument("generate_workload: no videos");
  if (cfg.global_clusters <= 0 || cfg.clusters_per_video <= 0)
    throw std::invalid_argument("generate_workload: empty cluster pool");
  if (cfg.ladder_rungs <= 0)
    throw std::invalid_argument("generate_workload: empty ladder");
  if (cfg.segments_min <= 0 || cfg.segments_max < cfg.segments_min)
    throw std::invalid_argument("generate_workload: bad segment range");
  if (cfg.horizon_seconds <= 0.0)
    throw std::invalid_argument("generate_workload: bad horizon");
  if (cfg.model_bytes_max < cfg.model_bytes_min)
    throw std::invalid_argument("generate_workload: bad model byte range");

  Workload w;
  w.device_mix = default_device_mix();
  Rng root(seed);
  Rng catalog_rng = root.fork();
  Rng session_rng = root.fork();

  // --- per-cluster model sizes ---------------------------------------------
  w.cluster_model_bytes.reserve(static_cast<std::size_t>(cfg.global_clusters));
  for (int c = 0; c < cfg.global_clusters; ++c)
    w.cluster_model_bytes.push_back(static_cast<std::uint64_t>(
        catalog_rng.uniform_int(static_cast<std::int64_t>(cfg.model_bytes_min),
                                static_cast<std::int64_t>(cfg.model_bytes_max))));

  // --- catalog ---------------------------------------------------------------
  // Each video owns a small set of clusters drawn (without replacement) from
  // the global Zipf pool, then revisits them segment by segment — the
  // long-term temporal correlation Algorithm 1 exploits, now shared across
  // the catalog so popular clusters recur in many videos.
  const ZipfSampler cluster_pool(cfg.global_clusters, cfg.cluster_zipf_skew);
  w.catalog.reserve(static_cast<std::size_t>(cfg.videos));
  for (int v = 0; v < cfg.videos; ++v) {
    VideoMeta meta;
    const int n_segments = static_cast<int>(catalog_rng.uniform_int(
        cfg.segments_min, cfg.segments_max));

    std::vector<int> local;
    const int want = std::min(cfg.clusters_per_video, cfg.global_clusters);
    while (static_cast<int>(local.size()) < want) {
      const int c = cluster_pool.sample(catalog_rng);
      if (std::find(local.begin(), local.end(), c) == local.end())
        local.push_back(c);
    }

    meta.segment_cluster.reserve(static_cast<std::size_t>(n_segments));
    for (int s = 0; s < n_segments; ++s) {
      const auto pick = static_cast<std::size_t>(catalog_rng.uniform_int(
          0, static_cast<std::int64_t>(local.size()) - 1));
      meta.segment_cluster.push_back(local[pick]);
    }

    meta.ladder.resize(static_cast<std::size_t>(cfg.ladder_rungs));
    for (int r = 0; r < cfg.ladder_rungs; ++r) {
      Rung& rung = meta.ladder[static_cast<std::size_t>(r)];
      rung.crf = 51 - 8 * r;
      const double base =
          static_cast<double>(cfg.segment_bytes_base) * std::pow(2.0, r);
      rung.base_quality_db = 24.0 + 4.0 * r;
      rung.enhanced_quality_db = rung.base_quality_db + 4.0 / (1.0 + r);
      rung.segment_bytes.reserve(static_cast<std::size_t>(n_segments));
      for (int s = 0; s < n_segments; ++s)
        rung.segment_bytes.push_back(static_cast<std::uint64_t>(
            base * catalog_rng.uniform(0.8, 1.2)));
    }
    w.catalog.push_back(std::move(meta));
  }

  // --- sessions --------------------------------------------------------------
  const ZipfSampler popularity(cfg.videos, cfg.video_zipf_skew);
  const ArrivalSampler arrivals(cfg.diurnal, cfg.horizon_seconds);
  double mix_total = 0.0;
  for (const auto& d : w.device_mix) mix_total += d.weight;

  w.sessions.reserve(cfg.sessions);
  for (std::size_t i = 0; i < cfg.sessions; ++i) {
    SessionSpec s;
    s.arrival_seconds = arrivals.sample(session_rng);
    s.video = popularity.sample(session_rng);

    double pick = session_rng.uniform() * mix_total;
    s.device_class = 0;
    for (std::size_t d = 0; d < w.device_mix.size(); ++d) {
      pick -= w.device_mix[d].weight;
      if (pick <= 0.0) {
        s.device_class = static_cast<int>(d);
        break;
      }
    }

    // Geometric watch time with the configured mean, clamped to the video.
    const auto video_segments = static_cast<int>(
        w.catalog[static_cast<std::size_t>(s.video)].segment_cluster.size());
    const double p = 1.0 / std::max(cfg.mean_watch_segments, 1.0);
    int watched = 1;
    while (watched < video_segments && session_rng.uniform() > p) ++watched;
    s.watch_segments = watched;

    s.rng_seed = session_rng.next_u64();
    w.sessions.push_back(s);
  }

  // The event loop consumes sessions in arrival order; sort with a
  // deterministic tie-break so equal arrival times cannot reorder between
  // runs (std::sort is not stable).
  std::vector<std::size_t> order(w.sessions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (w.sessions[a].arrival_seconds != w.sessions[b].arrival_seconds)
      return w.sessions[a].arrival_seconds < w.sessions[b].arrival_seconds;
    return a < b;
  });
  std::vector<SessionSpec> sorted;
  sorted.reserve(w.sessions.size());
  for (const std::size_t i : order) sorted.push_back(w.sessions[i]);
  w.sessions = std::move(sorted);
  return w;
}

}  // namespace dcsr::stream
