#include "stream/manifest.hpp"

#include <stdexcept>

namespace dcsr::stream {

std::uint64_t Manifest::total_video_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : segments) n += s.video_bytes;
  return n;
}

std::uint64_t Manifest::total_model_bytes_unique() const noexcept {
  std::uint64_t n = 0;
  for (const auto b : model_bytes) n += b;
  return n;
}

Manifest make_manifest(const codec::EncodedVideo& video,
                       const std::vector<int>& labels,
                       std::vector<std::uint64_t> model_bytes) {
  if (labels.size() != video.segments.size())
    throw std::invalid_argument("make_manifest: one label per segment required");
  Manifest m;
  m.model_bytes = std::move(model_bytes);
  for (std::size_t i = 0; i < video.segments.size(); ++i) {
    const int label = labels[i];
    if (label != kNoModel &&
        (label < 0 || static_cast<std::size_t>(label) >= m.model_bytes.size()))
      throw std::invalid_argument("make_manifest: label out of range");
    m.segments.push_back({static_cast<int>(i), video.segments[i].frame_count(),
                          video.segments[i].size_bytes(), label});
  }
  return m;
}

Manifest make_single_model_manifest(const codec::EncodedVideo& video,
                                    std::uint64_t model_size_bytes) {
  std::vector<int> labels(video.segments.size(), 0);
  return make_manifest(video, labels, {model_size_bytes});
}

Manifest make_plain_manifest(const codec::EncodedVideo& video) {
  std::vector<int> labels(video.segments.size(), kNoModel);
  return make_manifest(video, labels, {});
}

}  // namespace dcsr::stream
