#include "stream/manifest.hpp"

#include <stdexcept>

#include "codec/container.hpp"  // crc32
#include "stream/errors.hpp"

namespace dcsr::stream {

namespace {
// Binary manifest magic, versioned like the video container ("dcMF").
constexpr std::uint32_t kManifestMagic = 0x64634d46;
}  // namespace

std::uint64_t Manifest::total_video_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : segments) n += s.video_bytes;
  return n;
}

std::uint64_t Manifest::total_model_bytes_unique() const noexcept {
  std::uint64_t n = 0;
  for (const auto b : model_bytes) n += b;
  return n;
}

Manifest make_manifest(const codec::EncodedVideo& video,
                       const std::vector<int>& labels,
                       std::vector<std::uint64_t> model_bytes) {
  if (labels.size() != video.segments.size())
    throw std::invalid_argument("make_manifest: one label per segment required");
  Manifest m;
  m.model_bytes = std::move(model_bytes);
  for (std::size_t i = 0; i < video.segments.size(); ++i) {
    const int label = labels[i];
    if (label != kNoModel &&
        (label < 0 || static_cast<std::size_t>(label) >= m.model_bytes.size()))
      throw std::invalid_argument("make_manifest: label out of range");
    m.segments.push_back({static_cast<int>(i), video.segments[i].frame_count(),
                          video.segments[i].size_bytes(), label});
  }
  return m;
}

Manifest make_single_model_manifest(const codec::EncodedVideo& video,
                                    std::uint64_t model_size_bytes) {
  std::vector<int> labels(video.segments.size(), 0);
  return make_manifest(video, labels, {model_size_bytes});
}

Manifest make_plain_manifest(const codec::EncodedVideo& video) {
  std::vector<int> labels(video.segments.size(), kNoModel);
  return make_manifest(video, labels, {});
}

void write_manifest(const Manifest& manifest, ByteWriter& out) {
  ByteWriter body;
  body.write_u32(kManifestMagic);
  body.write_u32(static_cast<std::uint32_t>(manifest.model_bytes.size()));
  for (const auto b : manifest.model_bytes) body.write_u64(b);
  body.write_u32(static_cast<std::uint32_t>(manifest.segments.size()));
  for (const auto& seg : manifest.segments) {
    body.write_u32(static_cast<std::uint32_t>(seg.segment_index));
    body.write_u32(static_cast<std::uint32_t>(seg.frame_count));
    body.write_u64(seg.video_bytes);
    body.write_i32(seg.model_label);
  }
  const auto& bytes = body.bytes();
  for (const auto b : bytes) out.write_u8(b);
  out.write_u32(codec::crc32(bytes.data(), bytes.size()));
}

Manifest read_manifest(ByteReader& in) {
  const std::size_t magic_at = in.position();
  if (in.read_u32() != kManifestMagic)
    throw ManifestError("read_manifest: bad magic", magic_at);

  Manifest m;
  const std::size_t n_models_at = in.position();
  const std::uint32_t n_models = in.read_u32();
  if (n_models > 1u << 20)
    throw ManifestError("read_manifest: implausible model count", n_models_at);
  m.model_bytes.reserve(n_models);
  for (std::uint32_t i = 0; i < n_models; ++i)
    m.model_bytes.push_back(in.read_u64());

  const std::size_t n_segments_at = in.position();
  const std::uint32_t n_segments = in.read_u32();
  if (n_segments > 1u << 20)
    throw ManifestError("read_manifest: implausible segment count",
                        n_segments_at);
  m.segments.reserve(n_segments);
  for (std::uint32_t i = 0; i < n_segments; ++i) {
    SegmentEntry seg;
    const std::size_t seg_at = in.position();
    seg.segment_index = static_cast<int>(in.read_u32());
    seg.frame_count = static_cast<int>(in.read_u32());
    seg.video_bytes = in.read_u64();
    seg.model_label = in.read_i32();
    if (seg.segment_index != static_cast<int>(i))
      throw ManifestError("read_manifest: segments must be dense and ordered",
                          seg_at);
    if (seg.frame_count < 0)
      throw ManifestError("read_manifest: negative frame count", seg_at);
    if (seg.model_label != kNoModel &&
        (seg.model_label < 0 ||
         static_cast<std::uint32_t>(seg.model_label) >= n_models))
      throw ManifestError("read_manifest: segment references unknown model",
                          seg_at);
    m.segments.push_back(seg);
  }

  const std::size_t crc_at = in.position();
  const std::uint32_t stored_crc = in.read_u32();
  // Fixed-width fields round-trip exactly, so re-serialise and compare the
  // recomputed CRC (same scheme as read_container).
  ByteWriter check;
  write_manifest(m, check);
  const std::vector<std::uint8_t>& re = check.bytes();
  std::uint32_t recomputed = 0;
  for (int i = 0; i < 4; ++i)
    recomputed |=
        static_cast<std::uint32_t>(re[re.size() - 4 + static_cast<std::size_t>(i)])
        << (8 * i);
  if (recomputed != stored_crc)
    throw ManifestError("read_manifest: CRC mismatch", crc_at);
  return m;
}

}  // namespace dcsr::stream
