#pragma once

#include "stream/abr.hpp"
#include "util/rng.hpp"

namespace dcsr::stream {

/// Canned network-throughput trace generators for ABR experiments. All rates
/// are bytes/second, one sample per second.

/// Constant-rate link.
ThroughputTrace constant_trace(double bytes_per_s, int seconds);

/// A single rate step at `step_at` seconds (e.g. WiFi -> cellular handover).
ThroughputTrace step_trace(double before, double after, int step_at, int seconds);

/// Two-state Gilbert-Elliott-style channel: dwell in a good or bad state
/// with geometric holding times, plus mild lognormal-ish jitter. A standard
/// stand-in for LTE traces in streaming papers.
struct MarkovTraceConfig {
  double good_rate = 4000.0;
  double bad_rate = 500.0;
  double p_good_to_bad = 0.05;  // per second
  double p_bad_to_good = 0.15;
  double jitter = 0.15;         // relative stddev within a state
};
ThroughputTrace markov_trace(const MarkovTraceConfig& cfg, int seconds, Rng& rng);

}  // namespace dcsr::stream
