#include "stream/session.hpp"

#include "stream/errors.hpp"

namespace dcsr::stream {

SessionResult simulate_session(const Manifest& manifest, const SessionConfig& cfg) {
  SessionResult result;
  ModelCache cache;

  const std::size_t limit =
      cfg.watch_segments < 0
          ? manifest.segments.size()
          : std::min<std::size_t>(static_cast<std::size_t>(cfg.watch_segments),
                                  manifest.segments.size());

  for (std::size_t i = 0; i < limit; ++i) {
    const SegmentEntry& seg = manifest.segments[i];
    // make_manifest/read_manifest validate labels, but a directly
    // constructed Manifest arrives unchecked — indexing model_bytes with a
    // dangling label was a silent out-of-bounds read.
    if (seg.model_label != kNoModel &&
        (seg.model_label < 0 ||
         static_cast<std::size_t>(seg.model_label) >= manifest.model_bytes.size()))
      throw ManifestError("simulate_session: segment references unknown model",
                          i, "segment index");
    SegmentLog log;
    log.segment_index = seg.segment_index;
    log.video_bytes = seg.video_bytes;

    if (seg.model_label != kNoModel) {
      const bool hit = cfg.enable_model_cache ? cache.fetch(seg.model_label)
                                              : false;
      log.cache_hit = hit;
      if (!hit) {
        log.model_bytes =
            manifest.model_bytes[static_cast<std::size_t>(seg.model_label)];
        ++result.model_downloads;
      } else {
        ++result.cache_hits;
      }
    }

    result.video_bytes += log.video_bytes;
    result.model_bytes += log.model_bytes;
    result.log.push_back(log);
  }
  return result;
}

}  // namespace dcsr::stream
