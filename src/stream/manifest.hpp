#pragma once

#include <cstdint>
#include <vector>

#include "codec/types.hpp"
#include "util/serialize.hpp"

namespace dcsr::stream {

/// Sentinel model label meaning "this segment needs no model" (the LOW
/// baseline, which plays the degraded video as-is).
inline constexpr int kNoModel = -1;

/// What a client needs to know to fetch one segment.
struct SegmentEntry {
  int segment_index = 0;
  int frame_count = 0;
  std::uint64_t video_bytes = 0;  // encoded payload of the segment
  int model_label = kNoModel;     // which model enhances this segment
};

/// Streaming manifest: the per-segment fetch plan plus the size of every
/// model the video references. For dcSR, model_label is the segment's
/// cluster id; for NAS/NEMO every segment carries label 0 (the single big
/// model); for LOW every label is kNoModel.
struct Manifest {
  std::vector<SegmentEntry> segments;
  std::vector<std::uint64_t> model_bytes;  // indexed by model label

  std::uint64_t total_video_bytes() const noexcept;
  std::uint64_t total_model_bytes_unique() const noexcept;
};

/// Builds a manifest from an encoded video and per-segment model labels
/// (labels.size() must equal the segment count). `model_bytes[label]` gives
/// each model's serialised size.
Manifest make_manifest(const codec::EncodedVideo& video,
                       const std::vector<int>& labels,
                       std::vector<std::uint64_t> model_bytes);

/// Manifest for single-model methods (NAS/NEMO): every segment uses model 0.
Manifest make_single_model_manifest(const codec::EncodedVideo& video,
                                    std::uint64_t model_size_bytes);

/// Manifest for the LOW baseline: no models at all.
Manifest make_plain_manifest(const codec::EncodedVideo& video);

/// Binary manifest serialisation ("dcMF"): the compact wire form a server
/// hands to clients that do not want the text playlist. Little-endian,
/// CRC-terminated like the video container.
void write_manifest(const Manifest& manifest, ByteWriter& out);

/// Parses the binary form; throws ManifestError (with the byte offset of the
/// offending field) on bad magic, implausible counts, dangling model labels,
/// unordered segments, truncation, or CRC mismatch.
Manifest read_manifest(ByteReader& in);

}  // namespace dcsr::stream
