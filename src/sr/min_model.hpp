#pragma once

#include <vector>

#include "sr/trainer.hpp"

namespace dcsr::sr {

/// One probe of the minimum-working-model search.
struct MinModelProbe {
  EdsrConfig config;
  double size_mb = 0.0;
  double psnr_db = 0.0;
};

struct MinModelResult {
  EdsrConfig config;          // smallest config within tolerance of the big model
  double big_psnr_db = 0.0;   // reference quality of the big model on I frames
  std::vector<MinModelProbe> probes;  // every configuration evaluated, in size order
};

/// Appendix A.1: walks the Table-1 configuration grid in ascending model
/// size, trains each candidate briefly on the video's I-frame pairs, and
/// returns the first configuration whose PSNR is within `tolerance_db` of
/// the big model's. |M_big| / |M_min| then bounds the number of micro models
/// K the server may deploy (Eq. 3).
MinModelResult find_minimum_working_model(
    const std::vector<TrainSample>& iframe_pairs, const EdsrConfig& big,
    double big_psnr_db, double tolerance_db, const TrainOptions& opts, Rng& rng);

/// Upper bound on K from Eq. (3): floor(|M_big| / |M_min|), at least 1.
int max_micro_models(const EdsrConfig& big, const EdsrConfig& min_working) noexcept;

}  // namespace dcsr::sr
