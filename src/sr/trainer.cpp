#include "sr/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "image/metrics.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"

namespace dcsr::sr {

namespace {

// Maps patch coordinates through one of the 8 dihedral transforms (identity,
// three rotations, and their mirrored versions). `size` is the patch edge.
void dihedral_map(int op, int size, int x, int y, int& ox, int& oy) noexcept {
  const int m = size - 1;
  switch (op & 3) {
    case 0: ox = x; oy = y; break;
    case 1: ox = m - y; oy = x; break;      // rot90
    case 2: ox = m - x; oy = m - y; break;  // rot180
    default: ox = y; oy = m - x; break;     // rot270
  }
  if (op & 4) ox = m - ox;  // horizontal mirror
}

// Copies an aligned (lo, hi) patch pair into batch tensors at row b,
// applying the same dihedral transform to both resolutions.
void fill_patch(const TrainSample& s, int scale, int patch, int b, int x0,
                int y0, int op, Tensor& lo_batch, Tensor& hi_batch) {
  const Plane* lo_planes[3] = {&s.lo.r, &s.lo.g, &s.lo.b};
  const Plane* hi_planes[3] = {&s.hi.r, &s.hi.g, &s.hi.b};
  int ox = 0, oy = 0;
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < patch; ++y)
      for (int x = 0; x < patch; ++x) {
        dihedral_map(op, patch, x, y, ox, oy);
        lo_batch.at(b, c, oy, ox) = lo_planes[c]->at(x0 + x, y0 + y);
      }
    const int hp = patch * scale;
    for (int y = 0; y < hp; ++y)
      for (int x = 0; x < hp; ++x) {
        dihedral_map(op, hp, x, y, ox, oy);
        hi_batch.at(b, c, oy, ox) = hi_planes[c]->at(x0 * scale + x, y0 * scale + y);
      }
  }
}

}  // namespace

TrainStats train_sr_model(Edsr& model, const std::vector<TrainSample>& samples,
                          const TrainOptions& opts, Rng& rng) {
  if (samples.empty()) throw std::invalid_argument("train_sr_model: no samples");
  const int scale = model.config().scale;
  for (const auto& s : samples) {
    if (s.hi.width() != s.lo.width() * scale || s.hi.height() != s.lo.height() * scale)
      throw std::invalid_argument("train_sr_model: lo/hi size mismatch for scale");
    if (s.lo.width() < opts.patch_size || s.lo.height() < opts.patch_size)
      throw std::invalid_argument("train_sr_model: frame smaller than patch");
  }

  // Restores the caller's train/eval mode on every exit path, including an
  // exception thrown mid-loop by forward/backward.
  const nn::TrainingModeGuard mode_guard(model, /*training=*/true);
  nn::Adam opt(model.params(), opts.lr);
  TrainStats stats;
  stats.loss_curve.reserve(static_cast<std::size_t>(opts.iterations));
  const int patch = opts.patch_size;
  const std::uint64_t flops_per_iter =
      3 * model.flops(patch, patch) * static_cast<std::uint64_t>(opts.batch_size);

  Tensor lo_batch({opts.batch_size, 3, patch, patch});
  Tensor hi_batch({opts.batch_size, 3, patch * scale, patch * scale});

  for (int it = 0; it < opts.iterations; ++it) {
    if (opts.lr_decay) {
      const double frac = static_cast<double>(it) / opts.iterations;
      opt.set_lr(opts.lr * (frac < 0.6 ? 1.0 : (frac < 0.85 ? 0.3 : 0.09)));
    }
    for (int b = 0; b < opts.batch_size; ++b) {
      const auto& s = samples[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(samples.size()) - 1))];
      const int x0 = static_cast<int>(rng.uniform_int(0, s.lo.width() - patch));
      const int y0 = static_cast<int>(rng.uniform_int(0, s.lo.height() - patch));
      const int op = opts.augment ? static_cast<int>(rng.uniform_int(0, 7)) : 0;
      fill_patch(s, scale, patch, b, x0, y0, op, lo_batch, hi_batch);
    }
    model.zero_grad();
    const Tensor pred = model.forward(lo_batch);
    const nn::LossResult loss =
        opts.use_l1 ? nn::l1_loss(pred, hi_batch) : nn::mse_loss(pred, hi_batch);
    model.backward(loss.grad);
    opt.step();
    stats.loss_curve.push_back(loss.value);
    stats.train_flops += flops_per_iter;
  }

  const auto tail_n = std::min<std::size_t>(10, stats.loss_curve.size());
  double acc = 0.0;
  for (std::size_t i = stats.loss_curve.size() - tail_n; i < stats.loss_curve.size(); ++i)
    acc += stats.loss_curve[i];
  stats.final_loss = tail_n ? acc / static_cast<double>(tail_n) : 0.0;
  return stats;
}

double evaluate_psnr(const Edsr& model, const std::vector<TrainSample>& samples) {
  if (samples.empty()) throw std::invalid_argument("evaluate_psnr: no samples");
  double acc = 0.0;
  for (const auto& s : samples) acc += psnr(model.enhance(s.lo), s.hi);
  return acc / static_cast<double>(samples.size());
}

double evaluate_ssim(const Edsr& model, const std::vector<TrainSample>& samples) {
  if (samples.empty()) throw std::invalid_argument("evaluate_ssim: no samples");
  double acc = 0.0;
  for (const auto& s : samples) acc += ssim(model.enhance(s.lo), s.hi);
  return acc / static_cast<double>(samples.size());
}

}  // namespace dcsr::sr
