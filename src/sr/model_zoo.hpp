#pragma once

#include <string>
#include <vector>

#include "sr/edsr.hpp"

namespace dcsr::sr {

/// The named configurations evaluated in the paper.
///
/// dcSR-1/2/3: "composed of 4, 12, and 16 ResBlocks, each of which has 16
/// convolution filters" (§4). The big model is the NAS/NEMO-style network
/// trained on the whole video (64 filters x 16 blocks, the largest cell of
/// Table 1's grid at the paper's dcSR-3 depth).
EdsrConfig dcsr1_config(int scale = 1);
EdsrConfig dcsr2_config(int scale = 1);
EdsrConfig dcsr3_config(int scale = 1);
EdsrConfig big_model_config(int scale = 1);

/// The hyperparameter grid of Table 1: n_filters in {4,8,16,32,64} x
/// n_resblocks in {4,8,12,16,20}.
std::vector<int> table1_filter_axis();
std::vector<int> table1_resblock_axis();

/// One cell of Table 1: model size in MB for the configuration.
double model_size_mb(const EdsrConfig& cfg);

/// Human-readable name like "16f x 8rb (x1)".
std::string config_name(const EdsrConfig& cfg);

}  // namespace dcsr::sr
