#include "sr/edsr.hpp"

#include <stdexcept>
#include <string>

#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"

namespace dcsr::sr {

namespace {

// Upsampler plan: list of pixel-shuffle factors. Scale 1 -> none.
std::vector<int> stages_for(int scale) {
  switch (scale) {
    case 1: return {};
    case 2: return {2};
    case 3: return {3};
    case 4: return {2, 2};
    default:
      throw std::invalid_argument("Edsr: unsupported scale (use 1, 2, 3, 4)");
  }
}

}  // namespace

Edsr::Edsr(const EdsrConfig& cfg, Rng& rng)
    : cfg_(cfg),
      head_(3, cfg.n_filters, 3, rng),
      body_conv_(cfg.n_filters, cfg.n_filters, 3, rng),
      tail_(cfg.n_filters, 3, 3, rng) {
  if (cfg.n_filters <= 0 || cfg.n_resblocks <= 0)
    throw std::invalid_argument("Edsr: non-positive architecture parameter");
  body_.reserve(static_cast<std::size_t>(cfg.n_resblocks));
  for (int i = 0; i < cfg.n_resblocks; ++i)
    body_.push_back(std::make_unique<nn::ResBlock>(cfg.n_filters, rng, cfg.res_scale));
  for (const int r : stages_for(cfg.scale)) {
    up_convs_.push_back(std::make_unique<nn::Conv2d>(
        cfg.n_filters, cfg.n_filters * r * r, 3, rng));
    up_shuffles_.push_back(std::make_unique<nn::PixelShuffle>(r));
  }
  if (cfg.scale > 1)
    input_upsample_ = std::make_unique<nn::BilinearUpsample>(cfg.scale);
  // Zero-init the tail so the untrained model is already a sensible map:
  // the exact identity at scale 1 (output = x + 0), a bilinear upsampler at
  // scale > 1 (output = bilinear(x) + 0). Training can only improve on that
  // starting point, and micro models converge within a few hundred steps.
  tail_.weight().value.zero();
  tail_.bias().value.zero();
}

Tensor Edsr::forward(const Tensor& x) {
  const Tensor h = head_.forward(x);
  Tensor b = h;
  for (auto& rb : body_) b = rb->forward(b);
  Tensor s = body_conv_.forward(b);
  s.add_(h);  // global residual: stabilises training of deep bodies
  for (std::size_t i = 0; i < up_convs_.size(); ++i)
    s = up_shuffles_[i]->forward(up_convs_[i]->forward(s));
  Tensor y = tail_.forward(s);
  // Residual learning: the network predicts a correction to the (possibly
  // upsampled) input rather than the full picture.
  if (cfg_.scale == 1) {
    y.add_(x);
  } else {
    y.add_(input_upsample_->forward(x));
  }
  nn::FiniteCheckGuard{*this, y};
  return y;
}

Tensor Edsr::infer(const Tensor& x) const {
  Tensor out;
  infer_into(x, out, Workspace::local());
  return out;
}

Shape Edsr::out_shape(const Shape& in) const {
  if (in.size() != 4 || in[1] != 3) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("Edsr: expected Nx3xHxW input");
  }
  return {in[0], 3, in[2] * cfg_.scale, in[3] * cfg_.scale};
}

void Edsr::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  // Same chain and float order as forward()/the old allocating infer(), but
  // every intermediate is a workspace checkout: the head activation stays
  // live for the global skip, the residual body ping-pongs through two
  // equal-shaped buffers (each freed before the next acquire, so at most
  // two are outstanding), and the tail writes straight into `out`.
  //
  // The whole chain runs under an allocation guard: once the workspace is
  // warm, a frame must not touch the heap at all. Warm-up traffic (workspace
  // misses, buffer growth) is sanctioned at its source.
  HotPathGuard alloc_guard("sr/edsr.cpp:Edsr::infer_into");
  const Shape fshape = head_.out_shape(x.shape());
  WorkspaceTensor h = ws.acquire(fshape);
  head_.infer_into(x, *h, ws);
  WorkspaceTensor bufs[2];
  int slot = 0;
  const Tensor* cur = &*h;
  for (const auto& rb : body_) {
    bufs[slot] = WorkspaceTensor();
    WorkspaceTensor next = ws.acquire(fshape);
    rb->infer_into(*cur, *next, ws);
    bufs[slot] = std::move(next);
    cur = &*bufs[slot];
    slot ^= 1;
  }
  bufs[slot] = WorkspaceTensor();
  WorkspaceTensor s = ws.acquire(fshape);
  body_conv_.infer_into(*cur, *s, ws);
  s->add_(*h);  // global residual
  bufs[0] = WorkspaceTensor();
  bufs[1] = WorkspaceTensor();
  h = WorkspaceTensor();  // skip consumed; buffer goes home
  Shape shape = fshape;
  for (std::size_t i = 0; i < up_convs_.size(); ++i) {
    const Shape cshape = up_convs_[i]->out_shape(shape);
    WorkspaceTensor expanded = ws.acquire(cshape);
    up_convs_[i]->infer_into(*s, *expanded, ws);
    shape = up_shuffles_[i]->out_shape(cshape);
    s = WorkspaceTensor();  // conv input no longer needed
    WorkspaceTensor shuffled = ws.acquire(shape);
    up_shuffles_[i]->infer_into(*expanded, *shuffled, ws);
    s = std::move(shuffled);
  }
  tail_.infer_into(*s, out, ws);
  if (cfg_.scale == 1) {
    out.add_(x);
  } else {
    WorkspaceTensor up = ws.acquire(input_upsample_->out_shape(x.shape()));
    input_upsample_->infer_into(x, *up, ws);
    out.add_(*up);
  }
  nn::FiniteCheckGuard{*this, out};
}

Tensor Edsr::backward(const Tensor& grad_out) {
  Tensor g = tail_.backward(grad_out);
  for (std::size_t i = up_convs_.size(); i-- > 0;)
    g = up_convs_[i]->backward(up_shuffles_[i]->backward(g));
  // g is now dL/d(s) where s = body_conv(body(h)) + h.
  const Tensor dh_skip = g;
  Tensor gb = body_conv_.backward(g);
  for (std::size_t i = body_.size(); i-- > 0;) gb = body_[i]->backward(gb);
  gb.add_(dh_skip);
  Tensor gx = head_.backward(gb);
  if (cfg_.scale == 1) {
    gx.add_(grad_out);
  } else {
    gx.add_(input_upsample_->backward(grad_out));
  }
  return gx;
}

std::vector<nn::Param*> Edsr::params() {
  std::vector<nn::Param*> ps = head_.params();
  auto append = [&ps](std::vector<nn::Param*> more) {
    ps.insert(ps.end(), more.begin(), more.end());
  };
  for (auto& rb : body_) append(rb->params());
  append(body_conv_.params());
  for (auto& c : up_convs_) append(c->params());
  append(tail_.params());
  return ps;
}

void Edsr::set_training(bool training) {
  nn::Module::set_training(training);
  head_.set_training(training);
  for (auto& rb : body_) rb->set_training(training);
  body_conv_.set_training(training);
  for (auto& c : up_convs_) c->set_training(training);
  tail_.set_training(training);
}

FrameRGB Edsr::enhance(const FrameRGB& frame) const {
  FrameRGB out;
  enhance_into(frame, out);
  return out;
}

void Edsr::enhance_into(const FrameRGB& frame, FrameRGB& out) const {
  // Validate the caller's frame geometry up front, before any workspace
  // checkout: a partially-filled FrameRGB (e.g. planes reset to different
  // sizes) would otherwise surface as an opaque tensor-shape error deep in
  // the model, or worse, an out-of-bounds plane read.
  if (frame.empty()) {
    AllocAllowScope allow;  // error path may run under a caller's guard
    throw std::invalid_argument("Edsr::enhance_into: empty input frame");
  }
  if (!frame.r.same_size(frame.g) || !frame.r.same_size(frame.b)) {
    AllocAllowScope allow;
    throw std::invalid_argument(
        "Edsr::enhance_into: inconsistent plane geometry (r " +
        std::to_string(frame.r.width()) + "x" + std::to_string(frame.r.height()) +
        ", g " + std::to_string(frame.g.width()) + "x" +
        std::to_string(frame.g.height()) + ", b " +
        std::to_string(frame.b.width()) + "x" +
        std::to_string(frame.b.height()) + ")");
  }
  // Both tensor endpoints come from this thread's workspace, so the only
  // buffers that persist across calls are the caller's `out` planes — warm
  // ones are rewritten in place. Guarded after validation: a warm enhance is
  // heap-silent end to end (frame→tensor, inference, tensor→frame).
  HotPathGuard alloc_guard("sr/edsr.cpp:Edsr::enhance_into");
  Workspace& ws = Workspace::local();
  WorkspaceTensor in = ws.acquire({1, 3, frame.height(), frame.width()});
  frame_to_tensor_into(frame, *in);
  WorkspaceTensor y = ws.acquire(out_shape(in->shape()));
  infer_into(*in, *y, ws);
  in = WorkspaceTensor();
  tensor_to_frame_into(*y, out);
}

void Edsr::enhance_batch_into(const FrameRGB* const* frames, FrameRGB* const* outs,
                              int n) const {
  if (n <= 0) {
    AllocAllowScope allow;  // error path may run under a caller's guard
    throw std::invalid_argument("Edsr::enhance_batch_into: empty batch");
  }
  for (int i = 0; i < n; ++i) {
    const FrameRGB& f = *frames[i];
    if (f.empty() || !f.r.same_size(f.g) || !f.r.same_size(f.b)) {
      AllocAllowScope allow;
      throw std::invalid_argument(
          "Edsr::enhance_batch_into: empty or inconsistent frame at batch "
          "index " +
          std::to_string(i));
    }
    if (f.width() != frames[0]->width() || f.height() != frames[0]->height()) {
      AllocAllowScope allow;
      throw std::invalid_argument(
          "Edsr::enhance_batch_into: mixed frame geometry at batch index " +
          std::to_string(i));
    }
  }
  // One workspace checkout for the whole batch, one infer over Nx3xHxW.
  // Every module's infer_into processes batch items independently, so the
  // result is bit-identical to n enhance_into calls — batching only
  // amortises the per-call overhead (and, in the fleet, the model traffic).
  HotPathGuard alloc_guard("sr/edsr.cpp:Edsr::enhance_batch_into");
  Workspace& ws = Workspace::local();
  WorkspaceTensor in =
      ws.acquire({n, 3, frames[0]->height(), frames[0]->width()});
  frames_to_tensor_into(frames, n, *in);
  WorkspaceTensor y = ws.acquire(out_shape(in->shape()));
  infer_into(*in, *y, ws);
  in = WorkspaceTensor();
  tensor_to_frames_into(*y, outs);
}

std::uint64_t Edsr::flops(int in_width, int in_height) const noexcept {
  return edsr_flops(cfg_, in_width, in_height);
}

std::uint64_t Edsr::activation_bytes(int in_width, int in_height) const noexcept {
  const auto f = static_cast<std::uint64_t>(cfg_.n_filters);
  const auto in_px = static_cast<std::uint64_t>(in_width) * static_cast<std::uint64_t>(in_height);
  const auto s = static_cast<std::uint64_t>(cfg_.scale);
  const auto out_px = in_px * s * s;
  // Inference working set: input + output images, two live feature maps at
  // the input resolution (ping-pong through the body), and the expanded
  // pre-shuffle map when upsampling. 4 bytes per float sample.
  std::uint64_t samples = 3 * in_px + 3 * out_px + 2 * f * in_px;
  if (cfg_.scale > 1) samples += f * s * s * in_px + f * out_px;
  return 4 * samples;
}

std::uint64_t edsr_flops(const EdsrConfig& cfg, int in_width, int in_height) noexcept {
  const auto f = static_cast<std::uint64_t>(cfg.n_filters);
  const auto n = static_cast<std::uint64_t>(cfg.n_resblocks);
  auto px = static_cast<std::uint64_t>(in_width) * static_cast<std::uint64_t>(in_height);
  constexpr std::uint64_t kK = 9;   // 3x3 kernels
  constexpr std::uint64_t kM = 2;   // FLOPs per MAC

  std::uint64_t fl = px * f * 3 * kK * kM;            // head
  fl += n * 2 * px * f * f * kK * kM;                 // residual blocks
  fl += px * f * f * kK * kM;                         // body conv
  // Upsampler stages run at progressively larger resolutions.
  int scale = cfg.scale;
  while (scale > 1) {
    const int r = (scale % 2 == 0) ? 2 : 3;
    fl += px * (f * r * r) * f * kK * kM;             // expand conv
    px *= static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(r);
    scale /= r;
  }
  fl += px * 3 * f * kK * kM;                         // tail conv (output res)
  return fl;
}

std::uint64_t edsr_param_count(const EdsrConfig& cfg) noexcept {
  const auto f = static_cast<std::uint64_t>(cfg.n_filters);
  const auto n = static_cast<std::uint64_t>(cfg.n_resblocks);
  constexpr std::uint64_t kK = 9;
  std::uint64_t p = f * 3 * kK + f;                   // head
  p += n * 2 * (f * f * kK + f);                      // residual blocks
  p += f * f * kK + f;                                // body conv
  int scale = cfg.scale;
  while (scale > 1) {
    const int r = (scale % 2 == 0) ? 2 : 3;
    const auto rr = static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(r);
    p += (f * rr) * f * kK + f * rr;                  // expand conv
    scale /= r;
  }
  p += 3 * f * kK + 3;                                // tail conv
  return p;
}

std::uint64_t edsr_model_bytes(const EdsrConfig& cfg) noexcept {
  // Matches nn::serialized_size: 8-byte header, then per parameter tensor a
  // 1-byte rank + 4 bytes per dim (all our params are rank 2) + float32 data.
  const auto n = static_cast<std::uint64_t>(cfg.n_resblocks);
  std::uint64_t convs = 1 + 2 * n + 1 + 1;  // head + body + body_conv + tail
  int scale = cfg.scale;
  while (scale > 1) {
    ++convs;
    scale /= (scale % 2 == 0) ? 2 : 3;
  }
  const std::uint64_t tensors = convs * 2;  // weight + bias each
  return 8 + tensors * (1 + 2 * 4) + 4 * edsr_param_count(cfg);
}

}  // namespace dcsr::sr
