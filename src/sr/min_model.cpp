#include "sr/min_model.hpp"

#include <algorithm>

#include "sr/model_zoo.hpp"

namespace dcsr::sr {

MinModelResult find_minimum_working_model(
    const std::vector<TrainSample>& iframe_pairs, const EdsrConfig& big,
    double big_psnr_db, double tolerance_db, const TrainOptions& opts, Rng& rng) {
  // Build the Table-1 grid restricted to configs strictly smaller than the
  // big model, sorted by serialised size ascending.
  std::vector<EdsrConfig> grid;
  for (const int f : table1_filter_axis())
    for (const int rb : table1_resblock_axis()) {
      EdsrConfig cfg{.n_filters = f, .n_resblocks = rb, .scale = big.scale};
      if (edsr_model_bytes(cfg) < edsr_model_bytes(big)) grid.push_back(cfg);
    }
  std::sort(grid.begin(), grid.end(), [](const EdsrConfig& a, const EdsrConfig& b) {
    return edsr_model_bytes(a) < edsr_model_bytes(b);
  });

  MinModelResult result;
  result.big_psnr_db = big_psnr_db;
  result.config = big;  // fallback: nothing smaller qualifies

  for (const auto& cfg : grid) {
    Rng model_rng = rng.fork();
    Edsr model(cfg, model_rng);
    train_sr_model(model, iframe_pairs, opts, model_rng);
    const double q = evaluate_psnr(model, iframe_pairs);
    result.probes.push_back({cfg, model_size_mb(cfg), q});
    if (q >= big_psnr_db - tolerance_db) {
      result.config = cfg;
      return result;
    }
  }
  return result;
}

int max_micro_models(const EdsrConfig& big, const EdsrConfig& min_working) noexcept {
  const auto big_bytes = edsr_model_bytes(big);
  const auto min_bytes = edsr_model_bytes(min_working);
  if (min_bytes == 0) return 1;
  return std::max(1, static_cast<int>(big_bytes / min_bytes));
}

}  // namespace dcsr::sr
