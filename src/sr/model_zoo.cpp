#include "sr/model_zoo.hpp"

#include <sstream>

namespace dcsr::sr {

EdsrConfig dcsr1_config(int scale) { return {.n_filters = 16, .n_resblocks = 4, .scale = scale}; }
EdsrConfig dcsr2_config(int scale) { return {.n_filters = 16, .n_resblocks = 12, .scale = scale}; }
EdsrConfig dcsr3_config(int scale) { return {.n_filters = 16, .n_resblocks = 16, .scale = scale}; }

EdsrConfig big_model_config(int scale) {
  return {.n_filters = 64, .n_resblocks = 16, .scale = scale, .res_scale = 0.1f};
}

std::vector<int> table1_filter_axis() { return {4, 8, 16, 32, 64}; }
std::vector<int> table1_resblock_axis() { return {4, 8, 12, 16, 20}; }

double model_size_mb(const EdsrConfig& cfg) {
  return static_cast<double>(edsr_model_bytes(cfg)) / 1e6;
}

std::string config_name(const EdsrConfig& cfg) {
  std::ostringstream os;
  os << cfg.n_filters << "f x " << cfg.n_resblocks << "rb (x" << cfg.scale << ")";
  return os.str();
}

}  // namespace dcsr::sr
