#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "image/frame.hpp"
#include "nn/conv.hpp"
#include "nn/resblock.hpp"
#include "nn/shape_ops.hpp"
#include "util/rng.hpp"

namespace dcsr::sr {

/// Architecture of an EDSR model (Lim et al., CVPRW'17). The paper's micro
/// models sweep n_filters and n_resblocks (Table 1); dcSR-1/2/3 are 4/12/16
/// ResBlocks of 16 filters (§4).
struct EdsrConfig {
  int n_filters = 16;
  int n_resblocks = 8;

  /// Upscaling factor: 1 (in-loop quality enhancement at the decode
  /// resolution — what the client pipeline writes back into the DPB), 2 or 4.
  int scale = 1;

  /// Residual scaling inside each block; EDSR uses 0.1 for very wide models,
  /// 1.0 is fine at micro sizes.
  float res_scale = 1.0f;

  bool operator==(const EdsrConfig&) const = default;
};

/// EDSR super-resolution network:
///   head conv -> n residual blocks -> body conv (+ global skip from head)
///   -> upsampler (conv + pixel-shuffle per 2x stage; none at scale 1)
///   -> output conv (+ input skip at scale 1).
class Edsr final : public nn::Module {
 public:
  Edsr(const EdsrConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  /// Stateless forward pass (same floats as forward(), no member mutation).
  /// Safe to call concurrently from any number of threads on one instance —
  /// the client pipeline's frame-level inference parallelism relies on it.
  Tensor infer(const Tensor& x) const override;

  /// Workspace-backed infer: bit-identical to infer(), all intermediates
  /// drawn from `ws` (the calling thread's workspace). Steady-state playback
  /// runs this with zero heap allocations once the workspace is warm.
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;

  Shape out_shape(const Shape& in) const override;

  std::vector<nn::Param*> params() override;
  std::string name() const override { return "Edsr"; }
  void set_training(bool training) override;

  const EdsrConfig& config() const noexcept { return cfg_; }

  /// Multiply-accumulate based FLOP count for one inference on a lo-res
  /// input of the given size (2 FLOPs per MAC). Drives the device model's
  /// latency and energy estimates.
  std::uint64_t flops(int in_width, int in_height) const noexcept;

  /// Peak activation footprint in bytes for an input of the given size —
  /// the quantity the device model checks against its memory budget to
  /// reproduce the paper's "NAS and NEMO cannot even run for 4K resolution
  /// because of running out of memory".
  std::uint64_t activation_bytes(int in_width, int in_height) const noexcept;

  /// Enhances a single RGB frame (convenience around infer()). const and
  /// thread-safe: no train/eval toggling, no layer caches touched.
  FrameRGB enhance(const FrameRGB& frame) const;

  /// enhance() writing into a caller-owned frame: with `out` warm (same
  /// size as the last call) and this thread's workspace warmed up, the whole
  /// enhance path — conversion, inference, conversion back — runs without
  /// touching the allocator. Values identical to enhance().
  void enhance_into(const FrameRGB& frame, FrameRGB& out) const;

  /// Batched enhance: packs `n` same-sized frames into one Nx3xHxW tensor,
  /// runs a single infer_into (one workspace checkout for the whole batch),
  /// and unpacks into `outs`. outs[i] is bit-identical to
  /// `enhance_into(*frames[i], *outs[i])` — batching amortises dispatch and
  /// weight traffic, never changes values. The fleet driver uses this to
  /// coalesce concurrent I-frame SR requests that share a cluster model.
  void enhance_batch_into(const FrameRGB* const* frames, FrameRGB* const* outs,
                          int n) const;

 private:
  EdsrConfig cfg_;
  nn::Conv2d head_;
  std::vector<std::unique_ptr<nn::ResBlock>> body_;
  nn::Conv2d body_conv_;
  // Upsampler stages (empty at scale 1): conv expanding channels by r^2
  // followed by pixel shuffle.
  std::vector<std::unique_ptr<nn::Conv2d>> up_convs_;
  std::vector<std::unique_ptr<nn::PixelShuffle>> up_shuffles_;
  nn::Conv2d tail_;
  // Fixed input skip for scale > 1: with the zero-initialised tail the
  // untrained model IS a bilinear upsampler and learns only residual detail
  // (the VDSR-style trick that makes x2/x4 models trainable on CPU budgets).
  std::unique_ptr<nn::BilinearUpsample> input_upsample_;
};

/// FLOPs for a config without building the model (closed form; exact match
/// with Edsr::flops).
std::uint64_t edsr_flops(const EdsrConfig& cfg, int in_width, int in_height) noexcept;

/// Learnable parameter count in scalars (closed form).
std::uint64_t edsr_param_count(const EdsrConfig& cfg) noexcept;

/// Size of the serialised model in bytes (what a client downloads).
std::uint64_t edsr_model_bytes(const EdsrConfig& cfg) noexcept;

}  // namespace dcsr::sr
