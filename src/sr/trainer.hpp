#pragma once

#include <vector>

#include "image/frame.hpp"
#include "sr/edsr.hpp"
#include "util/rng.hpp"

namespace dcsr::sr {

/// One training pair: the degraded frame the client will actually see
/// (decoded at the streaming CRF) and its pristine original. For scale > 1
/// the lo frame is additionally 1/scale the size of hi.
struct TrainSample {
  FrameRGB lo;
  FrameRGB hi;
};

struct TrainOptions {
  int iterations = 200;
  int patch_size = 32;   // lo-res patch edge; hi patch is patch_size * scale
  int batch_size = 4;
  double lr = 2e-3;
  bool use_l1 = false;   // EDSR's paper prefers L1; MSE matches dcSR's Fig. 11

  /// Step decay: lr x0.3 at 60% and 85% of the iteration budget (the usual
  /// EDSR-style staircase, rescaled to micro budgets). Off by default: at
  /// micro iteration budgets the loss is still descending when the decay
  /// would kick in, so flat lr trains further.
  bool lr_decay = false;

  /// Dihedral-group patch augmentation (flips + 90-degree rotations, applied
  /// consistently to lo and hi), the standard SR trick. Off by default:
  /// dcSR *wants* to overfit its exact frames (§A.1), and augmentation
  /// trades memorisation for generalisation — exposed for the ablation.
  bool augment = false;
};

struct TrainStats {
  std::vector<double> loss_curve;  // per-iteration minibatch loss
  double final_loss = 0.0;         // mean of the last 10 iterations
  std::uint64_t train_flops = 0;   // total forward+backward FLOPs spent
};

/// Trains an SR model on the given pairs by sampling random aligned patches.
/// This is the micro-model training loop of §3.1.3 — the same code trains
/// the big NAS/NEMO baseline models, just with more data and a larger config.
TrainStats train_sr_model(Edsr& model, const std::vector<TrainSample>& samples,
                          const TrainOptions& opts, Rng& rng);

/// Mean PSNR (dB) of model(lo) against hi over the given samples — the
/// "how well does the model enhance its own training I frames" measure used
/// both for evaluation and the minimum-working-model search.
double evaluate_psnr(const Edsr& model, const std::vector<TrainSample>& samples);

/// Mean SSIM over the samples.
double evaluate_ssim(const Edsr& model, const std::vector<TrainSample>& samples);

}  // namespace dcsr::sr
