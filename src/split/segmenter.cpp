#include "split/segmenter.hpp"

#include <stdexcept>

namespace dcsr::split {

std::vector<codec::SegmentPlan> variable_segments(const VideoSource& video,
                                                  const SegmenterConfig& cfg) {
  const int total = video.frame_count();
  if (total <= 0) throw std::invalid_argument("variable_segments: empty video");

  std::vector<int> bounds = detect_shots(video, cfg.detector);
  bounds.push_back(total);  // sentinel

  // Merge too-short segments into the previous one.
  std::vector<int> merged{0};
  for (std::size_t i = 1; i + 1 < bounds.size(); ++i) {
    if (bounds[i] - merged.back() >= cfg.min_segment_frames &&
        total - bounds[i] >= cfg.min_segment_frames)
      merged.push_back(bounds[i]);
  }
  merged.push_back(total);

  // Split too-long segments.
  std::vector<codec::SegmentPlan> plans;
  for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
    int start = merged[i];
    const int end = merged[i + 1];
    while (end - start > cfg.max_segment_frames) {
      plans.push_back({start, cfg.max_segment_frames});
      start += cfg.max_segment_frames;
    }
    plans.push_back({start, end - start});
  }
  return plans;
}

std::vector<codec::SegmentPlan> fixed_segments(int frame_count, int segment_frames) {
  if (frame_count <= 0 || segment_frames <= 0)
    throw std::invalid_argument("fixed_segments: bad arguments");
  std::vector<codec::SegmentPlan> plans;
  for (int start = 0; start < frame_count; start += segment_frames)
    plans.push_back({start, std::min(segment_frames, frame_count - start)});
  return plans;
}

}  // namespace dcsr::split
