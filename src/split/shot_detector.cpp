#include "split/shot_detector.hpp"

#include <algorithm>
#include <cmath>

#include "image/convert.hpp"
#include "image/resize.hpp"

namespace dcsr::split {

namespace {

Plane luma_thumb(const FrameRGB& f, int thumb_w) {
  Plane luma(f.width(), f.height());
  for (int y = 0; y < f.height(); ++y)
    for (int x = 0; x < f.width(); ++x)
      luma.at(x, y) = rgb_to_luma(f.r.at(x, y), f.g.at(x, y), f.b.at(x, y));
  const int thumb_h =
      std::max(1, f.height() * thumb_w / std::max(1, f.width()));
  return resize_bilinear(luma, thumb_w, thumb_h);
}

double mean_abs_diff(const Plane& a, const Plane& b) {
  double acc = 0.0;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x)
      acc += std::abs(a.at(x, y) - b.at(x, y));
  return acc / static_cast<double>(a.size());
}

}  // namespace

std::vector<double> frame_differences(const VideoSource& video,
                                      const ShotDetectorConfig& cfg) {
  std::vector<double> diffs(static_cast<std::size_t>(video.frame_count()), 0.0);
  if (video.frame_count() == 0) return diffs;
  Plane prev = luma_thumb(video.frame(0), cfg.thumb_width);
  for (int i = 1; i < video.frame_count(); ++i) {
    Plane cur = luma_thumb(video.frame(i), cfg.thumb_width);
    diffs[static_cast<std::size_t>(i)] = mean_abs_diff(prev, cur);
    prev = std::move(cur);
  }
  return diffs;
}

std::vector<int> detect_shots(const VideoSource& video,
                              const ShotDetectorConfig& cfg) {
  const auto diffs = frame_differences(video, cfg);
  std::vector<int> boundaries{0};
  for (int i = 1; i < static_cast<int>(diffs.size()); ++i)
    if (diffs[static_cast<std::size_t>(i)] > cfg.threshold) boundaries.push_back(i);
  return boundaries;
}

}  // namespace dcsr::split
