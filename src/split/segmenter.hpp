#pragma once

#include <vector>

#include "codec/encoder.hpp"
#include "split/shot_detector.hpp"
#include "video/source.hpp"

namespace dcsr::split {

/// Constraints applied when turning shot boundaries into encodable segments.
struct SegmenterConfig {
  ShotDetectorConfig detector;

  /// Segments shorter than this are merged into their predecessor (avoids a
  /// flood of I frames on rapid-cut content).
  int min_segment_frames = 8;

  /// Segments longer than this are split (bounds the damage of a missed cut
  /// and keeps ABR switching granularity; see Netflix's shot-based encode
  /// notes and [4] in the paper).
  int max_segment_frames = 300;
};

/// Variable-length, content-aware segmentation: one segment per detected
/// shot, post-processed with the min/max constraints. The encoder places an
/// I frame at each segment start, so this is the paper's "appropriate
/// placement of I frames" (§3.1.1).
std::vector<codec::SegmentPlan> variable_segments(const VideoSource& video,
                                                  const SegmenterConfig& cfg = {});

/// Fixed-length segmentation (the content-agnostic baseline used by
/// NAS/NEMO-style pipelines, which the paper argues wastes I-frame bitrate).
std::vector<codec::SegmentPlan> fixed_segments(int frame_count,
                                               int segment_frames);

}  // namespace dcsr::split
