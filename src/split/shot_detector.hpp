#pragma once

#include <vector>

#include "video/source.hpp"

namespace dcsr::split {

/// Shot-change detector configuration.
struct ShotDetectorConfig {
  /// Frames are compared on a downscaled luma thumbnail of this many columns
  /// (rows follow the aspect ratio); keeps detection O(1) per frame pair at
  /// any source resolution.
  int thumb_width = 48;

  /// Mean-absolute-luma-difference threshold above which a cut is declared.
  /// The paper: "we estimate how different each frame is from its previous
  /// one. If the difference is above the predefined threshold value, we
  /// start a new segment."
  double threshold = 0.08;
};

/// Per-frame difference signal: diff[i] is the mean absolute luma difference
/// between frame i and frame i-1 (diff[0] = 0). Exposed separately so tests
/// and the threshold ablation can inspect it.
std::vector<double> frame_differences(const VideoSource& video,
                                      const ShotDetectorConfig& cfg = {});

/// Indices of detected shot boundaries (first frame of each new shot;
/// always includes 0).
std::vector<int> detect_shots(const VideoSource& video,
                              const ShotDetectorConfig& cfg = {});

}  // namespace dcsr::split
