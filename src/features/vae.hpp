#pragma once

#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/optim.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dcsr::features {

/// Convolutional variational autoencoder used to embed I-frame thumbnails
/// into a latent space where Euclidean distance tracks visual similarity
/// (§3.1.1 / Fig. 3 of the paper). Both encoder and decoder are trained, but
/// only the encoder's mean head is used downstream: mu(x) is the feature
/// vector handed to the clustering stage.
class Vae {
 public:
  struct Config {
    int input_size = 32;    // thumbnails are input_size x input_size RGB
    int latent_dim = 8;
    int base_channels = 8;  // encoder channel width (doubles after stride 2)
    int hidden = 64;        // bottleneck FC width
  };

  Vae(const Config& cfg, Rng& rng);

  const Config& config() const noexcept { return cfg_; }

  /// One optimisation step on a batch (N x 3 x S x S, values in [0,1]).
  /// Loss is  recon_mse + beta * KL(N(mu, sigma) || N(0,1))  — Eq. (1) of
  /// the paper with the reconstruction weight folded into beta.
  struct StepStats {
    double recon_mse = 0.0;
    double kl = 0.0;
  };
  StepStats train_step(const Tensor& batch, nn::Optimizer& opt, Rng& rng,
                       float beta = 1e-3f);

  /// Latent mean vectors, one row per batch item (N x latent_dim). The
  /// deterministic embedding used for clustering. Runs the stateless infer
  /// path, so a trained (const) VAE can embed from multiple threads.
  Tensor encode_mu(const Tensor& batch) const;

  /// Decoder(mu(x)) — reconstruction without sampling, for inspection.
  Tensor reconstruct(const Tensor& batch) const;

  std::vector<nn::Param*> params();

 private:
  struct Heads {
    Tensor mu, logvar;
  };
  Heads encode_heads(const Tensor& batch);

  Config cfg_;
  nn::Sequential trunk_;     // conv encoder + FC, ends in hidden activations
  nn::Linear head_mu_;
  nn::Linear head_logvar_;
  nn::Sequential decoder_;   // latent -> image
};

/// Trains a VAE on a set of thumbnails for the given number of epochs with a
/// fixed minibatch size. Convenience wrapper used by the server pipeline.
/// (Returned by pointer: models own non-copyable layer state.)
std::unique_ptr<Vae> train_vae(const std::vector<Tensor>& thumbnails,
                               const Vae::Config& cfg, int epochs, Rng& rng,
                               double lr = 2e-3, float beta = 1e-3f);

}  // namespace dcsr::features
