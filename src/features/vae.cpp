#include "features/vae.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "nn/shape_ops.hpp"

namespace dcsr::features {

Vae::Vae(const Config& cfg, Rng& rng)
    : cfg_(cfg),
      head_mu_(cfg.hidden, cfg.latent_dim, rng),
      head_logvar_(cfg.hidden, cfg.latent_dim, rng) {
  if (cfg.input_size % 4 != 0)
    throw std::invalid_argument("Vae: input_size must be divisible by 4");
  const int c = cfg.base_channels;
  const int s4 = cfg.input_size / 4;

  // Encoder trunk: two stride-2 convs halve the resolution twice, then a FC
  // bottleneck. ReLU throughout, matching the standard conv-VAE recipe.
  trunk_.emplace<nn::Conv2d>(3, c, 3, rng, /*stride=*/2, /*pad=*/1);
  trunk_.emplace<nn::ReLU>();
  trunk_.emplace<nn::Conv2d>(c, 2 * c, 3, rng, /*stride=*/2, /*pad=*/1);
  trunk_.emplace<nn::ReLU>();
  trunk_.emplace<nn::Flatten>();
  trunk_.emplace<nn::Linear>(2 * c * s4 * s4, cfg.hidden, rng);
  trunk_.emplace<nn::ReLU>();

  // Decoder: mirror of the encoder with nearest-neighbour upsampling and a
  // sigmoid output so reconstructions live in [0,1] like the inputs.
  decoder_.emplace<nn::Linear>(cfg.latent_dim, cfg.hidden, rng);
  decoder_.emplace<nn::ReLU>();
  decoder_.emplace<nn::Linear>(cfg.hidden, 2 * c * s4 * s4, rng);
  decoder_.emplace<nn::ReLU>();
  decoder_.emplace<nn::Reshape4>(2 * c, s4, s4);
  decoder_.emplace<nn::UpsampleNearest>(2);
  decoder_.emplace<nn::Conv2d>(2 * c, c, 3, rng);
  decoder_.emplace<nn::ReLU>();
  decoder_.emplace<nn::UpsampleNearest>(2);
  decoder_.emplace<nn::Conv2d>(c, 3, 3, rng);
  decoder_.emplace<nn::Sigmoid>();
}

Vae::Heads Vae::encode_heads(const Tensor& batch) {
  const Tensor h = trunk_.forward(batch);
  return {head_mu_.forward(h), head_logvar_.forward(h)};
}

Tensor Vae::encode_mu(const Tensor& batch) const {
  return head_mu_.infer(trunk_.infer(batch));
}

Tensor Vae::reconstruct(const Tensor& batch) const {
  return decoder_.infer(encode_mu(batch));
}

std::vector<nn::Param*> Vae::params() {
  std::vector<nn::Param*> ps = trunk_.params();
  for (nn::Param* p : head_mu_.params()) ps.push_back(p);
  for (nn::Param* p : head_logvar_.params()) ps.push_back(p);
  for (nn::Param* p : decoder_.params()) ps.push_back(p);
  return ps;
}

Vae::StepStats Vae::train_step(const Tensor& batch, nn::Optimizer& opt,
                               Rng& rng, float beta) {
  for (nn::Param* p : params()) p->grad.zero();

  const Heads heads = encode_heads(batch);
  const Tensor& mu = heads.mu;
  const Tensor& logvar = heads.logvar;

  // Reparameterisation: z = mu + eps * exp(logvar / 2).
  Tensor eps(mu.shape());
  for (std::size_t i = 0; i < eps.size(); ++i)
    eps[i] = static_cast<float>(rng.normal());
  Tensor z = mu;
  for (std::size_t i = 0; i < z.size(); ++i)
    z[i] += eps[i] * std::exp(0.5f * logvar[i]);

  const Tensor xhat = decoder_.forward(z);
  const nn::LossResult recon = nn::mse_loss(xhat, batch);
  const nn::KlResult kl = nn::kl_divergence(mu, logvar);

  // Backward through the decoder gives dL/dz.
  const Tensor dz = decoder_.backward(recon.grad);

  // dL/dmu = dz + beta * dKL/dmu ;  dL/dlogvar via the sampling path plus
  // the KL term.
  Tensor dmu = dz;
  Tensor dlogvar(logvar.shape());
  for (std::size_t i = 0; i < dmu.size(); ++i) {
    dmu[i] += beta * kl.grad_mu[i];
    dlogvar[i] = dz[i] * eps[i] * 0.5f * std::exp(0.5f * logvar[i]) +
                 beta * kl.grad_logvar[i];
  }

  // Both heads share the trunk output: sum their input gradients.
  Tensor dh = head_mu_.backward(dmu);
  dh.add_(head_logvar_.backward(dlogvar));
  trunk_.backward(dh);

  opt.step();
  return {recon.value, kl.value};
}

std::unique_ptr<Vae> train_vae(const std::vector<Tensor>& thumbnails,
                               const Vae::Config& cfg, int epochs, Rng& rng,
                               double lr, float beta) {
  if (thumbnails.empty()) throw std::invalid_argument("train_vae: no data");
  auto vae_ptr = std::make_unique<Vae>(cfg, rng);
  Vae& vae = *vae_ptr;
  nn::Adam opt(vae.params(), lr);

  constexpr int kBatch = 8;
  std::vector<std::size_t> order(thumbnails.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const int S = cfg.input_size;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += kBatch) {
      const auto count =
          std::min<std::size_t>(kBatch, order.size() - start);
      Tensor batch({static_cast<int>(count), 3, S, S});
      for (std::size_t b = 0; b < count; ++b) {
        const Tensor& t = thumbnails[order[start + b]];
        if (t.shape() != std::vector<int>{1, 3, S, S})
          throw std::invalid_argument("train_vae: thumbnail shape mismatch");
        std::copy(t.data(), t.data() + t.size(),
                  batch.data() + b * t.size());
      }
      vae.train_step(batch, opt, rng, beta);
    }
  }
  return vae_ptr;
}

}  // namespace dcsr::features
