#pragma once

#include <vector>

#include "cluster/kmeans.hpp"
#include "features/vae.hpp"
#include "image/frame.hpp"

namespace dcsr::features {

/// Downscales a frame to the VAE's square input size and packs it as a
/// 1x3xSxS tensor.
Tensor make_thumbnail(const FrameRGB& frame, int input_size);

/// Thumbnails for a list of frames (one tensor each).
std::vector<Tensor> make_thumbnails(const std::vector<FrameRGB>& frames,
                                    int input_size);

/// Embeds frames with the VAE's mean head and returns one feature vector per
/// frame, ready for the clustering stage. Also usable on YUV I frames after
/// conversion by the caller.
cluster::Dataset extract_features(const Vae& vae, const std::vector<FrameRGB>& frames);

/// Baseline feature for the "VAE vs raw pixels" ablation: the thumbnail
/// itself, flattened.
cluster::Dataset raw_pixel_features(const std::vector<FrameRGB>& frames,
                                    int input_size);

}  // namespace dcsr::features
