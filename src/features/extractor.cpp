#include "features/extractor.hpp"

#include "image/resize.hpp"

namespace dcsr::features {

Tensor make_thumbnail(const FrameRGB& frame, int input_size) {
  const FrameRGB small = resize(frame, input_size, input_size);
  return frame_to_tensor(small);
}

std::vector<Tensor> make_thumbnails(const std::vector<FrameRGB>& frames,
                                    int input_size) {
  std::vector<Tensor> out;
  out.reserve(frames.size());
  for (const auto& f : frames) out.push_back(make_thumbnail(f, input_size));
  return out;
}

cluster::Dataset extract_features(const Vae& vae, const std::vector<FrameRGB>& frames) {
  cluster::Dataset features;
  features.reserve(frames.size());
  const int S = vae.config().input_size;
  for (const auto& f : frames) {
    const Tensor mu = vae.encode_mu(make_thumbnail(f, S));
    cluster::Point p(mu.size());
    for (std::size_t i = 0; i < mu.size(); ++i) p[i] = mu[i];
    features.push_back(std::move(p));
  }
  return features;
}

cluster::Dataset raw_pixel_features(const std::vector<FrameRGB>& frames,
                                    int input_size) {
  cluster::Dataset features;
  features.reserve(frames.size());
  for (const auto& f : frames) {
    const Tensor t = make_thumbnail(f, input_size);
    cluster::Point p(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) p[i] = t[i];
    features.push_back(std::move(p));
  }
  return features;
}

}  // namespace dcsr::features
