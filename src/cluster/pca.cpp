#include "cluster/pca.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace dcsr::cluster {

namespace {

double dot(const Point& a, const Point& b) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}

void normalize(Point& v) noexcept {
  const double n = std::sqrt(dot(v, v));
  if (n > 1e-12)
    for (auto& x : v) x = static_cast<float>(x / n);
}

}  // namespace

Pca fit_pca(const Dataset& data, int k, int power_iters) {
  if (data.size() < 2) throw std::invalid_argument("fit_pca: need >= 2 samples");
  const auto dim = data[0].size();
  if (k <= 0 || static_cast<std::size_t>(k) > dim)
    throw std::invalid_argument("fit_pca: need 1 <= k <= dim");

  Pca pca;
  pca.mean.assign(dim, 0.0f);
  for (const auto& p : data)
    for (std::size_t d = 0; d < dim; ++d) pca.mean[d] += p[d];
  for (auto& m : pca.mean) m /= static_cast<float>(data.size());

  // Centred copy.
  Dataset centred = data;
  for (auto& p : centred)
    for (std::size_t d = 0; d < dim; ++d) p[d] -= pca.mean[d];

  Rng rng(0x9c0ffee);
  for (int c = 0; c < k; ++c) {
    // Power iteration on the (implicit) covariance: v <- X^T (X v) / n.
    Point v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    normalize(v);
    double lambda = 0.0;
    for (int it = 0; it < power_iters; ++it) {
      Point next(dim, 0.0f);
      for (const auto& p : centred) {
        const double proj = dot(p, v);
        for (std::size_t d = 0; d < dim; ++d)
          next[d] += static_cast<float>(proj * p[d]);
      }
      for (auto& x : next) x /= static_cast<float>(centred.size());
      lambda = std::sqrt(dot(next, next));
      normalize(next);
      v = std::move(next);
    }
    pca.eigenvalues.push_back(lambda);
    pca.components.push_back(v);

    // Deflate: remove this component from every sample.
    for (auto& p : centred) {
      const double proj = dot(p, v);
      for (std::size_t d = 0; d < dim; ++d)
        p[d] -= static_cast<float>(proj * v[d]);
    }
  }
  return pca;
}

Dataset pca_transform(const Pca& pca, const Dataset& data) {
  Dataset out;
  out.reserve(data.size());
  for (const auto& p : data) {
    Point centred = p;
    for (std::size_t d = 0; d < centred.size(); ++d) centred[d] -= pca.mean[d];
    Point proj(static_cast<std::size_t>(pca.k()));
    for (int c = 0; c < pca.k(); ++c)
      proj[static_cast<std::size_t>(c)] =
          static_cast<float>(dot(centred, pca.components[static_cast<std::size_t>(c)]));
    out.push_back(std::move(proj));
  }
  return out;
}

Dataset pca_inverse(const Pca& pca, const Dataset& projected) {
  Dataset out;
  out.reserve(projected.size());
  for (const auto& z : projected) {
    Point p = pca.mean;
    for (int c = 0; c < pca.k(); ++c)
      for (std::size_t d = 0; d < p.size(); ++d)
        p[d] += z[static_cast<std::size_t>(c)] *
                pca.components[static_cast<std::size_t>(c)][d];
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace dcsr::cluster
