#pragma once

#include <vector>

#include "util/rng.hpp"

namespace dcsr::cluster {

/// A dataset is N points of equal dimension.
using Point = std::vector<float>;
using Dataset = std::vector<Point>;

/// Result of a clustering run.
struct Clustering {
  std::vector<int> assignment;  // N entries, cluster id in [0, k)
  Dataset centroids;            // k centroids
  double inertia = 0.0;         // sum of squared distances to assigned centroid

  int k() const noexcept { return static_cast<int>(centroids.size()); }
};

/// Squared Euclidean distance.
double sq_distance(const Point& a, const Point& b) noexcept;

/// Lloyd's K-means with k-means++ seeding, best of `n_init` restarts.
/// This is the "original K-means" the paper contrasts against — it can land
/// in local optima, which the GlobalKMeans ablation quantifies.
Clustering kmeans(const Dataset& data, int k, Rng& rng, int max_iter = 100,
                  int n_init = 4);

/// One Lloyd refinement from explicit initial centroids (used by both
/// kmeans() and global_kmeans()).
Clustering lloyd(const Dataset& data, Dataset centroids, int max_iter);

}  // namespace dcsr::cluster
