#include "cluster/global_kmeans.hpp"

#include <limits>
#include <stdexcept>

namespace dcsr::cluster {

namespace {

Point dataset_mean(const Dataset& data) {
  Point mean(data[0].size(), 0.0f);
  for (const auto& p : data)
    for (std::size_t d = 0; d < p.size(); ++d) mean[d] += p[d];
  for (auto& v : mean) v /= static_cast<float>(data.size());
  return mean;
}

// Distances from every point to its nearest centroid in `clustering`.
std::vector<double> nearest_sq_dist(const Dataset& data, const Clustering& c) {
  std::vector<double> d(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    d[i] = sq_distance(data[i], c.centroids[static_cast<std::size_t>(c.assignment[i])]);
  return d;
}

// Extends a (k-1)-solution by one centroid placed at data[candidate] and
// refines with Lloyd.
Clustering extend(const Dataset& data, const Clustering& prev,
                  std::size_t candidate, int max_iter) {
  Dataset centroids = prev.centroids;
  centroids.push_back(data[candidate]);
  return lloyd(data, std::move(centroids), max_iter);
}

Clustering step_fast(const Dataset& data, const Clustering& prev, int max_iter) {
  const std::vector<double> d2 = nearest_sq_dist(data, prev);
  // Fast variant: pick the candidate with the largest guaranteed reduction.
  double best_b = -1.0;
  std::size_t best_n = 0;
  for (std::size_t n = 0; n < data.size(); ++n) {
    double b = 0.0;
    for (std::size_t j = 0; j < data.size(); ++j) {
      const double gain = d2[j] - sq_distance(data[n], data[j]);
      if (gain > 0.0) b += gain;
    }
    if (b > best_b) {
      best_b = b;
      best_n = n;
    }
  }
  return extend(data, prev, best_n, max_iter);
}

Clustering step_exhaustive(const Dataset& data, const Clustering& prev,
                           int max_iter) {
  Clustering best;
  best.inertia = std::numeric_limits<double>::max();
  for (std::size_t n = 0; n < data.size(); ++n) {
    Clustering c = extend(data, prev, n, max_iter);
    if (c.inertia < best.inertia) best = std::move(c);
  }
  return best;
}

Clustering one_cluster(const Dataset& data) {
  return lloyd(data, {dataset_mean(data)}, 1);
}

}  // namespace

Clustering global_kmeans(const Dataset& data, int k, int max_iter, bool exhaustive) {
  if (data.empty() || k <= 0 || static_cast<std::size_t>(k) > data.size())
    throw std::invalid_argument("global_kmeans: need 1 <= k <= n points");
  Clustering current = one_cluster(data);
  for (int kk = 2; kk <= k; ++kk)
    current = exhaustive ? step_exhaustive(data, current, max_iter)
                         : step_fast(data, current, max_iter);
  return current;
}

std::vector<Clustering> global_kmeans_sweep(const Dataset& data, int k_max,
                                            int max_iter) {
  if (data.empty() || k_max <= 0 || static_cast<std::size_t>(k_max) > data.size())
    throw std::invalid_argument("global_kmeans_sweep: need 1 <= k_max <= n");
  std::vector<Clustering> out;
  out.reserve(static_cast<std::size_t>(k_max));
  out.push_back(one_cluster(data));
  for (int kk = 2; kk <= k_max; ++kk)
    out.push_back(step_fast(data, out.back(), max_iter));
  return out;
}

}  // namespace dcsr::cluster
