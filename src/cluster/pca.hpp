#pragma once

#include "cluster/kmeans.hpp"

namespace dcsr::cluster {

/// Principal component analysis fitted by power iteration with deflation —
/// the classical linear baseline for the VAE feature extractor (§3.1.1's
/// design choice). Exact eigensolvers are unnecessary at feature dims of a
/// few hundred; power iteration converges in tens of products.
struct Pca {
  Point mean;                        // feature-wise mean of the fit data
  Dataset components;                // k orthonormal rows, descending variance
  std::vector<double> eigenvalues;   // variance captured per component

  int dim() const noexcept { return mean.empty() ? 0 : static_cast<int>(mean.size()); }
  int k() const noexcept { return static_cast<int>(components.size()); }
};

/// Fits k principal components of the dataset. Requires k <= dim and at
/// least 2 samples.
Pca fit_pca(const Dataset& data, int k, int power_iters = 100);

/// Projects points onto the fitted components (centred): output has k dims.
Dataset pca_transform(const Pca& pca, const Dataset& data);

/// Reconstruction from the projection back to the original space (for
/// measuring captured variance).
Dataset pca_inverse(const Pca& pca, const Dataset& projected);

}  // namespace dcsr::cluster
