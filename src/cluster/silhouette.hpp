#pragma once

#include "cluster/kmeans.hpp"

namespace dcsr::cluster {

/// Mean silhouette coefficient (Rousseeuw 1987) of a clustering: for each
/// point, s = (b - a) / max(a, b) with a = mean intra-cluster distance and
/// b = smallest mean distance to another cluster. Points in singleton
/// clusters contribute 0. Result lies in [-1, 1]; the paper picks the K that
/// maximises this (Eq. 2), subject to the model-size bound (Eq. 3).
double silhouette(const Dataset& data, const std::vector<int>& assignment);

/// Sweeps k in [2, k_max] with global K-means and returns the silhouette at
/// each k (index 0 -> k=2). Reproduces the curve of the paper's Fig. 5.
std::vector<double> silhouette_sweep(const Dataset& data, int k_max,
                                     int max_iter = 100);

}  // namespace dcsr::cluster
