#pragma once

#include "cluster/kmeans.hpp"

namespace dcsr::cluster {

/// Global K-means (Likas, Vlassis & Verbeek, Pattern Recognition 2003) — the
/// deterministic, incremental algorithm the paper uses "to land on the
/// global optimum" of the segment-clustering problem (§3.1.2).
///
/// The solution for k clusters is built from the solution for k-1: the new
/// centroid is tried at candidate data points, Lloyd refinement runs from
/// each start, and the best final inertia wins. `exhaustive` tries every
/// data point (the original algorithm); the default is the authors' "fast"
/// variant, which ranks candidates by the guaranteed inertia reduction bound
///   b_n = sum_j max(d^{k-1}(x_j)^2 - ||x_n - x_j||^2, 0)
/// and runs Lloyd only from the best-ranked candidate.
Clustering global_kmeans(const Dataset& data, int k, int max_iter = 100,
                         bool exhaustive = false);

/// Runs global K-means for every k in [1, k_max], reusing the incremental
/// structure; returns one Clustering per k (index 0 -> k=1). Used by the
/// silhouette sweep that picks the optimal number of micro models.
std::vector<Clustering> global_kmeans_sweep(const Dataset& data, int k_max,
                                            int max_iter = 100);

}  // namespace dcsr::cluster
