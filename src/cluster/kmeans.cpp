#include "cluster/kmeans.hpp"

#include <limits>
#include <stdexcept>

namespace dcsr::cluster {

double sq_distance(const Point& a, const Point& b) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

Clustering lloyd(const Dataset& data, Dataset centroids, int max_iter) {
  const auto n = data.size();
  const auto k = centroids.size();
  if (n == 0 || k == 0 || k > n)
    throw std::invalid_argument("lloyd: need 1 <= k <= n points");
  const auto dim = data[0].size();

  Clustering result;
  result.assignment.assign(n, -1);

  for (int iter = 0; iter < max_iter; ++iter) {
    bool changed = false;
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_distance(data[i], centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update step. Empty clusters keep their previous centroid (they can be
    // re-captured on the next assignment pass).
    Dataset sums(k, Point(dim, 0.0f));
    std::vector<int> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += data[i][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dim; ++d)
        centroids[c][d] = sums[c][d] / static_cast<float>(counts[c]);
    }
  }

  result.centroids = std::move(centroids);
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    result.inertia +=
        sq_distance(data[i], result.centroids[static_cast<std::size_t>(result.assignment[i])]);
  return result;
}

namespace {

// k-means++ seeding: first centroid uniform, subsequent proportional to the
// squared distance from the nearest chosen centroid.
Dataset seed_pp(const Dataset& data, int k, Rng& rng) {
  Dataset centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(
      data[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1))]);
  std::vector<double> d2(data.size());
  while (centroids.size() < static_cast<std::size_t>(k)) {
    double total = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) best = std::min(best, sq_distance(data[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with chosen centroids; any point works.
      centroids.push_back(data[centroids.size() % data.size()]);
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = data.size() - 1;
    for (std::size_t i = 0; i < data.size(); ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(data[pick]);
  }
  return centroids;
}

}  // namespace

Clustering kmeans(const Dataset& data, int k, Rng& rng, int max_iter, int n_init) {
  if (data.empty() || k <= 0 || static_cast<std::size_t>(k) > data.size())
    throw std::invalid_argument("kmeans: need 1 <= k <= n points");
  Clustering best;
  best.inertia = std::numeric_limits<double>::max();
  for (int init = 0; init < n_init; ++init) {
    Clustering c = lloyd(data, seed_pp(data, k, rng), max_iter);
    if (c.inertia < best.inertia) best = std::move(c);
  }
  return best;
}

}  // namespace dcsr::cluster
