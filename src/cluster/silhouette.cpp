#include "cluster/silhouette.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "cluster/global_kmeans.hpp"

namespace dcsr::cluster {

double silhouette(const Dataset& data, const std::vector<int>& assignment) {
  const auto n = data.size();
  if (n == 0 || assignment.size() != n)
    throw std::invalid_argument("silhouette: bad inputs");
  int k = 0;
  for (const int a : assignment) k = std::max(k, a + 1);
  if (k < 2) return 0.0;  // silhouette undefined for a single cluster

  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  for (const int a : assignment) ++counts[static_cast<std::size_t>(a)];

  double total = 0.0;
  std::vector<double> mean_dist(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    // Mean distance from point i to every cluster.
    std::fill(mean_dist.begin(), mean_dist.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      mean_dist[static_cast<std::size_t>(assignment[j])] +=
          std::sqrt(sq_distance(data[i], data[j]));
    }
    const auto own = static_cast<std::size_t>(assignment[i]);
    if (counts[own] <= 1) continue;  // singleton contributes 0

    double a = mean_dist[own] / static_cast<double>(counts[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (c == own || counts[c] == 0) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(counts[c]));
    }
    if (b == std::numeric_limits<double>::max()) continue;
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

std::vector<double> silhouette_sweep(const Dataset& data, int k_max, int max_iter) {
  const auto sweep = global_kmeans_sweep(data, k_max, max_iter);
  std::vector<double> out;
  out.reserve(sweep.size() - 1);
  for (std::size_t i = 1; i < sweep.size(); ++i)  // skip k=1
    out.push_back(silhouette(data, sweep[i].assignment));
  return out;
}

}  // namespace dcsr::cluster
