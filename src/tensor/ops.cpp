#include "tensor/ops.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <stdexcept>

#include "simd/dispatch.hpp"
#include "util/alloc_check.hpp"
#include "util/thread_pool.hpp"

namespace dcsr {
namespace {

void require_same(const Tensor& a, const Tensor& b, const char* what) {
  if (!a.same_shape(b)) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

void require_2d(const Tensor& t, const char* what) {
  if (t.rank() != 2) {
    AllocAllowScope allow;
    throw std::invalid_argument(std::string(what) + ": expected 2-D tensor");
  }
}

// ---------------------------------------------------------------------------
// Blocked GEMM.
//
// C (m x n) += A * B where A is addressed through explicit strides
// (a_rs between rows, a_ks between k steps) so the same driver serves both
// matmul (A row-major, a_rs = k, a_ks = 1) and matmul_tn (A stored
// transposed, a_rs = 1, a_ks = m). B is row-major k x n.
//
// Loop nest: rows are split across threads (disjoint C rows, so no
// synchronisation); within a row chunk we block columns by kNC (B panel in
// L2), k by kKC (A panel in L1), and run a kMR x kNR register tile in the
// middle. For every C element the k loop advances strictly ascending across
// blocks, which keeps the float summation order identical to the naive
// kernel — blocked results are bit-identical to matmul_naive and invariant
// to the thread count.
// ---------------------------------------------------------------------------

constexpr int kMR = 6;    // register tile rows
constexpr int kNR = 16;   // register tile columns (two AVX2 vectors)
constexpr int kKC = 256;  // k block: A panel kMR*kKC floats stays in L1
constexpr int kNC = 512;  // column block: B panel kKC*kNC floats stays in L2

// The kMR x kNR register micro-kernel lives in src/simd/ (gemm_tile_6x16):
// scalar reference in kernels_scalar.cpp, AVX2 replay pinned bitwise against
// it. gemm_strided resolves the active backend once, outside the parallel
// region, so a bad DCSR_SIMD surfaces as an exception on the calling thread.

// Edge tile with runtime extents; accumulates straight into C.
void micro_tile_any(const float* A, std::size_t a_rs, std::size_t a_ks,
                    const float* B, std::size_t ldb, float* C, std::size_t ldc,
                    int mr, int nr, int kn) {
  for (int kk = 0; kk < kn; ++kk) {
    const float* b = B + static_cast<std::size_t>(kk) * ldb;
    for (int r = 0; r < mr; ++r) {
      const float a = A[r * a_rs + static_cast<std::size_t>(kk) * a_ks];
      float* c = C + static_cast<std::size_t>(r) * ldc;
      for (int j = 0; j < nr; ++j) c[j] += a * b[j];
    }
  }
}

void gemm_strided(const float* A, std::size_t a_rs, std::size_t a_ks,
                  const float* B, std::size_t ldb, float* C, std::size_t ldc,
                  int m, int n, int k, const float* row_bias = nullptr,
                  bool fuse_relu = false) {
  if (m == 0 || n == 0 || k == 0) return;
  const simd::KernelTable& kt = simd::active();
  // The innermost kernel entry: a warm GEMM touches only its operands.
  HotPathGuard alloc_guard("tensor/ops.cpp:gemm_strided");
  // Size row chunks so each task carries at least ~1 MFLOP of work.
  const std::int64_t flops_per_row = 2LL * k * n;
  const std::int64_t grain =
      std::max<std::int64_t>(kMR, (1LL << 20) / std::max<std::int64_t>(1, flops_per_row) + 1);
  // Each chunk owns C rows [ilo, ihi): from the start of row ilo to the last
  // written element of row ihi-1 (rows are ldc apart but only n wide).
  const auto claim = [&](std::int64_t ilo, std::int64_t ihi) {
    return span_of(C + static_cast<std::size_t>(ilo) * ldc,
                   static_cast<std::size_t>(ihi - ilo - 1) * ldc +
                       static_cast<std::size_t>(n));
  };
  parallel_for_writes(0, m, grain, claim, [&](std::int64_t ilo, std::int64_t ihi) {
    for (int jc = 0; jc < n; jc += kNC) {
      const int jn = std::min(kNC, n - jc);
      for (int kc = 0; kc < k; kc += kKC) {
        const int kn = std::min(kKC, k - kc);
        const float* Bp = B + static_cast<std::size_t>(kc) * ldb + jc;
        for (std::int64_t i = ilo; i < ihi; i += kMR) {
          const int mr = static_cast<int>(std::min<std::int64_t>(kMR, ihi - i));
          const float* Ap = A + static_cast<std::size_t>(i) * a_rs +
                            static_cast<std::size_t>(kc) * a_ks;
          float* Cp = C + static_cast<std::size_t>(i) * ldc + jc;
          int j = 0;
          if (mr == kMR)
            for (; j + kNR <= jn; j += kNR)
              kt.gemm_tile_6x16(Ap, a_rs, a_ks, Bp + j, ldb, Cp + j, ldc, kn);
          if (j < jn)
            micro_tile_any(Ap, a_rs, a_ks, Bp + j, ldb, Cp + j, ldc, mr, jn - j, kn);
        }
      }
      // Fused epilogue: once the kc loop above has finished, every element
      // of the [ilo, ihi) x [jc, jc+jn) panel holds its fully accumulated
      // dot product, so adding the bias here (and clamping afterwards) is
      // the same float-op sequence as a separate bias pass followed by a
      // separate ReLU — fused output is bit-identical to the unfused one.
      // The panel sits inside this chunk's claimed rows, so no new claims.
      if (row_bias != nullptr || fuse_relu) {
        for (std::int64_t i = ilo; i < ihi; ++i) {
          float* Cp = C + static_cast<std::size_t>(i) * ldc + jc;
          if (row_bias != nullptr) {
            const float b = row_bias[i];
            for (int j = 0; j < jn; ++j) Cp[j] += b;
          }
          if (fuse_relu)
            for (int j = 0; j < jn; ++j) Cp[j] = Cp[j] > 0.0f ? Cp[j] : 0.0f;
        }
      }
    }
  }, "tensor/ops.cpp:gemm_strided");
}

// Dot-product tile for matmul_nt: kDR rows of A against kDC rows of B, each
// accumulated over kDL independent lanes along k so the compiler can
// vectorise without reassociating a single serial sum.
constexpr int kDR = 4;  // A rows per tile
constexpr int kDC = 2;  // B rows per tile
constexpr int kDL = 8;  // accumulation lanes (one AVX2 vector)

void dot_tile(const float* A, std::size_t lda, const float* B, std::size_t ldb,
              float* C, std::size_t ldc, int mr, int nr, int k) {
  float acc[kDR][kDC][kDL] = {};
  int kk = 0;
  for (; kk + kDL <= k; kk += kDL) {
    for (int r = 0; r < mr; ++r) {
      const float* a = A + static_cast<std::size_t>(r) * lda + kk;
      for (int c = 0; c < nr; ++c) {
        const float* b = B + static_cast<std::size_t>(c) * ldb + kk;
        for (int l = 0; l < kDL; ++l) acc[r][c][l] += a[l] * b[l];
      }
    }
  }
  for (int r = 0; r < mr; ++r) {
    for (int c = 0; c < nr; ++c) {
      float s = 0.0f;
      for (int l = 0; l < kDL; ++l) s += acc[r][c][l];
      const float* a = A + static_cast<std::size_t>(r) * lda;
      const float* b = B + static_cast<std::size_t>(c) * ldb;
      for (int t = kk; t < k; ++t) s += a[t] * b[t];
      C[static_cast<std::size_t>(r) * ldc + c] = s;
    }
  }
}

}  // namespace

ConstMat::ConstMat(const Tensor& t) {
  require_2d(t, "ConstMat");
  data = t.data();
  rows = t.dim(0);
  cols = t.dim(1);
}

MutMat::MutMat(Tensor& t) {
  require_2d(t, "MutMat");
  data = t.data();
  rows = t.dim(0);
  cols = t.dim(1);
}

Tensor add(const Tensor& a, const Tensor& b) {
  require_same(a, b, "add");
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same(a, b, "sub");
  Tensor out = a;
  out.axpy_(-1.0f, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same(a, b, "mul");
  Tensor out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor scaled(const Tensor& a, float s) {
  Tensor out = a;
  out.scale_(s);
  return out;
}

void matmul_into(ConstMat a, ConstMat b, Tensor& out) {
  const int m = a.rows, k = a.cols, n = b.cols;
  if (b.rows != k) throw std::invalid_argument("matmul_into: inner dim mismatch");
  out.reset({m, n});
  std::fill(out.data(), out.data() + out.size(), 0.0f);
  gemm_strided(a.data, static_cast<std::size_t>(k), 1, b.data,
               static_cast<std::size_t>(n), out.data(),
               static_cast<std::size_t>(n), m, n, k);
}

void matmul_tn_into(ConstMat a, ConstMat b, Tensor& out) {
  const int k = a.rows, m = a.cols, n = b.cols;
  if (b.rows != k) throw std::invalid_argument("matmul_tn_into: inner dim mismatch");
  out.reset({m, n});
  std::fill(out.data(), out.data() + out.size(), 0.0f);
  gemm_strided(a.data, 1, static_cast<std::size_t>(m), b.data,
               static_cast<std::size_t>(n), out.data(),
               static_cast<std::size_t>(n), m, n, k);
}

void matmul_bias_into(ConstMat a, ConstMat b, const float* row_bias, MutMat out,
                      bool fuse_relu) {
  const int m = a.rows, k = a.cols, n = b.cols;
  if (b.rows != k)
    throw std::invalid_argument("matmul_bias_into: inner dim mismatch");
  if (out.rows != m || out.cols != n)
    throw std::invalid_argument("matmul_bias_into: output shape mismatch");
  std::fill(out.data, out.data + static_cast<std::size_t>(m) * n, 0.0f);
  gemm_strided(a.data, static_cast<std::size_t>(k), 1, b.data,
               static_cast<std::size_t>(n), out.data,
               static_cast<std::size_t>(n), m, n, k, row_bias, fuse_relu);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul");
  require_2d(b, "matmul");
  if (b.dim(0) != a.dim(1)) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor out;
  matmul_into(a, b, out);
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_tn");
  require_2d(b, "matmul_tn");
  if (b.dim(0) != a.dim(0)) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor out;
  matmul_tn_into(a, b, out);
  return out;
}

void matmul_nt_into(ConstMat a, ConstMat b, Tensor& out) {
  const int m = a.rows, k = a.cols, n = b.rows;
  if (b.cols != k) throw std::invalid_argument("matmul_nt_into: inner dim mismatch");
  out.reset({m, n});
  const float* A = a.data;
  const float* B = b.data;
  float* C = out.data();
  const std::int64_t flops_per_row = 2LL * k * n;
  const std::int64_t grain =
      std::max<std::int64_t>(kDR, (1LL << 20) / std::max<std::int64_t>(1, flops_per_row) + 1);
  // Each chunk owns the dense C rows [ilo, ihi).
  const auto claim = [&](std::int64_t ilo, std::int64_t ihi) {
    return span_of(C + static_cast<std::size_t>(ilo) * n,
                   static_cast<std::size_t>(ihi - ilo) * n);
  };
  parallel_for_writes(0, m, grain, claim, [&](std::int64_t ilo, std::int64_t ihi) {
    for (std::int64_t i = ilo; i < ihi; i += kDR) {
      const int mr = static_cast<int>(std::min<std::int64_t>(kDR, ihi - i));
      const float* Ap = A + static_cast<std::size_t>(i) * k;
      float* Cp = C + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; j += kDC) {
        const int nr = std::min(kDC, n - j);
        dot_tile(Ap, static_cast<std::size_t>(k),
                 B + static_cast<std::size_t>(j) * k, static_cast<std::size_t>(k),
                 Cp + j, static_cast<std::size_t>(n), mr, nr, k);
      }
    }
  }, "tensor/ops.cpp:matmul_nt");
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_nt");
  require_2d(b, "matmul_nt");
  if (b.dim(1) != a.dim(1)) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor out;
  matmul_nt_into(a, b, out);
  return out;
}

Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_naive");
  require_2d(b, "matmul_naive");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_naive: inner dim mismatch");
  Tensor out({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = out.data();
  // ikj loop order: streams B and C rows, friendly to the prefetcher.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = A[static_cast<std::size_t>(i) * k + kk];
      const float* Brow = B + static_cast<std::size_t>(kk) * n;
      float* Crow = C + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) Crow[j] += aik * Brow[j];
    }
  }
  return out;
}

Tensor matmul_tn_naive(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_tn_naive");
  require_2d(b, "matmul_tn_naive");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn_naive: inner dim mismatch");
  Tensor out({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = out.data();
  for (int kk = 0; kk < k; ++kk) {
    const float* Arow = A + static_cast<std::size_t>(kk) * m;
    const float* Brow = B + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float aik = Arow[i];
      float* Crow = C + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) Crow[j] += aik * Brow[j];
    }
  }
  return out;
}

Tensor matmul_nt_naive(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_nt_naive");
  require_2d(b, "matmul_nt_naive");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt_naive: inner dim mismatch");
  Tensor out({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = out.data();
  for (int i = 0; i < m; ++i) {
    const float* Arow = A + static_cast<std::size_t>(i) * k;
    float* Crow = C + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* Brow = B + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += Arow[kk] * Brow[kk];
      Crow[j] = acc;
    }
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  require_2d(a, "transpose");
  const int m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

int conv_out_size(int in, int kernel, int stride, int pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

int conv_out_size_checked(int in, int kernel, int stride, int pad,
                          const char* what) {
  const auto bad = [&](const char* reason) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    std::ostringstream os;
    os << what << ": " << reason << " (in=" << in << ", kernel=" << kernel
       << ", stride=" << stride << ", pad=" << pad << ")";
    throw std::invalid_argument(os.str());
  };
  if (stride <= 0) bad("non-positive stride");
  if (kernel <= 0) bad("non-positive kernel");
  const int out = conv_out_size(in, kernel, stride, pad);
  if (out <= 0) bad("non-positive conv output size");
  return out;
}

Tensor im2col(const Tensor& input, int n, int kernel, int stride, int pad) {
  if (input.rank() != 4) throw std::invalid_argument("im2col: expected NCHW input");
  const int C = input.dim(1), H = input.dim(2), W = input.dim(3);
  const int oh = conv_out_size(H, kernel, stride, pad);
  const int ow = conv_out_size(W, kernel, stride, pad);
  Tensor cols({C * kernel * kernel, oh * ow});
  im2col_into(input, n, kernel, stride, pad, cols);
  return cols;
}

void im2col_into(const Tensor& input, int n, int kernel, int stride, int pad,
                 Tensor& cols) {
  if (input.rank() != 4) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("im2col: expected NCHW input");
  }
  const int C = input.dim(1), H = input.dim(2), W = input.dim(3);
  const int oh = conv_out_size(H, kernel, stride, pad);
  const int ow = conv_out_size(W, kernel, stride, pad);
  const int rows = C * kernel * kernel;
  if (cols.rank() != 2 || cols.dim(0) != rows || cols.dim(1) != oh * ow) {
    AllocAllowScope allow;
    throw std::invalid_argument("im2col_into: column shape mismatch");
  }
  float* out = cols.data();
  const float* in = input.data() +
                    static_cast<std::size_t>(n) * C * H * W;
  const simd::KernelTable& kt = simd::active();
  HotPathGuard alloc_guard("tensor/ops.cpp:im2col_into");
  // Each output row is filled from a read-only input, so rows tile across
  // the pool with no shared writes; inference convs (batch 1) get their
  // parallelism here rather than from the batch axis. Each chunk claims the
  // contiguous block of column-matrix rows [lo, hi).
  const auto claim = [&](std::int64_t lo, std::int64_t hi) {
    return span_of(out + static_cast<std::size_t>(lo) * oh * ow,
                   static_cast<std::size_t>(hi - lo) * oh * ow);
  };
  parallel_for_writes(0, rows, 1, claim, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const int c = static_cast<int>(row) / (kernel * kernel);
      const int ky = (static_cast<int>(row) / kernel) % kernel;
      const int kx = static_cast<int>(row) % kernel;
      float* dst = out + static_cast<std::size_t>(row) * oh * ow;
      kt.im2col_row(in + static_cast<std::size_t>(c) * H * W, H, W, oh, ow,
                    stride, pad, ky, kx, dst);
    }
  }, "tensor/ops.cpp:im2col_into");
}

void col2im_add(const Tensor& cols, Tensor& out, int n, int kernel, int stride,
                int pad) {
  if (out.rank() != 4) throw std::invalid_argument("col2im_add: expected NCHW output");
  const int C = out.dim(1), H = out.dim(2), W = out.dim(3);
  const int oh = conv_out_size(H, kernel, stride, pad);
  const int ow = conv_out_size(W, kernel, stride, pad);
  if (cols.dim(0) != C * kernel * kernel || cols.dim(1) != oh * ow)
    throw std::invalid_argument("col2im_add: column shape mismatch");
  const float* src = cols.data();
  for (int c = 0; c < C; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        const int row = (c * kernel + ky) * kernel + kx;
        const float* s = src + static_cast<std::size_t>(row) * oh * ow;
        for (int y = 0; y < oh; ++y) {
          const int sy = y * stride + ky - pad;
          if (sy < 0 || sy >= H) continue;
          for (int x = 0; x < ow; ++x) {
            const int sx = x * stride + kx - pad;
            if (sx < 0 || sx >= W) continue;
            out.at(n, c, sy, sx) += s[y * ow + x];
          }
        }
      }
    }
  }
}

double sum(const Tensor& a) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double mse(const Tensor& a, const Tensor& b) {
  require_same(a, b, "mse");
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s / static_cast<double>(a.size());
}

}  // namespace dcsr
