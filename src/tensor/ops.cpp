#include "tensor/ops.hpp"

#include <stdexcept>

namespace dcsr {
namespace {

void require_same(const Tensor& a, const Tensor& b, const char* what) {
  if (!a.same_shape(b)) throw std::invalid_argument(std::string(what) + ": shape mismatch");
}

void require_2d(const Tensor& t, const char* what) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(what) + ": expected 2-D tensor");
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same(a, b, "add");
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same(a, b, "sub");
  Tensor out = a;
  out.axpy_(-1.0f, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same(a, b, "mul");
  Tensor out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor scaled(const Tensor& a, float s) {
  Tensor out = a;
  out.scale_(s);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul");
  require_2d(b, "matmul");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor out({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = out.data();
  // ikj loop order: streams B and C rows, friendly to the prefetcher.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = A[static_cast<std::size_t>(i) * k + kk];
      if (aik == 0.0f) continue;
      const float* Brow = B + static_cast<std::size_t>(kk) * n;
      float* Crow = C + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) Crow[j] += aik * Brow[j];
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_tn");
  require_2d(b, "matmul_tn");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor out({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = out.data();
  for (int kk = 0; kk < k; ++kk) {
    const float* Arow = A + static_cast<std::size_t>(kk) * m;
    const float* Brow = B + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float aik = Arow[i];
      if (aik == 0.0f) continue;
      float* Crow = C + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) Crow[j] += aik * Brow[j];
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_nt");
  require_2d(b, "matmul_nt");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor out({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = out.data();
  for (int i = 0; i < m; ++i) {
    const float* Arow = A + static_cast<std::size_t>(i) * k;
    float* Crow = C + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* Brow = B + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += Arow[kk] * Brow[kk];
      Crow[j] = acc;
    }
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  require_2d(a, "transpose");
  const int m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

int conv_out_size(int in, int kernel, int stride, int pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

Tensor im2col(const Tensor& input, int n, int kernel, int stride, int pad) {
  if (input.rank() != 4) throw std::invalid_argument("im2col: expected NCHW input");
  const int C = input.dim(1), H = input.dim(2), W = input.dim(3);
  const int oh = conv_out_size(H, kernel, stride, pad);
  const int ow = conv_out_size(W, kernel, stride, pad);
  Tensor cols({C * kernel * kernel, oh * ow});
  float* out = cols.data();
  for (int c = 0; c < C; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        const int row = (c * kernel + ky) * kernel + kx;
        float* dst = out + static_cast<std::size_t>(row) * oh * ow;
        for (int y = 0; y < oh; ++y) {
          const int sy = y * stride + ky - pad;
          for (int x = 0; x < ow; ++x) {
            const int sx = x * stride + kx - pad;
            dst[y * ow + x] = (sy >= 0 && sy < H && sx >= 0 && sx < W)
                                  ? input.at(n, c, sy, sx)
                                  : 0.0f;
          }
        }
      }
    }
  }
  return cols;
}

void col2im_add(const Tensor& cols, Tensor& out, int n, int kernel, int stride,
                int pad) {
  if (out.rank() != 4) throw std::invalid_argument("col2im_add: expected NCHW output");
  const int C = out.dim(1), H = out.dim(2), W = out.dim(3);
  const int oh = conv_out_size(H, kernel, stride, pad);
  const int ow = conv_out_size(W, kernel, stride, pad);
  if (cols.dim(0) != C * kernel * kernel || cols.dim(1) != oh * ow)
    throw std::invalid_argument("col2im_add: column shape mismatch");
  const float* src = cols.data();
  for (int c = 0; c < C; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        const int row = (c * kernel + ky) * kernel + kx;
        const float* s = src + static_cast<std::size_t>(row) * oh * ow;
        for (int y = 0; y < oh; ++y) {
          const int sy = y * stride + ky - pad;
          if (sy < 0 || sy >= H) continue;
          for (int x = 0; x < ow; ++x) {
            const int sx = x * stride + kx - pad;
            if (sx < 0 || sx >= W) continue;
            out.at(n, c, sy, sx) += s[y * ow + x];
          }
        }
      }
    }
  }
}

double sum(const Tensor& a) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double mse(const Tensor& a, const Tensor& b) {
  require_same(a, b, "mse");
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s / static_cast<double>(a.size());
}

}  // namespace dcsr
