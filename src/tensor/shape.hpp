#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace dcsr {

namespace detail {
[[noreturn]] void throw_shape_rank(std::size_t rank);
}  // namespace detail

/// Fixed-capacity tensor shape: up to kMaxRank dimensions stored inline.
///
/// Shapes flow through every per-frame call — out_shape chains, workspace
/// acquires, tensor resets — and carrying them as std::vector<int> meant one
/// heap allocation per hop, which the DCSR_ALLOC_CHECK auditor rightly flags
/// inside hot-path guards. A Shape is a plain value (array + rank): copying
/// one is a register move, and converting from an initializer list or an
/// existing vector (both implicit, so call sites read unchanged) touches no
/// heap. Rank above kMaxRank throws std::invalid_argument — nothing in the
/// codebase goes past rank 4.
class Shape {
 public:
  static constexpr int kMaxRank = 8;

  Shape() noexcept = default;
  Shape(std::initializer_list<int> dims) { assign(dims.begin(), dims.size()); }
  Shape(const std::vector<int>& dims) { assign(dims.data(), dims.size()); }

  std::size_t size() const noexcept { return rank_; }
  std::size_t rank() const noexcept { return rank_; }
  bool empty() const noexcept { return rank_ == 0; }

  int operator[](std::size_t i) const noexcept { return dims_[i]; }
  int& operator[](std::size_t i) noexcept { return dims_[i]; }

  const int* begin() const noexcept { return dims_.data(); }
  const int* end() const noexcept { return dims_.data() + rank_; }

  std::vector<int> to_vector() const { return {begin(), end()}; }

  /// "NxCxHxW" for diagnostics (allocates — error paths only).
  std::string str() const;

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i)
      if (a.dims_[i] != b.dims_[i]) return false;
    return true;
  }

  // C++20 rewrites make the reversed and != forms fall out of these.
  friend bool operator==(const Shape& a, const std::vector<int>& b) noexcept {
    if (a.rank_ != b.size()) return false;
    for (std::size_t i = 0; i < a.rank_; ++i)
      if (a.dims_[i] != b[i]) return false;
    return true;
  }

 private:
  void assign(const int* dims, std::size_t n) {
    if (n > static_cast<std::size_t>(kMaxRank)) detail::throw_shape_rank(n);
    rank_ = n;
    for (std::size_t i = 0; i < n; ++i) dims_[i] = dims[i];
  }

  std::array<int, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Shape& s);

}  // namespace dcsr
