#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

#include "util/alloc_check.hpp"

namespace dcsr {

namespace detail {

void throw_shape_rank(std::size_t rank) {
  // May fire from a vector→Shape conversion under a hot-path guard; sanction
  // the message so the rank diagnostic is not masked by HotPathAllocError.
  AllocAllowScope allow;
  throw std::invalid_argument("Shape: rank " + std::to_string(rank) +
                              " exceeds kMaxRank " +
                              std::to_string(Shape::kMaxRank));
}

}  // namespace detail

std::string Shape::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  if (s.empty()) return os << "<scalar>";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << 'x';
    os << s[i];
  }
  return os;
}

}  // namespace dcsr
