#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/shape.hpp"
#include "util/checked.hpp"
#include "util/rng.hpp"

// Checked accessors lose their noexcept in bounds-checked builds — a failed
// check must throw, not terminate.
#if DCSR_BOUNDS_CHECK
#define DCSR_BOUNDS_NOEXCEPT
#else
#define DCSR_BOUNDS_NOEXCEPT noexcept
#endif

namespace dcsr {

/// Thrown by bounds-checked tensor access (DCSR_BOUNDS_CHECK builds): an
/// element index outside the data, a view/slice past the end, or a rank that
/// does not match the accessor. The message names the call site, the tensor
/// shape, and the offending index. Derives from std::out_of_range so generic
/// handlers keep working; release builds compile the checks out entirely.
class TensorBoundsError : public std::out_of_range {
 public:
  explicit TensorBoundsError(const std::string& what) : std::out_of_range(what) {}
};

namespace detail {
[[noreturn]] void throw_tensor_bounds(const char* site,
                                      const std::vector<int>& shape,
                                      const std::string& detail);
}  // namespace detail

/// Dense float tensor in row-major (NCHW for 4-D) layout.
///
/// The tensor is deliberately simple: contiguous storage, explicit shape, no
/// views or broadcasting. The neural-network layers in dcsr_nn implement
/// their own forward/backward kernels on top of this, which keeps the whole
/// training stack auditable — important here because the SR models are the
/// object of study, not an implementation detail.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialised tensor with the given shape.
  explicit Tensor(std::vector<int> shape);
  /// Same, from an inline Shape. Allocation is sanctioned (AllocAllowScope):
  /// constructing a Tensor inside a hot-path guard is the Workspace miss
  /// path, a legitimate warm-up allocation.
  explicit Tensor(const Shape& shape);
  Tensor(std::initializer_list<int> shape)
      : Tensor(std::vector<int>(shape)) {}

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);

  /// He/Kaiming-normal init for conv/linear weights (fan_in based).
  static Tensor randn(std::vector<int> shape, Rng& rng, float stddev = 1.0f);

  const std::vector<int>& shape() const noexcept { return shape_; }
  int dim(std::size_t i) const noexcept { return shape_[i]; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> span() noexcept { return data_; }
  std::span<const float> span() const noexcept { return data_; }

  float& operator[](std::size_t i) DCSR_BOUNDS_NOEXCEPT {
    check_flat(i, "Tensor::operator[]");
    return data_[i];
  }
  float operator[](std::size_t i) const DCSR_BOUNDS_NOEXCEPT {
    check_flat(i, "Tensor::operator[]");
    return data_[i];
  }

  /// 4-D accessors (NCHW). Bounds are assert-checked in debug builds and
  /// throw TensorBoundsError in DCSR_BOUNDS_CHECK builds.
  float& at(int n, int c, int h, int w) DCSR_BOUNDS_NOEXCEPT {
    assert(rank() == 4);
    check4(n, c, h, w, "Tensor::at(n,c,h,w)");
    return data_[idx4(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const DCSR_BOUNDS_NOEXCEPT {
    assert(rank() == 4);
    check4(n, c, h, w, "Tensor::at(n,c,h,w)");
    return data_[idx4(n, c, h, w)];
  }

  /// 2-D accessors (rows x cols).
  float& at(int r, int c) DCSR_BOUNDS_NOEXCEPT {
    assert(rank() == 2);
    check2(r, c, "Tensor::at(r,c)");
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(c)];
  }
  float at(int r, int c) const DCSR_BOUNDS_NOEXCEPT {
    assert(rank() == 2);
    check2(r, c, "Tensor::at(r,c)");
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(c)];
  }

  /// Contiguous view of `count` elements starting at flat offset `offset`.
  /// Range-checked in DCSR_BOUNDS_CHECK builds; an unchecked thin span in
  /// release. The view is invalidated by any reallocation (reset/reshaped).
  std::span<float> view(std::size_t offset, std::size_t count) DCSR_BOUNDS_NOEXCEPT {
    check_view(offset, count, "Tensor::view");
    return {data_.data() + offset, count};
  }
  std::span<const float> view(std::size_t offset, std::size_t count) const
      DCSR_BOUNDS_NOEXCEPT {
    check_view(offset, count, "Tensor::view");
    return {data_.data() + offset, count};
  }

  /// The i-th outermost sub-tensor as a contiguous span: one image of an
  /// NCHW batch, one row of a matrix. Index- and rank-checked in
  /// DCSR_BOUNDS_CHECK builds.
  std::span<float> slice(int i) DCSR_BOUNDS_NOEXCEPT {
    check_slice(i, "Tensor::slice");
    const std::size_t stride = slice_stride();
    return {data_.data() + static_cast<std::size_t>(i) * stride, stride};
  }
  std::span<const float> slice(int i) const DCSR_BOUNDS_NOEXCEPT {
    check_slice(i, "Tensor::slice");
    const std::size_t stride = slice_stride();
    return {data_.data() + static_cast<std::size_t>(i) * stride, stride};
  }

  /// Returns a copy with a new shape of equal element count.
  Tensor reshaped(std::vector<int> shape) const;

  /// Reshapes this tensor in place to `shape`, reusing the existing heap
  /// block whenever its capacity suffices. Contents are unspecified
  /// afterwards (callers must fully overwrite or zero() first). Returns true
  /// when the storage was reused, false when the change of size forced a
  /// reallocation — the signal the Workspace uses for hit/miss accounting.
  /// Takes an inline Shape (vectors and braced lists convert implicitly), so
  /// a reusing reset performs no heap allocation at all — the invariant the
  /// DCSR_ALLOC_CHECK steady-state pins rely on.
  bool reset(const Shape& shape);

  /// Floats the underlying heap block can hold without reallocating.
  std::size_t capacity() const noexcept { return data_.capacity(); }

  void fill(float v) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// In-place compound ops used by optimisers.
  Tensor& add_(const Tensor& other);
  Tensor& scale_(float s) noexcept;
  Tensor& axpy_(float alpha, const Tensor& other);  // this += alpha * other

  /// Shape as "NxCxHxW" for diagnostics.
  std::string shape_str() const;

  bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

 private:
  // Bounds checks. Each compiles to nothing when DCSR_BOUNDS_CHECK is 0, so
  // the release-build accessors stay branch-free; with checking on, failures
  // throw TensorBoundsError naming shape, index, and call site.
  void check_flat(std::size_t i, const char* site) const DCSR_BOUNDS_NOEXCEPT {
#if DCSR_BOUNDS_CHECK
    if (i >= data_.size())
      detail::throw_tensor_bounds(site, shape_,
                                  "flat index " + std::to_string(i) +
                                      " >= size " + std::to_string(data_.size()));
#endif
    (void)i;
    (void)site;
  }
  void check4(int n, int c, int h, int w, const char* site) const
      DCSR_BOUNDS_NOEXCEPT {
#if DCSR_BOUNDS_CHECK
    if (rank() != 4)
      detail::throw_tensor_bounds(site, shape_, "rank-4 access on rank-" +
                                                    std::to_string(rank()) +
                                                    " tensor");
    const int idx[4] = {n, c, h, w};
    for (int d = 0; d < 4; ++d)
      if (idx[d] < 0 || idx[d] >= shape_[static_cast<std::size_t>(d)])
        detail::throw_tensor_bounds(
            site, shape_,
            "index " + std::to_string(idx[d]) + " out of range for dim " +
                std::to_string(d));
#endif
    (void)n; (void)c; (void)h; (void)w;
    (void)site;
  }
  void check2(int r, int c, const char* site) const DCSR_BOUNDS_NOEXCEPT {
#if DCSR_BOUNDS_CHECK
    if (rank() != 2)
      detail::throw_tensor_bounds(site, shape_, "rank-2 access on rank-" +
                                                    std::to_string(rank()) +
                                                    " tensor");
    if (r < 0 || r >= shape_[0] || c < 0 || c >= shape_[1])
      detail::throw_tensor_bounds(site, shape_,
                                  "index (" + std::to_string(r) + ", " +
                                      std::to_string(c) + ") out of range");
#endif
    (void)r; (void)c;
    (void)site;
  }
  void check_view(std::size_t offset, std::size_t count, const char* site) const
      DCSR_BOUNDS_NOEXCEPT {
#if DCSR_BOUNDS_CHECK
    if (offset > data_.size() || count > data_.size() - offset)
      detail::throw_tensor_bounds(site, shape_,
                                  "view [" + std::to_string(offset) + ", " +
                                      std::to_string(offset + count) +
                                      ") past size " +
                                      std::to_string(data_.size()));
#endif
    (void)offset; (void)count;
    (void)site;
  }
  void check_slice(int i, const char* site) const DCSR_BOUNDS_NOEXCEPT {
#if DCSR_BOUNDS_CHECK
    if (rank() == 0)
      detail::throw_tensor_bounds(site, shape_, "slice of a rank-0 tensor");
    if (i < 0 || i >= shape_[0])
      detail::throw_tensor_bounds(site, shape_,
                                  "slice " + std::to_string(i) +
                                      " out of range for dim 0");
#endif
    (void)i;
    (void)site;
  }
  std::size_t slice_stride() const noexcept {
    std::size_t s = 1;
    for (std::size_t d = 1; d < shape_.size(); ++d)
      s *= static_cast<std::size_t>(shape_[d]);
    return s;
  }

  std::size_t idx4(int n, int c, int h, int w) const noexcept {
    const auto C = static_cast<std::size_t>(shape_[1]);
    const auto H = static_cast<std::size_t>(shape_[2]);
    const auto W = static_cast<std::size_t>(shape_[3]);
    return ((static_cast<std::size_t>(n) * C + static_cast<std::size_t>(c)) * H +
            static_cast<std::size_t>(h)) *
               W +
           static_cast<std::size_t>(w);
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace dcsr
