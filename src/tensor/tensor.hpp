#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dcsr {

/// Dense float tensor in row-major (NCHW for 4-D) layout.
///
/// The tensor is deliberately simple: contiguous storage, explicit shape, no
/// views or broadcasting. The neural-network layers in dcsr_nn implement
/// their own forward/backward kernels on top of this, which keeps the whole
/// training stack auditable — important here because the SR models are the
/// object of study, not an implementation detail.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialised tensor with the given shape.
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape)
      : Tensor(std::vector<int>(shape)) {}

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);

  /// He/Kaiming-normal init for conv/linear weights (fan_in based).
  static Tensor randn(std::vector<int> shape, Rng& rng, float stddev = 1.0f);

  const std::vector<int>& shape() const noexcept { return shape_; }
  int dim(std::size_t i) const noexcept { return shape_[i]; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> span() noexcept { return data_; }
  std::span<const float> span() const noexcept { return data_; }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// 4-D accessors (NCHW). Bounds are assert-checked in debug builds.
  float& at(int n, int c, int h, int w) noexcept {
    assert(rank() == 4);
    return data_[idx4(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const noexcept {
    assert(rank() == 4);
    return data_[idx4(n, c, h, w)];
  }

  /// 2-D accessors (rows x cols).
  float& at(int r, int c) noexcept {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(c)];
  }
  float at(int r, int c) const noexcept {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(c)];
  }

  /// Returns a copy with a new shape of equal element count.
  Tensor reshaped(std::vector<int> shape) const;

  /// Reshapes this tensor in place to `shape`, reusing the existing heap
  /// block whenever its capacity suffices. Contents are unspecified
  /// afterwards (callers must fully overwrite or zero() first). Returns true
  /// when the storage was reused, false when the change of size forced a
  /// reallocation — the signal the Workspace uses for hit/miss accounting.
  bool reset(std::vector<int> shape);

  /// Floats the underlying heap block can hold without reallocating.
  std::size_t capacity() const noexcept { return data_.capacity(); }

  void fill(float v) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// In-place compound ops used by optimisers.
  Tensor& add_(const Tensor& other);
  Tensor& scale_(float s) noexcept;
  Tensor& axpy_(float alpha, const Tensor& other);  // this += alpha * other

  /// Shape as "NxCxHxW" for diagnostics.
  std::string shape_str() const;

  bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

 private:
  std::size_t idx4(int n, int c, int h, int w) const noexcept {
    const auto C = static_cast<std::size_t>(shape_[1]);
    const auto H = static_cast<std::size_t>(shape_[2]);
    const auto W = static_cast<std::size_t>(shape_[3]);
    return ((static_cast<std::size_t>(n) * C + static_cast<std::size_t>(c)) * H +
            static_cast<std::size_t>(h)) *
               W +
           static_cast<std::size_t>(w);
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace dcsr
