#pragma once

#include "tensor/tensor.hpp"

namespace dcsr {

/// Elementwise ops. All require matching shapes and return a new tensor.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scaled(const Tensor& a, float s);

/// Non-owning view of a row-major 2-D matrix. The `*_into` GEMM entry points
/// accept views so a kernel can multiply a slice of a larger buffer (e.g.
/// one batch item's plane block inside an NCHW tensor) without first copying
/// it into a fresh Tensor. Implicitly constructible from a rank-2 Tensor.
struct ConstMat {
  const float* data = nullptr;
  int rows = 0;
  int cols = 0;

  ConstMat() = default;
  ConstMat(const float* d, int r, int c) noexcept : data(d), rows(r), cols(c) {}
  ConstMat(const Tensor& t);  // throws std::invalid_argument unless rank 2
};

/// Mutable counterpart of ConstMat for caller-owned output memory.
struct MutMat {
  float* data = nullptr;
  int rows = 0;
  int cols = 0;

  MutMat() = default;
  MutMat(float* d, int r, int c) noexcept : data(d), rows(r), cols(c) {}
  MutMat(Tensor& t);  // throws std::invalid_argument unless rank 2
};

/// Matrix product of 2-D tensors: (m x k) * (k x n) -> (m x n).
///
/// Cache-blocked (MC/KC/NC) with a register-tiled inner kernel, parallelised
/// over row blocks on the default pool. Per output element the k-summation
/// order is fixed and ascending, so results are bit-identical to
/// matmul_naive and invariant to the thread count.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Matrix product with the first operand transposed: aT(k x m) * b(k x n).
/// Blocked and parallelised like matmul.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Matrix product with the second operand transposed: a(m x k) * bT(n x k).
/// Lane-parallel dot-product kernel; deterministic for a fixed shape but the
/// accumulation order differs from the naive reference (compare with a
/// tolerance, not bitwise).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// `*_into` variants of the three products: identical kernels and float
/// order (bit-identical results), but the output is written into `out`,
/// which is reshaped in place — a warm caller-owned buffer (typically a
/// Workspace checkout) is reused instead of reallocated. The allocating
/// entry points above are thin wrappers over these. `out` must not alias
/// either input.
void matmul_into(ConstMat a, ConstMat b, Tensor& out);
void matmul_tn_into(ConstMat a, ConstMat b, Tensor& out);
void matmul_nt_into(ConstMat a, ConstMat b, Tensor& out);

/// Conv GEMM with a fused bias (and optionally ReLU) epilogue, written into
/// caller memory: out = a * b, then out[r][j] += row_bias[r] for every
/// element, then (if fuse_relu) out = max(0, out). The epilogue runs only
/// after an element's k-summation has fully accumulated, so the float-op
/// order is exactly "matmul, then a separate bias pass, then a separate
/// ReLU pass" — fused results are bit-identical to the unfused sequence.
/// `row_bias` (length a.rows) may be null for a pure product. `out` must be
/// pre-sized to a.rows x b.cols by the caller (it is a slice of a larger
/// tensor in the Conv2d hot path).
void matmul_bias_into(ConstMat a, ConstMat b, const float* row_bias, MutMat out,
                      bool fuse_relu = false);

/// Scalar, unblocked, single-threaded reference implementations. Kept as the
/// ground truth the blocked kernels are property-tested against.
Tensor matmul_naive(const Tensor& a, const Tensor& b);
Tensor matmul_tn_naive(const Tensor& a, const Tensor& b);
Tensor matmul_nt_naive(const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor transpose(const Tensor& a);

/// im2col for a single image (C x H x W laid out as the n-th item of an NCHW
/// tensor): extracts k x k patches with the given stride and zero padding
/// into a (C*k*k) x (outH*outW) matrix. This is the workhorse behind Conv2d.
/// Parallelised over the C*k*k output rows (each row is a disjoint slice of
/// the column matrix, so the values are thread-count invariant); inside an
/// outer parallel region the tiling degrades to serial as usual.
Tensor im2col(const Tensor& input, int n, int kernel, int stride, int pad);

/// im2col into a caller-owned column matrix of shape (C*k*k) x (outH*outW).
/// Lets inference loops reuse one scratch allocation across batch items.
void im2col_into(const Tensor& input, int n, int kernel, int stride, int pad,
                 Tensor& cols);

/// Adjoint of im2col: scatter-adds columns back into a C x H x W gradient
/// image (written into the n-th item of `out`, which must be pre-shaped).
void col2im_add(const Tensor& cols, Tensor& out, int n, int kernel, int stride,
                int pad);

/// Output spatial size of a convolution: floor((in + 2*pad - kernel)/stride)+1.
int conv_out_size(int in, int kernel, int stride, int pad) noexcept;

/// conv_out_size that rejects degenerate geometry: a non-positive output
/// extent throws std::invalid_argument naming `what` and the offending
/// in/kernel/stride/pad combination instead of silently producing a 0- or
/// negative-sized tensor downstream.
int conv_out_size_checked(int in, int kernel, int stride, int pad,
                          const char* what);

/// Sum of all elements.
double sum(const Tensor& a) noexcept;

/// Mean squared difference between two same-shaped tensors.
double mse(const Tensor& a, const Tensor& b);

}  // namespace dcsr
