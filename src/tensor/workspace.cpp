#include "tensor/workspace.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "util/alloc_check.hpp"

namespace dcsr {

namespace {

// Registry of live workspaces so aggregate_stats() can sum across threads.
// Registration happens once per thread (workspace construction) and removal
// at thread exit — never on the acquire/release hot path. Mutex and vector
// are intentionally immortal (heap-allocated, never destroyed): the TLS
// destructor of a `thread_local Workspace` on an async/pool thread can run
// after the main thread's static destructors, so a destructible registry
// would be a use-after-free at shutdown. Both stay reachable through the
// static pointers, so leak checkers don't count them.
std::mutex& registry_mutex() {
  static std::mutex* const m = new std::mutex;
  return *m;
}
std::vector<const Workspace*>& registry() {
  static auto* const r = new std::vector<const Workspace*>;
  return *r;
}

// Validates the shape before any workspace state changes: a bad shape must
// reject the acquire outright, not throw from Tensor::reset after a buffer
// has already left the free list and `outstanding` has been bumped (the
// counter-leak bug this replaced).
std::size_t element_count_of(const Shape& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) {
      AllocAllowScope allow;  // don't mask the diagnostic under a guard
      throw std::invalid_argument("Workspace::acquire: non-positive dimension");
    }
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

// Checked builds fill every acquired and released buffer with signaling
// NaNs; see kWorkspacePoisonBits. No-op (compiled out) in release.
void poison(Tensor& t) noexcept {
#if DCSR_POISON_WORKSPACE
  float p;
  static_assert(sizeof p == sizeof kWorkspacePoisonBits);
  std::memcpy(&p, &kWorkspacePoisonBits, sizeof p);
  for (float& v : t.span()) v = p;
#else
  (void)t;
#endif
}

}  // namespace

WorkspaceTensor& WorkspaceTensor::operator=(WorkspaceTensor&& other) noexcept {
  if (this != &other) {
    release();
    ws_ = std::exchange(other.ws_, nullptr);
    tensor_ = std::move(other.tensor_);
  }
  return *this;
}

void WorkspaceTensor::release() noexcept {
  if (ws_ == nullptr) return;
  ws_->release(std::move(tensor_));
  ws_ = nullptr;
}

Workspace::Workspace() {
  // Once-per-thread registry admission: a pool worker's thread_local
  // workspace can be born inside a propagated hot-path guard, and that
  // first-touch allocation is warm-up by definition.
  AllocAllowScope allow;
  std::lock_guard lk(registry_mutex());
  registry().push_back(this);
}

Workspace::~Workspace() {
  std::lock_guard lk(registry_mutex());
  auto& r = registry();
  r.erase(std::remove(r.begin(), r.end(), this), r.end());
}

WorkspaceTensor Workspace::acquire(const Shape& shape) {
  const std::size_t need = element_count_of(shape);  // throws before any state moves
  // Smallest adequate cached buffer wins: free_ is sorted by capacity, so
  // the first entry that fits is the tightest one. Identical acquire
  // sequences therefore map to identical buffers frame after frame.
  const auto it = std::find_if(free_.begin(), free_.end(), [need](const Tensor& t) {
    return t.capacity() >= need;
  });
  // Exception safety: `outstanding` is bumped only once the checkout tensor
  // exists, right before it is handed to RAII ownership — so a throw from
  // reset()/allocation (bad_alloc) leaves the counters balanced, and a throw
  // later between acquire and release (e.g. a FiniteCheckGuard trip) is
  // unwound by ~WorkspaceTensor returning the buffer to the free list.
  if (it != free_.end()) {
    Tensor t = std::move(*it);
    free_.erase(it);
    cached_.store(free_.size(), std::memory_order_relaxed);
    try {
      t.reset(shape);
    } catch (...) {
      // Pre-balance the decrement inside release(), then park the buffer
      // again: the failed acquire leaves counters and free list untouched.
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      release(std::move(t));
      throw;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    poison(t);
    return WorkspaceTensor(this, std::move(t));
  }
  Tensor t(shape);  // may throw bad_alloc; no state changed yet (miss: the
                    // Shape ctor sanctions its own warm-up allocation)
  misses_.fetch_add(1, std::memory_order_relaxed);
  bytes_allocated_.fetch_add(need * sizeof(float), std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  poison(t);
  return WorkspaceTensor(this, std::move(t));
}

WorkspaceTensor Workspace::acquire_zeroed(const Shape& shape) {
  WorkspaceTensor t = acquire(shape);
  t->zero();
  return t;
}

void Workspace::release(Tensor&& t) noexcept {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (t.capacity() == 0) return;  // nothing worth caching
  poison(t);  // checked builds: stale reads through the old checkout go NaN
  const auto pos = std::lower_bound(
      free_.begin(), free_.end(), t.capacity(),
      [](const Tensor& a, std::size_t cap) { return a.capacity() < cap; });
  // The free list's capacity stabilises once every buffer of the frame has
  // been parked once; growth beyond that is sanctioned warm-up traffic.
  AllocAllowScope allow;
  free_.insert(pos, std::move(t));
  cached_.store(free_.size(), std::memory_order_relaxed);
}

Workspace::Stats Workspace::stats() const noexcept {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bytes_allocated = bytes_allocated_.load(std::memory_order_relaxed);
  s.outstanding = outstanding_.load(std::memory_order_relaxed);
  s.cached = cached_.load(std::memory_order_relaxed);
  return s;
}

void Workspace::clear() noexcept {
  free_.clear();
  cached_.store(0, std::memory_order_relaxed);
}

Workspace& Workspace::local() {
  thread_local Workspace ws;
  return ws;
}

Workspace::Stats Workspace::aggregate_stats() {
  std::lock_guard lk(registry_mutex());
  Stats total;
  for (const Workspace* ws : registry()) {
    const Stats s = ws->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.bytes_allocated += s.bytes_allocated;
    total.outstanding += s.outstanding;
    total.cached += s.cached;
  }
  return total;
}

}  // namespace dcsr
