#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/checked.hpp"

namespace dcsr {

class Workspace;

/// Bit pattern checked builds (DCSR_POISON_WORKSPACE) fill workspace buffers
/// with on acquire *and* on release: a signaling NaN, so any arithmetic on a
/// value the caller never wrote — an uninitialized checkout or a stale read
/// through a released buffer — yields NaN and trips the FiniteCheckGuard /
/// output comparisons immediately instead of silently reusing old frame
/// data. Release builds never touch buffer contents (acquire's "contents are
/// unspecified" contract is what makes the poison a pure observation).
inline constexpr std::uint32_t kWorkspacePoisonBits = 0x7fa00000u;

/// RAII checkout of a scratch tensor from a Workspace. Move-only; the
/// destructor returns the buffer (with whatever capacity it grew to) to the
/// owning workspace's free list, so the next acquire of a same-or-smaller
/// shape is allocation-free. Must be released on the thread that acquired it
/// — a WorkspaceTensor never crosses threads (see Workspace).
class WorkspaceTensor {
 public:
  WorkspaceTensor() = default;
  WorkspaceTensor(WorkspaceTensor&& other) noexcept
      : ws_(std::exchange(other.ws_, nullptr)),
        tensor_(std::move(other.tensor_)) {}
  WorkspaceTensor& operator=(WorkspaceTensor&& other) noexcept;
  WorkspaceTensor(const WorkspaceTensor&) = delete;
  WorkspaceTensor& operator=(const WorkspaceTensor&) = delete;
  ~WorkspaceTensor() { release(); }

  Tensor& get() noexcept { return tensor_; }
  const Tensor& get() const noexcept { return tensor_; }
  Tensor& operator*() noexcept { return tensor_; }
  const Tensor& operator*() const noexcept { return tensor_; }
  Tensor* operator->() noexcept { return &tensor_; }
  const Tensor* operator->() const noexcept { return &tensor_; }

  bool valid() const noexcept { return ws_ != nullptr; }

 private:
  friend class Workspace;
  WorkspaceTensor(Workspace* ws, Tensor t) : ws_(ws), tensor_(std::move(t)) {}
  void release() noexcept;

  Workspace* ws_ = nullptr;
  Tensor tensor_;
};

/// Reusable scratch arena for the inference hot path.
///
/// A Workspace is a free list of Tensors kept sorted by capacity. acquire()
/// checks out the smallest cached buffer that can hold the requested shape
/// (a *hit* — reshape in place, no heap traffic) and only touches the
/// allocator when nothing cached is big enough (a *miss*). Because every
/// checkout made during one frame is returned before the next frame starts,
/// a frame that completes without misses leaves the free list exactly as it
/// found it — so steady-state playback runs with zero allocator traffic, and
/// the hit/miss counters prove it (see Edsr.SteadyStateEnhance tests and
/// BM_EdsrEnhanceSteadyState).
///
/// Ownership rules (the threading half of the contract):
///   - One Workspace belongs to one thread. `Workspace::local()` hands every
///     thread its own instance; pool workers warm their own arenas.
///   - A WorkspaceTensor must be released on the acquiring thread. Nothing
///     here is locked — cross-thread release is a data race by construction.
///   - Concurrent `infer`/`enhance` calls on a shared model are still safe
///     precisely because each calling thread draws scratch from its own
///     workspace; the model itself stays untouched.
class Workspace {
 public:
  struct Stats {
    std::uint64_t hits = 0;             // checkouts served from the free list
    std::uint64_t misses = 0;           // checkouts that had to allocate
    std::uint64_t bytes_allocated = 0;  // cumulative bytes of miss traffic
    std::uint64_t outstanding = 0;      // live checkouts right now
    std::uint64_t cached = 0;           // buffers parked in the free list
  };

  Workspace();
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Checks out a tensor of the given shape. Contents are unspecified —
  /// callers fully overwrite (or zero()) it; checked builds poison them with
  /// kWorkspacePoisonBits to enforce that. Counts a hit when a cached
  /// buffer's capacity covered the request, a miss otherwise. Throws
  /// std::invalid_argument on a non-positive dimension — before any counter
  /// moves or any buffer leaves the free list, so a failed acquire never
  /// leaks a checkout (outstanding is incremented only once the checkout
  /// exists and is owned by RAII). Takes an inline Shape (vectors and braced
  /// lists convert implicitly): a hit performs no heap allocation at all,
  /// which is what lets acquire run inside a DCSR_ALLOC_CHECK hot-path
  /// guard; a miss is sanctioned as warm-up traffic.
  WorkspaceTensor acquire(const Shape& shape);

  /// acquire() + zero-fill, for kernels that accumulate into their output.
  WorkspaceTensor acquire_zeroed(const Shape& shape);

  Stats stats() const noexcept;

  /// Drops every cached buffer (outstanding checkouts are unaffected and
  /// still return to the list). Frees the memory; the next frame re-warms.
  void clear() noexcept;

  /// This thread's workspace, created on first use and destroyed at thread
  /// exit. The only instance most code should touch.
  static Workspace& local();

  /// Stats summed over every live thread's workspace — the process-wide
  /// allocator-traffic view the benchmarks report.
  static Stats aggregate_stats();

 private:
  friend class WorkspaceTensor;
  void release(Tensor&& t) noexcept;

  std::vector<Tensor> free_;  // sorted ascending by capacity()
  // Counters are written by the owning thread only but read cross-thread by
  // aggregate_stats(); relaxed atomics keep that read race-free without
  // serialising the hot path.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bytes_allocated_{0};
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::uint64_t> cached_{0};
};

}  // namespace dcsr
