#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/alloc_check.hpp"

namespace dcsr {

namespace detail {

void throw_tensor_bounds(const char* site, const std::vector<int>& shape,
                         const std::string& detail) {
  // Bounds violations fire from accessors that may be under a hot-path
  // guard; sanction the diagnostic so the real error is what propagates.
  AllocAllowScope allow;
  std::ostringstream os;
  os << site << ": " << detail << " (tensor shape ";
  if (shape.empty()) {
    os << "<scalar>";
  } else {
    for (std::size_t i = 0; i < shape.size(); ++i) {
      if (i) os << 'x';
      os << shape[i];
    }
  }
  os << ')';
  throw TensorBoundsError(os.str());
}

}  // namespace detail

namespace {

// Works for std::vector<int> and Shape alike.
template <typename Dims>
std::size_t element_count(const Dims& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) {
      AllocAllowScope allow;  // don't mask the diagnostic under a guard
      throw std::invalid_argument("Tensor: non-positive dimension");
    }
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {}

Tensor::Tensor(const Shape& shape) {
  const std::size_t n = element_count(shape);  // validate before allocating
  // A Tensor constructed inside a guard is the Workspace miss path — warm-up
  // traffic by definition, so sanction it here rather than at every caller.
  AllocAllowScope allow;
  shape_.assign(shape.begin(), shape.end());
  data_.assign(n, 0.0f);
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  if (element_count(shape) != size())
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  Tensor t = *this;
  t.shape_ = std::move(shape);
  return t;
}

bool Tensor::reset(const Shape& shape) {
  const std::size_t n = element_count(shape);
  const bool reused = n <= data_.capacity();
  if (reused && shape_.capacity() >= shape.size()) {
    // Steady state: both buffers reused in place, zero allocator traffic.
    data_.resize(n);
    shape_.assign(shape.begin(), shape.end());
  } else {
    AllocAllowScope allow;  // cold growth — sanctioned warm-up allocation
    data_.resize(n);
    shape_.assign(shape.begin(), shape.end());
  }
  return reused;
}

void Tensor::fill(float v) noexcept {
  for (auto& x : data_) x = v;
}

Tensor& Tensor::add_(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("Tensor::add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) noexcept {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("Tensor::axpy_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
  return *this;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  return os.str();
}

}  // namespace dcsr
