#pragma once

#include <vector>

#include "codec/types.hpp"
#include "image/frame.hpp"
#include "video/source.hpp"

namespace dcsr::codec {

/// Placement of one variable- or fixed-length segment in a video (display
/// frame indices). Produced by the split module; the encoder opens every
/// segment with an I frame, which is exactly the content-aware I-frame
/// placement the paper adopts from Netflix's shot-based encoding.
struct SegmentPlan {
  int first_frame = 0;
  int frame_count = 0;
};

/// Closed-loop encoder. Stateless across calls; all coding state lives on
/// the stack of encode().
class Encoder {
 public:
  explicit Encoder(CodecConfig cfg) : cfg_(cfg) {}

  const CodecConfig& config() const noexcept { return cfg_; }

  /// Encodes the given segments of a video. Segments must be contiguous,
  /// non-overlapping, and in order.
  EncodedVideo encode(const VideoSource& video,
                      const std::vector<SegmentPlan>& segments) const;

  /// Encodes one segment given its frames in display order.
  EncodedSegment encode_segment(const std::vector<FrameYUV>& frames,
                                int first_frame) const;

 private:
  CodecConfig cfg_;
};

}  // namespace dcsr::codec
