#include "codec/decoder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "codec/bits.hpp"
#include "codec/deblock.hpp"
#include "codec/errors.hpp"
#include "codec/frame_coding.hpp"
#include "codec/quant.hpp"
#include "util/alloc_check.hpp"
#include "util/thread_pool.hpp"

namespace dcsr::codec {

namespace {

// Copies src into dst reusing dst's heap blocks: Plane::reset stays on its
// capacity-reuse branch once the planes have seen a frame of this geometry,
// so the per-frame reference rotation is heap-silent when warm.
void copy_frame_into(const FrameYUV& src, FrameYUV& dst) {
  dst.y.reset(src.y.width(), src.y.height());
  dst.u.reset(src.u.width(), src.u.height());
  dst.v.reset(src.v.width(), src.v.height());
  std::copy(src.y.data(), src.y.data() + src.y.size(), dst.y.data());
  std::copy(src.u.data(), src.u.data() + src.u.size(), dst.u.data());
  std::copy(src.v.data(), src.v.data() + src.v.size(), dst.v.data());
}

}  // namespace

Decoder::Decoder(int width, int height, int crf)
    : width_(width), height_(height), crf_(crf) {
  // Reject impossible geometry up front: every decoded frame is allocated
  // from these two numbers, so a hostile header must not reach the per-frame
  // loops (FrameYUV requires even dimensions for 4:2:0 chroma).
  if (width <= 0 || height <= 0 || width > 16384 || height > 16384 ||
      width % 2 != 0 || height % 2 != 0)
    throw std::invalid_argument("Decoder: implausible frame geometry " +
                                std::to_string(width) + "x" +
                                std::to_string(height));
}

void Decoder::decode_frame_sliced(const EncodedFrame& ef, const Quantizer& q,
                                  const FrameYUV* past, const FrameYUV* future,
                                  FrameYUV& out) {
  const auto n = static_cast<int>(ef.slice_sizes.size());
  if (width_ % 16 != 0 || height_ % 16 != 0) {
    AllocAllowScope allow;
    throw BitstreamError("decode: sliced frame in a non-MB-aligned stream", 0);
  }
  const int mb_rows = height_ / 16;
  if (n > mb_rows) {
    AllocAllowScope allow;
    throw BitstreamError("decode: more slices than macroblock rows", 0);
  }

  // Canonical geometry (mirrors slice_partition) and payload offsets, built
  // in warm per-frame scratch; each slice header is validated against this,
  // never trusted.
  if (spans_.capacity() < static_cast<std::size_t>(n) ||
      slice_offsets_.capacity() < static_cast<std::size_t>(n)) {
    AllocAllowScope allow;
    spans_.reserve(static_cast<std::size_t>(n));
    slice_offsets_.reserve(static_cast<std::size_t>(n));
  }
  spans_.clear();
  slice_offsets_.clear();
  std::size_t off = 0;
  for (int s = 0; s < n; ++s) {
    const int r0 = s * mb_rows / n;
    const int r1 = (s + 1) * mb_rows / n;
    spans_.push_back({r0, r1 - r0});
    slice_offsets_.push_back(off);
    off += ef.slice_sizes[static_cast<std::size_t>(s)];
  }
  if (off != ef.payload.size()) {
    AllocAllowScope allow;
    throw BitstreamError("decode: slice sizes disagree with payload size", 0);
  }

  out.y.reset(width_, height_);
  out.u.reset(width_ / 2, height_ / 2);
  out.v.reset(width_ / 2, height_ / 2);

  const std::uint8_t* payload = ef.payload.data();
  float* luma = out.y.data();
  const std::int64_t row_floats = static_cast<std::int64_t>(width_) * 16;
  parallel_for_writes(
      0, n, 1,
      [&](std::int64_t lo, std::int64_t hi) -> WriteSpan {
        // A chunk owns the contiguous luma pixel-row band of its slices. The
        // chroma rows it also writes follow the identical disjoint MB-row
        // partition (rows [8*r0, 8*r1) of the half-height planes), so
        // disjoint luma claims prove the chroma writes disjoint too — same
        // convention as the playback pipeline's per-slot claims.
        const int r0 = spans_[static_cast<std::size_t>(lo)].first_mb_row;
        const auto& last = spans_[static_cast<std::size_t>(hi - 1)];
        const int r1 = last.first_mb_row + last.mb_row_count;
        return span_of(luma + r0 * row_floats,
                       static_cast<std::size_t>((r1 - r0) * row_floats));
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t s = lo; s < hi; ++s) {
          const std::uint8_t* data = payload + slice_offsets_[static_cast<std::size_t>(s)];
          const std::size_t size = ef.slice_sizes[static_cast<std::size_t>(s)];
          const SliceSpan span = spans_[static_cast<std::size_t>(s)];
          switch (ef.type) {
            case FrameType::kI:
              decode_intra_slice(out, q, data, size, span);
              break;
            case FrameType::kP:
              decode_p_slice(out, *past, q, data, size, span);
              break;
            case FrameType::kB:
              decode_b_slice(out, *past, *future, q, data, size, span);
              break;
          }
        }
      },
      "codec/decoder.cpp:decode_frame_sliced");
}

std::vector<FrameYUV> Decoder::decode_segment(const EncodedSegment& seg) {
  std::vector<FrameYUV> display;
  decode_segment_into(seg, display);
  return display;
}

void Decoder::decode_segment_into(const EncodedSegment& seg,
                                  std::vector<FrameYUV>& display) {
  const Quantizer q(seg.crf >= 0 ? seg.crf : crf_);
  if (display.size() != seg.frames.size()) {
    // Segment-length change (or first call): growing the display vector is
    // warm-up, not steady-state traffic.
    AllocAllowScope allow;
    display.resize(seg.frames.size());
  }
  int refs_seen = 0;

  for (const auto& ef : seg.frames) {
    if (ef.display_index < 0 ||
        static_cast<std::size_t>(ef.display_index) >= display.size())
      throw std::invalid_argument("decode: bad display index");
    if (ef.type == FrameType::kP && refs_seen < 1)
      throw std::invalid_argument("decode: P frame before any reference");
    if (ef.type == FrameType::kB && refs_seen < 2)
      throw std::invalid_argument("decode: B frame without two references");
    FrameYUV& frame = display[static_cast<std::size_t>(ef.display_index)];

    {
      // Steady-state decode is on the heap-silence contract: slice scratch,
      // the output planes and the reference buffers all reuse warm storage.
      HotPathGuard guard("codec/decoder.cpp:decode_segment_into");
      if (ef.sliced()) {
        // P predicts from the most recent reference; B from (past, future) =
        // (older, most recent) — same pairing as the legacy branch below.
        const FrameYUV* past =
            ef.type == FrameType::kB ? &ref_past_ : &ref_last_;
        const FrameYUV* future = ef.type == FrameType::kB ? &ref_last_ : nullptr;
        decode_frame_sliced(ef, q, past, future, frame);
      } else {
        // Legacy (container v2) monolithic payload: the pre-slice decode
        // path, kept bit-exact for old streams. It builds fresh frames, so
        // its traffic is sanctioned rather than silent.
        AllocAllowScope allow;
        BitReader br(ef.payload);
        switch (ef.type) {
          case FrameType::kI:
            frame = decode_intra_frame(width_, height_, q, br);
            break;
          case FrameType::kP:
            frame = decode_p_frame(ref_last_, q, br);
            break;
          case FrameType::kB:
            frame = decode_b_frame(ref_past_, ref_last_, q, br);
            break;
        }
      }
      if (deblock_) deblock_frame(frame, q.base_step());
    }
    // The dcSR integration point: enhance the reference in the DPB before
    // any dependent frame is decoded. Deblocking (above) runs first as a
    // deterministic whole-frame post-pass — slice-count independent — and
    // the hook sees the filtered frame, exactly as before.
    if (hook_ && (ef.type == FrameType::kI ||
                  (ef.type == FrameType::kP && hook_p_frames_)))
      hook_(frame, ef.type, seg.first_frame + ef.display_index);
    if (ef.type != FrameType::kB) {
      std::swap(ref_past_, ref_last_);
      {
        HotPathGuard guard("codec/decoder.cpp:reference-rotation");
        copy_frame_into(frame, ref_last_);
      }
      ++refs_seen;
    }
  }
}

std::vector<FrameYUV> Decoder::decode_video(const EncodedVideo& video) {
  deblock_ = video.deblock;
  std::vector<FrameYUV> out;
  out.reserve(static_cast<std::size_t>(video.frame_count()));
  for (const auto& seg : video.segments) {
    auto frames = decode_segment(seg);
    for (auto& f : frames) out.push_back(std::move(f));
  }
  return out;
}

}  // namespace dcsr::codec
