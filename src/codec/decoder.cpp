#include "codec/decoder.hpp"

#include <stdexcept>
#include <string>

#include "codec/bits.hpp"
#include "codec/deblock.hpp"
#include "codec/frame_coding.hpp"
#include "codec/quant.hpp"

namespace dcsr::codec {

Decoder::Decoder(int width, int height, int crf)
    : width_(width), height_(height), crf_(crf) {
  // Reject impossible geometry up front: every decoded frame is allocated
  // from these two numbers, so a hostile header must not reach the per-frame
  // loops (FrameYUV requires even dimensions for 4:2:0 chroma).
  if (width <= 0 || height <= 0 || width > 16384 || height > 16384 ||
      width % 2 != 0 || height % 2 != 0)
    throw std::invalid_argument("Decoder: implausible frame geometry " +
                                std::to_string(width) + "x" +
                                std::to_string(height));
}

std::vector<FrameYUV> Decoder::decode_segment(const EncodedSegment& seg) {
  const Quantizer q(seg.crf >= 0 ? seg.crf : crf_);
  std::vector<FrameYUV> display(seg.frames.size());
  FrameYUV past_ref, last_ref;
  bool has_ref = false;

  for (const auto& ef : seg.frames) {
    BitReader br(ef.payload);
    FrameYUV frame;
    switch (ef.type) {
      case FrameType::kI:
        frame = decode_intra_frame(width_, height_, q, br);
        if (deblock_) deblock_frame(frame, q.base_step());
        // The dcSR integration point: enhance the I frame in the DPB before
        // any dependent frame is decoded.
        if (hook_) hook_(frame, FrameType::kI, seg.first_frame + ef.display_index);
        past_ref = std::move(last_ref);
        last_ref = frame;
        has_ref = true;
        break;
      case FrameType::kP:
        if (!has_ref) throw std::invalid_argument("decode: P frame before any reference");
        frame = decode_p_frame(last_ref, q, br);
        if (deblock_) deblock_frame(frame, q.base_step());
        // Optional anchor-frame enhancement: the P reconstruction becomes a
        // reference too, so enhancing it here propagates exactly like an
        // enhanced I frame.
        if (hook_ && hook_p_frames_)
          hook_(frame, FrameType::kP, seg.first_frame + ef.display_index);
        past_ref = std::move(last_ref);
        last_ref = frame;
        break;
      case FrameType::kB:
        if (past_ref.empty())
          throw std::invalid_argument("decode: B frame without two references");
        frame = decode_b_frame(past_ref, last_ref, q, br);
        if (deblock_) deblock_frame(frame, q.base_step());
        break;
    }
    if (ef.display_index < 0 ||
        static_cast<std::size_t>(ef.display_index) >= display.size())
      throw std::invalid_argument("decode: bad display index");
    display[static_cast<std::size_t>(ef.display_index)] = std::move(frame);
  }
  return display;
}

std::vector<FrameYUV> Decoder::decode_video(const EncodedVideo& video) {
  deblock_ = video.deblock;
  std::vector<FrameYUV> out;
  out.reserve(static_cast<std::size_t>(video.frame_count()));
  for (const auto& seg : video.segments) {
    auto frames = decode_segment(seg);
    for (auto& f : frames) out.push_back(std::move(f));
  }
  return out;
}

}  // namespace dcsr::codec
