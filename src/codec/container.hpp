#pragma once

#include "codec/types.hpp"
#include "util/serialize.hpp"

namespace dcsr::codec {

/// Container (de)serialisation for encoded videos — the ".dcv" format. A
/// stream written by one process can be decoded by another, which is what
/// separates a codec library from an in-memory toy. The layout is
/// length-prefixed and versioned; a CRC-32 over the payload catches
/// truncation and corruption at load time.
///
///   magic "dcV2"/"dcV3" | width | height | fps | crf | deblock | segment count
///   per segment: first_frame | crf | frame count
///     per frame: type | display_index
///                | (v3 only) slice count | slice sizes
///                | payload size | payload bytes
///   crc32 of everything above
///
/// v3 adds the per-frame slice table (macroblock-row slices that decode
/// concurrently). The writer emits v2 when no frame is sliced — byte-
/// identical to the pre-slice writer — and v3 otherwise; the reader accepts
/// both, so pre-slice streams keep decoding unchanged.
void write_container(const EncodedVideo& video, ByteWriter& out);

/// Parses a container; throws std::invalid_argument on bad magic, version,
/// CRC mismatch, or structural nonsense (so corrupted downloads fail loudly
/// rather than decode garbage).
EncodedVideo read_container(ByteReader& in);

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept;

}  // namespace dcsr::codec
