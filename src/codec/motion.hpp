#pragma once

#include "image/frame.hpp"

namespace dcsr::codec {

/// Motion vector. Units depend on context: the search functions work in
/// integer pel; the frame coder stores and signals vectors in HALF-pel units
/// (H.264-style sub-pel prediction, one refinement level).
struct MotionVector {
  int x = 0, y = 0;
};

/// Samples a plane at half-pel coordinates (x2, y2 are positions in units of
/// half a pixel): even coordinates hit integer samples, odd ones bilinearly
/// average the neighbours. Edge-clamped.
float sample_halfpel(const Plane& p, int x2, int y2) noexcept;

/// Sum of absolute differences between a `size`x`size` block of `cur` at
/// (bx, by) and the block of `ref` displaced by (mv.x, mv.y); edge-clamped.
float block_sad(const Plane& cur, const Plane& ref, int bx, int by, int size,
                MotionVector mv) noexcept;

/// Three-step search (log-scale diamond refinement) for the motion of the
/// `size`x`size` block at (bx, by) in `cur` against `ref`, within
/// [-range, range]. A small lambda penalises long vectors so near-static
/// content settles on (0,0) and codes cheaply.
MotionVector motion_search(const Plane& cur, const Plane& ref, int bx, int by,
                           int size, int range) noexcept;

/// Half-pel refinement: takes a *half-pel-unit* vector (typically 2x the
/// integer search result) and greedily tests the 8 half-pel neighbours.
/// Returns the refined half-pel vector.
MotionVector refine_halfpel(const Plane& cur, const Plane& ref, int bx, int by,
                            int size, MotionVector mv_halfpel) noexcept;

/// SAD against a half-pel displaced reference block.
float block_sad_halfpel(const Plane& cur, const Plane& ref, int bx, int by,
                        int size, MotionVector mv_halfpel) noexcept;

/// Copies the motion-compensated prediction block from `ref` into `dst` at
/// (bx, by), edge-clamped.
void motion_compensate(const Plane& ref, Plane& dst, int bx, int by, int size,
                       MotionVector mv) noexcept;

/// Bidirectional prediction: averages the two displaced reference blocks.
void motion_compensate_bi(const Plane& ref0, MotionVector mv0,
                          const Plane& ref1, MotionVector mv1, Plane& dst,
                          int bx, int by, int size) noexcept;

}  // namespace dcsr::codec
