#include "codec/container.hpp"

#include <array>
#include <stdexcept>

#include "codec/errors.hpp"

namespace dcsr::codec {

namespace {

// Bumped whenever the layout changes (v2 added per-segment CRF and the
// loop-filter flag; v3 added per-frame macroblock-row slice tables). Old
// v2 files still parse — the reader dispatches on the magic — but a v1 file
// fails at the magic check with a clear error instead of a confusing CRC
// mismatch downstream.
constexpr std::uint32_t kMagicV2 = 0x64635632;  // "dcV2" — sliceless frames
constexpr std::uint32_t kMagicV3 = 0x64635633;  // "dcV3" — sliced frames

// A frame can't have more slices than a 16384-pixel-tall frame has MB rows.
constexpr std::uint32_t kMaxSlices = 16384 / 16;

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

// True when any frame carries a slice table, which forces the v3 layout.
// A video with only monolithic payloads round-trips as v2, byte-identical
// to what this writer always produced — pre-slice readers keep working on
// streams that never used the new feature.
bool needs_v3(const EncodedVideo& video) noexcept {
  for (const auto& seg : video.segments)
    for (const auto& f : seg.frames)
      if (f.sliced()) return true;
  return false;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i)
    c = kTable[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

void write_container(const EncodedVideo& video, ByteWriter& out) {
  const bool v3 = needs_v3(video);
  ByteWriter body;
  body.write_u32(v3 ? kMagicV3 : kMagicV2);
  body.write_u32(static_cast<std::uint32_t>(video.width));
  body.write_u32(static_cast<std::uint32_t>(video.height));
  body.write_f64(video.fps);
  body.write_u32(static_cast<std::uint32_t>(video.crf));
  body.write_u8(video.deblock ? 1 : 0);
  body.write_u32(static_cast<std::uint32_t>(video.segments.size()));
  for (const auto& seg : video.segments) {
    body.write_u32(static_cast<std::uint32_t>(seg.first_frame));
    body.write_i32(seg.crf);
    body.write_u32(static_cast<std::uint32_t>(seg.frames.size()));
    for (const auto& f : seg.frames) {
      body.write_u8(static_cast<std::uint8_t>(f.type));
      body.write_u32(static_cast<std::uint32_t>(f.display_index));
      if (v3) {
        // Slice table first, then the concatenated substream bytes. A
        // monolithic frame inside a v3 stream writes a zero-entry table.
        body.write_u32(static_cast<std::uint32_t>(f.slice_sizes.size()));
        for (const auto s : f.slice_sizes) body.write_u32(s);
      }
      body.write_u32(static_cast<std::uint32_t>(f.payload.size()));
      for (const auto b : f.payload) body.write_u8(b);
    }
  }
  const auto& bytes = body.bytes();
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  for (const auto b : bytes) out.write_u8(b);
  out.write_u32(crc);
}

EncodedVideo read_container(ByteReader& in) {
  const std::size_t magic_at = in.position();
  const std::uint32_t magic = in.read_u32();
  if (magic == 0x64635631)
    throw ContainerError(
        "read_container: v1 container (this build reads v2/v3; re-encode)",
        magic_at);
  if (magic != kMagicV2 && magic != kMagicV3)
    throw ContainerError("read_container: bad magic", magic_at);
  const bool v3 = magic == kMagicV3;

  EncodedVideo video;
  const std::size_t dims_at = in.position();
  video.width = static_cast<int>(in.read_u32());
  video.height = static_cast<int>(in.read_u32());
  video.fps = in.read_f64();
  video.crf = static_cast<int>(in.read_u32());
  video.deblock = in.read_u8() != 0;
  if (video.width <= 0 || video.height <= 0 || video.width > 16384 ||
      video.height > 16384)
    throw ContainerError("read_container: implausible dimensions", dims_at);

  const std::size_t n_segments_at = in.position();
  const std::uint32_t n_segments = in.read_u32();
  if (n_segments > 1u << 20)
    throw ContainerError("read_container: implausible segment count",
                         n_segments_at);
  video.segments.reserve(n_segments);
  for (std::uint32_t s = 0; s < n_segments; ++s) {
    EncodedSegment seg;
    seg.first_frame = static_cast<int>(in.read_u32());
    const std::size_t crf_at = in.position();
    seg.crf = in.read_i32();
    if (seg.crf < -1 || seg.crf > 51)
      throw ContainerError("read_container: bad segment crf", crf_at);
    const std::size_t n_frames_at = in.position();
    const std::uint32_t n_frames = in.read_u32();
    if (n_frames > 1u << 20)
      throw ContainerError("read_container: implausible frame count",
                           n_frames_at);
    seg.frames.reserve(n_frames);
    for (std::uint32_t f = 0; f < n_frames; ++f) {
      EncodedFrame frame;
      const std::size_t type_at = in.position();
      const std::uint8_t type = in.read_u8();
      if (type > 2)
        throw ContainerError("read_container: bad frame type", type_at);
      frame.type = static_cast<FrameType>(type);
      frame.display_index = static_cast<int>(in.read_u32());
      std::uint64_t slice_total = 0;
      if (v3) {
        const std::size_t slices_at = in.position();
        const std::uint32_t n_slices = in.read_u32();
        if (n_slices > kMaxSlices)
          throw ContainerError("read_container: implausible slice count",
                               slices_at);
        frame.slice_sizes.reserve(n_slices);
        for (std::uint32_t i = 0; i < n_slices; ++i) {
          const std::uint32_t sz = in.read_u32();
          frame.slice_sizes.push_back(sz);
          slice_total += sz;
        }
      }
      const std::size_t size_at = in.position();
      const std::uint32_t size = in.read_u32();
      if (size > in.remaining())
        throw ContainerError("read_container: truncated payload", size_at);
      if (v3 && !frame.slice_sizes.empty() && slice_total != size)
        throw ContainerError(
            "read_container: slice sizes disagree with payload size", size_at);
      frame.payload.resize(size);
      for (auto& b : frame.payload) b = in.read_u8();
      seg.frames.push_back(std::move(frame));
    }
    video.segments.push_back(std::move(seg));
  }

  // The CRC covers every byte before it; checksum exactly the bytes consumed
  // from the reader's buffer rather than re-serialising the parsed structure
  // (which would re-encode a v2 stream under whichever version this writer
  // prefers and never match).
  const std::size_t crc_at = in.position();
  const std::uint32_t stored_crc = in.read_u32();
  const std::uint32_t recomputed =
      crc32(in.data() + magic_at, crc_at - magic_at);
  if (recomputed != stored_crc)
    throw ContainerError("read_container: CRC mismatch", crc_at);
  return video;
}

}  // namespace dcsr::codec
