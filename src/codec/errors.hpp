#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace dcsr::codec {

/// Thrown when an entropy-coded payload is truncated or malformed: bit-level
/// over-reads, impossible exp-Golomb prefixes, out-of-range symbols. Derives
/// std::out_of_range so existing callers that caught the untyped BitReader
/// errors keep working; `bit_offset()` pinpoints where in the payload the
/// decode went off the rails.
class BitstreamError : public std::out_of_range {
 public:
  BitstreamError(const std::string& what, std::size_t bit_offset)
      : std::out_of_range(what + " (bit offset " + std::to_string(bit_offset) +
                          ")"),
        bit_offset_(bit_offset) {}

  std::size_t bit_offset() const noexcept { return bit_offset_; }

 private:
  std::size_t bit_offset_;
};

/// Thrown when a container stream fails structural validation: bad magic,
/// implausible header fields, truncated payloads, CRC mismatch. Derives
/// std::invalid_argument (the type read_container historically threw);
/// `byte_offset()` names the position of the offending field.
class ContainerError : public std::invalid_argument {
 public:
  ContainerError(const std::string& what, std::size_t byte_offset)
      : std::invalid_argument(what + " (byte offset " +
                              std::to_string(byte_offset) + ")"),
        byte_offset_(byte_offset) {}

  std::size_t byte_offset() const noexcept { return byte_offset_; }

 private:
  std::size_t byte_offset_;
};

}  // namespace dcsr::codec
