#include "codec/analyze.hpp"

namespace dcsr::codec {

namespace {
double safe_div(double a, double b) noexcept { return b == 0.0 ? 0.0 : a / b; }
}  // namespace

double StreamStats::i_byte_share() const noexcept {
  return safe_div(static_cast<double>(i_bytes), static_cast<double>(total_bytes()));
}
double StreamStats::mean_i_bytes() const noexcept {
  return safe_div(static_cast<double>(i_bytes), i_frames);
}
double StreamStats::mean_p_bytes() const noexcept {
  return safe_div(static_cast<double>(p_bytes), p_frames);
}
double StreamStats::mean_b_bytes() const noexcept {
  return safe_div(static_cast<double>(b_bytes), b_frames);
}

StreamStats analyze(const EncodedSegment& segment) noexcept {
  StreamStats s;
  for (const auto& f : segment.frames) {
    switch (f.type) {
      case FrameType::kI:
        ++s.i_frames;
        s.i_bytes += f.size_bytes();
        break;
      case FrameType::kP:
        ++s.p_frames;
        s.p_bytes += f.size_bytes();
        break;
      case FrameType::kB:
        ++s.b_frames;
        s.b_bytes += f.size_bytes();
        break;
    }
  }
  return s;
}

StreamStats analyze(const EncodedVideo& video) noexcept {
  StreamStats total;
  for (const auto& seg : video.segments) {
    const StreamStats s = analyze(seg);
    total.i_frames += s.i_frames;
    total.p_frames += s.p_frames;
    total.b_frames += s.b_frames;
    total.i_bytes += s.i_bytes;
    total.p_bytes += s.p_bytes;
    total.b_bytes += s.b_bytes;
  }
  return total;
}

}  // namespace dcsr::codec
