#include "codec/deblock.hpp"

#include <algorithm>
#include <cmath>

namespace dcsr::codec {

namespace {

// Filters one edge pair (p1 p0 | q0 q1). Returns true if filtered.
inline void filter_edge(float& p1, float& p0, float& q0, float& q1,
                        float beta, float clip) noexcept {
  const float step = q0 - p0;
  if (std::abs(step) >= beta) return;          // real edge: leave it
  if (std::abs(p1 - p0) >= beta || std::abs(q1 - q0) >= beta) return;
  // Quarter-step correction toward each other, clipped.
  const float delta = std::clamp(step * 0.25f, -clip, clip);
  p0 = std::clamp(p0 + delta, 0.0f, 1.0f);
  q0 = std::clamp(q0 - delta, 0.0f, 1.0f);
  // Gentler touch on the second-row samples.
  const float delta2 = delta * 0.5f;
  p1 = std::clamp(p1 + delta2, 0.0f, 1.0f);
  q1 = std::clamp(q1 - delta2, 0.0f, 1.0f);
}

}  // namespace

void deblock_plane(Plane& p, int block, float qstep) noexcept {
  // Thresholds scale with the quantiser: stronger quantisation leaves bigger
  // legitimate discontinuities at block edges.
  const float beta = 4.0f * qstep;
  const float clip = 2.0f * qstep;

  // Vertical edges (filter across x = block, 2*block, ...).
  for (int x = block; x < p.width(); x += block) {
    for (int y = 0; y < p.height(); ++y) {
      float p1 = p.at_clamped(x - 2, y), p0 = p.at(x - 1, y);
      float q0 = p.at(x, y), q1 = p.at_clamped(x + 1, y);
      filter_edge(p1, p0, q0, q1, beta, clip);
      if (x - 2 >= 0) p.at(x - 2, y) = p1;
      p.at(x - 1, y) = p0;
      p.at(x, y) = q0;
      if (x + 1 < p.width()) p.at(x + 1, y) = q1;
    }
  }
  // Horizontal edges.
  for (int y = block; y < p.height(); y += block) {
    for (int x = 0; x < p.width(); ++x) {
      float p1 = p.at_clamped(x, y - 2), p0 = p.at(x, y - 1);
      float q0 = p.at(x, y), q1 = p.at_clamped(x, y + 1);
      filter_edge(p1, p0, q0, q1, beta, clip);
      if (y - 2 >= 0) p.at(x, y - 2) = p1;
      p.at(x, y - 1) = p0;
      p.at(x, y) = q0;
      if (y + 1 < p.height()) p.at(x, y + 1) = q1;
    }
  }
}

void deblock_frame(FrameYUV& f, float qstep) noexcept {
  deblock_plane(f.y, 8, qstep);
  deblock_plane(f.u, 8, qstep);
  deblock_plane(f.v, 8, qstep);
}

}  // namespace dcsr::codec
