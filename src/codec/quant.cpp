#include "codec/quant.hpp"

#include <algorithm>
#include <cmath>

#include "simd/dispatch.hpp"

namespace dcsr::codec {

namespace {
// Frequency weight: grows linearly with the diagonal index of (u, v).
float freq_weight(int idx) noexcept {
  const int u = idx % 8, v = idx / 8;
  return 1.0f + 0.35f * static_cast<float>(u + v);
}
}  // namespace

Quantizer::Quantizer(int crf)
    : crf_(std::clamp(crf, 0, 51)),
      // Calibrated so CRF ~18 is visually transparent on the synthetic
      // content and CRF 51 is severely degraded (~20 dB luma PSNR), matching
      // the paper's "worst quality" setting.
      base_step_(0.012f * std::exp2(static_cast<float>(crf_ - 18) / 6.0f)) {
  // Per-coefficient step tables, computed once so the quantise/dequantise
  // kernels are pure table-driven loops. This is also what makes the two
  // directions use the *same* step bit-for-bit: historically each call site
  // re-derived base*weight*mode inline and the compiler's per-site FMA
  // contraction choices could disagree by an ulp.
  for (int i = 0; i < 64; ++i) {
    const float w = freq_weight(i);
    // Inter residuals tolerate slightly coarser quantisation than intra
    // samples (they are already small); H.264 behaves similarly via lambda
    // scaling. Factor kept mild.
    steps_[0][i] = base_step_ * w * 1.0f;   // intra
    steps_[1][i] = base_step_ * w * 1.15f;  // inter
  }
}

float Quantizer::step_at(int idx, bool intra) const noexcept {
  return steps(intra)[idx];
}

std::array<std::int32_t, 64> Quantizer::quantize(const Block8& coeffs,
                                                 bool intra) const noexcept {
  std::array<std::int32_t, 64> levels{};
  simd::active().quantize_block(coeffs.data(), steps(intra), levels.data());
  return levels;
}

Block8 Quantizer::dequantize(const std::array<std::int32_t, 64>& levels,
                             bool intra) const noexcept {
  Block8 coeffs{};
  simd::active().dequantize_block(levels.data(), steps(intra), coeffs.data());
  return coeffs;
}

Block8 Quantizer::dequantize_idct(const std::array<std::int32_t, 64>& levels,
                                  bool intra) const noexcept {
  Block8 out{};
  simd::active().dequant_idct8x8(levels.data(), steps(intra), out.data());
  return out;
}

}  // namespace dcsr::codec
