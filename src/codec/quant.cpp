#include "codec/quant.hpp"

#include <algorithm>
#include <cmath>

namespace dcsr::codec {

namespace {
// Frequency weight: grows linearly with the diagonal index of (u, v).
float freq_weight(int idx) noexcept {
  const int u = idx % 8, v = idx / 8;
  return 1.0f + 0.35f * static_cast<float>(u + v);
}
}  // namespace

Quantizer::Quantizer(int crf)
    : crf_(std::clamp(crf, 0, 51)),
      // Calibrated so CRF ~18 is visually transparent on the synthetic
      // content and CRF 51 is severely degraded (~20 dB luma PSNR), matching
      // the paper's "worst quality" setting.
      base_step_(0.012f * std::exp2(static_cast<float>(crf_ - 18) / 6.0f)) {}

float Quantizer::step_at(int idx, bool intra) const noexcept {
  // Inter residuals tolerate slightly coarser quantisation than intra
  // samples (they are already small); H.264 behaves similarly via lambda
  // scaling. Factor kept mild.
  const float mode = intra ? 1.0f : 1.15f;
  return base_step_ * freq_weight(idx) * mode;
}

std::array<std::int32_t, 64> Quantizer::quantize(const Block8& coeffs,
                                                 bool intra) const noexcept {
  std::array<std::int32_t, 64> levels{};
  for (int i = 0; i < 64; ++i) {
    const float step = step_at(i, intra);
    levels[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(std::lround(coeffs[static_cast<std::size_t>(i)] / step));
  }
  return levels;
}

Block8 Quantizer::dequantize(const std::array<std::int32_t, 64>& levels,
                             bool intra) const noexcept {
  Block8 coeffs{};
  for (int i = 0; i < 64; ++i)
    coeffs[static_cast<std::size_t>(i)] =
        static_cast<float>(levels[static_cast<std::size_t>(i)]) * step_at(i, intra);
  return coeffs;
}

}  // namespace dcsr::codec
