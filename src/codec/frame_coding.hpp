#pragma once

#include <cstdint>
#include <vector>

#include "codec/bits.hpp"
#include "codec/quant.hpp"
#include "codec/types.hpp"
#include "image/frame.hpp"

namespace dcsr::codec {

/// Frame-level coding primitives shared by the encoder (which also plays the
/// role of its own reference decoder — a closed coding loop, as in any real
/// codec) and the standalone decoder. Encode functions return the
/// *reconstruction* (what the decoder will see), never the pristine source.
///
/// Luma dimensions must be multiples of 16 (one macroblock); chroma is 4:2:0.

/// Codes a frame in intra mode: all planes in raster 8x8 blocks with
/// DC-delta prediction. Samples are biased by -0.5 before the transform so
/// levels are signed around zero.
FrameYUV encode_intra_frame(const FrameYUV& src, const Quantizer& q, BitWriter& bw);
FrameYUV decode_intra_frame(int width, int height, const Quantizer& q, BitReader& br);

/// Codes a P frame against one reference: per-16x16-macroblock motion search
/// (three-step), MV-delta coding against the left neighbour, per-MB skip
/// flag, and 8x8 residual transform coding.
FrameYUV encode_p_frame(const FrameYUV& src, const FrameYUV& ref,
                        const Quantizer& q, int search_range, BitWriter& bw);
FrameYUV decode_p_frame(const FrameYUV& ref, const Quantizer& q, BitReader& br);

/// Codes a B frame against past/future references; per MB the encoder picks
/// forward, backward, or bidirectional prediction.
FrameYUV encode_b_frame(const FrameYUV& src, const FrameYUV& ref_past,
                        const FrameYUV& ref_future, const Quantizer& q,
                        int search_range, BitWriter& bw);
FrameYUV decode_b_frame(const FrameYUV& ref_past, const FrameYUV& ref_future,
                        const Quantizer& q, BitReader& br);

// ---- Macroblock-row slices (container v3 streams) --------------------------

/// One slice: macroblock rows [first_mb_row, first_mb_row + mb_row_count).
/// Slices are full-width bands of whole MB rows, so a frame's slices tile its
/// planes into disjoint pixel-row ranges.
struct SliceSpan {
  int first_mb_row = 0;
  int mb_row_count = 0;
};

/// Canonical partition of `mb_rows` MB rows into `slices` slices: slice s of
/// S covers rows [s*R/S, (s+1)*R/S). `slices` is clamped to [1, mb_rows], so
/// every slice is non-empty. Encoder and decoder both derive geometry from
/// this function; slice headers carry it redundantly and are validated.
std::vector<SliceSpan> slice_partition(int mb_rows, int slices);

/// Sliced frame coding. Each slice is an independently decodable, byte-
/// aligned entropy substream: a resync header (marker byte 0x5c +
/// ue(first_mb_row) + ue(mb_row_count)) followed by that slice's MB rows.
/// No prediction state crosses an MB-row boundary — intra blocks only read
/// reconstructed samples of their own MB row, and the P-frame MV predictor
/// resets per MB row — so the reconstruction is bit-identical for *every*
/// slice count, and the decoder may run slices concurrently. The encoders
/// append substreams to `frame.payload`, record lengths in
/// `frame.slice_sizes`, and return the reconstruction like their sliceless
/// counterparts.
FrameYUV encode_intra_frame_sliced(const FrameYUV& src, const Quantizer& q,
                                   int slices, EncodedFrame& frame);
FrameYUV encode_p_frame_sliced(const FrameYUV& src, const FrameYUV& ref,
                               const Quantizer& q, int search_range, int slices,
                               EncodedFrame& frame);
FrameYUV encode_b_frame_sliced(const FrameYUV& src, const FrameYUV& ref_past,
                               const FrameYUV& ref_future, const Quantizer& q,
                               int search_range, int slices,
                               EncodedFrame& frame);

/// Decodes one slice substream into the rows of `out` it owns. `expect` is
/// the canonical partition entry for the slice; a header that disagrees (bad
/// marker, wrong geometry) throws BitstreamError before any pixel is
/// written. Each call touches only its own pixel rows, so callers may decode
/// a frame's slices concurrently into one output frame.
void decode_intra_slice(FrameYUV& out, const Quantizer& q,
                        const std::uint8_t* data, std::size_t size,
                        SliceSpan expect);
void decode_p_slice(FrameYUV& out, const FrameYUV& ref, const Quantizer& q,
                    const std::uint8_t* data, std::size_t size,
                    SliceSpan expect);
void decode_b_slice(FrameYUV& out, const FrameYUV& ref_past,
                    const FrameYUV& ref_future, const Quantizer& q,
                    const std::uint8_t* data, std::size_t size,
                    SliceSpan expect);

/// Decodes a whole sliced intra frame sequentially (every slice in order).
/// Convenience for call sites that inspect individual I frames outside a
/// Decoder — the server's training-pair collection, tools, tests. Throws
/// BitstreamError on geometry/size-table mismatches like the Decoder does.
FrameYUV decode_intra_frame_sliced(int width, int height, const Quantizer& q,
                                   const EncodedFrame& frame);

}  // namespace dcsr::codec
