#pragma once

#include "codec/bits.hpp"
#include "codec/quant.hpp"
#include "image/frame.hpp"

namespace dcsr::codec {

/// Frame-level coding primitives shared by the encoder (which also plays the
/// role of its own reference decoder — a closed coding loop, as in any real
/// codec) and the standalone decoder. Encode functions return the
/// *reconstruction* (what the decoder will see), never the pristine source.
///
/// Luma dimensions must be multiples of 16 (one macroblock); chroma is 4:2:0.

/// Codes a frame in intra mode: all planes in raster 8x8 blocks with
/// DC-delta prediction. Samples are biased by -0.5 before the transform so
/// levels are signed around zero.
FrameYUV encode_intra_frame(const FrameYUV& src, const Quantizer& q, BitWriter& bw);
FrameYUV decode_intra_frame(int width, int height, const Quantizer& q, BitReader& br);

/// Codes a P frame against one reference: per-16x16-macroblock motion search
/// (three-step), MV-delta coding against the left neighbour, per-MB skip
/// flag, and 8x8 residual transform coding.
FrameYUV encode_p_frame(const FrameYUV& src, const FrameYUV& ref,
                        const Quantizer& q, int search_range, BitWriter& bw);
FrameYUV decode_p_frame(const FrameYUV& ref, const Quantizer& q, BitReader& br);

/// Codes a B frame against past/future references; per MB the encoder picks
/// forward, backward, or bidirectional prediction.
FrameYUV encode_b_frame(const FrameYUV& src, const FrameYUV& ref_past,
                        const FrameYUV& ref_future, const Quantizer& q,
                        int search_range, BitWriter& bw);
FrameYUV decode_b_frame(const FrameYUV& ref_past, const FrameYUV& ref_future,
                        const Quantizer& q, BitReader& br);

}  // namespace dcsr::codec
