#include "codec/motion.hpp"

#include <cmath>

#include "simd/dispatch.hpp"

namespace dcsr::codec {

float sample_halfpel(const Plane& p, int x2, int y2) noexcept {
  const int x0 = x2 >> 1, y0 = y2 >> 1;
  const bool fx = x2 & 1, fy = y2 & 1;
  if (!fx && !fy) return p.at_clamped(x0, y0);
  if (fx && !fy)
    return 0.5f * (p.at_clamped(x0, y0) + p.at_clamped(x0 + 1, y0));
  if (!fx && fy)
    return 0.5f * (p.at_clamped(x0, y0) + p.at_clamped(x0, y0 + 1));
  return 0.25f * (p.at_clamped(x0, y0) + p.at_clamped(x0 + 1, y0) +
                  p.at_clamped(x0, y0 + 1) + p.at_clamped(x0 + 1, y0 + 1));
}

float block_sad_halfpel(const Plane& cur, const Plane& ref, int bx, int by,
                        int size, MotionVector mv_halfpel) noexcept {
  float acc = 0.0f;
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x)
      acc += std::abs(cur.at_clamped(bx + x, by + y) -
                      sample_halfpel(ref, 2 * (bx + x) + mv_halfpel.x,
                                     2 * (by + y) + mv_halfpel.y));
  return acc;
}

MotionVector refine_halfpel(const Plane& cur, const Plane& ref, int bx, int by,
                            int size, MotionVector mv_halfpel) noexcept {
  // Bias against leaving the integer-pel position: the bilinear half-pel
  // filter slightly denoises quantised references, which would otherwise
  // pull every static block off its (cheap, skippable) zero vector.
  const float lambda = 0.02f * static_cast<float>(size);

  MotionVector best = mv_halfpel;
  float best_cost = block_sad_halfpel(cur, ref, bx, by, size, best);
  for (int dy = -1; dy <= 1; ++dy)
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector cand{mv_halfpel.x + dx, mv_halfpel.y + dy};
      const float cost =
          block_sad_halfpel(cur, ref, bx, by, size, cand) + lambda;
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
  return best;
}

float block_sad(const Plane& cur, const Plane& ref, int bx, int by, int size,
                MotionVector mv) noexcept {
  float acc = 0.0f;
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x)
      acc += std::abs(cur.at_clamped(bx + x, by + y) -
                      ref.at_clamped(bx + x + mv.x, by + y + mv.y));
  return acc;
}

MotionVector motion_search(const Plane& cur, const Plane& ref, int bx, int by,
                           int size, int range) noexcept {
  // Rate-ish penalty per pel of displacement, in SAD units. Keeps the search
  // from wandering on flat blocks where many displacements tie.
  const float lambda = 0.01f * static_cast<float>(size);

  MotionVector best{0, 0};
  float best_cost = block_sad(cur, ref, bx, by, size, best);

  int step = 1;
  while (step * 2 <= range) step *= 2;
  for (; step >= 1; step /= 2) {
    bool improved = true;
    while (improved) {
      improved = false;
      static constexpr int kDx[4] = {1, -1, 0, 0};
      static constexpr int kDy[4] = {0, 0, 1, -1};
      for (int d = 0; d < 4; ++d) {
        MotionVector cand{best.x + kDx[d] * step, best.y + kDy[d] * step};
        if (cand.x < -range || cand.x > range || cand.y < -range || cand.y > range)
          continue;
        const float cost =
            block_sad(cur, ref, bx, by, size, cand) +
            lambda * (std::abs(static_cast<float>(cand.x)) +
                      std::abs(static_cast<float>(cand.y)));
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
          improved = true;
        }
      }
    }
  }
  return best;
}

void motion_compensate(const Plane& ref, Plane& dst, int bx, int by, int size,
                       MotionVector mv) noexcept {
  // Fast path: prediction between same-geometry planes (the only case the
  // codec produces) goes through the SIMD block kernel.
  if (ref.width() == dst.width() && ref.height() == dst.height()) {
    simd::active().mc_copy_block(ref.data(), dst.data(), dst.width(),
                                 dst.height(), bx, by, size, mv.x, mv.y);
    return;
  }
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      const int px = bx + x, py = by + y;
      if (px < dst.width() && py < dst.height())
        dst.at(px, py) = ref.at_clamped(px + mv.x, py + mv.y);
    }
}

void motion_compensate_bi(const Plane& ref0, MotionVector mv0,
                          const Plane& ref1, MotionVector mv1, Plane& dst,
                          int bx, int by, int size) noexcept {
  if (ref0.width() == dst.width() && ref0.height() == dst.height() &&
      ref1.width() == dst.width() && ref1.height() == dst.height()) {
    simd::active().mc_bi_block(ref0.data(), mv0.x, mv0.y, ref1.data(), mv1.x,
                               mv1.y, dst.data(), dst.width(), dst.height(),
                               bx, by, size);
    return;
  }
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      const int px = bx + x, py = by + y;
      if (px < dst.width() && py < dst.height())
        dst.at(px, py) = 0.5f * (ref0.at_clamped(px + mv0.x, py + mv0.y) +
                                 ref1.at_clamped(px + mv1.x, py + mv1.y));
    }
}

}  // namespace dcsr::codec
