#pragma once

#include "codec/encoder.hpp"

namespace dcsr::codec {

/// Result of a rate-controlled encode: the stream plus the CRF the search
/// settled on for each segment.
struct RateControlledVideo {
  EncodedVideo video;
  std::vector<int> segment_crf;
};

/// Multi-pass rate control: picks a CRF *per segment* so each segment's
/// bitrate lands at or under `target_bps` (bits per second of video), using
/// the lowest CRF (= highest quality) that fits. Real encoders do this with
/// a rate model; at this repo's scale a bisection over trial encodes is
/// exact and still fast, and per-segment adaptation mirrors how shot-based
/// ladders are actually built (complex shots get more quantisation).
///
/// `base` supplies everything except the CRF. Throws if segments are
/// invalid; if even CRF 51 exceeds the target for a segment, that segment
/// stays at CRF 51 (the encoder cannot go lower).
RateControlledVideo encode_with_target_bitrate(const VideoSource& video,
                                               const std::vector<SegmentPlan>& segments,
                                               const CodecConfig& base,
                                               double target_bps);

/// Bits per second of one encoded segment at the video's frame rate.
double segment_bps(const EncodedSegment& segment, double fps) noexcept;

}  // namespace dcsr::codec
