#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dcsr::codec {

/// MSB-first bit writer backing the entropy coder.
class BitWriter {
 public:
  void put_bit(bool b);
  void put_bits(std::uint32_t value, int count);  // MSB of `count` bits first

  /// Unsigned exp-Golomb code (H.264 ue(v)).
  void put_ue(std::uint32_t v);

  /// Signed exp-Golomb (H.264 se(v)): 1 -> 1, -1 -> 2, 2 -> 3, ...
  void put_se(std::int32_t v);

  /// Pads the final partial byte with zero bits and returns the buffer.
  std::vector<std::uint8_t> finish();

  std::size_t bit_count() const noexcept { return bits_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint8_t cur_ = 0;
  int cur_bits_ = 0;
  std::size_t bits_ = 0;
};

/// Matching MSB-first bit reader; throws on over-read so a truncated or
/// corrupt payload fails decode loudly. Non-owning: the viewed bytes must
/// outlive the reader (slice decoding hands each slice a sub-range of the
/// frame payload without copying it).
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool get_bit();
  std::uint32_t get_bits(int count);
  std::uint32_t get_ue();
  std::int32_t get_se();

  std::size_t bits_consumed() const noexcept { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;  // bit position
};

}  // namespace dcsr::codec
