#pragma once

#include "codec/types.hpp"

namespace dcsr::codec {

/// Aggregate statistics of an encoded stream — the quantitative form of the
/// paper's premise that "P and B frames ... consume much lower bitrate,
/// while I frames have a higher bitrate" (§3.1.1).
struct StreamStats {
  int i_frames = 0, p_frames = 0, b_frames = 0;
  std::uint64_t i_bytes = 0, p_bytes = 0, b_bytes = 0;

  int frame_count() const noexcept { return i_frames + p_frames + b_frames; }
  std::uint64_t total_bytes() const noexcept { return i_bytes + p_bytes + b_bytes; }

  /// Fraction of the stream's bytes spent on I frames.
  double i_byte_share() const noexcept;

  /// Mean encoded size per frame of each type (bytes).
  double mean_i_bytes() const noexcept;
  double mean_p_bytes() const noexcept;
  double mean_b_bytes() const noexcept;
};

StreamStats analyze(const EncodedVideo& video) noexcept;
StreamStats analyze(const EncodedSegment& segment) noexcept;

}  // namespace dcsr::codec
