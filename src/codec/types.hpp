#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcsr::codec {

/// Picture type in the group-of-pictures structure. I frames are
/// self-contained; P frames reference the previous decoded reference; B
/// frames reference the surrounding past and future references (§1 of the
/// paper: "while I frames do not make reference to any frame, P frames make
/// reference to I or P frames... B frames make reference to previous and
/// future frames").
enum class FrameType : std::uint8_t { kI = 0, kP = 1, kB = 2 };

std::string to_string(FrameType t);

/// One encoded picture: its display position, type, and entropy-coded
/// payload. The payload is a real bitstream — the decoder reconstructs the
/// frame from these bytes alone, and size_bytes() is what the streaming
/// simulator charges to the network.
struct EncodedFrame {
  FrameType type = FrameType::kI;
  int display_index = 0;  // position within the segment, display order
  std::vector<std::uint8_t> payload;

  /// Byte length of each macroblock-row slice inside `payload`, in slice
  /// order; the sizes sum to payload.size(). Empty for pre-slice (container
  /// v2) streams, which carry one monolithic entropy-coded payload — the
  /// decoder dispatches on this to keep old streams decoding bit-identically.
  std::vector<std::uint32_t> slice_sizes;

  bool sliced() const noexcept { return !slice_sizes.empty(); }
  std::size_t size_bytes() const noexcept { return payload.size(); }
};

/// A variable-length video segment: frames in *decode* order.
struct EncodedSegment {
  int first_frame = 0;  // display index of the segment start within the video

  /// Quantiser setting this segment was coded with. -1 means "use the
  /// stream-level CRF" (all segments of a plain encode); rate-controlled
  /// streams carry a per-segment value, like real per-shot ladders.
  int crf = -1;

  std::vector<EncodedFrame> frames;  // decode order

  std::size_t size_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& f : frames) n += f.size_bytes();
    return n;
  }
  int frame_count() const noexcept { return static_cast<int>(frames.size()); }
};

/// A complete encoded video.
struct EncodedVideo {
  int width = 0, height = 0;
  double fps = 30.0;
  int crf = 28;  // quantiser setting; the decoder needs it to dequantise
  bool deblock = false;  // whether the loop filter is part of this stream
  std::vector<EncodedSegment> segments;

  std::size_t size_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& s : segments) n += s.size_bytes();
    return n;
  }
  int frame_count() const noexcept {
    int n = 0;
    for (const auto& s : segments) n += s.frame_count();
    return n;
  }
};

/// Encoder configuration.
struct CodecConfig {
  /// Constant rate factor, 0 (lossless-ish) .. 51 (worst), mirroring x264's
  /// scale. The paper's low-quality inputs use CRF 51.
  int crf = 28;

  /// Insert an extra I frame every `intra_period` frames *within* a segment
  /// (0 = only at segment starts). The paper notes "there can be multiple I
  /// frames in a segment in a practical setting in order to avoid the
  /// quality drift"; this knob reproduces that setting.
  int intra_period = 0;

  /// Use one B frame between references (display pattern I B P B P ...)
  /// instead of P-only (I P P P ...).
  bool use_b_frames = false;

  /// Luma motion-search range in pixels (three-step search).
  int search_range = 8;

  /// In-loop deblocking of reconstructed frames (encoder and decoder apply
  /// it identically). Off by default; the ablation bench compares it, as
  /// the classical artifact-reduction tool, against dcSR's neural one.
  bool deblock = false;

  /// Number of macroblock-row slices per frame (clamped to the frame's MB-row
  /// count). Each slice is an independently decodable entropy substream with
  /// its own predictor reset, so the decoder can run slices concurrently.
  /// Decoded output is bit-identical for every slice count: sliced streams
  /// use slice-restricted intra prediction regardless of how many slices the
  /// rows were split into.
  int slices = 1;
};

}  // namespace dcsr::codec
