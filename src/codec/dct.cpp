#include "codec/dct.hpp"

#include "simd/dispatch.hpp"

namespace dcsr::codec {

// The separable orthonormal DCT-II/III loops live in src/simd/ as the scalar
// reference kernels (kernels_scalar.cpp), with AVX2 replays pinned bitwise
// against them; these wrappers just route through the active backend.

Block8 dct8x8(const Block8& samples) noexcept {
  Block8 out{};
  simd::active().dct8x8(samples.data(), out.data());
  return out;
}

Block8 idct8x8(const Block8& coeffs) noexcept {
  Block8 out{};
  simd::active().idct8x8(coeffs.data(), out.data());
  return out;
}

const std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace dcsr::codec
