#include "codec/dct.hpp"

#include <cmath>

namespace dcsr::codec {

namespace {

// Precomputed orthonormal DCT-II basis: kBasis[k][n] = c(k) * cos((2n+1)k*pi/16).
struct DctBasis {
  float m[8][8];
  DctBasis() noexcept {
    const double pi = 3.14159265358979323846;
    for (int k = 0; k < 8; ++k) {
      const double ck = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n)
        m[k][n] = static_cast<float>(
            ck * std::cos((2.0 * n + 1.0) * k * pi / 16.0));
    }
  }
};
const DctBasis kB;

}  // namespace

Block8 dct8x8(const Block8& samples) noexcept {
  // Separable: rows then columns.
  Block8 tmp{}, out{};
  for (int y = 0; y < 8; ++y)
    for (int k = 0; k < 8; ++k) {
      float acc = 0.0f;
      for (int n = 0; n < 8; ++n) acc += kB.m[k][n] * samples[static_cast<std::size_t>(y * 8 + n)];
      tmp[static_cast<std::size_t>(y * 8 + k)] = acc;
    }
  for (int x = 0; x < 8; ++x)
    for (int k = 0; k < 8; ++k) {
      float acc = 0.0f;
      for (int n = 0; n < 8; ++n) acc += kB.m[k][n] * tmp[static_cast<std::size_t>(n * 8 + x)];
      out[static_cast<std::size_t>(k * 8 + x)] = acc;
    }
  return out;
}

Block8 idct8x8(const Block8& coeffs) noexcept {
  Block8 tmp{}, out{};
  for (int x = 0; x < 8; ++x)
    for (int n = 0; n < 8; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) acc += kB.m[k][n] * coeffs[static_cast<std::size_t>(k * 8 + x)];
      tmp[static_cast<std::size_t>(n * 8 + x)] = acc;
    }
  for (int y = 0; y < 8; ++y)
    for (int n = 0; n < 8; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) acc += kB.m[k][n] * tmp[static_cast<std::size_t>(y * 8 + k)];
      out[static_cast<std::size_t>(y * 8 + n)] = acc;
    }
  return out;
}

const std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace dcsr::codec
