#pragma once

#include <array>

namespace dcsr::codec {

/// 8x8 block of transform coefficients / samples, row-major.
using Block8 = std::array<float, 64>;

/// Orthonormal 8x8 DCT-II (forward). Input samples, output coefficients with
/// DC at index 0.
Block8 dct8x8(const Block8& samples) noexcept;

/// Inverse of dct8x8.
Block8 idct8x8(const Block8& coeffs) noexcept;

/// Zig-zag scan order for an 8x8 block (JPEG/H.264 order): index i of the
/// scan maps to raster position kZigzag[i].
extern const std::array<int, 64> kZigzag;

}  // namespace dcsr::codec
