#pragma once

#include "image/frame.hpp"

namespace dcsr::codec {

/// Simple in-loop deblocking filter in the spirit of H.264's: smooths 8x8
/// transform-block edges whose discontinuity is small enough to be a coding
/// artifact (|p0 - q0| < beta ~ quantiser step) while leaving real content
/// edges alone. Applied identically by the encoder's closed loop and the
/// decoder when CodecConfig::deblock is set, so prediction stays drift-free.
///
/// This is the *classical* remedy for the CRF-51 blockiness that dcSR's
/// micro models attack neurally — which makes "LOW + deblocking" the obvious
/// traditional baseline for the ablation bench.
void deblock_plane(Plane& p, int block, float qstep) noexcept;

/// Filters luma on the 8-grid and chroma on its own 8-grid.
void deblock_frame(FrameYUV& f, float qstep) noexcept;

}  // namespace dcsr::codec
