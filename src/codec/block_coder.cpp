#include "codec/block_coder.hpp"

#include "codec/errors.hpp"
#include "util/alloc_check.hpp"

namespace dcsr::codec {

namespace {
// EOB marker: a run value no real (run, level) pair can produce.
constexpr std::uint32_t kEob = 64;
}  // namespace

Block8 extract_block(const Plane& p, int bx, int by) noexcept {
  Block8 b{};
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      b[static_cast<std::size_t>(y * 8 + x)] = p.at_clamped(bx + x, by + y);
  return b;
}

void store_block(Plane& p, int bx, int by, const Block8& b) noexcept {
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      const int px = bx + x, py = by + y;
      if (px < p.width() && py < p.height())
        p.at(px, py) = b[static_cast<std::size_t>(y * 8 + x)];
    }
}

Levels8 forward_block(const Block8& spatial, const Quantizer& q, bool intra) noexcept {
  return q.quantize(dct8x8(spatial), intra);
}

Block8 reconstruct_block(const Levels8& levels, const Quantizer& q, bool intra) noexcept {
  // Fused dequant + inverse DCT: one pass over the block, pinned bitwise
  // against idct8x8(dequantize(...)) by the Simd.* suite.
  return q.dequantize_idct(levels, intra);
}

bool all_zero(const Levels8& levels) noexcept {
  for (const auto v : levels)
    if (v != 0) return false;
  return true;
}

void write_levels(BitWriter& bw, const Levels8& levels, std::int32_t* dc_pred) {
  int start = 0;
  if (dc_pred != nullptr) {
    const std::int32_t dc = levels[0];
    bw.put_se(dc - *dc_pred);
    *dc_pred = dc;
    start = 1;
  }
  std::uint32_t run = 0;
  for (int i = start; i < 64; ++i) {
    const std::int32_t level = levels[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(i)])];
    if (level == 0) {
      ++run;
      continue;
    }
    bw.put_ue(run);
    bw.put_se(level);
    run = 0;
  }
  bw.put_ue(kEob);
}

Levels8 read_levels(BitReader& br, std::int32_t* dc_pred) {
  Levels8 levels{};
  int pos = 0;
  if (dc_pred != nullptr) {
    const std::int32_t dc = *dc_pred + br.get_se();
    levels[0] = dc;
    *dc_pred = dc;
    pos = 1;
  }
  while (true) {
    const std::size_t run_at = br.bits_consumed();
    const std::uint32_t run = br.get_ue();
    if (run >= kEob) break;
    pos += static_cast<int>(run);
    if (pos >= 64) {
      AllocAllowScope allow;
      throw BitstreamError("read_levels: run past block end", run_at);
    }
    levels[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(pos)])] = br.get_se();
    ++pos;
  }
  return levels;
}

}  // namespace dcsr::codec
