#include "codec/bits.hpp"

#include <cstdint>
#include <limits>
#include <string>

#include "codec/errors.hpp"
#include "util/alloc_check.hpp"

namespace dcsr::codec {

void BitWriter::put_bit(bool b) {
  cur_ = static_cast<std::uint8_t>((cur_ << 1) | (b ? 1 : 0));
  if (++cur_bits_ == 8) {
    buf_.push_back(cur_);
    cur_ = 0;
    cur_bits_ = 0;
  }
  ++bits_;
}

void BitWriter::put_bits(std::uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) put_bit((value >> i) & 1u);
}

void BitWriter::put_ue(std::uint32_t v) {
  // code number v -> (leading zeros) 1 (info bits); codeword length 2k+1
  // where k = floor(log2(v+1)). v = 0xffffffff would need code 2^32, which
  // overflows the 32-bit codeword; without this guard it silently encodes
  // as ue(0) and the stream decodes to the wrong value.
  if (v == 0xffffffffu)
    throw std::invalid_argument("BitWriter::put_ue: 0xffffffff not encodable");
  const std::uint32_t code = v + 1;
  int len = 0;
  for (std::uint32_t c = code; c > 1; c >>= 1) ++len;
  for (int i = 0; i < len; ++i) put_bit(false);
  put_bits(code, len + 1);
}

void BitWriter::put_se(std::int32_t v) {
  // INT32_MIN maps to 2^32, one past the largest encodable ue code number.
  if (v == std::numeric_limits<std::int32_t>::min())
    throw std::invalid_argument("BitWriter::put_se: INT32_MIN not encodable");
  const std::uint32_t mapped =
      v > 0 ? static_cast<std::uint32_t>(2 * static_cast<std::int64_t>(v) - 1)
            : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(v));
  put_ue(mapped);
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (cur_bits_ > 0) {
    cur_ = static_cast<std::uint8_t>(cur_ << (8 - cur_bits_));
    buf_.push_back(cur_);
    cur_ = 0;
    cur_bits_ = 0;
  }
  return std::move(buf_);
}

bool BitReader::get_bit() {
  const std::size_t byte = pos_ >> 3;
  if (byte >= size_) {
    // Error-path strings may allocate inside a HotPathGuard region (the warm
    // decode loop); diagnostics trump heap silence on the way out.
    AllocAllowScope allow;
    throw BitstreamError("BitReader: over-read past " +
                             std::to_string(size_) + "-byte payload",
                         pos_);
  }
  const int shift = 7 - static_cast<int>(pos_ & 7);
  ++pos_;
  return (data_[byte] >> shift) & 1;
}

std::uint32_t BitReader::get_bits(int count) {
  std::uint32_t v = 0;
  for (int i = 0; i < count; ++i) v = (v << 1) | (get_bit() ? 1u : 0u);
  return v;
}

std::uint32_t BitReader::get_ue() {
  const std::size_t start = pos_;
  int zeros = 0;
  while (!get_bit()) {
    // 31 leading zeros is the longest prefix whose code number still fits in
    // 32 bits (max ue value 2^32 - 2). The old guard admitted zeros == 32,
    // and `1u << 32` below is undefined behaviour.
    if (++zeros > 31) {
      AllocAllowScope allow;
      throw BitstreamError("BitReader: bad ue code (prefix > 31 zeros)", start);
    }
  }
  std::uint32_t info = 0;
  for (int i = 0; i < zeros; ++i) info = (info << 1) | (get_bit() ? 1u : 0u);
  return (1u << zeros) - 1 + info;
}

std::int32_t BitReader::get_se() {
  const std::uint32_t v = get_ue();
  const auto half = static_cast<std::int32_t>((v + 1) / 2);
  return (v & 1) ? half : -half;
}

}  // namespace dcsr::codec
