#include "codec/frame_coding.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "codec/block_coder.hpp"
#include "codec/errors.hpp"
#include "codec/motion.hpp"
#include "util/alloc_check.hpp"

namespace dcsr::codec {

namespace {

// Largest half-pel motion-vector magnitude a decoder will accept. Real
// streams stay within 2 * search_range (tens of pels); this bound only
// exists so an adversarial get_se value cannot drive `2 * (bx + x) + mv.x`
// into signed-integer overflow inside the prediction loops.
constexpr std::int32_t kMaxMv = 1 << 18;

void check_mv(MotionVector mv, std::size_t bit_offset) {
  if (mv.x < -kMaxMv || mv.x > kMaxMv || mv.y < -kMaxMv || mv.y > kMaxMv) {
    AllocAllowScope allow;
    throw BitstreamError("decode: motion vector out of range", bit_offset);
  }
}

void require_mb_aligned(const FrameYUV& f) {
  if (f.width() % 16 != 0 || f.height() % 16 != 0)
    throw std::invalid_argument("codec: frame dimensions must be multiples of 16");
}

// Chroma motion vector: the luma half-pel MV halved (chroma planes are half
// resolution, so this keeps half-pel units in the chroma domain). Arithmetic
// shift gives consistent floor semantics between encoder and decoder.
MotionVector chroma_mv(MotionVector mv) noexcept {
  return {mv.x >> 1, mv.y >> 1};
}

// ---- Intra ----------------------------------------------------------------
//
// Spatial intra prediction per 8x8 block, H.264-style: DC (mean of the
// reconstructed neighbours), vertical (copy the row above), or horizontal
// (copy the column to the left). The encoder picks the SAD-minimising
// available mode and signals it in 2 bits; the residual goes through the
// usual transform path.

enum class IntraMode : std::uint8_t { kDc = 0, kVertical = 1, kHorizontal = 2 };

// Neighbour availability is the caller's policy: the legacy (pre-slice)
// format admits any in-frame neighbour, the sliced format restricts `top` to
// the block's own macroblock row so reconstruction cannot depend on how rows
// were grouped into slices.
Block8 predict_intra(const Plane& recon, int bx, int by, IntraMode mode,
                     bool top, bool left) {
  Block8 pred{};
  switch (mode) {
    case IntraMode::kDc: {
      float acc = 0.0f;
      int n = 0;
      if (top)
        for (int x = 0; x < 8; ++x) {
          acc += recon.at(bx + x, by - 1);
          ++n;
        }
      if (left)
        for (int y = 0; y < 8; ++y) {
          acc += recon.at(bx - 1, by + y);
          ++n;
        }
      const float dc = n > 0 ? acc / static_cast<float>(n) : 0.5f;
      for (auto& v : pred) v = dc;
      break;
    }
    case IntraMode::kVertical:
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          pred[static_cast<std::size_t>(y * 8 + x)] = recon.at(bx + x, by - 1);
      break;
    case IntraMode::kHorizontal:
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          pred[static_cast<std::size_t>(y * 8 + x)] = recon.at(bx - 1, by + y);
      break;
  }
  return pred;
}

// Codes the 8x8 block rows covering pixel rows [y0, y1). `mb_row_px` is the
// intra-prediction restriction period: when nonzero, the row above is only
// readable from inside the same macroblock row (`by % mb_row_px != 0`); zero
// keeps the legacy whole-frame policy (`by > 0`). The restriction is what
// makes sliced reconstruction independent of the slice count — prediction
// never crosses an MB-row boundary, however the rows are grouped.
void encode_plane_intra_rows(const Plane& src, Plane& recon, const Quantizer& q,
                             BitWriter& bw, int y0, int y1, int mb_row_px) {
  for (int by = y0; by < y1; by += 8) {
    const bool top = mb_row_px == 0 ? by > 0 : by % mb_row_px != 0;
    for (int bx = 0; bx < src.width(); bx += 8) {
      const bool left = bx > 0;
      const Block8 block = extract_block(src, bx, by);

      // Pick the best available prediction mode by SAD.
      IntraMode best_mode = IntraMode::kDc;
      Block8 best_pred = predict_intra(recon, bx, by, IntraMode::kDc, top, left);
      float best_sad = 0.0f;
      for (int i = 0; i < 64; ++i)
        best_sad += std::abs(block[static_cast<std::size_t>(i)] - best_pred[static_cast<std::size_t>(i)]);
      auto consider = [&](IntraMode mode) {
        const Block8 pred = predict_intra(recon, bx, by, mode, top, left);
        float sad = 0.0f;
        for (int i = 0; i < 64; ++i)
          sad += std::abs(block[static_cast<std::size_t>(i)] - pred[static_cast<std::size_t>(i)]);
        if (sad < best_sad) {
          best_sad = sad;
          best_mode = mode;
          best_pred = pred;
        }
      };
      if (top) consider(IntraMode::kVertical);
      if (left) consider(IntraMode::kHorizontal);

      Block8 residual = block;
      for (int i = 0; i < 64; ++i) residual[static_cast<std::size_t>(i)] -= best_pred[static_cast<std::size_t>(i)];
      const Levels8 levels = forward_block(residual, q, /*intra=*/true);

      bw.put_bits(static_cast<std::uint32_t>(best_mode), 2);
      write_levels(bw, levels, nullptr);

      Block8 rec = reconstruct_block(levels, q, /*intra=*/true);
      for (int i = 0; i < 64; ++i) {
        rec[static_cast<std::size_t>(i)] += best_pred[static_cast<std::size_t>(i)];
        rec[static_cast<std::size_t>(i)] = std::clamp(rec[static_cast<std::size_t>(i)], 0.0f, 1.0f);
      }
      store_block(recon, bx, by, rec);
    }
  }
}

void decode_plane_intra_rows(Plane& out, const Quantizer& q, BitReader& br,
                             int y0, int y1, int mb_row_px) {
  for (int by = y0; by < y1; by += 8) {
    const bool top = mb_row_px == 0 ? by > 0 : by % mb_row_px != 0;
    for (int bx = 0; bx < out.width(); bx += 8) {
      const bool left = bx > 0;
      const std::size_t mode_at = br.bits_consumed();
      const std::uint32_t mode_bits = br.get_bits(2);
      if (mode_bits > 2) {
        AllocAllowScope allow;
        throw BitstreamError("decode: bad intra prediction mode", mode_at);
      }
      const auto mode = static_cast<IntraMode>(mode_bits);
      // The encoder only signals a directional mode when the neighbour it
      // reads exists; a corrupted stream can claim one anyway, which would
      // read past the plane's edge (row -1 / column -1) — or, in a sliced
      // stream, across an MB-row boundary another slice owns.
      if ((mode == IntraMode::kVertical && !top) ||
          (mode == IntraMode::kHorizontal && !left)) {
        AllocAllowScope allow;
        throw BitstreamError(
            "decode: intra mode references a missing neighbour", mode_at);
      }
      const Block8 pred = predict_intra(out, bx, by, mode, top, left);
      const Levels8 levels = read_levels(br, nullptr);
      Block8 rec = reconstruct_block(levels, q, /*intra=*/true);
      for (int i = 0; i < 64; ++i) {
        rec[static_cast<std::size_t>(i)] += pred[static_cast<std::size_t>(i)];
        rec[static_cast<std::size_t>(i)] = std::clamp(rec[static_cast<std::size_t>(i)], 0.0f, 1.0f);
      }
      store_block(out, bx, by, rec);
    }
  }
}

// ---- Inter macroblock helpers ----------------------------------------------

// The six 8x8 blocks of one macroblock: 4 luma + U + V.
struct MbLevels {
  std::array<Levels8, 6> blocks;

  bool all_zero() const noexcept {
    for (const auto& b : blocks)
      if (!codec::all_zero(b)) return false;
    return true;
  }
};

struct MbPred {
  Block8 luma[4];  // (0,0) (8,0) (0,8) (8,8) offsets within the MB
  Block8 u, v;
};

constexpr int kLumaOff[4][2] = {{0, 0}, {8, 0}, {0, 8}, {8, 8}};

// Builds the motion-compensated prediction of one MB from a single
// reference. `mv` is in half-pel units.
MbPred predict_mb(const FrameYUV& ref, int mbx, int mby, MotionVector mv) {
  MbPred p;
  for (int i = 0; i < 4; ++i) {
    const int bx = mbx + kLumaOff[i][0], by = mby + kLumaOff[i][1];
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x)
        p.luma[i][static_cast<std::size_t>(y * 8 + x)] =
            sample_halfpel(ref.y, 2 * (bx + x) + mv.x, 2 * (by + y) + mv.y);
  }
  const MotionVector cmv = chroma_mv(mv);
  const int cx = mbx / 2, cy = mby / 2;
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      p.u[static_cast<std::size_t>(y * 8 + x)] =
          sample_halfpel(ref.u, 2 * (cx + x) + cmv.x, 2 * (cy + y) + cmv.y);
      p.v[static_cast<std::size_t>(y * 8 + x)] =
          sample_halfpel(ref.v, 2 * (cx + x) + cmv.x, 2 * (cy + y) + cmv.y);
    }
  return p;
}

// Averages two single-reference predictions (bidirectional mode).
MbPred average_pred(const MbPred& a, const MbPred& b) {
  MbPred p;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 64; ++j)
      p.luma[i][static_cast<std::size_t>(j)] =
          0.5f * (a.luma[i][static_cast<std::size_t>(j)] + b.luma[i][static_cast<std::size_t>(j)]);
  for (int j = 0; j < 64; ++j) {
    p.u[static_cast<std::size_t>(j)] = 0.5f * (a.u[static_cast<std::size_t>(j)] + b.u[static_cast<std::size_t>(j)]);
    p.v[static_cast<std::size_t>(j)] = 0.5f * (a.v[static_cast<std::size_t>(j)] + b.v[static_cast<std::size_t>(j)]);
  }
  return p;
}

// Quantises the residual (src - pred) of a whole MB.
MbLevels quantize_mb(const FrameYUV& src, const MbPred& pred, int mbx, int mby,
                     const Quantizer& q) {
  MbLevels out;
  for (int i = 0; i < 4; ++i) {
    const int bx = mbx + kLumaOff[i][0], by = mby + kLumaOff[i][1];
    Block8 res = extract_block(src.y, bx, by);
    for (int j = 0; j < 64; ++j) res[static_cast<std::size_t>(j)] -= pred.luma[i][static_cast<std::size_t>(j)];
    out.blocks[static_cast<std::size_t>(i)] = forward_block(res, q, /*intra=*/false);
  }
  const int cx = mbx / 2, cy = mby / 2;
  Block8 res_u = extract_block(src.u, cx, cy);
  Block8 res_v = extract_block(src.v, cx, cy);
  for (int j = 0; j < 64; ++j) {
    res_u[static_cast<std::size_t>(j)] -= pred.u[static_cast<std::size_t>(j)];
    res_v[static_cast<std::size_t>(j)] -= pred.v[static_cast<std::size_t>(j)];
  }
  out.blocks[4] = forward_block(res_u, q, false);
  out.blocks[5] = forward_block(res_v, q, false);
  return out;
}

void write_mb_levels(BitWriter& bw, const MbLevels& lv) {
  for (const auto& b : lv.blocks) write_levels(bw, b, nullptr);
}

MbLevels read_mb_levels(BitReader& br) {
  MbLevels lv;
  for (auto& b : lv.blocks) b = read_levels(br, nullptr);
  return lv;
}

// Writes pred + dequantised residual into the reconstruction frame.
void reconstruct_mb(FrameYUV& recon, const MbPred& pred, const MbLevels& lv,
                    int mbx, int mby, const Quantizer& q) {
  for (int i = 0; i < 4; ++i) {
    Block8 res = reconstruct_block(lv.blocks[static_cast<std::size_t>(i)], q, false);
    for (int j = 0; j < 64; ++j) res[static_cast<std::size_t>(j)] += pred.luma[i][static_cast<std::size_t>(j)];
    store_block(recon.y, mbx + kLumaOff[i][0], mby + kLumaOff[i][1], res);
  }
  Block8 ru = reconstruct_block(lv.blocks[4], q, false);
  Block8 rv = reconstruct_block(lv.blocks[5], q, false);
  for (int j = 0; j < 64; ++j) {
    ru[static_cast<std::size_t>(j)] += pred.u[static_cast<std::size_t>(j)];
    rv[static_cast<std::size_t>(j)] += pred.v[static_cast<std::size_t>(j)];
  }
  store_block(recon.u, mbx / 2, mby / 2, ru);
  store_block(recon.v, mbx / 2, mby / 2, rv);
}

// Copies the prediction as-is (skip mode reconstruction).
void reconstruct_mb_skip(FrameYUV& recon, const MbPred& pred, int mbx, int mby) {
  for (int i = 0; i < 4; ++i)
    store_block(recon.y, mbx + kLumaOff[i][0], mby + kLumaOff[i][1], pred.luma[i]);
  store_block(recon.u, mbx / 2, mby / 2, pred.u);
  store_block(recon.v, mbx / 2, mby / 2, pred.v);
}

// Clamps pixel rows [y0, y1) of one plane to [0, 1] — the per-slice spelling
// of Plane::clamp01, touching only rows the slice owns.
void clamp_rows(Plane& p, int y0, int y1) {
  for (int y = y0; y < y1; ++y)
    for (int x = 0; x < p.width(); ++x)
      p.at(x, y) = std::clamp(p.at(x, y), 0.0f, 1.0f);
}

// ---- Slice substream framing -----------------------------------------------
//
// Each slice substream opens with a resync header: an 8-bit marker byte
// (0x5c) followed by ue(first_mb_row) and ue(mb_row_count). The geometry is
// redundant with the canonical partition — the reader validates it rather
// than trusting it, so a stream whose slices disagree with the partition
// fails loudly instead of writing rows another slice owns.

constexpr std::uint32_t kSliceMarker = 0x5c;

void write_slice_header(BitWriter& bw, SliceSpan s) {
  bw.put_bits(kSliceMarker, 8);
  bw.put_ue(static_cast<std::uint32_t>(s.first_mb_row));
  bw.put_ue(static_cast<std::uint32_t>(s.mb_row_count));
}

void read_slice_header(BitReader& br, SliceSpan expect) {
  const std::size_t marker_at = br.bits_consumed();
  if (br.get_bits(8) != kSliceMarker) {
    AllocAllowScope allow;
    throw BitstreamError("decode: bad slice resync marker", marker_at);
  }
  const std::size_t rows_at = br.bits_consumed();
  const std::uint32_t first = br.get_ue();
  const std::uint32_t count = br.get_ue();
  if (first != static_cast<std::uint32_t>(expect.first_mb_row) ||
      count != static_cast<std::uint32_t>(expect.mb_row_count)) {
    AllocAllowScope allow;
    throw BitstreamError(
        "decode: slice geometry disagrees with the canonical partition",
        rows_at);
  }
}

// Appends a finished slice substream to the frame, recording its length.
void append_slice(EncodedFrame& frame, std::vector<std::uint8_t> bytes) {
  frame.slice_sizes.push_back(static_cast<std::uint32_t>(bytes.size()));
  frame.payload.insert(frame.payload.end(), bytes.begin(), bytes.end());
}

float pred_sad(const FrameYUV& src, const MbPred& pred, int mbx, int mby) {
  float acc = 0.0f;
  for (int i = 0; i < 4; ++i) {
    const int bx = mbx + kLumaOff[i][0], by = mby + kLumaOff[i][1];
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x)
        acc += std::abs(src.y.at_clamped(bx + x, by + y) -
                        pred.luma[i][static_cast<std::size_t>(y * 8 + x)]);
  }
  return acc;
}

}  // namespace

// ---- Slice partition -------------------------------------------------------

std::vector<SliceSpan> slice_partition(int mb_rows, int slices) {
  const int n = std::clamp(slices, 1, mb_rows);
  std::vector<SliceSpan> spans;
  spans.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    const int r0 = s * mb_rows / n;
    const int r1 = (s + 1) * mb_rows / n;
    spans.push_back({r0, r1 - r0});
  }
  return spans;
}

// ---- Intra frame -----------------------------------------------------------

FrameYUV encode_intra_frame(const FrameYUV& src, const Quantizer& q, BitWriter& bw) {
  require_mb_aligned(src);
  FrameYUV recon(src.width(), src.height());
  encode_plane_intra_rows(src.y, recon.y, q, bw, 0, src.height(), 0);
  encode_plane_intra_rows(src.u, recon.u, q, bw, 0, src.height() / 2, 0);
  encode_plane_intra_rows(src.v, recon.v, q, bw, 0, src.height() / 2, 0);
  return recon;
}

FrameYUV decode_intra_frame(int width, int height, const Quantizer& q, BitReader& br) {
  FrameYUV out(width, height);
  decode_plane_intra_rows(out.y, q, br, 0, height, 0);
  decode_plane_intra_rows(out.u, q, br, 0, height / 2, 0);
  decode_plane_intra_rows(out.v, q, br, 0, height / 2, 0);
  return out;
}

FrameYUV encode_intra_frame_sliced(const FrameYUV& src, const Quantizer& q,
                                   int slices, EncodedFrame& frame) {
  require_mb_aligned(src);
  FrameYUV recon(src.width(), src.height());
  for (const SliceSpan s : slice_partition(src.height() / 16, slices)) {
    const int r0 = s.first_mb_row, r1 = s.first_mb_row + s.mb_row_count;
    BitWriter bw;
    write_slice_header(bw, s);
    encode_plane_intra_rows(src.y, recon.y, q, bw, 16 * r0, 16 * r1, 16);
    encode_plane_intra_rows(src.u, recon.u, q, bw, 8 * r0, 8 * r1, 8);
    encode_plane_intra_rows(src.v, recon.v, q, bw, 8 * r0, 8 * r1, 8);
    append_slice(frame, bw.finish());
  }
  return recon;
}

void decode_intra_slice(FrameYUV& out, const Quantizer& q,
                        const std::uint8_t* data, std::size_t size,
                        SliceSpan expect) {
  BitReader br(data, size);
  read_slice_header(br, expect);
  const int r0 = expect.first_mb_row, r1 = expect.first_mb_row + expect.mb_row_count;
  decode_plane_intra_rows(out.y, q, br, 16 * r0, 16 * r1, 16);
  decode_plane_intra_rows(out.u, q, br, 8 * r0, 8 * r1, 8);
  decode_plane_intra_rows(out.v, q, br, 8 * r0, 8 * r1, 8);
}

// ---- P frame ---------------------------------------------------------------

namespace {

// Codes macroblock rows [r0, r1) of a P frame. The MV predictor resets at
// every MB row (decoder mirrors it), so row ranges are self-contained and a
// sliced stream's rows code to exactly the same bits as the legacy frame's.
void encode_p_rows(const FrameYUV& src, const FrameYUV& ref, FrameYUV& recon,
                   const Quantizer& q, int search_range, int r0, int r1,
                   BitWriter& bw) {
  for (int mby = 16 * r0; mby < 16 * r1; mby += 16) {
    MotionVector pred_mv{0, 0};  // reset at each MB row; decoder mirrors this
    for (int mbx = 0; mbx < src.width(); mbx += 16) {
      const MotionVector full =
          motion_search(src.y, ref.y, mbx, mby, 16, search_range);
      const MotionVector mv = refine_halfpel(src.y, ref.y, mbx, mby, 16,
                                             {2 * full.x, 2 * full.y});
      const MbPred pred = predict_mb(ref, mbx, mby, mv);
      const MbLevels levels = quantize_mb(src, pred, mbx, mby, q);

      const bool skip =
          mv.x == pred_mv.x && mv.y == pred_mv.y && levels.all_zero();
      bw.put_bit(skip);
      if (skip) {
        reconstruct_mb_skip(recon, pred, mbx, mby);
      } else {
        bw.put_se(mv.x - pred_mv.x);
        bw.put_se(mv.y - pred_mv.y);
        write_mb_levels(bw, levels);
        reconstruct_mb(recon, pred, levels, mbx, mby, q);
      }
      pred_mv = mv;
    }
  }
}

void decode_p_rows(FrameYUV& out, const FrameYUV& ref, const Quantizer& q,
                   int r0, int r1, BitReader& br) {
  for (int mby = 16 * r0; mby < 16 * r1; mby += 16) {
    MotionVector pred_mv{0, 0};
    for (int mbx = 0; mbx < out.width(); mbx += 16) {
      const bool skip = br.get_bit();
      MotionVector mv = pred_mv;
      if (skip) {
        const MbPred pred = predict_mb(ref, mbx, mby, mv);
        reconstruct_mb_skip(out, pred, mbx, mby);
      } else {
        const std::size_t mv_at = br.bits_consumed();
        mv.x = pred_mv.x + br.get_se();
        mv.y = pred_mv.y + br.get_se();
        check_mv(mv, mv_at);
        const MbPred pred = predict_mb(ref, mbx, mby, mv);
        const MbLevels levels = read_mb_levels(br);
        reconstruct_mb(out, pred, levels, mbx, mby, q);
      }
      pred_mv = mv;
    }
  }
}

}  // namespace

FrameYUV encode_p_frame(const FrameYUV& src, const FrameYUV& ref,
                        const Quantizer& q, int search_range, BitWriter& bw) {
  require_mb_aligned(src);
  FrameYUV recon(src.width(), src.height());
  encode_p_rows(src, ref, recon, q, search_range, 0, src.height() / 16, bw);
  recon.y.clamp01();
  recon.u.clamp01();
  recon.v.clamp01();
  return recon;
}

FrameYUV decode_p_frame(const FrameYUV& ref, const Quantizer& q, BitReader& br) {
  FrameYUV out(ref.width(), ref.height());
  decode_p_rows(out, ref, q, 0, out.height() / 16, br);
  out.y.clamp01();
  out.u.clamp01();
  out.v.clamp01();
  return out;
}

FrameYUV encode_p_frame_sliced(const FrameYUV& src, const FrameYUV& ref,
                               const Quantizer& q, int search_range, int slices,
                               EncodedFrame& frame) {
  require_mb_aligned(src);
  FrameYUV recon(src.width(), src.height());
  for (const SliceSpan s : slice_partition(src.height() / 16, slices)) {
    BitWriter bw;
    write_slice_header(bw, s);
    encode_p_rows(src, ref, recon, q, search_range, s.first_mb_row,
                  s.first_mb_row + s.mb_row_count, bw);
    append_slice(frame, bw.finish());
  }
  recon.y.clamp01();
  recon.u.clamp01();
  recon.v.clamp01();
  return recon;
}

void decode_p_slice(FrameYUV& out, const FrameYUV& ref, const Quantizer& q,
                    const std::uint8_t* data, std::size_t size,
                    SliceSpan expect) {
  BitReader br(data, size);
  read_slice_header(br, expect);
  const int r0 = expect.first_mb_row, r1 = expect.first_mb_row + expect.mb_row_count;
  decode_p_rows(out, ref, q, r0, r1, br);
  clamp_rows(out.y, 16 * r0, 16 * r1);
  clamp_rows(out.u, 8 * r0, 8 * r1);
  clamp_rows(out.v, 8 * r0, 8 * r1);
}

// ---- B frame ---------------------------------------------------------------

namespace {
enum class BMode : std::uint8_t { kForward = 0, kBackward = 1, kBi = 2 };

// Codes macroblock rows [r0, r1) of a B frame. B macroblocks carry absolute
// MVs (no cross-MB predictor), so row ranges are naturally self-contained.
void encode_b_rows(const FrameYUV& src, const FrameYUV& ref_past,
                   const FrameYUV& ref_future, FrameYUV& recon,
                   const Quantizer& q, int search_range, int r0, int r1,
                   BitWriter& bw) {
  for (int mby = 16 * r0; mby < 16 * r1; mby += 16) {
    for (int mbx = 0; mbx < src.width(); mbx += 16) {
      const MotionVector full0 =
          motion_search(src.y, ref_past.y, mbx, mby, 16, search_range);
      const MotionVector mv0 = refine_halfpel(src.y, ref_past.y, mbx, mby, 16,
                                              {2 * full0.x, 2 * full0.y});
      const MotionVector full1 =
          motion_search(src.y, ref_future.y, mbx, mby, 16, search_range);
      const MotionVector mv1 = refine_halfpel(src.y, ref_future.y, mbx, mby, 16,
                                              {2 * full1.x, 2 * full1.y});
      const MbPred p0 = predict_mb(ref_past, mbx, mby, mv0);
      const MbPred p1 = predict_mb(ref_future, mbx, mby, mv1);
      const MbPred pbi = average_pred(p0, p1);

      // Zero-MV bidirectional skip test first: the dominant mode on the
      // static content B frames thrive on.
      const MbPred pskip = average_pred(predict_mb(ref_past, mbx, mby, {0, 0}),
                                        predict_mb(ref_future, mbx, mby, {0, 0}));
      const MbLevels skip_levels = quantize_mb(src, pskip, mbx, mby, q);
      if (skip_levels.all_zero()) {
        bw.put_bit(true);
        reconstruct_mb_skip(recon, pskip, mbx, mby);
        continue;
      }
      bw.put_bit(false);

      const float sad0 = pred_sad(src, p0, mbx, mby);
      const float sad1 = pred_sad(src, p1, mbx, mby);
      const float sadbi = pred_sad(src, pbi, mbx, mby) + 0.5f;  // 2nd MV cost
      BMode mode = BMode::kBi;
      const MbPred* pred = &pbi;
      if (sad0 <= sad1 && sad0 <= sadbi) {
        mode = BMode::kForward;
        pred = &p0;
      } else if (sad1 <= sadbi) {
        mode = BMode::kBackward;
        pred = &p1;
      }
      bw.put_bits(static_cast<std::uint32_t>(mode), 2);
      if (mode != BMode::kBackward) {
        bw.put_se(mv0.x);
        bw.put_se(mv0.y);
      }
      if (mode != BMode::kForward) {
        bw.put_se(mv1.x);
        bw.put_se(mv1.y);
      }
      const MbLevels levels = quantize_mb(src, *pred, mbx, mby, q);
      write_mb_levels(bw, levels);
      reconstruct_mb(recon, *pred, levels, mbx, mby, q);
    }
  }
}

void decode_b_rows(FrameYUV& out, const FrameYUV& ref_past,
                   const FrameYUV& ref_future, const Quantizer& q, int r0,
                   int r1, BitReader& br) {
  for (int mby = 16 * r0; mby < 16 * r1; mby += 16) {
    for (int mbx = 0; mbx < out.width(); mbx += 16) {
      const bool skip = br.get_bit();
      if (skip) {
        const MbPred pred =
            average_pred(predict_mb(ref_past, mbx, mby, {0, 0}),
                         predict_mb(ref_future, mbx, mby, {0, 0}));
        reconstruct_mb_skip(out, pred, mbx, mby);
        continue;
      }
      const std::size_t mode_at = br.bits_consumed();
      const std::uint32_t mode_bits = br.get_bits(2);
      // Mode 3 has no meaning; before this guard it fell through the switch
      // below and reconstructed from an uninitialised MbPred.
      if (mode_bits > 2) {
        AllocAllowScope allow;
        throw BitstreamError("decode: bad B-frame prediction mode", mode_at);
      }
      const auto mode = static_cast<BMode>(mode_bits);
      MotionVector mv0{0, 0}, mv1{0, 0};
      if (mode != BMode::kBackward) {
        const std::size_t mv_at = br.bits_consumed();
        mv0.x = br.get_se();
        mv0.y = br.get_se();
        check_mv(mv0, mv_at);
      }
      if (mode != BMode::kForward) {
        const std::size_t mv_at = br.bits_consumed();
        mv1.x = br.get_se();
        mv1.y = br.get_se();
        check_mv(mv1, mv_at);
      }
      MbPred pred;
      switch (mode) {
        case BMode::kForward: pred = predict_mb(ref_past, mbx, mby, mv0); break;
        case BMode::kBackward: pred = predict_mb(ref_future, mbx, mby, mv1); break;
        case BMode::kBi:
          pred = average_pred(predict_mb(ref_past, mbx, mby, mv0),
                              predict_mb(ref_future, mbx, mby, mv1));
          break;
      }
      const MbLevels levels = read_mb_levels(br);
      reconstruct_mb(out, pred, levels, mbx, mby, q);
    }
  }
}

}  // namespace

FrameYUV encode_b_frame(const FrameYUV& src, const FrameYUV& ref_past,
                        const FrameYUV& ref_future, const Quantizer& q,
                        int search_range, BitWriter& bw) {
  require_mb_aligned(src);
  FrameYUV recon(src.width(), src.height());
  encode_b_rows(src, ref_past, ref_future, recon, q, search_range, 0,
                src.height() / 16, bw);
  recon.y.clamp01();
  recon.u.clamp01();
  recon.v.clamp01();
  return recon;
}

FrameYUV decode_b_frame(const FrameYUV& ref_past, const FrameYUV& ref_future,
                        const Quantizer& q, BitReader& br) {
  FrameYUV out(ref_past.width(), ref_past.height());
  decode_b_rows(out, ref_past, ref_future, q, 0, out.height() / 16, br);
  out.y.clamp01();
  out.u.clamp01();
  out.v.clamp01();
  return out;
}

FrameYUV encode_b_frame_sliced(const FrameYUV& src, const FrameYUV& ref_past,
                               const FrameYUV& ref_future, const Quantizer& q,
                               int search_range, int slices,
                               EncodedFrame& frame) {
  require_mb_aligned(src);
  FrameYUV recon(src.width(), src.height());
  for (const SliceSpan s : slice_partition(src.height() / 16, slices)) {
    BitWriter bw;
    write_slice_header(bw, s);
    encode_b_rows(src, ref_past, ref_future, recon, q, search_range,
                  s.first_mb_row, s.first_mb_row + s.mb_row_count, bw);
    append_slice(frame, bw.finish());
  }
  recon.y.clamp01();
  recon.u.clamp01();
  recon.v.clamp01();
  return recon;
}

void decode_b_slice(FrameYUV& out, const FrameYUV& ref_past,
                    const FrameYUV& ref_future, const Quantizer& q,
                    const std::uint8_t* data, std::size_t size,
                    SliceSpan expect) {
  BitReader br(data, size);
  read_slice_header(br, expect);
  const int r0 = expect.first_mb_row, r1 = expect.first_mb_row + expect.mb_row_count;
  decode_b_rows(out, ref_past, ref_future, q, r0, r1, br);
  clamp_rows(out.y, 16 * r0, 16 * r1);
  clamp_rows(out.u, 8 * r0, 8 * r1);
  clamp_rows(out.v, 8 * r0, 8 * r1);
}

FrameYUV decode_intra_frame_sliced(int width, int height, const Quantizer& q,
                                   const EncodedFrame& frame) {
  if (width % 16 != 0 || height % 16 != 0) {
    AllocAllowScope allow;
    throw BitstreamError("decode: sliced stream geometry is not MB-aligned", 0);
  }
  const int n = static_cast<int>(frame.slice_sizes.size());
  const auto spans = slice_partition(height / 16, n);
  if (static_cast<int>(spans.size()) != n) {
    AllocAllowScope allow;
    throw BitstreamError("decode: more slices than macroblock rows", 0);
  }
  std::size_t total = 0;
  for (const auto s : frame.slice_sizes) total += s;
  if (total != frame.payload.size()) {
    AllocAllowScope allow;
    throw BitstreamError("decode: slice sizes disagree with payload size", 0);
  }
  FrameYUV out(width, height);
  std::size_t off = 0;
  for (int i = 0; i < n; ++i) {
    decode_intra_slice(out, q, frame.payload.data() + off,
                       frame.slice_sizes[static_cast<std::size_t>(i)],
                       spans[static_cast<std::size_t>(i)]);
    off += frame.slice_sizes[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace dcsr::codec
