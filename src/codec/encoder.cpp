#include "codec/encoder.hpp"

#include <stdexcept>

#include "codec/deblock.hpp"
#include "codec/frame_coding.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"

namespace dcsr::codec {

EncodedSegment Encoder::encode_segment(const std::vector<FrameYUV>& frames,
                                       int first_frame) const {
  if (frames.empty())
    throw std::invalid_argument("encode_segment: empty segment");
  if (cfg_.slices < 1)
    throw std::invalid_argument("encode_segment: slices must be >= 1");
  const int L = static_cast<int>(frames.size());
  const Quantizer q(cfg_.crf);

  // Display-order frame types. Segment always opens with I; extra I frames
  // at intra_period; optionally alternate B between references. A segment
  // never ends on a B (it would dangle without a future reference).
  std::vector<FrameType> types(static_cast<std::size_t>(L), FrameType::kP);
  types[0] = FrameType::kI;
  for (int d = 1; d < L; ++d) {
    if (cfg_.intra_period > 0 && d % cfg_.intra_period == 0) {
      types[static_cast<std::size_t>(d)] = FrameType::kI;
    } else if (cfg_.use_b_frames && (d & 1) && d != L - 1 &&
               !(cfg_.intra_period > 0 && (d + 1) % cfg_.intra_period == 0)) {
      types[static_cast<std::size_t>(d)] = FrameType::kB;
    }
  }

  EncodedSegment seg;
  seg.first_frame = first_frame;
  seg.crf = cfg_.crf;

  FrameYUV prev_ref;  // reconstruction of the previous reference, display order
  std::vector<int> pending_b;

  // Every frame is coded in the sliced format (container v3) — even
  // `slices = 1` — so reconstruction is bit-identical for any slice count
  // and the decoder can always run slices concurrently. Pre-slice (v2)
  // streams remain decodable; this encoder just no longer produces them.
  auto emit = [&](int d, FrameType type, const FrameYUV* past,
                  const FrameYUV* future) -> FrameYUV {
    EncodedFrame ef;
    ef.type = type;
    ef.display_index = d;
    FrameYUV recon;
    switch (type) {
      case FrameType::kI:
        recon = encode_intra_frame_sliced(frames[static_cast<std::size_t>(d)],
                                          q, cfg_.slices, ef);
        break;
      case FrameType::kP:
        recon = encode_p_frame_sliced(frames[static_cast<std::size_t>(d)],
                                      *past, q, cfg_.search_range, cfg_.slices,
                                      ef);
        break;
      case FrameType::kB:
        recon = encode_b_frame_sliced(frames[static_cast<std::size_t>(d)],
                                      *past, *future, q, cfg_.search_range,
                                      cfg_.slices, ef);
        break;
    }
    seg.frames.push_back(std::move(ef));
    // Closed loop: references are the *filtered* reconstruction, exactly
    // what the decoder will hold.
    if (cfg_.deblock) deblock_frame(recon, q.base_step());
    return recon;
  };

  for (int d = 0; d < L; ++d) {
    const FrameType type = types[static_cast<std::size_t>(d)];
    if (type == FrameType::kB) {
      pending_b.push_back(d);
      continue;
    }
    // Reference frame: encode it, then any B frames waiting between the
    // previous reference and this one.
    FrameYUV recon = emit(d, type, &prev_ref, nullptr);
    for (const int b : pending_b) emit(b, FrameType::kB, &prev_ref, &recon);
    pending_b.clear();
    prev_ref = std::move(recon);
  }
  return seg;
}

EncodedVideo Encoder::encode(const VideoSource& video,
                             const std::vector<SegmentPlan>& segments) const {
  EncodedVideo out;
  out.width = video.width();
  out.height = video.height();
  out.fps = video.fps();
  out.crf = cfg_.crf;
  out.deblock = cfg_.deblock;

  int expected = 0;
  for (const auto& plan : segments) {
    if (plan.first_frame != expected || plan.frame_count <= 0)
      throw std::invalid_argument("encode: segments must be contiguous");
    expected = plan.first_frame + plan.frame_count;

    std::vector<FrameYUV> frames;
    frames.reserve(static_cast<std::size_t>(plan.frame_count));
    for (int i = 0; i < plan.frame_count; ++i)
      frames.push_back(rgb_to_yuv420(video.frame(plan.first_frame + i)));
    out.segments.push_back(encode_segment(frames, plan.first_frame));
  }
  if (expected != video.frame_count())
    throw std::invalid_argument("encode: segments must cover the whole video");
  return out;
}

}  // namespace dcsr::codec
