#pragma once

#include <array>
#include <cstdint>

#include "codec/dct.hpp"

namespace dcsr::codec {

/// CRF-driven quantiser for orthonormal-DCT coefficients of [0,1]-domain
/// pixels. The step doubles every 6 CRF points, mirroring H.264's QP scale;
/// higher-frequency coefficients get proportionally larger steps (perceptual
/// weighting), which is what produces the blocky, detail-stripped look of
/// CRF-51 video that the SR models are trained to undo.
///
/// Steps are precomputed per (mode, coefficient) at construction, so the
/// quantise/dequantise kernels are pure table loops and both directions use
/// bit-identical steps.
class Quantizer {
 public:
  explicit Quantizer(int crf);

  int crf() const noexcept { return crf_; }

  /// Quantises a coefficient block to integer levels (raster order).
  std::array<std::int32_t, 64> quantize(const Block8& coeffs,
                                        bool intra) const noexcept;

  /// Reconstructs coefficients from levels.
  Block8 dequantize(const std::array<std::int32_t, 64>& levels,
                    bool intra) const noexcept;

  /// Fused dequantise + inverse DCT (the decode hot loop): bit-identical to
  /// idct8x8(dequantize(levels, intra)) on every backend.
  Block8 dequantize_idct(const std::array<std::int32_t, 64>& levels,
                         bool intra) const noexcept;

  /// Base step size at this CRF (luma DC, intra).
  float base_step() const noexcept { return base_step_; }

  /// Per-coefficient step table for a mode (64 floats, raster order).
  const float* steps(bool intra) const noexcept {
    return steps_[intra ? 0 : 1].data();
  }

 private:
  float step_at(int idx, bool intra) const noexcept;

  int crf_;
  float base_step_;
  std::array<std::array<float, 64>, 2> steps_{};
};

}  // namespace dcsr::codec
