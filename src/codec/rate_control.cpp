#include "codec/rate_control.hpp"

#include <stdexcept>

#include "image/convert.hpp"

namespace dcsr::codec {

double segment_bps(const EncodedSegment& segment, double fps) noexcept {
  if (segment.frames.empty() || fps <= 0.0) return 0.0;
  const double seconds = static_cast<double>(segment.frame_count()) / fps;
  return static_cast<double>(segment.size_bytes()) * 8.0 / seconds;
}

RateControlledVideo encode_with_target_bitrate(
    const VideoSource& video, const std::vector<SegmentPlan>& segments,
    const CodecConfig& base, double target_bps) {
  if (target_bps <= 0.0)
    throw std::invalid_argument("encode_with_target_bitrate: bad target");
  int expected = 0;
  for (const auto& plan : segments) {
    if (plan.first_frame != expected || plan.frame_count <= 0)
      throw std::invalid_argument("encode_with_target_bitrate: bad segments");
    expected = plan.first_frame + plan.frame_count;
  }
  if (expected != video.frame_count())
    throw std::invalid_argument(
        "encode_with_target_bitrate: segments must cover video");

  RateControlledVideo out;
  out.video.width = video.width();
  out.video.height = video.height();
  out.video.fps = video.fps();
  out.video.crf = base.crf;  // stream default; segments carry their own
  out.video.deblock = base.deblock;

  for (const auto& plan : segments) {
    // Frames converted once, re-encoded at trial CRFs during bisection.
    std::vector<FrameYUV> frames;
    frames.reserve(static_cast<std::size_t>(plan.frame_count));
    for (int i = 0; i < plan.frame_count; ++i)
      frames.push_back(rgb_to_yuv420(video.frame(plan.first_frame + i)));

    auto encode_at = [&](int crf) {
      CodecConfig cfg = base;
      cfg.crf = crf;
      return Encoder(cfg).encode_segment(frames, plan.first_frame);
    };

    // Bytes decrease monotonically with CRF; find the smallest CRF (highest
    // quality) whose bitrate fits the target.
    int lo = 0, hi = 51;
    EncodedSegment best = encode_at(51);
    int best_crf = 51;
    if (segment_bps(best, video.fps()) <= target_bps) {
      while (lo < hi) {
        const int mid = (lo + hi) / 2;
        EncodedSegment trial = encode_at(mid);
        if (segment_bps(trial, video.fps()) <= target_bps) {
          hi = mid;
          best = std::move(trial);
          best_crf = mid;
        } else {
          lo = mid + 1;
        }
      }
    }
    // else: even CRF 51 exceeds the target; ship it anyway (the encoder has
    // nothing coarser).
    out.segment_crf.push_back(best_crf);
    out.video.segments.push_back(std::move(best));
  }
  return out;
}

}  // namespace dcsr::codec
