#include "codec/types.hpp"

namespace dcsr::codec {

std::string to_string(FrameType t) {
  switch (t) {
    case FrameType::kI: return "I";
    case FrameType::kP: return "P";
    case FrameType::kB: return "B";
  }
  return "?";
}

}  // namespace dcsr::codec
