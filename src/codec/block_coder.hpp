#pragma once

#include <array>
#include <cstdint>

#include "codec/bits.hpp"
#include "codec/dct.hpp"
#include "codec/quant.hpp"
#include "image/frame.hpp"

namespace dcsr::codec {

/// Quantised levels of one 8x8 block, raster order.
using Levels8 = std::array<std::int32_t, 64>;

/// Extracts the 8x8 block at (bx, by) from a plane (edge-clamped).
Block8 extract_block(const Plane& p, int bx, int by) noexcept;

/// Stores an 8x8 block into a plane at (bx, by), clipping to plane bounds.
void store_block(Plane& p, int bx, int by, const Block8& b) noexcept;

/// Transform + quantise a sample/residual block. `intra` selects the
/// quantiser mode (intra blocks are samples biased by -0.5; inter blocks are
/// residuals around 0 — callers handle the bias).
Levels8 forward_block(const Block8& spatial, const Quantizer& q, bool intra) noexcept;

/// Dequantise + inverse transform.
Block8 reconstruct_block(const Levels8& levels, const Quantizer& q, bool intra) noexcept;

bool all_zero(const Levels8& levels) noexcept;

/// Entropy-codes one block of levels. For intra blocks the DC level is coded
/// as a delta against *dc_pred (then updated), exploiting the smoothness of
/// natural images; AC levels (and everything for inter blocks) use zig-zag
/// run-length pairs terminated by an EOB symbol.
void write_levels(BitWriter& bw, const Levels8& levels, std::int32_t* dc_pred);

/// Mirror of write_levels.
Levels8 read_levels(BitReader& br, std::int32_t* dc_pred);

}  // namespace dcsr::codec
