#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "codec/frame_coding.hpp"
#include "codec/types.hpp"
#include "image/frame.hpp"

namespace dcsr::codec {

/// Called on every I frame right after reconstruction, while it sits in the
/// decoded picture buffer and *before* any P/B frame references it — the
/// exact integration point of client-side dcSR (Fig. 6 of the paper). The
/// callee may modify the frame in place (e.g. convert YUV->RGB, run the
/// micro SR model, convert back); subsequent P/B frames then inherit the
/// enhancement through motion-compensated prediction.
using ReferenceHook =
    std::function<void(FrameYUV& frame, FrameType type, int display_index)>;

/// Standalone decoder with a two-slot reference buffer (past + most recent),
/// enough for the I/P/B structures this codec emits.
class Decoder {
 public:
  Decoder(int width, int height, int crf);

  /// Installs the in-loop enhancement hook (may be empty). With
  /// `include_p_frames`, the hook also fires on P-frame reconstructions
  /// before they become references — NEMO-style anchor frames: the callee
  /// decides per frame (by type/index) whether to spend an inference.
  void set_reference_hook(ReferenceHook hook, bool include_p_frames = false) {
    hook_ = std::move(hook);
    hook_p_frames_ = include_p_frames;
  }

  /// Enables the in-loop deblocking filter; must match the encoder's
  /// setting (decode_video() picks it up from the stream automatically).
  void set_deblock(bool on) noexcept { deblock_ = on; }

  /// Decodes one segment; returns frames in display order.
  std::vector<FrameYUV> decode_segment(const EncodedSegment& seg);

  /// Warm in-place variant: decodes into `display` (display order), reusing
  /// its frames' heap blocks across calls. Sliced frames decode their slices
  /// concurrently (each slice claims its disjoint plane rows under
  /// `parallel_for_writes`) and the steady state is heap-silent under the
  /// hot-path allocation contract; a frame without slice data takes the
  /// legacy pre-slice path, bit-identical to what it always decoded to.
  void decode_segment_into(const EncodedSegment& seg,
                           std::vector<FrameYUV>& display);

  /// Decodes a whole video; returns frames in display order.
  std::vector<FrameYUV> decode_video(const EncodedVideo& video);

 private:
  void decode_frame_sliced(const EncodedFrame& ef, const Quantizer& q,
                           const FrameYUV* past, const FrameYUV* future,
                           FrameYUV& out);

  int width_, height_, crf_;
  bool deblock_ = false;
  bool hook_p_frames_ = false;
  ReferenceHook hook_;

  // Warm decode state: two-slot reference buffer plus per-frame slice
  // scratch, all capacity-reused so steady-state decode stays off the heap.
  FrameYUV ref_past_, ref_last_;
  std::vector<SliceSpan> spans_;
  std::vector<std::size_t> slice_offsets_;
};

}  // namespace dcsr::codec
