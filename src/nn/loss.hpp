#pragma once

#include "tensor/tensor.hpp"

namespace dcsr::nn {

/// Loss value plus gradient of the loss w.r.t. the prediction.
struct LossResult {
  double value = 0.0;
  Tensor grad;
};

/// Mean-squared-error loss, the training objective of EDSR and the VAE
/// reconstruction term. grad = 2*(pred - target)/N.
LossResult mse_loss(const Tensor& pred, const Tensor& target);

/// L1 (mean absolute error) loss, which the original EDSR paper found to
/// converge better than L2 for SR. Kept as an option for ablations.
LossResult l1_loss(const Tensor& pred, const Tensor& target);

/// Analytic KL divergence between N(mu, exp(logvar)) and N(0, 1), summed over
/// latent dimensions and averaged over the batch — the VAE regulariser from
/// Eq. (1) of the paper. Returns the loss plus gradients w.r.t. mu and logvar.
struct KlResult {
  double value = 0.0;
  Tensor grad_mu;
  Tensor grad_logvar;
};
KlResult kl_divergence(const Tensor& mu, const Tensor& logvar);

}  // namespace dcsr::nn
