#pragma once

#include "nn/module.hpp"

namespace dcsr::nn {

/// Rectified linear unit, y = max(0, x).
class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;
};

/// Leaky ReLU with configurable negative slope.
class LeakyReLU final : public Module {
 public:
  explicit LeakyReLU(float slope = 0.2f) : slope_(slope) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor cached_input_;
};

/// Logistic sigmoid, y = 1 / (1 + e^-x). Used at the VAE decoder output so
/// reconstructions stay in [0,1] like the normalised pixel inputs.
class Sigmoid final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

/// Hyperbolic tangent.
class Tanh final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

}  // namespace dcsr::nn
