#include "nn/module.hpp"

#include <cmath>
#include <sstream>

#include "util/alloc_check.hpp"

namespace dcsr::nn {

void FiniteCheckGuard::verify(const Module& layer, const Tensor& out) {
  const std::span<const float> vals = out.span();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (std::isfinite(vals[i])) continue;
    // The guard fires from inside hot-path regions; sanction the message
    // build so NonFiniteError is what the caller sees, not a masking
    // HotPathAllocError from the diagnostic itself.
    AllocAllowScope allow;
    const std::string name = layer.name();
    std::ostringstream os;
    os << "FiniteCheckGuard: layer " << name << " produced "
       << (std::isnan(vals[i]) ? "NaN" : "Inf") << " at element " << i
       << " of " << vals.size() << " (output shape " << out.shape_str()
       << ") — uninitialized/stale workspace read or numeric blow-up";
    throw NonFiniteError(name, os.str());
  }
}

void Module::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

std::size_t Module::param_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->count();
  return n;
}

}  // namespace dcsr::nn
