#include "nn/module.hpp"

namespace dcsr::nn {

void Module::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

std::size_t Module::param_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->count();
  return n;
}

}  // namespace dcsr::nn
