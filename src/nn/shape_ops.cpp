#include "nn/shape_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"
#include "util/thread_pool.hpp"

namespace dcsr::nn {

namespace {

// Grain for plane-parallel loops: keep small layers serial (the pool
// dispatch would dominate), give big frames one chunk per thread.
std::int64_t plane_grain(std::size_t plane_floats) {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(32768 / std::max<std::size_t>(1, plane_floats)));
}

}  // namespace

Tensor PixelShuffle::forward(const Tensor& x) { return infer(x); }

Tensor PixelShuffle::infer(const Tensor& x) const {
  Tensor out;
  infer_into(x, out, Workspace::local());
  return out;
}

Shape PixelShuffle::out_shape(const Shape& in) const {
  const int r = scale_;
  if (in.size() != 4 || in[1] % (r * r) != 0)
    throw std::invalid_argument("PixelShuffle: channels not divisible by r^2");
  return {in[0], in[1] / (r * r), in[2] * r, in[3] * r};
}

void PixelShuffle::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  (void)ws;  // pure gather, no scratch
  const int r = scale_;
  if (x.rank() != 4 || x.dim(1) % (r * r) != 0) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("PixelShuffle: channels not divisible by r^2");
  }
  HotPathGuard alloc_guard("nn/shape_ops.cpp:PixelShuffle::infer_into");
  const int N = x.dim(0), C = x.dim(1) / (r * r), H = x.dim(2), W = x.dim(3);
  out.reset({N, C, H * r, W * r});
  // Every output plane (n, c) is a pure gather from input planes — disjoint
  // writes, no accumulation, so the plane fan-out is bit-identical for any
  // thread count. Each chunk claims its contiguous run of output planes.
  const std::size_t plane = static_cast<std::size_t>(H) * r * W * r;
  const auto claim = [&, plane](std::int64_t lo, std::int64_t hi) {
    return span_of(out.data() + static_cast<std::size_t>(lo) * plane,
                   static_cast<std::size_t>(hi - lo) * plane);
  };
  parallel_for_writes(
      0, static_cast<std::int64_t>(N) * C, plane_grain(plane), claim,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) {
          const int n = static_cast<int>(p / C);
          const int c = static_cast<int>(p % C);
          for (int dy = 0; dy < r; ++dy)
            for (int dx = 0; dx < r; ++dx) {
              const int ic = c * r * r + dy * r + dx;
              for (int h = 0; h < H; ++h)
                for (int w = 0; w < W; ++w)
                  out.at(n, c, h * r + dy, w * r + dx) = x.at(n, ic, h, w);
            }
        }
      },
      "nn/shape_ops.cpp:PixelShuffle::infer");
  FiniteCheckGuard{*this, out};
}

Tensor PixelShuffle::backward(const Tensor& grad_out) {
  const int r = scale_;
  const int N = grad_out.dim(0), C = grad_out.dim(1);
  const int H = grad_out.dim(2) / r, W = grad_out.dim(3) / r;
  Tensor grad({N, C * r * r, H, W});
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c)
      for (int dy = 0; dy < r; ++dy)
        for (int dx = 0; dx < r; ++dx) {
          const int ic = c * r * r + dy * r + dx;
          for (int h = 0; h < H; ++h)
            for (int w = 0; w < W; ++w)
              grad.at(n, ic, h, w) = grad_out.at(n, c, h * r + dy, w * r + dx);
        }
  return grad;
}

namespace {

// Source position and interpolation weight for one output coordinate under
// centre-aligned bilinear upsampling by `r`.
struct Tap {
  int i0, i1;
  float w1;  // weight of i1; i0 gets (1 - w1)
};

Tap bilinear_tap(int o, int r, int in_size) noexcept {
  const float src = (static_cast<float>(o) + 0.5f) / static_cast<float>(r) - 0.5f;
  int i0 = static_cast<int>(std::floor(src));
  float w1 = src - static_cast<float>(i0);
  int i1 = i0 + 1;
  if (i0 < 0) {
    i0 = 0;
    i1 = 0;
    w1 = 0.0f;
  }
  if (i1 >= in_size) {
    i1 = in_size - 1;
    if (i0 >= in_size) i0 = in_size - 1;
    if (i0 == i1) w1 = 0.0f;
  }
  return {i0, i1, w1};
}

}  // namespace

Tensor BilinearUpsample::forward(const Tensor& x) { return infer(x); }

Tensor BilinearUpsample::infer(const Tensor& x) const {
  Tensor out;
  infer_into(x, out, Workspace::local());
  return out;
}

Shape BilinearUpsample::out_shape(const Shape& in) const {
  if (in.size() != 4)
    throw std::invalid_argument("BilinearUpsample: expected NCHW");
  return {in[0], in[1], in[2] * scale_, in[3] * scale_};
}

void BilinearUpsample::infer_into(const Tensor& x, Tensor& out,
                                  Workspace& ws) const {
  (void)ws;  // pure gather, no scratch
  if (x.rank() != 4) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("BilinearUpsample: expected NCHW");
  }
  HotPathGuard alloc_guard("nn/shape_ops.cpp:BilinearUpsample::infer_into");
  const int r = scale_;
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  out.reset({N, C, H * r, W * r});
  for (int oy = 0; oy < H * r; ++oy) {
    const Tap ty = bilinear_tap(oy, r, H);
    for (int ox = 0; ox < W * r; ++ox) {
      const Tap tx = bilinear_tap(ox, r, W);
      for (int n = 0; n < N; ++n)
        for (int c = 0; c < C; ++c) {
          const float top = x.at(n, c, ty.i0, tx.i0) * (1 - tx.w1) +
                            x.at(n, c, ty.i0, tx.i1) * tx.w1;
          const float bot = x.at(n, c, ty.i1, tx.i0) * (1 - tx.w1) +
                            x.at(n, c, ty.i1, tx.i1) * tx.w1;
          out.at(n, c, oy, ox) = top * (1 - ty.w1) + bot * ty.w1;
        }
    }
  }
  FiniteCheckGuard{*this, out};
}

Tensor BilinearUpsample::backward(const Tensor& grad_out) {
  const int r = scale_;
  const int N = grad_out.dim(0), C = grad_out.dim(1);
  const int H = grad_out.dim(2) / r, W = grad_out.dim(3) / r;
  Tensor grad({N, C, H, W});
  for (int oy = 0; oy < H * r; ++oy) {
    const Tap ty = bilinear_tap(oy, r, H);
    for (int ox = 0; ox < W * r; ++ox) {
      const Tap tx = bilinear_tap(ox, r, W);
      for (int n = 0; n < N; ++n)
        for (int c = 0; c < C; ++c) {
          const float g = grad_out.at(n, c, oy, ox);
          grad.at(n, c, ty.i0, tx.i0) += g * (1 - ty.w1) * (1 - tx.w1);
          grad.at(n, c, ty.i0, tx.i1) += g * (1 - ty.w1) * tx.w1;
          grad.at(n, c, ty.i1, tx.i0) += g * ty.w1 * (1 - tx.w1);
          grad.at(n, c, ty.i1, tx.i1) += g * ty.w1 * tx.w1;
        }
    }
  }
  return grad;
}

Tensor UpsampleNearest::forward(const Tensor& x) { return infer(x); }

Tensor UpsampleNearest::infer(const Tensor& x) const {
  Tensor out;
  infer_into(x, out, Workspace::local());
  return out;
}

Shape UpsampleNearest::out_shape(const Shape& in) const {
  if (in.size() != 4)
    throw std::invalid_argument("UpsampleNearest: expected NCHW");
  return {in[0], in[1], in[2] * scale_, in[3] * scale_};
}

void UpsampleNearest::infer_into(const Tensor& x, Tensor& out,
                                 Workspace& ws) const {
  (void)ws;  // pure replication, no scratch
  if (x.rank() != 4) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("UpsampleNearest: expected NCHW");
  }
  HotPathGuard alloc_guard("nn/shape_ops.cpp:UpsampleNearest::infer_into");
  const int r = scale_;
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  out.reset({N, C, H * r, W * r});
  // Plane fan-out, same shape as PixelShuffle::infer: disjoint output
  // planes, pure replication, each chunk claiming its plane run.
  const std::size_t plane = static_cast<std::size_t>(H) * r * W * r;
  const auto claim = [&, plane](std::int64_t lo, std::int64_t hi) {
    return span_of(out.data() + static_cast<std::size_t>(lo) * plane,
                   static_cast<std::size_t>(hi - lo) * plane);
  };
  parallel_for_writes(
      0, static_cast<std::int64_t>(N) * C, plane_grain(plane), claim,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) {
          const int n = static_cast<int>(p / C);
          const int c = static_cast<int>(p % C);
          for (int h = 0; h < H * r; ++h)
            for (int w = 0; w < W * r; ++w)
              out.at(n, c, h, w) = x.at(n, c, h / r, w / r);
        }
      },
      "nn/shape_ops.cpp:UpsampleNearest::infer");
  FiniteCheckGuard{*this, out};
}

Tensor UpsampleNearest::backward(const Tensor& grad_out) {
  const int r = scale_;
  const int N = grad_out.dim(0), C = grad_out.dim(1);
  const int H = grad_out.dim(2) / r, W = grad_out.dim(3) / r;
  Tensor grad({N, C, H, W});
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c)
      for (int h = 0; h < H * r; ++h)
        for (int w = 0; w < W * r; ++w)
          grad.at(n, c, h / r, w / r) += grad_out.at(n, c, h, w);
  return grad;
}

Tensor Flatten::forward(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("Flatten: expected NCHW");
  cached_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.dim(1) * x.dim(2) * x.dim(3)});
}

Tensor Flatten::infer(const Tensor& x) const {
  if (x.rank() != 4) throw std::invalid_argument("Flatten: expected NCHW");
  return x.reshaped({x.dim(0), x.dim(1) * x.dim(2) * x.dim(3)});
}

Shape Flatten::out_shape(const Shape& in) const {
  if (in.size() != 4) throw std::invalid_argument("Flatten: expected NCHW");
  return {in[0], in[1] * in[2] * in[3]};
}

void Flatten::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  (void)ws;
  if (x.rank() != 4) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("Flatten: expected NCHW");
  }
  HotPathGuard alloc_guard("nn/shape_ops.cpp:Flatten::infer_into");
  out.reset({x.dim(0), x.dim(1) * x.dim(2) * x.dim(3)});
  std::copy(x.data(), x.data() + x.size(), out.data());
}

Tensor Flatten::backward(const Tensor& grad_out) {
  if (cached_shape_.empty())
    throw std::logic_error("Flatten::backward before forward");
  return grad_out.reshaped(cached_shape_);
}

Tensor Reshape4::forward(const Tensor& x) { return infer(x); }

Tensor Reshape4::infer(const Tensor& x) const {
  if (x.rank() != 2) throw std::invalid_argument("Reshape4: expected 2-D input");
  return x.reshaped({x.dim(0), c_, h_, w_});
}

Shape Reshape4::out_shape(const Shape& in) const {
  if (in.size() != 2) throw std::invalid_argument("Reshape4: expected 2-D input");
  return {in[0], c_, h_, w_};
}

void Reshape4::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  (void)ws;
  if (x.rank() != 2) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("Reshape4: expected 2-D input");
  }
  if (x.size() != static_cast<std::size_t>(x.dim(0)) * c_ * h_ * w_) {
    AllocAllowScope allow;
    throw std::invalid_argument("Reshape4: element count mismatch");
  }
  HotPathGuard alloc_guard("nn/shape_ops.cpp:Reshape4::infer_into");
  out.reset({x.dim(0), c_, h_, w_});
  std::copy(x.data(), x.data() + x.size(), out.data());
}

Tensor Reshape4::backward(const Tensor& grad_out) {
  return grad_out.reshaped({grad_out.dim(0), c_ * h_ * w_});
}

}  // namespace dcsr::nn
