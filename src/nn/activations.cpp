#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"

namespace dcsr::nn {

namespace {

// All four activations share the same shape-preserving elementwise pattern;
// the workspace is unused because the transform needs no scratch at all.
template <typename F>
void map_into(const Tensor& x, Tensor& out, F&& f) {
  HotPathGuard alloc_guard("nn/activations.cpp:map_into");
  out.reset(x.shape());
  const float* src = x.data();
  float* dst = out.data();
  for (std::size_t i = 0; i < x.size(); ++i) dst[i] = f(src[i]);
}

}  // namespace

Tensor ReLU::forward(const Tensor& x) {
  mask_ = Tensor(x.shape());
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0f) {
      mask_[i] = 1.0f;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::infer(const Tensor& x) const {
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0f) out[i] = 0.0f;
  return out;
}

void ReLU::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  (void)ws;
  map_into(x, out, [](float v) { return v < 0.0f ? 0.0f : v; });
  FiniteCheckGuard{*this, out};
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (mask_.empty()) throw std::logic_error("ReLU::backward before forward");
  Tensor grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= mask_[i];
  return grad;
}

Tensor LeakyReLU::forward(const Tensor& x) {
  cached_input_ = x;
  return infer(x);
}

Tensor LeakyReLU::infer(const Tensor& x) const {
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0f) out[i] *= slope_;
  return out;
}

void LeakyReLU::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  (void)ws;
  const float slope = slope_;
  map_into(x, out, [slope](float v) { return v < 0.0f ? v * slope : v; });
  FiniteCheckGuard{*this, out};
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("LeakyReLU::backward before forward");
  Tensor grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i)
    if (cached_input_[i] < 0.0f) grad[i] *= slope_;
  return grad;
}

Tensor Sigmoid::forward(const Tensor& x) {
  cached_output_ = infer(x);
  return cached_output_;
}

Tensor Sigmoid::infer(const Tensor& x) const {
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  return out;
}

void Sigmoid::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  (void)ws;
  map_into(x, out, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  FiniteCheckGuard{*this, out};
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  if (cached_output_.empty())
    throw std::logic_error("Sigmoid::backward before forward");
  Tensor grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= y * (1.0f - y);
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& x) {
  cached_output_ = infer(x);
  return cached_output_;
}

Tensor Tanh::infer(const Tensor& x) const {
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  return out;
}

void Tanh::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  (void)ws;
  map_into(x, out, [](float v) { return std::tanh(v); });
  FiniteCheckGuard{*this, out};
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (cached_output_.empty())
    throw std::logic_error("Tanh::backward before forward");
  Tensor grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= 1.0f - y * y;
  }
  return grad;
}

}  // namespace dcsr::nn
