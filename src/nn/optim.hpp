#pragma once

#include <vector>

#include "nn/module.hpp"

namespace dcsr::nn {

/// Optimiser interface: step() applies accumulated Param::grad to values.
/// Callers are responsible for zero_grad() between iterations.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;
  virtual ~Optimizer() = default;

  virtual void step() = 0;

  void set_lr(double lr) noexcept { lr_ = lr; }
  double lr() const noexcept { return lr_; }

 protected:
  std::vector<Param*> params_;
  double lr_ = 1e-3;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(std::vector<Param*> params, double lr = 1e-2,
               double momentum = 0.0);
  void step() override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba). Defaults match the EDSR training recipe
/// (lr 1e-4 is typical for full EDSR; micro models tolerate larger).
/// Optional decoupled weight decay (AdamW-style) and global-norm gradient
/// clipping — both off by default; dcSR *wants* to overfit, so regularisers
/// exist for the generalisation ablations, not the main pipeline.
class Adam final : public Optimizer {
 public:
  explicit Adam(std::vector<Param*> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  void step() override;

  /// Decoupled weight decay: value -= lr * decay * value before the update.
  void set_weight_decay(double decay) noexcept { weight_decay_ = decay; }

  /// If > 0, gradients are rescaled when their global L2 norm exceeds this.
  void set_grad_clip(double max_norm) noexcept { grad_clip_ = max_norm; }

  /// Global gradient L2 norm at the most recent step (for diagnostics).
  double last_grad_norm() const noexcept { return last_grad_norm_; }

 private:
  double beta1_, beta2_, eps_;
  double weight_decay_ = 0.0;
  double grad_clip_ = 0.0;
  double last_grad_norm_ = 0.0;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

}  // namespace dcsr::nn
