#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace dcsr::nn {

/// 2-D convolution over NCHW tensors via im2col + GEMM.
///
/// Weight layout is (out_channels) x (in_channels * k * k), i.e. the GEMM
/// left operand; bias is one scalar per output channel. He-normal init.
class Conv2d final : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, Rng& rng, int stride = 1,
         int pad = -1 /* -1 => same padding for stride 1 */);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  /// infer_into with the GEMM's fused epilogue extended to clamp at zero —
  /// lets ResBlock fold its inner ReLU into conv1's bias pass. Bit-identical
  /// to infer_into followed by a separate ReLU layer.
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws,
                  bool fuse_relu) const;
  Shape out_shape(const Shape& in) const override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv2d"; }
  void set_training(bool training) override;

  int in_channels() const noexcept { return in_channels_; }
  int out_channels() const noexcept { return out_channels_; }
  int kernel() const noexcept { return kernel_; }
  int stride() const noexcept { return stride_; }
  int pad() const noexcept { return pad_; }

  Param& weight() noexcept { return weight_; }
  Param& bias() noexcept { return bias_; }

 private:
  int in_channels_, out_channels_, kernel_, stride_, pad_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;  // needed to form dX via col2im
  // im2col of each batch item, built by forward and reused by backward so
  // the columns are computed once per step instead of twice. Only populated
  // in training mode — inference would pay k*k times the input's memory for
  // matrices nobody reads.
  std::vector<Tensor> cached_cols_;
};

}  // namespace dcsr::nn
