#include "nn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"
#include "util/thread_pool.hpp"

namespace dcsr::nn {

namespace {

Tensor he_init(int out_c, int in_c, int k, Rng& rng) {
  const float fan_in = static_cast<float>(in_c * k * k);
  const float stddev = std::sqrt(2.0f / fan_in);
  return Tensor::randn({out_c, in_c * k * k}, rng, stddev);
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, Rng& rng,
               int stride, int pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? kernel / 2 : pad),
      weight_(he_init(out_channels, in_channels, kernel, rng)),
      bias_(Tensor({out_channels, 1})) {}

void Conv2d::set_training(bool training) {
  Module::set_training(training);
  if (!training) cached_cols_.clear();
}

Shape Conv2d::out_shape(const Shape& in) const {
  if (in.size() != 4 || in[1] != in_channels_) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("Conv2d::out_shape: bad input shape");
  }
  return {in[0], out_channels_,
          conv_out_size_checked(in[2], kernel_, stride_, pad_, "Conv2d"),
          conv_out_size_checked(in[3], kernel_, stride_, pad_, "Conv2d")};
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_channels_)
    throw std::invalid_argument("Conv2d: bad input shape " + x.shape_str());
  cached_input_ = x;
  const int N = x.dim(0);
  const int oh = conv_out_size_checked(x.dim(2), kernel_, stride_, pad_, "Conv2d");
  const int ow = conv_out_size_checked(x.dim(3), kernel_, stride_, pad_, "Conv2d");
  Tensor out({N, out_channels_, oh, ow});
  if (training())
    cached_cols_.assign(static_cast<std::size_t>(N), Tensor());
  else
    cached_cols_.clear();
  // Batch items are independent and write disjoint output slices; each chunk
  // claims the NCHW output planes of its items [lo, hi). (The per-item
  // cached_cols_ slots are distinct Tensor objects, also indexed by n.)
  const std::size_t item_floats =
      static_cast<std::size_t>(out_channels_) * oh * ow;
  const auto claim = [&, item_floats](std::int64_t lo, std::int64_t hi) {
    return span_of(out.data() + static_cast<std::size_t>(lo) * item_floats,
                   static_cast<std::size_t>(hi - lo) * item_floats);
  };
  parallel_for_writes(0, N, 1, claim, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t n = lo; n < hi; ++n) {
      Tensor cols = im2col(x, static_cast<int>(n), kernel_, stride_, pad_);
      const Tensor y = matmul(weight_.value, cols);  // outC x (oh*ow)
      float* dst = out.data() +
                   static_cast<std::size_t>(n) * out_channels_ * oh * ow;
      const float* src = y.data();
      for (int c = 0; c < out_channels_; ++c) {
        const float b = bias_.value[static_cast<std::size_t>(c)];
        for (int i = 0; i < oh * ow; ++i)
          dst[static_cast<std::size_t>(c) * oh * ow + i] =
              src[static_cast<std::size_t>(c) * oh * ow + i] + b;
      }
      if (training()) cached_cols_[static_cast<std::size_t>(n)] = std::move(cols);
    }
  }, "nn/conv.cpp:Conv2d::forward");
  FiniteCheckGuard{*this, out};
  return out;
}

Tensor Conv2d::infer(const Tensor& x) const {
  Tensor out;
  infer_into(x, out, Workspace::local());
  return out;
}

void Conv2d::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  infer_into(x, out, ws, /*fuse_relu=*/false);
}

void Conv2d::infer_into(const Tensor& x, Tensor& out, Workspace& ws,
                        bool fuse_relu) const {
  if (x.rank() != 4 || x.dim(1) != in_channels_) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("Conv2d: bad input shape " + x.shape_str());
  }
  HotPathGuard alloc_guard("nn/conv.cpp:Conv2d::infer_into");
  const int N = x.dim(0);
  const int oh = conv_out_size_checked(x.dim(2), kernel_, stride_, pad_, "Conv2d");
  const int ow = conv_out_size_checked(x.dim(3), kernel_, stride_, pad_, "Conv2d");
  out.reset({N, out_channels_, oh, ow});
  // Same arithmetic as forward() — im2col then one GEMM per item, identical
  // summation order, so the outputs are bit-identical — but all scratch
  // comes from the caller's workspace and the GEMM writes each item's plane
  // block in place with the bias (and optional ReLU) folded into its
  // epilogue: a warm workspace makes the whole call allocation-free.
  // Inference batches are almost always size 1, so the parallelism comes
  // from inside im2col_into and the GEMM rather than from the batch axis.
  WorkspaceTensor cols = ws.acquire({in_channels_ * kernel_ * kernel_, oh * ow});
  for (int n = 0; n < N; ++n) {
    im2col_into(x, n, kernel_, stride_, pad_, *cols);
    float* dst =
        out.data() + static_cast<std::size_t>(n) * out_channels_ * oh * ow;
    matmul_bias_into(weight_.value, *cols, bias_.value.data(),
                     MutMat(dst, out_channels_, oh * ow), fuse_relu);
  }
  FiniteCheckGuard{*this, out};
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  if (x.empty()) throw std::logic_error("Conv2d::backward before forward");
  const int N = x.dim(0);
  const int oh = conv_out_size(x.dim(2), kernel_, stride_, pad_);
  const int ow = conv_out_size(x.dim(3), kernel_, stride_, pad_);
  if (grad_out.rank() != 4 || grad_out.dim(0) != N ||
      grad_out.dim(1) != out_channels_ || grad_out.dim(2) != oh ||
      grad_out.dim(3) != ow)
    throw std::invalid_argument("Conv2d::backward: grad shape " +
                                grad_out.shape_str() + " does not match " +
                                "cached forward output");
  Tensor grad_in(x.shape());
  // Per-item weight/bias partials, reduced in index order after the parallel
  // section: float accumulation order must not depend on the thread count.
  std::vector<Tensor> dw(static_cast<std::size_t>(N));
  std::vector<Tensor> db(static_cast<std::size_t>(N));
  // Each chunk owns its items' grad_in planes (col2im_add only touches item
  // n's slice) plus the per-item dw/db slots reduced serially afterwards.
  const std::size_t in_floats = static_cast<std::size_t>(x.dim(1)) *
                                static_cast<std::size_t>(x.dim(2)) *
                                static_cast<std::size_t>(x.dim(3));
  const auto claim = [&, in_floats](std::int64_t lo, std::int64_t hi) {
    return span_of(grad_in.data() + static_cast<std::size_t>(lo) * in_floats,
                   static_cast<std::size_t>(hi - lo) * in_floats);
  };
  parallel_for_writes(0, N, 1, claim, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t item = lo; item < hi; ++item) {
      const int n = static_cast<int>(item);
      // This item's slice of grad_out is already a contiguous
      // (outC) x (oh*ow) matrix, so view it in place instead of copying.
      const float* src = grad_out.data() +
                         static_cast<std::size_t>(n) * out_channels_ * oh * ow;
      const ConstMat go(src, out_channels_, oh * ow);

      // Reuse the columns built by forward; recompute only if a caller ran
      // forward in eval mode and then asked for gradients anyway.
      const bool have_cols = static_cast<std::size_t>(n) < cached_cols_.size() &&
                             !cached_cols_[static_cast<std::size_t>(n)].empty();
      Tensor scratch;
      if (!have_cols) scratch = im2col(x, n, kernel_, stride_, pad_);
      const Tensor& cols =
          have_cols ? cached_cols_[static_cast<std::size_t>(n)] : scratch;

      // dW_n = dY * cols^T ; db_n = rowsum(dY) ; dX_n = col2im(W^T * dY).
      matmul_nt_into(go, cols, dw[static_cast<std::size_t>(n)]);
      Tensor dbn({out_channels_, 1});
      for (int c = 0; c < out_channels_; ++c) {
        float acc = 0.0f;
        const float* row = src + static_cast<std::size_t>(c) * oh * ow;
        for (int i = 0; i < oh * ow; ++i) acc += row[i];
        dbn[static_cast<std::size_t>(c)] = acc;
      }
      db[static_cast<std::size_t>(n)] = std::move(dbn);
      Tensor dcols;
      matmul_tn_into(weight_.value, go, dcols);
      col2im_add(dcols, grad_in, n, kernel_, stride_, pad_);
    }
  }, "nn/conv.cpp:Conv2d::backward");
  for (int n = 0; n < N; ++n) {
    weight_.grad.add_(dw[static_cast<std::size_t>(n)]);
    bias_.grad.add_(db[static_cast<std::size_t>(n)]);
  }
  return grad_in;
}

}  // namespace dcsr::nn
