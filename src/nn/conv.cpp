#include "nn/conv.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace dcsr::nn {

namespace {

Tensor he_init(int out_c, int in_c, int k, Rng& rng) {
  const float fan_in = static_cast<float>(in_c * k * k);
  const float stddev = std::sqrt(2.0f / fan_in);
  return Tensor::randn({out_c, in_c * k * k}, rng, stddev);
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, Rng& rng,
               int stride, int pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? kernel / 2 : pad),
      weight_(he_init(out_channels, in_channels, kernel, rng)),
      bias_(Tensor({out_channels, 1})) {}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_channels_)
    throw std::invalid_argument("Conv2d: bad input shape " + x.shape_str());
  cached_input_ = x;
  const int N = x.dim(0);
  const int oh = conv_out_size(x.dim(2), kernel_, stride_, pad_);
  const int ow = conv_out_size(x.dim(3), kernel_, stride_, pad_);
  Tensor out({N, out_channels_, oh, ow});
  for (int n = 0; n < N; ++n) {
    const Tensor cols = im2col(x, n, kernel_, stride_, pad_);
    const Tensor y = matmul(weight_.value, cols);  // outC x (oh*ow)
    float* dst = out.data() +
                 static_cast<std::size_t>(n) * out_channels_ * oh * ow;
    const float* src = y.data();
    for (int c = 0; c < out_channels_; ++c) {
      const float b = bias_.value[static_cast<std::size_t>(c)];
      for (int i = 0; i < oh * ow; ++i)
        dst[static_cast<std::size_t>(c) * oh * ow + i] =
            src[static_cast<std::size_t>(c) * oh * ow + i] + b;
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  if (x.empty()) throw std::logic_error("Conv2d::backward before forward");
  const int N = x.dim(0);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  Tensor grad_in(x.shape());
  for (int n = 0; n < N; ++n) {
    // View this item's output gradient as an (outC) x (oh*ow) matrix.
    Tensor go({out_channels_, oh * ow});
    const float* src = grad_out.data() +
                       static_cast<std::size_t>(n) * out_channels_ * oh * ow;
    std::copy(src, src + static_cast<std::size_t>(out_channels_) * oh * ow,
              go.data());

    const Tensor cols = im2col(x, n, kernel_, stride_, pad_);
    // dW += dY * cols^T ; db += rowsum(dY) ; dX = col2im(W^T * dY).
    weight_.grad.add_(matmul_nt(go, cols));
    for (int c = 0; c < out_channels_; ++c) {
      float acc = 0.0f;
      const float* row = go.data() + static_cast<std::size_t>(c) * oh * ow;
      for (int i = 0; i < oh * ow; ++i) acc += row[i];
      bias_.grad[static_cast<std::size_t>(c)] += acc;
    }
    const Tensor dcols = matmul_tn(weight_.value, go);
    col2im_add(dcols, grad_in, n, kernel_, stride_, pad_);
  }
  return grad_in;
}

}  // namespace dcsr::nn
