#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/checked.hpp"

namespace dcsr {
class Workspace;
}

namespace dcsr::nn {

class Module;

/// Thrown by FiniteCheckGuard when a layer output contains NaN or Inf in a
/// DCSR_FINITE_CHECK build. Names the offending layer so a poisoned
/// workspace read or a numerically exploding weight is attributed at the
/// layer that produced it, not wherever the NaN finally surfaces.
class NonFiniteError : public std::runtime_error {
 public:
  NonFiniteError(std::string layer, const std::string& what)
      : std::runtime_error(what), layer_(std::move(layer)) {}
  const std::string& layer() const noexcept { return layer_; }

 private:
  std::string layer_;
};

/// Scans a layer output for NaN/Inf in checked builds and throws
/// NonFiniteError naming the layer. Constructed as the last statement of
/// every infer/infer_into/forward implementation:
///
///   FiniteCheckGuard{*this, out};
///
/// A pure observer: it reads the tensor and never alters a value, so the
/// bitwise output pins hold with the guard active. In release builds the
/// constructor is an empty inline — the scan (and the name() call) compiles
/// out entirely.
class FiniteCheckGuard {
 public:
  FiniteCheckGuard(const Module& layer, const Tensor& out) {
#if DCSR_FINITE_CHECK
    verify(layer, out);
#else
    (void)layer;
    (void)out;
#endif
  }

  /// The scan itself (always compiled, for tests and explicit call sites):
  /// throws NonFiniteError on the first non-finite element.
  static void verify(const Module& layer, const Tensor& out);
};

/// A learnable parameter: value plus accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  std::size_t count() const noexcept { return value.size(); }
};

/// Base class for all layers.
///
/// Training uses explicit reverse-mode differentiation: forward() caches
/// whatever the layer needs, backward() consumes dL/d(output) and returns
/// dL/d(input) while accumulating dL/d(param) into each Param::grad. There is
/// no tape/graph machinery — the model topologies in this project (EDSR and a
/// small VAE) are static, and explicit backward keeps every gradient path
/// auditable and unit-testable against finite differences.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Stateless inference: computes the same function as forward() but writes
  /// only into caller-owned scratch — no layer caches, no train/eval state,
  /// no member mutation of any kind. Because it leaves the object untouched,
  /// one model instance can serve concurrent infer() calls from many threads
  /// (the client pipeline's frame-level parallelism depends on this).
  /// backward() after infer() is a logic error: nothing was cached.
  virtual Tensor infer(const Tensor& x) const = 0;

  /// Workspace-backed inference: computes the same function as infer() —
  /// bit-identically — but writes the result into `out` (reshaped in place)
  /// and draws every piece of scratch from `ws`, so a warm workspace makes
  /// the call allocation-free. `ws` must be the calling thread's workspace
  /// (see Workspace ownership rules in tensor/workspace.hpp); hot-path
  /// layers override this, everything else falls back to infer().
  virtual void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
    (void)ws;
    out = infer(x);
  }

  /// Shape of the output this layer produces for an input of shape `in`,
  /// without running it. Containers use it to size workspace checkouts with
  /// the true shapes (sizing with placeholders would mis-count hits and
  /// misses). Default: shape-preserving, which covers activations and
  /// residual blocks. Shapes are inline values (tensor/shape.hpp), so
  /// chaining out_shape calls per frame costs no heap allocation — required
  /// for infer_into to run under a DCSR_ALLOC_CHECK hot-path guard.
  virtual Shape out_shape(const Shape& in) const { return in; }

  /// Learnable parameters; default none.
  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;

  /// Train/eval switch. In eval mode layers may skip caching activations
  /// that only backward() needs (e.g. Conv2d's im2col column matrices, which
  /// dwarf the input itself by a factor of k*k). Containers override this to
  /// propagate to their children. Default is training.
  virtual void set_training(bool training) { training_ = training; }
  bool training() const noexcept { return training_; }

  /// Clears accumulated gradients on all parameters.
  void zero_grad();

  /// Total number of learnable scalars.
  std::size_t param_count();

 private:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

/// RAII train/eval switch: sets the module's mode on construction and
/// restores the mode it found on destruction — including when the scope
/// unwinds through an exception mid-loop, which a manual save/set/restore
/// sequence silently gets wrong.
class TrainingModeGuard {
 public:
  TrainingModeGuard(Module& m, bool training)
      : module_(m), saved_(m.training()) {
    module_.set_training(training);
  }
  ~TrainingModeGuard() { module_.set_training(saved_); }
  TrainingModeGuard(const TrainingModeGuard&) = delete;
  TrainingModeGuard& operator=(const TrainingModeGuard&) = delete;

 private:
  Module& module_;
  bool saved_;
};

}  // namespace dcsr::nn
