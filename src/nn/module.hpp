#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace dcsr::nn {

/// A learnable parameter: value plus accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  std::size_t count() const noexcept { return value.size(); }
};

/// Base class for all layers.
///
/// Training uses explicit reverse-mode differentiation: forward() caches
/// whatever the layer needs, backward() consumes dL/d(output) and returns
/// dL/d(input) while accumulating dL/d(param) into each Param::grad. There is
/// no tape/graph machinery — the model topologies in this project (EDSR and a
/// small VAE) are static, and explicit backward keeps every gradient path
/// auditable and unit-testable against finite differences.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Learnable parameters; default none.
  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;

  /// Train/eval switch. In eval mode layers may skip caching activations
  /// that only backward() needs (e.g. Conv2d's im2col column matrices, which
  /// dwarf the input itself by a factor of k*k). Containers override this to
  /// propagate to their children. Default is training.
  virtual void set_training(bool training) { training_ = training; }
  bool training() const noexcept { return training_; }

  /// Clears accumulated gradients on all parameters.
  void zero_grad();

  /// Total number of learnable scalars.
  std::size_t param_count();

 private:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace dcsr::nn
