#include "nn/resblock.hpp"

namespace dcsr::nn {

ResBlock::ResBlock(int channels, Rng& rng, float res_scale)
    : conv1_(channels, channels, 3, rng),
      conv2_(channels, channels, 3, rng),
      res_scale_(res_scale) {}

Tensor ResBlock::forward(const Tensor& x) {
  Tensor y = conv2_.forward(relu_.forward(conv1_.forward(x)));
  y.scale_(res_scale_);
  y.add_(x);
  return y;
}

Tensor ResBlock::infer(const Tensor& x) const {
  Tensor y = conv2_.infer(relu_.infer(conv1_.infer(x)));
  y.scale_(res_scale_);
  y.add_(x);
  return y;
}

Tensor ResBlock::backward(const Tensor& grad_out) {
  Tensor branch = grad_out;
  branch.scale_(res_scale_);
  Tensor grad = conv1_.backward(relu_.backward(conv2_.backward(branch)));
  grad.add_(grad_out);  // identity skip
  return grad;
}

std::vector<Param*> ResBlock::params() {
  std::vector<Param*> ps = conv1_.params();
  const auto p2 = conv2_.params();
  ps.insert(ps.end(), p2.begin(), p2.end());
  return ps;
}

}  // namespace dcsr::nn
