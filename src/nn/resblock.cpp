#include "nn/resblock.hpp"

#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"

namespace dcsr::nn {

ResBlock::ResBlock(int channels, Rng& rng, float res_scale)
    : conv1_(channels, channels, 3, rng),
      conv2_(channels, channels, 3, rng),
      res_scale_(res_scale) {}

Tensor ResBlock::forward(const Tensor& x) {
  Tensor y = conv2_.forward(relu_.forward(conv1_.forward(x)));
  y.scale_(res_scale_);
  y.add_(x);
  FiniteCheckGuard{*this, y};
  return y;
}

Tensor ResBlock::infer(const Tensor& x) const {
  Tensor out;
  infer_into(x, out, Workspace::local());
  return out;
}

void ResBlock::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  // conv1 with the ReLU folded into its GEMM epilogue (bit-identical to a
  // separate ReLU layer — see matmul_bias_into), conv2 straight into the
  // caller's buffer, then the residual scale and skip in place.
  HotPathGuard alloc_guard("nn/resblock.cpp:ResBlock::infer_into");
  WorkspaceTensor mid = ws.acquire(conv1_.out_shape(x.shape()));
  conv1_.infer_into(x, *mid, ws, /*fuse_relu=*/true);
  conv2_.infer_into(*mid, out, ws);
  out.scale_(res_scale_);
  out.add_(x);
  FiniteCheckGuard{*this, out};
}

Tensor ResBlock::backward(const Tensor& grad_out) {
  Tensor branch = grad_out;
  branch.scale_(res_scale_);
  Tensor grad = conv1_.backward(relu_.backward(conv2_.backward(branch)));
  grad.add_(grad_out);  // identity skip
  return grad;
}

std::vector<Param*> ResBlock::params() {
  std::vector<Param*> ps = conv1_.params();
  const auto p2 = conv2_.params();
  ps.insert(ps.end(), p2.begin(), p2.end());
  return ps;
}

}  // namespace dcsr::nn
