#pragma once

#include "nn/module.hpp"

namespace dcsr::nn {

/// Depth-to-space rearrangement used by EDSR's upsampler: an input of shape
/// (N, C*r*r, H, W) becomes (N, C, H*r, W*r). Channel c*r*r + dy*r + dx of the
/// input maps to output pixel (h*r+dy, w*r+dx) of channel c.
class PixelShuffle final : public Module {
 public:
  explicit PixelShuffle(int scale) : scale_(scale) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  Shape out_shape(const Shape& in) const override;
  std::string name() const override { return "PixelShuffle"; }
  int scale() const noexcept { return scale_; }

 private:
  int scale_;
};

/// Bilinear spatial upsampling by an integer factor (no parameters). The
/// linear map's backward pass is its exact adjoint. Used as the fixed
/// input skip of scale>1 EDSR models so they start as a plain upsampler and
/// learn only the residual detail.
class BilinearUpsample final : public Module {
 public:
  explicit BilinearUpsample(int scale) : scale_(scale) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  Shape out_shape(const Shape& in) const override;
  std::string name() const override { return "BilinearUpsample"; }

 private:
  int scale_;
};

/// Nearest-neighbour spatial upsampling by an integer factor.
class UpsampleNearest final : public Module {
 public:
  explicit UpsampleNearest(int scale) : scale_(scale) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  Shape out_shape(const Shape& in) const override;
  std::string name() const override { return "UpsampleNearest"; }

 private:
  int scale_;
};

/// Flattens NCHW to (N, C*H*W); backward restores the cached shape.
class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  Shape out_shape(const Shape& in) const override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int> cached_shape_;
};

/// Reshapes (N, C*H*W) to (N, C, H, W) with fixed C/H/W; the inverse of
/// Flatten, used on the VAE decoder path.
class Reshape4 final : public Module {
 public:
  Reshape4(int c, int h, int w) : c_(c), h_(h), w_(w) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  Shape out_shape(const Shape& in) const override;
  std::string name() const override { return "Reshape4"; }

 private:
  int c_, h_, w_;
};

}  // namespace dcsr::nn
