#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"
#include "util/serialize.hpp"

namespace dcsr::nn {

/// Serialises a model's parameters (shapes + float32 payload) into the
/// portable binary format downloads are accounted in. The byte count returned
/// by serialized_size() is exactly what the streaming simulator charges to
/// the network when a client fetches a model.
void save_params(Module& model, ByteWriter& out);

/// Restores parameters in-place; the module must have an identical topology
/// to the one that was saved. Throws on shape mismatch or truncation.
void load_params(Module& model, ByteReader& in);

/// Size in bytes of the serialised form, without materialising it twice.
std::uint64_t serialized_size(Module& model);

/// Copies parameter values from src into dst (identical topologies). Used to
/// give micro models identical initial weights in the Fig. 11 memorisation
/// experiment.
void copy_params(Module& src, Module& dst);

/// Half-precision variants: weights are stored as IEEE-754 binary16,
/// halving every model download. SR weights tolerate fp16 easily (relative
/// error ~1e-3), so this is the natural first lever on dcSR's model-transfer
/// bytes beyond making the models smaller.
void save_params_fp16(Module& model, ByteWriter& out);
void load_params_fp16(Module& model, ByteReader& in);
std::uint64_t serialized_size_fp16(Module& model);

/// Scalar float <-> binary16 conversions (round-to-nearest-even on encode),
/// exposed for tests.
std::uint16_t float_to_half(float v) noexcept;
float half_to_float(std::uint16_t h) noexcept;

}  // namespace dcsr::nn
