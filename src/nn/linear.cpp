#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"

namespace dcsr::nn {

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::randn({out_features, in_features}, rng,
                            std::sqrt(2.0f / static_cast<float>(in_features)))),
      bias_(Tensor({out_features, 1})) {}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_features_)
    throw std::invalid_argument("Linear: bad input shape " + x.shape_str());
  cached_input_ = x;
  return infer(x);
}

Tensor Linear::infer(const Tensor& x) const {
  Tensor out;
  infer_into(x, out, Workspace::local());
  return out;
}

Shape Linear::out_shape(const Shape& in) const {
  if (in.size() != 2 || in[1] != in_features_)
    throw std::invalid_argument("Linear::out_shape: bad input shape");
  return {in[0], out_features_};
}

void Linear::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  (void)ws;  // x * W^T writes straight into `out`; no intermediates needed
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    AllocAllowScope allow;  // error path may run under a hot-path guard
    throw std::invalid_argument("Linear: bad input shape " + x.shape_str());
  }
  HotPathGuard alloc_guard("nn/linear.cpp:Linear::infer_into");
  matmul_nt_into(x, weight_.value, out);  // N x out
  const int N = x.dim(0);
  for (int n = 0; n < N; ++n)
    for (int o = 0; o < out_features_; ++o)
      out.at(n, o) += bias_.value[static_cast<std::size_t>(o)];
  FiniteCheckGuard{*this, out};
}

Tensor Linear::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  if (x.empty()) throw std::logic_error("Linear::backward before forward");
  // dW = dY^T * X ; db = colsum(dY) ; dX = dY * W.
  weight_.grad.add_(matmul_tn(grad_out, x));
  const int N = x.dim(0);
  for (int n = 0; n < N; ++n)
    for (int o = 0; o < out_features_; ++o)
      bias_.grad[static_cast<std::size_t>(o)] += grad_out.at(n, o);
  return matmul(grad_out, weight_.value);
}

}  // namespace dcsr::nn
