#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/module.hpp"

namespace dcsr::nn {

/// Ordered container of layers; forward chains them, backward runs in
/// reverse. Owns its children.
class Sequential final : public Module {
 public:
  Sequential() = default;

  void add(ModulePtr m) { layers_.push_back(std::move(m)); }

  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    layers_.push_back(std::move(m));
    return ref;
  }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  Shape out_shape(const Shape& in) const override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Sequential"; }
  void set_training(bool training) override {
    Module::set_training(training);
    for (auto& m : layers_) m->set_training(training);
  }

  std::size_t layer_count() const noexcept { return layers_.size(); }
  Module& layer(std::size_t i) noexcept { return *layers_[i]; }

 private:
  std::vector<ModulePtr> layers_;
};

}  // namespace dcsr::nn
