#include "nn/optim.hpp"

#include <cmath>

namespace dcsr::nn {

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& vel = velocity_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      vel[j] = static_cast<float>(momentum_) * vel[j] - static_cast<float>(lr_) * p.grad[j];
      p.value[j] += vel[j];
    }
  }
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;

  // Global-norm clipping (applied as a scale factor, preserving direction).
  double scale = 1.0;
  double norm2 = 0.0;
  for (Param* p : params_)
    for (std::size_t j = 0; j < p->grad.size(); ++j)
      norm2 += static_cast<double>(p->grad[j]) * static_cast<double>(p->grad[j]);
  last_grad_norm_ = std::sqrt(norm2);
  if (grad_clip_ > 0.0 && last_grad_norm_ > grad_clip_)
    scale = grad_clip_ / last_grad_norm_;

  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const double g = p.grad[j] * scale;
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * g * g);
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      if (weight_decay_ > 0.0)
        p.value[j] -= static_cast<float>(lr_ * weight_decay_ * p.value[j]);
      p.value[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace dcsr::nn
