#pragma once

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/module.hpp"

namespace dcsr::nn {

/// EDSR residual block: conv3x3 -> ReLU -> conv3x3, scaled and added to the
/// input (Lim et al., CVPRW'17). EDSR drops batch-norm entirely, which is
/// also what makes the block cheap enough for dcSR's micro models.
class ResBlock final : public Module {
 public:
  ResBlock(int channels, Rng& rng, float res_scale = 1.0f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  std::vector<Param*> params() override;
  std::string name() const override { return "ResBlock"; }
  void set_training(bool training) override {
    Module::set_training(training);
    conv1_.set_training(training);
    conv2_.set_training(training);
  }

  float res_scale() const noexcept { return res_scale_; }

 private:
  Conv2d conv1_;
  ReLU relu_;
  Conv2d conv2_;
  float res_scale_;
};

}  // namespace dcsr::nn
