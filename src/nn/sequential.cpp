#include "nn/sequential.hpp"

namespace dcsr::nn {

Tensor Sequential::forward(const Tensor& x) {
  Tensor y = x;
  for (auto& layer : layers_) y = layer->forward(y);
  return y;
}

Tensor Sequential::infer(const Tensor& x) const {
  Tensor y = x;
  for (const auto& layer : layers_) y = layer->infer(y);
  return y;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> ps;
  for (auto& layer : layers_) {
    const auto child = layer->params();
    ps.insert(ps.end(), child.begin(), child.end());
  }
  return ps;
}

}  // namespace dcsr::nn
