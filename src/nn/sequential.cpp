#include "nn/sequential.hpp"

#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"

namespace dcsr::nn {

Tensor Sequential::forward(const Tensor& x) {
  Tensor y = x;
  for (auto& layer : layers_) {
    y = layer->forward(y);
    FiniteCheckGuard{*layer, y};
  }
  return y;
}

Tensor Sequential::infer(const Tensor& x) const {
  Tensor out;
  infer_into(x, out, Workspace::local());
  return out;
}

Shape Sequential::out_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& layer : layers_) s = layer->out_shape(s);
  return s;
}

void Sequential::infer_into(const Tensor& x, Tensor& out, Workspace& ws) const {
  if (layers_.empty()) {
    out = x;
    return;
  }
  if (layers_.size() == 1) {
    layers_[0]->infer_into(x, out, ws);
    return;
  }
  // Ping-pong the chain through two workspace checkouts: layer i reads the
  // previous layer's buffer and writes the other one, and the slot freed two
  // layers back goes home before each acquire, so at most two intermediates
  // are ever outstanding no matter how deep the stack is. The last layer
  // writes straight into the caller's `out`.
  HotPathGuard alloc_guard("nn/sequential.cpp:Sequential::infer_into");
  WorkspaceTensor bufs[2];
  int slot = 0;
  const Tensor* cur = &x;
  Shape shape = x.shape();
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    shape = layers_[i]->out_shape(shape);
    bufs[slot] = WorkspaceTensor();  // release before acquiring, not after
    WorkspaceTensor next = ws.acquire(shape);
    layers_[i]->infer_into(*cur, *next, ws);
    bufs[slot] = std::move(next);
    cur = &*bufs[slot];
    slot ^= 1;
  }
  layers_.back()->infer_into(*cur, out, ws);
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> ps;
  for (auto& layer : layers_) {
    const auto child = layer->params();
    ps.insert(ps.end(), child.begin(), child.end());
  }
  return ps;
}

}  // namespace dcsr::nn
