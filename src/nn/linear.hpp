#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace dcsr::nn {

/// Fully connected layer over (N x in_features) inputs.
/// Weight layout is (out_features x in_features); forward is x * W^T + b.
class Linear final : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  void infer_into(const Tensor& x, Tensor& out, Workspace& ws) const override;
  Shape out_shape(const Shape& in) const override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  int in_features() const noexcept { return in_features_; }
  int out_features() const noexcept { return out_features_; }

 private:
  int in_features_, out_features_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace dcsr::nn
