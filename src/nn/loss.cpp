#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace dcsr::nn {

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  if (!pred.same_shape(target))
    throw std::invalid_argument("mse_loss: shape mismatch");
  LossResult r;
  r.grad = Tensor(pred.shape());
  const auto n = static_cast<double>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    acc += static_cast<double>(d) * static_cast<double>(d);
    r.grad[i] = 2.0f * d / static_cast<float>(n);
  }
  r.value = acc / n;
  return r;
}

LossResult l1_loss(const Tensor& pred, const Tensor& target) {
  if (!pred.same_shape(target))
    throw std::invalid_argument("l1_loss: shape mismatch");
  LossResult r;
  r.grad = Tensor(pred.shape());
  const auto n = static_cast<double>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    acc += std::abs(static_cast<double>(d));
    r.grad[i] = (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f)) /
                static_cast<float>(n);
  }
  r.value = acc / n;
  return r;
}

KlResult kl_divergence(const Tensor& mu, const Tensor& logvar) {
  if (!mu.same_shape(logvar))
    throw std::invalid_argument("kl_divergence: shape mismatch");
  if (mu.rank() != 2)
    throw std::invalid_argument("kl_divergence: expected (batch x latent)");
  KlResult r;
  r.grad_mu = Tensor(mu.shape());
  r.grad_logvar = Tensor(mu.shape());
  const auto batch = static_cast<double>(mu.dim(0));
  double acc = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double m = mu[i];
    const double lv = logvar[i];
    const double ev = std::exp(lv);
    acc += -0.5 * (1.0 + lv - m * m - ev);
    r.grad_mu[i] = static_cast<float>(m / batch);
    r.grad_logvar[i] = static_cast<float>(0.5 * (ev - 1.0) / batch);
  }
  r.value = acc / batch;
  return r;
}

}  // namespace dcsr::nn
