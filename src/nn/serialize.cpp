#include "nn/serialize.hpp"

#include <stdexcept>

namespace dcsr::nn {

namespace {
constexpr std::uint32_t kMagic = 0x64635352;      // "dcSR"
constexpr std::uint32_t kMagicFp16 = 0x64635348;  // "dcSH"
}

void save_params(Module& model, ByteWriter& out) {
  const auto params = model.params();
  out.write_u32(kMagic);
  out.write_u32(static_cast<std::uint32_t>(params.size()));
  for (Param* p : params) {
    const auto& shape = p->value.shape();
    out.write_u8(static_cast<std::uint8_t>(shape.size()));
    for (int d : shape) out.write_u32(static_cast<std::uint32_t>(d));
    out.write_f32_span(p->value.data(), p->value.size());
  }
}

void load_params(Module& model, ByteReader& in) {
  if (in.read_u32() != kMagic)
    throw std::invalid_argument("load_params: bad magic");
  const auto params = model.params();
  const auto n = in.read_u32();
  if (n != params.size())
    throw std::invalid_argument("load_params: parameter count mismatch");
  for (Param* p : params) {
    const int rank = in.read_u8();
    std::vector<int> shape(static_cast<std::size_t>(rank));
    for (auto& d : shape) d = static_cast<int>(in.read_u32());
    if (shape != p->value.shape())
      throw std::invalid_argument("load_params: shape mismatch");
    in.read_f32_span(p->value.data(), p->value.size());
  }
}

std::uint64_t serialized_size(Module& model) {
  std::uint64_t bytes = 8;  // magic + count
  for (Param* p : model.params()) {
    bytes += 1 + 4 * p->value.shape().size();  // rank byte + dims
    bytes += 4 * static_cast<std::uint64_t>(p->value.size());
  }
  return bytes;
}

std::uint16_t float_to_half(float v) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((bits >> 23) & 0xff) - 127;
  std::uint32_t mant = bits & 0x7fffffu;

  if (exp == 128) return static_cast<std::uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0));
  if (exp > 15) return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow -> inf
  if (exp >= -14) {
    // Normal half; round mantissa to 10 bits, nearest-even.
    std::uint32_t half_mant = mant >> 13;
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) ++half_mant;
    std::uint32_t half_exp = static_cast<std::uint32_t>(exp + 15);
    if (half_mant == 0x400u) {  // mantissa rounded over: bump exponent
      half_mant = 0;
      ++half_exp;
      if (half_exp >= 31) return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    return static_cast<std::uint16_t>(sign | (half_exp << 10) | half_mant);
  }
  if (exp >= -24) {
    // Subnormal half: value = mant24 * 2^(exp-23) = half_mant * 2^-24,
    // so half_mant = mant24 >> (-exp - 1).
    mant |= 0x800000u;  // implicit leading 1
    const int shift = -exp - 1;
    std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half_point = 1u << (shift - 1);
    if (rem > half_point || (rem == half_point && (half_mant & 1u))) ++half_mant;
    if (half_mant >= 0x400u) return static_cast<std::uint16_t>(sign | (1u << 10));
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
}

float half_to_float(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // zero
    } else {
      // Subnormal: normalise.
      int e = -1;
      std::uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      bits = sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 |
             ((m & 0x3ffu) << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void save_params_fp16(Module& model, ByteWriter& out) {
  const auto params = model.params();
  out.write_u32(kMagicFp16);
  out.write_u32(static_cast<std::uint32_t>(params.size()));
  for (Param* p : params) {
    const auto& shape = p->value.shape();
    out.write_u8(static_cast<std::uint8_t>(shape.size()));
    for (int d : shape) out.write_u32(static_cast<std::uint32_t>(d));
    for (std::size_t i = 0; i < p->value.size(); ++i)
      out.write_u16(float_to_half(p->value[i]));
  }
}

void load_params_fp16(Module& model, ByteReader& in) {
  if (in.read_u32() != kMagicFp16)
    throw std::invalid_argument("load_params_fp16: bad magic");
  const auto params = model.params();
  const auto n = in.read_u32();
  if (n != params.size())
    throw std::invalid_argument("load_params_fp16: parameter count mismatch");
  for (Param* p : params) {
    const int rank = in.read_u8();
    std::vector<int> shape(static_cast<std::size_t>(rank));
    for (auto& d : shape) d = static_cast<int>(in.read_u32());
    if (shape != p->value.shape())
      throw std::invalid_argument("load_params_fp16: shape mismatch");
    for (std::size_t i = 0; i < p->value.size(); ++i)
      p->value[i] = half_to_float(in.read_u16());
  }
}

std::uint64_t serialized_size_fp16(Module& model) {
  std::uint64_t bytes = 8;
  for (Param* p : model.params()) {
    bytes += 1 + 4 * p->value.shape().size();
    bytes += 2 * static_cast<std::uint64_t>(p->value.size());
  }
  return bytes;
}

void copy_params(Module& src, Module& dst) {
  const auto a = src.params();
  const auto b = dst.params();
  if (a.size() != b.size())
    throw std::invalid_argument("copy_params: parameter count mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->value.same_shape(b[i]->value))
      throw std::invalid_argument("copy_params: shape mismatch");
    b[i]->value = a[i]->value;
  }
}

}  // namespace dcsr::nn
