// Scalar reference kernels: the bit-exact oracle every SIMD backend is
// pinned against. These are the historical inner loops of dct.cpp,
// quant.cpp, motion.cpp, convert.cpp and tensor/ops.cpp, moved here verbatim
// (raw-pointer arguments replacing the wrapper types) so the dispatch table
// has a scalar entry for every family. This TU is compiled with the global
// flags only — no per-file ISA options — so its codegen semantics are
// exactly what those call sites historically produced.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "simd/kernels.hpp"
#include "simd/kernels_inline.hpp"

namespace dcsr::simd {

bool scalar_fma_contraction() noexcept {
#if defined(__FMA__)
  // GCC's default -ffp-contract=fast fuses the oracle's `acc += a * b`
  // statements into FMAs whenever the target has them. Backends that mirror
  // those fused chains with FMA intrinsics are only bit-exact against the
  // oracle when the oracle itself was contracted, so the dispatcher gates
  // the float-accumulating families on this.
  return true;
#else
  return false;
#endif
}

namespace {

// Precomputed orthonormal DCT-II basis: kBasis[k*8+n] = c(k) *
// cos((2n+1)k*pi/16) — the same table dct.cpp historically built.
struct DctBasis {
  float m[64];
  float mt[64];
  DctBasis() noexcept {
    const double pi = 3.14159265358979323846;
    for (int k = 0; k < 8; ++k) {
      const double ck = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n)
        m[k * 8 + n] = static_cast<float>(
            ck * std::cos((2.0 * n + 1.0) * k * pi / 16.0));
    }
    for (int k = 0; k < 8; ++k)
      for (int n = 0; n < 8; ++n) mt[n * 8 + k] = m[k * 8 + n];
  }
};
const DctBasis kB;

void dct8x8_scalar(const float* in, float* out) {
  // Separable: rows then columns.
  float tmp[64];
  for (int y = 0; y < 8; ++y)
    for (int k = 0; k < 8; ++k) {
      float acc = 0.0f;
      for (int n = 0; n < 8; ++n) acc += kB.m[k * 8 + n] * in[y * 8 + n];
      tmp[y * 8 + k] = acc;
    }
  for (int x = 0; x < 8; ++x)
    for (int k = 0; k < 8; ++k) {
      float acc = 0.0f;
      for (int n = 0; n < 8; ++n) acc += kB.m[k * 8 + n] * tmp[n * 8 + x];
      out[k * 8 + x] = acc;
    }
}

void idct8x8_scalar(const float* in, float* out) {
  float tmp[64];
  for (int x = 0; x < 8; ++x)
    for (int n = 0; n < 8; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) acc += kB.m[k * 8 + n] * in[k * 8 + x];
      tmp[n * 8 + x] = acc;
    }
  for (int y = 0; y < 8; ++y)
    for (int n = 0; n < 8; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) acc += kB.m[k * 8 + n] * tmp[y * 8 + k];
      out[y * 8 + n] = acc;
    }
}

void dequant_idct8x8_scalar(const std::int32_t* levels, const float* steps,
                            float* out) {
  // Same op sequence as dequantize_block followed by idct8x8 — the fusion
  // only saves the intermediate Block8 round-trip, not any float op.
  float coeffs[64];
  for (int i = 0; i < 64; ++i)
    coeffs[i] = static_cast<float>(levels[i]) * steps[i];
  idct8x8_scalar(coeffs, out);
}

void quantize_block_scalar(const float* coeffs, const float* steps,
                           std::int32_t* levels) {
  for (int i = 0; i < 64; ++i)
    levels[i] = static_cast<std::int32_t>(std::lround(coeffs[i] / steps[i]));
}

void dequantize_block_scalar(const std::int32_t* levels, const float* steps,
                             float* coeffs) {
  for (int i = 0; i < 64; ++i)
    coeffs[i] = static_cast<float>(levels[i]) * steps[i];
}

constexpr int kMR = 6;   // register tile rows
constexpr int kNR = 16;  // register tile columns (two 8-lane vectors)

#if defined(__GNUC__) && !defined(DCSR_NO_VECTOR_EXT)

// 8-lane float vector (one AVX/NEON-pair register when available; GCC/Clang
// lower it to whatever the target has). Named vector variables — unlike a
// local float[4][16] — are reliably register-allocated, which is the whole
// game: the C tile must live in registers across the k loop.
typedef float Vec8 __attribute__((vector_size(32)));

inline Vec8 load8(const float* p) {
  Vec8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store8(float* p, Vec8 v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline Vec8 splat8(float x) { return Vec8{x, x, x, x, x, x, x, x}; }

// Full kMR x kNR tile held in registers across the k block: 12 accumulator
// vectors plus two B vectors and one broadcast fit the 16 AVX2 registers.
void gemm_tile_6x16_scalar(const float* A, std::size_t a_rs, std::size_t a_ks,
                           const float* B, std::size_t ldb, float* C,
                           std::size_t ldc, int kn) {
  Vec8 acc[kMR][2];
  for (int r = 0; r < kMR; ++r) {
    acc[r][0] = load8(C + r * ldc);
    acc[r][1] = load8(C + r * ldc + 8);
  }
  for (int kk = 0; kk < kn; ++kk) {
    const float* b = B + static_cast<std::size_t>(kk) * ldb;
    const Vec8 b0 = load8(b), b1 = load8(b + 8);
    const std::size_t ak = static_cast<std::size_t>(kk) * a_ks;
    const Vec8 a0 = splat8(A[ak]);
    acc[0][0] += a0 * b0;
    acc[0][1] += a0 * b1;
    const Vec8 a1 = splat8(A[a_rs + ak]);
    acc[1][0] += a1 * b0;
    acc[1][1] += a1 * b1;
    const Vec8 a2 = splat8(A[2 * a_rs + ak]);
    acc[2][0] += a2 * b0;
    acc[2][1] += a2 * b1;
    const Vec8 a3 = splat8(A[3 * a_rs + ak]);
    acc[3][0] += a3 * b0;
    acc[3][1] += a3 * b1;
    const Vec8 a4 = splat8(A[4 * a_rs + ak]);
    acc[4][0] += a4 * b0;
    acc[4][1] += a4 * b1;
    const Vec8 a5 = splat8(A[5 * a_rs + ak]);
    acc[5][0] += a5 * b0;
    acc[5][1] += a5 * b1;
  }
  for (int r = 0; r < kMR; ++r) {
    store8(C + r * ldc, acc[r][0]);
    store8(C + r * ldc + 8, acc[r][1]);
  }
}

#else

// Portable fallback: same tile, array accumulators.
void gemm_tile_6x16_scalar(const float* A, std::size_t a_rs, std::size_t a_ks,
                           const float* B, std::size_t ldb, float* C,
                           std::size_t ldc, int kn) {
  float acc[kMR][kNR];
  for (int r = 0; r < kMR; ++r)
    for (int c = 0; c < kNR; ++c) acc[r][c] = C[r * ldc + c];
  for (int kk = 0; kk < kn; ++kk) {
    const float* b = B + static_cast<std::size_t>(kk) * ldb;
    for (int r = 0; r < kMR; ++r) {
      const float a = A[r * a_rs + static_cast<std::size_t>(kk) * a_ks];
      for (int c = 0; c < kNR; ++c) acc[r][c] += a * b[c];
    }
  }
  for (int r = 0; r < kMR; ++r)
    for (int c = 0; c < kNR; ++c) C[r * ldc + c] = acc[r][c];
}

#endif

void im2col_row_scalar(const float* src, int H, int W, int oh, int ow,
                       int stride, int pad, int ky, int kx, float* dst) {
  for (int y = 0; y < oh; ++y) {
    const int sy = y * stride + ky - pad;
    for (int x = 0; x < ow; ++x) {
      const int sx = x * stride + kx - pad;
      dst[y * ow + x] =
          (sy >= 0 && sy < H && sx >= 0 && sx < W) ? src[sy * W + sx] : 0.0f;
    }
  }
}

void yuv_to_rgb_row_scalar(const float* yrow, const float* u0, const float* u1,
                           const float* v0, const float* v1, float fy, int W,
                           int cw, float* r, float* g, float* b) {
  for (int x = 0; x < W; ++x) yuv_rgb_pixel(yrow, u0, u1, v0, v1, fy, cw, x, r, g, b);
}

void rgb_to_yuv_row_scalar(const float* r, const float* g, const float* b,
                           int W, float* yrow, float* uf, float* vf) {
  for (int x = 0; x < W; ++x) rgb_yuv_pixel(r, g, b, x, yrow, uf, vf);
}

void chroma_box_row_scalar(const float* f0, const float* f1, int w,
                           float* out) {
  for (int x = 0; x < w / 2; ++x)
    out[x] = 0.25f * (f0[2 * x] + f0[2 * x + 1] + f1[2 * x] + f1[2 * x + 1]);
}

void mc_copy_block_scalar(const float* ref, float* dst, int w, int h, int bx,
                          int by, int size, int mvx, int mvy) {
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      const int px = bx + x, py = by + y;
      if (px < w && py < h)
        dst[py * w + px] =
            ref[clamp_idx(py + mvy, h) * w + clamp_idx(px + mvx, w)];
    }
}

void mc_bi_block_scalar(const float* ref0, int mv0x, int mv0y,
                        const float* ref1, int mv1x, int mv1y, float* dst,
                        int w, int h, int bx, int by, int size) {
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      const int px = bx + x, py = by + y;
      if (px < w && py < h)
        dst[py * w + px] =
            0.5f * (ref0[clamp_idx(py + mv0y, h) * w + clamp_idx(px + mv0x, w)] +
                    ref1[clamp_idx(py + mv1y, h) * w + clamp_idx(px + mv1x, w)]);
    }
}

KernelTable make_scalar_table() noexcept {
  KernelTable t{};
  t.dct8x8 = &dct8x8_scalar;
  t.idct8x8 = &idct8x8_scalar;
  t.dequant_idct8x8 = &dequant_idct8x8_scalar;
  t.quantize_block = &quantize_block_scalar;
  t.dequantize_block = &dequantize_block_scalar;
  t.gemm_tile_6x16 = &gemm_tile_6x16_scalar;
  t.im2col_row = &im2col_row_scalar;
  t.yuv_to_rgb_row = &yuv_to_rgb_row_scalar;
  t.rgb_to_yuv_row = &rgb_to_yuv_row_scalar;
  t.chroma_box_row = &chroma_box_row_scalar;
  t.mc_copy_block = &mc_copy_block_scalar;
  t.mc_bi_block = &mc_bi_block_scalar;
  t.id = Backend::kScalar;
  for (int f = 0; f < kNumFamilies; ++f) t.origin[f] = Backend::kScalar;
  return t;
}

}  // namespace

const KernelTable& scalar_table() noexcept {
  static const KernelTable t = make_scalar_table();
  return t;
}

const float* dct_basis() noexcept { return kB.m; }
const float* dct_basis_t() noexcept { return kB.mt; }

}  // namespace dcsr::simd
