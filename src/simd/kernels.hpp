#pragma once

#include <cstddef>
#include <cstdint>

namespace dcsr::simd {

enum class Backend : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};
inline constexpr int kNumBackends = 4;

/// Kernel families, for per-family provenance in report(). A backend may
/// override any subset; unoverridden families inherit the scalar oracle (or
/// the next-lower backend's override — tables are layered scalar → sse2 →
/// avx2).
enum Family : int {
  kFamDct = 0,
  kFamIdct,
  kFamDequantIdct,
  kFamQuant,
  kFamDequant,
  kFamGemm,
  kFamIm2col,
  kFamYuvToRgb,
  kFamRgbToYuv,
  kFamMc,
  kNumFamilies,
};
const char* family_name(int family) noexcept;

/// Function-pointer table for the dispatched inner loops. Raw-pointer
/// signatures only: src/simd sits below tensor/codec/image in the layering
/// and must not see their types. Callers keep ownership of all buffers and
/// guarantee the documented extents; kernels never allocate.
///
/// Bit-exactness contract per family (enforced by tests/simd_test.cpp):
/// every entry must produce byte-identical output to the scalar oracle for
/// all finite inputs in the documented domain. For the float-accumulating
/// families (dct/idct/dequant_idct/gemm/yuv) the oracle's semantics on this
/// toolchain are fused multiply-add chains in ascending index order (GCC
/// contracts `acc += a*b` at -O3), so overriding backends must use FMA
/// intrinsics in the same order — which is why SSE2 (no FMA) only overrides
/// the families whose math is exact without it (quant/dequant/im2col/mc).
struct KernelTable {
  // 8x8 forward / inverse DCT on raster-order 64-float blocks. in/out must
  // not alias.
  void (*dct8x8)(const float* in, float* out);
  void (*idct8x8)(const float* in, float* out);

  // Fused dequantise + inverse DCT: out = idct8x8(levels[i] * steps[i]).
  // The decoder's reconstruct_block hot loop.
  void (*dequant_idct8x8)(const std::int32_t* levels, const float* steps,
                          float* out);

  // levels[i] = lround(coeffs[i] / steps[i]) with exact lround (round half
  // away from zero) semantics; |coeffs[i]/steps[i]| must stay < 2^31.
  void (*quantize_block)(const float* coeffs, const float* steps,
                         std::int32_t* levels);
  // coeffs[i] = float(levels[i]) * steps[i].
  void (*dequantize_block)(const std::int32_t* levels, const float* steps,
                           float* coeffs);

  // GEMM register tile: C (6 rows x 16 cols, row stride ldc) +=
  // A-panel (6 x kn, element stride a_ks, row stride a_rs) * B-panel
  // (kn x 16, row stride ldb). The full-tile fast path of gemm_strided in
  // tensor/ops.cpp; edge tiles stay scalar there.
  void (*gemm_tile_6x16)(const float* a, std::size_t a_rs, std::size_t a_ks,
                         const float* b, std::size_t ldb, float* c,
                         std::size_t ldc, int kn);

  // One im2col output row: dst[y*ow + x] = src[sy*w + sx] where
  // sy = y*stride + ky - pad, sx = x*stride + kx - pad, else 0 when out of
  // bounds. src is one (n, c) input plane of extent h x w; dst has
  // oh*ow floats.
  void (*im2col_row)(const float* src, int h, int w, int oh, int ow,
                     int stride, int pad, int ky, int kx, float* dst);

  // One output row of YUV420 -> RGB with bilinear chroma upsampling.
  // yrow: w lumas; u0/u1 (v0/v1): the two vertically-neighbouring chroma
  // rows already selected and clamped by the caller, cw = (w+1)/2 samples
  // each; fy: vertical interpolation weight toward u1/v1.
  void (*yuv_to_rgb_row)(const float* yrow, const float* u0, const float* u1,
                         const float* v0, const float* v1, float fy, int w,
                         int cw, float* r, float* g, float* b);

  // One row of RGB -> luma + full-resolution chroma offsets
  // (uf/vf in [0,1], 0.5 = neutral), w pixels.
  void (*rgb_to_yuv_row)(const float* r, const float* g, const float* b,
                         int w, float* yrow, float* uf, float* vf);
  // 2x2 box downsample of two full-resolution chroma rows (each w floats,
  // w even) into one cw = w/2 row: out[x] = 0.25 * (f0[2x] + f0[2x+1] +
  // f1[2x] + f1[2x+1]) in the scalar oracle's association order.
  void (*chroma_box_row)(const float* f0, const float* f1, int w, float* out);

  // Motion compensation: copy (or average, for bidirectional) a size x size
  // block from reference plane(s) of extent w x h at displaced, edge-clamped
  // coordinates into the same-extent dst plane at (bx, by). Blocks may
  // overhang the right/bottom frame edge; writes are clipped to the plane.
  void (*mc_copy_block)(const float* ref, float* dst, int w, int h, int bx,
                        int by, int size, int mvx, int mvy);
  void (*mc_bi_block)(const float* ref0, int mv0x, int mv0y, const float* ref1,
                      int mv1x, int mv1y, float* dst, int w, int h, int bx,
                      int by, int size);

  /// Backend this table dispatches as (the topmost populate layer applied).
  Backend id;
  Backend origin[kNumFamilies];
};

/// The scalar reference oracle (always valid, every entry non-null).
const KernelTable& scalar_table() noexcept;

/// Whether the oracle TU was compiled with FMA contraction available
/// (__FMA__), i.e. whether its `acc += a * b` chains are fused. Backends
/// mirror those chains with FMA intrinsics, so the dispatcher only installs
/// a backend's FMA-dependent families (dct/idct/dequant_idct/gemm/yuv) when
/// this is true; the exact families (quant/dequant/im2col/mc) are
/// unconditional.
bool scalar_fma_contraction() noexcept;

/// Backend TUs overlay their entries onto a copy of a lower table. Each
/// populate_* is a no-op when the TU was compiled for a different target
/// architecture, and returns whether it installed anything.
bool populate_sse2(KernelTable& t) noexcept;
bool populate_avx2(KernelTable& t) noexcept;
bool populate_neon(KernelTable& t) noexcept;

/// Shared 8x8 DCT-II basis, computed once: basis()[k*8+n] = ck *
/// cos((2n+1) k pi / 16) with c0 = sqrt(1/8), ck>0 = sqrt(2/8) — identical
/// to the decoder's historical DctBasis. basis_t() is its transpose
/// (basis_t()[n*8+k] == basis()[k*8+n]), kept contiguous for kernels that
/// broadcast along the other axis.
const float* dct_basis() noexcept;
const float* dct_basis_t() noexcept;

}  // namespace dcsr::simd
