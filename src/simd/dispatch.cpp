#include "simd/dispatch.hpp"

#include <sstream>

#include "util/alloc_check.hpp"
#include "util/env.hpp"

namespace dcsr::simd {

namespace {

bool cpu_supports_sse2() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

bool cpu_supports_avx2_fma() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  // The AVX2 backend leans on vfmadd for the contracted families, so it
  // needs both feature bits (paired on every real AVX2 part, but checking
  // is free).
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_neon() noexcept {
#if defined(__aarch64__)
  return true;  // NEON is architectural on AArch64.
#else
  return false;
#endif
}

// All backend tables, built once. Tables are layered: sse2 overlays the
// scalar oracle, avx2 overlays sse2 (so a family avx2 doesn't override
// keeps the best lower implementation). Building a table never executes
// that backend's instructions — populate_* only stores function pointers —
// so constructing unsupported tables is safe; host gating happens in
// table_for().
struct Tables {
  KernelTable scalar, sse2, avx2, neon;
  bool compiled_sse2, compiled_avx2, compiled_neon;
  Tables() noexcept
      : scalar(scalar_table()), sse2(scalar), neon(scalar) {
    compiled_sse2 = populate_sse2(sse2);
    avx2 = sse2;
    compiled_avx2 = populate_avx2(avx2);
    compiled_neon = populate_neon(neon);
  }
};

const Tables& tables() noexcept {
  static const Tables t;
  return t;
}

const KernelTable* resolve_from_env() {
  // One-time lazy resolution, possibly triggered from a guarded kernel's
  // first call: the parse (and any diagnostic) is sanctioned warm-up.
  AllocAllowScope allow;
  const char* env = env_raw("DCSR_SIMD");
  if (env != nullptr && *env != '\0') {
    const Backend b = parse_backend(env);
    const KernelTable* t = table_for(b);
    if (t == nullptr) {
      std::ostringstream os;
      os << "DCSR_SIMD=" << backend_name(b)
         << ": backend not supported on this host";
      throw SimdDispatchError(os.str());
    }
    return t;
  }
  // Best supported backend, avx2 > sse2 > neon > scalar.
  if (const KernelTable* t = table_for(Backend::kAvx2)) return t;
  if (const KernelTable* t = table_for(Backend::kSse2)) return t;
  if (const KernelTable* t = table_for(Backend::kNeon)) return t;
  return &tables().scalar;
}

// The active-table slot. Resolved lazily (so the error for a bad DCSR_SIMD
// surfaces on first kernel use, catchable by CLI mains) and swappable by
// ScopedBackendForTest from a quiescent main thread.
const KernelTable*& active_slot() {
  static const KernelTable* slot = resolve_from_env();
  return slot;
}

}  // namespace

const char* family_name(int family) noexcept {
  switch (family) {
    case kFamDct: return "dct";
    case kFamIdct: return "idct";
    case kFamDequantIdct: return "dequant_idct";
    case kFamQuant: return "quant";
    case kFamDequant: return "dequant";
    case kFamGemm: return "gemm";
    case kFamIm2col: return "im2col";
    case kFamYuvToRgb: return "yuv2rgb";
    case kFamRgbToYuv: return "rgb2yuv";
    case kFamMc: return "mc";
    default: return "?";
  }
}

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kSse2: return "sse2";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "?";
}

Backend parse_backend(const std::string& value) {
  for (const Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2,
                          Backend::kNeon})
    if (value == backend_name(b)) return b;
  throw SimdDispatchError("DCSR_SIMD: unknown backend '" + value +
                          "' (expected scalar|sse2|avx2|neon)");
}

bool host_supports(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar: return true;
    case Backend::kSse2: return tables().compiled_sse2 && cpu_supports_sse2();
    case Backend::kAvx2:
      return tables().compiled_avx2 && cpu_supports_avx2_fma();
    case Backend::kNeon: return tables().compiled_neon && cpu_supports_neon();
  }
  return false;
}

const KernelTable* table_for(Backend b) noexcept {
  if (!host_supports(b)) return nullptr;
  switch (b) {
    case Backend::kScalar: return &tables().scalar;
    case Backend::kSse2: return &tables().sse2;
    case Backend::kAvx2: return &tables().avx2;
    case Backend::kNeon: return &tables().neon;
  }
  return nullptr;
}

const KernelTable& active() { return *active_slot(); }

Backend active_backend() { return active().id; }

std::string report() {
  const KernelTable& t = active();
  std::ostringstream os;
  os << "dcsr-simd: backend=" << backend_name(t.id);
  for (int f = 0; f < kNumFamilies; ++f)
    os << ' ' << family_name(f) << '=' << backend_name(t.origin[f]);
  return os.str();
}

ScopedBackendForTest::ScopedBackendForTest(Backend b) : saved_(active_slot()) {
  const KernelTable* t = table_for(b);
  if (t == nullptr)
    throw SimdDispatchError(std::string("ScopedBackendForTest: backend '") +
                            backend_name(b) + "' not supported on this host");
  active_slot() = t;
}

ScopedBackendForTest::~ScopedBackendForTest() { active_slot() = saved_; }

}  // namespace dcsr::simd
