#pragma once

#include <stdexcept>
#include <string>

#include "simd/kernels.hpp"

namespace dcsr::simd {

/// Runtime-dispatched SIMD kernel backends.
///
/// The scalar kernels in kernels_scalar.cpp are the bit-exact reference
/// oracle: every other backend must produce byte-identical outputs for every
/// kernel family it overrides, which is what lets the rest of the tree treat
/// the backend as an invisible implementation detail — the determinism
/// contract (ROADMAP "Threading model") extends to "bit-identical within a
/// backend, every backend pinned against the scalar reference" and, because
/// the pins hold, across backends too. The Simd.* test suite enforces this
/// per backend; tools/run_checks.sh's `simd` leg re-runs the whole tier-1
/// suite once per host-supported backend.
///
/// Selection happens once, on first use:
///   - `DCSR_SIMD=scalar|sse2|avx2|neon` forces a backend. Naming a backend
///     the host cannot run (or an unknown value) throws SimdDispatchError —
///     loud, so perf numbers are never silently attributed to the wrong
///     backend.
///   - Unset: the best backend the host supports (cpuid), avx2 > sse2 >
///     neon > scalar.
///
/// Intrinsics are confined to src/simd/ (lint rule [raw-intrinsics]); all
/// call sites go through active(). Kernels compose with the existing
/// parallel_for_writes claims — they only ever replace the *inner loop* of a
/// chunk, never change what a chunk writes.

/// Thrown when DCSR_SIMD requests a backend the host cannot run or names an
/// unknown backend.
class SimdDispatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Display / env-var name of a backend ("scalar", "sse2", "avx2", "neon").
const char* backend_name(Backend b) noexcept;

/// Parses a DCSR_SIMD value. Throws SimdDispatchError on unknown names; the
/// value must match a backend name exactly (no trailing garbage), mirroring
/// the strict DCSR_THREADS parsing.
Backend parse_backend(const std::string& value);

/// Whether this host can execute the given backend's instructions (cpuid on
/// x86; compile-target checks for NEON). kScalar is always supported.
bool host_supports(Backend b) noexcept;

/// The kernel table for a backend, or nullptr if the host cannot run it.
/// Test surface: lets the Simd.* suite pin every supported backend against
/// the scalar table in one process, regardless of DCSR_SIMD.
const KernelTable* table_for(Backend b) noexcept;

/// The active kernel table. Resolved once from DCSR_SIMD / cpuid on first
/// call; throws SimdDispatchError if DCSR_SIMD names an unknown or
/// unsupported backend.
const KernelTable& active();

/// Backend of the active table.
Backend active_backend();

/// One-line dispatch report naming the active backend and the origin of
/// every kernel family, e.g.
///   "dcsr-simd: backend=avx2 dct=avx2 idct=avx2 ... gemm=avx2"
/// Benches and the tools/ CLIs print this at startup so recorded perf
/// numbers are attributable to a backend.
std::string report();

/// Replaces the active table for the duration of a test (RAII restore).
/// Test-only: swapping while kernels are in flight on other threads is a
/// race; the Simd.* suite swaps only from a quiescent main thread.
class ScopedBackendForTest {
 public:
  explicit ScopedBackendForTest(Backend b);
  ~ScopedBackendForTest();
  ScopedBackendForTest(const ScopedBackendForTest&) = delete;
  ScopedBackendForTest& operator=(const ScopedBackendForTest&) = delete;

 private:
  const KernelTable* saved_;
};

}  // namespace dcsr::simd
