// NEON backend stub. Deliberately installs nothing yet: selecting
// DCSR_SIMD=neon on an AArch64 host dispatches as "neon" but every family
// falls back to the scalar oracle, which GCC already lowers to NEON vector
// code where it can. To add real kernels:
//   1. implement the family here with vld1q/vfmaq intrinsics, mirroring the
//      oracle's accumulation order (AArch64 has FMA, so the FMA-contracted
//      families are expressible exactly — gate them on
//      scalar_fma_contraction() like kernels_avx2.cpp does);
//   2. install it in populate_neon and set t.origin[family];
//   3. the Simd.* suite and the run_checks.sh `simd` leg pick the backend
//      up automatically from host_supports().
#include "simd/kernels.hpp"

#if defined(__aarch64__) || defined(__ARM_NEON)

namespace dcsr::simd {

bool populate_neon(KernelTable& t) noexcept {
  t.id = Backend::kNeon;
  return true;
}

}  // namespace dcsr::simd

#else  // non-ARM: the backend does not exist on this target.

namespace dcsr::simd {
bool populate_neon(KernelTable&) noexcept { return false; }
}  // namespace dcsr::simd

#endif
