#pragma once

// Shared per-element helpers for the kernel TUs (scalar oracle and SIMD
// backends alike). SIMD row kernels vectorise interior lanes and call these
// for edge pixels / tail lanes, so edge handling is the *same inlined code*
// in every backend: GCC's contraction decisions per statement are
// deterministic given FMA availability, and the dispatcher only installs a
// backend's FMA-dependent families when the oracle TU was contracted too
// (scalar_fma_contraction), so the shared helpers compile to the same float
// semantics in every TU that ends up live.
// Internal to src/simd: call sites outside it go through dispatch.hpp.

#include <algorithm>
#include <cmath>

namespace dcsr::simd {

// BT.601 full-range coefficients (image/convert.cpp's historical values).
inline constexpr float kWr = 0.299f;
inline constexpr float kWg = 0.587f;
inline constexpr float kWb = 0.114f;

inline int clamp_idx(int v, int n) noexcept {
  return v < 0 ? 0 : (v >= n ? n - 1 : v);
}

// Bilinear chroma sample at luma pixel x from two pre-selected (vertically
// clamped) chroma rows of width cw. Same expression structure as the
// historical yuv420_to_rgb_into lambda: the horizontal taps are clamped but
// fx comes from the *unclamped* x0, so edge pixels still blend duplicated
// samples exactly as Plane::at_clamped did.
inline float chroma_sample(const float* r0, const float* r1, int cw, int x,
                           float fy) noexcept {
  const float cx = (static_cast<float>(x) - 0.5f) / 2.0f;
  const int x0 = static_cast<int>(std::floor(cx));
  const float fx = cx - static_cast<float>(x0);
  const int xl = clamp_idx(x0, cw);
  const int xr = clamp_idx(x0 + 1, cw);
  const float a = r0[xl] * (1 - fx) + r0[xr] * fx;
  const float b = r1[xl] * (1 - fx) + r1[xr] * fx;
  return a * (1 - fy) + b * fy;
}

// One output pixel of YUV420 -> RGB (bilinear chroma upsample, BT.601).
inline void yuv_rgb_pixel(const float* yrow, const float* u0, const float* u1,
                          const float* v0, const float* v1, float fy, int cw,
                          int x, float* r, float* g, float* b) noexcept {
  const float luma = yrow[x];
  const float u = (chroma_sample(u0, u1, cw, x, fy) - 0.5f) * 2.0f * (1.0f - kWb);
  const float v = (chroma_sample(v0, v1, cw, x, fy) - 0.5f) * 2.0f * (1.0f - kWr);
  const float rr = luma + v;
  const float bb = luma + u;
  const float gg = (luma - kWr * rr - kWb * bb) / kWg;
  r[x] = std::clamp(rr, 0.0f, 1.0f);
  g[x] = std::clamp(gg, 0.0f, 1.0f);
  b[x] = std::clamp(bb, 0.0f, 1.0f);
}

// One pixel of RGB -> luma + full-resolution chroma offsets.
inline void rgb_yuv_pixel(const float* r, const float* g, const float* b,
                          int x, float* yrow, float* uf, float* vf) noexcept {
  const float luma = kWr * r[x] + kWg * g[x] + kWb * b[x];
  yrow[x] = luma;
  uf[x] = 0.5f + 0.5f * (b[x] - luma) / (1.0f - kWb);
  vf[x] = 0.5f + 0.5f * (r[x] - luma) / (1.0f - kWr);
}

}  // namespace dcsr::simd
