// SSE2 backend. SSE2 has no FMA, so it only overrides the families whose
// math is exactly replicable without it: the quantiser (division + an exact
// round-half-away-from-zero emulation), the dequantiser (one multiply per
// lane), im2col row fills and motion-compensation block copies (pure moves,
// plus one add+mul for the bidirectional average — `0.5f * (a + b)` has no
// contractible mul-add, so addps/mulps match the scalar oracle bitwise).
// The FMA-contracted families (DCT/IDCT, GEMM, YUV) inherit the scalar
// oracle, which 64-bit compilers already lower to SSE2 vector code anyway.
//
// This TU is compiled with -msse2 only (see src/simd/CMakeLists.txt); keep
// anything newer out of it.
#include "simd/kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include "simd/kernels_inline.hpp"

namespace dcsr::simd {
namespace {

// levels[i] = lround(coeffs[i] / steps[i]), vectorised with exact lround
// (round half away from zero) semantics for |t| < 2^31:
//   r = trunc(t); f = t - r (exact: f is the fraction already stored in t's
//   mantissa); |f| >= 0.5 steps r one unit away from zero.
inline __m128i lround_ps(__m128 t) {
  const __m128i r = _mm_cvttps_epi32(t);
  const __m128 f = _mm_sub_ps(t, _mm_cvtepi32_ps(r));
  const __m128i up =
      _mm_and_si128(_mm_castps_si128(_mm_cmpge_ps(f, _mm_set1_ps(0.5f))),
                    _mm_set1_epi32(1));
  const __m128i down =
      _mm_and_si128(_mm_castps_si128(_mm_cmple_ps(f, _mm_set1_ps(-0.5f))),
                    _mm_set1_epi32(1));
  return _mm_sub_epi32(_mm_add_epi32(r, up), down);
}

// Unaligned integer vector load/store via memcpy: same movdqu as the
// *_si128 intrinsics, without the pointer cast the repo lint forbids.
inline __m128i load_epi32(const std::int32_t* p) {
  __m128i v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_epi32(std::int32_t* p, __m128i v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

void quantize_block_sse2(const float* coeffs, const float* steps,
                         std::int32_t* levels) {
  for (int i = 0; i < 64; i += 4) {
    const __m128 t = _mm_div_ps(_mm_loadu_ps(coeffs + i), _mm_loadu_ps(steps + i));
    store_epi32(levels + i, lround_ps(t));
  }
}

void dequantize_block_sse2(const std::int32_t* levels, const float* steps,
                           float* coeffs) {
  for (int i = 0; i < 64; i += 4) {
    const __m128 l = _mm_cvtepi32_ps(load_epi32(levels + i));
    _mm_storeu_ps(coeffs + i, _mm_mul_ps(l, _mm_loadu_ps(steps + i)));
  }
}

// Copies src[0..n) to dst — lanes of 4 plus scalar tail. Exact by
// construction; the SIMD content of the im2col/mc kernels.
inline void copy_row(const float* src, float* dst, int n) {
  int x = 0;
  for (; x + 4 <= n; x += 4) _mm_storeu_ps(dst + x, _mm_loadu_ps(src + x));
  for (; x < n; ++x) dst[x] = src[x];
}

inline void zero_row(float* dst, int n) {
  int x = 0;
  const __m128 z = _mm_setzero_ps();
  for (; x + 4 <= n; x += 4) _mm_storeu_ps(dst + x, z);
  for (; x < n; ++x) dst[x] = 0.0f;
}

void im2col_row_sse2(const float* src, int H, int W, int oh, int ow,
                     int stride, int pad, int ky, int kx, float* dst) {
  if (stride == 1) {
    // sx = x + kx - pad: the in-bounds x range is one contiguous span, so
    // each output row is zeros | row copy | zeros.
    const int x_lo = std::max(0, pad - kx);
    const int x_hi = std::min(ow, W - kx + pad);
    for (int y = 0; y < oh; ++y) {
      const int sy = y * stride + ky - pad;
      float* d = dst + y * ow;
      if (sy < 0 || sy >= H || x_lo >= x_hi) {
        zero_row(d, ow);
        continue;
      }
      zero_row(d, x_lo);
      copy_row(src + sy * W + (x_lo + kx - pad), d + x_lo, x_hi - x_lo);
      zero_row(d + x_hi, ow - x_hi);
    }
    return;
  }
  // Strided convs gather non-contiguous columns; keep the oracle's loop.
  for (int y = 0; y < oh; ++y) {
    const int sy = y * stride + ky - pad;
    for (int x = 0; x < ow; ++x) {
      const int sx = x * stride + kx - pad;
      dst[y * ow + x] =
          (sy >= 0 && sy < H && sx >= 0 && sx < W) ? src[sy * W + sx] : 0.0f;
    }
  }
}

// Shared MC row structure: each destination row [bx, bx+xn) reads the
// clamped reference row at sy; horizontally the read splits into a
// left-clamped run (all ref[sy*w]), an interior copy, and a right-clamped
// run (all ref[sy*w + w-1]).
struct McRowSpan {
  int left;      // pixels reading the x=0 sample
  int interior;  // pixels copied from sx = bx+left+mvx onward
  int right;     // pixels reading the x=w-1 sample
};

inline McRowSpan mc_row_span(int bx, int xn, int mvx, int w) {
  const int sx0 = bx + mvx;
  const int left = std::min(xn, std::max(0, -sx0));
  const int interior = std::min(xn, std::max(0, w - sx0)) - left;
  return {left, interior, xn - left - interior};
}

void mc_copy_block_sse2(const float* ref, float* dst, int w, int h, int bx,
                        int by, int size, int mvx, int mvy) {
  const int xn = std::min(size, w - bx);
  const int yn = std::min(size, h - by);
  if (xn <= 0) return;
  const McRowSpan sp = mc_row_span(bx, xn, mvx, w);
  for (int y = 0; y < yn; ++y) {
    const int py = by + y;
    const float* s = ref + clamp_idx(py + mvy, h) * w;
    float* d = dst + py * w + bx;
    for (int x = 0; x < sp.left; ++x) d[x] = s[0];
    copy_row(s + bx + sp.left + mvx, d + sp.left, sp.interior);
    for (int x = 0; x < sp.right; ++x) d[sp.left + sp.interior + x] = s[w - 1];
  }
}

void mc_bi_block_sse2(const float* ref0, int mv0x, int mv0y, const float* ref1,
                      int mv1x, int mv1y, float* dst, int w, int h, int bx,
                      int by, int size) {
  const int xn = std::min(size, w - bx);
  const int yn = std::min(size, h - by);
  if (xn <= 0) return;
  const __m128 half = _mm_set1_ps(0.5f);
  for (int y = 0; y < yn; ++y) {
    const int py = by + y;
    const float* s0 = ref0 + clamp_idx(py + mv0y, h) * w;
    const float* s1 = ref1 + clamp_idx(py + mv1y, h) * w;
    float* d = dst + py * w + bx;
    const int sx0 = bx + mv0x, sx1 = bx + mv1x;
    if (sx0 >= 0 && sx0 + xn <= w && sx1 >= 0 && sx1 + xn <= w) {
      int x = 0;
      for (; x + 4 <= xn; x += 4) {
        const __m128 a = _mm_loadu_ps(s0 + sx0 + x);
        const __m128 b = _mm_loadu_ps(s1 + sx1 + x);
        _mm_storeu_ps(d + x, _mm_mul_ps(half, _mm_add_ps(a, b)));
      }
      for (; x < xn; ++x) d[x] = 0.5f * (s0[sx0 + x] + s1[sx1 + x]);
    } else {
      for (int x = 0; x < xn; ++x)
        d[x] = 0.5f * (s0[clamp_idx(bx + x + mv0x, w)] +
                       s1[clamp_idx(bx + x + mv1x, w)]);
    }
  }
}

}  // namespace

bool populate_sse2(KernelTable& t) noexcept {
  t.id = Backend::kSse2;
  t.quantize_block = &quantize_block_sse2;
  t.origin[kFamQuant] = Backend::kSse2;
  t.dequantize_block = &dequantize_block_sse2;
  t.origin[kFamDequant] = Backend::kSse2;
  t.im2col_row = &im2col_row_sse2;
  t.origin[kFamIm2col] = Backend::kSse2;
  t.mc_copy_block = &mc_copy_block_sse2;
  t.mc_bi_block = &mc_bi_block_sse2;
  t.origin[kFamMc] = Backend::kSse2;
  return true;
}

}  // namespace dcsr::simd

#else  // non-x86: nothing to install.

namespace dcsr::simd {
bool populate_sse2(KernelTable&) noexcept { return false; }
}  // namespace dcsr::simd

#endif
