// AVX2 backend. Compiled with -mavx2 -mfma (see src/simd/CMakeLists.txt);
// installed only when cpuid reports both avx2 and fma.
//
// Bit-exactness strategy per family:
//   - dct/idct/dequant_idct/gemm/yuv: the scalar oracle's `acc += a * b`
//     chains are FMA-contracted by GCC, so these kernels replay the same
//     chains — same terms, same ascending accumulation order — with
//     _mm256_fmadd_ps and friends, vectorised across the *independent*
//     outputs (the 8 lanes of a block row / C-tile columns / pixels of a
//     row), never across an accumulation. Installed only when
//     scalar_fma_contraction() says the oracle was contracted.
//   - quant/dequant/im2col/mc: exact math (division + exact lround
//     emulation, single multiplies, copies); installed unconditionally.
// Edge pixels and tail lanes reuse the kernels_inline.hpp helpers — the
// same inlined code the scalar oracle runs.
#include "simd/kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "simd/kernels_inline.hpp"

namespace dcsr::simd {
namespace {

// Register barrier: GCC treats _mm256_mul_ps/_mm256_add_ps as ordinary
// vector arithmetic and will contract a mul feeding an add into an FMA under
// the default -ffp-contract=fast. Where the reference TU *rounded* that
// multiply, pass it through this no-op asm so the pair stays two rounded ops.
inline __m256 keep_rounded(__m256 v) {
  asm("" : "+x"(v));
  return v;
}

// --- 8x8 transforms ---------------------------------------------------------
//
// Both stages of the separable transforms are "for each of 8 outputs rows:
// an 8-step broadcast*row FMA chain". The broadcast always comes from the
// operand that is scalar in the lane direction; the accumulation order (the
// loop the oracle runs serially) is preserved exactly.

// One stage of a separable 8x8 transform with the 8 row vectors pinned in
// registers: out row = s[0]*r0 + s[1]*r1 + ... as the oracle's serial chain
// (first term a rounded mul, the rest vfmadd, ascending order). Hoisting
// the rows halves the stage's memory traffic — the naive spelling re-loads
// the same 8 vectors for every output row, and with 8 broadcasts per row on
// top the loop is load-port-bound, not FMA-bound.
inline __m256 chain8(const float* s, __m256 r0, __m256 r1, __m256 r2,
                     __m256 r3, __m256 r4, __m256 r5, __m256 r6, __m256 r7) {
  __m256 acc = _mm256_mul_ps(_mm256_broadcast_ss(s), r0);
  acc = _mm256_fmadd_ps(_mm256_broadcast_ss(s + 1), r1, acc);
  acc = _mm256_fmadd_ps(_mm256_broadcast_ss(s + 2), r2, acc);
  acc = _mm256_fmadd_ps(_mm256_broadcast_ss(s + 3), r3, acc);
  acc = _mm256_fmadd_ps(_mm256_broadcast_ss(s + 4), r4, acc);
  acc = _mm256_fmadd_ps(_mm256_broadcast_ss(s + 5), r5, acc);
  acc = _mm256_fmadd_ps(_mm256_broadcast_ss(s + 6), r6, acc);
  acc = _mm256_fmadd_ps(_mm256_broadcast_ss(s + 7), r7, acc);
  return acc;
}

void dct8x8_avx2(const float* in, float* out) {
  const float* m = dct_basis();     // m[k*8+n]
  const float* mt = dct_basis_t();  // mt[n*8+k]
  float tmp[64];
  // Stage 1: tmp[y*8+k] = sum_n in[y*8+n] * mt[n*8+k], vectorised over k.
  {
    const __m256 b0 = _mm256_loadu_ps(mt), b1 = _mm256_loadu_ps(mt + 8),
                 b2 = _mm256_loadu_ps(mt + 16), b3 = _mm256_loadu_ps(mt + 24),
                 b4 = _mm256_loadu_ps(mt + 32), b5 = _mm256_loadu_ps(mt + 40),
                 b6 = _mm256_loadu_ps(mt + 48), b7 = _mm256_loadu_ps(mt + 56);
    for (int y = 0; y < 8; ++y)
      _mm256_storeu_ps(tmp + y * 8,
                       chain8(in + y * 8, b0, b1, b2, b3, b4, b5, b6, b7));
  }
  // Stage 2: out[k*8+x] = sum_n m[k*8+n] * tmp[n*8+x], vectorised over x.
  {
    const __m256 t0 = _mm256_loadu_ps(tmp), t1 = _mm256_loadu_ps(tmp + 8),
                 t2 = _mm256_loadu_ps(tmp + 16), t3 = _mm256_loadu_ps(tmp + 24),
                 t4 = _mm256_loadu_ps(tmp + 32), t5 = _mm256_loadu_ps(tmp + 40),
                 t6 = _mm256_loadu_ps(tmp + 48), t7 = _mm256_loadu_ps(tmp + 56);
    for (int k = 0; k < 8; ++k)
      _mm256_storeu_ps(out + k * 8,
                       chain8(m + k * 8, t0, t1, t2, t3, t4, t5, t6, t7));
  }
}

// Shared by idct8x8 and the fused dequant+idct: both stages on an in-place
// 64-float block.
inline void idct_stages(const float* coeffs, float* out) {
  const float* m = dct_basis();
  const float* mt = dct_basis_t();
  float tmp[64];
  // Stage 1: tmp[n*8+x] = sum_k mt[n*8+k] * coeffs[k*8+x], vectorised over x.
  {
    const __m256 c0 = _mm256_loadu_ps(coeffs), c1 = _mm256_loadu_ps(coeffs + 8),
                 c2 = _mm256_loadu_ps(coeffs + 16),
                 c3 = _mm256_loadu_ps(coeffs + 24),
                 c4 = _mm256_loadu_ps(coeffs + 32),
                 c5 = _mm256_loadu_ps(coeffs + 40),
                 c6 = _mm256_loadu_ps(coeffs + 48),
                 c7 = _mm256_loadu_ps(coeffs + 56);
    for (int n = 0; n < 8; ++n)
      _mm256_storeu_ps(tmp + n * 8,
                       chain8(mt + n * 8, c0, c1, c2, c3, c4, c5, c6, c7));
  }
  // Stage 2: out[y*8+n] = sum_k tmp[y*8+k] * m[k*8+n], vectorised over n.
  {
    const __m256 b0 = _mm256_loadu_ps(m), b1 = _mm256_loadu_ps(m + 8),
                 b2 = _mm256_loadu_ps(m + 16), b3 = _mm256_loadu_ps(m + 24),
                 b4 = _mm256_loadu_ps(m + 32), b5 = _mm256_loadu_ps(m + 40),
                 b6 = _mm256_loadu_ps(m + 48), b7 = _mm256_loadu_ps(m + 56);
    for (int y = 0; y < 8; ++y)
      _mm256_storeu_ps(out + y * 8,
                       chain8(tmp + y * 8, b0, b1, b2, b3, b4, b5, b6, b7));
  }
}

void idct8x8_avx2(const float* in, float* out) { idct_stages(in, out); }

// Unaligned integer vector load/store via memcpy: same vmovdqu as the
// *_si256 intrinsics, without the pointer cast the repo lint forbids.
inline __m256i load_epi32(const std::int32_t* p) {
  __m256i v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_epi32(std::int32_t* p, __m256i v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

void dequant_idct8x8_avx2(const std::int32_t* levels, const float* steps,
                          float* out) {
  float coeffs[64];
  for (int i = 0; i < 64; i += 8) {
    const __m256 l = _mm256_cvtepi32_ps(load_epi32(levels + i));
    _mm256_storeu_ps(coeffs + i, _mm256_mul_ps(l, _mm256_loadu_ps(steps + i)));
  }
  idct_stages(coeffs, out);
}

// --- Quantiser --------------------------------------------------------------

// Exact lround (round half away from zero) for |t| < 2^31; see the SSE2
// twin for the derivation.
inline __m256i lround_ps(__m256 t) {
  const __m256i r = _mm256_cvttps_epi32(t);
  const __m256 f = _mm256_sub_ps(t, _mm256_cvtepi32_ps(r));
  const __m256i up = _mm256_and_si256(
      _mm256_castps_si256(_mm256_cmp_ps(f, _mm256_set1_ps(0.5f), _CMP_GE_OQ)),
      _mm256_set1_epi32(1));
  const __m256i down = _mm256_and_si256(
      _mm256_castps_si256(_mm256_cmp_ps(f, _mm256_set1_ps(-0.5f), _CMP_LE_OQ)),
      _mm256_set1_epi32(1));
  return _mm256_sub_epi32(_mm256_add_epi32(r, up), down);
}

void quantize_block_avx2(const float* coeffs, const float* steps,
                         std::int32_t* levels) {
  for (int i = 0; i < 64; i += 8) {
    const __m256 t =
        _mm256_div_ps(_mm256_loadu_ps(coeffs + i), _mm256_loadu_ps(steps + i));
    store_epi32(levels + i, lround_ps(t));
  }
}

void dequantize_block_avx2(const std::int32_t* levels, const float* steps,
                           float* coeffs) {
  for (int i = 0; i < 64; i += 8) {
    const __m256 l = _mm256_cvtepi32_ps(load_epi32(levels + i));
    _mm256_storeu_ps(coeffs + i, _mm256_mul_ps(l, _mm256_loadu_ps(steps + i)));
  }
}

// --- GEMM register tile -----------------------------------------------------

// Same 6x16 tile as the oracle's vector-extension kernel, with the
// contracted `acc += a * b` written out as vfmadd. The 12 accumulators are
// named variables, not a [6][2] array: GCC fails scalar-replacement on the
// array form and emits a stack spill of every accumulator per k iteration,
// which costs ~40% of the kernel's throughput.
void gemm_tile_6x16_avx2(const float* A, std::size_t a_rs, std::size_t a_ks,
                         const float* B, std::size_t ldb, float* C,
                         std::size_t ldc, int kn) {
  __m256 c00 = _mm256_loadu_ps(C + 0 * ldc), c01 = _mm256_loadu_ps(C + 0 * ldc + 8);
  __m256 c10 = _mm256_loadu_ps(C + 1 * ldc), c11 = _mm256_loadu_ps(C + 1 * ldc + 8);
  __m256 c20 = _mm256_loadu_ps(C + 2 * ldc), c21 = _mm256_loadu_ps(C + 2 * ldc + 8);
  __m256 c30 = _mm256_loadu_ps(C + 3 * ldc), c31 = _mm256_loadu_ps(C + 3 * ldc + 8);
  __m256 c40 = _mm256_loadu_ps(C + 4 * ldc), c41 = _mm256_loadu_ps(C + 4 * ldc + 8);
  __m256 c50 = _mm256_loadu_ps(C + 5 * ldc), c51 = _mm256_loadu_ps(C + 5 * ldc + 8);
  for (int kk = 0; kk < kn; ++kk) {
    const float* b = B + static_cast<std::size_t>(kk) * ldb;
    const __m256 b0 = _mm256_loadu_ps(b), b1 = _mm256_loadu_ps(b + 8);
    const float* a = A + static_cast<std::size_t>(kk) * a_ks;
    __m256 av = _mm256_broadcast_ss(a);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(a + a_rs);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(a + 2 * a_rs);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(a + 3 * a_rs);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(a + 4 * a_rs);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(a + 5 * a_rs);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  }
  _mm256_storeu_ps(C + 0 * ldc, c00);
  _mm256_storeu_ps(C + 0 * ldc + 8, c01);
  _mm256_storeu_ps(C + 1 * ldc, c10);
  _mm256_storeu_ps(C + 1 * ldc + 8, c11);
  _mm256_storeu_ps(C + 2 * ldc, c20);
  _mm256_storeu_ps(C + 2 * ldc + 8, c21);
  _mm256_storeu_ps(C + 3 * ldc, c30);
  _mm256_storeu_ps(C + 3 * ldc + 8, c31);
  _mm256_storeu_ps(C + 4 * ldc, c40);
  _mm256_storeu_ps(C + 4 * ldc + 8, c41);
  _mm256_storeu_ps(C + 5 * ldc, c50);
  _mm256_storeu_ps(C + 5 * ldc + 8, c51);
}

// --- im2col -----------------------------------------------------------------

inline void copy_row(const float* src, float* dst, int n) {
  int x = 0;
  for (; x + 8 <= n; x += 8) _mm256_storeu_ps(dst + x, _mm256_loadu_ps(src + x));
  for (; x < n; ++x) dst[x] = src[x];
}

inline void zero_row(float* dst, int n) {
  int x = 0;
  const __m256 z = _mm256_setzero_ps();
  for (; x + 8 <= n; x += 8) _mm256_storeu_ps(dst + x, z);
  for (; x < n; ++x) dst[x] = 0.0f;
}

void im2col_row_avx2(const float* src, int H, int W, int oh, int ow,
                     int stride, int pad, int ky, int kx, float* dst) {
  if (stride == 1) {
    const int x_lo = std::max(0, pad - kx);
    const int x_hi = std::min(ow, W - kx + pad);
    for (int y = 0; y < oh; ++y) {
      const int sy = y * stride + ky - pad;
      float* d = dst + y * ow;
      if (sy < 0 || sy >= H || x_lo >= x_hi) {
        zero_row(d, ow);
        continue;
      }
      zero_row(d, x_lo);
      copy_row(src + sy * W + (x_lo + kx - pad), d + x_lo, x_hi - x_lo);
      zero_row(d + x_hi, ow - x_hi);
    }
    return;
  }
  for (int y = 0; y < oh; ++y) {
    const int sy = y * stride + ky - pad;
    for (int x = 0; x < ow; ++x) {
      const int sx = x * stride + kx - pad;
      dst[y * ow + x] =
          (sy >= 0 && sy < H && sx >= 0 && sx < W) ? src[sy * W + sx] : 0.0f;
    }
  }
}

// --- YUV <-> RGB rows -------------------------------------------------------

void yuv_to_rgb_row_avx2(const float* yrow, const float* u0, const float* u1,
                         const float* v0, const float* v1, float fy, int W,
                         int cw, float* r, float* g, float* b) {
  // Interior pixels x in [2, W-2] have both chroma taps in bounds
  // (x0 = (x-1)/2 >= 0, x0+1 <= cw-1 for even x up to 2cw-2); a vector of 8
  // consecutive pixels starting at even x = 2k reads chroma samples
  // [k-1, k+6], expanded to left/right taps by pair-duplicating permutes.
  // fx alternates 0.75 (even x) / 0.25 (odd x). Edges and tails take the
  // shared scalar helper.
  const __m256i left_idx = _mm256_setr_epi32(0, 1, 1, 2, 2, 3, 3, 4);
  const __m256i right_idx = _mm256_setr_epi32(1, 2, 2, 3, 3, 4, 4, 5);
  const __m256 fx = _mm256_setr_ps(0.75f, 0.25f, 0.75f, 0.25f, 0.75f, 0.25f,
                                   0.75f, 0.25f);
  const __m256 one_minus_fx = _mm256_sub_ps(_mm256_set1_ps(1.0f), fx);
  const __m256 vfy = _mm256_set1_ps(fy);
  const __m256 one_minus_fy = _mm256_set1_ps(1.0f - fy);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 cu = _mm256_set1_ps(1.0f - kWb);
  const __m256 cv = _mm256_set1_ps(1.0f - kWr);
  const __m256 wr = _mm256_set1_ps(kWr);
  const __m256 wb = _mm256_set1_ps(kWb);
  const __m256 wg = _mm256_set1_ps(kWg);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);

  const auto sample2 = [&](const float* r0, const float* r1, int k) {
    // Bilinear, replaying the oracle TU's contraction (see its disassembly):
    // per row the *right* tap's multiply rounds and the left tap fuses,
    // a = fma(left, 1-fx, right*fx); vertically the row-1 multiply rounds,
    // sample = fma(a, 1-fy, b*fy).
    const __m256 c0 = _mm256_loadu_ps(r0 + k - 1);
    const __m256 c1 = _mm256_loadu_ps(r1 + k - 1);
    const __m256 a =
        _mm256_fmadd_ps(_mm256_permutevar8x32_ps(c0, left_idx), one_minus_fx,
                        _mm256_mul_ps(_mm256_permutevar8x32_ps(c0, right_idx),
                                      fx));
    const __m256 bv =
        _mm256_fmadd_ps(_mm256_permutevar8x32_ps(c1, left_idx), one_minus_fx,
                        _mm256_mul_ps(_mm256_permutevar8x32_ps(c1, right_idx),
                                      fx));
    return _mm256_fmadd_ps(a, one_minus_fy, _mm256_mul_ps(bv, vfy));
  };

  int x = 0;
  // x = 0 (and x = 1 when the vector loop can't start) go scalar below.
  for (; x < std::min(2, W); ++x)
    yuv_rgb_pixel(yrow, u0, u1, v0, v1, fy, cw, x, r, g, b);
  for (; x % 2 == 0 && x + 8 <= W - 1 && x / 2 + 6 <= cw - 1; x += 8) {
    const int k = x / 2;
    // (s - 0.5f) * 2.0f * (1 - w): the oracle doubles via x+x, then the
    // (1-kWb) multiply rounds before the +luma add for the U branch, while
    // the V branch's (1-kWr) multiply fuses *into* the +luma add. Asymmetric,
    // but that is what the reference TU compiled to, so replay it exactly.
    const __m256 ud = _mm256_sub_ps(sample2(u0, u1, k), half);
    const __m256 us = keep_rounded(_mm256_mul_ps(_mm256_add_ps(ud, ud), cu));
    const __m256 vd = _mm256_sub_ps(sample2(v0, v1, k), half);
    const __m256 luma = _mm256_loadu_ps(yrow + x);
    const __m256 rr = _mm256_fmadd_ps(_mm256_add_ps(vd, vd), cv, luma);
    const __m256 bb = _mm256_add_ps(luma, us);
    const __m256 gg = _mm256_div_ps(
        _mm256_fnmadd_ps(wb, bb, _mm256_fnmadd_ps(wr, rr, luma)), wg);
    _mm256_storeu_ps(r + x, _mm256_min_ps(one, _mm256_max_ps(zero, rr)));
    _mm256_storeu_ps(g + x, _mm256_min_ps(one, _mm256_max_ps(zero, gg)));
    _mm256_storeu_ps(b + x, _mm256_min_ps(one, _mm256_max_ps(zero, bb)));
  }
  for (; x < W; ++x) yuv_rgb_pixel(yrow, u0, u1, v0, v1, fy, cw, x, r, g, b);
}

void rgb_to_yuv_row_avx2(const float* r, const float* g, const float* b,
                         int W, float* yrow, float* uf, float* vf) {
  const __m256 wr = _mm256_set1_ps(kWr);
  const __m256 wg = _mm256_set1_ps(kWg);
  const __m256 wb = _mm256_set1_ps(kWb);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 du = _mm256_set1_ps(1.0f - kWb);
  const __m256 dv = _mm256_set1_ps(1.0f - kWr);
  int x = 0;
  for (; x + 8 <= W; x += 8) {
    const __m256 rv = _mm256_loadu_ps(r + x);
    const __m256 gv = _mm256_loadu_ps(g + x);
    const __m256 bv = _mm256_loadu_ps(b + x);
    // luma = kWr*r + kWg*g + kWb*b. The oracle TU compiled this as
    // fma(kWb, b, fma(kWr, r, kWg*g)) — the kWg*g product rounds first.
    const __m256 luma = _mm256_fmadd_ps(
        wb, bv, _mm256_fmadd_ps(wr, rv, _mm256_mul_ps(wg, gv)));
    _mm256_storeu_ps(yrow + x, luma);
    // 0.5 + (0.5*(c - luma)) / (1 - w): no contractible mul+add pair.
    const __m256 un = _mm256_mul_ps(half, _mm256_sub_ps(bv, luma));
    _mm256_storeu_ps(uf + x, _mm256_add_ps(half, _mm256_div_ps(un, du)));
    const __m256 vn = _mm256_mul_ps(half, _mm256_sub_ps(rv, luma));
    _mm256_storeu_ps(vf + x, _mm256_add_ps(half, _mm256_div_ps(vn, dv)));
  }
  for (; x < W; ++x) rgb_yuv_pixel(r, g, b, x, yrow, uf, vf);
}

void chroma_box_row_avx2(const float* f0, const float* f1, int w, float* out) {
  const int cw = w / 2;
  const __m256 quarter = _mm256_set1_ps(0.25f);
  int x = 0;
  // Deinterleaves 16 consecutive samples of a row into even/odd lanes.
  struct EvenOdd {
    __m256 ev, od;
  };
  const auto deint = [](const float* p) {
    const __m256 lo = _mm256_loadu_ps(p);
    const __m256 hi = _mm256_loadu_ps(p + 8);
    EvenOdd r;
    r.ev = _mm256_castpd_ps(_mm256_permute4x64_pd(
        _mm256_castps_pd(_mm256_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0))),
        _MM_SHUFFLE(3, 1, 2, 0)));
    r.od = _mm256_castpd_ps(_mm256_permute4x64_pd(
        _mm256_castps_pd(_mm256_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 1, 3, 1))),
        _MM_SHUFFLE(3, 1, 2, 0)));
    return r;
  };
  for (; x + 8 <= cw; x += 8) {
    const EvenOdd a = deint(f0 + 2 * x);
    const EvenOdd b = deint(f1 + 2 * x);
    // ((e0 + o0) + e1) + o1, the oracle's association order, then * 0.25.
    const __m256 s = _mm256_add_ps(
        _mm256_add_ps(_mm256_add_ps(a.ev, a.od), b.ev), b.od);
    _mm256_storeu_ps(out + x, _mm256_mul_ps(quarter, s));
  }
  for (; x < cw; ++x)
    out[x] = 0.25f * (f0[2 * x] + f0[2 * x + 1] + f1[2 * x] + f1[2 * x + 1]);
}

// --- Motion compensation ----------------------------------------------------

struct McRowSpan {
  int left;
  int interior;
  int right;
};

inline McRowSpan mc_row_span(int bx, int xn, int mvx, int w) {
  const int sx0 = bx + mvx;
  const int left = std::min(xn, std::max(0, -sx0));
  const int interior = std::min(xn, std::max(0, w - sx0)) - left;
  return {left, interior, xn - left - interior};
}

void mc_copy_block_avx2(const float* ref, float* dst, int w, int h, int bx,
                        int by, int size, int mvx, int mvy) {
  const int xn = std::min(size, w - bx);
  const int yn = std::min(size, h - by);
  if (xn <= 0) return;
  const McRowSpan sp = mc_row_span(bx, xn, mvx, w);
  for (int y = 0; y < yn; ++y) {
    const int py = by + y;
    const float* s = ref + clamp_idx(py + mvy, h) * w;
    float* d = dst + py * w + bx;
    for (int x = 0; x < sp.left; ++x) d[x] = s[0];
    copy_row(s + bx + sp.left + mvx, d + sp.left, sp.interior);
    for (int x = 0; x < sp.right; ++x) d[sp.left + sp.interior + x] = s[w - 1];
  }
}

void mc_bi_block_avx2(const float* ref0, int mv0x, int mv0y, const float* ref1,
                      int mv1x, int mv1y, float* dst, int w, int h, int bx,
                      int by, int size) {
  const int xn = std::min(size, w - bx);
  const int yn = std::min(size, h - by);
  if (xn <= 0) return;
  const __m256 half = _mm256_set1_ps(0.5f);
  for (int y = 0; y < yn; ++y) {
    const int py = by + y;
    const float* s0 = ref0 + clamp_idx(py + mv0y, h) * w;
    const float* s1 = ref1 + clamp_idx(py + mv1y, h) * w;
    float* d = dst + py * w + bx;
    const int sx0 = bx + mv0x, sx1 = bx + mv1x;
    if (sx0 >= 0 && sx0 + xn <= w && sx1 >= 0 && sx1 + xn <= w) {
      int x = 0;
      for (; x + 8 <= xn; x += 8) {
        const __m256 a = _mm256_loadu_ps(s0 + sx0 + x);
        const __m256 b = _mm256_loadu_ps(s1 + sx1 + x);
        _mm256_storeu_ps(d + x, _mm256_mul_ps(half, _mm256_add_ps(a, b)));
      }
      for (; x < xn; ++x) d[x] = 0.5f * (s0[sx0 + x] + s1[sx1 + x]);
    } else {
      for (int x = 0; x < xn; ++x)
        d[x] = 0.5f * (s0[clamp_idx(bx + x + mv0x, w)] +
                       s1[clamp_idx(bx + x + mv1x, w)]);
    }
  }
}

}  // namespace

bool populate_avx2(KernelTable& t) noexcept {
  t.id = Backend::kAvx2;
  t.quantize_block = &quantize_block_avx2;
  t.origin[kFamQuant] = Backend::kAvx2;
  t.dequantize_block = &dequantize_block_avx2;
  t.origin[kFamDequant] = Backend::kAvx2;
  t.im2col_row = &im2col_row_avx2;
  t.origin[kFamIm2col] = Backend::kAvx2;
  t.mc_copy_block = &mc_copy_block_avx2;
  t.mc_bi_block = &mc_bi_block_avx2;
  t.origin[kFamMc] = Backend::kAvx2;
  if (scalar_fma_contraction()) {
    t.dct8x8 = &dct8x8_avx2;
    t.origin[kFamDct] = Backend::kAvx2;
    t.idct8x8 = &idct8x8_avx2;
    t.origin[kFamIdct] = Backend::kAvx2;
    t.dequant_idct8x8 = &dequant_idct8x8_avx2;
    t.origin[kFamDequantIdct] = Backend::kAvx2;
    t.gemm_tile_6x16 = &gemm_tile_6x16_avx2;
    t.origin[kFamGemm] = Backend::kAvx2;
    t.yuv_to_rgb_row = &yuv_to_rgb_row_avx2;
    t.origin[kFamYuvToRgb] = Backend::kAvx2;
    t.rgb_to_yuv_row = &rgb_to_yuv_row_avx2;
    t.chroma_box_row = &chroma_box_row_avx2;
    t.origin[kFamRgbToYuv] = Backend::kAvx2;
  }
  return true;
}

}  // namespace dcsr::simd

#else  // non-x86: nothing to install.

namespace dcsr::simd {
bool populate_avx2(KernelTable&) noexcept { return false; }
}  // namespace dcsr::simd

#endif
