#pragma once

#include "image/frame.hpp"

namespace dcsr {

/// BT.601 full-range RGB -> YUV 4:2:0. Chroma is 2x2 box-filtered, matching
/// what a typical encoder front-end does. U/V are stored centred on 0.5 so
/// all planes live in [0,1].
FrameYUV rgb_to_yuv420(const FrameRGB& rgb);

/// BT.601 full-range YUV 4:2:0 -> RGB with bilinear chroma upsampling — the
/// conversion the client-side dcSR performs on the DPB I frame before SR
/// (step 2 of Fig. 6) and back after (step 5).
FrameRGB yuv420_to_rgb(const FrameYUV& yuv);

/// In-place variants: identical values, but the destination frame's planes
/// are reshaped in place, so warm buffers make the conversion
/// allocation-free. The playback hot loops call these with long-lived slots.
void rgb_to_yuv420_into(const FrameRGB& rgb, FrameYUV& out);
void yuv420_to_rgb_into(const FrameYUV& yuv, FrameRGB& out);

/// Luma-only conversion of a single RGB pixel triple (used by metrics).
float rgb_to_luma(float r, float g, float b) noexcept;

}  // namespace dcsr
