#pragma once

#include <cassert>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/alloc_check.hpp"

namespace dcsr {

/// One image plane of float samples. Pixel values are normalised to [0,1];
/// the codec quantises in this domain and SR models consume it directly, so
/// no 8-bit round-trips happen between pipeline stages except where the
/// codec's quantiser deliberately introduces loss.
class Plane {
 public:
  Plane() = default;
  Plane(int width, int height)
      : width_(width), height_(height),
        data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              0.0f) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float& at(int x, int y) noexcept {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  float at(int x, int y) const noexcept {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Clamped access: coordinates outside the plane read the nearest edge
  /// sample. Used by filters and motion compensation at frame borders.
  float at_clamped(int x, int y) const noexcept;

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  /// Resizes the plane in place, reusing the existing heap block whenever
  /// its capacity suffices. Contents are unspecified afterwards — callers
  /// fully overwrite. The warm-buffer path of the *_into converters below.
  void reset(int width, int height) {
    width_ = width;
    height_ = height;
    const std::size_t n =
        static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
    if (n <= data_.capacity()) {
      data_.resize(n);
    } else {
      // First-use growth is sanctioned warm-up; warm frames stay on the
      // capacity-reuse branch above and never touch the heap.
      AllocAllowScope allow;
      data_.resize(n);
    }
  }

  void fill(float v) noexcept {
    for (auto& p : data_) p = v;
  }

  /// Clamps all samples into [0,1].
  void clamp01() noexcept;

  bool same_size(const Plane& other) const noexcept {
    return width_ == other.width_ && height_ == other.height_;
  }

 private:
  int width_ = 0, height_ = 0;
  std::vector<float> data_;
};

/// RGB frame, planar.
struct FrameRGB {
  Plane r, g, b;

  FrameRGB() = default;
  FrameRGB(int width, int height) : r(width, height), g(width, height), b(width, height) {}

  int width() const noexcept { return r.width(); }
  int height() const noexcept { return r.height(); }
  bool empty() const noexcept { return r.empty(); }
};

/// YUV 4:2:0 frame: full-resolution luma, half-resolution chroma — the
/// layout H.264 decoders keep in the decoded picture buffer. Dimensions must
/// be even.
struct FrameYUV {
  Plane y, u, v;

  FrameYUV() = default;
  FrameYUV(int width, int height)
      : y(width, height), u(width / 2, height / 2), v(width / 2, height / 2) {
    assert(width % 2 == 0 && height % 2 == 0);
  }

  int width() const noexcept { return y.width(); }
  int height() const noexcept { return y.height(); }
  bool empty() const noexcept { return y.empty(); }
};

/// Packs an RGB frame into a 1x3xHxW tensor (model input layout).
Tensor frame_to_tensor(const FrameRGB& f);

/// Unpacks a 1x3xHxW tensor into an RGB frame, clamping to [0,1].
FrameRGB tensor_to_frame(const Tensor& t);

/// In-place variants: identical values, but the destination is reshaped in
/// place so a warm buffer (workspace checkout or long-lived frame slot) is
/// reused instead of reallocated on every frame.
void frame_to_tensor_into(const FrameRGB& f, Tensor& t);
void tensor_to_frame_into(const Tensor& t, FrameRGB& f);

/// Batched variants: pack `n` same-sized frames into one Nx3xHxW tensor /
/// unpack one back out. Batch item i carries exactly the floats the single-
/// frame converters would produce for frames[i] — batching is a layout
/// decision, never a value change. Throws std::invalid_argument on an empty
/// batch or mixed frame geometry.
void frames_to_tensor_into(const FrameRGB* const* frames, int n, Tensor& t);
void tensor_to_frames_into(const Tensor& t, FrameRGB* const* frames);

}  // namespace dcsr
