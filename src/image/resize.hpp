#pragma once

#include "image/frame.hpp"

namespace dcsr {

/// Bilinear plane resize to an arbitrary size.
Plane resize_bilinear(const Plane& src, int out_w, int out_h);

/// Bicubic (Catmull-Rom) plane resize — the downscaling kernel used to make
/// the low-resolution SR training inputs, matching the SR literature's
/// "bicubic degradation" convention.
Plane resize_bicubic(const Plane& src, int out_w, int out_h);

enum class ResizeFilter { kBilinear, kBicubic };

/// Resizes all three channels of an RGB frame.
FrameRGB resize(const FrameRGB& src, int out_w, int out_h,
                ResizeFilter filter = ResizeFilter::kBicubic);

/// Downscale by an integer factor with box averaging (clean anti-aliased
/// decimation for synthesising low-res variants of ground-truth frames).
Plane downscale_box(const Plane& src, int factor);
FrameRGB downscale_box(const FrameRGB& src, int factor);

}  // namespace dcsr
