#include "image/resize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcsr {

namespace {

// Catmull-Rom cubic kernel (a = -0.5).
float cubic_weight(float t) noexcept {
  constexpr float a = -0.5f;
  t = std::abs(t);
  if (t < 1.0f) return ((a + 2.0f) * t - (a + 3.0f)) * t * t + 1.0f;
  if (t < 2.0f) return (((t - 5.0f) * t + 8.0f) * t - 4.0f) * a;
  return 0.0f;
}

}  // namespace

Plane resize_bilinear(const Plane& src, int out_w, int out_h) {
  if (out_w <= 0 || out_h <= 0)
    throw std::invalid_argument("resize_bilinear: bad output size");
  Plane out(out_w, out_h);
  const float sx = static_cast<float>(src.width()) / static_cast<float>(out_w);
  const float sy = static_cast<float>(src.height()) / static_cast<float>(out_h);
  for (int y = 0; y < out_h; ++y) {
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    const int y0 = static_cast<int>(std::floor(fy));
    const float wy = fy - static_cast<float>(y0);
    for (int x = 0; x < out_w; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const int x0 = static_cast<int>(std::floor(fx));
      const float wx = fx - static_cast<float>(x0);
      const float a = src.at_clamped(x0, y0) * (1 - wx) + src.at_clamped(x0 + 1, y0) * wx;
      const float b = src.at_clamped(x0, y0 + 1) * (1 - wx) + src.at_clamped(x0 + 1, y0 + 1) * wx;
      out.at(x, y) = a * (1 - wy) + b * wy;
    }
  }
  return out;
}

Plane resize_bicubic(const Plane& src, int out_w, int out_h) {
  if (out_w <= 0 || out_h <= 0)
    throw std::invalid_argument("resize_bicubic: bad output size");
  Plane out(out_w, out_h);
  const float sx = static_cast<float>(src.width()) / static_cast<float>(out_w);
  const float sy = static_cast<float>(src.height()) / static_cast<float>(out_h);
  for (int y = 0; y < out_h; ++y) {
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    const int y0 = static_cast<int>(std::floor(fy));
    for (int x = 0; x < out_w; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const int x0 = static_cast<int>(std::floor(fx));
      float acc = 0.0f, wsum = 0.0f;
      for (int dy = -1; dy <= 2; ++dy) {
        const float wy = cubic_weight(fy - static_cast<float>(y0 + dy));
        if (wy == 0.0f) continue;
        for (int dx = -1; dx <= 2; ++dx) {
          const float wx = cubic_weight(fx - static_cast<float>(x0 + dx));
          if (wx == 0.0f) continue;
          acc += wx * wy * src.at_clamped(x0 + dx, y0 + dy);
          wsum += wx * wy;
        }
      }
      out.at(x, y) = std::clamp(acc / wsum, 0.0f, 1.0f);
    }
  }
  return out;
}

FrameRGB resize(const FrameRGB& src, int out_w, int out_h, ResizeFilter filter) {
  FrameRGB out;
  auto f = (filter == ResizeFilter::kBilinear) ? resize_bilinear : resize_bicubic;
  out.r = f(src.r, out_w, out_h);
  out.g = f(src.g, out_w, out_h);
  out.b = f(src.b, out_w, out_h);
  return out;
}

Plane downscale_box(const Plane& src, int factor) {
  if (factor <= 0 || src.width() % factor || src.height() % factor)
    throw std::invalid_argument("downscale_box: size not divisible by factor");
  Plane out(src.width() / factor, src.height() / factor);
  const float norm = 1.0f / static_cast<float>(factor * factor);
  for (int y = 0; y < out.height(); ++y)
    for (int x = 0; x < out.width(); ++x) {
      float acc = 0.0f;
      for (int dy = 0; dy < factor; ++dy)
        for (int dx = 0; dx < factor; ++dx)
          acc += src.at(x * factor + dx, y * factor + dy);
      out.at(x, y) = acc * norm;
    }
  return out;
}

FrameRGB downscale_box(const FrameRGB& src, int factor) {
  FrameRGB out;
  out.r = downscale_box(src.r, factor);
  out.g = downscale_box(src.g, factor);
  out.b = downscale_box(src.b, factor);
  return out;
}

}  // namespace dcsr
