#pragma once

#include "image/frame.hpp"

namespace dcsr {

/// PSNR in dB between two same-sized planes (MAX = 1.0). Identical planes
/// return +inf capped at 100 dB, the convention used when reporting lossless
/// reconstructions.
double psnr(const Plane& a, const Plane& b);

/// PSNR over an RGB frame (MSE pooled across the three channels).
double psnr(const FrameRGB& a, const FrameRGB& b);

/// PSNR over the luma of two YUV frames — the metric the paper's Fig. 9(a)
/// reports (video PSNR is conventionally luma PSNR).
double psnr_luma(const FrameYUV& a, const FrameYUV& b);

/// Structural similarity (Wang et al. 2004) on a single plane, computed with
/// the standard 8x8 sliding window and C1/C2 stabilisers for unit dynamic
/// range. Returns the mean SSIM over all windows.
double ssim(const Plane& a, const Plane& b);

/// SSIM on luma of RGB frames (the Fig. 9(b) metric).
double ssim(const FrameRGB& a, const FrameRGB& b);

/// Multi-scale SSIM (Wang et al. 2003), simplified: the geometric mean of
/// single-scale SSIM over `scales` dyadic scales (box-filtered halvings).
/// More tolerant of small misalignments than single-scale SSIM and closer
/// to perceptual rankings on video. Planes must be at least 8 * 2^(scales-1)
/// on each side.
double ms_ssim(const Plane& a, const Plane& b, int scales = 3);

/// MS-SSIM on luma of RGB frames.
double ms_ssim(const FrameRGB& a, const FrameRGB& b, int scales = 3);

}  // namespace dcsr
