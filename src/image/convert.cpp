#include "image/convert.hpp"

#include <cmath>
#include <cstddef>

#include "simd/dispatch.hpp"
#include "simd/kernels_inline.hpp"

namespace dcsr {

float rgb_to_luma(float r, float g, float b) noexcept {
  return simd::kWr * r + simd::kWg * g + simd::kWb * b;
}

FrameYUV rgb_to_yuv420(const FrameRGB& rgb) {
  FrameYUV out;
  rgb_to_yuv420_into(rgb, out);
  return out;
}

void rgb_to_yuv420_into(const FrameRGB& rgb, FrameYUV& out) {
  const int W = rgb.width(), H = rgb.height();
  out.y.reset(W, H);
  out.u.reset(W / 2, H / 2);
  out.v.reset(W / 2, H / 2);
  // Full-resolution U/V scratch for the box filter. Per-thread and reused
  // across calls, like a Workspace checkout: the playback loops convert
  // every frame, and this pass should not be the one allocation left in an
  // otherwise allocation-free steady state.
  thread_local Plane uf, vf;
  uf.reset(W, H);
  vf.reset(W, H);
  const simd::KernelTable& kt = simd::active();
  for (int y = 0; y < H; ++y) {
    const std::size_t off = static_cast<std::size_t>(y) * W;
    kt.rgb_to_yuv_row(rgb.r.data() + off, rgb.g.data() + off,
                      rgb.b.data() + off, W, out.y.data() + off,
                      uf.data() + off, vf.data() + off);
  }
  const int cw = W / 2;
  for (int y = 0; y < H / 2; ++y) {
    const std::size_t r0 = static_cast<std::size_t>(2 * y) * W;
    const std::size_t r1 = static_cast<std::size_t>(2 * y + 1) * W;
    const std::size_t co = static_cast<std::size_t>(y) * cw;
    kt.chroma_box_row(uf.data() + r0, uf.data() + r1, W, out.u.data() + co);
    kt.chroma_box_row(vf.data() + r0, vf.data() + r1, W, out.v.data() + co);
  }
}

FrameRGB yuv420_to_rgb(const FrameYUV& yuv) {
  FrameRGB out;
  yuv420_to_rgb_into(yuv, out);
  return out;
}

void yuv420_to_rgb_into(const FrameYUV& yuv, FrameRGB& out) {
  const int W = yuv.width(), H = yuv.height();
  out.r.reset(W, H);
  out.g.reset(W, H);
  out.b.reset(W, H);
  const int cw = W / 2, ch = H / 2;
  const simd::KernelTable& kt = simd::active();
  for (int y = 0; y < H; ++y) {
    // Bilinear chroma upsample: each output row blends the two chroma rows
    // bracketing the pixel's chroma-space position (co-sited with the 2x2
    // block centre). Vertical clamping happens here; the row kernel handles
    // the horizontal taps.
    const float cy = (static_cast<float>(y) - 0.5f) / 2.0f;
    const int y0 = static_cast<int>(std::floor(cy));
    const float fy = cy - static_cast<float>(y0);
    const int yc0 = simd::clamp_idx(y0, ch);
    const int yc1 = simd::clamp_idx(y0 + 1, ch);
    const std::size_t off = static_cast<std::size_t>(y) * W;
    kt.yuv_to_rgb_row(yuv.y.data() + off,
                      yuv.u.data() + static_cast<std::size_t>(yc0) * cw,
                      yuv.u.data() + static_cast<std::size_t>(yc1) * cw,
                      yuv.v.data() + static_cast<std::size_t>(yc0) * cw,
                      yuv.v.data() + static_cast<std::size_t>(yc1) * cw, fy, W,
                      cw, out.r.data() + off, out.g.data() + off,
                      out.b.data() + off);
  }
}

}  // namespace dcsr
