#include "image/convert.hpp"

#include <algorithm>
#include <cmath>

namespace dcsr {

namespace {
// BT.601 full-range coefficients.
constexpr float kWr = 0.299f;
constexpr float kWg = 0.587f;
constexpr float kWb = 0.114f;
}  // namespace

float rgb_to_luma(float r, float g, float b) noexcept {
  return kWr * r + kWg * g + kWb * b;
}

FrameYUV rgb_to_yuv420(const FrameRGB& rgb) {
  FrameYUV out;
  rgb_to_yuv420_into(rgb, out);
  return out;
}

void rgb_to_yuv420_into(const FrameRGB& rgb, FrameYUV& out) {
  const int W = rgb.width(), H = rgb.height();
  out.y.reset(W, H);
  out.u.reset(W / 2, H / 2);
  out.v.reset(W / 2, H / 2);
  // Full-resolution U/V scratch for the box filter. Per-thread and reused
  // across calls, like a Workspace checkout: the playback loops convert
  // every frame, and this pass should not be the one allocation left in an
  // otherwise allocation-free steady state.
  thread_local Plane uf, vf;
  uf.reset(W, H);
  vf.reset(W, H);
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      const float r = rgb.r.at(x, y), g = rgb.g.at(x, y), b = rgb.b.at(x, y);
      const float luma = rgb_to_luma(r, g, b);
      out.y.at(x, y) = luma;
      uf.at(x, y) = 0.5f + 0.5f * (b - luma) / (1.0f - kWb);
      vf.at(x, y) = 0.5f + 0.5f * (r - luma) / (1.0f - kWr);
    }
  }
  for (int y = 0; y < H / 2; ++y) {
    for (int x = 0; x < W / 2; ++x) {
      out.u.at(x, y) = 0.25f * (uf.at(2 * x, 2 * y) + uf.at(2 * x + 1, 2 * y) +
                                uf.at(2 * x, 2 * y + 1) + uf.at(2 * x + 1, 2 * y + 1));
      out.v.at(x, y) = 0.25f * (vf.at(2 * x, 2 * y) + vf.at(2 * x + 1, 2 * y) +
                                vf.at(2 * x, 2 * y + 1) + vf.at(2 * x + 1, 2 * y + 1));
    }
  }
}

FrameRGB yuv420_to_rgb(const FrameYUV& yuv) {
  FrameRGB out;
  yuv420_to_rgb_into(yuv, out);
  return out;
}

void yuv420_to_rgb_into(const FrameYUV& yuv, FrameRGB& out) {
  const int W = yuv.width(), H = yuv.height();
  out.r.reset(W, H);
  out.g.reset(W, H);
  out.b.reset(W, H);
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      // Bilinear chroma upsample: sample the half-res plane at the pixel's
      // chroma-space position (co-sited with the 2x2 block centre).
      const float cx = (static_cast<float>(x) - 0.5f) / 2.0f;
      const float cy = (static_cast<float>(y) - 0.5f) / 2.0f;
      const int x0 = static_cast<int>(std::floor(cx));
      const int y0 = static_cast<int>(std::floor(cy));
      const float fx = cx - static_cast<float>(x0);
      const float fy = cy - static_cast<float>(y0);
      auto sample = [&](const Plane& p) {
        const float a = p.at_clamped(x0, y0) * (1 - fx) + p.at_clamped(x0 + 1, y0) * fx;
        const float b = p.at_clamped(x0, y0 + 1) * (1 - fx) + p.at_clamped(x0 + 1, y0 + 1) * fx;
        return a * (1 - fy) + b * fy;
      };
      const float luma = yuv.y.at(x, y);
      const float u = (sample(yuv.u) - 0.5f) * 2.0f * (1.0f - kWb);
      const float v = (sample(yuv.v) - 0.5f) * 2.0f * (1.0f - kWr);
      const float r = luma + v;
      const float b = luma + u;
      const float g = (luma - kWr * r - kWb * b) / kWg;
      out.r.at(x, y) = std::clamp(r, 0.0f, 1.0f);
      out.g.at(x, y) = std::clamp(g, 0.0f, 1.0f);
      out.b.at(x, y) = std::clamp(b, 0.0f, 1.0f);
    }
  }
}

}  // namespace dcsr
