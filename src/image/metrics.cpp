#include "image/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "image/convert.hpp"
#include "image/resize.hpp"

namespace dcsr {

namespace {

double plane_mse(const Plane& a, const Plane& b) {
  if (!a.same_size(b)) throw std::invalid_argument("metrics: plane size mismatch");
  double acc = 0.0;
  const std::size_t n = a.size();
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

double mse_to_psnr(double mse) {
  if (mse <= 1e-10) return 100.0;
  return 10.0 * std::log10(1.0 / mse);
}

Plane luma_of(const FrameRGB& f) {
  Plane out(f.width(), f.height());
  for (int y = 0; y < f.height(); ++y)
    for (int x = 0; x < f.width(); ++x)
      out.at(x, y) = rgb_to_luma(f.r.at(x, y), f.g.at(x, y), f.b.at(x, y));
  return out;
}

}  // namespace

double psnr(const Plane& a, const Plane& b) { return mse_to_psnr(plane_mse(a, b)); }

double psnr(const FrameRGB& a, const FrameRGB& b) {
  const double m = (plane_mse(a.r, b.r) + plane_mse(a.g, b.g) + plane_mse(a.b, b.b)) / 3.0;
  return mse_to_psnr(m);
}

double psnr_luma(const FrameYUV& a, const FrameYUV& b) { return psnr(a.y, b.y); }

double ssim(const Plane& a, const Plane& b) {
  if (!a.same_size(b)) throw std::invalid_argument("ssim: plane size mismatch");
  constexpr int kWin = 8;
  constexpr double kC1 = 0.01 * 0.01;  // (K1 * L)^2 with L = 1
  constexpr double kC2 = 0.03 * 0.03;
  const int W = a.width(), H = a.height();
  if (W < kWin || H < kWin) throw std::invalid_argument("ssim: plane too small");

  double total = 0.0;
  long count = 0;
  // Dense sliding window with stride 4 — dense enough to be stable, cheap
  // enough to run inside per-frame loops of the quality benches.
  constexpr int kStride = 4;
  for (int wy = 0; wy + kWin <= H; wy += kStride) {
    for (int wx = 0; wx + kWin <= W; wx += kStride) {
      double ma = 0.0, mb = 0.0;
      for (int y = 0; y < kWin; ++y)
        for (int x = 0; x < kWin; ++x) {
          ma += a.at(wx + x, wy + y);
          mb += b.at(wx + x, wy + y);
        }
      constexpr double kN = kWin * kWin;
      ma /= kN;
      mb /= kN;
      double va = 0.0, vb = 0.0, cov = 0.0;
      for (int y = 0; y < kWin; ++y)
        for (int x = 0; x < kWin; ++x) {
          const double da = a.at(wx + x, wy + y) - ma;
          const double db = b.at(wx + x, wy + y) - mb;
          va += da * da;
          vb += db * db;
          cov += da * db;
        }
      va /= kN - 1;
      vb /= kN - 1;
      cov /= kN - 1;
      const double num = (2 * ma * mb + kC1) * (2 * cov + kC2);
      const double den = (ma * ma + mb * mb + kC1) * (va + vb + kC2);
      total += num / den;
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

double ssim(const FrameRGB& a, const FrameRGB& b) {
  return ssim(luma_of(a), luma_of(b));
}

double ms_ssim(const Plane& a, const Plane& b, int scales) {
  if (scales < 1) throw std::invalid_argument("ms_ssim: need >= 1 scale");
  Plane pa = a, pb = b;
  double product = 1.0;
  for (int s = 0; s < scales; ++s) {
    product *= std::max(0.0, ssim(pa, pb));
    if (s + 1 < scales) {
      if (pa.width() < 16 || pa.height() < 16)
        throw std::invalid_argument("ms_ssim: plane too small for scale count");
      // Box-halve; trim an odd edge row/column first if needed.
      const int w = pa.width() & ~1, h = pa.height() & ~1;
      Plane ta(w, h), tb(w, h);
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
          ta.at(x, y) = pa.at(x, y);
          tb.at(x, y) = pb.at(x, y);
        }
      pa = downscale_box(ta, 2);
      pb = downscale_box(tb, 2);
    }
  }
  return std::pow(product, 1.0 / scales);
}

double ms_ssim(const FrameRGB& a, const FrameRGB& b, int scales) {
  return ms_ssim(luma_of(a), luma_of(b), scales);
}

}  // namespace dcsr
