#include "image/frame.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcsr {

float Plane::at_clamped(int x, int y) const noexcept {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return data_[static_cast<std::size_t>(y) * width_ + x];
}

void Plane::clamp01() noexcept {
  for (auto& p : data_) p = std::clamp(p, 0.0f, 1.0f);
}

Tensor frame_to_tensor(const FrameRGB& f) {
  Tensor t;
  frame_to_tensor_into(f, t);
  return t;
}

void frame_to_tensor_into(const FrameRGB& f, Tensor& t) {
  const int H = f.height(), W = f.width();
  t.reset({1, 3, H, W});
  const Plane* planes[3] = {&f.r, &f.g, &f.b};
  for (int c = 0; c < 3; ++c)
    for (int y = 0; y < H; ++y)
      for (int x = 0; x < W; ++x) t.at(0, c, y, x) = planes[c]->at(x, y);
}

FrameRGB tensor_to_frame(const Tensor& t) {
  FrameRGB f;
  tensor_to_frame_into(t, f);
  return f;
}

void tensor_to_frame_into(const Tensor& t, FrameRGB& f) {
  if (t.rank() != 4 || t.dim(0) != 1 || t.dim(1) != 3)
    throw std::invalid_argument("tensor_to_frame: expected 1x3xHxW");
  const int H = t.dim(2), W = t.dim(3);
  f.r.reset(W, H);
  f.g.reset(W, H);
  f.b.reset(W, H);
  Plane* planes[3] = {&f.r, &f.g, &f.b};
  for (int c = 0; c < 3; ++c)
    for (int y = 0; y < H; ++y)
      for (int x = 0; x < W; ++x)
        planes[c]->at(x, y) = std::clamp(t.at(0, c, y, x), 0.0f, 1.0f);
}

void frames_to_tensor_into(const FrameRGB* const* frames, int n, Tensor& t) {
  if (n <= 0) throw std::invalid_argument("frames_to_tensor: empty batch");
  const int H = frames[0]->height(), W = frames[0]->width();
  for (int i = 0; i < n; ++i)
    if (frames[i]->width() != W || frames[i]->height() != H)
      throw std::invalid_argument(
          "frames_to_tensor: mixed frame geometry in batch");
  t.reset({n, 3, H, W});
  // Per batch item, exactly the frame_to_tensor_into loop: a batch packs to
  // the same floats, at batch index i, as n single-frame packs.
  for (int i = 0; i < n; ++i) {
    const FrameRGB& f = *frames[i];
    const Plane* planes[3] = {&f.r, &f.g, &f.b};
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < H; ++y)
        for (int x = 0; x < W; ++x) t.at(i, c, y, x) = planes[c]->at(x, y);
  }
}

void tensor_to_frames_into(const Tensor& t, FrameRGB* const* frames) {
  if (t.rank() != 4 || t.dim(1) != 3)
    throw std::invalid_argument("tensor_to_frames: expected Nx3xHxW");
  const int N = t.dim(0), H = t.dim(2), W = t.dim(3);
  for (int i = 0; i < N; ++i) {
    FrameRGB& f = *frames[i];
    f.r.reset(W, H);
    f.g.reset(W, H);
    f.b.reset(W, H);
    Plane* planes[3] = {&f.r, &f.g, &f.b};
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < H; ++y)
        for (int x = 0; x < W; ++x)
          planes[c]->at(x, y) = std::clamp(t.at(i, c, y, x), 0.0f, 1.0f);
  }
}

}  // namespace dcsr
