#pragma once

#include <memory>
#include <string>
#include <vector>

#include "video/scene.hpp"

namespace dcsr {

/// Random-access frame producer. The codec and pipelines consume this
/// interface, so real decoders, synthetic generators, and test fixtures are
/// interchangeable. Frames must be pure functions of the index (no hidden
/// playback state), which permits out-of-order access during training.
class VideoSource {
 public:
  VideoSource() = default;
  VideoSource(const VideoSource&) = delete;
  VideoSource& operator=(const VideoSource&) = delete;
  virtual ~VideoSource() = default;

  virtual FrameRGB frame(int index) const = 0;
  virtual int frame_count() const noexcept = 0;
  virtual int width() const noexcept = 0;
  virtual int height() const noexcept = 0;
  virtual double fps() const noexcept = 0;

  double duration_seconds() const noexcept {
    return static_cast<double>(frame_count()) / fps();
  }
};

/// One shot in a video script: which scene plays, for how many frames, and
/// the time offset within the scene (a recurring scene may resume at a
/// different phase, like a news studio shot that returns mid-broadcast).
struct Shot {
  int scene_id = 0;
  int frame_count = 0;
  double scene_time_offset = 0.0;
};

/// Synthetic video assembled from a scene library and a shot list. Repeating
/// a scene_id across shots creates the long-term visual recurrence that
/// dcSR's segment clustering is designed to exploit.
class SyntheticVideo final : public VideoSource {
 public:
  SyntheticVideo(std::string name, std::vector<SceneSpec> scenes,
                 std::vector<Shot> shots, int width, int height, double fps);

  FrameRGB frame(int index) const override;
  int frame_count() const noexcept override { return total_frames_; }
  int width() const noexcept override { return width_; }
  int height() const noexcept override { return height_; }
  double fps() const noexcept override { return fps_; }

  const std::string& name() const noexcept { return name_; }
  const std::vector<Shot>& shots() const noexcept { return shots_; }
  std::size_t scene_count() const noexcept { return scenes_.size(); }

  /// Index of the shot containing the given frame.
  int shot_of_frame(int index) const;

  /// Ground-truth scene id of a frame; tests use this as the clustering
  /// oracle (frames of the same scene should land in the same cluster).
  int scene_of_frame(int index) const { return shots_[static_cast<std::size_t>(shot_of_frame(index))].scene_id; }

 private:
  std::string name_;
  std::vector<SceneSpec> scenes_;
  std::vector<Shot> shots_;
  std::vector<int> shot_start_;  // first frame index of each shot
  int width_, height_;
  double fps_;
  int total_frames_ = 0;
};

}  // namespace dcsr
