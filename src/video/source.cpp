#include "video/source.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcsr {

SyntheticVideo::SyntheticVideo(std::string name, std::vector<SceneSpec> scenes,
                               std::vector<Shot> shots, int width, int height,
                               double fps)
    : name_(std::move(name)),
      scenes_(std::move(scenes)),
      shots_(std::move(shots)),
      width_(width),
      height_(height),
      fps_(fps) {
  if (scenes_.empty() || shots_.empty())
    throw std::invalid_argument("SyntheticVideo: empty scene library or shot list");
  shot_start_.reserve(shots_.size());
  for (const auto& shot : shots_) {
    if (shot.frame_count <= 0)
      throw std::invalid_argument("SyntheticVideo: shot with no frames");
    if (shot.scene_id < 0 || static_cast<std::size_t>(shot.scene_id) >= scenes_.size())
      throw std::invalid_argument("SyntheticVideo: shot references unknown scene");
    shot_start_.push_back(total_frames_);
    total_frames_ += shot.frame_count;
  }
}

int SyntheticVideo::shot_of_frame(int index) const {
  if (index < 0 || index >= total_frames_)
    throw std::out_of_range("SyntheticVideo: frame index out of range");
  const auto it = std::upper_bound(shot_start_.begin(), shot_start_.end(), index);
  return static_cast<int>(it - shot_start_.begin()) - 1;
}

FrameRGB SyntheticVideo::frame(int index) const {
  const int shot_idx = shot_of_frame(index);
  const auto& shot = shots_[static_cast<std::size_t>(shot_idx)];
  const int local = index - shot_start_[static_cast<std::size_t>(shot_idx)];
  const double t = shot.scene_time_offset + static_cast<double>(local) / fps_;
  return render_scene(scenes_[static_cast<std::size_t>(shot.scene_id)], t, width_, height_);
}

}  // namespace dcsr
