#include "video/noise.hpp"

#include <cmath>

namespace dcsr {

namespace {

// Mixes lattice coordinates and seed into a uniform [0,1) float.
float hash01(std::int64_t ix, std::int64_t iy, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<float>(h >> 11) * 0x1.0p-53f;
}

float smoothstep(float t) noexcept { return t * t * (3.0f - 2.0f * t); }

}  // namespace

float ValueNoise::lattice(std::int64_t ix, std::int64_t iy) const noexcept {
  return hash01(ix, iy, seed_);
}

float ValueNoise::sample(float x, float y, float scale) const noexcept {
  const float fx = x / scale;
  const float fy = y / scale;
  const auto ix = static_cast<std::int64_t>(std::floor(fx));
  const auto iy = static_cast<std::int64_t>(std::floor(fy));
  const float tx = smoothstep(fx - static_cast<float>(ix));
  const float ty = smoothstep(fy - static_cast<float>(iy));
  const float a = lattice(ix, iy);
  const float b = lattice(ix + 1, iy);
  const float c = lattice(ix, iy + 1);
  const float d = lattice(ix + 1, iy + 1);
  const float top = a + (b - a) * tx;
  const float bot = c + (d - c) * tx;
  return top + (bot - top) * ty;
}

float ValueNoise::fbm(float x, float y, float base_scale, int octaves) const noexcept {
  float acc = 0.0f, amp = 1.0f, norm = 0.0f, scale = base_scale;
  for (int o = 0; o < octaves; ++o) {
    acc += amp * sample(x, y, scale);
    norm += amp;
    amp *= 0.5f;
    scale *= 0.5f;
    if (scale < 1.0f) break;
  }
  return acc / norm;
}

}  // namespace dcsr
