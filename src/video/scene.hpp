#pragma once

#include <cstdint>
#include <vector>

#include "image/frame.hpp"
#include "util/rng.hpp"

namespace dcsr {

/// Colour triple in [0,1].
struct Color {
  float r = 0.0f, g = 0.0f, b = 0.0f;
};

/// One moving foreground object in a scene.
struct Sprite {
  enum class Shape { kRectangle, kCircle };
  Shape shape = Shape::kRectangle;
  // Position/size in scene-relative units ([0,1] of frame width/height) so a
  // scene renders consistently at any resolution.
  float cx = 0.5f, cy = 0.5f;   // centre at t = 0
  float vx = 0.0f, vy = 0.0f;   // units per second
  float w = 0.1f, h = 0.1f;     // extent
  Color color;
  float texture_amount = 0.0f;  // 0 = flat fill, 1 = fully textured
};

/// Background style of a scene.
enum class Background : std::uint8_t {
  kGradient,     // smooth two-colour gradient (cheap to encode)
  kTexture,      // fractal value-noise texture (detail-rich, SR-relevant)
  kStripes,      // high-contrast periodic pattern (sharp edges)
  kCheckerboard  // blocky pattern (animation/gaming look)
};

/// A full static description of one shot's content. Rendering a frame is a
/// pure function of (SceneSpec, time), which is what lets distinct segments
/// that share a SceneSpec be *visually identical up to motion phase* — the
/// long-term scene-recurrence property dcSR's clustering exploits.
struct SceneSpec {
  std::uint64_t seed = 1;  // drives the texture lattice + deterministic detail
  Background background = Background::kTexture;
  Color color_a, color_b;   // palette endpoints
  float texture_scale = 24.0f;  // lattice cell size in pixels at 1080p-equivalent
  int texture_octaves = 4;
  float pan_vx = 0.0f, pan_vy = 0.0f;  // background pan, units/second
  float flicker = 0.0f;                // global luma modulation amplitude
  std::vector<Sprite> sprites;
};

/// Renders the scene at time `t` seconds into a frame of the given size.
FrameRGB render_scene(const SceneSpec& spec, double t, int width, int height);

/// Draws a random scene from a genre-agnostic distribution; used by tests
/// and as a building block for the genre presets.
SceneSpec random_scene(Rng& rng, float motion_intensity, float texture_detail);

}  // namespace dcsr
