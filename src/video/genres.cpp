#include "video/genres.hpp"

#include <cmath>
#include <stdexcept>

namespace dcsr {

std::vector<Genre> all_genres() {
  return {Genre::kAnimation, Genre::kSports,      Genre::kNews,
          Genre::kMusicVideo, Genre::kDocumentary, Genre::kGaming};
}

std::string genre_name(Genre g) {
  switch (g) {
    case Genre::kAnimation: return "animation";
    case Genre::kSports: return "sports";
    case Genre::kNews: return "news";
    case Genre::kMusicVideo: return "music";
    case Genre::kDocumentary: return "documentary";
    case Genre::kGaming: return "gaming";
  }
  throw std::invalid_argument("genre_name: unknown genre");
}

GenreProfile profile_for(Genre g) {
  switch (g) {
    case Genre::kAnimation:
      return {.scene_library_size = 10, .mean_shot_seconds = 3.0,
              .motion_intensity = 0.8f, .texture_detail = 0.2f,
              .recurrence_prob = 0.6};
    case Genre::kSports:
      return {.scene_library_size = 8, .mean_shot_seconds = 5.0,
              .motion_intensity = 2.0f, .texture_detail = 0.7f,
              .recurrence_prob = 0.5};
    case Genre::kNews:
      return {.scene_library_size = 5, .mean_shot_seconds = 8.0,
              .motion_intensity = 0.2f, .texture_detail = 0.4f,
              .recurrence_prob = 0.75};
    case Genre::kMusicVideo:
      return {.scene_library_size = 14, .mean_shot_seconds = 2.0,
              .motion_intensity = 1.5f, .texture_detail = 0.6f,
              .recurrence_prob = 0.55};
    case Genre::kDocumentary:
      return {.scene_library_size = 18, .mean_shot_seconds = 7.0,
              .motion_intensity = 0.5f, .texture_detail = 0.9f,
              .recurrence_prob = 0.25};
    case Genre::kGaming:
      return {.scene_library_size = 9, .mean_shot_seconds = 4.0,
              .motion_intensity = 1.8f, .texture_detail = 0.5f,
              .recurrence_prob = 0.5};
  }
  throw std::invalid_argument("profile_for: unknown genre");
}

std::unique_ptr<SyntheticVideo> make_genre_video(Genre g, std::uint64_t seed,
                                                 int width, int height,
                                                 double duration_seconds,
                                                 double fps) {
  const GenreProfile prof = profile_for(g);
  Rng rng(seed ^ (static_cast<std::uint64_t>(g) << 32));

  std::vector<SceneSpec> scenes;
  scenes.reserve(static_cast<std::size_t>(prof.scene_library_size));
  for (int i = 0; i < prof.scene_library_size; ++i)
    scenes.push_back(random_scene(rng, prof.motion_intensity, prof.texture_detail));

  const int total_frames = std::max(1, static_cast<int>(duration_seconds * fps));
  std::vector<Shot> shots;
  int emitted = 0;
  std::vector<int> used_scenes;
  while (emitted < total_frames) {
    // Shot length: exponential-ish around the genre mean, clamped to at
    // least half a second so every shot has room for an I frame + deltas.
    const double len_s = std::max(
        0.5, prof.mean_shot_seconds * (0.5 + rng.uniform() * 1.0));
    int frames = std::min(total_frames - emitted,
                          std::max(8, static_cast<int>(len_s * fps)));

    Shot shot;
    if (!used_scenes.empty() && rng.uniform() < prof.recurrence_prob) {
      // Revisit a previously used scene, resuming at a fresh time offset —
      // visually the same content, later in the video.
      shot.scene_id = used_scenes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(used_scenes.size()) - 1))];
      shot.scene_time_offset = rng.uniform(0.0, 30.0);
    } else {
      shot.scene_id = static_cast<int>(rng.uniform_int(0, prof.scene_library_size - 1));
      shot.scene_time_offset = 0.0;
      used_scenes.push_back(shot.scene_id);
    }
    shot.frame_count = frames;
    shots.push_back(shot);
    emitted += frames;
  }

  return std::make_unique<SyntheticVideo>(genre_name(g), std::move(scenes),
                                          std::move(shots), width, height, fps);
}

}  // namespace dcsr
