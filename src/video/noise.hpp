#pragma once

#include <cstdint>

namespace dcsr {

/// Deterministic 2-D value noise with multiple octaves. Every sample is a
/// pure function of (x, y, seed), so frames can be rendered in any order and
/// the same seed always produces the same video — the property the whole
/// reproducibility story rests on.
class ValueNoise {
 public:
  explicit ValueNoise(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Single-octave smooth noise in [0,1]; `scale` is the lattice cell size in
  /// pixels (larger = smoother).
  float sample(float x, float y, float scale) const noexcept;

  /// Fractal sum of `octaves` octaves with persistence 0.5, in [0,1].
  float fbm(float x, float y, float base_scale, int octaves) const noexcept;

 private:
  float lattice(std::int64_t ix, std::int64_t iy) const noexcept;

  std::uint64_t seed_;
};

}  // namespace dcsr
