#pragma once

#include <memory>
#include <string>
#include <vector>

#include "video/source.hpp"

namespace dcsr {

/// The six content genres standing in for the paper's "6 representative
/// videos from different genres from YouTube" (§4). Each genre differs in
/// the dimensions that matter to dcSR: scene-library size, cut frequency,
/// motion intensity, texture richness, and — critically — how often scenes
/// *recur* later in the video.
enum class Genre {
  kAnimation,    // flat colours, sharp edges, frequent cuts, strong recurrence
  kSports,       // fast pans, textured field, moderate recurrence (replays)
  kNews,         // near-static studio shots that recur heavily
  kMusicVideo,   // rapid cuts, high contrast, chorus scenes recur
  kDocumentary,  // slow pans, rich texture, little recurrence
  kGaming        // synthetic patterns, fast motion, map areas recur
};

/// All genres, in a stable order (video index 1..6 in the paper's figures).
std::vector<Genre> all_genres();

std::string genre_name(Genre g);

/// Knobs that define a genre's statistics; exposed so tests can build videos
/// with controlled properties.
struct GenreProfile {
  int scene_library_size = 12;    // distinct scenes available
  double mean_shot_seconds = 4.0; // average shot length
  float motion_intensity = 1.0f;  // scales pan/sprite velocity
  float texture_detail = 0.5f;    // scales texture octaves/scale
  double recurrence_prob = 0.5;   // P(next shot reuses an earlier scene)
};

GenreProfile profile_for(Genre g);

/// Builds a deterministic synthetic video of the given genre. The paper's
/// videos average 754 s; tests pass much shorter durations.
std::unique_ptr<SyntheticVideo> make_genre_video(Genre g, std::uint64_t seed,
                                                 int width, int height,
                                                 double duration_seconds,
                                                 double fps = 30.0);

}  // namespace dcsr
