#include "video/scene.hpp"

#include <algorithm>
#include <cmath>

#include "video/noise.hpp"

namespace dcsr {

namespace {

Color lerp(const Color& a, const Color& b, float t) noexcept {
  return {a.r + (b.r - a.r) * t, a.g + (b.g - a.g) * t, a.b + (b.b - a.b) * t};
}

Color background_color(const SceneSpec& spec, const ValueNoise& noise, float px,
                       float py, int width, int height) {
  // Scale texture coordinates so a scene looks the same (just sharper) at any
  // render resolution; 1080 rows is the reference. The floor keeps features
  // at least a few pixels wide — real video downscaled this far is smooth,
  // not pixel noise, and pixel noise is not super-resolvable content.
  const float res_scale = static_cast<float>(height) / 1080.0f;
  const float scale = std::max(6.0f, spec.texture_scale * res_scale);
  switch (spec.background) {
    case Background::kGradient: {
      const float t = 0.5f * (px / static_cast<float>(width) +
                              py / static_cast<float>(height));
      return lerp(spec.color_a, spec.color_b, std::clamp(t, 0.0f, 1.0f));
    }
    case Background::kTexture: {
      const float n = noise.fbm(px, py, scale, spec.texture_octaves);
      return lerp(spec.color_a, spec.color_b, n);
    }
    case Background::kStripes: {
      const float phase = std::sin(2.0f * 3.14159265f * px / (scale * 2.0f));
      return phase > 0.0f ? spec.color_a : spec.color_b;
    }
    case Background::kCheckerboard: {
      const int cx = static_cast<int>(std::floor(px / scale));
      const int cy = static_cast<int>(std::floor(py / scale));
      return ((cx + cy) & 1) ? spec.color_a : spec.color_b;
    }
  }
  return spec.color_a;
}

}  // namespace

FrameRGB render_scene(const SceneSpec& spec, double t, int width, int height) {
  FrameRGB frame(width, height);
  const ValueNoise noise(spec.seed);
  const ValueNoise sprite_noise(spec.seed ^ 0xabcdef1234ULL);

  const float pan_x = static_cast<float>(spec.pan_vx * t) * static_cast<float>(width);
  const float pan_y = static_cast<float>(spec.pan_vy * t) * static_cast<float>(height);
  const float flick =
      1.0f + spec.flicker * std::sin(static_cast<float>(t) * 6.0f);

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const float px = static_cast<float>(x) + pan_x;
      const float py = static_cast<float>(y) + pan_y;
      Color c = background_color(spec, noise, px, py, width, height);
      c.r = std::clamp(c.r * flick, 0.0f, 1.0f);
      c.g = std::clamp(c.g * flick, 0.0f, 1.0f);
      c.b = std::clamp(c.b * flick, 0.0f, 1.0f);
      frame.r.at(x, y) = c.r;
      frame.g.at(x, y) = c.g;
      frame.b.at(x, y) = c.b;
    }
  }

  // Foreground sprites, drawn back-to-front in declaration order. Sprites
  // bounce off frame edges so long shots keep their content on screen.
  for (const auto& s : spec.sprites) {
    auto bounce = [](float start, float v, double tt) {
      float pos = start + static_cast<float>(v * tt);
      pos = std::fmod(pos, 2.0f);
      if (pos < 0.0f) pos += 2.0f;
      return pos > 1.0f ? 2.0f - pos : pos;
    };
    const float cx = bounce(s.cx, s.vx, t) * static_cast<float>(width);
    const float cy = bounce(s.cy, s.vy, t) * static_cast<float>(height);
    const float hw = 0.5f * s.w * static_cast<float>(width);
    const float hh = 0.5f * s.h * static_cast<float>(height);
    const int x0 = std::max(0, static_cast<int>(cx - hw));
    const int x1 = std::min(width - 1, static_cast<int>(cx + hw));
    const int y0 = std::max(0, static_cast<int>(cy - hh));
    const int y1 = std::min(height - 1, static_cast<int>(cy + hh));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        if (s.shape == Sprite::Shape::kCircle) {
          const float dx = (static_cast<float>(x) - cx) / hw;
          const float dy = (static_cast<float>(y) - cy) / hh;
          if (dx * dx + dy * dy > 1.0f) continue;
        }
        Color c = s.color;
        if (s.texture_amount > 0.0f) {
          const float n = sprite_noise.fbm(static_cast<float>(x - x0),
                                           static_cast<float>(y - y0), 8.0f, 3);
          const float m = 1.0f - s.texture_amount * (1.0f - n);
          c.r *= m;
          c.g *= m;
          c.b *= m;
        }
        frame.r.at(x, y) = c.r;
        frame.g.at(x, y) = c.g;
        frame.b.at(x, y) = c.b;
      }
    }
  }
  return frame;
}

SceneSpec random_scene(Rng& rng, float motion_intensity, float texture_detail) {
  SceneSpec spec;
  spec.seed = rng.next_u64();
  const double bg = rng.uniform();
  if (bg < 0.5) {
    spec.background = Background::kTexture;
  } else if (bg < 0.7) {
    spec.background = Background::kGradient;
  } else if (bg < 0.85) {
    spec.background = Background::kStripes;
  } else {
    spec.background = Background::kCheckerboard;
  }
  spec.color_a = {static_cast<float>(rng.uniform(0.05, 0.95)),
                  static_cast<float>(rng.uniform(0.05, 0.95)),
                  static_cast<float>(rng.uniform(0.05, 0.95))};
  spec.color_b = {static_cast<float>(rng.uniform(0.05, 0.95)),
                  static_cast<float>(rng.uniform(0.05, 0.95)),
                  static_cast<float>(rng.uniform(0.05, 0.95))};
  spec.texture_scale = static_cast<float>(rng.uniform(10.0, 60.0)) /
                       std::max(0.25f, texture_detail);
  spec.texture_octaves = 2 + static_cast<int>(texture_detail * 4.0f);
  spec.pan_vx = static_cast<float>(rng.uniform(-0.05, 0.05)) * motion_intensity;
  spec.pan_vy = static_cast<float>(rng.uniform(-0.02, 0.02)) * motion_intensity;
  spec.flicker = static_cast<float>(rng.uniform(0.0, 0.03));

  const int n_sprites = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < n_sprites; ++i) {
    Sprite s;
    s.shape = rng.uniform() < 0.5 ? Sprite::Shape::kRectangle : Sprite::Shape::kCircle;
    s.cx = static_cast<float>(rng.uniform(0.1, 0.9));
    s.cy = static_cast<float>(rng.uniform(0.1, 0.9));
    s.vx = static_cast<float>(rng.uniform(-0.25, 0.25)) * motion_intensity;
    s.vy = static_cast<float>(rng.uniform(-0.15, 0.15)) * motion_intensity;
    s.w = static_cast<float>(rng.uniform(0.05, 0.25));
    s.h = static_cast<float>(rng.uniform(0.05, 0.25));
    s.color = {static_cast<float>(rng.uniform(0.1, 1.0)),
               static_cast<float>(rng.uniform(0.1, 1.0)),
               static_cast<float>(rng.uniform(0.1, 1.0))};
    s.texture_amount = static_cast<float>(rng.uniform(0.0, 1.0)) * texture_detail;
    spec.sprites.push_back(s);
  }
  return spec;
}

}  // namespace dcsr
