#pragma once

#include <string>
#include <vector>

namespace dcsr {

/// Minimal fixed-layout ASCII table used by the bench binaries to print the
/// rows/series that correspond to the paper's tables and figures.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Renders the table with aligned columns.
  std::string to_string() const;

  /// Renders comma-separated values (header + rows), for downstream plotting.
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (locale-independent).
std::string fmt(double v, int decimals = 2);

}  // namespace dcsr
