#include "util/rng.hpp"

#include <cmath>

namespace dcsr {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four xoshiro words from splitmix64 as recommended by the
  // xoshiro authors; guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace dcsr
