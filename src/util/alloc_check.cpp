#include "util/alloc_check.hpp"

#include <cstdio>

#include "util/env.hpp"

namespace dcsr {

// The message is assembled with snprintf into the inline buffer: an
// exception thrown *by operator new* must never allocate, or the throw
// would recurse into the very interposer that is throwing. (The exception
// object itself is carved from the runtime's __cxa_allocate_exception pool
// via malloc, which the interposer deliberately leaves untouched.)
HotPathAllocError::HotPathAllocError(const char* site, std::size_t bytes,
                                     int depth) noexcept
    : site_(site), bytes_(bytes), depth_(depth) {
  std::snprintf(msg_, sizeof msg_,
                "HotPathAllocError: heap allocation of %zu bytes inside "
                "hot-path region '%s' (guard depth %d) — hot paths must not "
                "touch the allocator; draw scratch from the Workspace or "
                "sanction the warm-up path with AllocAllowScope",
                bytes, site == nullptr ? "<unknown>" : site, depth);
}

}  // namespace dcsr

#if DCSR_ALLOC_CHECK

#include <cstdlib>

#include <atomic>

namespace dcsr {

namespace {

// All thread state is constant-initialised PODs: the interposer can run
// before main(), during TLS setup of other objects, and after static
// destructors, so nothing here may have a dynamic initialiser or destructor.
thread_local AllocStats tl_stats;
thread_local const char* tl_sites[HotPathGuard::kMaxDepth];
thread_local int tl_depth = 0;   // may exceed kMaxDepth (site stack saturates)
thread_local int tl_allow = 0;   // nesting count of AllocAllowScopes

// -1 = not yet resolved from the environment, 0 = off, 1 = on.
std::atomic<int> g_enforce{-1};

const char* innermost_site() noexcept {
  if (tl_depth <= 0) return nullptr;
  const int idx =
      tl_depth <= HotPathGuard::kMaxDepth ? tl_depth - 1 : HotPathGuard::kMaxDepth - 1;
  return tl_sites[idx];
}

// Guard check for one allocation attempt. Runs *before* the underlying
// malloc, so a violation never actually allocates; `can_throw` is false for
// the nothrow operator new variants, which report to stderr instead (they
// are noexcept, and returning nullptr would convert the diagnostic into an
// unrelated-looking crash in the caller).
void enforce(std::size_t size, bool can_throw) {
  if (tl_depth <= 0 || tl_allow > 0) return;
  if (!alloc_check_enabled()) return;
  if (can_throw) throw HotPathAllocError(innermost_site(), size, tl_depth);
  std::fprintf(stderr,
               "dcsr alloc-check: nothrow allocation of %zu bytes inside "
               "hot-path region '%s' (guard depth %d)\n",
               size, innermost_site(), tl_depth);
}

void count_alloc(std::size_t size) noexcept {
  ++tl_stats.allocs;
  tl_stats.bytes += size;
  if (tl_depth > 0 && tl_allow > 0) ++tl_stats.sanctioned;
}

}  // namespace

// External linkage (but deliberately not declared in the header): the global
// operator new/delete replacements below cannot name members of an anonymous
// namespace.
void* checked_alloc(std::size_t size, std::size_t align, bool can_throw) {
  enforce(size, can_throw);
  if (size == 0) size = 1;  // distinct-pointer contract for zero-size new
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(size);
  } else {
    if (align < sizeof(void*)) align = sizeof(void*);
    if (posix_memalign(&p, align, size) != 0) p = nullptr;
  }
  if (p == nullptr) {
    if (can_throw) throw std::bad_alloc();
    return nullptr;
  }
  count_alloc(size);
  return p;
}

void checked_free(void* p) noexcept {
  if (p == nullptr) return;
  ++tl_stats.frees;
  std::free(p);
}

HotPathGuard::HotPathGuard(const char* site) noexcept {
  // Beyond kMaxDepth the site stack saturates: depth keeps counting (so the
  // destructor stays balanced) but the innermost recorded site is the
  // deepest stored one. Sixteen nested hot-path regions is already a bug.
  if (tl_depth < kMaxDepth) tl_sites[tl_depth] = site;
  ++tl_depth;
}

HotPathGuard::~HotPathGuard() { --tl_depth; }

AllocAllowScope::AllocAllowScope() noexcept { ++tl_allow; }

AllocAllowScope::~AllocAllowScope() { --tl_allow; }

AllocStats thread_alloc_stats() noexcept { return tl_stats; }

const char* active_hot_path() noexcept { return innermost_site(); }

int hot_path_depth() noexcept { return tl_depth; }

bool alloc_check_enabled() noexcept {
  const int s = g_enforce.load(std::memory_order_relaxed);
  if (s >= 0) return s == 1;
  // env_bool is allocation-free, so resolving lazily from inside the
  // allocator is safe. Default on: the build compiled the auditor in.
  bool on = true;
  if (const auto v = env_bool("DCSR_ALLOC_CHECK")) on = *v;
  g_enforce.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

void set_alloc_check_enabled(bool enabled) noexcept {
  g_enforce.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace dcsr

// ---------------------------------------------------------------------------
// The interposer: replaceable global allocation functions. Defined here —
// and only in DCSR_ALLOC_CHECK builds, so release binaries keep the default
// allocator untouched. Every variant funnels through checked_alloc /
// checked_free; malloc itself is not interposed (the exception runtime and
// C-library internals rely on it).
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  return dcsr::checked_alloc(size, 0, /*can_throw=*/true);
}
void* operator new[](std::size_t size) {
  return dcsr::checked_alloc(size, 0, /*can_throw=*/true);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return dcsr::checked_alloc(size, static_cast<std::size_t>(align), true);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return dcsr::checked_alloc(size, static_cast<std::size_t>(align), true);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return dcsr::checked_alloc(size, 0, /*can_throw=*/false);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return dcsr::checked_alloc(size, 0, /*can_throw=*/false);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return dcsr::checked_alloc(size, static_cast<std::size_t>(align), false);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return dcsr::checked_alloc(size, static_cast<std::size_t>(align), false);
}

void operator delete(void* p) noexcept { dcsr::checked_free(p); }
void operator delete[](void* p) noexcept { dcsr::checked_free(p); }
void operator delete(void* p, std::size_t) noexcept { dcsr::checked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { dcsr::checked_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { dcsr::checked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  dcsr::checked_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  dcsr::checked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  dcsr::checked_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  dcsr::checked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  dcsr::checked_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  dcsr::checked_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  dcsr::checked_free(p);
}

#endif  // DCSR_ALLOC_CHECK
