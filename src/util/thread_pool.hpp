#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "util/function_ref.hpp"

namespace dcsr {

/// Byte range a parallel chunk declares it will write. Claims are half-open:
/// [lo, hi). An empty claim (lo == hi, or both null) declares "this chunk
/// writes nothing the checker should track".
struct WriteSpan {
  const void* lo = nullptr;
  const void* hi = nullptr;
};

/// Claims the storage of `count` objects starting at `p` — the usual way a
/// kernel maps a chunk [lo, hi) onto the output slice it owns:
/// `span_of(out + lo * stride, (hi - lo) * stride)`.
template <typename T>
WriteSpan span_of(T* p, std::size_t count) noexcept {
  return {static_cast<const void*>(p), static_cast<const void*>(p + count)};
}

/// Thrown by the claim checker when two concurrent chunks declare
/// overlapping write ranges — a violation of the "disjoint outputs" rule the
/// whole determinism contract rests on. The message names both call sites.
class ParallelOverlapError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Whether write-claim checking is active. Resolved once from the
/// environment on first use: `DCSR_CHECK_PARALLEL=1` (or `on`/`true`) turns
/// it on, `=0` (or `off`/`false`) turns it off, unset defaults to on in a
/// `-DDCSR_CHECKED=ON` build and off otherwise.
bool parallel_check_enabled() noexcept;

/// Force the checker on or off, overriding the environment. Test hook; also
/// lets a long-lived server enable checking for a canary slice of traffic.
void set_parallel_check_enabled(bool enabled) noexcept;

/// Persistent worker pool behind `parallel_for`.
///
/// Everything compute-bound in the library (GEMM row blocks, per-item conv
/// batches, per-cluster training) is expressed as a static-chunked
/// `parallel_for` over an index range. Determinism is a hard contract: the
/// kernels only ever parallelise over *disjoint outputs* and reduce any
/// shared accumulators in index order, so results are bit-identical no
/// matter how many threads run — a pool of 1 is exactly the serial program.
/// `parallel_for_writes` lets a kernel declare the output span each chunk
/// owns so the disjointness half of that contract is machine-checked.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread always participates);
  /// `threads <= 1` spawns none and every parallel_for runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads this pool targets (including the caller).
  int threads() const noexcept { return threads_; }

  /// Splits [begin, end) into at most `threads()` contiguous chunks, each of
  /// at least `grain` indices, and runs `fn(chunk_begin, chunk_end)` for
  /// every chunk — the first on the calling thread, the rest on workers.
  /// Blocks until all chunks finish; the first exception thrown by any chunk
  /// is rethrown here. Nested calls (from inside a chunk) degrade to inline
  /// serial execution, so layered kernels never deadlock or oversubscribe.
  /// `begin == end` is a no-op; `end < begin` and `grain < 1` throw
  /// std::invalid_argument.
  ///
  /// `fn` is a FunctionRef — a non-owning view, never a heap-backed copy —
  /// because dispatch itself must stay allocation-free: every kernel beneath
  /// an Edsr frame runs under a DCSR_ALLOC_CHECK HotPathGuard, and the guard
  /// is re-installed on pool workers (see active_hot_path) so the fan-out is
  /// audited end to end.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    FunctionRef<void(std::int64_t, std::int64_t)> fn);

  /// parallel_for with a declared write set: `claim(chunk_begin, chunk_end)`
  /// returns the byte span that chunk will write. When the checker is active
  /// (see parallel_check_enabled) the claims for *all* chunks of the region
  /// are computed up front — so detection is deterministic, not a function
  /// of scheduling luck — and validated for pairwise disjointness and
  /// against every claim of every other region currently in flight; any
  /// overlap throws ParallelOverlapError naming both sites. When the checker
  /// is off the claim callback is never invoked and this is exactly
  /// parallel_for. Nested (inline) regions skip claiming: they add no
  /// concurrency, and their writes legitimately land inside the enclosing
  /// chunk's claim.
  void parallel_for_writes(
      std::int64_t begin, std::int64_t end, std::int64_t grain,
      FunctionRef<WriteSpan(std::int64_t, std::int64_t)> claim,
      FunctionRef<void(std::int64_t, std::int64_t)> fn,
      const char* site = "unnamed parallel_for_writes");

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int threads_;
};

/// Process-wide default pool, created on first use. Sized from the
/// `DCSR_THREADS` environment variable when set (see thread_count_from_env),
/// otherwise from `std::thread::hardware_concurrency()`.
ThreadPool& default_pool();

/// Replaces the default pool with one of the given size. Intended for tests
/// and benches sweeping thread counts; callers must be quiescent (no
/// parallel_for in flight) when swapping.
void set_default_pool_threads(int threads);

/// Thread count the default pool would use (without forcing its creation
/// beyond reading the environment).
int default_thread_count();

/// Parses `DCSR_THREADS` and falls back to hardware_concurrency(). The value
/// must parse *completely* as an integer that fits in int — trailing garbage
/// ("4abc"), overflow ("999999999999") and non-numeric strings are rejected
/// outright (hardware fallback), never partially accepted. A fully-parsed
/// value below 1 clamps to 1 (pure serial execution — handy for debugging).
/// This is what sizes the default pool on first use; exposed so the policy
/// is testable.
int thread_count_from_env();

/// `default_pool().parallel_for(...)` convenience wrapper.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  FunctionRef<void(std::int64_t, std::int64_t)> fn);

/// `default_pool().parallel_for_writes(...)` convenience wrapper.
void parallel_for_writes(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    FunctionRef<WriteSpan(std::int64_t, std::int64_t)> claim,
    FunctionRef<void(std::int64_t, std::int64_t)> fn,
    const char* site = "unnamed parallel_for_writes");

}  // namespace dcsr
