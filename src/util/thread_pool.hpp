#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace dcsr {

/// Persistent worker pool behind `parallel_for`.
///
/// Everything compute-bound in the library (GEMM row blocks, per-item conv
/// batches, per-cluster training) is expressed as a static-chunked
/// `parallel_for` over an index range. Determinism is a hard contract: the
/// kernels only ever parallelise over *disjoint outputs* and reduce any
/// shared accumulators in index order, so results are bit-identical no
/// matter how many threads run — a pool of 1 is exactly the serial program.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread always participates);
  /// `threads <= 1` spawns none and every parallel_for runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads this pool targets (including the caller).
  int threads() const noexcept { return threads_; }

  /// Splits [begin, end) into at most `threads()` contiguous chunks, each of
  /// at least `grain` indices, and runs `fn(chunk_begin, chunk_end)` for
  /// every chunk — the first on the calling thread, the rest on workers.
  /// Blocks until all chunks finish; the first exception thrown by any chunk
  /// is rethrown here. Nested calls (from inside a chunk) degrade to inline
  /// serial execution, so layered kernels never deadlock or oversubscribe.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int threads_;
};

/// Process-wide default pool, created on first use. Sized from the
/// `DCSR_THREADS` environment variable when set (values < 1 clamp to 1, and
/// 1 means pure serial execution — handy for debugging), otherwise from
/// `std::thread::hardware_concurrency()`.
ThreadPool& default_pool();

/// Replaces the default pool with one of the given size. Intended for tests
/// and benches sweeping thread counts; callers must be quiescent (no
/// parallel_for in flight) when swapping.
void set_default_pool_threads(int threads);

/// Thread count the default pool would use (without forcing its creation
/// beyond reading the environment).
int default_thread_count();

/// Parses `DCSR_THREADS` (clamped to >= 1; non-numeric values are ignored)
/// and falls back to hardware_concurrency(). This is what sizes the default
/// pool on first use; exposed so the policy is testable.
int thread_count_from_env();

/// `default_pool().parallel_for(...)` convenience wrapper.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace dcsr
