#include "util/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dcsr {

namespace {

// Set while a thread (worker or caller) is executing a parallel_for chunk.
// Nested parallel_for calls check it and run inline instead of re-entering
// the pool: the outer loop already owns all the parallelism there is.
thread_local bool tl_in_parallel_region = false;

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> tasks;
  bool stop = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lk(mutex);
        cv.wait(lk, [&] { return stop || !tasks.empty(); });
        if (stop && tasks.empty()) return;
        task = std::move(tasks.front());
        tasks.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(std::make_unique<Impl>()), threads_(std::max(1, threads)) {
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  const std::int64_t range = end - begin;
  if (grain < 1) grain = 1;
  // Floor division so every chunk carries at least `grain` indices.
  const std::int64_t nchunks =
      std::max<std::int64_t>(1, std::min<std::int64_t>(threads_, range / grain));

  if (nchunks <= 1 || tl_in_parallel_region || impl_->workers.empty()) {
    const bool was = tl_in_parallel_region;
    tl_in_parallel_region = true;
    try {
      fn(begin, end);
    } catch (...) {
      tl_in_parallel_region = was;
      throw;
    }
    tl_in_parallel_region = was;
    return;
  }

  struct Region {
    std::mutex mutex;
    std::condition_variable cv;
    std::int64_t remaining;
    std::exception_ptr error;
  } region;
  region.remaining = nchunks;

  auto run_chunk = [&](std::int64_t c) {
    const std::int64_t lo = begin + range * c / nchunks;
    const std::int64_t hi = begin + range * (c + 1) / nchunks;
    const bool was = tl_in_parallel_region;
    tl_in_parallel_region = true;
    try {
      if (hi > lo) fn(lo, hi);
    } catch (...) {
      std::lock_guard lk(region.mutex);
      if (!region.error) region.error = std::current_exception();
    }
    tl_in_parallel_region = was;
    std::lock_guard lk(region.mutex);
    if (--region.remaining == 0) region.cv.notify_all();
  };

  {
    std::lock_guard lk(impl_->mutex);
    for (std::int64_t c = 1; c < nchunks; ++c)
      impl_->tasks.emplace_back([&run_chunk, c] { run_chunk(c); });
  }
  impl_->cv.notify_all();
  run_chunk(0);

  // Help drain the queue while waiting: under contention (several regions in
  // flight) the caller keeps making global progress instead of idling.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard lk(impl_->mutex);
      if (impl_->tasks.empty()) break;
      task = std::move(impl_->tasks.front());
      impl_->tasks.pop_front();
    }
    task();
  }

  {
    std::unique_lock lk(region.mutex);
    region.cv.wait(lk, [&] { return region.remaining == 0; });
  }
  if (region.error) std::rethrow_exception(region.error);
}

namespace {

std::mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool;

}  // namespace

ThreadPool& default_pool() {
  std::lock_guard lk(g_default_pool_mutex);
  if (!g_default_pool)
    g_default_pool = std::make_unique<ThreadPool>(thread_count_from_env());
  return *g_default_pool;
}

void set_default_pool_threads(int threads) {
  auto pool = std::make_unique<ThreadPool>(std::max(1, threads));
  std::lock_guard lk(g_default_pool_mutex);
  g_default_pool = std::move(pool);
}

int thread_count_from_env() {
  if (const char* env = std::getenv("DCSR_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') return std::max(1, static_cast<int>(v));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

int default_thread_count() {
  std::lock_guard lk(g_default_pool_mutex);
  return g_default_pool ? g_default_pool->threads() : thread_count_from_env();
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  default_pool().parallel_for(begin, end, grain, fn);
}

}  // namespace dcsr
