#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <climits>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/alloc_check.hpp"
#include "util/env.hpp"

namespace dcsr {

namespace {

// Set while a thread (worker or caller) is executing a parallel_for chunk.
// Nested parallel_for calls check it and run inline instead of re-entering
// the pool: the outer loop already owns all the parallelism there is.
thread_local bool tl_in_parallel_region = false;

void validate_parallel_args(std::int64_t begin, std::int64_t end,
                            std::int64_t grain) {
  // Error paths may run under a HotPathGuard (bad arguments from a guarded
  // kernel); sanction the message construction so the real diagnostic is not
  // masked by HotPathAllocError.
  if (grain < 1) {
    AllocAllowScope allow;
    throw std::invalid_argument("parallel_for: grain must be >= 1, got " +
                                std::to_string(grain));
  }
  if (end < begin) {
    AllocAllowScope allow;
    throw std::invalid_argument("parallel_for: end < begin (begin=" +
                                std::to_string(begin) +
                                ", end=" + std::to_string(end) + ")");
  }
}

// Same floor-division policy everywhere: at most `threads` chunks, each of
// at least `grain` indices. parallel_for_writes recomputes the decomposition
// with this to claim exactly the chunks parallel_for will run.
std::int64_t chunk_count(int threads, std::int64_t range, std::int64_t grain) {
  return std::max<std::int64_t>(
      1, std::min<std::int64_t>(threads, range / grain));
}

// ---------------------------------------------------------------------------
// Write-claim checker. One global registry of the byte ranges every chunk of
// every in-flight checked region has declared it will write. Claims are
// registered for a whole region at once, *before* any chunk runs, so an
// overlap is detected deterministically — unlike a data-race, which only
// manifests if the scheduler happens to interleave the two writes. Claims
// from different regions coexist in the registry only when the regions are
// genuinely concurrent (parallel_for blocks its caller), which is exactly
// the situation in which overlap would be a race.
// ---------------------------------------------------------------------------

struct ClaimRecord {
  const char* site;
  std::int64_t chunk;
  const char* lo;
  const char* hi;  // half-open byte range
  std::uint64_t region;
};

std::mutex g_claims_mutex;
std::vector<ClaimRecord> g_claims;
std::uint64_t g_next_region_id = 1;  // guarded by g_claims_mutex

// Per-thread scratch for assembling a region's claims. Reused across regions
// (clear() keeps the capacity), so once a thread has claimed a region of a
// given fan-out once, later regions allocate nothing — the steady-state
// zero-alloc pins hold with the claim checker live.
thread_local std::vector<ClaimRecord> tl_claim_scratch;

[[noreturn]] void throw_overlap(const ClaimRecord& a, const ClaimRecord& b) {
  // A genuine contract violation: allow the diagnostic to allocate even
  // under a guard, so the overlap report wins over HotPathAllocError.
  AllocAllowScope allow;
  std::ostringstream msg;
  msg << "parallel_for_writes: overlapping write claims — " << a.site
      << " (chunk " << a.chunk << ", bytes [" << static_cast<const void*>(a.lo)
      << ", " << static_cast<const void*>(a.hi) << ")) overlaps " << b.site
      << " (chunk " << b.chunk << ", bytes [" << static_cast<const void*>(b.lo)
      << ", " << static_cast<const void*>(b.hi)
      << ")); concurrent chunks must write disjoint outputs";
  throw ParallelOverlapError(msg.str());
}

// Registers a region's claims on construction (throwing ParallelOverlapError
// before inserting anything if any pair — within the region or against an
// in-flight region — overlaps) and withdraws them on destruction. Copies the
// records into the global registry; the caller's scratch stays reusable.
class RegionClaims {
 public:
  explicit RegionClaims(const std::vector<ClaimRecord>& records) {
    std::lock_guard lk(g_claims_mutex);
    for (std::size_t i = 0; i < records.size(); ++i) {
      for (const auto& other : g_claims)
        if (records[i].lo < other.hi && other.lo < records[i].hi)
          throw_overlap(records[i], other);
      for (std::size_t j = 0; j < i; ++j)
        if (records[i].lo < records[j].hi && records[j].lo < records[i].hi)
          throw_overlap(records[i], records[j]);
    }
    region_ = g_next_region_id++;
    // The registry's capacity stabilises after warm-up; growth is a
    // sanctioned allocation, the steady-state push_back is free.
    AllocAllowScope allow;
    for (auto r : records) {
      r.region = region_;
      g_claims.push_back(r);
    }
  }

  ~RegionClaims() {
    std::lock_guard lk(g_claims_mutex);
    std::erase_if(g_claims,
                  [this](const ClaimRecord& r) { return r.region == region_; });
  }

  RegionClaims(const RegionClaims&) = delete;
  RegionClaims& operator=(const RegionClaims&) = delete;

 private:
  std::uint64_t region_ = 0;
};

// -1 = not yet resolved from the environment, 0 = off, 1 = on.
std::atomic<int> g_check_state{-1};

// ---------------------------------------------------------------------------
// One fan-out in flight. Lives on the caller's stack for the duration of the
// region (parallel_for blocks until remaining == 0, so worker references to
// it can never dangle). Chunks reach it through a plain function pointer +
// void* pair — the queue stores no owning callables, so dispatch performs no
// heap allocation.
// ---------------------------------------------------------------------------

struct RegionCtx {
  RegionCtx(FunctionRef<void(std::int64_t, std::int64_t)> f, std::int64_t b,
            std::int64_t r, std::int64_t n, const char* site) noexcept
      : fn(f), begin(b), range(r), nchunks(n), guard_site(site), remaining(n) {}

  FunctionRef<void(std::int64_t, std::int64_t)> fn;
  std::int64_t begin;
  std::int64_t range;
  std::int64_t nchunks;
  // Innermost hot-path guard active on the *calling* thread, re-installed
  // around each chunk so the allocation audit follows the work onto workers.
  const char* guard_site;
  std::mutex mutex;
  std::condition_variable cv;
  std::int64_t remaining;
  std::exception_ptr error;
};

void run_region_chunk(void* ctx_raw, std::int64_t c) {
  auto& ctx = *static_cast<RegionCtx*>(ctx_raw);
  const std::int64_t lo = ctx.begin + ctx.range * c / ctx.nchunks;
  const std::int64_t hi = ctx.begin + ctx.range * (c + 1) / ctx.nchunks;
  const bool was = tl_in_parallel_region;
  tl_in_parallel_region = true;
  try {
    if (hi > lo) {
      // Propagate the caller's guard onto this thread. The caller itself
      // (running chunk 0, its guard already active) skips the re-install.
      if (ctx.guard_site != nullptr && active_hot_path() == nullptr) {
        HotPathGuard guard(ctx.guard_site);
        ctx.fn(lo, hi);
      } else {
        ctx.fn(lo, hi);
      }
    }
  } catch (...) {
    std::lock_guard lk(ctx.mutex);
    if (!ctx.error) ctx.error = std::current_exception();
  }
  tl_in_parallel_region = was;
  std::lock_guard lk(ctx.mutex);
  if (--ctx.remaining == 0) ctx.cv.notify_all();
}

}  // namespace

bool parallel_check_enabled() noexcept {
  const int s = g_check_state.load(std::memory_order_relaxed);
  if (s >= 0) return s == 1;
#ifdef DCSR_CHECKED
  bool on = true;  // checked builds validate claims by default
#else
  bool on = false;
#endif
  if (const auto v = env_bool("DCSR_CHECK_PARALLEL")) on = *v;
  g_check_state.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

void set_parallel_check_enabled(bool enabled) noexcept {
  g_check_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  // Pending chunks as plain PODs in a ring buffer: pushing a task moves no
  // std::function and allocates no queue node, so a warm region's dispatch
  // is invisible to the allocation auditor. The ring is pre-sized at pool
  // construction and grows (sanctioned) only if more chunks are ever queued
  // than it has ever held.
  struct Task {
    void (*run)(void*, std::int64_t) = nullptr;
    void* ctx = nullptr;
    std::int64_t chunk = 0;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Task> ring;
  std::size_t head = 0;   // next task to pop
  std::size_t count = 0;  // queued tasks
  bool stop = false;
  std::vector<std::thread> workers;

  void push_locked(const Task& t) {
    if (count == ring.size()) {
      AllocAllowScope allow;
      std::vector<Task> bigger(ring.empty() ? 16 : ring.size() * 2);
      for (std::size_t i = 0; i < count; ++i)
        bigger[i] = ring[(head + i) % ring.size()];
      ring.swap(bigger);
      head = 0;
    }
    ring[(head + count) % ring.size()] = t;
    ++count;
  }

  bool pop_locked(Task& out) {
    if (count == 0) return false;
    out = ring[head];
    head = (head + 1) % ring.size();
    --count;
    return true;
  }

  void worker_loop() {
    for (;;) {
      Task task;
      {
        std::unique_lock lk(mutex);
        cv.wait(lk, [&] { return stop || count != 0; });
        if (stop && count == 0) return;
        pop_locked(task);
      }
      task.run(task.ctx, task.chunk);
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(std::make_unique<Impl>()), threads_(std::max(1, threads)) {
  impl_->ring.resize(
      std::max<std::size_t>(16, 2 * static_cast<std::size_t>(threads_)));
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              std::int64_t grain,
                              FunctionRef<void(std::int64_t, std::int64_t)> fn) {
  validate_parallel_args(begin, end, grain);
  if (begin == end) return;
  const std::int64_t range = end - begin;
  const std::int64_t nchunks = chunk_count(threads_, range, grain);

  if (nchunks <= 1 || tl_in_parallel_region || impl_->workers.empty()) {
    const bool was = tl_in_parallel_region;
    tl_in_parallel_region = true;
    try {
      fn(begin, end);
    } catch (...) {
      tl_in_parallel_region = was;
      throw;
    }
    tl_in_parallel_region = was;
    return;
  }

  RegionCtx ctx(fn, begin, range, nchunks, active_hot_path());

  {
    std::lock_guard lk(impl_->mutex);
    for (std::int64_t c = 1; c < nchunks; ++c)
      impl_->push_locked({&run_region_chunk, &ctx, c});
  }
  impl_->cv.notify_all();
  run_region_chunk(&ctx, 0);

  // Help drain the queue while waiting: under contention (several regions in
  // flight) the caller keeps making global progress instead of idling.
  for (;;) {
    Impl::Task task;
    {
      std::lock_guard lk(impl_->mutex);
      if (!impl_->pop_locked(task)) break;
    }
    task.run(task.ctx, task.chunk);
  }

  {
    std::unique_lock lk(ctx.mutex);
    ctx.cv.wait(lk, [&] { return ctx.remaining == 0; });
  }
  if (ctx.error) std::rethrow_exception(ctx.error);
}

void ThreadPool::parallel_for_writes(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    FunctionRef<WriteSpan(std::int64_t, std::int64_t)> claim,
    FunctionRef<void(std::int64_t, std::int64_t)> fn, const char* site) {
  validate_parallel_args(begin, end, grain);
  if (begin == end) return;
  // Nested regions run inline inside one enclosing chunk: they introduce no
  // concurrency, and their writes legitimately fall inside that chunk's own
  // claim, so claiming here would only produce false overlaps.
  if (!parallel_check_enabled() || tl_in_parallel_region) {
    parallel_for(begin, end, grain, fn);
    return;
  }

  const std::int64_t range = end - begin;
  const std::int64_t nchunks = chunk_count(threads_, range, grain);
  std::vector<ClaimRecord>& records = tl_claim_scratch;
  records.clear();
  {
    AllocAllowScope allow;  // scratch growth only; clear() keeps capacity
    records.reserve(static_cast<std::size_t>(nchunks));
  }
  for (std::int64_t c = 0; c < nchunks; ++c) {
    const std::int64_t lo = begin + range * c / nchunks;
    const std::int64_t hi = begin + range * (c + 1) / nchunks;
    if (hi <= lo) continue;
    const WriteSpan span = claim(lo, hi);
    if (span.lo == span.hi) continue;  // empty claim: nothing to track
    if (span.lo > span.hi) {
      AllocAllowScope allow;
      throw std::invalid_argument(
          std::string("parallel_for_writes: inverted claim from ") + site);
    }
    records.push_back({site, c, static_cast<const char*>(span.lo),
                       static_cast<const char*>(span.hi), 0});
  }
  RegionClaims guard(records);
  parallel_for(begin, end, grain, fn);
}

namespace {

std::mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool;

}  // namespace

ThreadPool& default_pool() {
  std::lock_guard lk(g_default_pool_mutex);
  if (!g_default_pool) {
    // One-time lazy construction; the first parallel region may well sit
    // inside a hot-path guard, and building the pool (impl, task ring,
    // worker threads) is sanctioned warm-up.
    AllocAllowScope allow;
    g_default_pool = std::make_unique<ThreadPool>(thread_count_from_env());
  }
  return *g_default_pool;
}

void set_default_pool_threads(int threads) {
  // Build the replacement before taking the lock, and destroy the old pool
  // (joining its workers) after releasing it: the lock only ever guards the
  // pointer swap, so a worker of the outgoing pool can never find the lock
  // held while it winds down.
  auto pool = std::make_unique<ThreadPool>(std::max(1, threads));
  {
    std::lock_guard lk(g_default_pool_mutex);
    g_default_pool.swap(pool);
  }
}

int thread_count_from_env() {
  // env_int already rejects — never partially accepts — trailing garbage
  // ("4abc"), empty strings and values that overflow long long; values that
  // fit long long but not int are rejected here for the same hardware
  // fallback. A fully-parsed value below 1 clamps to 1 (the documented
  // pure-serial escape hatch).
  if (const auto v = env_int("DCSR_THREADS")) {
    if (*v >= INT_MIN && *v <= INT_MAX)
      return std::max(1, static_cast<int>(*v));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

int default_thread_count() {
  std::lock_guard lk(g_default_pool_mutex);
  return g_default_pool ? g_default_pool->threads() : thread_count_from_env();
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  FunctionRef<void(std::int64_t, std::int64_t)> fn) {
  default_pool().parallel_for(begin, end, grain, fn);
}

void parallel_for_writes(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    FunctionRef<WriteSpan(std::int64_t, std::int64_t)> claim,
    FunctionRef<void(std::int64_t, std::int64_t)> fn, const char* site) {
  default_pool().parallel_for_writes(begin, end, grain, claim, fn, site);
}

}  // namespace dcsr
