#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <climits>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dcsr {

namespace {

// Set while a thread (worker or caller) is executing a parallel_for chunk.
// Nested parallel_for calls check it and run inline instead of re-entering
// the pool: the outer loop already owns all the parallelism there is.
thread_local bool tl_in_parallel_region = false;

void validate_parallel_args(std::int64_t begin, std::int64_t end,
                            std::int64_t grain) {
  if (grain < 1)
    throw std::invalid_argument("parallel_for: grain must be >= 1, got " +
                                std::to_string(grain));
  if (end < begin)
    throw std::invalid_argument("parallel_for: end < begin (begin=" +
                                std::to_string(begin) +
                                ", end=" + std::to_string(end) + ")");
}

// Same floor-division policy everywhere: at most `threads` chunks, each of
// at least `grain` indices. parallel_for_writes recomputes the decomposition
// with this to claim exactly the chunks parallel_for will run.
std::int64_t chunk_count(int threads, std::int64_t range, std::int64_t grain) {
  return std::max<std::int64_t>(
      1, std::min<std::int64_t>(threads, range / grain));
}

// ---------------------------------------------------------------------------
// Write-claim checker. One global registry of the byte ranges every chunk of
// every in-flight checked region has declared it will write. Claims are
// registered for a whole region at once, *before* any chunk runs, so an
// overlap is detected deterministically — unlike a data-race, which only
// manifests if the scheduler happens to interleave the two writes. Claims
// from different regions coexist in the registry only when the regions are
// genuinely concurrent (parallel_for blocks its caller), which is exactly
// the situation in which overlap would be a race.
// ---------------------------------------------------------------------------

struct ClaimRecord {
  const char* site;
  std::int64_t chunk;
  const char* lo;
  const char* hi;  // half-open byte range
  std::uint64_t region;
};

std::mutex g_claims_mutex;
std::vector<ClaimRecord> g_claims;
std::uint64_t g_next_region_id = 1;  // guarded by g_claims_mutex

[[noreturn]] void throw_overlap(const ClaimRecord& a, const ClaimRecord& b) {
  std::ostringstream msg;
  msg << "parallel_for_writes: overlapping write claims — " << a.site
      << " (chunk " << a.chunk << ", bytes [" << static_cast<const void*>(a.lo)
      << ", " << static_cast<const void*>(a.hi) << ")) overlaps " << b.site
      << " (chunk " << b.chunk << ", bytes [" << static_cast<const void*>(b.lo)
      << ", " << static_cast<const void*>(b.hi)
      << ")); concurrent chunks must write disjoint outputs";
  throw ParallelOverlapError(msg.str());
}

// Registers a region's claims on construction (throwing ParallelOverlapError
// before inserting anything if any pair — within the region or against an
// in-flight region — overlaps) and withdraws them on destruction.
class RegionClaims {
 public:
  explicit RegionClaims(std::vector<ClaimRecord> records) {
    std::lock_guard lk(g_claims_mutex);
    for (std::size_t i = 0; i < records.size(); ++i) {
      for (const auto& other : g_claims)
        if (records[i].lo < other.hi && other.lo < records[i].hi)
          throw_overlap(records[i], other);
      for (std::size_t j = 0; j < i; ++j)
        if (records[i].lo < records[j].hi && records[j].lo < records[i].hi)
          throw_overlap(records[i], records[j]);
    }
    region_ = g_next_region_id++;
    for (auto& r : records) {
      r.region = region_;
      g_claims.push_back(r);
    }
  }

  ~RegionClaims() {
    std::lock_guard lk(g_claims_mutex);
    std::erase_if(g_claims,
                  [this](const ClaimRecord& r) { return r.region == region_; });
  }

  RegionClaims(const RegionClaims&) = delete;
  RegionClaims& operator=(const RegionClaims&) = delete;

 private:
  std::uint64_t region_ = 0;
};

// -1 = not yet resolved from the environment, 0 = off, 1 = on.
std::atomic<int> g_check_state{-1};

}  // namespace

bool parallel_check_enabled() noexcept {
  const int s = g_check_state.load(std::memory_order_relaxed);
  if (s >= 0) return s == 1;
#ifdef DCSR_CHECKED
  bool on = true;  // checked builds validate claims by default
#else
  bool on = false;
#endif
  if (const char* env = std::getenv("DCSR_CHECK_PARALLEL")) {
    if (!std::strcmp(env, "1") || !std::strcmp(env, "on") ||
        !std::strcmp(env, "true"))
      on = true;
    else if (!std::strcmp(env, "0") || !std::strcmp(env, "off") ||
             !std::strcmp(env, "false"))
      on = false;
  }
  g_check_state.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

void set_parallel_check_enabled(bool enabled) noexcept {
  g_check_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> tasks;
  bool stop = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lk(mutex);
        cv.wait(lk, [&] { return stop || !tasks.empty(); });
        if (stop && tasks.empty()) return;
        task = std::move(tasks.front());
        tasks.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(std::make_unique<Impl>()), threads_(std::max(1, threads)) {
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  validate_parallel_args(begin, end, grain);
  if (begin == end) return;
  const std::int64_t range = end - begin;
  const std::int64_t nchunks = chunk_count(threads_, range, grain);

  if (nchunks <= 1 || tl_in_parallel_region || impl_->workers.empty()) {
    const bool was = tl_in_parallel_region;
    tl_in_parallel_region = true;
    try {
      fn(begin, end);
    } catch (...) {
      tl_in_parallel_region = was;
      throw;
    }
    tl_in_parallel_region = was;
    return;
  }

  struct Region {
    std::mutex mutex;
    std::condition_variable cv;
    std::int64_t remaining;
    std::exception_ptr error;
  } region;
  region.remaining = nchunks;

  auto run_chunk = [&](std::int64_t c) {
    const std::int64_t lo = begin + range * c / nchunks;
    const std::int64_t hi = begin + range * (c + 1) / nchunks;
    const bool was = tl_in_parallel_region;
    tl_in_parallel_region = true;
    try {
      if (hi > lo) fn(lo, hi);
    } catch (...) {
      std::lock_guard lk(region.mutex);
      if (!region.error) region.error = std::current_exception();
    }
    tl_in_parallel_region = was;
    std::lock_guard lk(region.mutex);
    if (--region.remaining == 0) region.cv.notify_all();
  };

  {
    std::lock_guard lk(impl_->mutex);
    for (std::int64_t c = 1; c < nchunks; ++c)
      impl_->tasks.emplace_back([&run_chunk, c] { run_chunk(c); });
  }
  impl_->cv.notify_all();
  run_chunk(0);

  // Help drain the queue while waiting: under contention (several regions in
  // flight) the caller keeps making global progress instead of idling.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard lk(impl_->mutex);
      if (impl_->tasks.empty()) break;
      task = std::move(impl_->tasks.front());
      impl_->tasks.pop_front();
    }
    task();
  }

  {
    std::unique_lock lk(region.mutex);
    region.cv.wait(lk, [&] { return region.remaining == 0; });
  }
  if (region.error) std::rethrow_exception(region.error);
}

void ThreadPool::parallel_for_writes(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<WriteSpan(std::int64_t, std::int64_t)>& claim,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    const char* site) {
  validate_parallel_args(begin, end, grain);
  if (begin == end) return;
  // Nested regions run inline inside one enclosing chunk: they introduce no
  // concurrency, and their writes legitimately fall inside that chunk's own
  // claim, so claiming here would only produce false overlaps.
  if (!parallel_check_enabled() || tl_in_parallel_region) {
    parallel_for(begin, end, grain, fn);
    return;
  }

  const std::int64_t range = end - begin;
  const std::int64_t nchunks = chunk_count(threads_, range, grain);
  std::vector<ClaimRecord> records;
  records.reserve(static_cast<std::size_t>(nchunks));
  for (std::int64_t c = 0; c < nchunks; ++c) {
    const std::int64_t lo = begin + range * c / nchunks;
    const std::int64_t hi = begin + range * (c + 1) / nchunks;
    if (hi <= lo) continue;
    const WriteSpan span = claim(lo, hi);
    if (span.lo == span.hi) continue;  // empty claim: nothing to track
    if (span.lo > span.hi)
      throw std::invalid_argument(
          std::string("parallel_for_writes: inverted claim from ") + site);
    records.push_back({site, c, static_cast<const char*>(span.lo),
                       static_cast<const char*>(span.hi), 0});
  }
  RegionClaims guard(std::move(records));
  parallel_for(begin, end, grain, fn);
}

namespace {

std::mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool;

}  // namespace

ThreadPool& default_pool() {
  std::lock_guard lk(g_default_pool_mutex);
  if (!g_default_pool)
    g_default_pool = std::make_unique<ThreadPool>(thread_count_from_env());
  return *g_default_pool;
}

void set_default_pool_threads(int threads) {
  // Build the replacement before taking the lock, and destroy the old pool
  // (joining its workers) after releasing it: the lock only ever guards the
  // pointer swap, so a worker of the outgoing pool can never find the lock
  // held while it winds down.
  auto pool = std::make_unique<ThreadPool>(std::max(1, threads));
  {
    std::lock_guard lk(g_default_pool_mutex);
    g_default_pool.swap(pool);
  }
}

int thread_count_from_env() {
  if (const char* env = std::getenv("DCSR_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    const bool complete_parse = end != env && *end == '\0';
    const bool fits_int = errno != ERANGE && v >= INT_MIN && v <= INT_MAX;
    // Reject — never partially accept — trailing garbage ("4abc"), empty
    // strings and out-of-range values ("999999999999"); a fully-parsed value
    // below 1 clamps to 1 (the documented pure-serial escape hatch).
    if (complete_parse && fits_int) return std::max(1, static_cast<int>(v));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

int default_thread_count() {
  std::lock_guard lk(g_default_pool_mutex);
  return g_default_pool ? g_default_pool->threads() : thread_count_from_env();
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  default_pool().parallel_for(begin, end, grain, fn);
}

void parallel_for_writes(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<WriteSpan(std::int64_t, std::int64_t)>& claim,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    const char* site) {
  default_pool().parallel_for_writes(begin, end, grain, claim, fn, site);
}

}  // namespace dcsr
