#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace dcsr {

template <typename Signature>
class FunctionRef;

/// Non-owning reference to a callable: one void* plus one function pointer,
/// built without ever touching the heap.
///
/// std::function at the parallel_for call sites was the last hidden
/// allocator client on the hot path — converting a lambda whose captures
/// exceed the small-buffer optimisation allocates at *every call*, which the
/// DCSR_ALLOC_CHECK auditor now turns into a hard error. FunctionRef is the
/// right tool for call-and-return APIs: the callee invokes the reference and
/// returns before the call-site temporary dies, so binding a prvalue lambda
/// argument is safe. Do not store a FunctionRef beyond the call that
/// received it — it does not own the callable.
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_(&invoke<std::remove_reference_t<F>>) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R invoke(void* obj, Args... args) {
    return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace dcsr
