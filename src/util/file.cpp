#include "util/file.hpp"

#include <fstream>
#include <stdexcept>

namespace dcsr {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_file: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size))
    throw std::runtime_error("read_file: short read on " + path);
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_file: cannot open " + path);
  if (!bytes.empty() &&
      !out.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size())))
    throw std::runtime_error("write_file: short write on " + path);
}

}  // namespace dcsr
