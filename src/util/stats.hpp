#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dcsr {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Population variance; returns 0 for spans shorter than 1.
double variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Minimum / maximum; throw std::invalid_argument on an empty span (there is
/// no extremum to return, and silently dereferencing end() is UB).
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. Copies and sorts internally.
double percentile(std::span<const double> xs, double p);

/// Empirical CDF sampled at the given probe points: for each probe x, the
/// fraction of samples <= x. Used to reproduce the paper's Fig. 1(c) CDF.
std::vector<double> empirical_cdf(std::span<const double> samples,
                                  std::span<const double> probes);

/// Index of the maximum element (first on ties); throws
/// std::invalid_argument on an empty span.
std::size_t argmax(std::span<const double> xs);

/// Index of the minimum element (first on ties); throws
/// std::invalid_argument on an empty span.
std::size_t argmin(std::span<const double> xs);

}  // namespace dcsr
