#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace dcsr {

/// Little-endian binary writer used for model files and bitstream
/// serialisation. All multi-byte values are written LSB-first regardless of
/// host endianness so serialised artefacts are portable.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }

  void write_u16(std::uint16_t v) {
    write_u8(static_cast<std::uint8_t>(v & 0xff));
    write_u8(static_cast<std::uint8_t>(v >> 8));
  }

  void write_u32(std::uint32_t v) {
    write_u16(static_cast<std::uint16_t>(v & 0xffff));
    write_u16(static_cast<std::uint16_t>(v >> 16));
  }

  void write_u64(std::uint64_t v) {
    write_u32(static_cast<std::uint32_t>(v & 0xffffffffULL));
    write_u32(static_cast<std::uint32_t>(v >> 32));
  }

  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }

  void write_f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_u32(bits);
  }

  void write_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_u64(bits);
  }

  void write_string(const std::string& s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void write_f32_span(const float* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) write_f32(data[i]);
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Matching reader; throws std::out_of_range on truncated input so corrupt
/// model files fail loudly instead of yielding garbage weights.
class ByteReader {
 public:
  explicit ByteReader(std::vector<std::uint8_t> bytes) : buf_(std::move(bytes)) {}

  std::uint8_t read_u8() {
    require(1);
    return buf_[pos_++];
  }

  std::uint16_t read_u16() {
    const auto lo = read_u8();
    const auto hi = read_u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t read_u32() {
    const std::uint32_t lo = read_u16();
    const std::uint32_t hi = read_u16();
    return lo | (hi << 16);
  }

  std::uint64_t read_u64() {
    const std::uint64_t lo = read_u32();
    const std::uint64_t hi = read_u32();
    return lo | (hi << 32);
  }

  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }

  float read_f32() {
    const std::uint32_t bits = read_u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  double read_f64() {
    const std::uint64_t bits = read_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string read_string() {
    const auto n = read_u32();
    require(n);
    std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }

  void read_f32_span(float* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = read_f32();
  }

  std::size_t remaining() const noexcept { return buf_.size() - pos_; }
  bool done() const noexcept { return pos_ == buf_.size(); }

  /// Byte offset of the next read — lets parsers report *where* a stream
  /// went bad, not just that it did.
  std::size_t position() const noexcept { return pos_; }

  /// Raw view of the underlying buffer. Lets parsers checksum exactly the
  /// bytes they consumed (e.g. the container CRC) without re-serialising.
  const std::uint8_t* data() const noexcept { return buf_.data(); }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > buf_.size())
      throw std::out_of_range("ByteReader: truncated input");
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace dcsr
