#pragma once

#include <optional>

namespace dcsr {

/// Centralised, hardened environment-variable access. Every DCSR_* switch
/// goes through these helpers so the parsing rules PR 3 established for
/// DCSR_THREADS — a value is accepted *completely* or rejected outright,
/// never partially — apply uniformly, and so the whole tree has exactly one
/// std::getenv call site (src/util/env.cpp, enforced by the [raw-getenv]
/// lint rule).
///
/// All three helpers are allocation-free: they are safe to call from inside
/// a HotPathGuard region and from the DCSR_ALLOC_CHECK interposer itself.

/// Raw value of `name`, or nullptr when unset. The pointer aliases the
/// process environment — treat it as immortal and read-only.
const char* env_raw(const char* name) noexcept;

/// Strict integer parse of `name`: the value must parse *completely* as a
/// base-10 integer that fits in long long. Trailing garbage ("4abc"), empty
/// strings, overflow ("999999999999999999999") and non-numeric values are
/// rejected — nullopt, same as unset — never partially accepted.
std::optional<long long> env_int(const char* name) noexcept;

/// Strict boolean parse of `name`: "1"/"on"/"true" -> true, "0"/"off"/
/// "false" -> false (exact match, case-sensitive). Unset or any other value
/// -> nullopt, so callers keep their compiled-in default instead of guessing
/// at a malformed switch.
std::optional<bool> env_bool(const char* name) noexcept;

}  // namespace dcsr
