#pragma once

// Central switches for the checked-invariant layer. Each check is a
// compile-time gate: in a -DDCSR_CHECKED=ON build (tools/run_checks.sh leg
// `checked`) all of them default on; in a release build the guarded code
// compiles out entirely, so the hot path pays nothing — the same contract the
// parallel_for write-claim detector established in PR 3. Individual checks
// can be forced on in any build by defining the macro to 1 on the compile
// line (e.g. -DDCSR_BOUNDS_CHECK=1).
//
//   DCSR_BOUNDS_CHECK      every Tensor element/view/slice access and shape
//                          precondition is validated; violations throw
//                          TensorBoundsError (tensor/tensor.hpp).
//   DCSR_POISON_WORKSPACE  Workspace::acquire/release fill buffers with a
//                          signaling-NaN pattern so reads of stale or
//                          uninitialized scratch surface as NaN immediately
//                          (tensor/workspace.hpp).
//   DCSR_FINITE_CHECK      FiniteCheckGuard scans layer outputs for NaN/Inf
//                          and throws NonFiniteError naming the layer
//                          (nn/module.hpp).
//   DCSR_ALLOC_CHECK       global operator new/delete interposer with
//                          per-thread counters; any heap allocation inside
//                          an active HotPathGuard region throws
//                          HotPathAllocError naming the guard site
//                          (util/alloc_check.hpp). Compiled out of release
//                          builds entirely — the interposer is not even
//                          linked, so the default allocator is untouched.
//
// All four observe and never alter defined values, so the PR-2/PR-4 bitwise
// pins (Infer.*, Edsr.Infer*) hold in checked builds too.

#ifndef DCSR_BOUNDS_CHECK
#ifdef DCSR_CHECKED
#define DCSR_BOUNDS_CHECK 1
#else
#define DCSR_BOUNDS_CHECK 0
#endif
#endif

#ifndef DCSR_POISON_WORKSPACE
#ifdef DCSR_CHECKED
#define DCSR_POISON_WORKSPACE 1
#else
#define DCSR_POISON_WORKSPACE 0
#endif
#endif

#ifndef DCSR_FINITE_CHECK
#ifdef DCSR_CHECKED
#define DCSR_FINITE_CHECK 1
#else
#define DCSR_FINITE_CHECK 0
#endif
#endif

#ifndef DCSR_ALLOC_CHECK
#ifdef DCSR_CHECKED
#define DCSR_ALLOC_CHECK 1
#else
#define DCSR_ALLOC_CHECK 0
#endif
#endif
