#pragma once

#include <cstdint>
#include <vector>

namespace dcsr {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (weight init, synthetic video
/// noise, k-means seeding, data shuffling) draws from an explicitly seeded
/// Rng so that experiments are exactly reproducible run-to-run. We do not use
/// std::mt19937 because its distributions are not guaranteed to produce the
/// same sequence across standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (deterministic, caches the spare value).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace dcsr
