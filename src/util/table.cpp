#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dcsr {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = header_.size() - 1;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + 1;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace dcsr
