#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcsr {

/// Reads a whole file into memory; throws std::runtime_error on failure.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Writes bytes to a file (truncating); throws std::runtime_error on failure.
void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes);

}  // namespace dcsr
