#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "util/checked.hpp"

namespace dcsr {

/// Per-thread allocator traffic, maintained by the DCSR_ALLOC_CHECK
/// interposer. Counters only ever count the calling thread's own operator
/// new/delete calls (a cross-thread delete lands on the deleting thread),
/// which is exactly the view the steady-state pins need: the playback loop
/// runs on one thread, so its per-frame delta must be zero once warm.
struct AllocStats {
  std::uint64_t allocs = 0;      // operator new calls (all variants)
  std::uint64_t frees = 0;       // operator delete calls (all variants)
  std::uint64_t bytes = 0;       // cumulative bytes requested from new
  std::uint64_t sanctioned = 0;  // guarded allocs inside an AllocAllowScope
};

/// Thrown by the interposer when a heap allocation happens inside an active
/// HotPathGuard region (and outside any AllocAllowScope). Derives from
/// std::bad_alloc — the only exception type operator new may legally throw —
/// and owns no heap of its own: the message lives in a fixed inline buffer,
/// so constructing and throwing it never re-enters the allocator.
class HotPathAllocError : public std::bad_alloc {
 public:
  HotPathAllocError(const char* site, std::size_t bytes, int depth) noexcept;

  const char* what() const noexcept override { return msg_; }
  /// Innermost guard site active when the allocation was attempted.
  const char* site() const noexcept { return site_; }
  /// Size of the offending allocation request.
  std::size_t bytes() const noexcept { return bytes_; }
  /// Guard nesting depth at the violation (1 = a single active guard).
  int depth() const noexcept { return depth_; }

 private:
  char msg_[256];
  const char* site_ = nullptr;
  std::size_t bytes_ = 0;
  int depth_ = 0;
};

#if DCSR_ALLOC_CHECK

/// RAII no-allocation region: while any HotPathGuard is alive on a thread,
/// every heap allocation on that thread throws HotPathAllocError naming the
/// innermost guard's site. Guards nest (fixed depth, see kMaxDepth); `site`
/// must outlive the guard (string literals in practice). Exception-safe: the
/// destructor pops the region even when the scope unwinds through a throw.
class HotPathGuard {
 public:
  static constexpr int kMaxDepth = 16;

  explicit HotPathGuard(const char* site) noexcept;
  ~HotPathGuard();
  HotPathGuard(const HotPathGuard&) = delete;
  HotPathGuard& operator=(const HotPathGuard&) = delete;
};

/// RAII suspension of guard enforcement for a *sanctioned* allocation — the
/// warm-up paths that legitimately touch the allocator inside a guarded
/// region (a workspace miss, the claim registry growing, a cache admitting a
/// model). Counters still count the raw allocation and additionally bump
/// `sanctioned`, so sanctioned traffic stays visible: the steady-state pins
/// assert the raw per-frame delta is zero, allow-scopes or not.
class AllocAllowScope {
 public:
  AllocAllowScope() noexcept;
  ~AllocAllowScope();
  AllocAllowScope(const AllocAllowScope&) = delete;
  AllocAllowScope& operator=(const AllocAllowScope&) = delete;
};

/// This thread's allocator counters (monotonic; diff two snapshots to meter
/// a region).
AllocStats thread_alloc_stats() noexcept;

/// Innermost active guard site on this thread, or nullptr when unguarded.
/// parallel_for uses it to re-install the caller's guard on pool workers, so
/// a guarded region stays guarded across its fan-out.
const char* active_hot_path() noexcept;

/// Current guard nesting depth on this thread.
int hot_path_depth() noexcept;

/// Whether guard enforcement is live. Resolved once from the environment on
/// first use: DCSR_ALLOC_CHECK=0/off/false disables throwing (counters keep
/// counting), anything else — including unset — leaves it on in a build that
/// compiled the interposer in.
bool alloc_check_enabled() noexcept;

/// Forces enforcement on or off, overriding the environment. Test hook.
void set_alloc_check_enabled(bool enabled) noexcept;

#else  // !DCSR_ALLOC_CHECK — inert inline stubs; no interposer is linked.

class HotPathGuard {
 public:
  static constexpr int kMaxDepth = 16;
  explicit HotPathGuard(const char*) noexcept {}
};

class AllocAllowScope {
 public:
  AllocAllowScope() noexcept {}
};

inline AllocStats thread_alloc_stats() noexcept { return {}; }
inline const char* active_hot_path() noexcept { return nullptr; }
inline int hot_path_depth() noexcept { return 0; }
inline bool alloc_check_enabled() noexcept { return false; }
inline void set_alloc_check_enabled(bool) noexcept {}

#endif  // DCSR_ALLOC_CHECK

}  // namespace dcsr
