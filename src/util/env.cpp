#include "util/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace dcsr {

const char* env_raw(const char* name) noexcept {
  // The one sanctioned std::getenv call in the tree ([raw-getenv]).
  return std::getenv(name);
}

std::optional<long long> env_int(const char* name) noexcept {
  const char* v = env_raw(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  // strtoll silently skips leading whitespace; a hardened parser does not —
  // the value must be nothing but an optionally-signed decimal integer.
  if (v[0] != '-' && v[0] != '+' && (v[0] < '0' || v[0] > '9'))
    return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) return std::nullopt;
  return parsed;
}

std::optional<bool> env_bool(const char* name) noexcept {
  const char* v = env_raw(name);
  if (v == nullptr) return std::nullopt;
  if (!std::strcmp(v, "1") || !std::strcmp(v, "on") || !std::strcmp(v, "true"))
    return true;
  if (!std::strcmp(v, "0") || !std::strcmp(v, "off") || !std::strcmp(v, "false"))
    return false;
  return std::nullopt;
}

}  // namespace dcsr
