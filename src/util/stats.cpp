#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcsr {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> empirical_cdf(std::span<const double> samples,
                                  std::span<const double> probes) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(probes.size());
  for (double x : probes) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    out.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return out;
}

std::size_t argmax(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("argmax: empty span");
  return static_cast<std::size_t>(std::max_element(xs.begin(), xs.end()) -
                                  xs.begin());
}

std::size_t argmin(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("argmin: empty span");
  return static_cast<std::size_t>(std::min_element(xs.begin(), xs.end()) -
                                  xs.begin());
}

}  // namespace dcsr
