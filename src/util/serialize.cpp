#include "util/serialize.hpp"

// Header-only implementation; this TU anchors the library target.
