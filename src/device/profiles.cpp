#include "device/profiles.hpp"

namespace dcsr::device {

DeviceProfile jetson_xavier_nx() {
  return {.name = "jetson-xavier-nx",
          .effective_tflops = 0.7,
          .mem_budget_bytes = 4e9,
          .decode_ms_per_mpix = 2.0,
          .inference_overhead_ms = 50.0,
          .idle_watts = 0.5,
          .decode_watts = 0.3,
          .compute_watts = 2.0};
}

DeviceProfile laptop_gtx1060() {
  return {.name = "laptop-gtx1060",
          .effective_tflops = 7.5,
          .mem_budget_bytes = 6e9,
          .decode_ms_per_mpix = 1.0,
          .inference_overhead_ms = 20.0,
          .idle_watts = 8.0,
          .decode_watts = 4.0,
          .compute_watts = 80.0};
}

DeviceProfile desktop_rtx2070() {
  return {.name = "desktop-rtx2070",
          .effective_tflops = 13.0,
          .mem_budget_bytes = 8e9,
          .decode_ms_per_mpix = 0.8,
          .inference_overhead_ms = 15.0,
          .idle_watts = 30.0,
          .decode_watts = 6.0,
          .compute_watts = 150.0};
}

Resolution res_720p() { return {1280, 720, "720p"}; }
Resolution res_1080p() { return {1920, 1080, "1080p"}; }
Resolution res_4k() { return {3840, 2160, "4K"}; }

}  // namespace dcsr::device
