#pragma once

#include <vector>

#include "device/latency.hpp"

namespace dcsr::device {

/// How often a method runs SR during playback.
enum class InferenceSchedule {
  kPerSegment,  // dcSR / NEMO: a few inferences at each segment boundary
  kEveryFrame   // NAS: every decoded frame
};

struct PowerConfig {
  sr::EdsrConfig model;
  Resolution resolution;
  InferenceSchedule schedule = InferenceSchedule::kPerSegment;
  double segment_seconds = 4.0;
  int inferences_per_segment = 1;
  double video_fps = 30.0;
};

/// Result of simulating the power rails during playback, mirroring the 1 Hz
/// sampling of the Jetson power monitor used for Fig. 8(d).
struct PowerTrace {
  std::vector<double> watts;  // one sample per second of playback
  double total_joules = 0.0;
  double peak_watts = 0.0;
  double mean_watts = 0.0;
};

/// Simulates `duration_seconds` of playback. Power at any instant is
/// idle + decode (while playing) + compute (while the GPU runs an
/// inference); each 1-second sample is the time-average over that second,
/// which is what produces the paper's spiky dcSR/NEMO traces versus NAS's
/// sustained draw.
PowerTrace simulate_power(const DeviceProfile& dev, const PowerConfig& cfg,
                          double duration_seconds);

}  // namespace dcsr::device
