#include "device/latency.hpp"

namespace dcsr::device {

double inference_seconds(const DeviceProfile& dev, const sr::EdsrConfig& cfg,
                         const Resolution& res) noexcept {
  const double flops =
      static_cast<double>(sr::edsr_flops(cfg, res.width, res.height));
  return flops / (dev.effective_tflops * 1e12) +
         dev.inference_overhead_ms / 1e3;
}

double decode_seconds(const DeviceProfile& dev, const Resolution& res) noexcept {
  return res.megapixels() * dev.decode_ms_per_mpix / 1e3;
}

bool fits_memory(const DeviceProfile& dev, const sr::EdsrConfig& cfg,
                 const Resolution& res) noexcept {
  // Activation footprint is architecture-determined; closed form below
  // mirrors Edsr::activation_bytes without building the model.
  const auto f = static_cast<std::uint64_t>(cfg.n_filters);
  const auto in_px = static_cast<std::uint64_t>(res.width) *
                     static_cast<std::uint64_t>(res.height);
  const auto s = static_cast<std::uint64_t>(cfg.scale);
  const auto out_px = in_px * s * s;
  std::uint64_t samples = 3 * in_px + 3 * out_px + 2 * f * in_px;
  if (cfg.scale > 1) samples += f * s * s * in_px + f * out_px;
  const std::uint64_t activations = 4 * samples;
  const std::uint64_t weights = sr::edsr_model_bytes(cfg);
  return static_cast<double>(activations + weights) <= dev.mem_budget_bytes;
}

SegmentThroughput segment_fps(const DeviceProfile& dev, const sr::EdsrConfig& cfg,
                              const Resolution& res, int frames_per_segment,
                              int inferences_per_segment) noexcept {
  SegmentThroughput out;
  if (!fits_memory(dev, cfg, res)) {
    out.oom = true;
    return out;
  }
  out.decode_s = decode_seconds(dev, res) * frames_per_segment;
  out.inference_s =
      inference_seconds(dev, cfg, res) * inferences_per_segment;
  const double total = out.decode_s + out.inference_s;
  out.fps = total > 0.0 ? static_cast<double>(frames_per_segment) / total : 0.0;
  return out;
}

}  // namespace dcsr::device
