#include "device/power.hpp"

#include <algorithm>
#include <cmath>

namespace dcsr::device {

PowerTrace simulate_power(const DeviceProfile& dev, const PowerConfig& cfg,
                          double duration_seconds) {
  const double inf_s = inference_seconds(dev, cfg.model, cfg.resolution);

  // GPU-busy intervals over the playback timeline.
  std::vector<std::pair<double, double>> busy;
  if (cfg.schedule == InferenceSchedule::kEveryFrame) {
    // One inference per displayed frame; if inference is slower than the
    // frame interval the GPU saturates (NAS's sustained 2.8 W in Fig. 8d).
    const double frame_dt = 1.0 / cfg.video_fps;
    if (inf_s >= frame_dt) {
      busy.emplace_back(0.0, duration_seconds);
    } else {
      for (double t = 0.0; t < duration_seconds; t += frame_dt)
        busy.emplace_back(t, std::min(t + inf_s, duration_seconds));
    }
  } else {
    // Bursts serialise on the single GPU: if a segment's inference work is
    // still running when the next segment starts, the new burst queues
    // behind it (playback would stall, but power-wise the GPU just stays
    // busy).
    double prev_end = 0.0;
    for (double t0 = 0.0; t0 < duration_seconds; t0 += cfg.segment_seconds) {
      const double start = std::max(t0, prev_end);
      const double burst = inf_s * cfg.inferences_per_segment;
      const double end = std::min(start + burst, duration_seconds);
      if (end > start) busy.emplace_back(start, end);
      prev_end = start + burst;
    }
  }

  const auto n = static_cast<std::size_t>(std::ceil(duration_seconds));
  PowerTrace trace;
  trace.watts.assign(n, dev.idle_watts + dev.decode_watts);

  for (const auto& [b0, b1] : busy) {
    const auto s0 = static_cast<std::size_t>(b0);
    const auto s1 = std::min(n - 1, static_cast<std::size_t>(b1));
    for (std::size_t s = s0; s <= s1 && s < n; ++s) {
      const double lo = std::max(b0, static_cast<double>(s));
      const double hi = std::min(b1, static_cast<double>(s) + 1.0);
      if (hi > lo) trace.watts[s] += dev.compute_watts * (hi - lo);
    }
  }

  for (const double w : trace.watts) {
    trace.total_joules += w;  // 1-second samples
    trace.peak_watts = std::max(trace.peak_watts, w);
  }
  trace.mean_watts = trace.watts.empty()
                         ? 0.0
                         : trace.total_joules / static_cast<double>(trace.watts.size());
  return trace;
}

}  // namespace dcsr::device
