#pragma once

#include <string>

namespace dcsr::device {

/// Analytic model of a playback device. The paper measures three real
/// devices (Jetson Xavier NX, a GTX-1060 laptop, an RTX-2070 desktop); this
/// repo has no GPUs, so each device is reduced to the constants that
/// determine the paper's figures: sustained neural throughput, memory
/// ceiling, hardware-decoder speed, per-inference fixed overhead (kernel
/// launch + the YUV<->RGB hops of Fig. 6), and the three power rails of the
/// Fig. 8(d) model. Constants are calibrated against the anchor points of
/// Figs. 1, 8 and 12 (see DESIGN.md §2); only ratios/crossings are meant to
/// be faithful, not absolute numbers.
struct DeviceProfile {
  std::string name;
  double effective_tflops = 1.0;     // sustained SR-model throughput
  double mem_budget_bytes = 4e9;     // activation memory ceiling before OOM
  double decode_ms_per_mpix = 2.0;   // hardware video decode cost
  double inference_overhead_ms = 50; // fixed per-inference cost
  double idle_watts = 0.5;
  double decode_watts = 0.3;
  double compute_watts = 2.0;        // additional draw while the GPU is busy
};

/// Mobile-grade device of Fig. 8.
DeviceProfile jetson_xavier_nx();

/// Laptop of Fig. 12(a): i7-7700HQ + GTX 1060.
DeviceProfile laptop_gtx1060();

/// Desktop of Fig. 12(b): i7-8700 + RTX 2070.
DeviceProfile desktop_rtx2070();

/// Video resolution preset.
struct Resolution {
  int width = 0, height = 0;
  std::string name;

  double megapixels() const noexcept {
    return static_cast<double>(width) * static_cast<double>(height) / 1e6;
  }
};

Resolution res_720p();
Resolution res_1080p();
Resolution res_4k();

}  // namespace dcsr::device
