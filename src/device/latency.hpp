#pragma once

#include "device/profiles.hpp"
#include "sr/edsr.hpp"

namespace dcsr::device {

/// Seconds to run one inference of the given model config on a frame at the
/// given resolution (includes the fixed per-inference overhead).
double inference_seconds(const DeviceProfile& dev, const sr::EdsrConfig& cfg,
                         const Resolution& res) noexcept;

/// Seconds to hardware-decode one frame.
double decode_seconds(const DeviceProfile& dev, const Resolution& res) noexcept;

/// Whether the model's inference working set fits the device. NAS/NEMO-sized
/// models at 4K exceed the Jetson budget — the paper's OOM result.
bool fits_memory(const DeviceProfile& dev, const sr::EdsrConfig& cfg,
                 const Resolution& res) noexcept;

/// Effective playback throughput over one segment, the metric of Figs. 8(a-c)
/// and 12: frames in the segment divided by total decode + inference time.
/// "To evaluate the practical FPS, we consider both the video decoding
/// latency and the inference latency" (§4).
struct SegmentThroughput {
  double fps = 0.0;
  double decode_s = 0.0;
  double inference_s = 0.0;
  bool oom = false;
};
SegmentThroughput segment_fps(const DeviceProfile& dev, const sr::EdsrConfig& cfg,
                              const Resolution& res, int frames_per_segment,
                              int inferences_per_segment) noexcept;

}  // namespace dcsr::device
