#include "core/server_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "cluster/global_kmeans.hpp"
#include "cluster/silhouette.hpp"
#include "codec/bits.hpp"
#include "codec/deblock.hpp"
#include "codec/frame_coding.hpp"
#include "codec/quant.hpp"
#include "features/extractor.hpp"
#include "image/convert.hpp"
#include "nn/serialize.hpp"
#include "sr/min_model.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dcsr::core {

stream::Manifest ServerResult::manifest() const {
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(k), micro_model_bytes);
  return stream::make_manifest(encoded, labels, std::move(sizes));
}

std::vector<SegmentIFrames> collect_iframe_pairs(
    const VideoSource& video, const codec::EncodedVideo& encoded,
    const std::vector<codec::SegmentPlan>& segments) {
  if (encoded.segments.size() != segments.size())
    throw std::invalid_argument("collect_iframe_pairs: plan/stream mismatch");

  std::vector<SegmentIFrames> out;
  out.reserve(segments.size());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const codec::Quantizer q(encoded.segments[s].crf >= 0
                                 ? encoded.segments[s].crf
                                 : encoded.crf);
    SegmentIFrames entry;
    entry.segment_index = static_cast<int>(s);
    for (const auto& ef : encoded.segments[s].frames) {
      if (ef.type != codec::FrameType::kI) continue;
      FrameYUV lo_yuv;
      if (ef.sliced()) {
        lo_yuv = codec::decode_intra_frame_sliced(encoded.width,
                                                  encoded.height, q, ef);
      } else {
        codec::BitReader br(ef.payload);
        lo_yuv = codec::decode_intra_frame(encoded.width, encoded.height, q, br);
      }
      // Training inputs must be exactly what the client's DPB will hold.
      if (encoded.deblock) codec::deblock_frame(lo_yuv, q.base_step());
      sr::TrainSample pair;
      pair.lo = yuv420_to_rgb(lo_yuv);
      pair.hi = video.frame(segments[s].first_frame + ef.display_index);
      entry.pairs.push_back(std::move(pair));
    }
    if (entry.pairs.empty())
      throw std::logic_error("collect_iframe_pairs: segment without I frame");
    out.push_back(std::move(entry));
  }
  return out;
}

ServerResult run_server_pipeline(const VideoSource& video, const ServerConfig& cfg) {
  Rng rng(cfg.seed);
  ServerResult result;

  // 1. Content-aware variable-length split (Fig. 2, "Video Split").
  result.segments = split::variable_segments(video, cfg.segmenter);

  // 2. Encode at the streaming CRF; I frames land at segment starts.
  result.encoded = codec::Encoder(cfg.codec).encode(video, result.segments);

  // 3. I-frame training pairs: what the client's decoder will actually hold
  //    in its DPB (lo) versus the pristine source (hi).
  const auto iframes = collect_iframe_pairs(video, result.encoded, result.segments);

  // 4. Feature extraction: VAE over the original I-frame thumbnails; each
  //    segment is represented by its first I frame (§3.1.1).
  std::vector<FrameRGB> representatives;
  representatives.reserve(iframes.size());
  for (const auto& seg : iframes) representatives.push_back(seg.pairs.front().hi);

  Rng vae_rng = rng.fork();
  result.vae = features::train_vae(
      features::make_thumbnails(representatives, cfg.vae.input_size), cfg.vae,
      cfg.vae_epochs, vae_rng);
  const cluster::Dataset feats =
      features::extract_features(*result.vae, representatives);

  // 5. Cluster count: silhouette-optimal K (Eq. 2) subject to the model-size
  //    bound K <= |M_big| / |M_min| (Eq. 3) and the configured cap.
  const int size_bound = sr::max_micro_models(cfg.big, cfg.micro);
  const int k_max =
      std::min({cfg.k_max, size_bound, static_cast<int>(feats.size()) - 1});
  if (k_max < 2) {
    // Degenerate video (one or two segments): a single micro model covers it.
    result.k = 1;
    result.labels.assign(feats.size(), 0);
  } else {
    result.silhouette_curve = cluster::silhouette_sweep(feats, k_max);
    if (result.silhouette_curve.empty()) {
      // A sweep that produced no candidates (argmax would throw) degrades to
      // the same single-model fallback as the k_max < 2 branch.
      result.k = 1;
      result.labels.assign(feats.size(), 0);
    } else {
      const int best_k = 2 + static_cast<int>(argmax(result.silhouette_curve));

      // 6. Final clustering at K* with global K-means (§3.1.2).
      const cluster::Clustering clustering =
          cluster::global_kmeans(feats, best_k);
      result.k = best_k;
      result.labels = clustering.assignment;
    }
  }

  // 7. One micro model per cluster, trained on that cluster's I frames only
  //    (§3.1.3). Per-cluster training is embarrassingly parallel — the
  //    paper's server-side pitch — so the clusters train concurrently. Each
  //    cluster's Rng is forked from the parent stream serially, in cluster
  //    order, before any task runs: every cluster sees the exact stream it
  //    saw under serial execution, so the trained weights are bit-identical
  //    regardless of thread count.
  struct ClusterJob {
    std::vector<sr::TrainSample> data;
    Rng rng{0};
    std::unique_ptr<sr::Edsr> model;
    sr::TrainStats stats;
  };
  std::vector<ClusterJob> jobs(static_cast<std::size_t>(result.k));
  for (int c = 0; c < result.k; ++c) {
    ClusterJob& job = jobs[static_cast<std::size_t>(c)];
    for (std::size_t s = 0; s < iframes.size(); ++s)
      if (result.labels[s] == c)
        for (const auto& p : iframes[s].pairs) job.data.push_back(p);
    if (job.data.empty())
      throw std::logic_error("run_server_pipeline: empty cluster");
    job.rng = rng.fork();
  }
  // Each chunk owns the ClusterJob slots [lo, hi) — model, stats and the
  // pre-forked Rng it advances all live inside the claimed records.
  parallel_for_writes(
      0, result.k, 1,
      [&](std::int64_t lo, std::int64_t hi) {
        return span_of(jobs.data() + lo, static_cast<std::size_t>(hi - lo));
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t c = lo; c < hi; ++c) {
          ClusterJob& job = jobs[static_cast<std::size_t>(c)];
          job.model = std::make_unique<sr::Edsr>(cfg.micro, job.rng);
          job.stats = sr::train_sr_model(*job.model, job.data, cfg.training, job.rng);
        }
      },
      "core/server_pipeline.cpp:run_server_pipeline(train clusters)");
  result.micro_models.reserve(static_cast<std::size_t>(result.k));
  for (auto& job : jobs) {
    result.train_flops += job.stats.train_flops;
    result.micro_models.push_back(std::move(job.model));
  }
  result.micro_model_bytes = sr::edsr_model_bytes(cfg.micro);
  return result;
}

}  // namespace dcsr::core
