#pragma once

#include <vector>

#include "codec/decoder.hpp"
#include "sr/edsr.hpp"
#include "video/source.hpp"

namespace dcsr::core {

/// Quality-measurement options for playback runs.
struct PlaybackOptions {
  /// Measure PSNR on every frame but SSIM only every `ssim_stride` frames
  /// (SSIM is the expensive metric).
  int ssim_stride = 5;

  /// For the NAS baseline, which runs the (large) model on *every* frame,
  /// restrict metric evaluation — and hence inference — to every Nth frame.
  /// Quality statistics are unaffected (frames are i.i.d. samples of the
  /// same distribution); compute drops by the same factor.
  int nas_eval_stride = 7;
};

/// Quality outcome of playing one video with one method. Metric strides are
/// keyed off the display index, so two methods evaluated with the same
/// options measure SSIM on the same set of frames even when they visit
/// different subsets (e.g. NAS's nas_eval_stride sampling).
struct PlaybackResult {
  std::vector<double> frame_psnr;   // per evaluated frame
  std::vector<double> frame_ssim;   // per evaluated frame (strided)
  std::vector<int> psnr_frame_index;  // which display frames were measured
  std::vector<int> ssim_frame_index;  // which display frames got SSIM
  double mean_psnr = 0.0;
  double mean_ssim = 0.0;
};

/// Client-side dcSR (Fig. 6): decode each segment; when its I frame lands in
/// the DPB, convert YUV->RGB, run the segment's micro model (selected by
/// cluster label), convert back, resume decoding so P/B frames reference the
/// enhanced picture. `models[labels[s]]` enhances segment s.
PlaybackResult play_dcsr(const codec::EncodedVideo& encoded,
                         const std::vector<int>& labels,
                         const std::vector<std::unique_ptr<sr::Edsr>>& models,
                         const VideoSource& original,
                         const PlaybackOptions& opts = {});

/// NEMO baseline (as simplified in §4): a single big model, applied in-loop
/// to I frames only — same decoder integration as dcSR, one model.
PlaybackResult play_nemo(const codec::EncodedVideo& encoded,
                         const sr::Edsr& big_model,
                         const VideoSource& original,
                         const PlaybackOptions& opts = {});

/// NAS baseline: a single big model applied out-of-loop to every decoded
/// frame before display. Sampled frames are enhanced concurrently across the
/// pool (the model's infer path is stateless); results are bit-identical
/// for any DCSR_THREADS.
PlaybackResult play_nas(const codec::EncodedVideo& encoded,
                        const sr::Edsr& big_model,
                        const VideoSource& original,
                        const PlaybackOptions& opts = {});

/// LOW baseline: the degraded stream as-is.
PlaybackResult play_low(const codec::EncodedVideo& encoded,
                        const VideoSource& original,
                        const PlaybackOptions& opts = {});

/// dcSR with NEMO-style anchor frames: besides every I frame, the micro
/// model also enhances each P-frame *reference* whose display index is a
/// multiple of `anchor_period` — bounding drift with extra inferences
/// instead of extra I-frame bits. anchor_period <= 0 disables anchors
/// (plain dcSR). Returns quality plus the number of inferences spent.
struct AnchorPlaybackResult {
  PlaybackResult playback;
  int inferences = 0;
};
AnchorPlaybackResult play_dcsr_anchors(
    const codec::EncodedVideo& encoded, const std::vector<int>& labels,
    const std::vector<std::unique_ptr<sr::Edsr>>& models,
    const VideoSource& original, int anchor_period,
    const PlaybackOptions& opts = {});

/// In-loop I-frame enhancement steps 2-5 of Fig. 6, reusable by anything
/// that hooks the decoder: YUV->RGB, model, RGB->YUV, write back.
void enhance_reference_frame(FrameYUV& frame, const sr::Edsr& model);

}  // namespace dcsr::core
