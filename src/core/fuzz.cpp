#include "core/fuzz.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>

#include "codec/bits.hpp"
#include "codec/container.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "codec/errors.hpp"
#include "codec/frame_coding.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"
#include "stream/errors.hpp"
#include "stream/manifest.hpp"
#include "stream/model_bundle.hpp"
#include "stream/playlist.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "video/genres.hpp"

namespace dcsr::core::fuzz {

namespace {

using Bytes = std::vector<std::uint8_t>;

// Per-iteration generator: independent of every other iteration, so any
// finding reproduces from (seed, iteration) without replaying the prefix.
Rng iteration_rng(std::uint64_t seed, std::uint64_t iteration) {
  return Rng(seed ^ (0x9e3779b97f4a7c15ULL * (iteration + 1)));
}

// ---- Mutation --------------------------------------------------------------

Bytes mutate(Bytes b, Rng& rng) {
  const int ops = static_cast<int>(rng.uniform_int(1, 4));
  for (int op = 0; op < ops; ++op) {
    switch (rng.uniform_int(0, 5)) {
      case 0:  // flip one bit
        if (!b.empty()) {
          const auto i = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1));
          b[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        }
        break;
      case 1:  // overwrite one byte
        if (!b.empty()) {
          const auto i = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1));
          b[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
        break;
      case 2:  // truncate
        b.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(b.size()))));
        break;
      case 3: {  // insert a few random bytes
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(b.size())));
        const int n = static_cast<int>(rng.uniform_int(1, 8));
        Bytes extra;
        for (int i = 0; i < n; ++i)
          extra.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
        b.insert(b.begin() + static_cast<std::ptrdiff_t>(at), extra.begin(),
                 extra.end());
        break;
      }
      case 4:  // zero a range
        if (!b.empty()) {
          const auto lo = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1));
          const auto hi = std::min(
              b.size(), lo + static_cast<std::size_t>(rng.uniform_int(1, 16)));
          std::fill(b.begin() + static_cast<std::ptrdiff_t>(lo),
                    b.begin() + static_cast<std::ptrdiff_t>(hi), 0);
        }
        break;
      case 5:  // duplicate a slice into a random position
        if (!b.empty()) {
          const auto lo = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1));
          const auto len = std::min(
              b.size() - lo, static_cast<std::size_t>(rng.uniform_int(1, 16)));
          const Bytes slice(b.begin() + static_cast<std::ptrdiff_t>(lo),
                            b.begin() + static_cast<std::ptrdiff_t>(lo + len));
          const auto at = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(b.size())));
          b.insert(b.begin() + static_cast<std::ptrdiff_t>(at), slice.begin(),
                   slice.end());
        }
        break;
    }
  }
  return b;
}

// ---- Valid base artefacts --------------------------------------------------
//
// Each harness mutates a *valid* serialised artefact: random bytes die at the
// magic check, but a flipped bit inside a valid stream walks the deep parse
// paths the hardening actually protects.

codec::EncodedVideo base_video(std::uint64_t seed) {
  Rng rng(seed);
  codec::EncodedVideo v;
  v.width = 32;
  v.height = 32;
  v.fps = 30.0;
  v.crf = 30;
  v.deblock = true;
  for (int s = 0; s < 2; ++s) {
    codec::EncodedSegment seg;
    seg.first_frame = s * 3;
    seg.crf = 28 + s;
    for (int f = 0; f < 3; ++f) {
      codec::EncodedFrame frame;
      frame.type = f == 0 ? codec::FrameType::kI : codec::FrameType::kP;
      frame.display_index = f;
      const int n = static_cast<int>(rng.uniform_int(5, 25));
      for (int i = 0; i < n; ++i)
        frame.payload.push_back(
            static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      // Second segment carries v3 slice tables so container mutations also
      // walk the slice-count/size validation (the first stays sliceless —
      // slice_count 0 — exercising the mixed case a v3 file may hold).
      if (s == 1)
        frame.slice_sizes = {static_cast<std::uint32_t>(frame.payload.size())};
      seg.frames.push_back(std::move(frame));
    }
    v.segments.push_back(std::move(seg));
  }
  return v;
}

stream::Manifest base_manifest() {
  stream::Manifest m;
  m.model_bytes = {12000, 34000, 56000};
  for (int i = 0; i < 4; ++i)
    m.segments.push_back(
        {i, 30, static_cast<std::uint64_t>(1000 + 37 * i),
         i == 3 ? stream::kNoModel : i % 3});
  return m;
}

stream::ModelBundle base_bundle(std::uint64_t seed) {
  Rng rng(seed);
  stream::ModelBundle b;
  for (int label = 0; label < 3; ++label) {
    Bytes payload;
    const int n = static_cast<int>(rng.uniform_int(8, 64));
    for (int i = 0; i < n; ++i)
      payload.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    b.add(label, std::move(payload));
  }
  return b;
}

}  // namespace

Bytes valid_input(Harness h, std::uint64_t seed) {
  switch (h) {
    case Harness::kBits: {
      // A valid exp-Golomb stream; mutations then shift code boundaries.
      Rng rng(seed);
      codec::BitWriter bw;
      for (int i = 0; i < 24; ++i) {
        bw.put_ue(static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20)));
        bw.put_se(static_cast<std::int32_t>(rng.uniform_int(-(1 << 16), 1 << 16)));
      }
      return bw.finish();
    }
    case Harness::kContainer: {
      ByteWriter w;
      codec::write_container(base_video(seed), w);
      return w.bytes();
    }
    case Harness::kDecoder:
      return {};  // the decoder harness mutates a real encode; see run()
    case Harness::kManifest: {
      ByteWriter w;
      stream::write_manifest(base_manifest(), w);
      return w.bytes();
    }
    case Harness::kPlaylist: {
      const std::string text = stream::write_playlist(base_manifest());
      return Bytes(text.begin(), text.end());
    }
    case Harness::kBundle: {
      ByteWriter w;
      base_bundle(seed).serialize(w);
      return w.bytes();
    }
    case Harness::kSlice: {
      // One real single-slice I frame: resync header (marker + geometry)
      // followed by a restricted-intra payload. Mutations walk the marker
      // check, the ue-coded geometry fields, and the entropy loop behind
      // the resync point.
      const auto video = make_genre_video(Genre::kNews, seed, 32, 32, 0.2);
      const codec::Quantizer q(30);
      codec::EncodedFrame ef;
      (void)codec::encode_intra_frame_sliced(rgb_to_yuv420(video->frame(0)),
                                             q, 1, ef);
      return ef.payload;
    }
  }
  return {};
}

namespace {

// ---- Bits writer/reader roundtrip property ---------------------------------

void bits_roundtrip_check(Harness h, std::uint64_t iteration, Rng& rng) {
  struct Op {
    int kind;  // 0 = ue, 1 = se, 2 = raw bits
    std::uint32_t value;
    int width;
  };
  std::vector<Op> ops;
  codec::BitWriter bw;
  const int n = static_cast<int>(rng.uniform_int(1, 32));
  for (int i = 0; i < n; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.uniform_int(0, 2));
    switch (op.kind) {
      case 0:
        op.value = static_cast<std::uint32_t>(rng.next_u64());
        if (op.value == 0xffffffffu) op.value = 0;  // the one unencodable ue
        op.width = 0;
        bw.put_ue(op.value);
        break;
      case 1: {
        auto v = static_cast<std::int32_t>(rng.next_u64());
        if (v == std::numeric_limits<std::int32_t>::min()) v = 0;
        op.value = static_cast<std::uint32_t>(v);
        op.width = 0;
        bw.put_se(v);
        break;
      }
      default:
        op.width = static_cast<int>(rng.uniform_int(1, 32));
        op.value = static_cast<std::uint32_t>(rng.next_u64());
        if (op.width < 32) op.value &= (1u << op.width) - 1;
        bw.put_bits(op.value, op.width);
        break;
    }
    ops.push_back(op);
  }
  const Bytes bytes = bw.finish();
  codec::BitReader br(bytes);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    std::uint32_t got = 0;
    switch (ops[i].kind) {
      case 0: got = br.get_ue(); break;
      case 1: got = static_cast<std::uint32_t>(br.get_se()); break;
      default: got = br.get_bits(ops[i].width); break;
    }
    if (got != ops[i].value)
      throw FuzzFailure(h, iteration, bytes,
                        "roundtrip mismatch at op " + std::to_string(i) +
                            ": wrote " + std::to_string(ops[i].value) +
                            ", read " + std::to_string(got));
  }
}

// ---- Decoder harness -------------------------------------------------------

codec::EncodedVideo encode_base_video(std::uint64_t seed) {
  const auto video = make_genre_video(Genre::kNews, seed, 32, 32, 0.2);
  codec::CodecConfig cfg;
  cfg.crf = 30;
  cfg.use_b_frames = true;
  const codec::Encoder enc(cfg);
  return enc.encode(*video, {{0, video->frame_count()}});
}

}  // namespace

std::vector<Harness> all_harnesses() {
  return {Harness::kBits,     Harness::kContainer, Harness::kDecoder,
          Harness::kManifest, Harness::kPlaylist,  Harness::kBundle,
          Harness::kSlice};
}

const char* harness_name(Harness h) {
  switch (h) {
    case Harness::kBits: return "bits";
    case Harness::kContainer: return "container";
    case Harness::kDecoder: return "decoder";
    case Harness::kManifest: return "manifest";
    case Harness::kPlaylist: return "playlist";
    case Harness::kBundle: return "bundle";
    case Harness::kSlice: return "slice";
  }
  return "?";
}

std::optional<Harness> harness_from_name(std::string_view name) {
  for (const Harness h : all_harnesses())
    if (name == harness_name(h)) return h;
  return std::nullopt;
}

ReplayOutcome replay(Harness h, const Bytes& bytes) {
  switch (h) {
    case Harness::kBits: {
      // Rotate through the read primitives until the payload is exhausted;
      // a malformed or truncated code must surface as BitstreamError.
      codec::BitReader br(bytes);
      try {
        for (int op = 0;; op = (op + 1) % 4) {
          if (br.bits_consumed() >= 8 * bytes.size()) return ReplayOutcome::kParsed;
          switch (op) {
            case 0: br.get_ue(); break;
            case 1: br.get_se(); break;
            case 2: br.get_bits(13); break;
            default: br.get_bit(); break;
          }
        }
      } catch (const codec::BitstreamError&) {
        return ReplayOutcome::kTypedError;
      }
    }
    case Harness::kContainer:
      try {
        ByteReader r(bytes);
        (void)codec::read_container(r);
        return ReplayOutcome::kParsed;
      } catch (const codec::ContainerError&) {
        return ReplayOutcome::kTypedError;
      } catch (const std::out_of_range&) {
        return ReplayOutcome::kSafeError;  // ByteReader truncation guard
      }
    case Harness::kDecoder:
      // Single-payload form (the corpus shape): the bytes are one I-frame
      // payload. run() additionally mutates whole real segments.
      try {
        codec::EncodedSegment seg;
        seg.crf = 28;
        codec::EncodedFrame frame;
        frame.type = codec::FrameType::kI;
        frame.payload = bytes;
        seg.frames.push_back(std::move(frame));
        codec::Decoder dec(32, 32, 28);
        (void)dec.decode_segment(seg);
        return ReplayOutcome::kParsed;
      } catch (const codec::BitstreamError&) {
        return ReplayOutcome::kTypedError;
      } catch (const std::invalid_argument&) {
        return ReplayOutcome::kSafeError;  // reference/display-structure guard
      }
    case Harness::kManifest:
      try {
        ByteReader r(bytes);
        (void)stream::read_manifest(r);
        return ReplayOutcome::kParsed;
      } catch (const stream::ManifestError&) {
        return ReplayOutcome::kTypedError;
      } catch (const std::out_of_range&) {
        return ReplayOutcome::kSafeError;
      }
    case Harness::kPlaylist:
      try {
        (void)stream::parse_playlist(std::string(bytes.begin(), bytes.end()));
        return ReplayOutcome::kParsed;
      } catch (const stream::ManifestError&) {
        return ReplayOutcome::kTypedError;
      }
    case Harness::kBundle:
      try {
        ByteReader r(bytes);
        (void)stream::ModelBundle::deserialize(r);
        return ReplayOutcome::kParsed;
      } catch (const stream::BundleError&) {
        return ReplayOutcome::kTypedError;
      } catch (const std::out_of_range&) {
        return ReplayOutcome::kSafeError;
      }
    case Harness::kSlice:
      // The bytes are one slice substream: wrap them as a single-slice
      // I frame (the container v3 shape) so they run the concurrent sliced
      // decode path — resync header first, entropy loop after it.
      try {
        codec::EncodedSegment seg;
        seg.crf = 28;
        codec::EncodedFrame frame;
        frame.type = codec::FrameType::kI;
        frame.payload = bytes;
        frame.slice_sizes = {static_cast<std::uint32_t>(bytes.size())};
        seg.frames.push_back(std::move(frame));
        codec::Decoder dec(32, 32, 28);
        (void)dec.decode_segment(seg);
        return ReplayOutcome::kParsed;
      } catch (const codec::BitstreamError&) {
        return ReplayOutcome::kTypedError;
      } catch (const std::invalid_argument&) {
        return ReplayOutcome::kSafeError;  // reference/display-structure guard
      }
  }
  return ReplayOutcome::kParsed;
}

FuzzStats run(Harness h, std::uint64_t seed, std::uint64_t iters,
              std::uint64_t start) {
  FuzzStats stats;
  const Bytes base = valid_input(h, seed);
  codec::EncodedVideo encoded;
  if (h == Harness::kDecoder) encoded = encode_base_video(seed);

  for (std::uint64_t i = start; i < start + iters; ++i) {
    Rng rng = iteration_rng(seed, i);
    ++stats.iterations;

    if (h == Harness::kBits) bits_roundtrip_check(h, i, rng);

    Bytes input;
    ReplayOutcome outcome;
    try {
      if (h == Harness::kDecoder) {
        // Mutate the payloads of one real segment in memory: the container
        // CRC would reject nearly every mutation, so the harness aims past
        // it, straight at the entropy-decode loops.
        const auto s = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(encoded.segments.size()) - 1));
        codec::EncodedSegment seg = encoded.segments[s];
        const int n_mut = static_cast<int>(
            rng.uniform_int(1, static_cast<std::int64_t>(seg.frames.size())));
        for (int m = 0; m < n_mut; ++m) {
          const auto f = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(seg.frames.size()) - 1));
          seg.frames[f].payload = mutate(seg.frames[f].payload, rng);
          if (input.empty()) input = seg.frames[f].payload;
        }
        // The encoder emits sliced (v3) frames, so every payload mutation
        // above already lands in the sliced path. Additionally corrupt the
        // slice *table* sometimes: size-sum mismatches, impossible slice
        // counts, and demotion to the legacy sliceless parse.
        if (rng.uniform_int(0, 3) == 0) {
          const auto f = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(seg.frames.size()) - 1));
          auto& sizes = seg.frames[f].slice_sizes;
          switch (rng.uniform_int(0, 2)) {
            case 0:
              if (!sizes.empty())
                sizes[0] += static_cast<std::uint32_t>(rng.uniform_int(1, 64));
              break;
            case 1:
              sizes.push_back(
                  static_cast<std::uint32_t>(rng.uniform_int(0, 64)));
              break;
            default:
              sizes.clear();
              break;
          }
        }
        try {
          codec::Decoder dec(encoded.width, encoded.height, encoded.crf);
          (void)dec.decode_segment(seg);
          outcome = ReplayOutcome::kParsed;
        } catch (const codec::BitstreamError&) {
          outcome = ReplayOutcome::kTypedError;
        } catch (const std::invalid_argument&) {
          outcome = ReplayOutcome::kSafeError;
        }
      } else {
        input = mutate(base, rng);
        outcome = replay(h, input);
      }
    } catch (const FuzzFailure&) {
      throw;
    } catch (const std::exception& e) {
      throw FuzzFailure(h, i, input,
                        std::string("unexpected exception: ") + e.what());
    }

    switch (outcome) {
      case ReplayOutcome::kParsed: ++stats.parsed; break;
      case ReplayOutcome::kTypedError: ++stats.typed_errors; break;
      case ReplayOutcome::kSafeError: ++stats.safe_errors; break;
    }
  }
  return stats;
}

std::vector<std::pair<std::string, Bytes>> regression_corpus() {
  std::vector<std::pair<std::string, Bytes>> out;

  // codec/bits: an all-zero prefix longer than 31 bits is not a valid ue
  // code (pre-hardening this reached `1u << 32`, undefined behaviour).
  out.emplace_back("bits-bad-ue-prefix.bin", Bytes(5, 0x00));
  // codec/bits: a stream that ends mid-codeword must throw, not read past.
  out.emplace_back("bits-over-read.bin", Bytes{0x80});

  {  // codec/container: wrong magic.
    ByteWriter w;
    w.write_u32(0x21212121);
    w.write_u32(0);
    out.emplace_back("container-bad-magic.bin", w.bytes());
  }
  {  // codec/container: declared payload larger than the remaining bytes.
    ByteWriter w;
    w.write_u32(0x64635632);  // "dcV2"
    w.write_u32(16);          // width
    w.write_u32(16);          // height
    w.write_f64(30.0);
    w.write_u32(28);  // crf
    w.write_u8(0);    // deblock
    w.write_u32(1);   // segment count
    w.write_u32(0);   // first_frame
    w.write_i32(-1);  // segment crf
    w.write_u32(1);   // frame count
    w.write_u8(0);    // frame type I
    w.write_u32(0);   // display index
    w.write_u32(0xffffff);  // payload size, far past the end
    out.emplace_back("container-truncated-payload.bin", w.bytes());
  }
  {  // codec/container: valid stream with its trailing CRC corrupted.
    codec::EncodedVideo v;
    v.width = 16;
    v.height = 16;
    ByteWriter w;
    codec::write_container(v, w);
    Bytes b = w.bytes();
    b.back() ^= 0xff;
    out.emplace_back("container-crc-mismatch.bin", std::move(b));
  }

  // codec/decoder: intra prediction mode 3 does not exist (pre-hardening it
  // silently produced a garbage prediction block).
  out.emplace_back("decoder-bad-intra-mode.bin", Bytes{0xc0});
  // codec/decoder: vertical prediction signalled for the top-left block,
  // whose "row above" is row -1 — an ASan-caught heap over-read this PR's
  // fuzz-smoke leg found (the encoder never emits a directional mode when
  // the neighbour is missing; only a corrupted stream can).
  out.emplace_back("decoder-mode-needs-missing-neighbour.bin", Bytes{0x40});
  {  // codec/decoder: zig-zag run pointing past the 64-coefficient block.
    codec::BitWriter bw;
    bw.put_bits(0, 2);  // intra mode DC
    bw.put_ue(63);      // run to the last coefficient
    bw.put_se(1);       // its level
    bw.put_ue(0);       // one more (run 0) — lands at position 64
    out.emplace_back("decoder-run-past-block.bin", bw.finish());
  }

  // codec slices: the first byte of a slice substream must be the resync
  // marker 0x5c; anything else is a desynchronised or overwritten slice.
  out.emplace_back("slice-bad-marker.bin", Bytes{0x00});
  // codec slices: a substream that ends inside the resync header (marker
  // present, geometry fields missing) must throw, not read past the end.
  out.emplace_back("slice-truncated-header.bin", Bytes{0x5c});
  {  // codec slices: header geometry disagreeing with the canonical
     // partition (claims MB row 1 of 1 where slice 0 of a 32x32 frame must
     // cover rows [0, 2)) — a slice written for a different frame size or a
     // reordered slice table.
    codec::BitWriter bw;
    bw.put_bits(0x5c, 8);
    bw.put_ue(1);  // first_mb_row: canonical slice 0 starts at row 0
    bw.put_ue(1);  // mb_row_count: the single slice must cover both rows
    out.emplace_back("slice-geometry-mismatch.bin", bw.finish());
  }
  {  // codec slices: valid resync header, impossible intra mode right after
     // it — the post-resync entropy loop must stay as hardened as the
     // sliceless one.
    codec::BitWriter bw;
    bw.put_bits(0x5c, 8);
    bw.put_ue(0);
    bw.put_ue(2);
    bw.put_bits(3, 2);  // intra mode 3 does not exist
    out.emplace_back("slice-bad-mode-after-resync.bin", bw.finish());
  }

  {  // stream/manifest: wrong magic.
    ByteWriter w;
    w.write_u32(0x21212121);
    out.emplace_back("manifest-bad-magic.bin", w.bytes());
  }
  {  // stream/manifest: valid stream with its trailing CRC corrupted.
    ByteWriter w;
    stream::Manifest m;
    m.model_bytes = {123};
    m.segments.push_back({0, 30, 1000, 0});
    stream::write_manifest(m, w);
    Bytes b = w.bytes();
    b.back() ^= 0xff;
    out.emplace_back("manifest-crc-mismatch.bin", std::move(b));
  }
  {  // stream/manifest: segment referencing a model that is not declared.
    ByteWriter w;
    w.write_u32(0x64634d46);  // "dcMF"
    w.write_u32(0);           // model count
    w.write_u32(1);           // segment count
    w.write_u32(0);           // segment index
    w.write_u32(5);           // frame count
    w.write_u64(100);         // video bytes
    w.write_i32(7);           // dangling model label
    out.emplace_back("manifest-unknown-model.bin", w.bytes());
  }

  {  // stream/playlist: unknown directive.
    const std::string text = "#DCSR-PLAYLIST:1\n#MODELS:0\n#BOGUS:1\n#END\n";
    out.emplace_back("playlist-bad-directive.txt", Bytes(text.begin(), text.end()));
  }
  {  // stream/playlist: non-numeric field.
    const std::string text = "#DCSR-PLAYLIST:1\n#MODELS:abc\n#END\n";
    out.emplace_back("playlist-bad-number.txt", Bytes(text.begin(), text.end()));
  }

  {  // stream/model_bundle: wrong magic.
    ByteWriter w;
    w.write_u32(0x21212121);
    out.emplace_back("bundle-bad-magic.bin", w.bytes());
  }
  {  // stream/model_bundle: payload byte flipped under a valid per-entry CRC.
    stream::ModelBundle b;
    b.add(0, Bytes{1, 2, 3, 4});
    ByteWriter w;
    b.serialize(w);
    Bytes bytes = w.bytes();
    bytes.back() ^= 0xff;
    out.emplace_back("bundle-crc-mismatch.bin", std::move(bytes));
  }

  return out;
}

}  // namespace dcsr::core::fuzz
