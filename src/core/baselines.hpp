#pragma once

#include <memory>

#include "codec/encoder.hpp"
#include "sr/model_zoo.hpp"
#include "sr/trainer.hpp"
#include "video/source.hpp"

namespace dcsr::core {

/// Configuration of the NAS/NEMO-style single-big-model baseline: "one large
/// SR model is trained with all the video frames in each video, and is
/// downloaded in the beginning of the video streaming" (§4).
struct BaselineConfig {
  sr::EdsrConfig big = sr::big_model_config();

  /// Training frames are sampled uniformly across the whole video (all
  /// frame types, not just I frames — the generalisation burden that causes
  /// the paper's Fig. 1(c) quality variance).
  int training_frames = 32;

  sr::TrainOptions training{.iterations = 300, .patch_size = 24,
                            .batch_size = 4, .lr = 2e-3};
  std::uint64_t seed = 7;
};

struct BaselineResult {
  std::unique_ptr<sr::Edsr> model;
  std::uint64_t model_bytes = 0;
  std::uint64_t train_flops = 0;
};

/// Trains the big model on (decoded, original) pairs sampled across the
/// entire video. Used as both the NAS and the (simplified) NEMO model.
BaselineResult train_big_model(const VideoSource& video,
                               const codec::EncodedVideo& encoded,
                               const BaselineConfig& cfg);

/// The (lo, hi) pairs the baseline trains on; exposed for the Fig. 1(c)
/// quality-variance and Fig. 11 memorisation experiments.
std::vector<sr::TrainSample> collect_whole_video_pairs(
    const VideoSource& video, const codec::EncodedVideo& encoded,
    int training_frames);

}  // namespace dcsr::core
