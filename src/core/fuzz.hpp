#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dcsr::core::fuzz {

/// One deterministic mutation-fuzz target: a parse surface that must reject
/// arbitrary bytes with its typed error, never UB, a crash, or an unrelated
/// exception. No libFuzzer — the loop is seeded via util/rng, so every
/// finding reproduces from (harness, seed, iteration) alone.
enum class Harness {
  kBits,       // codec/bits exp-Golomb reader + writer/reader roundtrip
  kContainer,  // codec/container read_container
  kDecoder,    // codec/decoder decode_segment on mutated frame payloads
  kManifest,   // stream/manifest binary read_manifest
  kPlaylist,   // stream/playlist text parse_playlist
  kBundle,     // stream/model_bundle deserialize
  kSlice,      // codec/decoder sliced (v3) path: resync headers + geometry
};

/// All harnesses in a stable order (the `all` mode of the CLI).
std::vector<Harness> all_harnesses();

const char* harness_name(Harness h);
std::optional<Harness> harness_from_name(std::string_view name);

/// What one input did when fed to a harness's parse surface.
enum class ReplayOutcome {
  kParsed,      // accepted: the mutation preserved validity
  kTypedError,  // rejected with the harness's typed error (the contract)
  kSafeError,   // rejected with a base-library guard (ByteReader truncation,
                // decoder reference-structure errors): safe, but untyped
};

/// Feeds one raw input to the harness's parse surface. Deterministic given
/// the bytes alone (no RNG), so checked-in corpus files replay exactly.
/// Anything other than a clean parse or an acceptable rejection propagates.
ReplayOutcome replay(Harness h, const std::vector<std::uint8_t>& bytes);

/// The valid serialised artefact the fuzz loop mutates — a well-formed
/// container/manifest/playlist/bundle (or exp-Golomb stream for kBits).
/// Empty for kDecoder, whose base is a real encode done inside run().
std::vector<std::uint8_t> valid_input(Harness h, std::uint64_t seed);

/// Thrown by run() when an iteration escapes the harness's error contract:
/// an exception outside the acceptable set, or a writer/reader roundtrip
/// mismatch. Carries everything needed to reproduce and minimise.
class FuzzFailure : public std::runtime_error {
 public:
  FuzzFailure(Harness h, std::uint64_t iteration,
              std::vector<std::uint8_t> input, const std::string& detail)
      : std::runtime_error(std::string("fuzz ") + harness_name(h) +
                           " iteration " + std::to_string(iteration) + ": " +
                           detail),
        harness_(h),
        iteration_(iteration),
        input_(std::move(input)) {}

  Harness harness() const noexcept { return harness_; }
  std::uint64_t iteration() const noexcept { return iteration_; }
  const std::vector<std::uint8_t>& input() const noexcept { return input_; }

 private:
  Harness harness_;
  std::uint64_t iteration_;
  std::vector<std::uint8_t> input_;
};

/// Tally of one fuzz run.
struct FuzzStats {
  std::uint64_t iterations = 0;
  std::uint64_t parsed = 0;       // mutations that still parsed
  std::uint64_t typed_errors = 0; // rejected with the typed error
  std::uint64_t safe_errors = 0;  // rejected with a base-library guard
};

/// Runs `iters` seeded mutation iterations against one harness. Iteration i
/// derives its own Rng from (seed, i), so a crash at iteration i reproduces
/// with run(h, seed, 1, i). Throws FuzzFailure on any contract escape.
FuzzStats run(Harness h, std::uint64_t seed, std::uint64_t iters,
              std::uint64_t start = 0);

/// The checked-in regression corpus: minimal deterministic inputs, one per
/// hardened failure mode, each of which must replay to kTypedError. The
/// files under tests/corpus/ are exactly these bytes (fuzz_corpus_test
/// pins both directions).
std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
regression_corpus();

}  // namespace dcsr::core::fuzz
