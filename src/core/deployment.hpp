#pragma once

#include <string>

#include "core/server_pipeline.hpp"

namespace dcsr::core {

/// On-disk deployment of one video — what the server pipeline publishes to a
/// CDN directory and a client loads back:
///
///   video.dcv      CRC-protected encoded stream (codec/container)
///   models.bin     ModelBundle of the micro models, fp16 by default
///   playlist.txt   text manifest (segments, labels, byte sizes)
///   meta.txt       micro-model architecture + precision, one line
///
/// Everything round-trips: load_deployment() reconstructs models and the
/// manifest such that client playback is identical (bit-exact in fp32 mode,
/// within fp16 rounding otherwise).
struct DeploymentPaths {
  std::string video, models, playlist, meta;
};

DeploymentPaths deployment_paths(const std::string& dir);

/// Writes all four artefacts. `fp16` halves the model payloads.
void write_deployment(const ServerResult& server, const std::string& dir,
                      bool fp16 = true);

/// A loaded deployment, ready for play_dcsr / simulate_session.
struct Deployment {
  codec::EncodedVideo video;
  stream::Manifest manifest;
  std::vector<int> labels;  // per segment, from the manifest
  std::vector<std::unique_ptr<sr::Edsr>> models;
  sr::EdsrConfig micro;
  bool fp16 = false;
};

Deployment load_deployment(const std::string& dir);

}  // namespace dcsr::core
