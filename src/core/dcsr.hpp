#pragma once

/// Umbrella header for the dcSR library: pulls in the public API of the
/// primary contribution (server + client pipelines, baselines) and the
/// substrate modules an application typically touches.
///
/// Quick map:
///   core/server_pipeline.hpp — Fig. 2: split, VAE features, global K-means,
///                              per-cluster micro EDSR training
///   core/client_pipeline.hpp — Fig. 6: decoder-integrated I-frame SR,
///                              plus the NEMO/NAS/LOW baselines
///   core/baselines.hpp       — big-model training (NAS/NEMO)
///   stream/*                 — manifests, Algorithm-1 model cache, sessions
///   device/*                 — Jetson/laptop/desktop latency & power models
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/baselines.hpp"
#include "core/client_pipeline.hpp"
#include "core/server_pipeline.hpp"
#include "device/latency.hpp"
#include "device/power.hpp"
#include "device/profiles.hpp"
#include "split/segmenter.hpp"
#include "sr/min_model.hpp"
#include "sr/model_zoo.hpp"
#include "stream/session.hpp"
#include "video/genres.hpp"
