#include "core/client_pipeline.hpp"

#include <array>
#include <future>
#include <stdexcept>
#include <utility>

#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "util/alloc_check.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dcsr::core {

namespace {

// Runs `fn` under a hot-path guard once playback is past its warm-up
// segment: segment 0 legitimately grows frame slots, workspace tensors and
// pool scratch, but every later segment of the same resolution must be
// heap-silent (sanctioned growth aside), and the guard makes a regression
// throw instead of silently costing a malloc per frame.
template <typename Fn>
void guarded_after_warmup(bool warm, const char* site, Fn&& fn) {
  if (warm) {
    HotPathGuard alloc_guard(site);
    fn();
  } else {
    fn();
  }
}

// Converts a decoded segment to RGB with one task per frame, writing into a
// caller-owned vector: warm slots keep their plane buffers, so converting
// segment after segment of the same resolution stops touching the
// allocator. Conversion is pure per-frame work, so it overlaps freely; the
// metric accumulation that follows stays serial and in display order.
void convert_segment_into(const std::vector<FrameYUV>& frames,
                          std::vector<FrameRGB>& rgb) {
  rgb.resize(frames.size());
  // Each chunk owns the FrameRGB slots [lo, hi) it converts into.
  parallel_for_writes(
      0, static_cast<std::int64_t>(frames.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        return span_of(rgb.data() + lo, static_cast<std::size_t>(hi - lo));
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          yuv420_to_rgb_into(frames[static_cast<std::size_t>(i)],
                             rgb[static_cast<std::size_t>(i)]);
      },
      "core/client_pipeline.cpp:convert_segment");
}

// Accumulates per-frame metrics against the pristine source. Strides are
// keyed off the *display index*, never off how many frames a playback path
// happened to visit: every method must evaluate SSIM on the same frames or
// the Fig. 9 comparison is apples to oranges.
class MetricsCollector {
 public:
  MetricsCollector(const VideoSource& original, const PlaybackOptions& opts)
      : original_(original), opts_(opts) {}

  void measure_rgb(const FrameRGB& rgb, int display_index) {
    const FrameRGB ref = original_.frame(display_index);
    result_.frame_psnr.push_back(psnr(ref, rgb));
    result_.psnr_frame_index.push_back(display_index);
    if (display_index % opts_.ssim_stride == 0) {
      result_.frame_ssim.push_back(ssim(ref, rgb));
      result_.ssim_frame_index.push_back(display_index);
    }
  }

  PlaybackResult finish() {
    result_.mean_psnr = mean(result_.frame_psnr);
    result_.mean_ssim = mean(result_.frame_ssim);
    return std::move(result_);
  }

 private:
  const VideoSource& original_;
  PlaybackOptions opts_;
  PlaybackResult result_;
};

// Runs `produce(s)` for each segment index with one segment of lookahead:
// while segment s's frames flow through `consume` (serial, display order —
// the metric path), segment s+1 already decodes, enhances its I frame and
// converts to RGB on a background thread. Exactly one producer task is in
// flight at a time, so producers may share decoder state without locking;
// consumption order — and therefore every accumulated metric — is identical
// to the serial program.
template <typename T, typename Produce, typename Consume>
void pipeline_segments(std::size_t count, Produce produce, Consume consume) {
  if (count == 0) return;
  std::future<T> next;
  for (std::size_t s = 0; s < count; ++s) {
    T current = (s == 0) ? produce(0) : next.get();
    if (s + 1 < count)
      next = std::async(std::launch::async, produce, s + 1);
    consume(std::move(current), s);
  }
}

// Decodes every segment with the given reference hook and feeds all display
// frames to the collector.
PlaybackResult decode_and_measure(const codec::EncodedVideo& encoded,
                                  const VideoSource& original,
                                  const PlaybackOptions& opts,
                                  const std::function<void(FrameYUV&, int segment)>& enhance_i) {
  MetricsCollector collector(original, opts);
  codec::Decoder decoder(encoded.width, encoded.height, encoded.crf);
  decoder.set_deblock(encoded.deblock);
  // Two rotating segment buffers: produce(s) refills buffer s%2 while the
  // consumer still reads s-1's (the other one), so the single-lookahead
  // pipeline reuses the same frame storage for the whole playback instead of
  // allocating a fresh vector per segment.
  std::array<std::vector<FrameRGB>, 2> rgb_bufs;
  const auto produce = [&](std::size_t s) {
    if (enhance_i) {
      decoder.set_reference_hook([&enhance_i, s](FrameYUV& f, codec::FrameType,
                                                 int) {
        enhance_i(f, static_cast<int>(s));
      });
    }
    std::vector<FrameRGB>& buf = rgb_bufs[s % 2];
    convert_segment_into(decoder.decode_segment(encoded.segments[s]), buf);
    return &buf;
  };

  std::vector<int> frame_base(encoded.segments.size(), 0);
  for (std::size_t s = 1; s < encoded.segments.size(); ++s)
    frame_base[s] = frame_base[s - 1] +
                    static_cast<int>(encoded.segments[s - 1].frames.size());

  pipeline_segments<std::vector<FrameRGB>*>(
      encoded.segments.size(), produce,
      [&](std::vector<FrameRGB>* rgb, std::size_t s) {
        for (std::size_t i = 0; i < rgb->size(); ++i)
          collector.measure_rgb((*rgb)[i], frame_base[s] + static_cast<int>(i));
      });
  return collector.finish();
}

}  // namespace

void enhance_reference_frame(FrameYUV& frame, const sr::Edsr& model) {
  if (model.config().scale != 1)
    throw std::invalid_argument(
        "enhance_reference_frame: in-loop enhancement requires a scale-1 model "
        "(the enhanced picture must fit back into the DPB)");
  // Steps 2-5 of Fig. 6. The two RGB intermediates are per-thread and reused
  // across calls — like the model's inference workspace — so steady-state
  // in-loop enhancement stays off the allocator.
  thread_local FrameRGB rgb, enhanced;
  yuv420_to_rgb_into(frame, rgb);
  model.enhance_into(rgb, enhanced);
  rgb_to_yuv420_into(enhanced, frame);
}

PlaybackResult play_dcsr(const codec::EncodedVideo& encoded,
                         const std::vector<int>& labels,
                         const std::vector<std::unique_ptr<sr::Edsr>>& models,
                         const VideoSource& original,
                         const PlaybackOptions& opts) {
  if (labels.size() != encoded.segments.size())
    throw std::invalid_argument("play_dcsr: one label per segment required");
  for (const int l : labels)
    if (l < 0 || static_cast<std::size_t>(l) >= models.size())
      throw std::invalid_argument("play_dcsr: label out of range");
  return decode_and_measure(
      encoded, original, opts, [&](FrameYUV& f, int segment) {
        enhance_reference_frame(
            f, *models[static_cast<std::size_t>(labels[static_cast<std::size_t>(segment)])]);
      });
}

PlaybackResult play_nemo(const codec::EncodedVideo& encoded, const sr::Edsr& big_model,
                         const VideoSource& original, const PlaybackOptions& opts) {
  return decode_and_measure(encoded, original, opts,
                            [&](FrameYUV& f, int) { enhance_reference_frame(f, big_model); });
}

PlaybackResult play_nas(const codec::EncodedVideo& encoded, const sr::Edsr& big_model,
                        const VideoSource& original, const PlaybackOptions& opts) {
  MetricsCollector collector(original, opts);
  codec::Decoder decoder(encoded.width, encoded.height, encoded.crf);
  decoder.set_deblock(encoded.deblock);
  // One slot per sampled frame, hoisted out of the segment loop so the
  // conversion and enhancement buffers stay warm from segment to segment.
  // Grouping a task's buffers in one struct keeps the parallel section's
  // write claim a single contiguous span over the slots it owns.
  struct NasSlot {
    int display = 0;
    const FrameYUV* yuv = nullptr;  // borrowed from this segment's decode
    FrameRGB rgb;                   // YUV->RGB scratch
    FrameRGB enhanced;              // model output
  };
  std::vector<NasSlot> slots;
  int frame_base = 0;
  std::size_t seg_index = 0;
  for (const auto& seg : encoded.segments) {
    const auto frames = decoder.decode_segment(seg);
    std::size_t sampled = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const int display = frame_base + static_cast<int>(i);
      if (display % opts.nas_eval_stride != 0) continue;
      if (sampled == slots.size()) slots.emplace_back();
      slots[sampled].display = display;
      slots[sampled].yuv = &frames[i];
      ++sampled;
    }
    // Out-of-loop enhancement fans out across the pool: every sampled frame
    // is YUV->RGB converted and super-resolved independently against the one
    // shared model (infer touches no member state, so concurrent calls are
    // safe), each task writing only its own slots. Metrics then accumulate
    // serially in display order, keeping results bit-identical for any
    // DCSR_THREADS.
    guarded_after_warmup(
        seg_index > 0, "core/client_pipeline.cpp:play_nas(warm)", [&] {
          parallel_for_writes(
              0, static_cast<std::int64_t>(sampled), 1,
              [&](std::int64_t lo, std::int64_t hi) {
                return span_of(slots.data() + lo,
                               static_cast<std::size_t>(hi - lo));
              },
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                  NasSlot& slot = slots[static_cast<std::size_t>(i)];
                  yuv420_to_rgb_into(*slot.yuv, slot.rgb);
                  big_model.enhance_into(slot.rgb, slot.enhanced);
                }
              },
              "core/client_pipeline.cpp:play_nas");
        });
    for (std::size_t i = 0; i < sampled; ++i)
      collector.measure_rgb(slots[i].enhanced, slots[i].display);
    frame_base += static_cast<int>(frames.size());
    ++seg_index;
  }
  return collector.finish();
}

PlaybackResult play_low(const codec::EncodedVideo& encoded,
                        const VideoSource& original, const PlaybackOptions& opts) {
  return decode_and_measure(encoded, original, opts, nullptr);
}

AnchorPlaybackResult play_dcsr_anchors(
    const codec::EncodedVideo& encoded, const std::vector<int>& labels,
    const std::vector<std::unique_ptr<sr::Edsr>>& models,
    const VideoSource& original, int anchor_period, const PlaybackOptions& opts) {
  if (labels.size() != encoded.segments.size())
    throw std::invalid_argument("play_dcsr_anchors: one label per segment required");
  for (const int l : labels)
    if (l < 0 || static_cast<std::size_t>(l) >= models.size())
      throw std::invalid_argument("play_dcsr_anchors: label out of range");

  AnchorPlaybackResult result;
  MetricsCollector collector(original, opts);
  codec::Decoder enhanced_decoder(encoded.width, encoded.height, encoded.crf);
  codec::Decoder vanilla_decoder(encoded.width, encoded.height, encoded.crf);
  enhanced_decoder.set_deblock(encoded.deblock);
  vanilla_decoder.set_deblock(encoded.deblock);

  struct SegmentOut {
    std::vector<FrameRGB> rgb;
    int inferences = 0;
  };
  // Rotating pair of segment outputs, same scheme as decode_and_measure:
  // the producer refills s%2 while the consumer drains the other, and warm
  // frame slots are rewritten in place segment after segment.
  std::array<SegmentOut, 2> seg_bufs;
  const auto produce = [&](std::size_t s) {
    SegmentOut& out = seg_bufs[s % 2];
    out.inferences = 0;
    const sr::Edsr& model = *models[static_cast<std::size_t>(labels[s])];

    // Anchors must be enhanced from the *vanilla* decode: the micro model
    // was trained on plainly decoded frames, and re-enhancing an
    // already-enhanced chain compounds the correction until it diverges
    // (this is why NEMO keeps its anchor inputs on the un-enhanced path).
    const auto vanilla = vanilla_decoder.decode_segment(encoded.segments[s]);

    enhanced_decoder.set_reference_hook(
        [&, s](FrameYUV& f, codec::FrameType type, int display_index) {
          const int local = display_index - encoded.segments[s].first_frame;
          guarded_after_warmup(
              s > 0, "core/client_pipeline.cpp:play_dcsr_anchors(warm)", [&] {
                if (type == codec::FrameType::kI) {
                  enhance_reference_frame(f, model);
                  ++out.inferences;
                  return;
                }
                // P anchor: replace the drifted reference with the enhanced
                // vanilla reconstruction — an I-refresh that costs an
                // inference instead of bits.
                if (anchor_period > 0 && local % anchor_period == 0) {
                  f = vanilla[static_cast<std::size_t>(local)];
                  enhance_reference_frame(f, model);
                  ++out.inferences;
                }
              });
        },
        /*include_p_frames=*/anchor_period > 0);
    convert_segment_into(enhanced_decoder.decode_segment(encoded.segments[s]),
                         out.rgb);
    return &out;
  };

  std::vector<int> frame_base(encoded.segments.size(), 0);
  for (std::size_t s = 1; s < encoded.segments.size(); ++s)
    frame_base[s] = frame_base[s - 1] +
                    static_cast<int>(encoded.segments[s - 1].frames.size());

  pipeline_segments<SegmentOut*>(
      encoded.segments.size(), produce, [&](SegmentOut* seg, std::size_t s) {
        result.inferences += seg->inferences;
        for (std::size_t i = 0; i < seg->rgb.size(); ++i)
          collector.measure_rgb(seg->rgb[i], frame_base[s] + static_cast<int>(i));
      });
  result.playback = collector.finish();
  return result;
}

}  // namespace dcsr::core
