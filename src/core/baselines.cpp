#include "core/baselines.hpp"

#include <algorithm>
#include <stdexcept>

#include "codec/decoder.hpp"
#include "image/convert.hpp"

namespace dcsr::core {

std::vector<sr::TrainSample> collect_whole_video_pairs(
    const VideoSource& video, const codec::EncodedVideo& encoded,
    int training_frames) {
  const int total = encoded.frame_count();
  if (training_frames <= 0 || total <= 0)
    throw std::invalid_argument("collect_whole_video_pairs: bad arguments");
  const int stride = std::max(1, total / training_frames);

  std::vector<sr::TrainSample> pairs;
  codec::Decoder decoder(encoded.width, encoded.height, encoded.crf);
  int frame_base = 0;
  for (const auto& seg : encoded.segments) {
    const auto frames = decoder.decode_segment(seg);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const int display = frame_base + static_cast<int>(i);
      if (display % stride != 0 ||
          pairs.size() >= static_cast<std::size_t>(training_frames))
        continue;
      sr::TrainSample pair;
      pair.lo = yuv420_to_rgb(frames[i]);
      pair.hi = video.frame(display);
      pairs.push_back(std::move(pair));
    }
    frame_base += static_cast<int>(frames.size());
  }
  return pairs;
}

BaselineResult train_big_model(const VideoSource& video,
                               const codec::EncodedVideo& encoded,
                               const BaselineConfig& cfg) {
  const auto pairs =
      collect_whole_video_pairs(video, encoded, cfg.training_frames);

  Rng rng(cfg.seed);
  BaselineResult result;
  result.model = std::make_unique<sr::Edsr>(cfg.big, rng);
  const sr::TrainStats stats =
      sr::train_sr_model(*result.model, pairs, cfg.training, rng);
  result.train_flops = stats.train_flops;
  result.model_bytes = sr::edsr_model_bytes(cfg.big);
  return result;
}

}  // namespace dcsr::core
