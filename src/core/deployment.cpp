#include "core/deployment.hpp"

#include <cstdio>
#include <stdexcept>

#include "codec/container.hpp"
#include "nn/serialize.hpp"
#include "stream/model_bundle.hpp"
#include "stream/playlist.hpp"
#include "util/file.hpp"

namespace dcsr::core {

DeploymentPaths deployment_paths(const std::string& dir) {
  return {dir + "/video.dcv", dir + "/models.bin", dir + "/playlist.txt",
          dir + "/meta.txt"};
}

void write_deployment(const ServerResult& server, const std::string& dir,
                      bool fp16) {
  const DeploymentPaths paths = deployment_paths(dir);

  // Stream.
  ByteWriter video_bytes;
  codec::write_container(server.encoded, video_bytes);
  write_file(paths.video, video_bytes.bytes());

  // Models, bundled with per-entry CRCs.
  stream::ModelBundle bundle;
  for (int label = 0; label < server.k; ++label) {
    ByteWriter w;
    if (fp16) {
      nn::save_params_fp16(*server.micro_models[static_cast<std::size_t>(label)], w);
    } else {
      nn::save_params(*server.micro_models[static_cast<std::size_t>(label)], w);
    }
    bundle.add(label, w.bytes());
  }
  ByteWriter bundle_bytes;
  bundle.serialize(bundle_bytes);
  write_file(paths.models, bundle_bytes.bytes());

  // Playlist with the *actual* serialised model sizes.
  std::vector<std::uint64_t> model_sizes;
  for (int label = 0; label < server.k; ++label)
    model_sizes.push_back(bundle.payload(label).size());
  const stream::Manifest manifest =
      stream::make_manifest(server.encoded, server.labels, std::move(model_sizes));
  const std::string playlist = stream::write_playlist(manifest);
  write_file(paths.playlist,
             std::vector<std::uint8_t>(playlist.begin(), playlist.end()));

  // Architecture metadata.
  const auto micro = server.micro_models.empty()
                         ? sr::EdsrConfig{}
                         : server.micro_models[0]->config();
  char meta[128];
  std::snprintf(meta, sizeof meta, "edsr %d %d %d %s\n", micro.n_filters,
                micro.n_resblocks, micro.scale, fp16 ? "fp16" : "fp32");
  const std::string meta_s(meta);
  write_file(paths.meta, std::vector<std::uint8_t>(meta_s.begin(), meta_s.end()));
}

Deployment load_deployment(const std::string& dir) {
  const DeploymentPaths paths = deployment_paths(dir);
  Deployment dep;

  // Metadata first: it tells us how to parse the models.
  const auto meta_bytes = read_file(paths.meta);
  const std::string meta(meta_bytes.begin(), meta_bytes.end());
  char precision[16] = {0};
  if (std::sscanf(meta.c_str(), "edsr %d %d %d %15s", &dep.micro.n_filters,
                  &dep.micro.n_resblocks, &dep.micro.scale, precision) != 4)
    throw std::invalid_argument("load_deployment: malformed meta.txt");
  dep.fp16 = std::string(precision) == "fp16";

  // Stream.
  ByteReader video_reader(read_file(paths.video));
  dep.video = codec::read_container(video_reader);

  // Manifest.
  const auto playlist_bytes = read_file(paths.playlist);
  dep.manifest = stream::parse_playlist(
      std::string(playlist_bytes.begin(), playlist_bytes.end()));
  for (const auto& seg : dep.manifest.segments) dep.labels.push_back(seg.model_label);
  if (dep.labels.size() != dep.video.segments.size())
    throw std::invalid_argument("load_deployment: playlist/stream segment mismatch");

  // Models.
  ByteReader bundle_reader(read_file(paths.models));
  const stream::ModelBundle bundle = stream::ModelBundle::deserialize(bundle_reader);
  Rng rng(0);
  for (std::size_t label = 0; label < dep.manifest.model_bytes.size(); ++label) {
    auto model = std::make_unique<sr::Edsr>(dep.micro, rng);
    ByteReader params(bundle.payload(static_cast<int>(label)));
    if (dep.fp16) {
      nn::load_params_fp16(*model, params);
    } else {
      nn::load_params(*model, params);
    }
    dep.models.push_back(std::move(model));
  }
  return dep;
}

}  // namespace dcsr::core
