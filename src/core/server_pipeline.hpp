#pragma once

#include <memory>
#include <vector>

#include "codec/encoder.hpp"
#include "features/vae.hpp"
#include "split/segmenter.hpp"
#include "sr/model_zoo.hpp"
#include "sr/trainer.hpp"
#include "stream/manifest.hpp"
#include "video/source.hpp"

namespace dcsr::core {

/// Everything the server-side dcSR pipeline is configured by.
struct ServerConfig {
  /// Encoding of the low-quality stream the client will receive. The
  /// paper's evaluation uses CRF 51 ("worst quality"). intra_period > 0
  /// inserts refresh I frames inside segments: each one re-applies the
  /// micro model in the client loop, bounding the quality drift of long
  /// P-chains ("there can be multiple I frames in a segment in a practical
  /// setting in order to avoid the quality drift", §4).
  codec::CodecConfig codec{.crf = 51, .intra_period = 12};

  /// Shot-based variable-length split (§3.1.1).
  split::SegmenterConfig segmenter;

  /// VAE used for I-frame feature extraction (§3.1.1 / Fig. 3).
  features::Vae::Config vae;
  int vae_epochs = 30;

  /// Architecture of each micro model (§3.1.3). The minimum-working-model
  /// search of Appendix A.1 can produce this; experiments may also pin it
  /// to dcSR-1/2/3.
  sr::EdsrConfig micro = sr::dcsr1_config();

  /// The big single-model baseline that bounds total model bytes (Eq. 3).
  sr::EdsrConfig big = sr::big_model_config();

  /// Hard cap on the cluster count sweep, on top of the Eq. 3 bound.
  int k_max = 16;

  /// Per-cluster micro-model training budget.
  sr::TrainOptions training{.iterations = 150, .patch_size = 24, .batch_size = 4,
                            .lr = 2e-3};

  std::uint64_t seed = 1;
};

/// One segment's I-frame training material.
struct SegmentIFrames {
  int segment_index = 0;
  std::vector<sr::TrainSample> pairs;  // decoded-lo / original-hi, one per I frame
};

/// Output of the server pipeline: everything the CDN stores for one video.
struct ServerResult {
  std::vector<codec::SegmentPlan> segments;
  codec::EncodedVideo encoded;

  /// Per-segment cluster label == micro-model label.
  std::vector<int> labels;
  int k = 0;
  std::vector<double> silhouette_curve;  // silhouette at k = 2 .. k_max

  std::unique_ptr<features::Vae> vae;
  std::vector<std::unique_ptr<sr::Edsr>> micro_models;  // one per cluster
  std::uint64_t micro_model_bytes = 0;                  // serialised size each

  /// Total training compute spent on the micro models (FLOPs), for the
  /// training-cost comparison in §4.
  std::uint64_t train_flops = 0;

  stream::Manifest manifest() const;
};

/// Runs the full server-side dcSR pipeline of Fig. 2: split -> encode ->
/// extract I-frame features with the VAE -> global K-means with the
/// silhouette criterion (Eq. 2) bounded by model size (Eq. 3) -> train one
/// micro EDSR per cluster.
ServerResult run_server_pipeline(const VideoSource& video, const ServerConfig& cfg);

/// Extracts each segment's I-frame (lo, hi) pairs by decoding the I frames
/// of the encoded stream and pairing them with the pristine source frames.
/// Shared by the pipeline, the baselines, and several benches.
std::vector<SegmentIFrames> collect_iframe_pairs(const VideoSource& video,
                                                 const codec::EncodedVideo& encoded,
                                                 const std::vector<codec::SegmentPlan>& segments);

}  // namespace dcsr::core
