// Microbenchmarks (google-benchmark) of the hot kernels under everything
// else: the 8x8 transform, the quantiser, GEMM, convolution, motion search,
// whole-frame intra coding, and the quality metrics. Useful when tuning the
// substrate — every figure bench's runtime is dominated by these.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <thread>

#include "codec/bits.hpp"
#include "codec/block_coder.hpp"
#include "codec/dct.hpp"
#include "codec/encoder.hpp"
#include "codec/frame_coding.hpp"
#include "codec/motion.hpp"
#include "codec/quant.hpp"
#include "core/client_pipeline.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "image/resize.hpp"
#include "nn/conv.hpp"
#include "simd/dispatch.hpp"
#include "sr/edsr.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"
#include "util/thread_pool.hpp"
#include "video/genres.hpp"

namespace dcsr {
namespace {

using codec::Block8;

// Pool size before any sweep touched it (reads the DCSR_THREADS/-hardware
// default on first call; every thread-sweep bench restores it afterwards).
int base_threads() {
  static const int t = default_thread_count();
  return t;
}

// Second point of the thread sweeps: all hardware threads, or 2 on a
// single-core host so the pooled code path still gets exercised.
int sweep_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<int>(hw) : 2;
}

Block8 random_block(Rng& rng) {
  Block8 b{};
  for (auto& v : b) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  return b;
}

void BM_Dct8x8(benchmark::State& state) {
  Rng rng(1);
  const Block8 b = random_block(rng);
  for (auto _ : state) benchmark::DoNotOptimize(codec::dct8x8(b));
}
BENCHMARK(BM_Dct8x8);

void BM_Idct8x8(benchmark::State& state) {
  Rng rng(2);
  const Block8 b = random_block(rng);
  for (auto _ : state) benchmark::DoNotOptimize(codec::idct8x8(b));
}
BENCHMARK(BM_Idct8x8);

void BM_QuantizeBlock(benchmark::State& state) {
  Rng rng(3);
  const Block8 b = random_block(rng);
  const codec::Quantizer q(28);
  for (auto _ : state) benchmark::DoNotOptimize(q.quantize(b, true));
}
BENCHMARK(BM_QuantizeBlock);

// The decoder's per-block hot loop: fused dequantise + inverse transform.
void BM_DequantIdct8x8(benchmark::State& state) {
  Rng rng(3);
  const Block8 b = random_block(rng);
  const codec::Quantizer q(28);
  const codec::Levels8 lv = q.quantize(b, true);
  for (auto _ : state) benchmark::DoNotOptimize(q.dequantize_idct(lv, true));
}
BENCHMARK(BM_DequantIdct8x8);

// im2col on an inference-shaped conv (c=8, 48x48, 3x3, stride 1, pad 1):
// ~80% of a small conv's wall time, and the biggest single SIMD lever in
// BM_EdsrEnhanceSteadyState.
void BM_Im2col(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Rng rng(5);
  const Tensor x = Tensor::randn({1, c, 48, 48}, rng);
  Tensor cols({c * 9, 48 * 48});
  for (auto _ : state) {
    im2col_into(x, 0, 3, 1, 1, cols);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(8)->Arg(32);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(matmul_naive(a, b));
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulNaive)->Arg(256);

// Thread sweep: same 256x256 GEMM on a pool of 1 vs all hardware threads.
void BM_MatmulThreads(benchmark::State& state) {
  const int dflt = base_threads();
  const int n = 256;
  Rng rng(4);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  set_default_pool_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  set_default_pool_threads(dflt);
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(sweep_threads());

void BM_Conv2dForward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Rng rng(5);
  nn::Conv2d conv(c, c, 3, rng);
  const Tensor x = Tensor::randn({1, c, 48, 48}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

// Backward pass on a batch: the im2col matrices built by forward are reused,
// so backward pays only for the three GEMMs and the col2im scatter.
void BM_Conv2dBackward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Rng rng(5);
  nn::Conv2d conv(c, c, 3, rng);
  const Tensor x = Tensor::randn({4, c, 48, 48}, rng);
  const Tensor y = conv.forward(x);
  Tensor go = Tensor::randn(y.shape(), rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.backward(go));
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16)->Arg(32);

// One full training step (forward + backward) across thread counts; batch
// items are the parallel axis.
void BM_Conv2dTrainStepThreads(benchmark::State& state) {
  const int dflt = base_threads();
  const int c = 16;
  Rng rng(5);
  nn::Conv2d conv(c, c, 3, rng);
  const Tensor x = Tensor::randn({4, c, 48, 48}, rng);
  const Tensor y = conv.forward(x);
  Tensor go = Tensor::randn(y.shape(), rng);
  set_default_pool_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
    benchmark::DoNotOptimize(conv.backward(go));
  }
  set_default_pool_threads(dflt);
}
BENCHMARK(BM_Conv2dTrainStepThreads)->Arg(1)->Arg(sweep_threads());

void BM_EdsrInference(benchmark::State& state) {
  Rng rng(6);
  sr::Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  const Tensor x = Tensor::randn({1, 3, 64, 48}, rng, 0.2f);
  for (auto _ : state) benchmark::DoNotOptimize(model.forward(x));
}
BENCHMARK(BM_EdsrInference);

// Steady-state playback: one persistent thread enhancing the same-sized
// frame over and over into a warm output — the shape of the client's display
// loop. After a 3-frame warm-up every workspace checkout must be a hit, so
// ws_miss_per_frame reports 0.000 and the counter doubles as a regression
// alarm for allocations sneaking back into the hot path.
void BM_EdsrEnhanceSteadyState(benchmark::State& state) {
  Rng rng(6);
  const sr::Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  const auto video = make_genre_video(Genre::kNews, 12, 96, 64, 1.0, 30.0);
  const FrameRGB frame = video->frame(0);
  FrameRGB out;
  for (int i = 0; i < 3; ++i) model.enhance_into(frame, out);  // warm up
  const Workspace::Stats before = Workspace::local().stats();
  const AllocStats alloc_before = thread_alloc_stats();
  std::int64_t frames = 0;
  for (auto _ : state) {
    model.enhance_into(frame, out);
    benchmark::DoNotOptimize(out);
    ++frames;
  }
  const AllocStats alloc_after = thread_alloc_stats();
  const Workspace::Stats after = Workspace::local().stats();
  state.SetItemsProcessed(frames);
  const double n = frames > 0 ? static_cast<double>(frames) : 1.0;
  state.counters["ws_miss_per_frame"] =
      static_cast<double>(after.misses - before.misses) / n;
  state.counters["ws_hit_per_frame"] =
      static_cast<double>(after.hits - before.hits) / n;
  // Raw operator-new calls per steady-state frame — 0 by contract. Only a
  // DCSR_ALLOC_CHECK build carries the interposer; without it the counter
  // reads 0 vacuously, and the checked leg is what enforces the pin.
  state.counters["allocs_per_frame"] =
      static_cast<double>(alloc_after.allocs - alloc_before.allocs) / n;
}
BENCHMARK(BM_EdsrEnhanceSteadyState);

// Whole-frame enhancement through the stateless infer path, one shared model
// across the pool, swept over pool sizes — the play_nas fan-out in
// isolation. 8 frames per iteration, each a parallel_for task.
void BM_EdsrEnhanceThreads(benchmark::State& state) {
  const int dflt = base_threads();
  Rng rng(6);
  const sr::Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  const auto video = make_genre_video(Genre::kNews, 12, 96, 64, 1.0, 30.0);
  std::vector<FrameRGB> frames;
  for (int i = 0; i < 8; ++i) frames.push_back(video->frame(i));
  std::vector<FrameRGB> enhanced(frames.size());
  set_default_pool_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    parallel_for(0, static_cast<std::int64_t>(frames.size()), 1,
                 [&](std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t i = lo; i < hi; ++i)
                     enhanced[static_cast<std::size_t>(i)] =
                         model.enhance(frames[static_cast<std::size_t>(i)]);
                 });
    benchmark::DoNotOptimize(enhanced.data());
  }
  set_default_pool_threads(dflt);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_EdsrEnhanceThreads)->Arg(1)->Arg(sweep_threads());

// End-to-end NAS playback (decode + concurrent out-of-loop SR + metrics) on
// a quickstart-sized workload, across pool sizes.
void BM_PlayNasThreads(benchmark::State& state) {
  const int dflt = base_threads();
  Rng rng(6);
  static const auto video =
      make_genre_video(Genre::kNews, 5, 96, 64, 6.0, 10.0);
  static const codec::EncodedVideo encoded = [] {
    codec::CodecConfig cfg;
    const codec::Encoder enc(cfg);
    return enc.encode(*video, {{0, 30}, {30, 30}});
  }();
  const sr::Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  core::PlaybackOptions opts;
  opts.nas_eval_stride = 3;
  set_default_pool_threads(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::play_nas(encoded, model, *video, opts));
  set_default_pool_threads(dflt);
}
BENCHMARK(BM_PlayNasThreads)->Arg(1)->Arg(sweep_threads());

// Slice-parallel frame decode across pool sizes. The same segment is encoded
// once at the sliced format's default experiment shape (4 MB-row slices) and
// decoded into warm frames over and over; slices are the parallel axis, so
// the Arg(1) row is the serial baseline and the sweep row is the speedup the
// decode-smoke leg proves bit-identical.
void BM_DecodeFrameThreads(benchmark::State& state) {
  const int dflt = base_threads();
  static const auto video =
      make_genre_video(Genre::kSports, 13, 192, 128, 2.0, 30.0);
  static const codec::EncodedVideo encoded = [] {
    codec::CodecConfig cfg;
    cfg.crf = 30;
    cfg.slices = 4;
    return codec::Encoder(cfg).encode(*video, {{0, 60}});
  }();
  codec::Decoder dec(encoded.width, encoded.height, encoded.crf);
  std::vector<FrameYUV> display;
  dec.decode_segment_into(encoded.segments[0], display);  // warm scratch
  set_default_pool_threads(static_cast<int>(state.range(0)));
  std::int64_t frames = 0;
  for (auto _ : state) {
    dec.decode_segment_into(encoded.segments[0], display);
    benchmark::DoNotOptimize(display.data());
    frames += static_cast<std::int64_t>(display.size());
  }
  set_default_pool_threads(dflt);
  state.SetItemsProcessed(frames);
}
BENCHMARK(BM_DecodeFrameThreads)->Arg(1)->Arg(sweep_threads());

// Batched SR through enhance_batch_into: one workspace checkout and one
// dispatch per batch instead of per frame. items_processed counts frames, so
// the per-item time directly compares against batch=1 — the gap is the
// amortisation the fleet's cross-session batching banks on.
void BM_EdsrEnhanceBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  const sr::Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  const auto video = make_genre_video(Genre::kNews, 12, 96, 64, 1.0, 30.0);
  std::vector<FrameRGB> frames, outs(static_cast<std::size_t>(n));
  std::vector<const FrameRGB*> in_ptrs;
  std::vector<FrameRGB*> out_ptrs;
  for (int i = 0; i < n; ++i) frames.push_back(video->frame(i));
  for (int i = 0; i < n; ++i) {
    in_ptrs.push_back(&frames[static_cast<std::size_t>(i)]);
    out_ptrs.push_back(&outs[static_cast<std::size_t>(i)]);
  }
  model.enhance_batch_into(in_ptrs.data(), out_ptrs.data(), n);  // warm up
  std::int64_t done = 0;
  for (auto _ : state) {
    model.enhance_batch_into(in_ptrs.data(), out_ptrs.data(), n);
    benchmark::DoNotOptimize(outs.data());
    done += n;
  }
  state.SetItemsProcessed(done);
}
BENCHMARK(BM_EdsrEnhanceBatch)->Arg(1)->Arg(4)->Arg(8);

void BM_MotionSearch(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kSports, 7, 128, 80, 1.0, 30.0);
  const FrameYUV a = rgb_to_yuv420(video->frame(0));
  const FrameYUV b = rgb_to_yuv420(video->frame(5));
  for (auto _ : state)
    benchmark::DoNotOptimize(codec::motion_search(b.y, a.y, 48, 32, 16, 8));
}
BENCHMARK(BM_MotionSearch);

void BM_IntraFrameEncode(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kNews, 8, 96, 64, 1.0, 30.0);
  const FrameYUV f = rgb_to_yuv420(video->frame(0));
  const codec::Quantizer q(28);
  for (auto _ : state) {
    codec::BitWriter bw;
    benchmark::DoNotOptimize(codec::encode_intra_frame(f, q, bw));
  }
}
BENCHMARK(BM_IntraFrameEncode);

void BM_Psnr(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kGaming, 9, 96, 64, 1.0, 30.0);
  const FrameRGB a = video->frame(0);
  const FrameRGB b = video->frame(3);
  for (auto _ : state) benchmark::DoNotOptimize(psnr(a, b));
}
BENCHMARK(BM_Psnr);

void BM_Ssim(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kGaming, 10, 96, 64, 1.0, 30.0);
  const FrameRGB a = video->frame(0);
  const FrameRGB b = video->frame(3);
  for (auto _ : state) benchmark::DoNotOptimize(ssim(a, b));
}
BENCHMARK(BM_Ssim);

void BM_ResizeBicubic(benchmark::State& state) {
  Plane p(96, 64);
  for (auto _ : state) benchmark::DoNotOptimize(resize_bicubic(p, 192, 128));
}
BENCHMARK(BM_ResizeBicubic);

void BM_YuvRoundTrip(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kAnimation, 11, 96, 64, 1.0, 30.0);
  const FrameRGB f = video->frame(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(yuv420_to_rgb(rgb_to_yuv420(f)));
}
BENCHMARK(BM_YuvRoundTrip);

}  // namespace
}  // namespace dcsr

// Custom main instead of BENCHMARK_MAIN(): report the SIMD dispatch decision
// up front and stamp it (plus this binary's build type) into the JSON
// context, so a recorded BENCH_kernels.json is attributable to a backend and
// a non-Release run is visible in the artifact itself.
int main(int argc, char** argv) {
  std::string dispatch;
  try {
    dispatch = dcsr::simd::report();
  } catch (const dcsr::simd::SimdDispatchError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << dispatch << "\n";
  benchmark::AddCustomContext(
      "dcsr_simd_backend",
      dcsr::simd::backend_name(dcsr::simd::active_backend()));
  benchmark::AddCustomContext("dcsr_simd_dispatch", dispatch);
#ifdef DCSR_BENCH_BUILD_TYPE
  benchmark::AddCustomContext("dcsr_build_type", DCSR_BENCH_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
