// Microbenchmarks (google-benchmark) of the hot kernels under everything
// else: the 8x8 transform, the quantiser, GEMM, convolution, motion search,
// whole-frame intra coding, and the quality metrics. Useful when tuning the
// substrate — every figure bench's runtime is dominated by these.

#include <benchmark/benchmark.h>

#include "codec/bits.hpp"
#include "codec/block_coder.hpp"
#include "codec/dct.hpp"
#include "codec/frame_coding.hpp"
#include "codec/motion.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "image/resize.hpp"
#include "nn/conv.hpp"
#include "sr/edsr.hpp"
#include "tensor/ops.hpp"
#include "video/genres.hpp"

namespace dcsr {
namespace {

using codec::Block8;

Block8 random_block(Rng& rng) {
  Block8 b{};
  for (auto& v : b) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  return b;
}

void BM_Dct8x8(benchmark::State& state) {
  Rng rng(1);
  const Block8 b = random_block(rng);
  for (auto _ : state) benchmark::DoNotOptimize(codec::dct8x8(b));
}
BENCHMARK(BM_Dct8x8);

void BM_Idct8x8(benchmark::State& state) {
  Rng rng(2);
  const Block8 b = random_block(rng);
  for (auto _ : state) benchmark::DoNotOptimize(codec::idct8x8(b));
}
BENCHMARK(BM_Idct8x8);

void BM_QuantizeBlock(benchmark::State& state) {
  Rng rng(3);
  const Block8 b = random_block(rng);
  const codec::Quantizer q(28);
  for (auto _ : state) benchmark::DoNotOptimize(q.quantize(b, true));
}
BENCHMARK(BM_QuantizeBlock);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Rng rng(5);
  nn::Conv2d conv(c, c, 3, rng);
  const Tensor x = Tensor::randn({1, c, 48, 48}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_EdsrInference(benchmark::State& state) {
  Rng rng(6);
  sr::Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  const Tensor x = Tensor::randn({1, 3, 64, 48}, rng, 0.2f);
  for (auto _ : state) benchmark::DoNotOptimize(model.forward(x));
}
BENCHMARK(BM_EdsrInference);

void BM_MotionSearch(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kSports, 7, 128, 80, 1.0, 30.0);
  const FrameYUV a = rgb_to_yuv420(video->frame(0));
  const FrameYUV b = rgb_to_yuv420(video->frame(5));
  for (auto _ : state)
    benchmark::DoNotOptimize(codec::motion_search(b.y, a.y, 48, 32, 16, 8));
}
BENCHMARK(BM_MotionSearch);

void BM_IntraFrameEncode(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kNews, 8, 96, 64, 1.0, 30.0);
  const FrameYUV f = rgb_to_yuv420(video->frame(0));
  const codec::Quantizer q(28);
  for (auto _ : state) {
    codec::BitWriter bw;
    benchmark::DoNotOptimize(codec::encode_intra_frame(f, q, bw));
  }
}
BENCHMARK(BM_IntraFrameEncode);

void BM_Psnr(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kGaming, 9, 96, 64, 1.0, 30.0);
  const FrameRGB a = video->frame(0);
  const FrameRGB b = video->frame(3);
  for (auto _ : state) benchmark::DoNotOptimize(psnr(a, b));
}
BENCHMARK(BM_Psnr);

void BM_Ssim(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kGaming, 10, 96, 64, 1.0, 30.0);
  const FrameRGB a = video->frame(0);
  const FrameRGB b = video->frame(3);
  for (auto _ : state) benchmark::DoNotOptimize(ssim(a, b));
}
BENCHMARK(BM_Ssim);

void BM_ResizeBicubic(benchmark::State& state) {
  Plane p(96, 64);
  for (auto _ : state) benchmark::DoNotOptimize(resize_bicubic(p, 192, 128));
}
BENCHMARK(BM_ResizeBicubic);

void BM_YuvRoundTrip(benchmark::State& state) {
  const auto video = make_genre_video(Genre::kAnimation, 11, 96, 64, 1.0, 30.0);
  const FrameRGB f = video->frame(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(yuv420_to_rgb(rgb_to_yuv420(f)));
}
BENCHMARK(BM_YuvRoundTrip);

}  // namespace
}  // namespace dcsr

BENCHMARK_MAIN();
