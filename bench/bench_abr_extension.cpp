// Future-work extension (§4 of the paper): "an ABR algorithm can use the
// decoded and super-resolved quality level as an input to trade the network
// and compute capacity". This bench builds a real 3-rung bitrate ladder with
// the repo's encoder, measures base and dcSR-enhanced quality on the lowest
// rung, and compares a classic rate-based ABR against the dcSR-aware variant
// over a fluctuating network.

#include <cstdio>

#include "bench/common.hpp"
#include "stream/abr.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::bench;

int main() {
  const auto video = make_genre_video(Genre::kNews, 301, kWidth, kHeight, 40.0, kFps);

  // Segment layout shared by all rungs (ladders must align segments).
  const auto segments = split::variable_segments(*video);
  std::printf("video: %s, %zu segments\n\n", video->name().c_str(), segments.size());

  // ---- Build the ladder ----------------------------------------------------
  const int crfs[3] = {51, 39, 27};
  std::vector<stream::Rung> ladder(3);
  core::ServerResult server;  // dcSR artefacts for the bottom rung
  for (int r = 0; r < 3; ++r) {
    codec::CodecConfig ccfg;
    ccfg.crf = crfs[r];
    ccfg.intra_period = 10;
    const auto encoded = codec::Encoder(ccfg).encode(*video, segments);
    auto& rung = ladder[static_cast<std::size_t>(r)];
    rung.crf = crfs[r];
    for (const auto& seg : encoded.segments)
      rung.segment_bytes.push_back(seg.size_bytes());
    rung.base_quality_db = core::play_low(encoded, *video).mean_psnr;

    if (r == 0) {
      // Train micro models for the lowest rung and measure enhanced quality.
      core::ServerConfig scfg = quality_server_config();
      scfg.codec = ccfg;
      scfg.training.iterations = 400;
      server = core::run_server_pipeline(*video, scfg);
      rung.enhanced_quality_db =
          core::play_dcsr(server.encoded, server.labels, server.micro_models,
                          *video)
              .mean_psnr;
    }
  }
  // SR gains shrink as the source quality rises; model the upper rungs with
  // a diminishing share of the measured bottom-rung gain.
  const double gain0 = ladder[0].enhanced_quality_db - ladder[0].base_quality_db;
  ladder[1].enhanced_quality_db = ladder[1].base_quality_db + 0.5 * gain0;
  ladder[2].enhanced_quality_db = ladder[2].base_quality_db + 0.25 * gain0;

  Table lt({"rung", "CRF", "KB total", "base PSNR", "enhanced PSNR"});
  for (int r = 0; r < 3; ++r) {
    std::uint64_t total = 0;
    for (const auto b : ladder[static_cast<std::size_t>(r)].segment_bytes) total += b;
    lt.add_row({std::to_string(r), std::to_string(crfs[r]), fmt(total / 1e3, 1),
                fmt(ladder[static_cast<std::size_t>(r)].base_quality_db, 2),
                fmt(ladder[static_cast<std::size_t>(r)].enhanced_quality_db, 2)});
  }
  std::printf("%s\n", lt.to_string().c_str());

  // Per-segment model bytes under the Algorithm-1 cache.
  const auto session = stream::simulate_session(server.manifest());
  std::vector<std::uint64_t> model_bytes;
  for (const auto& log : session.log) model_bytes.push_back(log.model_bytes);

  // ---- Fluctuating network --------------------------------------------------
  // Alternates between comfortable and constrained phases.
  stream::ThroughputTrace trace;
  const std::uint64_t top_total = [&] {
    std::uint64_t t = 0;
    for (const auto b : ladder[2].segment_bytes) t += b;
    return t;
  }();
  const double top_rate =
      static_cast<double>(top_total) / video->duration_seconds();
  for (int s = 0; s < 600; ++s)
    trace.bytes_per_second.push_back(((s / 20) % 2 == 0) ? 1.6 * top_rate
                                                         : 0.25 * top_rate);

  stream::AbrConfig classic;
  classic.segment_seconds = static_cast<double>(segments[0].frame_count) / kFps;
  stream::AbrConfig aware = classic;
  aware.dcsr_aware = true;
  // Target: the middle rung's un-enhanced quality — the dcSR-aware policy
  // must deliver it while riding cheaper rungs whose *enhanced* quality
  // clears the bar.
  aware.target_quality_db = ladder[1].base_quality_db;

  const auto r_classic = stream::simulate_abr(ladder, {}, trace, classic);
  const auto r_aware = stream::simulate_abr(ladder, model_bytes, trace, aware);

  std::printf("classic rate-based ABR vs dcSR-aware ABR over a fluctuating link:\n\n");
  Table rt({"policy", "mean rung", "mean delivered PSNR", "rebuffer s", "QoE",
            "KB total"});
  rt.add_row({"classic (no SR)", fmt(r_classic.mean_rung, 2),
              fmt(r_classic.mean_quality_db, 2), fmt(r_classic.rebuffer_seconds, 2),
              fmt(stream::qoe_score(r_classic), 2),
              fmt(r_classic.total_bytes / 1e3, 1)});
  rt.add_row({"dcSR-aware", fmt(r_aware.mean_rung, 2),
              fmt(r_aware.mean_quality_db, 2), fmt(r_aware.rebuffer_seconds, 2),
              fmt(stream::qoe_score(r_aware), 2),
              fmt(r_aware.total_bytes / 1e3, 1)});
  std::printf("%s\n", rt.to_string().c_str());
  std::printf("(dcSR-aware rides lower rungs whose enhanced quality meets the\n"
              " target, trading client compute for network bytes)\n");
  return 0;
}
