// Figure 5: "Optimal Number of Clusters" — silhouette coefficient over the
// number of clusters K for one video's segment features, the curve dcSR
// maximises (Eq. 2) to pick how many micro models to build. The paper's
// 12-minute video peaks around K = 16.
//
// Also runs the two clustering ablations DESIGN.md calls out:
//   - VAE latent features vs raw downsampled pixels
//   - global K-means vs randomly-seeded Lloyd K-means

#include <cstdio>

#include "bench/common.hpp"
#include "cluster/global_kmeans.hpp"
#include "cluster/pca.hpp"
#include "cluster/silhouette.hpp"
#include "features/extractor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::bench;

int main() {
  // A video scripted with 16 distinct recurring scenes across 64 shots —
  // the structure (a long video whose scenes repeat) that makes the paper's
  // silhouette curve peak at an interior K. Shots revisit scenes at varied
  // time offsets, so recurrences are similar but not identical frames.
  Rng scene_rng(4);
  std::vector<SceneSpec> scenes;
  for (int i = 0; i < 16; ++i) {
    SceneSpec s = random_scene(scene_rng, 0.15f, 0.5f);
    s.flicker = 0.0f;
    scenes.push_back(s);
  }
  std::vector<Shot> shots;
  for (int s = 0; s < 64; ++s) {
    Shot shot;
    shot.scene_id = s < 16 ? s : static_cast<int>(scene_rng.uniform_int(0, 15));
    shot.frame_count = static_cast<int>(scene_rng.uniform_int(20, 40));
    shot.scene_time_offset = scene_rng.uniform(0.0, 4.0);
    shots.push_back(shot);
  }
  const SyntheticVideo video("fig5-16scenes", scenes, shots, kWidth, kHeight, kFps);

  const auto segments = split::variable_segments(video);
  std::printf("video: %.0f s, 16 scripted scenes, %zu segments from the shot "
              "detector\n\n", video.duration_seconds(), segments.size());

  // Segment representatives: the original frame at each segment start (the
  // future I frame).
  std::vector<FrameRGB> reps;
  for (const auto& plan : segments) reps.push_back(video.frame(plan.first_frame));

  // VAE features.
  Rng rng(9);
  features::Vae::Config vcfg{.input_size = 16, .latent_dim = 8,
                             .base_channels = 4, .hidden = 48};
  const auto vae =
      features::train_vae(features::make_thumbnails(reps, vcfg.input_size), vcfg,
                          30, rng);
  const cluster::Dataset vae_feats = features::extract_features(*vae, reps);

  const int k_max = std::min<int>(30, static_cast<int>(reps.size()) - 1);
  const auto curve = cluster::silhouette_sweep(vae_feats, k_max);

  std::printf("Fig. 5: silhouette coefficient vs number of clusters (VAE features)\n\n");
  Table t({"k", "silhouette"});
  for (std::size_t i = 0; i < curve.size(); ++i)
    t.add_row({std::to_string(i + 2), fmt(curve[i], 4)});
  std::printf("%s", t.to_string().c_str());
  const int best_k = 2 + static_cast<int>(argmax(curve));
  std::printf("\noptimal K* = %d (silhouette %.4f)\n", best_k, max_of(curve));
  std::printf("(paper: curve peaks around K = 16 on a 12-minute video)\n\n");

  // ---- Ablation 1: VAE latents vs raw pixels vs PCA ------------------------
  const cluster::Dataset raw_feats = features::raw_pixel_features(reps, 16);
  const auto raw_curve = cluster::silhouette_sweep(raw_feats, k_max);
  const cluster::Pca pca =
      cluster::fit_pca(raw_feats, vcfg.latent_dim);  // same dim as the VAE
  const cluster::Dataset pca_feats = cluster::pca_transform(pca, raw_feats);
  const auto pca_curve = cluster::silhouette_sweep(pca_feats, k_max);
  std::printf("ablation: feature space (silhouette at the VAE optimum K*=%d)\n", best_k);
  std::printf("  VAE latents (%dd)  : %.4f\n", vcfg.latent_dim,
              curve[static_cast<std::size_t>(best_k - 2)]);
  std::printf("  PCA latents (%dd)  : %.4f\n", vcfg.latent_dim,
              pca_curve[static_cast<std::size_t>(best_k - 2)]);
  std::printf("  raw pixels (768d)  : %.4f\n\n",
              raw_curve[static_cast<std::size_t>(best_k - 2)]);

  // ---- Ablation 2: global K-means vs Lloyd --------------------------------
  const auto global_result = cluster::global_kmeans(vae_feats, best_k);
  Rng lloyd_rng(11);
  double lloyd_best = 0.0, lloyd_worst = 0.0, lloyd_mean = 0.0;
  constexpr int kRuns = 5;
  for (int r = 0; r < kRuns; ++r) {
    const auto c = cluster::kmeans(vae_feats, best_k, lloyd_rng, 100, /*n_init=*/1);
    const double inertia = c.inertia;
    lloyd_mean += inertia / kRuns;
    if (r == 0 || inertia < lloyd_best) lloyd_best = inertia;
    if (r == 0 || inertia > lloyd_worst) lloyd_worst = inertia;
  }
  std::printf("ablation: clustering algorithm (inertia at K*=%d, lower is better)\n",
              best_k);
  std::printf("  global K-means          : %.4f\n", global_result.inertia);
  std::printf("  Lloyd (5 random seeds)  : best %.4f / mean %.4f / worst %.4f\n",
              lloyd_best, lloyd_mean, lloyd_worst);
  std::printf("(the paper adopts global K-means to avoid Lloyd's local optima)\n");
  return 0;
}
