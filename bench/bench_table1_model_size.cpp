// Table 1: "Model Size (MB) Over Different Model Configurations"
// (n_f: # of filters, n_RB: # of ResBlocks).
//
// The paper's absolute sizes include TensorFlow graph overhead; ours are the
// raw serialised-weight sizes, so values are smaller but grow the same way:
// linearly in n_RB, quadratically in n_f for the body. The paper marks the
// per-video minimum working configs green and the big model (64f cell) red;
// here the dcSR-1/2/3 cells and the big-model cell are flagged in the notes.

#include <cstdio>

#include "sr/model_zoo.hpp"
#include "util/table.hpp"

using namespace dcsr;

int main() {
  std::printf("Table 1: model size (MB) over (n_f x n_RB); scale x1 models\n\n");

  std::vector<std::string> header{"n_f \\ n_RB"};
  for (const int rb : sr::table1_resblock_axis())
    header.push_back(std::to_string(rb));
  Table table(header);

  for (const int f : sr::table1_filter_axis()) {
    std::vector<std::string> row{std::to_string(f)};
    for (const int rb : sr::table1_resblock_axis())
      row.push_back(fmt(sr::model_size_mb({.n_filters = f, .n_resblocks = rb}), 3));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("notes:\n");
  std::printf("  dcSR-1 = 16f x 4rb  -> %.3f MB\n", sr::model_size_mb(sr::dcsr1_config()));
  std::printf("  dcSR-2 = 16f x 12rb -> %.3f MB\n", sr::model_size_mb(sr::dcsr2_config()));
  std::printf("  dcSR-3 = 16f x 16rb -> %.3f MB\n", sr::model_size_mb(sr::dcsr3_config()));
  std::printf("  big    = 64f x 16rb -> %.3f MB (the paper's red cell)\n",
              sr::model_size_mb(sr::big_model_config()));
  std::printf("  size ratio big/dcSR-1 = %.1fx -> Eq. 3 allows up to %d micro models\n",
              sr::model_size_mb(sr::big_model_config()) /
                  sr::model_size_mb(sr::dcsr1_config()),
              static_cast<int>(sr::edsr_model_bytes(sr::big_model_config()) /
                               sr::edsr_model_bytes(sr::dcsr1_config())));
  return 0;
}
