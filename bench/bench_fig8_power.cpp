// Figure 8(d): power consumption during 1080p playback on the Jetson Xavier
// NX. dcSR shows short periodic spikes (one burst of micro-model inference
// per segment); NEMO spikes longer (big model); NAS saturates the GPU and
// draws a sustained high power. The paper reports dcSR saving 1.4x / 2.9x
// energy vs NEMO / NAS on its testbed.

#include <cstdio>

#include "device/power.hpp"
#include "sr/model_zoo.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::device;

int main() {
  const DeviceProfile jetson = jetson_xavier_nx();
  const Resolution res = res_1080p();
  constexpr double kDuration = 800.0;  // the paper's Fig. 8(d) timeline

  PowerConfig dcsr{.model = sr::dcsr1_config(), .resolution = res,
                   .schedule = InferenceSchedule::kPerSegment,
                   .segment_seconds = 4.0, .inferences_per_segment = 1};
  PowerConfig nemo = dcsr;
  nemo.model = sr::big_model_config();
  PowerConfig nas{.model = sr::big_model_config(), .resolution = res,
                  .schedule = InferenceSchedule::kEveryFrame};

  const PowerTrace t_dcsr = simulate_power(jetson, dcsr, kDuration);
  const PowerTrace t_nemo = simulate_power(jetson, nemo, kDuration);
  const PowerTrace t_nas = simulate_power(jetson, nas, kDuration);

  std::printf("Fig. 8(d): power during 1080p playback on %s "
              "(1 Hz samples, shown every 20 s)\n\n", jetson.name.c_str());
  Table timeline({"t (s)", "dcSR (W)", "NEMO (W)", "NAS (W)"});
  for (std::size_t s = 0; s < t_dcsr.watts.size(); s += 20)
    timeline.add_row({std::to_string(s), fmt(t_dcsr.watts[s], 2),
                      fmt(t_nemo.watts[s], 2), fmt(t_nas.watts[s], 2)});
  std::printf("%s\n", timeline.to_string().c_str());

  Table summary({"method", "mean W", "peak W", "total J", "energy vs dcSR"});
  auto add = [&](const char* name, const PowerTrace& t) {
    summary.add_row({name, fmt(t.mean_watts, 2), fmt(t.peak_watts, 2),
                     fmt(t.total_joules, 0),
                     fmt(t.total_joules / t_dcsr.total_joules, 2) + "x"});
  };
  add("dcSR-1", t_dcsr);
  add("NEMO", t_nemo);
  add("NAS", t_nas);
  std::printf("%s\n", summary.to_string().c_str());
  std::printf("(paper: dcSR spikes stay under ~2 W; NAS sustains ~2.8 W; energy\n"
              " ratios 1.4x NEMO / 2.9x NAS — at 1080p our modeled NEMO matches\n"
              " NAS because the big model saturates the simulated Jetson GPU)\n\n");

  // At 720p the big model's burst fits inside a segment, so NEMO sits
  // between dcSR and NAS — the paper's energy ordering.
  PowerConfig dcsr720 = dcsr, nemo720 = nemo, nas720 = nas;
  dcsr720.resolution = nemo720.resolution = nas720.resolution = res_720p();
  const PowerTrace t7_dcsr = simulate_power(jetson, dcsr720, kDuration);
  const PowerTrace t7_nemo = simulate_power(jetson, nemo720, kDuration);
  const PowerTrace t7_nas = simulate_power(jetson, nas720, kDuration);
  Table summary720({"method (720p)", "mean W", "peak W", "total J", "energy vs dcSR"});
  auto add720 = [&](const char* name, const PowerTrace& t) {
    summary720.add_row({name, fmt(t.mean_watts, 2), fmt(t.peak_watts, 2),
                        fmt(t.total_joules, 0),
                        fmt(t.total_joules / t7_dcsr.total_joules, 2) + "x"});
  };
  add720("dcSR-1", t7_dcsr);
  add720("NEMO", t7_nemo);
  add720("NAS", t7_nas);
  std::printf("%s", summary720.to_string().c_str());
  return 0;
}
