// Figure 10: network usage, normalised against NAS, per evaluation video.
// dcSR streams the same CRF-51 video but replaces the one big model download
// with a handful of micro models fetched on demand (and cached per
// Algorithm 1); the paper reports ~25% average savings.
//
// Two views are printed:
//   1. Simulation scale — real byte counts from this repo's encoder and
//      model serialiser. Our videos are 45 s at 96x64, so model bytes weigh
//      more against video bytes than in the paper's 12-minute streams and
//      the relative saving comes out larger.
//   2. Sensitivity — dcSR's saving as a function of the video:big-model
//      byte ratio, holding the measured model-download behaviour fixed.
//      The paper's ~25% saving corresponds to the ratio of its testbed.
//
// Also prints the cache and split ablations (cache on/off, variable vs
// fixed segmentation).

#include <cstdio>

#include "bench/common.hpp"
#include "cluster/global_kmeans.hpp"
#include "cluster/silhouette.hpp"
#include "features/extractor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::bench;

namespace {

// Clusters a video's segments exactly like the server pipeline but without
// training any SR models (Fig. 10 needs labels and byte counts only).
std::vector<int> cluster_labels(const VideoSource& video,
                                const std::vector<codec::SegmentPlan>& segments,
                                int k_max, Rng& rng) {
  std::vector<FrameRGB> reps;
  for (const auto& plan : segments) reps.push_back(video.frame(plan.first_frame));
  features::Vae::Config vcfg{.input_size = 16, .latent_dim = 6,
                             .base_channels = 4, .hidden = 48};
  const auto vae = features::train_vae(
      features::make_thumbnails(reps, vcfg.input_size), vcfg, 12, rng);
  const auto feats = features::extract_features(*vae, reps);
  const int k_cap = std::min<int>(k_max, static_cast<int>(feats.size()) - 1);
  if (k_cap < 2) return std::vector<int>(segments.size(), 0);
  const auto curve = cluster::silhouette_sweep(feats, k_cap);
  const int k = 2 + static_cast<int>(argmax(curve));
  return cluster::global_kmeans(feats, k).assignment;
}

}  // namespace

int main() {
  const auto videos = evaluation_videos();
  codec::CodecConfig ccfg;
  ccfg.crf = 51;
  ccfg.intra_period = 10;

  // Model sizes from the quality benches' configurations.
  const core::ServerConfig scfg = quality_server_config();
  const std::uint64_t big_bytes = sr::edsr_model_bytes(scfg.big);
  const std::uint64_t micro_bytes = sr::edsr_model_bytes(scfg.micro);

  Table t({"video", "genre", "video KB", "k", "NAS/NEMO", "dcSR",
           "dcSR no-cache", "LOW"});
  std::vector<double> dcsr_model_fractions;  // model bytes / big-model bytes
  std::vector<double> savings_sim;

  for (std::size_t v = 0; v < videos.size(); ++v) {
    const auto& video = *videos[v];
    const auto segments = split::variable_segments(video);
    const auto encoded = codec::Encoder(ccfg).encode(video, segments);
    Rng rng(40 + v);
    const auto labels = cluster_labels(video, segments, 8, rng);
    int k = 0;
    for (const int l : labels) k = std::max(k, l + 1);

    const auto dcsr_manifest = stream::make_manifest(
        encoded, labels,
        std::vector<std::uint64_t>(static_cast<std::size_t>(k), micro_bytes));
    const auto nas_manifest = stream::make_single_model_manifest(encoded, big_bytes);

    const auto r_dcsr = stream::simulate_session(dcsr_manifest);
    stream::SessionConfig no_cache;
    no_cache.enable_model_cache = false;
    const auto r_dcsr_nc = stream::simulate_session(dcsr_manifest, no_cache);
    const auto r_nas = stream::simulate_session(nas_manifest);

    const double nas_total = static_cast<double>(r_nas.total_bytes());
    savings_sim.push_back(1.0 - r_dcsr.total_bytes() / nas_total);
    dcsr_model_fractions.push_back(static_cast<double>(r_dcsr.model_bytes) /
                                   static_cast<double>(big_bytes));
    t.add_row({std::to_string(v + 1), video.name(),
               fmt(r_dcsr.video_bytes / 1e3, 1), std::to_string(k), "1.00",
               fmt(r_dcsr.total_bytes() / nas_total, 2),
               fmt(r_dcsr_nc.total_bytes() / nas_total, 2),
               fmt(static_cast<double>(r_nas.video_bytes) / nas_total, 2)});
  }

  std::printf("Fig. 10 (simulation scale): network usage normalised to NAS\n\n%s\n",
              t.to_string().c_str());
  std::printf("mean dcSR saving vs NAS/NEMO at simulation scale: %.0f%%\n",
              100.0 * mean(savings_sim));
  std::printf("(our 45 s / 96x64 streams carry far fewer video bytes than the\n"
              " paper's 12-minute videos, so the fixed model bytes weigh more)\n\n");

  // ---- Sensitivity: saving vs video:model byte ratio ----------------------
  // saving = (B - M) / (V + B) with B = big model, M = mean dcSR model
  // download (measured above), V = video bytes expressed as a multiple of B.
  const double m_frac = mean(dcsr_model_fractions);  // M / B, measured
  std::printf("dcSR saving vs the video:big-model byte ratio (measured mean\n"
              "model download = %.2f x big model):\n\n", m_frac);
  Table sens({"video bytes / big model", "dcSR saving"});
  for (const double ratio : {0.5, 1.0, 2.0, 3.0, 4.0, 8.0}) {
    const double saving = (1.0 - m_frac) / (ratio + 1.0);
    sens.add_row({fmt(ratio, 1) + "x", fmt(100.0 * saving, 0) + "%"});
  }
  std::printf("%s", sens.to_string().c_str());
  std::printf("\n(the paper's ~25%% saving corresponds to video bytes ~2x the\n"
              " big model — about right for a 12-min CRF-51 stream vs a 10+ MB\n"
              " TensorFlow model)\n\n");

  // ---- Split ablation: variable vs fixed segmentation ---------------------
  std::printf("ablation: variable (shot-based) vs fixed 2s segmentation, video 1\n");
  const auto& video = *videos[0];
  const auto var_segments = split::variable_segments(video);
  const auto fixed = split::fixed_segments(video.frame_count(),
                                           static_cast<int>(2 * kFps));
  const auto var_encoded = codec::Encoder(ccfg).encode(video, var_segments);
  const auto fixed_encoded = codec::Encoder(ccfg).encode(video, fixed);
  std::printf("  variable: %3zu segments, %8.1f KB video payload\n",
              var_segments.size(), var_encoded.size_bytes() / 1e3);
  std::printf("  fixed-2s: %3zu segments, %8.1f KB video payload\n",
              fixed.size(), fixed_encoded.size_bytes() / 1e3);
  std::printf("(more segments = more I frames = more bits for the same quality)\n");
  return 0;
}
