// Figure 9: quality comparison — PSNR (a) and SSIM (b) of dcSR, NAS, NEMO
// and the LOW (un-enhanced CRF-51) stream over the six evaluation videos.
//
// The paper's expected shape: dcSR tracks NEMO closely, both within ~1 dB
// PSNR and ~0.05 SSIM of NAS, and all three clearly above LOW. Absolute
// gains here are smaller than the paper's (its GPU training runs orders of
// magnitude more optimisation steps) but the ordering is the result.
//
// This is the heaviest bench: it trains every micro model and the big
// baseline model for all six videos (several minutes of CPU time).

#include <cstdio>

#include "bench/common.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::bench;

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // live progress when redirected
  const auto videos = evaluation_videos();
  const core::ServerConfig scfg = quality_server_config();
  const core::BaselineConfig bcfg = quality_baseline_config();

  Table psnr_table({"video", "genre", "LOW", "dcSR", "NEMO", "NAS"});
  Table ssim_table({"video", "genre", "LOW", "dcSR", "NEMO", "NAS"});

  for (std::size_t v = 0; v < videos.size(); ++v) {
    const auto& video = *videos[v];
    std::printf("[video %zu/%zu: %s] server pipeline...\n", v + 1, videos.size(),
                video.name().c_str());
    const core::ServerResult server = core::run_server_pipeline(video, scfg);
    std::printf("  %zu segments -> %d micro models; training big baseline...\n",
                server.segments.size(), server.k);
    const core::BaselineResult big =
        core::train_big_model(video, server.encoded, bcfg);
    std::printf("  micro training FLOPs %.1f G vs big %.1f G (%.1fx less)\n",
                server.train_flops / 1e9, big.train_flops / 1e9,
                static_cast<double>(big.train_flops) /
                    static_cast<double>(server.train_flops));

    core::PlaybackOptions opts;
    opts.ssim_stride = 10;
    opts.nas_eval_stride = 10;
    const auto low = core::play_low(server.encoded, video, opts);
    const auto dcsr = core::play_dcsr(server.encoded, server.labels,
                                      server.micro_models, video, opts);
    const auto nemo = core::play_nemo(server.encoded, *big.model, video, opts);
    const auto nas = core::play_nas(server.encoded, *big.model, video, opts);

    const std::string idx = std::to_string(v + 1);
    psnr_table.add_row({idx, video.name(), fmt(low.mean_psnr, 2),
                        fmt(dcsr.mean_psnr, 2), fmt(nemo.mean_psnr, 2),
                        fmt(nas.mean_psnr, 2)});
    ssim_table.add_row({idx, video.name(), fmt(low.mean_ssim, 4),
                        fmt(dcsr.mean_ssim, 4), fmt(nemo.mean_ssim, 4),
                        fmt(nas.mean_ssim, 4)});
    std::printf("  PSNR: LOW %.2f  dcSR %.2f  NEMO %.2f  NAS %.2f\n\n",
                low.mean_psnr, dcsr.mean_psnr, nemo.mean_psnr, nas.mean_psnr);
  }

  std::printf("Fig. 9(a): PSNR (dB) per video\n\n%s\n", psnr_table.to_string().c_str());
  std::printf("Fig. 9(b): SSIM per video\n\n%s\n", ssim_table.to_string().c_str());
  std::printf("(paper: dcSR ~= NEMO, both within 1 dB / 0.05 SSIM of NAS, all > LOW)\n");
  return 0;
}
