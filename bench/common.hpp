#pragma once

// Shared setup for the experiment-reproduction benches: the six-genre video
// suite standing in for the paper's "6 representative videos from different
// genres from YouTube" (§4), and the standard model/training configurations
// used across figures. Sizes are scaled down from the paper's testbed (12-min
// 720p-4K videos, GPU training) to what a CPU-only reproduction can run in
// minutes; EXPERIMENTS.md documents the scaling.

#include <memory>
#include <vector>

#include "core/dcsr.hpp"

namespace dcsr::bench {

/// Simulation scale for quality experiments.
inline constexpr int kWidth = 96;
inline constexpr int kHeight = 64;
inline constexpr double kFps = 10.0;
inline constexpr double kDurationSeconds = 45.0;

/// The six evaluation videos (index 1..6 in the paper's Figs. 9-10).
inline std::vector<std::unique_ptr<SyntheticVideo>> evaluation_videos(
    double duration_seconds = kDurationSeconds) {
  std::vector<std::unique_ptr<SyntheticVideo>> out;
  int seed = 100;
  for (const Genre g : all_genres())
    out.push_back(make_genre_video(g, static_cast<std::uint64_t>(seed++), kWidth,
                                   kHeight, duration_seconds, kFps));
  return out;
}

/// Server configuration for the quality benches: micro models sized like the
/// paper's dcSR configurations (16 filters) but shallower, training budgets
/// chosen for CPU minutes.
inline core::ServerConfig quality_server_config() {
  core::ServerConfig cfg;
  cfg.codec.crf = 51;
  cfg.codec.intra_period = 10;
  cfg.vae = {.input_size = 16, .latent_dim = 6, .base_channels = 4, .hidden = 48};
  cfg.vae_epochs = 12;
  cfg.micro = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
  cfg.big = {.n_filters = 16, .n_resblocks = 4, .scale = 1};
  cfg.k_max = 8;
  cfg.training = {.iterations = 500, .patch_size = 24, .batch_size = 4, .lr = 3e-3};
  cfg.seed = 1;
  return cfg;
}

/// Matching big-model (NAS/NEMO) training configuration. The big model gets
/// ~3.6x the optimisation steps of a micro model AND a ~6x larger network,
/// yet must serve the whole video — the generalisation burden of §2.2.
inline core::BaselineConfig quality_baseline_config() {
  core::BaselineConfig cfg;
  cfg.big = quality_server_config().big;
  cfg.training_frames = 24;
  cfg.training = {.iterations = 1800, .patch_size = 24, .batch_size = 4, .lr = 3e-3};
  cfg.seed = 7;
  return cfg;
}


}  // namespace dcsr::bench
