// Figure 8(a-c): inference rate of dcSR vs NAS and NEMO on the Jetson Xavier
// NX (mobile-grade device) at 720p / 1080p / 4K, as a function of the number
// of SR inferences per segment.
//
// Methods (as in §4 of the paper):
//   NAS    — big model, SR on every frame of the segment.
//   NEMO   — big model, SR on I frames only (simplified NEMO).
//   dcSR-1/2/3 — micro models of 4/12/16 ResBlocks x 16 filters.
// Segments are 4 s at 30 fps (120 frames); FPS counts decode + inference
// time, and the 30 FPS line is the real-time bar.

#include <cstdio>

#include "device/latency.hpp"
#include "sr/model_zoo.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::device;

int main() {
  const DeviceProfile jetson = jetson_xavier_nx();
  constexpr int kSegFrames = 120;

  struct Method {
    const char* name;
    sr::EdsrConfig cfg;
    bool every_frame;
  };
  const std::vector<Method> methods{
      {"NAS", sr::big_model_config(), true},
      {"NEMO", sr::big_model_config(), false},
      {"dcSR-1", sr::dcsr1_config(), false},
      {"dcSR-2", sr::dcsr2_config(), false},
      {"dcSR-3", sr::dcsr3_config(), false},
  };

  for (const Resolution& res : {res_720p(), res_1080p(), res_4k()}) {
    std::printf("Fig. 8 (%s): FPS vs inferences per segment on %s "
                "(segment = %d frames; * = >= 30 FPS)\n\n",
                res.name.c_str(), jetson.name.c_str(), kSegFrames);
    Table t({"method", "n=1", "n=2", "n=3", "n=4", "n=5"});
    for (const auto& m : methods) {
      std::vector<std::string> row{m.name};
      for (int n = 1; n <= 5; ++n) {
        const int inferences = m.every_frame ? kSegFrames : n;
        const auto r = segment_fps(jetson, m.cfg, res, kSegFrames, inferences);
        row.push_back(r.oom ? "OOM" : fmt(r.fps, 1) + (r.fps >= 30.0 ? "*" : ""));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf("paper's takeaways reproduced:\n");
  std::printf("  - dcSR-1 meets 30 FPS at every resolution with 1 inference/segment\n");
  std::printf("  - NEMO ~30 FPS only at 720p with few inferences, low at 1080p\n");
  std::printf("  - NAS under 1 FPS everywhere; NAS/NEMO OOM at 4K on the Jetson\n");
  std::printf("  - higher dcSR configs still achieve at least ~5 FPS at 4K\n");
  return 0;
}
