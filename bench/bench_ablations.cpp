// Ablations of dcSR's design choices (DESIGN.md §6) that are not already
// covered inside the figure benches:
//
//   1. Intra-refresh period vs quality drift: the client enhances I frames
//      only, so enhancement decays along P-chains; refresh I frames re-apply
//      it ("multiple I frames in a segment ... to avoid the quality drift").
//   2. The Appendix A.1 minimum-working-model search, printing every probed
//      configuration and the Eq. 3 bound it implies.

#include <cstdio>

#include "bench/common.hpp"
#include "image/metrics.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::bench;

int main() {
  const auto video =
      make_genre_video(Genre::kNews, 201, kWidth, kHeight, 35.0, kFps);

  // ---- Ablation 1: intra-refresh period ----------------------------------
  std::printf("ablation 1: quality drift vs intra-refresh period (video: %s)\n\n",
              video->name().c_str());
  Table drift({"intra period", "I frames", "LOW PSNR", "dcSR PSNR", "gain (dB)",
               "video KB"});
  for (const int period : {0, 20, 10, 5}) {
    core::ServerConfig cfg = quality_server_config();
    cfg.codec.intra_period = period;
    cfg.k_max = 4;
    cfg.training.iterations = 300;
    const core::ServerResult server = core::run_server_pipeline(*video, cfg);

    int i_frames = 0;
    for (const auto& seg : server.encoded.segments)
      for (const auto& f : seg.frames)
        if (f.type == codec::FrameType::kI) ++i_frames;

    core::PlaybackOptions opts;
    opts.ssim_stride = 1000;  // PSNR-only pass
    const auto low = core::play_low(server.encoded, *video, opts);
    const auto dcsr = core::play_dcsr(server.encoded, server.labels,
                                      server.micro_models, *video, opts);
    drift.add_row({period == 0 ? "none" : std::to_string(period),
                   std::to_string(i_frames), fmt(low.mean_psnr, 2),
                   fmt(dcsr.mean_psnr, 2),
                   fmt(dcsr.mean_psnr - low.mean_psnr, 2),
                   fmt(server.encoded.size_bytes() / 1e3, 1)});
  }
  std::printf("%s\n", drift.to_string().c_str());
  std::printf("(shorter refresh -> more inferences and more I-frame bits, but\n"
              " the enhancement is re-applied before it drifts away)\n\n");

  // ---- Ablation 2: minimum working model (Appendix A.1) -------------------
  std::printf("ablation 2: minimum-working-model search (Appendix A.1)\n\n");
  codec::CodecConfig ccfg;
  ccfg.crf = 51;
  const auto segments = split::variable_segments(*video);
  const auto encoded = codec::Encoder(ccfg).encode(*video, segments);
  const auto iframes = core::collect_iframe_pairs(*video, encoded, segments);
  std::vector<sr::TrainSample> pairs;
  for (const auto& seg : iframes)
    for (const auto& p : seg.pairs) pairs.push_back(p);

  const sr::EdsrConfig big{.n_filters = 16, .n_resblocks = 4, .scale = 1};
  sr::TrainOptions opts;
  opts.iterations = 250;
  opts.patch_size = 24;
  opts.batch_size = 4;
  opts.lr = 3e-3;

  // Train the big reference on the same I frames to get its quality bar
  // (with a 4x larger budget — big models need it; the probes then ask how
  // small a model can match the bar on a micro budget).
  Rng rng(5);
  sr::Edsr big_model(big, rng);
  sr::TrainOptions big_opts = opts;
  big_opts.iterations = 1000;
  sr::train_sr_model(big_model, pairs, big_opts, rng);
  const double big_psnr = sr::evaluate_psnr(big_model, pairs);
  std::printf("big model %s: %.2f dB on the video's I frames\n\n",
              sr::config_name(big).c_str(), big_psnr);

  const sr::MinModelResult res = sr::find_minimum_working_model(
      pairs, big, big_psnr, /*tolerance_db=*/0.5, opts, rng);
  Table probes({"config", "size (MB)", "PSNR (dB)", "within tolerance"});
  for (const auto& p : res.probes)
    probes.add_row({sr::config_name(p.config), fmt(p.size_mb, 3),
                    fmt(p.psnr_db, 2),
                    p.psnr_db >= big_psnr - 0.5 ? "yes" : "no"});
  std::printf("%s\n", probes.to_string().c_str());
  std::printf("minimum working model: %s -> Eq. 3 allows K up to %d\n\n",
              sr::config_name(res.config).c_str(),
              sr::max_micro_models(big, res.config));

  // ---- Ablation 3: classical deblocking vs neural enhancement -------------
  // The in-loop deblocking filter is the traditional answer to CRF-51
  // blockiness; how much of dcSR's gain could a loop filter get for free?
  std::printf("ablation 3: classical loop filter vs dcSR (CRF 51)\n\n");
  codec::CodecConfig dbcfg = ccfg;
  dbcfg.intra_period = 10;
  const auto plain = codec::Encoder(dbcfg).encode(*video, segments);
  dbcfg.deblock = true;
  const auto filtered = codec::Encoder(dbcfg).encode(*video, segments);

  core::PlaybackOptions popts;
  popts.ssim_stride = 1000;
  const double low_psnr = core::play_low(plain, *video, popts).mean_psnr;
  const double deblocked_psnr = core::play_low(filtered, *video, popts).mean_psnr;
  Table db({"pipeline", "PSNR (dB)"});
  db.add_row({"LOW (no filter)", fmt(low_psnr, 2)});
  db.add_row({"LOW + in-loop deblocking", fmt(deblocked_psnr, 2)});
  std::printf("%s", db.to_string().c_str());
  std::printf("(compare with the dcSR rows of ablation 1: the neural micro\n"
              " models sit on top of whatever the classical filter recovers)\n\n");

  // ---- Ablation 4: NEMO-style anchors vs intra refresh ---------------------
  // Both fight enhancement drift; refresh I frames cost *bits*, anchor
  // inferences cost *compute*. Same video, no intra refresh, anchors at
  // decreasing periods.
  std::printf("ablation 4: anchor frames — drift control with compute, not bits\n\n");
  core::ServerConfig acfg = quality_server_config();
  acfg.codec.intra_period = 0;
  acfg.k_max = 4;
  acfg.training.iterations = 300;
  const core::ServerResult aserver = core::run_server_pipeline(*video, acfg);
  const double alow = core::play_low(aserver.encoded, *video, popts).mean_psnr;
  Table at({"anchor period", "inferences", "dcSR PSNR", "gain vs LOW"});
  for (const int period : {0, 15, 8, 4}) {
    const auto r = core::play_dcsr_anchors(aserver.encoded, aserver.labels,
                                           aserver.micro_models, *video, period,
                                           popts);
    at.add_row({period == 0 ? "I only" : std::to_string(period),
                std::to_string(r.inferences), fmt(r.playback.mean_psnr, 2),
                fmt(r.playback.mean_psnr - alow, 2)});
  }
  std::printf("%s", at.to_string().c_str());
  std::printf("(video bytes identical in every row: %.1f KB)\n",
              aserver.encoded.size_bytes() / 1e3);
  return 0;
}
