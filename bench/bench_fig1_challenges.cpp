// Figure 1: "Challenges of realizing SR in practice".
//
//  (a) Inference rate of a big (NAS-like) model vs video resolution — below
//      15 FPS everywhere, far below the 30 FPS playback bar.
//  (b) Model size vs resolution — per-resolution big models grow with the
//      target resolution.
//  (c) Quality-variance CDF — one big model trained on a whole (long) video
//      cannot serve all of it uniformly: per-frame PSNR spreads over several
//      dB (the paper observes ~5 dB on a 12-minute video).

#include <cstdio>

#include "bench/common.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::bench;

namespace {

// Per-resolution big-model configs: higher-resolution content warrants wider
// and deeper models (this mirrors how NAS sizes its networks per quality).
sr::EdsrConfig big_for(const device::Resolution& res) {
  if (res.name == "720p") return {.n_filters = 32, .n_resblocks = 12, .scale = 1};
  if (res.name == "1080p") return {.n_filters = 48, .n_resblocks = 16, .scale = 1};
  return {.n_filters = 64, .n_resblocks = 20, .scale = 1};
}

}  // namespace

int main() {
  // ---- (a) inference rate and (b) model size vs resolution ---------------
  std::printf("Fig. 1(a,b): big-model inference rate and size vs resolution\n");
  std::printf("(device model: desktop RTX 2070 profile)\n\n");
  const device::DeviceProfile desktop = device::desktop_rtx2070();
  Table ab({"resolution", "model", "inference FPS", "model size (MB)"});
  for (const device::Resolution& res :
       {device::res_720p(), device::res_1080p(), device::res_4k()}) {
    const sr::EdsrConfig cfg = big_for(res);
    const double fps = 1.0 / device::inference_seconds(desktop, cfg, res);
    ab.add_row({res.name, sr::config_name(cfg), fmt(fps, 2),
                fmt(sr::model_size_mb(cfg), 2)});
  }
  std::printf("%s", ab.to_string().c_str());
  std::printf("(paper: <15 FPS at every resolution; size grows with resolution)\n\n");

  // ---- (c) per-frame quality variance of one whole-video model -----------
  std::printf("Fig. 1(c): PSNR CDF of a single big model over a long video\n\n");
  const auto video =
      make_genre_video(Genre::kMusicVideo, 31, kWidth, kHeight, 90.0, kFps);
  const auto segments = split::variable_segments(*video);
  codec::CodecConfig ccfg;
  ccfg.crf = 51;
  ccfg.intra_period = 10;
  const auto encoded = codec::Encoder(ccfg).encode(*video, segments);

  core::BaselineConfig bcfg = quality_baseline_config();
  bcfg.training_frames = 28;
  const core::BaselineResult big = core::train_big_model(*video, encoded, bcfg);

  // Per-frame PSNR of model(decoded) vs original on a frame sample.
  const auto pairs = core::collect_whole_video_pairs(*video, encoded, 40);
  std::vector<double> psnrs;
  for (const auto& p : pairs) psnrs.push_back(psnr(big.model->enhance(p.lo), p.hi));

  Table cdf({"PSNR (dB)", "CDF"});
  const double lo = min_of(psnrs), hi = max_of(psnrs);
  std::vector<double> probes;
  for (int i = 0; i <= 10; ++i) probes.push_back(lo + (hi - lo) * i / 10.0);
  const auto cdf_vals = empirical_cdf(psnrs, probes);
  for (std::size_t i = 0; i < probes.size(); ++i)
    cdf.add_row({fmt(probes[i], 2), fmt(cdf_vals[i], 2)});
  std::printf("%s", cdf.to_string().c_str());
  std::printf("\nper-frame PSNR spread: %.2f dB (p5 %.2f .. p95 %.2f), stddev %.2f\n",
              hi - lo, percentile(psnrs, 5), percentile(psnrs, 95), stddev(psnrs));
  std::printf("(paper: ~5 dB spread when one model serves a whole 12-min video)\n");
  return 0;
}
