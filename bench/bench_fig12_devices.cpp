// Figure 12: inference rate on the laptop (GTX 1060) and desktop (RTX 2070)
// at 4K, vs the number of inferences per segment. dcSR meets the 30 FPS bar
// regardless of device and inference count; NEMO only under few inferences;
// NAS never.

#include <cstdio>

#include "device/latency.hpp"
#include "sr/model_zoo.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::device;

int main() {
  constexpr int kSegFrames = 120;  // 4 s at 30 fps
  const Resolution res = res_4k();

  struct Method {
    const char* name;
    sr::EdsrConfig cfg;
    bool every_frame;
  };
  const std::vector<Method> methods{
      {"NAS", sr::big_model_config(), true},
      {"NEMO", sr::big_model_config(), false},
      {"dcSR-1", sr::dcsr1_config(), false},
      {"dcSR-2", sr::dcsr2_config(), false},
      {"dcSR-3", sr::dcsr3_config(), false},
  };

  for (const DeviceProfile& dev : {laptop_gtx1060(), desktop_rtx2070()}) {
    std::printf("Fig. 12 (%s): 4K FPS vs inferences per segment "
                "(* = >= 30 FPS)\n\n", dev.name.c_str());
    Table t({"method", "n=2", "n=4", "n=6", "n=8", "n=10"});
    for (const auto& m : methods) {
      std::vector<std::string> row{m.name};
      for (int n = 2; n <= 10; n += 2) {
        const int inferences = m.every_frame ? kSegFrames : n;
        const auto r = segment_fps(dev, m.cfg, res, kSegFrames, inferences);
        row.push_back(r.oom ? "OOM" : fmt(r.fps, 1) + (r.fps >= 30.0 ? "*" : ""));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("(paper: dcSR >= 30 FPS on both devices at every inference count;\n"
              " NEMO only under few inferences; NAS far below the requirement)\n");
  return 0;
}
