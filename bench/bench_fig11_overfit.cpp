// Figure 11 (Appendix A.1): "Training Loss over Different Training Data
// Size" — a micro model with the paper's 8 filters / 8 ResBlocks, started
// from identical initial weights, trained on growing datasets. Training
// loss rises with dataset size: the less data a micro model must memorise,
// the better it fits — the quantitative basis of the data-centric argument.
//
// (Training and test data are identical in dcSR, so training loss *is* the
// quality the model will deliver.)

#include <cstdio>

#include "bench/common.hpp"
#include "codec/bits.hpp"
#include "codec/frame_coding.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"
#include "nn/serialize.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::bench;

int main() {
  // A pool of 150 distinct degraded/original frame pairs drawn from a long
  // documentary-style video (the most visually diverse genre).
  const auto video =
      make_genre_video(Genre::kDocumentary, 71, kWidth, kHeight, 150.0, kFps);
  const codec::Quantizer q(51);
  std::vector<sr::TrainSample> pool;
  for (int i = 0; i < 150; ++i) {
    sr::TrainSample p;
    p.hi = video->frame(i * video->frame_count() / 150);
    codec::BitWriter bw;
    const FrameYUV recon = codec::encode_intra_frame(rgb_to_yuv420(p.hi), q, bw);
    p.lo = yuv420_to_rgb(recon);
    pool.push_back(std::move(p));
  }

  // Reference model: every run copies these exact initial weights, isolating
  // the effect of data size from initialisation (as the paper does).
  const sr::EdsrConfig cfg{.n_filters = 8, .n_resblocks = 8, .scale = 1};
  Rng init_rng(5);
  sr::Edsr reference(cfg, init_rng);

  sr::TrainOptions opts;
  opts.iterations = 500;
  opts.patch_size = 24;
  opts.batch_size = 4;
  opts.lr = 3e-3;

  std::printf("Fig. 11: training loss (MSE) vs training data size "
              "(8 filters / 8 ResBlocks, identical init)\n\n");
  Table t({"training images", "final train MSE", "train PSNR (dB)"});
  double prev_loss = 0.0;
  for (const int n : {10, 50, 100, 150}) {
    Rng rng(99);  // same sampling stream per run
    sr::Edsr model(cfg, rng);
    nn::copy_params(reference, model);
    const std::vector<sr::TrainSample> data(pool.begin(), pool.begin() + n);
    const sr::TrainStats stats = sr::train_sr_model(model, data, opts, rng);
    t.add_row({std::to_string(n), fmt(stats.final_loss, 6),
               fmt(sr::evaluate_psnr(model, data), 2)});
    prev_loss = stats.final_loss;
  }
  (void)prev_loss;
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(paper: loss increases monotonically from 10 to 150 images —\n"
              " smaller per-model datasets are easier to memorise)\n");
  return 0;
}
