// Extension: true super-resolution streaming (NAS's actual design) vs dcSR's
// same-resolution quality enhancement, at matched byte budgets.
//
// Two ways to spend a constrained bitrate on the same content:
//   A. dcSR mode  — full resolution, crushed quantiser (CRF 51), micro
//      models restore quality in-loop at the decode resolution (scale 1).
//   B. SR mode    — half resolution at a gentler quantiser chosen by rate
//      control to match A's bytes, a scale-2 EDSR upscales out-of-loop.
//
// The synthetic generator renders the *same scenes* at any resolution, so
// the half-res stream really is the same content — the comparison the
// paper's authors could not run without re-encoding their sources.

#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "codec/rate_control.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "image/resize.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::bench;

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const Genre genre = Genre::kNews;
  const std::uint64_t seed = 77;
  const double seconds = 30.0;

  const auto full = make_genre_video(genre, seed, kWidth, kHeight, seconds, kFps);
  const auto half =
      make_genre_video(genre, seed, kWidth / 2, kHeight / 2, seconds, kFps);

  // ---- A: dcSR mode ---------------------------------------------------------
  core::ServerConfig scfg = quality_server_config();
  scfg.training.iterations = 500;
  const core::ServerResult server = core::run_server_pipeline(*full, scfg);
  const auto dcsr_quality = core::play_dcsr(server.encoded, server.labels,
                                            server.micro_models, *full);
  const double dcsr_bytes = static_cast<double>(server.encoded.size_bytes());
  std::printf("A: dcSR mode — %.1f KB at CRF 51, %d micro models\n",
              dcsr_bytes / 1e3, server.k);

  // ---- B: SR mode -----------------------------------------------------------
  // Rate-control the half-res stream to the same byte budget.
  const auto half_segments = split::variable_segments(*half);
  codec::CodecConfig base;
  base.intra_period = 10;
  const double target_bps =
      dcsr_bytes * 8.0 / half->duration_seconds();
  const auto rc =
      codec::encode_with_target_bitrate(*half, half_segments, base, target_bps);
  std::printf("B: SR mode  — %.1f KB at CRF %d..%d (half resolution)\n",
              rc.video.size_bytes() / 1e3,
              *std::min_element(rc.segment_crf.begin(), rc.segment_crf.end()),
              *std::max_element(rc.segment_crf.begin(), rc.segment_crf.end()));

  // Train a scale-2 model on (decoded half-res, original full-res) pairs.
  const auto half_pairs = core::collect_whole_video_pairs(*half, rc.video, 16);
  std::vector<sr::TrainSample> sr_pairs;
  for (std::size_t i = 0; i < half_pairs.size(); ++i) {
    sr::TrainSample p;
    p.lo = half_pairs[i].lo;
    // Ground truth: the full-resolution render of the same frame. The decoded
    // half-res stream and the full video share frame indices (same fps).
    const int stride = std::max(1, rc.video.frame_count() / 16);
    p.hi = full->frame(static_cast<int>(i) * stride);
    sr_pairs.push_back(std::move(p));
  }
  Rng rng(5);
  sr::Edsr up_model({.n_filters = 16, .n_resblocks = 4, .scale = 2}, rng);
  sr::TrainOptions topts;
  topts.iterations = 800;
  topts.patch_size = 16;  // lo-res patch; hi patch is 32
  topts.batch_size = 4;
  topts.lr = 3e-3;
  sr::train_sr_model(up_model, sr_pairs, topts, rng);

  // Evaluate: decode half stream, upscale every sampled frame, compare.
  codec::Decoder dec(rc.video.width, rc.video.height, rc.video.crf);
  const auto half_frames = dec.decode_video(rc.video);
  double sr_psnr = 0.0, bicubic_psnr = 0.0;
  int n = 0;
  for (int i = 0; i < full->frame_count(); i += 7) {
    const FrameRGB lo = yuv420_to_rgb(half_frames[static_cast<std::size_t>(i)]);
    const FrameRGB hi = full->frame(i);
    sr_psnr += psnr(up_model.enhance(lo), hi);
    bicubic_psnr += psnr(resize(lo, kWidth, kHeight), hi);
    ++n;
  }
  sr_psnr /= n;
  bicubic_psnr /= n;

  std::printf("\nsame-bytes comparison (%d frames sampled):\n\n", n);
  Table t({"pipeline", "KB", "PSNR (dB)"});
  t.add_row({"A  dcSR: full-res CRF51 + in-loop micro models",
             fmt(dcsr_bytes / 1e3, 1), fmt(dcsr_quality.mean_psnr, 2)});
  t.add_row({"B  SR: half-res + x2 EDSR upscale", fmt(rc.video.size_bytes() / 1e3, 1),
             fmt(sr_psnr, 2)});
  t.add_row({"B' half-res + bicubic upscale (no model)",
             fmt(rc.video.size_bytes() / 1e3, 1), fmt(bicubic_psnr, 2)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(the x2 model must beat bicubic; whether A or B wins depends on\n"
              " content — detail-rich frames favour spending bits on resolution)\n");
  return 0;
}
