// Streaming-session walkthrough: the client side of dcSR seen from the
// network. Reproduces the Fig. 7 cache walkthrough on a real manifest, then
// compares bandwidth against the single-big-model (NAS/NEMO-style) delivery
// — including the early-abandonment case where dcSR's pay-as-you-go model
// delivery shines.

#include <cstdio>

#include "core/dcsr.hpp"
#include "util/table.hpp"

using namespace dcsr;

int main() {
  // News content: heavy scene recurrence, so the model cache gets real hits.
  const auto video = make_genre_video(Genre::kNews, /*seed=*/5,
                                      /*width=*/96, /*height=*/64,
                                      /*duration=*/60.0, /*fps=*/10.0);

  core::ServerConfig cfg;
  cfg.vae = {.input_size = 16, .latent_dim = 6, .base_channels = 4, .hidden = 48};
  cfg.vae_epochs = 12;
  cfg.micro = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
  cfg.k_max = 6;
  // This example is about bytes, not quality: a token training budget.
  cfg.training = {.iterations = 20, .patch_size = 16, .batch_size = 2, .lr = 3e-3};

  const core::ServerResult server = core::run_server_pipeline(*video, cfg);
  const stream::Manifest dcsr_manifest = server.manifest();
  const stream::Manifest nas_manifest = stream::make_single_model_manifest(
      server.encoded, sr::edsr_model_bytes(cfg.big));

  // ---- The Fig. 7 walkthrough on real labels -----------------------------
  std::printf("== per-segment downloads (Algorithm 1) ==\n");
  const stream::SessionResult session = stream::simulate_session(dcsr_manifest);
  Table walk({"segment", "model label", "video KB", "model KB", "cache"});
  for (const auto& log : session.log) {
    walk.add_row({std::to_string(log.segment_index),
                  std::to_string(dcsr_manifest.segments[static_cast<std::size_t>(log.segment_index)].model_label),
                  fmt(log.video_bytes / 1e3, 1), fmt(log.model_bytes / 1e3, 1),
                  log.cache_hit ? "hit" : (log.model_bytes ? "miss" : "-")});
  }
  std::printf("%s\n", walk.to_string().c_str());
  std::printf("downloads: %d, cache hits: %d (models in cache at end: %d)\n\n",
              session.model_downloads, session.cache_hits, server.k);

  // ---- Full-watch bandwidth comparison -----------------------------------
  const stream::SessionResult nas_session = stream::simulate_session(nas_manifest);
  std::printf("== full watch: bytes on the wire ==\n");
  Table totals({"method", "video KB", "model KB", "total KB", "vs NAS"});
  auto add = [&](const char* name, const stream::SessionResult& r) {
    totals.add_row({name, fmt(r.video_bytes / 1e3, 1), fmt(r.model_bytes / 1e3, 1),
                    fmt(r.total_bytes() / 1e3, 1),
                    fmt(100.0 * r.total_bytes() / nas_session.total_bytes(), 1) + "%"});
  };
  add("NAS/NEMO (one big model)", nas_session);
  add("dcSR (micro models + cache)", session);
  std::printf("%s\n", totals.to_string().c_str());

  // ---- Early abandonment --------------------------------------------------
  std::printf("== user abandons after N segments ==\n");
  Table abandon({"watched segments", "dcSR model KB", "NAS model KB"});
  for (int n : {1, 2, 4, static_cast<int>(dcsr_manifest.segments.size())}) {
    stream::SessionConfig watch;
    watch.watch_segments = n;
    abandon.add_row({std::to_string(n),
                     fmt(stream::simulate_session(dcsr_manifest, watch).model_bytes / 1e3, 1),
                     fmt(stream::simulate_session(nas_manifest, watch).model_bytes / 1e3, 1)});
  }
  std::printf("%s", abandon.to_string().c_str());
  std::printf("\n(the single big model is paid in full with the first segment;\n"
              " dcSR only fetches what the watched segments actually need)\n");
  return 0;
}
