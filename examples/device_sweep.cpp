// Device sweep: where does each SR method run in real time, and what does it
// cost in power? Walks the analytic device models (Jetson / laptop /
// desktop) across resolutions and model configurations — the planning view
// a deployment engineer would want before shipping dcSR to a device class.

#include <cstdio>

#include "core/dcsr.hpp"
#include "util/table.hpp"

using namespace dcsr;
using namespace dcsr::device;

int main() {
  const std::vector<DeviceProfile> devices{jetson_xavier_nx(), laptop_gtx1060(),
                                           desktop_rtx2070()};
  const std::vector<Resolution> resolutions{res_720p(), res_1080p(), res_4k()};

  struct Method {
    const char* name;
    sr::EdsrConfig cfg;
    int inferences;  // per 120-frame segment; -1 = every frame (NAS)
  };
  const std::vector<Method> methods{
      {"dcSR-1", sr::dcsr1_config(), 1},
      {"dcSR-3", sr::dcsr3_config(), 1},
      {"NEMO (big, I only)", sr::big_model_config(), 1},
      {"NAS (big, all)", sr::big_model_config(), -1},
  };
  constexpr int kSegFrames = 120;  // 4 s at 30 fps

  std::printf("== playback throughput (FPS over a 4 s segment; * = meets 30 FPS) ==\n\n");
  for (const auto& dev : devices) {
    std::printf("-- %s --\n", dev.name.c_str());
    Table t({"method", "720p", "1080p", "4K"});
    for (const auto& m : methods) {
      std::vector<std::string> row{m.name};
      for (const auto& res : resolutions) {
        const int n = m.inferences < 0 ? kSegFrames : m.inferences;
        const auto fps = segment_fps(dev, m.cfg, res, kSegFrames, n);
        row.push_back(fps.oom ? "OOM"
                              : fmt(fps.fps, 1) + (fps.fps >= 30.0 ? "*" : ""));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf("== model memory at 4K (activation + weights vs device budget) ==\n\n");
  Table mem({"model", "fits jetson", "fits laptop", "fits desktop"});
  for (const auto& m : methods) {
    mem.add_row({sr::config_name(m.cfg),
                 fits_memory(devices[0], m.cfg, res_4k()) ? "yes" : "no",
                 fits_memory(devices[1], m.cfg, res_4k()) ? "yes" : "no",
                 fits_memory(devices[2], m.cfg, res_4k()) ? "yes" : "no"});
  }
  std::printf("%s\n", mem.to_string().c_str());

  std::printf("== energy for 5 minutes of 1080p playback on the Jetson ==\n\n");
  const DeviceProfile jetson = jetson_xavier_nx();
  Table energy({"method", "mean W", "peak W", "total J"});
  for (const auto& m : methods) {
    PowerConfig pc;
    pc.model = m.cfg;
    pc.resolution = res_1080p();
    pc.schedule = m.inferences < 0 ? InferenceSchedule::kEveryFrame
                                   : InferenceSchedule::kPerSegment;
    pc.inferences_per_segment = std::max(1, m.inferences);
    const PowerTrace trace = simulate_power(jetson, pc, 300.0);
    energy.add_row({m.name, fmt(trace.mean_watts, 2), fmt(trace.peak_watts, 2),
                    fmt(trace.total_joules, 0)});
  }
  std::printf("%s", energy.to_string().c_str());
  return 0;
}
