// Adaptive-bitrate streaming with dcSR in the loop: encodes a 3-rung ladder,
// publishes a text playlist and a model bundle (what a CDN would store),
// then plays the stream over a bursty Markov-modelled link with a classic
// rate-based ABR and with the dcSR-aware policy the paper sketches in §4.
//
// Unlike bench_abr_extension (which trains real models to measure enhanced
// quality), this example focuses on the streaming plumbing and runs in a few
// seconds.

#include <cstdio>

#include "core/dcsr.hpp"
#include "nn/serialize.hpp"
#include "stream/abr.hpp"
#include "stream/model_bundle.hpp"
#include "stream/net_traces.hpp"
#include "stream/playlist.hpp"
#include "util/table.hpp"

using namespace dcsr;

int main() {
  const auto video = make_genre_video(Genre::kSports, 9, 96, 64, 30.0, 10.0);
  const auto segments = split::variable_segments(*video);
  std::printf("video: %s, %zu segments\n\n", video->name().c_str(), segments.size());

  // ---- Encode the ladder ----------------------------------------------------
  const int crfs[3] = {51, 40, 29};
  std::vector<stream::Rung> ladder(3);
  codec::EncodedVideo bottom;  // the CRF-51 rung dcSR enhances
  for (int r = 0; r < 3; ++r) {
    codec::CodecConfig cfg;
    cfg.crf = crfs[r];
    cfg.intra_period = 10;
    const auto encoded = codec::Encoder(cfg).encode(*video, segments);
    for (const auto& seg : encoded.segments)
      ladder[static_cast<std::size_t>(r)].segment_bytes.push_back(seg.size_bytes());
    ladder[static_cast<std::size_t>(r)].crf = crfs[r];
    // Plausible quality figures for the demo (bench_abr_extension measures
    // real ones): each rung gains ~4 dB; SR recovers ~2 dB at the bottom.
    ladder[static_cast<std::size_t>(r)].base_quality_db = 22.0 + 4.0 * r;
    ladder[static_cast<std::size_t>(r)].enhanced_quality_db =
        22.0 + 4.0 * r + 2.0 / (1 + r);
    if (r == 0) bottom = encoded;
  }

  // ---- Publish CDN artefacts: playlist + model bundle -----------------------
  Rng rng(1);
  const sr::EdsrConfig micro = {.n_filters = 4, .n_resblocks = 2, .scale = 1};
  std::vector<int> labels(segments.size());
  for (std::size_t s = 0; s < labels.size(); ++s) labels[s] = static_cast<int>(s % 3);

  stream::ModelBundle bundle;
  for (int label = 0; label < 3; ++label) {
    sr::Edsr model(micro, rng);  // untrained stand-ins; see bench for real ones
    ByteWriter w;
    nn::save_params_fp16(model, w);  // fp16: half the download per model
    bundle.add(label, w.bytes());
  }
  const stream::Manifest manifest = stream::make_manifest(
      bottom, labels,
      {bundle.payload(0).size(), bundle.payload(1).size(), bundle.payload(2).size()});

  const std::string playlist = stream::write_playlist(manifest);
  std::printf("published playlist (%zu bytes) and model bundle (%.1f KB, fp16):\n",
              playlist.size(), bundle.total_bytes() / 1e3);
  std::printf("%s\n", playlist.substr(0, 240).c_str());

  // A client would fetch + parse; prove the round trip.
  const stream::Manifest parsed = stream::parse_playlist(playlist);
  const auto session = stream::simulate_session(parsed);
  std::printf("session over parsed playlist: %d model downloads, %d cache hits\n\n",
              session.model_downloads, session.cache_hits);

  // ---- ABR over a bursty link -------------------------------------------------
  std::vector<std::uint64_t> model_bytes;
  for (const auto& log : session.log) model_bytes.push_back(log.model_bytes);

  Rng net_rng(77);
  stream::MarkovTraceConfig net;
  net.good_rate = 20000.0;  // comfortably carries the top rung when good
  net.bad_rate = 2500.0;    // just about carries the bottom rung when bad
  const auto trace = stream::markov_trace(net, 600, net_rng);

  stream::AbrConfig classic;
  stream::AbrConfig aware = classic;
  aware.dcsr_aware = true;
  aware.target_quality_db = ladder[0].enhanced_quality_db;

  const auto r_classic = stream::simulate_abr(ladder, {}, trace, classic);
  const auto r_aware = stream::simulate_abr(ladder, model_bytes, trace, aware);

  Table t({"policy", "mean rung", "delivered dB", "rebuffer s", "KB"});
  t.add_row({"classic", fmt(r_classic.mean_rung, 2), fmt(r_classic.mean_quality_db, 1),
             fmt(r_classic.rebuffer_seconds, 2), fmt(r_classic.total_bytes / 1e3, 1)});
  t.add_row({"dcSR-aware", fmt(r_aware.mean_rung, 2), fmt(r_aware.mean_quality_db, 1),
             fmt(r_aware.rebuffer_seconds, 2), fmt(r_aware.total_bytes / 1e3, 1)});
  std::printf("%s", t.to_string().c_str());
  return 0;
}
