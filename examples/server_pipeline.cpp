// Server-side pipeline inspection: runs every stage of Fig. 2 on one video
// and prints what each stage produced — the segment table from the shot
// detector, the silhouette curve that picks K, the cluster composition, and
// each micro model's training outcome on its own cluster.
//
// Useful both as an API tour and as a debugging aid when tuning the
// segmenter/VAE/clustering knobs for new content.

#include <cstdio>

#include "cluster/kmeans.hpp"
#include "core/dcsr.hpp"
#include "image/metrics.hpp"
#include "util/table.hpp"

using namespace dcsr;

int main() {
  const auto video = make_genre_video(Genre::kMusicVideo, /*seed=*/7,
                                      /*width=*/96, /*height=*/64,
                                      /*duration=*/45.0, /*fps=*/10.0);
  std::printf("video: %s, %d frames, %zu distinct scenes in the script\n\n",
              video->name().c_str(), video->frame_count(), video->scene_count());

  core::ServerConfig cfg;
  cfg.vae = {.input_size = 16, .latent_dim = 6, .base_channels = 4, .hidden = 48};
  cfg.vae_epochs = 15;
  cfg.micro = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
  cfg.k_max = 8;
  cfg.training = {.iterations = 300, .patch_size = 24, .batch_size = 4, .lr = 3e-3};

  const core::ServerResult server = core::run_server_pipeline(*video, cfg);

  // ---- Stage 1: the variable-length split -------------------------------
  std::printf("== stage 1: shot-based split -> %zu segments ==\n",
              server.segments.size());
  Table seg_table({"segment", "first frame", "frames", "seconds", "cluster"});
  for (std::size_t s = 0; s < server.segments.size(); ++s) {
    const auto& plan = server.segments[s];
    seg_table.add_row({std::to_string(s), std::to_string(plan.first_frame),
                       std::to_string(plan.frame_count),
                       fmt(plan.frame_count / video->fps(), 1),
                       std::to_string(server.labels[s])});
  }
  std::printf("%s\n", seg_table.to_string().c_str());

  // ---- Stage 2: clustering ----------------------------------------------
  std::printf("== stage 2: silhouette sweep (K* = %d) ==\n", server.k);
  Table sil_table({"k", "silhouette"});
  for (std::size_t i = 0; i < server.silhouette_curve.size(); ++i)
    sil_table.add_row({std::to_string(i + 2), fmt(server.silhouette_curve[i], 4)});
  std::printf("%s\n", sil_table.to_string().c_str());

  // ---- Stage 3: micro models --------------------------------------------
  std::printf("== stage 3: micro models (%s, %.1f KB each) ==\n",
              sr::config_name(cfg.micro).c_str(), server.micro_model_bytes / 1e3);
  const auto iframes =
      core::collect_iframe_pairs(*video, server.encoded, server.segments);
  Table model_table({"cluster", "segments", "I frames", "PSNR before", "PSNR after"});
  for (int c = 0; c < server.k; ++c) {
    std::vector<sr::TrainSample> data;
    int seg_count = 0;
    for (std::size_t s = 0; s < iframes.size(); ++s) {
      if (server.labels[s] != c) continue;
      ++seg_count;
      for (const auto& p : iframes[s].pairs) data.push_back(p);
    }
    double before = 0.0;
    for (const auto& p : data) before += psnr(p.lo, p.hi);
    before /= static_cast<double>(data.size());
    const double after = sr::evaluate_psnr(*server.micro_models[static_cast<std::size_t>(c)], data);
    model_table.add_row({std::to_string(c), std::to_string(seg_count),
                         std::to_string(data.size()), fmt(before, 2), fmt(after, 2)});
  }
  std::printf("%s\n", model_table.to_string().c_str());

  std::printf("micro training compute: %.1f GFLOP total across %d models\n",
              server.train_flops / 1e9, server.k);
  return 0;
}
