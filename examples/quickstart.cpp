// Quickstart: the whole dcSR story on one synthetic video, end to end.
//
//   1. Server side: split the video at scene changes, encode it at CRF 51,
//      embed each segment's I frame with a VAE, cluster segments with global
//      K-means, train one micro EDSR model per cluster.
//   2. Client side: stream the segments, fetch micro models through the
//      Algorithm-1 cache, and decode with in-loop I-frame enhancement.
//   3. Compare quality and bandwidth against the degraded LOW stream.
//
// Runs in about a minute on a laptop-class CPU.

#include <cstdio>

#include "core/dcsr.hpp"
#include "util/table.hpp"

using namespace dcsr;

int main() {
  // A ~40-second "news" video: near-static studio scenes that recur, the
  // content profile dcSR benefits from most.
  const auto video = make_genre_video(Genre::kNews, /*seed=*/5,
                                      /*width=*/96, /*height=*/64,
                                      /*duration_seconds=*/60.0, /*fps=*/10.0);
  std::printf("video: %s, %dx%d, %d frames @ %.0f fps\n\n",
              video->name().c_str(), video->width(), video->height(),
              video->frame_count(), video->fps());

  // ---- Server side -----------------------------------------------------
  core::ServerConfig cfg;
  cfg.vae = {.input_size = 16, .latent_dim = 6, .base_channels = 4, .hidden = 48};
  cfg.vae_epochs = 15;
  cfg.micro = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
  cfg.k_max = 6;
  cfg.training = {.iterations = 400, .patch_size = 24, .batch_size = 4, .lr = 3e-3};

  std::printf("running server pipeline (split / encode / cluster / train)...\n");
  const core::ServerResult server = core::run_server_pipeline(*video, cfg);
  std::printf("  segments: %zu   clusters (micro models): %d\n",
              server.segments.size(), server.k);
  std::printf("  encoded video: %.1f KB   each micro model: %.1f KB\n\n",
              server.encoded.size_bytes() / 1e3, server.micro_model_bytes / 1e3);

  // ---- Client side: streaming with the model cache ----------------------
  const stream::Manifest manifest = server.manifest();
  const stream::SessionResult session = stream::simulate_session(manifest);
  std::printf("streaming session: %d model downloads, %d cache hits\n",
              session.model_downloads, session.cache_hits);
  std::printf("  bytes on the wire: video %.1f KB + models %.1f KB\n\n",
              session.video_bytes / 1e3, session.model_bytes / 1e3);

  // ---- Client side: decode + enhance, and compare to LOW ----------------
  std::printf("decoding with in-loop micro-model enhancement...\n");
  const core::PlaybackResult low = core::play_low(server.encoded, *video);
  const core::PlaybackResult dcsr =
      core::play_dcsr(server.encoded, server.labels, server.micro_models, *video);

  Table table({"method", "PSNR (dB)", "SSIM", "bytes (KB)"});
  table.add_row({"LOW (no SR)", fmt(low.mean_psnr, 2), fmt(low.mean_ssim, 4),
                 fmt(server.encoded.size_bytes() / 1e3, 1)});
  table.add_row({"dcSR", fmt(dcsr.mean_psnr, 2), fmt(dcsr.mean_ssim, 4),
                 fmt(session.total_bytes() / 1e3, 1)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("dcSR gain over LOW: %+.2f dB PSNR\n",
              dcsr.mean_psnr - low.mean_psnr);
  return 0;
}
