file(REMOVE_RECURSE
  "CMakeFiles/abr_session.dir/abr_session.cpp.o"
  "CMakeFiles/abr_session.dir/abr_session.cpp.o.d"
  "abr_session"
  "abr_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
