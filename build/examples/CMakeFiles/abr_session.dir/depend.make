# Empty dependencies file for abr_session.
# This may be replaced when dependencies are built.
