# Empty compiler generated dependencies file for streaming_session.
# This may be replaced when dependencies are built.
