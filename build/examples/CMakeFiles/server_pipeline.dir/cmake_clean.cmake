file(REMOVE_RECURSE
  "CMakeFiles/server_pipeline.dir/server_pipeline.cpp.o"
  "CMakeFiles/server_pipeline.dir/server_pipeline.cpp.o.d"
  "server_pipeline"
  "server_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
