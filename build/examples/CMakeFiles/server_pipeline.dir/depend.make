# Empty dependencies file for server_pipeline.
# This may be replaced when dependencies are built.
