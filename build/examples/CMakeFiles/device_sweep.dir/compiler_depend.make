# Empty compiler generated dependencies file for device_sweep.
# This may be replaced when dependencies are built.
