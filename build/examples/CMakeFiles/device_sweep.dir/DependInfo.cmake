
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/device_sweep.cpp" "examples/CMakeFiles/device_sweep.dir/device_sweep.cpp.o" "gcc" "examples/CMakeFiles/device_sweep.dir/device_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcsr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/split/CMakeFiles/dcsr_split.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/dcsr_features.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dcsr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/dcsr_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dcsr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dcsr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/dcsr_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sr/CMakeFiles/dcsr_sr.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dcsr_image.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcsr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcsr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
