# Empty compiler generated dependencies file for dcsr_cli.
# This may be replaced when dependencies are built.
