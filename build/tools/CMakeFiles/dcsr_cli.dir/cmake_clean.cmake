file(REMOVE_RECURSE
  "CMakeFiles/dcsr_cli.dir/dcsr_cli.cpp.o"
  "CMakeFiles/dcsr_cli.dir/dcsr_cli.cpp.o.d"
  "dcsr_cli"
  "dcsr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
