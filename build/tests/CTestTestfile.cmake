# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/split_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/sr_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/abr_test[1]_include.cmake")
include("/root/repo/build/tests/analyze_fp16_test[1]_include.cmake")
include("/root/repo/build/tests/container_test[1]_include.cmake")
include("/root/repo/build/tests/stream_formats_test[1]_include.cmake")
include("/root/repo/build/tests/codec_features_test[1]_include.cmake")
include("/root/repo/build/tests/deblock_test[1]_include.cmake")
include("/root/repo/build/tests/rate_control_test[1]_include.cmake")
include("/root/repo/build/tests/pca_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/anchor_test[1]_include.cmake")
include("/root/repo/build/tests/misc_property_test[1]_include.cmake")
