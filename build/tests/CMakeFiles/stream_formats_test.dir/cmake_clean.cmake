file(REMOVE_RECURSE
  "CMakeFiles/stream_formats_test.dir/stream_formats_test.cpp.o"
  "CMakeFiles/stream_formats_test.dir/stream_formats_test.cpp.o.d"
  "stream_formats_test"
  "stream_formats_test.pdb"
  "stream_formats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
