# Empty dependencies file for stream_formats_test.
# This may be replaced when dependencies are built.
