file(REMOVE_RECURSE
  "CMakeFiles/sr_test.dir/sr_test.cpp.o"
  "CMakeFiles/sr_test.dir/sr_test.cpp.o.d"
  "sr_test"
  "sr_test.pdb"
  "sr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
