# Empty compiler generated dependencies file for sr_test.
# This may be replaced when dependencies are built.
