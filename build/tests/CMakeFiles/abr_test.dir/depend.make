# Empty dependencies file for abr_test.
# This may be replaced when dependencies are built.
