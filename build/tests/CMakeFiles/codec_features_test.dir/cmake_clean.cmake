file(REMOVE_RECURSE
  "CMakeFiles/codec_features_test.dir/codec_features_test.cpp.o"
  "CMakeFiles/codec_features_test.dir/codec_features_test.cpp.o.d"
  "codec_features_test"
  "codec_features_test.pdb"
  "codec_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
