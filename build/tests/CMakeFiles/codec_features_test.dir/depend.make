# Empty dependencies file for codec_features_test.
# This may be replaced when dependencies are built.
