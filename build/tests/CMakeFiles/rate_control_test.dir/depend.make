# Empty dependencies file for rate_control_test.
# This may be replaced when dependencies are built.
