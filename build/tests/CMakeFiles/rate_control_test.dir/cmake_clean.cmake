file(REMOVE_RECURSE
  "CMakeFiles/rate_control_test.dir/rate_control_test.cpp.o"
  "CMakeFiles/rate_control_test.dir/rate_control_test.cpp.o.d"
  "rate_control_test"
  "rate_control_test.pdb"
  "rate_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
