
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/split_test.cpp" "tests/CMakeFiles/split_test.dir/split_test.cpp.o" "gcc" "tests/CMakeFiles/split_test.dir/split_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/split/CMakeFiles/dcsr_split.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dcsr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dcsr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dcsr_image.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcsr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
