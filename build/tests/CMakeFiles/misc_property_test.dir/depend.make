# Empty dependencies file for misc_property_test.
# This may be replaced when dependencies are built.
