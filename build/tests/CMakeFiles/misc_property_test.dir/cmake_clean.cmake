file(REMOVE_RECURSE
  "CMakeFiles/misc_property_test.dir/misc_property_test.cpp.o"
  "CMakeFiles/misc_property_test.dir/misc_property_test.cpp.o.d"
  "misc_property_test"
  "misc_property_test.pdb"
  "misc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
