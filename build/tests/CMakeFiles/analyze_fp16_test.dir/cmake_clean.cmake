file(REMOVE_RECURSE
  "CMakeFiles/analyze_fp16_test.dir/analyze_fp16_test.cpp.o"
  "CMakeFiles/analyze_fp16_test.dir/analyze_fp16_test.cpp.o.d"
  "analyze_fp16_test"
  "analyze_fp16_test.pdb"
  "analyze_fp16_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_fp16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
