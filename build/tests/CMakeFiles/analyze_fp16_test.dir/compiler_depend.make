# Empty compiler generated dependencies file for analyze_fp16_test.
# This may be replaced when dependencies are built.
