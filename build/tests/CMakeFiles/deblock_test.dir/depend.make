# Empty dependencies file for deblock_test.
# This may be replaced when dependencies are built.
