file(REMOVE_RECURSE
  "CMakeFiles/deblock_test.dir/deblock_test.cpp.o"
  "CMakeFiles/deblock_test.dir/deblock_test.cpp.o.d"
  "deblock_test"
  "deblock_test.pdb"
  "deblock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
