# Empty compiler generated dependencies file for dcsr_codec.
# This may be replaced when dependencies are built.
