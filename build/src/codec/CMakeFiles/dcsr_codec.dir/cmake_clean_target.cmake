file(REMOVE_RECURSE
  "libdcsr_codec.a"
)
