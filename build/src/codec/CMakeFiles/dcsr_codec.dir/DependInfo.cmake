
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/analyze.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/analyze.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/analyze.cpp.o.d"
  "/root/repo/src/codec/bits.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/bits.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/bits.cpp.o.d"
  "/root/repo/src/codec/block_coder.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/block_coder.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/block_coder.cpp.o.d"
  "/root/repo/src/codec/container.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/container.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/container.cpp.o.d"
  "/root/repo/src/codec/dct.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/dct.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/dct.cpp.o.d"
  "/root/repo/src/codec/deblock.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/deblock.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/deblock.cpp.o.d"
  "/root/repo/src/codec/decoder.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/decoder.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/decoder.cpp.o.d"
  "/root/repo/src/codec/encoder.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/encoder.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/encoder.cpp.o.d"
  "/root/repo/src/codec/frame_coding.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/frame_coding.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/frame_coding.cpp.o.d"
  "/root/repo/src/codec/motion.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/motion.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/motion.cpp.o.d"
  "/root/repo/src/codec/quant.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/quant.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/quant.cpp.o.d"
  "/root/repo/src/codec/rate_control.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/rate_control.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/rate_control.cpp.o.d"
  "/root/repo/src/codec/types.cpp" "src/codec/CMakeFiles/dcsr_codec.dir/types.cpp.o" "gcc" "src/codec/CMakeFiles/dcsr_codec.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/dcsr_image.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dcsr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcsr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcsr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
