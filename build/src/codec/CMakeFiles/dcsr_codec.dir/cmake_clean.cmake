file(REMOVE_RECURSE
  "CMakeFiles/dcsr_codec.dir/analyze.cpp.o"
  "CMakeFiles/dcsr_codec.dir/analyze.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/bits.cpp.o"
  "CMakeFiles/dcsr_codec.dir/bits.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/block_coder.cpp.o"
  "CMakeFiles/dcsr_codec.dir/block_coder.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/container.cpp.o"
  "CMakeFiles/dcsr_codec.dir/container.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/dct.cpp.o"
  "CMakeFiles/dcsr_codec.dir/dct.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/deblock.cpp.o"
  "CMakeFiles/dcsr_codec.dir/deblock.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/decoder.cpp.o"
  "CMakeFiles/dcsr_codec.dir/decoder.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/encoder.cpp.o"
  "CMakeFiles/dcsr_codec.dir/encoder.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/frame_coding.cpp.o"
  "CMakeFiles/dcsr_codec.dir/frame_coding.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/motion.cpp.o"
  "CMakeFiles/dcsr_codec.dir/motion.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/quant.cpp.o"
  "CMakeFiles/dcsr_codec.dir/quant.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/rate_control.cpp.o"
  "CMakeFiles/dcsr_codec.dir/rate_control.cpp.o.d"
  "CMakeFiles/dcsr_codec.dir/types.cpp.o"
  "CMakeFiles/dcsr_codec.dir/types.cpp.o.d"
  "libdcsr_codec.a"
  "libdcsr_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
