file(REMOVE_RECURSE
  "CMakeFiles/dcsr_video.dir/genres.cpp.o"
  "CMakeFiles/dcsr_video.dir/genres.cpp.o.d"
  "CMakeFiles/dcsr_video.dir/noise.cpp.o"
  "CMakeFiles/dcsr_video.dir/noise.cpp.o.d"
  "CMakeFiles/dcsr_video.dir/scene.cpp.o"
  "CMakeFiles/dcsr_video.dir/scene.cpp.o.d"
  "CMakeFiles/dcsr_video.dir/source.cpp.o"
  "CMakeFiles/dcsr_video.dir/source.cpp.o.d"
  "libdcsr_video.a"
  "libdcsr_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
