file(REMOVE_RECURSE
  "libdcsr_video.a"
)
