
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/genres.cpp" "src/video/CMakeFiles/dcsr_video.dir/genres.cpp.o" "gcc" "src/video/CMakeFiles/dcsr_video.dir/genres.cpp.o.d"
  "/root/repo/src/video/noise.cpp" "src/video/CMakeFiles/dcsr_video.dir/noise.cpp.o" "gcc" "src/video/CMakeFiles/dcsr_video.dir/noise.cpp.o.d"
  "/root/repo/src/video/scene.cpp" "src/video/CMakeFiles/dcsr_video.dir/scene.cpp.o" "gcc" "src/video/CMakeFiles/dcsr_video.dir/scene.cpp.o.d"
  "/root/repo/src/video/source.cpp" "src/video/CMakeFiles/dcsr_video.dir/source.cpp.o" "gcc" "src/video/CMakeFiles/dcsr_video.dir/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/dcsr_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcsr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcsr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
