# Empty compiler generated dependencies file for dcsr_video.
# This may be replaced when dependencies are built.
