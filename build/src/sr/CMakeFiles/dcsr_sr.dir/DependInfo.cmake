
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sr/edsr.cpp" "src/sr/CMakeFiles/dcsr_sr.dir/edsr.cpp.o" "gcc" "src/sr/CMakeFiles/dcsr_sr.dir/edsr.cpp.o.d"
  "/root/repo/src/sr/min_model.cpp" "src/sr/CMakeFiles/dcsr_sr.dir/min_model.cpp.o" "gcc" "src/sr/CMakeFiles/dcsr_sr.dir/min_model.cpp.o.d"
  "/root/repo/src/sr/model_zoo.cpp" "src/sr/CMakeFiles/dcsr_sr.dir/model_zoo.cpp.o" "gcc" "src/sr/CMakeFiles/dcsr_sr.dir/model_zoo.cpp.o.d"
  "/root/repo/src/sr/trainer.cpp" "src/sr/CMakeFiles/dcsr_sr.dir/trainer.cpp.o" "gcc" "src/sr/CMakeFiles/dcsr_sr.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dcsr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dcsr_image.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcsr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
