# Empty compiler generated dependencies file for dcsr_sr.
# This may be replaced when dependencies are built.
