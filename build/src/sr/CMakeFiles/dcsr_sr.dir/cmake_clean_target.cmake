file(REMOVE_RECURSE
  "libdcsr_sr.a"
)
