file(REMOVE_RECURSE
  "CMakeFiles/dcsr_sr.dir/edsr.cpp.o"
  "CMakeFiles/dcsr_sr.dir/edsr.cpp.o.d"
  "CMakeFiles/dcsr_sr.dir/min_model.cpp.o"
  "CMakeFiles/dcsr_sr.dir/min_model.cpp.o.d"
  "CMakeFiles/dcsr_sr.dir/model_zoo.cpp.o"
  "CMakeFiles/dcsr_sr.dir/model_zoo.cpp.o.d"
  "CMakeFiles/dcsr_sr.dir/trainer.cpp.o"
  "CMakeFiles/dcsr_sr.dir/trainer.cpp.o.d"
  "libdcsr_sr.a"
  "libdcsr_sr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_sr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
