# Empty compiler generated dependencies file for dcsr_features.
# This may be replaced when dependencies are built.
