file(REMOVE_RECURSE
  "CMakeFiles/dcsr_features.dir/extractor.cpp.o"
  "CMakeFiles/dcsr_features.dir/extractor.cpp.o.d"
  "CMakeFiles/dcsr_features.dir/vae.cpp.o"
  "CMakeFiles/dcsr_features.dir/vae.cpp.o.d"
  "libdcsr_features.a"
  "libdcsr_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
