file(REMOVE_RECURSE
  "libdcsr_features.a"
)
