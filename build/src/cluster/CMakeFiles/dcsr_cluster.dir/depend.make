# Empty dependencies file for dcsr_cluster.
# This may be replaced when dependencies are built.
