file(REMOVE_RECURSE
  "CMakeFiles/dcsr_cluster.dir/global_kmeans.cpp.o"
  "CMakeFiles/dcsr_cluster.dir/global_kmeans.cpp.o.d"
  "CMakeFiles/dcsr_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/dcsr_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/dcsr_cluster.dir/pca.cpp.o"
  "CMakeFiles/dcsr_cluster.dir/pca.cpp.o.d"
  "CMakeFiles/dcsr_cluster.dir/silhouette.cpp.o"
  "CMakeFiles/dcsr_cluster.dir/silhouette.cpp.o.d"
  "libdcsr_cluster.a"
  "libdcsr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
