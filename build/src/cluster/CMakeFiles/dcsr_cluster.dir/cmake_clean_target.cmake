file(REMOVE_RECURSE
  "libdcsr_cluster.a"
)
