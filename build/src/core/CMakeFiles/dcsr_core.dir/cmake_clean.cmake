file(REMOVE_RECURSE
  "CMakeFiles/dcsr_core.dir/baselines.cpp.o"
  "CMakeFiles/dcsr_core.dir/baselines.cpp.o.d"
  "CMakeFiles/dcsr_core.dir/client_pipeline.cpp.o"
  "CMakeFiles/dcsr_core.dir/client_pipeline.cpp.o.d"
  "CMakeFiles/dcsr_core.dir/deployment.cpp.o"
  "CMakeFiles/dcsr_core.dir/deployment.cpp.o.d"
  "CMakeFiles/dcsr_core.dir/server_pipeline.cpp.o"
  "CMakeFiles/dcsr_core.dir/server_pipeline.cpp.o.d"
  "libdcsr_core.a"
  "libdcsr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
