file(REMOVE_RECURSE
  "libdcsr_core.a"
)
