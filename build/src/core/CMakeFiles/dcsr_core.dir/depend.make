# Empty dependencies file for dcsr_core.
# This may be replaced when dependencies are built.
