file(REMOVE_RECURSE
  "libdcsr_util.a"
)
