file(REMOVE_RECURSE
  "CMakeFiles/dcsr_util.dir/file.cpp.o"
  "CMakeFiles/dcsr_util.dir/file.cpp.o.d"
  "CMakeFiles/dcsr_util.dir/rng.cpp.o"
  "CMakeFiles/dcsr_util.dir/rng.cpp.o.d"
  "CMakeFiles/dcsr_util.dir/serialize.cpp.o"
  "CMakeFiles/dcsr_util.dir/serialize.cpp.o.d"
  "CMakeFiles/dcsr_util.dir/stats.cpp.o"
  "CMakeFiles/dcsr_util.dir/stats.cpp.o.d"
  "CMakeFiles/dcsr_util.dir/table.cpp.o"
  "CMakeFiles/dcsr_util.dir/table.cpp.o.d"
  "libdcsr_util.a"
  "libdcsr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
