# Empty dependencies file for dcsr_util.
# This may be replaced when dependencies are built.
