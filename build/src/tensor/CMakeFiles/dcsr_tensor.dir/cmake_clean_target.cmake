file(REMOVE_RECURSE
  "libdcsr_tensor.a"
)
