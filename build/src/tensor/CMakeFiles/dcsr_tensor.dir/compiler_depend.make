# Empty compiler generated dependencies file for dcsr_tensor.
# This may be replaced when dependencies are built.
