file(REMOVE_RECURSE
  "CMakeFiles/dcsr_tensor.dir/ops.cpp.o"
  "CMakeFiles/dcsr_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/dcsr_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dcsr_tensor.dir/tensor.cpp.o.d"
  "libdcsr_tensor.a"
  "libdcsr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
