file(REMOVE_RECURSE
  "libdcsr_nn.a"
)
