
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/resblock.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/resblock.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/resblock.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/shape_ops.cpp" "src/nn/CMakeFiles/dcsr_nn.dir/shape_ops.cpp.o" "gcc" "src/nn/CMakeFiles/dcsr_nn.dir/shape_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dcsr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
