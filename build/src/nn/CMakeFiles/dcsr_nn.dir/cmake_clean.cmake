file(REMOVE_RECURSE
  "CMakeFiles/dcsr_nn.dir/activations.cpp.o"
  "CMakeFiles/dcsr_nn.dir/activations.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/conv.cpp.o"
  "CMakeFiles/dcsr_nn.dir/conv.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/linear.cpp.o"
  "CMakeFiles/dcsr_nn.dir/linear.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/loss.cpp.o"
  "CMakeFiles/dcsr_nn.dir/loss.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/module.cpp.o"
  "CMakeFiles/dcsr_nn.dir/module.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/optim.cpp.o"
  "CMakeFiles/dcsr_nn.dir/optim.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/resblock.cpp.o"
  "CMakeFiles/dcsr_nn.dir/resblock.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/sequential.cpp.o"
  "CMakeFiles/dcsr_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/serialize.cpp.o"
  "CMakeFiles/dcsr_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/dcsr_nn.dir/shape_ops.cpp.o"
  "CMakeFiles/dcsr_nn.dir/shape_ops.cpp.o.d"
  "libdcsr_nn.a"
  "libdcsr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
