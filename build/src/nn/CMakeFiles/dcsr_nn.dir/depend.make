# Empty dependencies file for dcsr_nn.
# This may be replaced when dependencies are built.
