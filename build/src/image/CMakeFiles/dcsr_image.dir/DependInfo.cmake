
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/convert.cpp" "src/image/CMakeFiles/dcsr_image.dir/convert.cpp.o" "gcc" "src/image/CMakeFiles/dcsr_image.dir/convert.cpp.o.d"
  "/root/repo/src/image/frame.cpp" "src/image/CMakeFiles/dcsr_image.dir/frame.cpp.o" "gcc" "src/image/CMakeFiles/dcsr_image.dir/frame.cpp.o.d"
  "/root/repo/src/image/metrics.cpp" "src/image/CMakeFiles/dcsr_image.dir/metrics.cpp.o" "gcc" "src/image/CMakeFiles/dcsr_image.dir/metrics.cpp.o.d"
  "/root/repo/src/image/resize.cpp" "src/image/CMakeFiles/dcsr_image.dir/resize.cpp.o" "gcc" "src/image/CMakeFiles/dcsr_image.dir/resize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dcsr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
