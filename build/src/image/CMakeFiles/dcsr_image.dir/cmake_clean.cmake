file(REMOVE_RECURSE
  "CMakeFiles/dcsr_image.dir/convert.cpp.o"
  "CMakeFiles/dcsr_image.dir/convert.cpp.o.d"
  "CMakeFiles/dcsr_image.dir/frame.cpp.o"
  "CMakeFiles/dcsr_image.dir/frame.cpp.o.d"
  "CMakeFiles/dcsr_image.dir/metrics.cpp.o"
  "CMakeFiles/dcsr_image.dir/metrics.cpp.o.d"
  "CMakeFiles/dcsr_image.dir/resize.cpp.o"
  "CMakeFiles/dcsr_image.dir/resize.cpp.o.d"
  "libdcsr_image.a"
  "libdcsr_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
