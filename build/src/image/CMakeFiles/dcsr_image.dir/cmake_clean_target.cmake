file(REMOVE_RECURSE
  "libdcsr_image.a"
)
