# Empty compiler generated dependencies file for dcsr_image.
# This may be replaced when dependencies are built.
