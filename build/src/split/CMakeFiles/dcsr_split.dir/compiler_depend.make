# Empty compiler generated dependencies file for dcsr_split.
# This may be replaced when dependencies are built.
