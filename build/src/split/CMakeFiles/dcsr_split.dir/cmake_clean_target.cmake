file(REMOVE_RECURSE
  "libdcsr_split.a"
)
