file(REMOVE_RECURSE
  "CMakeFiles/dcsr_split.dir/segmenter.cpp.o"
  "CMakeFiles/dcsr_split.dir/segmenter.cpp.o.d"
  "CMakeFiles/dcsr_split.dir/shot_detector.cpp.o"
  "CMakeFiles/dcsr_split.dir/shot_detector.cpp.o.d"
  "libdcsr_split.a"
  "libdcsr_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
