file(REMOVE_RECURSE
  "CMakeFiles/dcsr_device.dir/latency.cpp.o"
  "CMakeFiles/dcsr_device.dir/latency.cpp.o.d"
  "CMakeFiles/dcsr_device.dir/power.cpp.o"
  "CMakeFiles/dcsr_device.dir/power.cpp.o.d"
  "CMakeFiles/dcsr_device.dir/profiles.cpp.o"
  "CMakeFiles/dcsr_device.dir/profiles.cpp.o.d"
  "libdcsr_device.a"
  "libdcsr_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
