# Empty dependencies file for dcsr_device.
# This may be replaced when dependencies are built.
