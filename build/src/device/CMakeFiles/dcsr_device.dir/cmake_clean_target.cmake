file(REMOVE_RECURSE
  "libdcsr_device.a"
)
