file(REMOVE_RECURSE
  "libdcsr_stream.a"
)
