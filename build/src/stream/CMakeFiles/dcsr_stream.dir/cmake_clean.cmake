file(REMOVE_RECURSE
  "CMakeFiles/dcsr_stream.dir/abr.cpp.o"
  "CMakeFiles/dcsr_stream.dir/abr.cpp.o.d"
  "CMakeFiles/dcsr_stream.dir/manifest.cpp.o"
  "CMakeFiles/dcsr_stream.dir/manifest.cpp.o.d"
  "CMakeFiles/dcsr_stream.dir/model_bundle.cpp.o"
  "CMakeFiles/dcsr_stream.dir/model_bundle.cpp.o.d"
  "CMakeFiles/dcsr_stream.dir/model_cache.cpp.o"
  "CMakeFiles/dcsr_stream.dir/model_cache.cpp.o.d"
  "CMakeFiles/dcsr_stream.dir/net_traces.cpp.o"
  "CMakeFiles/dcsr_stream.dir/net_traces.cpp.o.d"
  "CMakeFiles/dcsr_stream.dir/playlist.cpp.o"
  "CMakeFiles/dcsr_stream.dir/playlist.cpp.o.d"
  "CMakeFiles/dcsr_stream.dir/session.cpp.o"
  "CMakeFiles/dcsr_stream.dir/session.cpp.o.d"
  "libdcsr_stream.a"
  "libdcsr_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsr_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
