# Empty dependencies file for dcsr_stream.
# This may be replaced when dependencies are built.
