
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/abr.cpp" "src/stream/CMakeFiles/dcsr_stream.dir/abr.cpp.o" "gcc" "src/stream/CMakeFiles/dcsr_stream.dir/abr.cpp.o.d"
  "/root/repo/src/stream/manifest.cpp" "src/stream/CMakeFiles/dcsr_stream.dir/manifest.cpp.o" "gcc" "src/stream/CMakeFiles/dcsr_stream.dir/manifest.cpp.o.d"
  "/root/repo/src/stream/model_bundle.cpp" "src/stream/CMakeFiles/dcsr_stream.dir/model_bundle.cpp.o" "gcc" "src/stream/CMakeFiles/dcsr_stream.dir/model_bundle.cpp.o.d"
  "/root/repo/src/stream/model_cache.cpp" "src/stream/CMakeFiles/dcsr_stream.dir/model_cache.cpp.o" "gcc" "src/stream/CMakeFiles/dcsr_stream.dir/model_cache.cpp.o.d"
  "/root/repo/src/stream/net_traces.cpp" "src/stream/CMakeFiles/dcsr_stream.dir/net_traces.cpp.o" "gcc" "src/stream/CMakeFiles/dcsr_stream.dir/net_traces.cpp.o.d"
  "/root/repo/src/stream/playlist.cpp" "src/stream/CMakeFiles/dcsr_stream.dir/playlist.cpp.o" "gcc" "src/stream/CMakeFiles/dcsr_stream.dir/playlist.cpp.o.d"
  "/root/repo/src/stream/session.cpp" "src/stream/CMakeFiles/dcsr_stream.dir/session.cpp.o" "gcc" "src/stream/CMakeFiles/dcsr_stream.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/dcsr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcsr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dcsr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dcsr_image.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcsr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
