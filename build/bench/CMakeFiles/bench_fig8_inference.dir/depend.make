# Empty dependencies file for bench_fig8_inference.
# This may be replaced when dependencies are built.
