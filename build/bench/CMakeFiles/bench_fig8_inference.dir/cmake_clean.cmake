file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_inference.dir/bench_fig8_inference.cpp.o"
  "CMakeFiles/bench_fig8_inference.dir/bench_fig8_inference.cpp.o.d"
  "bench_fig8_inference"
  "bench_fig8_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
