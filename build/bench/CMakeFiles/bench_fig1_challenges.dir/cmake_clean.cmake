file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_challenges.dir/bench_fig1_challenges.cpp.o"
  "CMakeFiles/bench_fig1_challenges.dir/bench_fig1_challenges.cpp.o.d"
  "bench_fig1_challenges"
  "bench_fig1_challenges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_challenges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
