# Empty compiler generated dependencies file for bench_fig11_overfit.
# This may be replaced when dependencies are built.
