file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_overfit.dir/bench_fig11_overfit.cpp.o"
  "CMakeFiles/bench_fig11_overfit.dir/bench_fig11_overfit.cpp.o.d"
  "bench_fig11_overfit"
  "bench_fig11_overfit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_overfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
