file(REMOVE_RECURSE
  "CMakeFiles/bench_sr_mode.dir/bench_sr_mode.cpp.o"
  "CMakeFiles/bench_sr_mode.dir/bench_sr_mode.cpp.o.d"
  "bench_sr_mode"
  "bench_sr_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sr_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
