# Empty dependencies file for bench_sr_mode.
# This may be replaced when dependencies are built.
