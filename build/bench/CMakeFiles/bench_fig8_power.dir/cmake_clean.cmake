file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_power.dir/bench_fig8_power.cpp.o"
  "CMakeFiles/bench_fig8_power.dir/bench_fig8_power.cpp.o.d"
  "bench_fig8_power"
  "bench_fig8_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
