file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_clusters.dir/bench_fig5_clusters.cpp.o"
  "CMakeFiles/bench_fig5_clusters.dir/bench_fig5_clusters.cpp.o.d"
  "bench_fig5_clusters"
  "bench_fig5_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
