file(REMOVE_RECURSE
  "CMakeFiles/bench_abr_extension.dir/bench_abr_extension.cpp.o"
  "CMakeFiles/bench_abr_extension.dir/bench_abr_extension.cpp.o.d"
  "bench_abr_extension"
  "bench_abr_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abr_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
