# Empty dependencies file for bench_abr_extension.
# This may be replaced when dependencies are built.
