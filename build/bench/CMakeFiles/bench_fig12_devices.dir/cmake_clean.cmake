file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_devices.dir/bench_fig12_devices.cpp.o"
  "CMakeFiles/bench_fig12_devices.dir/bench_fig12_devices.cpp.o.d"
  "bench_fig12_devices"
  "bench_fig12_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
