#include <gtest/gtest.h>

#include "stream/errors.hpp"
#include "stream/manifest.hpp"
#include "stream/model_cache.hpp"
#include "stream/session.hpp"

namespace dcsr::stream {
namespace {

// Builds a synthetic encoded video with the given per-segment byte sizes.
codec::EncodedVideo fake_video(const std::vector<std::uint64_t>& segment_bytes) {
  codec::EncodedVideo v;
  v.width = 64;
  v.height = 48;
  for (std::size_t i = 0; i < segment_bytes.size(); ++i) {
    codec::EncodedSegment seg;
    seg.first_frame = static_cast<int>(i) * 30;
    codec::EncodedFrame f;
    f.type = codec::FrameType::kI;
    f.payload.assign(segment_bytes[i], 0xab);
    seg.frames.push_back(std::move(f));
    v.segments.push_back(std::move(seg));
  }
  return v;
}

TEST(ModelCache, PaperWalkthroughExample) {
  // Fig. 7: segment labels 0..6 map to models {0,1,1,2,2,2,3}; downloads
  // happen at segments 0, 1, 3, 6 only.
  const std::vector<int> model_labels{0, 1, 1, 2, 2, 2, 3};
  ModelCache cache;
  std::vector<bool> downloaded;
  for (const int label : model_labels) downloaded.push_back(!cache.fetch(label));
  EXPECT_EQ(downloaded,
            (std::vector<bool>{true, true, false, true, false, false, true}));
  EXPECT_EQ(cache.downloads(), 4);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(ModelCache, ClearResets) {
  ModelCache cache;
  cache.fetch(1);
  cache.fetch(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Manifest, TotalsAddUp) {
  const auto video = fake_video({100, 200, 300});
  const Manifest m = make_manifest(video, {0, 1, 0}, {50, 60});
  EXPECT_EQ(m.total_video_bytes(), 600u);
  EXPECT_EQ(m.total_model_bytes_unique(), 110u);
  EXPECT_EQ(m.segments[1].model_label, 1);
}

TEST(Manifest, ValidatesLabels) {
  const auto video = fake_video({100, 200});
  EXPECT_THROW(make_manifest(video, {0}, {50}), std::invalid_argument);
  EXPECT_THROW(make_manifest(video, {0, 5}, {50}), std::invalid_argument);
}

TEST(Manifest, SingleModelAndPlainVariants) {
  const auto video = fake_video({100, 200});
  const Manifest nas = make_single_model_manifest(video, 1000);
  EXPECT_EQ(nas.segments[0].model_label, 0);
  EXPECT_EQ(nas.segments[1].model_label, 0);
  const Manifest low = make_plain_manifest(video);
  EXPECT_EQ(low.segments[0].model_label, kNoModel);
  EXPECT_TRUE(low.model_bytes.empty());
}

TEST(Session, DirectlyConstructedManifestWithDanglingLabelThrows) {
  // make_manifest/read_manifest validate labels, but nothing used to stop a
  // hand-built Manifest from indexing model_bytes out of bounds.
  Manifest m;
  m.model_bytes = {500};
  m.segments.push_back({0, 30, 1000, 0});  // fine
  m.segments.push_back({1, 30, 1000, 3});  // dangling label
  EXPECT_THROW(simulate_session(m), ManifestError);

  Manifest negative = m;
  negative.segments[1].model_label = -7;  // negative but not kNoModel
  EXPECT_THROW(simulate_session(negative), ManifestError);

  // kNoModel stays valid, and the error carries the offending segment index.
  m.segments[1].model_label = kNoModel;
  EXPECT_NO_THROW(simulate_session(m));
  m.segments[1].model_label = 3;
  try {
    simulate_session(m);
    FAIL() << "expected ManifestError";
  } catch (const ManifestError& e) {
    EXPECT_EQ(e.where(), 1u);
  }
}

TEST(Session, DcsrDownloadsEachModelOnce) {
  const auto video = fake_video({100, 100, 100, 100, 100, 100, 100});
  const Manifest m =
      make_manifest(video, {0, 1, 1, 2, 2, 2, 3}, {10, 20, 30, 40});
  const SessionResult r = simulate_session(m);
  EXPECT_EQ(r.video_bytes, 700u);
  EXPECT_EQ(r.model_bytes, 100u);  // 10+20+30+40, each once
  EXPECT_EQ(r.model_downloads, 4);
  EXPECT_EQ(r.cache_hits, 3);
  // Per-segment log: model bytes appear only on first use.
  EXPECT_EQ(r.log[1].model_bytes, 20u);
  EXPECT_EQ(r.log[2].model_bytes, 0u);
  EXPECT_TRUE(r.log[2].cache_hit);
}

TEST(Session, CacheDisabledRedownloads) {
  const auto video = fake_video({100, 100, 100});
  const Manifest m = make_manifest(video, {0, 0, 0}, {10});
  SessionConfig cfg;
  cfg.enable_model_cache = false;
  const SessionResult r = simulate_session(m, cfg);
  EXPECT_EQ(r.model_bytes, 30u);
  EXPECT_EQ(r.model_downloads, 3);
}

TEST(Session, SingleModelFetchedWithFirstSegment) {
  const auto video = fake_video({100, 100, 100});
  const Manifest m = make_single_model_manifest(video, 500);
  const SessionResult r = simulate_session(m);
  EXPECT_EQ(r.log[0].model_bytes, 500u);
  EXPECT_EQ(r.log[1].model_bytes, 0u);
  EXPECT_EQ(r.model_bytes, 500u);
}

TEST(Session, EarlyAbandonmentSavesDcsrModelBytes) {
  // A user who watches only the first 2 of 6 segments: dcSR only fetched the
  // models those segments needed; the single-model method already paid for
  // the whole big model.
  const auto video = fake_video({100, 100, 100, 100, 100, 100});
  const Manifest dcsr = make_manifest(video, {0, 0, 1, 1, 2, 2}, {50, 50, 50});
  const Manifest nas = make_single_model_manifest(video, 150);

  SessionConfig watch2;
  watch2.watch_segments = 2;
  const auto r_dcsr = simulate_session(dcsr, watch2);
  const auto r_nas = simulate_session(nas, watch2);
  EXPECT_EQ(r_dcsr.model_bytes, 50u);
  EXPECT_EQ(r_nas.model_bytes, 150u);
}

TEST(Session, LowBaselineHasNoModelBytes) {
  const auto video = fake_video({100, 200});
  const SessionResult r = simulate_session(make_plain_manifest(video));
  EXPECT_EQ(r.model_bytes, 0u);
  EXPECT_EQ(r.model_downloads, 0);
  EXPECT_EQ(r.total_bytes(), 300u);
}

}  // namespace
}  // namespace dcsr::stream
