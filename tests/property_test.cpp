// Property-style tests: invariants checked across parameter sweeps with
// TEST_P. These complement the per-module unit tests by exercising the same
// code paths over many configurations.

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/kmeans.hpp"
#include "codec/bits.hpp"
#include "codec/decoder.hpp"
#include "codec/dct.hpp"
#include "codec/encoder.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "nn/serialize.hpp"
#include "sr/model_zoo.hpp"
#include "stream/session.hpp"
#include "video/genres.hpp"

namespace dcsr {
namespace {

// ---------------------------------------------------------------------------
// Codec round-trip invariant: for ANY (crf, B-frames, intra period) the
// standalone decoder must reproduce the encoder's closed-loop reconstruction
// bit-exactly on every frame. This is the property that keeps inter
// prediction drift-free.
// ---------------------------------------------------------------------------

using CodecParams = std::tuple<int /*crf*/, bool /*b frames*/, int /*intra*/>;

class CodecRoundTrip : public ::testing::TestWithParam<CodecParams> {};

TEST_P(CodecRoundTrip, DecoderMatchesEncoderReconstruction) {
  const auto [crf, use_b, intra_period] = GetParam();
  const auto video = make_genre_video(Genre::kSports, 77, 64, 48, 1.5, 20.0);

  codec::CodecConfig cfg;
  cfg.crf = crf;
  cfg.use_b_frames = use_b;
  cfg.intra_period = intra_period;
  const codec::Encoder enc(cfg);
  const auto encoded = enc.encode(*video, {{0, 15}, {15, 15}});

  // Reference: decode; then re-decode to verify determinism of the decoder
  // itself as well.
  codec::Decoder dec1(64, 48, crf), dec2(64, 48, crf);
  const auto a = dec1.decode_video(encoded);
  const auto b = dec2.decode_video(encoded);
  ASSERT_EQ(a.size(), 30u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_FALSE(a[i].empty()) << "frame " << i << " missing";
    EXPECT_DOUBLE_EQ(psnr(a[i].y, b[i].y), 100.0);
    EXPECT_DOUBLE_EQ(psnr(a[i].u, b[i].u), 100.0);
  }

  // Decoded stream must resemble the source below the quantiser's noise
  // floor for its CRF (sanity that all modes reconstruct, not just parse).
  const FrameYUV src = rgb_to_yuv420(video->frame(20));
  EXPECT_GT(psnr(src.y, a[20].y), crf >= 51 ? 14.0 : 20.0);
}

std::string codec_param_name(const ::testing::TestParamInfo<CodecParams>& info) {
  const auto [crf, use_b, intra] = info.param;
  return "crf" + std::to_string(crf) + (use_b ? "_b" : "_p") + "_ip" +
         std::to_string(intra);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Combine(::testing::Values(18, 35, 51),
                       ::testing::Bool(),
                       ::testing::Values(0, 7)),
    codec_param_name);

// ---------------------------------------------------------------------------
// DCT energy-preservation property across many random blocks.
// ---------------------------------------------------------------------------

class DctProperty : public ::testing::TestWithParam<int> {};

TEST_P(DctProperty, RoundTripAndParseval) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  codec::Block8 b{};
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const codec::Block8 c = codec::dct8x8(b);
  const codec::Block8 r = codec::idct8x8(c);
  double eb = 0.0, ec = 0.0;
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(r[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-4f);
    eb += b[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    ec += c[static_cast<std::size_t>(i)] * c[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(eb, ec, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DctProperty, ::testing::Range(1, 16));

// ---------------------------------------------------------------------------
// Exp-Golomb codes: round trip over value ranges, and codeword monotonicity
// (longer codes for larger values).
// ---------------------------------------------------------------------------

class ExpGolombProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExpGolombProperty, RoundTripsRange) {
  const int base = GetParam() * 1000;
  codec::BitWriter w;
  for (int v = base; v < base + 200; ++v) {
    w.put_ue(static_cast<std::uint32_t>(v));
    w.put_se(v % 2 ? v : -v);
  }
  const auto bytes = w.finish();
  codec::BitReader r(bytes);
  for (int v = base; v < base + 200; ++v) {
    EXPECT_EQ(r.get_ue(), static_cast<std::uint32_t>(v));
    EXPECT_EQ(r.get_se(), v % 2 ? v : -v);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, ExpGolombProperty, ::testing::Values(0, 1, 5, 50));

// ---------------------------------------------------------------------------
// K-means invariants for any (k, seed): assignments reference existing
// centroids, every point sits with its NEAREST centroid (Lloyd fixpoint),
// and the reported inertia matches a recomputation.
// ---------------------------------------------------------------------------

using KmeansParams = std::tuple<int /*k*/, int /*seed*/>;

class KmeansProperty : public ::testing::TestWithParam<KmeansParams> {};

TEST_P(KmeansProperty, LloydFixpointInvariants) {
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  cluster::Dataset data;
  for (int i = 0; i < 40; ++i)
    data.push_back({static_cast<float>(rng.uniform(0, 10)),
                    static_cast<float>(rng.uniform(0, 10)),
                    static_cast<float>(rng.uniform(0, 10))});

  const cluster::Clustering c = cluster::kmeans(data, k, rng);
  ASSERT_EQ(c.assignment.size(), data.size());
  ASSERT_EQ(c.centroids.size(), static_cast<std::size_t>(k));

  double inertia = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int a = c.assignment[i];
    ASSERT_GE(a, 0);
    ASSERT_LT(a, k);
    const double own = cluster::sq_distance(data[i], c.centroids[static_cast<std::size_t>(a)]);
    for (int j = 0; j < k; ++j)
      EXPECT_LE(own, cluster::sq_distance(data[i], c.centroids[static_cast<std::size_t>(j)]) + 1e-9)
          << "point " << i << " not with nearest centroid";
    inertia += own;
  }
  EXPECT_NEAR(inertia, c.inertia, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KmeansProperty,
                         ::testing::Combine(::testing::Values(1, 2, 5, 10),
                                            ::testing::Values(3, 17)));

// ---------------------------------------------------------------------------
// EDSR closed forms across the whole Table-1 grid and scales: the analytic
// parameter count, serialised size, and a save/load round trip must agree
// with the real model.
// ---------------------------------------------------------------------------

using EdsrParams = std::tuple<int /*filters*/, int /*blocks*/, int /*scale*/>;

class EdsrGridProperty : public ::testing::TestWithParam<EdsrParams> {};

TEST_P(EdsrGridProperty, ClosedFormsMatchRealModel) {
  const auto [f, rb, scale] = GetParam();
  const sr::EdsrConfig cfg{.n_filters = f, .n_resblocks = rb, .scale = scale};
  Rng rng(3);
  sr::Edsr model(cfg, rng);
  EXPECT_EQ(model.param_count(), sr::edsr_param_count(cfg));
  EXPECT_EQ(nn::serialized_size(model), sr::edsr_model_bytes(cfg));

  // Save -> load into a second instance -> identical outputs.
  sr::Edsr other(cfg, rng);
  ByteWriter w;
  nn::save_params(model, w);
  ByteReader r(w.bytes());
  nn::load_params(other, r);
  const Tensor x = Tensor::randn({1, 3, 8, 8}, rng, 0.3f);
  const Tensor ya = model.forward(x);
  const Tensor yb = other.forward(x);
  ASSERT_TRUE(ya.same_shape(yb));
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

INSTANTIATE_TEST_SUITE_P(Grid, EdsrGridProperty,
                         ::testing::Combine(::testing::Values(4, 8, 16),
                                            ::testing::Values(4, 8),
                                            ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// Streaming-session accounting invariants for arbitrary label patterns.
// ---------------------------------------------------------------------------

class SessionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SessionProperty, AccountingInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n_segments = 12;
  const int n_models = 4;

  codec::EncodedVideo video;
  video.width = 64;
  video.height = 48;
  std::vector<int> labels;
  std::vector<std::uint64_t> model_bytes;
  for (int m = 0; m < n_models; ++m)
    model_bytes.push_back(static_cast<std::uint64_t>(rng.uniform_int(100, 900)));
  for (int s = 0; s < n_segments; ++s) {
    codec::EncodedSegment seg;
    codec::EncodedFrame f;
    f.payload.assign(static_cast<std::size_t>(rng.uniform_int(10, 500)), 0);
    seg.frames.push_back(std::move(f));
    video.segments.push_back(std::move(seg));
    labels.push_back(static_cast<int>(rng.uniform_int(0, n_models - 1)));
  }

  const auto manifest = stream::make_manifest(video, labels, model_bytes);
  const auto r = stream::simulate_session(manifest);

  // Log covers every segment; totals equal the log sums.
  ASSERT_EQ(r.log.size(), static_cast<std::size_t>(n_segments));
  std::uint64_t video_sum = 0, model_sum = 0;
  for (const auto& log : r.log) {
    video_sum += log.video_bytes;
    model_sum += log.model_bytes;
  }
  EXPECT_EQ(video_sum, r.video_bytes);
  EXPECT_EQ(model_sum, r.model_bytes);
  EXPECT_EQ(r.video_bytes, manifest.total_video_bytes());

  // Each distinct label is downloaded exactly once; hits + downloads cover
  // every segment.
  std::set<int> distinct(labels.begin(), labels.end());
  EXPECT_EQ(r.model_downloads, static_cast<int>(distinct.size()));
  EXPECT_EQ(r.model_downloads + r.cache_hits, n_segments);

  // Downloaded bytes equal the sum of distinct models' sizes.
  std::uint64_t expected_model_bytes = 0;
  for (const int l : distinct) expected_model_bytes += model_bytes[static_cast<std::size_t>(l)];
  EXPECT_EQ(r.model_bytes, expected_model_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// YUV conversion property: luma survives the RGB round trip exactly (up to
// clamping) for in-gamut frames, on all genres.
// ---------------------------------------------------------------------------

class ConversionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConversionProperty, LumaSurvivesRoundTrip) {
  const auto genres = all_genres();
  const Genre g = genres[static_cast<std::size_t>(GetParam()) % genres.size()];
  const auto video = make_genre_video(g, 1234, 64, 48, 1.0, 10.0);
  const FrameRGB rgb = video->frame(3);
  const FrameYUV yuv = rgb_to_yuv420(rgb);
  const FrameYUV back = rgb_to_yuv420(yuv420_to_rgb(yuv));
  // Luma: algebraically exact modulo gamut clamping at chroma extremes.
  EXPECT_GT(psnr(yuv.y, back.y), 38.0) << genre_name(g);
}

INSTANTIATE_TEST_SUITE_P(Genres, ConversionProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace dcsr
