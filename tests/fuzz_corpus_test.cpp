// Replays the checked-in fuzz regression corpus (tests/corpus/) in the
// default build: every input is a minimised reproducer for a hardened
// failure mode and must be rejected with its parse surface's *typed* error —
// never UB, an abort, or an unrelated exception. Also pins the corpus files
// themselves against regression_corpus(), so the two cannot drift apart.

#include <fstream>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "core/fuzz.hpp"

namespace fuzz = dcsr::core::fuzz;

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing corpus file " << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

fuzz::Harness harness_for(const std::string& name) {
  for (const fuzz::Harness h : fuzz::all_harnesses())
    if (name.rfind(fuzz::harness_name(h), 0) == 0) return h;
  ADD_FAILURE() << "corpus file " << name << " matches no harness prefix";
  return fuzz::Harness::kBits;
}

}  // namespace

TEST(FuzzCorpus, EveryInputReplaysToTypedError) {
  const auto corpus = fuzz::regression_corpus();
  ASSERT_FALSE(corpus.empty());
  for (const auto& [name, bytes] : corpus) {
    EXPECT_EQ(fuzz::replay(harness_for(name), bytes),
              fuzz::ReplayOutcome::kTypedError)
        << name;
  }
}

TEST(FuzzCorpus, CheckedInFilesMatchGenerator) {
  // The files under tests/corpus/ are the exact bytes regression_corpus()
  // produces; regenerate with `dcsr_fuzz --write-corpus tests/corpus` after
  // adding an entry.
  for (const auto& [name, bytes] : fuzz::regression_corpus()) {
    const auto on_disk = read_file(std::string(DCSR_CORPUS_DIR) + "/" + name);
    EXPECT_EQ(on_disk, bytes) << name;
  }
}

TEST(FuzzCorpus, CheckedInFilesReplayToTypedError) {
  for (const auto& [name, bytes] : fuzz::regression_corpus()) {
    const auto on_disk = read_file(std::string(DCSR_CORPUS_DIR) + "/" + name);
    EXPECT_EQ(fuzz::replay(harness_for(name), on_disk),
              fuzz::ReplayOutcome::kTypedError)
        << name;
  }
}

TEST(FuzzCorpus, ValidBaseInputsParse) {
  // Sanity: an unmutated artefact from each structured harness parses
  // cleanly, so the fuzz loop is mutating something real rather than
  // rejecting everything at the first field. (kBits is excluded — its
  // replay reader intentionally reads a different op sequence than the
  // writer; kDecoder encodes its own base inside run().)
  const std::uint64_t kSeed = 7;
  for (const fuzz::Harness h :
       {fuzz::Harness::kContainer, fuzz::Harness::kManifest,
        fuzz::Harness::kPlaylist, fuzz::Harness::kBundle,
        fuzz::Harness::kSlice}) {
    EXPECT_EQ(fuzz::replay(h, fuzz::valid_input(h, kSeed)),
              fuzz::ReplayOutcome::kParsed)
        << fuzz::harness_name(h);
  }
}

