#include <gtest/gtest.h>

#include "codec/container.hpp"
#include "codec/deblock.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "video/genres.hpp"

namespace dcsr::codec {
namespace {

TEST(Deblock, SmoothsSmallBlockEdgeSteps) {
  // A plane with a small artificial step at the 8-boundary: filtering should
  // shrink the discontinuity.
  Plane p(16, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 16; ++x) p.at(x, y) = x < 8 ? 0.50f : 0.54f;
  const float before = std::abs(p.at(7, 4) - p.at(8, 4));
  deblock_plane(p, 8, /*qstep=*/0.05f);
  const float after = std::abs(p.at(7, 4) - p.at(8, 4));
  EXPECT_LT(after, before);
}

TEST(Deblock, PreservesRealEdges) {
  // A strong content edge at the block boundary must be left intact.
  Plane p(16, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 16; ++x) p.at(x, y) = x < 8 ? 0.1f : 0.9f;
  Plane orig = p;
  deblock_plane(p, 8, /*qstep=*/0.05f);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 16; ++x) EXPECT_EQ(p.at(x, y), orig.at(x, y));
}

TEST(Deblock, NoOpInsideBlocks) {
  // Samples away from block boundaries are untouched.
  Plane p(16, 16);
  Rng rng(1);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) p.at(x, y) = static_cast<float>(rng.uniform());
  Plane orig = p;
  deblock_plane(p, 8, 0.02f);
  for (int y = 2; y < 5; ++y)
    for (int x = 2; x < 5; ++x) EXPECT_EQ(p.at(x, y), orig.at(x, y));
}

TEST(Deblock, ImprovesHeavilyQuantisedDecode) {
  // End-to-end: at CRF 51, the loop filter should improve (or at least not
  // hurt) reconstruction quality on smooth content.
  const auto video = make_genre_video(Genre::kNews, 91, 64, 48, 3.0, 15.0);
  auto quality_with = [&](bool deblock) {
    CodecConfig cfg;
    cfg.crf = 51;
    cfg.deblock = deblock;
    const auto encoded = Encoder(cfg).encode(*video, {{0, video->frame_count()}});
    EXPECT_EQ(encoded.deblock, deblock);
    Decoder dec(64, 48, encoded.crf);
    const auto frames = dec.decode_video(encoded);
    double acc = 0.0;
    for (int i = 0; i < video->frame_count(); i += 9)
      acc += psnr_luma(rgb_to_yuv420(video->frame(i)),
                       frames[static_cast<std::size_t>(i)]);
    return acc;
  };
  EXPECT_GT(quality_with(true), quality_with(false) - 0.01);
}

TEST(Deblock, EncoderDecoderStayBitExact) {
  // The filtered reference must be identical on both sides: re-decoding a
  // deblocked stream twice gives identical frames, and P-chains do not
  // drift (the last frame still resembles the source).
  const auto video = make_genre_video(Genre::kSports, 92, 64, 48, 2.0, 15.0);
  CodecConfig cfg;
  cfg.crf = 40;
  cfg.deblock = true;
  cfg.use_b_frames = true;
  const auto encoded = Encoder(cfg).encode(*video, {{0, video->frame_count()}});

  Decoder d1(64, 48, encoded.crf), d2(64, 48, encoded.crf);
  const auto a = d1.decode_video(encoded);
  const auto b = d2.decode_video(encoded);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(psnr(a[i].y, b[i].y), 100.0);

  const int last = video->frame_count() - 1;
  EXPECT_GT(psnr_luma(rgb_to_yuv420(video->frame(last)),
                      a[static_cast<std::size_t>(last)]),
            20.0);
}

TEST(Deblock, FlagSurvivesContainerRoundTrip) {
  const auto video = make_genre_video(Genre::kNews, 93, 64, 48, 1.0, 15.0);
  CodecConfig cfg;
  cfg.deblock = true;
  const auto encoded = Encoder(cfg).encode(*video, {{0, video->frame_count()}});
  ByteWriter w;
  write_container(encoded, w);
  ByteReader r(w.bytes());
  EXPECT_TRUE(read_container(r).deblock);
}

}  // namespace
}  // namespace dcsr::codec
