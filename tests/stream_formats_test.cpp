// Tests for the streaming-layer formats: the text playlist, the model
// bundle, and the network trace generators.

#include <gtest/gtest.h>

#include "stream/model_bundle.hpp"
#include "stream/net_traces.hpp"
#include "stream/playlist.hpp"
#include "stream/session.hpp"

namespace dcsr::stream {
namespace {

Manifest sample_manifest() {
  Manifest m;
  m.model_bytes = {1000, 2000, 1500};
  m.segments.push_back({0, 30, 5000, 0});
  m.segments.push_back({1, 25, 4000, 1});
  m.segments.push_back({2, 40, 6000, 0});
  m.segments.push_back({3, 12, 1200, kNoModel});
  m.segments.push_back({4, 33, 5100, 2});
  return m;
}

// ---- playlist ---------------------------------------------------------------

TEST(Playlist, RoundTripsManifest) {
  const Manifest original = sample_manifest();
  const std::string text = write_playlist(original);
  const Manifest parsed = parse_playlist(text);

  ASSERT_EQ(parsed.model_bytes, original.model_bytes);
  ASSERT_EQ(parsed.segments.size(), original.segments.size());
  for (std::size_t s = 0; s < parsed.segments.size(); ++s) {
    EXPECT_EQ(parsed.segments[s].segment_index, original.segments[s].segment_index);
    EXPECT_EQ(parsed.segments[s].frame_count, original.segments[s].frame_count);
    EXPECT_EQ(parsed.segments[s].video_bytes, original.segments[s].video_bytes);
    EXPECT_EQ(parsed.segments[s].model_label, original.segments[s].model_label);
  }
}

TEST(Playlist, TextIsHumanReadable) {
  const std::string text = write_playlist(sample_manifest());
  EXPECT_NE(text.find("#DCSR-PLAYLIST:1"), std::string::npos);
  EXPECT_NE(text.find("#MODEL:1:2000"), std::string::npos);
  EXPECT_NE(text.find("#SEGMENT:3:12:1200:-"), std::string::npos);
  EXPECT_NE(text.find("#END"), std::string::npos);
}

TEST(Playlist, SessionResultsIdenticalThroughText) {
  const Manifest original = sample_manifest();
  const Manifest parsed = parse_playlist(write_playlist(original));
  const auto a = simulate_session(original);
  const auto b = simulate_session(parsed);
  EXPECT_EQ(a.video_bytes, b.video_bytes);
  EXPECT_EQ(a.model_bytes, b.model_bytes);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
}

TEST(Playlist, RejectsMalformedInput) {
  EXPECT_THROW(parse_playlist(""), std::invalid_argument);
  EXPECT_THROW(parse_playlist("#DCSR-PLAYLIST:2\n#MODELS:0\n#END\n"),
               std::invalid_argument);
  // Unknown directive.
  EXPECT_THROW(parse_playlist("#DCSR-PLAYLIST:1\n#MODELS:0\n#BOGUS:1\n#END\n"),
               std::invalid_argument);
  // Missing #END.
  EXPECT_THROW(parse_playlist("#DCSR-PLAYLIST:1\n#MODELS:0\n"),
               std::invalid_argument);
  // Segment referencing unknown model.
  EXPECT_THROW(
      parse_playlist("#DCSR-PLAYLIST:1\n#MODELS:1\n#MODEL:0:10\n"
                     "#SEGMENT:0:30:100:5\n#END\n"),
      std::invalid_argument);
  // Non-dense segment numbering.
  EXPECT_THROW(
      parse_playlist("#DCSR-PLAYLIST:1\n#MODELS:0\n#SEGMENT:1:30:100:-\n#END\n"),
      std::invalid_argument);
  // Garbage number.
  EXPECT_THROW(
      parse_playlist("#DCSR-PLAYLIST:1\n#MODELS:0\n#SEGMENT:0:3x:100:-\n#END\n"),
      std::invalid_argument);
}

// ---- model bundle --------------------------------------------------------------

TEST(ModelBundle, RoundTripsPayloads) {
  ModelBundle bundle;
  bundle.add(0, {1, 2, 3, 4});
  bundle.add(1, {0xff, 0xee});
  bundle.add(7, std::vector<std::uint8_t>(1000, 0x5a));

  ByteWriter w;
  bundle.serialize(w);
  EXPECT_EQ(w.size(), bundle.total_bytes());

  ByteReader r(w.bytes());
  const ModelBundle parsed = ModelBundle::deserialize(r);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.payload(0), (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(parsed.payload(7).size(), 1000u);
  EXPECT_TRUE(parsed.contains(1));
  EXPECT_FALSE(parsed.contains(2));
}

TEST(ModelBundle, DuplicateLabelRejected) {
  ModelBundle bundle;
  bundle.add(3, {1});
  EXPECT_THROW(bundle.add(3, {2}), std::invalid_argument);
}

TEST(ModelBundle, UnknownLabelThrows) {
  ModelBundle bundle;
  EXPECT_THROW(bundle.payload(9), std::out_of_range);
}

TEST(ModelBundle, CorruptionDetected) {
  ModelBundle bundle;
  bundle.add(0, std::vector<std::uint8_t>(64, 0xaa));
  ByteWriter w;
  bundle.serialize(w);
  auto bytes = w.bytes();
  bytes[bytes.size() - 10] ^= 0x01;  // flip a payload bit
  ByteReader r(std::move(bytes));
  EXPECT_THROW(ModelBundle::deserialize(r), std::invalid_argument);
}

TEST(ModelBundle, TruncationDetected) {
  ModelBundle bundle;
  bundle.add(0, std::vector<std::uint8_t>(64, 0xaa));
  ByteWriter w;
  bundle.serialize(w);
  auto bytes = w.bytes();
  // Saturating form: provably never wraps, so GCC's -Wstringop-overflow
  // stays quiet in sanitizer builds (it cannot see size() > 20 here).
  bytes.resize(bytes.size() > 20 ? bytes.size() - 20 : 0);
  ByteReader r(std::move(bytes));
  EXPECT_ANY_THROW(ModelBundle::deserialize(r));
}

// ---- network traces ----------------------------------------------------------

TEST(NetTraces, ConstantAndStep) {
  const auto c = constant_trace(1000.0, 5);
  ASSERT_EQ(c.bytes_per_second.size(), 5u);
  EXPECT_DOUBLE_EQ(c.bytes_per_second[3], 1000.0);

  const auto s = step_trace(2000.0, 100.0, 3, 6);
  EXPECT_DOUBLE_EQ(s.bytes_per_second[2], 2000.0);
  EXPECT_DOUBLE_EQ(s.bytes_per_second[3], 100.0);
  EXPECT_THROW(constant_trace(1.0, 0), std::invalid_argument);
}

TEST(NetTraces, MarkovVisitsBothStates) {
  Rng rng(11);
  MarkovTraceConfig cfg;
  const auto t = markov_trace(cfg, 600, rng);
  ASSERT_EQ(t.bytes_per_second.size(), 600u);
  int near_good = 0, near_bad = 0;
  for (const double r : t.bytes_per_second) {
    EXPECT_GT(r, 0.0);
    if (r > cfg.good_rate * 0.5) ++near_good;
    if (r < cfg.bad_rate * 2.0) ++near_bad;
  }
  EXPECT_GT(near_good, 100);
  EXPECT_GT(near_bad, 30);
}

TEST(NetTraces, MarkovDeterministicPerSeed) {
  Rng a(5), b(5);
  const auto ta = markov_trace({}, 50, a);
  const auto tb = markov_trace({}, 50, b);
  EXPECT_EQ(ta.bytes_per_second, tb.bytes_per_second);
}

TEST(NetTraces, MarkovDwellTimesFollowTransitionProbs) {
  // With a much stickier good state, the trace should spend most time good.
  Rng rng(6);
  MarkovTraceConfig sticky;
  sticky.p_good_to_bad = 0.01;
  sticky.p_bad_to_good = 0.5;
  const auto t = markov_trace(sticky, 2000, rng);
  int good = 0;
  for (const double r : t.bytes_per_second)
    if (r > sticky.good_rate * 0.5) ++good;
  EXPECT_GT(good, 1600);
}

}  // namespace
}  // namespace dcsr::stream
