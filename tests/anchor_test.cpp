// Tests for the NEMO-style anchor-frame extension.

#include <gtest/gtest.h>

#include "core/client_pipeline.hpp"
#include "core/server_pipeline.hpp"
#include "video/genres.hpp"

namespace dcsr::core {
namespace {

struct AnchorFixture : ::testing::Test {
  static void SetUpTestSuite() {
    video = make_genre_video(Genre::kNews, 71, 64, 48, 20.0, 15.0).release();
    ServerConfig cfg;
    cfg.codec.crf = 51;
    cfg.codec.intra_period = 0;  // no intra refresh: anchors do the work
    cfg.vae = {.input_size = 16, .latent_dim = 4, .base_channels = 4, .hidden = 32};
    cfg.vae_epochs = 6;
    cfg.micro = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
    cfg.k_max = 3;
    cfg.training = {.iterations = 300, .patch_size = 24, .batch_size = 2, .lr = 3e-3};
    cfg.seed = 21;
    server = new ServerResult(run_server_pipeline(*video, cfg));
  }
  static void TearDownTestSuite() {
    delete server;
    delete video;
    server = nullptr;
    video = nullptr;
  }
  static SyntheticVideo* video;
  static ServerResult* server;
};
SyntheticVideo* AnchorFixture::video = nullptr;
ServerResult* AnchorFixture::server = nullptr;

TEST_F(AnchorFixture, ZeroPeriodMatchesPlainDcsr) {
  const PlaybackResult plain =
      play_dcsr(server->encoded, server->labels, server->micro_models, *video);
  const AnchorPlaybackResult anchored = play_dcsr_anchors(
      server->encoded, server->labels, server->micro_models, *video, 0);
  ASSERT_EQ(plain.frame_psnr.size(), anchored.playback.frame_psnr.size());
  for (std::size_t i = 0; i < plain.frame_psnr.size(); ++i)
    EXPECT_DOUBLE_EQ(plain.frame_psnr[i], anchored.playback.frame_psnr[i]);
  // One inference per I frame (= per segment, since intra_period is 0).
  EXPECT_EQ(anchored.inferences,
            static_cast<int>(server->encoded.segments.size()));
}

TEST_F(AnchorFixture, AnchorsSpendMoreInferences) {
  const auto sparse = play_dcsr_anchors(server->encoded, server->labels,
                                        server->micro_models, *video, 20);
  const auto dense = play_dcsr_anchors(server->encoded, server->labels,
                                       server->micro_models, *video, 5);
  EXPECT_GT(dense.inferences, sparse.inferences);
  EXPECT_GT(sparse.inferences,
            static_cast<int>(server->encoded.segments.size()));
}

TEST_F(AnchorFixture, AnchorsImproveQualityWithoutExtraBits) {
  // The headline property: anchors fight drift using compute, not bitrate —
  // the stream is byte-identical, quality goes up.
  const auto plain = play_dcsr_anchors(server->encoded, server->labels,
                                       server->micro_models, *video, 0);
  const auto anchored = play_dcsr_anchors(server->encoded, server->labels,
                                          server->micro_models, *video, 8);
  EXPECT_GT(anchored.playback.mean_psnr, plain.playback.mean_psnr);
}

TEST_F(AnchorFixture, ValidatesLabels) {
  // Out-of-range label (right count, bogus value).
  std::vector<int> bad(server->encoded.segments.size(), 99);
  EXPECT_THROW(play_dcsr_anchors(server->encoded, bad, server->micro_models,
                                 *video, 5),
               std::invalid_argument);
  // Wrong label count.
  std::vector<int> short_labels(server->encoded.segments.size() + 1, 0);
  EXPECT_THROW(play_dcsr_anchors(server->encoded, short_labels,
                                 server->micro_models, *video, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcsr::core
