#include <gtest/gtest.h>

#include "codec/bits.hpp"
#include "codec/block_coder.hpp"
#include "codec/dct.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "codec/frame_coding.hpp"
#include "codec/motion.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "video/genres.hpp"
#include "video/noise.hpp"

namespace dcsr::codec {
namespace {

// ---- bits -------------------------------------------------------------------

TEST(Bits, RawBitsRoundTrip) {
  BitWriter w;
  w.put_bits(0b10110, 5);
  w.put_bit(true);
  w.put_bits(0xff, 8);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(5), 0b10110u);
  EXPECT_TRUE(r.get_bit());
  EXPECT_EQ(r.get_bits(8), 0xffu);
}

TEST(Bits, ExpGolombUnsignedRoundTrip) {
  BitWriter w;
  for (std::uint32_t v = 0; v < 300; ++v) w.put_ue(v);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (std::uint32_t v = 0; v < 300; ++v) EXPECT_EQ(r.get_ue(), v);
}

TEST(Bits, ExpGolombSignedRoundTrip) {
  BitWriter w;
  for (std::int32_t v = -50; v <= 50; ++v) w.put_se(v);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (std::int32_t v = -50; v <= 50; ++v) EXPECT_EQ(r.get_se(), v);
}

TEST(Bits, OverReadThrows) {
  BitWriter w;
  w.put_bit(true);
  const auto bytes = w.finish();
  BitReader r(bytes);
  r.get_bits(8);  // padded byte
  EXPECT_THROW(r.get_bit(), std::out_of_range);
}

TEST(Bits, KnownUeCodewords) {
  // ue(0) = "1", ue(1) = "010", ue(2) = "011".
  BitWriter w;
  w.put_ue(0);
  w.put_ue(1);
  w.put_ue(2);
  EXPECT_EQ(w.bit_count(), 7u);
  const auto bytes = w.finish();
  EXPECT_EQ(bytes[0], 0b10100110);
}

// ---- DCT ---------------------------------------------------------------------

TEST(Dct, RoundTripIsIdentity) {
  Rng rng(1);
  Block8 b{};
  for (auto& v : b) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  const Block8 rec = idct8x8(dct8x8(b));
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(rec[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-5f);
}

TEST(Dct, ConstantBlockIsPureDc) {
  Block8 b{};
  for (auto& v : b) v = 0.5f;
  const Block8 c = dct8x8(b);
  EXPECT_NEAR(c[0], 4.0f, 1e-5f);  // orthonormal: DC = 8 * 0.5
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(c[static_cast<std::size_t>(i)], 0.0f, 1e-5f);
}

TEST(Dct, EnergyPreserved) {
  // Orthonormal transform preserves the L2 norm (Parseval).
  Rng rng(2);
  Block8 b{};
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  const Block8 c = dct8x8(b);
  double eb = 0, ec = 0;
  for (int i = 0; i < 64; ++i) {
    eb += b[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    ec += c[static_cast<std::size_t>(i)] * c[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(eb, ec, 1e-4);
}

TEST(Dct, ZigzagIsAPermutation) {
  std::array<bool, 64> seen{};
  for (const int z : kZigzag) {
    ASSERT_GE(z, 0);
    ASSERT_LT(z, 64);
    EXPECT_FALSE(seen[static_cast<std::size_t>(z)]);
    seen[static_cast<std::size_t>(z)] = true;
  }
}

// ---- Quantizer ----------------------------------------------------------------

TEST(Quantizer, StepDoublesEverySixCrf) {
  const Quantizer q18(18), q24(24), q30(30);
  EXPECT_NEAR(q24.base_step() / q18.base_step(), 2.0f, 1e-4f);
  EXPECT_NEAR(q30.base_step() / q24.base_step(), 2.0f, 1e-4f);
}

TEST(Quantizer, LowCrfNearLossless) {
  Rng rng(3);
  Block8 b{};
  for (auto& v : b) v = static_cast<float>(rng.uniform(-0.4, 0.4));
  const Quantizer q(0);
  const Block8 rec = q.dequantize(q.quantize(b, true), true);
  // Worst-case error is half the largest (highest-frequency) step.
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(rec[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 6e-3f);
}

TEST(Quantizer, Crf51DestroysDetail) {
  // At CRF 51 almost all AC coefficients should quantise to zero.
  Rng rng(4);
  Block8 b{};
  for (auto& v : b) v = static_cast<float>(rng.uniform(-0.05, 0.05));
  const Quantizer q(51);
  const auto levels = q.quantize(dct8x8(b), true);
  int nonzero = 0;
  for (int i = 1; i < 64; ++i)
    if (levels[static_cast<std::size_t>(i)] != 0) ++nonzero;
  EXPECT_LE(nonzero, 3);
}

TEST(Quantizer, CrfIsClamped) {
  EXPECT_EQ(Quantizer(99).crf(), 51);
  EXPECT_EQ(Quantizer(-3).crf(), 0);
}

// ---- Motion -------------------------------------------------------------------

TEST(Motion, FindsKnownTranslation) {
  // Reference has a feature; current frame has it shifted by (3, -2).
  // Smooth textured reference: the SAD surface then decreases toward the
  // true offset, which a greedy three-step search requires.
  Plane ref(64, 64), cur(64, 64);
  const ValueNoise noise(5);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      ref.at(x, y) = noise.fbm(static_cast<float>(x), static_cast<float>(y), 16.0f, 2);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      cur.at(x, y) = ref.at_clamped(x + 3, y - 2);
  const MotionVector mv = motion_search(cur, ref, 16, 16, 16, 8);
  EXPECT_EQ(mv.x, 3);
  EXPECT_EQ(mv.y, -2);
}

TEST(Motion, StaticBlockYieldsZeroVector) {
  Plane p(32, 32);
  Rng rng(6);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) p.at(x, y) = static_cast<float>(rng.uniform());
  const MotionVector mv = motion_search(p, p, 8, 8, 16, 8);
  EXPECT_EQ(mv.x, 0);
  EXPECT_EQ(mv.y, 0);
}

TEST(Motion, CompensationCopiesDisplacedBlock) {
  Plane ref(32, 32), dst(32, 32);
  ref.at(10, 12) = 0.9f;
  motion_compensate(ref, dst, 8, 8, 8, {2, 4});
  EXPECT_FLOAT_EQ(dst.at(8, 8), ref.at(10, 12));
}

TEST(Motion, BiPredictionAverages) {
  Plane a(16, 16), b(16, 16), dst(16, 16);
  a.fill(0.2f);
  b.fill(0.6f);
  motion_compensate_bi(a, {0, 0}, b, {0, 0}, dst, 0, 0, 16);
  EXPECT_FLOAT_EQ(dst.at(5, 5), 0.4f);
}

// ---- Block coder ---------------------------------------------------------------

TEST(BlockCoder, LevelsRoundTripInter) {
  Rng rng(7);
  Levels8 levels{};
  for (auto& v : levels) v = static_cast<std::int32_t>(rng.uniform_int(-20, 20));
  BitWriter w;
  write_levels(w, levels, nullptr);
  const auto bytes = w.finish();
  BitReader r(bytes);
  const Levels8 rec = read_levels(r, nullptr);
  EXPECT_EQ(levels, rec);
}

TEST(BlockCoder, LevelsRoundTripIntraDcPrediction) {
  Rng rng(8);
  std::int32_t dc_w = 0, dc_r = 0;
  BitWriter w;
  std::vector<Levels8> blocks;
  for (int b = 0; b < 10; ++b) {
    Levels8 levels{};
    for (auto& v : levels) v = static_cast<std::int32_t>(rng.uniform_int(-5, 5));
    blocks.push_back(levels);
    write_levels(w, levels, &dc_w);
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const auto& expected : blocks)
    EXPECT_EQ(read_levels(r, &dc_r), expected);
}

TEST(BlockCoder, SparseBlockCodesCompactly) {
  Levels8 zero{};
  BitWriter w;
  write_levels(w, zero, nullptr);
  // All-zero inter block = single EOB symbol = 13 bits.
  EXPECT_LE(w.bit_count(), 13u);
}

// ---- Frame coding ---------------------------------------------------------------

FrameYUV test_frame(int w, int h, std::uint64_t seed, double t = 0.0) {
  const auto video = make_genre_video(Genre::kDocumentary, seed, w, h, 4.0);
  return rgb_to_yuv420(video->frame(static_cast<int>(t * 30.0)));
}

TEST(FrameCoding, IntraRoundTripMatchesEncoderRecon) {
  const FrameYUV src = test_frame(64, 48, 11);
  const Quantizer q(23);
  BitWriter bw;
  const FrameYUV enc_recon = encode_intra_frame(src, q, bw);
  const auto payload = bw.finish();
  BitReader br(payload);
  const FrameYUV dec = decode_intra_frame(64, 48, q, br);
  // Decoder must reproduce the encoder's reconstruction *exactly* — the
  // closed-loop property that keeps P/B prediction drift-free.
  EXPECT_DOUBLE_EQ(psnr(enc_recon.y, dec.y), 100.0);
  EXPECT_DOUBLE_EQ(psnr(enc_recon.u, dec.u), 100.0);
  EXPECT_DOUBLE_EQ(psnr(enc_recon.v, dec.v), 100.0);
}

TEST(FrameCoding, IntraQualityTracksCrf) {
  const FrameYUV src = test_frame(64, 48, 12);
  auto quality_at = [&](int crf) {
    const Quantizer q(crf);
    BitWriter bw;
    const FrameYUV recon = encode_intra_frame(src, q, bw);
    return psnr(src.y, recon.y);
  };
  const double q10 = quality_at(10);
  const double q30 = quality_at(30);
  const double q51 = quality_at(51);
  EXPECT_GT(q10, q30);
  EXPECT_GT(q30, q51);
  EXPECT_GT(q10, 40.0);
  EXPECT_LT(q51, 30.0);
}

TEST(FrameCoding, IntraBitsTrackCrf) {
  const FrameYUV src = test_frame(64, 48, 13);
  auto bits_at = [&](int crf) {
    const Quantizer q(crf);
    BitWriter bw;
    encode_intra_frame(src, q, bw);
    return bw.bit_count();
  };
  EXPECT_GT(bits_at(10), bits_at(30));
  EXPECT_GT(bits_at(30), bits_at(51));
}

TEST(FrameCoding, PFrameRoundTripBitExact) {
  const FrameYUV f0 = test_frame(64, 48, 14, 0.0);
  const FrameYUV f1 = test_frame(64, 48, 14, 0.2);
  const Quantizer q(28);
  BitWriter bw_i;
  const FrameYUV ref = encode_intra_frame(f0, q, bw_i);
  BitWriter bw_p;
  const FrameYUV enc_recon = encode_p_frame(f1, ref, q, 8, bw_p);
  const auto payload = bw_p.finish();
  BitReader br(payload);
  const FrameYUV dec = decode_p_frame(ref, q, br);
  EXPECT_DOUBLE_EQ(psnr(enc_recon.y, dec.y), 100.0);
  EXPECT_DOUBLE_EQ(psnr(enc_recon.u, dec.u), 100.0);
}

TEST(FrameCoding, PFrameSmallerThanIFrame) {
  const FrameYUV f0 = test_frame(64, 48, 15, 0.0);
  const FrameYUV f1 = test_frame(64, 48, 15, 1.0 / 30.0);
  const Quantizer q(28);
  BitWriter bw_i;
  const FrameYUV ref = encode_intra_frame(f0, q, bw_i);
  BitWriter bw_i1;
  encode_intra_frame(f1, q, bw_i1);
  BitWriter bw_p;
  encode_p_frame(f1, ref, q, 8, bw_p);
  // The GOP premise: consecutive-frame P coding is much cheaper than intra.
  EXPECT_LT(bw_p.bit_count() * 3, bw_i1.bit_count());
}

TEST(FrameCoding, StaticPFrameIsNearlyAllSkip) {
  const FrameYUV f = test_frame(64, 48, 16);
  const Quantizer q(28);
  BitWriter bw_i;
  const FrameYUV ref = encode_intra_frame(f, q, bw_i);
  BitWriter bw_p;
  encode_p_frame(f, ref, q, 8, bw_p);
  // 12 MBs; all should skip (1 bit each), so the frame fits in a few bytes.
  EXPECT_LE(bw_p.bit_count(), 12u * 4u);
}

TEST(FrameCoding, BFrameRoundTripBitExact) {
  const FrameYUV f0 = test_frame(64, 48, 17, 0.0);
  const FrameYUV f1 = test_frame(64, 48, 17, 0.1);
  const FrameYUV f2 = test_frame(64, 48, 17, 0.2);
  const Quantizer q(28);
  BitWriter bw0, bw2, bwb;
  const FrameYUV r0 = encode_intra_frame(f0, q, bw0);
  const FrameYUV r2 = encode_p_frame(f2, r0, q, 8, bw2);
  const FrameYUV enc_recon = encode_b_frame(f1, r0, r2, q, 8, bwb);
  const auto payload = bwb.finish();
  BitReader br(payload);
  const FrameYUV dec = decode_b_frame(r0, r2, q, br);
  EXPECT_DOUBLE_EQ(psnr(enc_recon.y, dec.y), 100.0);
}

TEST(FrameCoding, RejectsUnalignedDimensions) {
  const FrameYUV src(60, 44);  // not multiples of 16
  const Quantizer q(28);
  BitWriter bw;
  EXPECT_THROW(encode_intra_frame(src, q, bw), std::invalid_argument);
}

// ---- Encoder / Decoder ------------------------------------------------------------

TEST(Codec, WholeVideoRoundTripDecodes) {
  const auto video = make_genre_video(Genre::kSports, 21, 64, 48, 2.0);
  CodecConfig cfg;
  cfg.crf = 28;
  const Encoder enc(cfg);
  const std::vector<SegmentPlan> segs{{0, 30}, {30, 30}};
  const EncodedVideo ev = enc.encode(*video, segs);
  EXPECT_EQ(ev.frame_count(), 60);
  EXPECT_EQ(ev.crf, 28);

  Decoder dec(64, 48, ev.crf);
  const auto frames = dec.decode_video(ev);
  ASSERT_EQ(frames.size(), 60u);
  // Decoded frames should resemble the source.
  for (int i = 0; i < 60; i += 13) {
    const FrameYUV src = rgb_to_yuv420(video->frame(i));
    EXPECT_GT(psnr(src.y, frames[static_cast<std::size_t>(i)].y), 25.0) << "frame " << i;
  }
}

TEST(Codec, SegmentsStartWithIFrames) {
  const auto video = make_genre_video(Genre::kNews, 22, 64, 48, 2.0);
  const Encoder enc(CodecConfig{});
  const EncodedVideo ev = enc.encode(*video, {{0, 30}, {30, 30}});
  for (const auto& seg : ev.segments) {
    ASSERT_FALSE(seg.frames.empty());
    EXPECT_EQ(seg.frames.front().type, FrameType::kI);
    EXPECT_EQ(seg.frames.front().display_index, 0);
  }
}

TEST(Codec, IntraPeriodInsertsExtraIFrames) {
  const auto video = make_genre_video(Genre::kNews, 23, 64, 48, 1.0);
  CodecConfig cfg;
  cfg.intra_period = 10;
  const Encoder enc(cfg);
  const EncodedVideo ev = enc.encode(*video, {{0, 30}});
  int i_frames = 0;
  for (const auto& f : ev.segments[0].frames)
    if (f.type == FrameType::kI) ++i_frames;
  EXPECT_EQ(i_frames, 3);  // display 0, 10, 20
}

TEST(Codec, BFramesProducedAndDecodable) {
  const auto video = make_genre_video(Genre::kSports, 24, 64, 48, 1.0);
  CodecConfig cfg;
  cfg.use_b_frames = true;
  const Encoder enc(cfg);
  const EncodedVideo ev = enc.encode(*video, {{0, 30}});
  int b_frames = 0;
  for (const auto& f : ev.segments[0].frames)
    if (f.type == FrameType::kB) ++b_frames;
  EXPECT_GT(b_frames, 10);
  // Last display frame must not be a B.
  for (const auto& f : ev.segments[0].frames) {
    if (f.display_index == 29) {
      EXPECT_NE(f.type, FrameType::kB);
    }
  }

  Decoder dec(64, 48, ev.crf);
  const auto frames = dec.decode_video(ev);
  ASSERT_EQ(frames.size(), 30u);
  const FrameYUV src = rgb_to_yuv420(video->frame(15));
  EXPECT_GT(psnr(src.y, frames[15].y), 22.0);
}

TEST(Codec, ReferenceHookFiresOncePerIFrame) {
  const auto video = make_genre_video(Genre::kAnimation, 25, 64, 48, 1.0);
  CodecConfig cfg;
  cfg.intra_period = 10;
  const Encoder enc(cfg);
  const EncodedVideo ev = enc.encode(*video, {{0, 30}});

  Decoder dec(64, 48, ev.crf);
  std::vector<int> hook_indices;
  dec.set_reference_hook([&](FrameYUV&, FrameType type, int display_index) {
    EXPECT_EQ(type, FrameType::kI);
    hook_indices.push_back(display_index);
  });
  dec.decode_video(ev);
  EXPECT_EQ(hook_indices, (std::vector<int>{0, 10, 20}));
}

TEST(Codec, HookEnhancementPropagatesToDependentFrames) {
  // Brighten the I frame in the DPB; dependent P frames (mostly skip/static
  // content) must inherit the change — the core dcSR client mechanism.
  const auto video = make_genre_video(Genre::kNews, 26, 64, 48, 1.0);
  const Encoder enc(CodecConfig{});
  const EncodedVideo ev = enc.encode(*video, {{0, 30}});

  Decoder plain(64, 48, ev.crf);
  const auto base = plain.decode_video(ev);

  Decoder hooked(64, 48, ev.crf);
  hooked.set_reference_hook([](FrameYUV& f, FrameType, int) {
    for (int y = 0; y < f.y.height(); ++y)
      for (int x = 0; x < f.y.width(); ++x)
        f.y.at(x, y) = std::min(1.0f, f.y.at(x, y) + 0.1f);
  });
  const auto enhanced = hooked.decode_video(ev);

  // A late frame in the segment should still carry most of the brightening.
  double diff = 0.0;
  const auto& a = base[20].y;
  const auto& b = enhanced[20].y;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) diff += b.at(x, y) - a.at(x, y);
  diff /= static_cast<double>(a.size());
  EXPECT_GT(diff, 0.05);
}

TEST(Codec, NonContiguousSegmentsRejected) {
  const auto video = make_genre_video(Genre::kGaming, 27, 64, 48, 1.0);
  const Encoder enc(CodecConfig{});
  EXPECT_THROW(enc.encode(*video, {{0, 10}, {15, 15}}), std::invalid_argument);
  EXPECT_THROW(enc.encode(*video, {{0, 10}}), std::invalid_argument);  // not covering
}

TEST(Codec, HigherCrfUsesFewerBytes) {
  const auto video = make_genre_video(Genre::kSports, 28, 64, 48, 1.0);
  auto bytes_at = [&](int crf) {
    CodecConfig cfg;
    cfg.crf = crf;
    return Encoder(cfg).encode(*video, {{0, 30}}).size_bytes();
  };
  EXPECT_GT(bytes_at(18), bytes_at(35));
  EXPECT_GT(bytes_at(35), bytes_at(51));
}

}  // namespace
}  // namespace dcsr::codec
