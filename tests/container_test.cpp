// Container format and corruption-robustness tests: a streamed .dcv payload
// must either round-trip exactly or fail loudly — never decode garbage.

#include <gtest/gtest.h>

#include "codec/container.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "video/genres.hpp"

namespace dcsr::codec {
namespace {

EncodedVideo sample_stream(std::uint64_t seed = 81, bool b_frames = false) {
  const auto video = make_genre_video(Genre::kSports, seed, 64, 48, 1.5, 20.0);
  CodecConfig cfg;
  cfg.crf = 30;
  cfg.use_b_frames = b_frames;
  return Encoder(cfg).encode(*video, {{0, 15}, {15, 15}});
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data, sizeof data), 0xcbf43926u);
  EXPECT_EQ(crc32(data, 0), 0u);
}

TEST(Container, RoundTripsExactly) {
  const EncodedVideo original = sample_stream();
  ByteWriter w;
  write_container(original, w);
  ByteReader r(w.bytes());
  const EncodedVideo parsed = read_container(r);

  EXPECT_EQ(parsed.width, original.width);
  EXPECT_EQ(parsed.height, original.height);
  EXPECT_EQ(parsed.crf, original.crf);
  EXPECT_DOUBLE_EQ(parsed.fps, original.fps);
  ASSERT_EQ(parsed.segments.size(), original.segments.size());
  for (std::size_t s = 0; s < parsed.segments.size(); ++s) {
    ASSERT_EQ(parsed.segments[s].frames.size(), original.segments[s].frames.size());
    EXPECT_EQ(parsed.segments[s].first_frame, original.segments[s].first_frame);
    for (std::size_t f = 0; f < parsed.segments[s].frames.size(); ++f) {
      EXPECT_EQ(parsed.segments[s].frames[f].type, original.segments[s].frames[f].type);
      EXPECT_EQ(parsed.segments[s].frames[f].payload,
                original.segments[s].frames[f].payload);
    }
  }
}

TEST(Container, ParsedStreamDecodesIdentically) {
  const EncodedVideo original = sample_stream(82, /*b_frames=*/true);
  ByteWriter w;
  write_container(original, w);
  ByteReader r(w.bytes());
  const EncodedVideo parsed = read_container(r);

  Decoder d1(64, 48, original.crf), d2(64, 48, parsed.crf);
  const auto a = d1.decode_video(original);
  const auto b = d2.decode_video(parsed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(psnr(a[i].y, b[i].y), 100.0);
}

TEST(Container, V1FilesRejectedWithClearError) {
  // A v1-era container (old magic) must fail at the version check with a
  // descriptive message, not limp into a CRC mismatch.
  const EncodedVideo original = sample_stream();
  ByteWriter w;
  write_container(original, w);
  auto bytes = w.bytes();
  // The magic is serialised LSB-first, so byte 0 carries the version digit:
  // '2' or '3' -> 0x31 ('1'). Encoder output is sliced, so the writer picks
  // v3 here.
  ASSERT_EQ(bytes[0], 0x33);
  bytes[0] = 0x31;
  ByteReader r(std::move(bytes));
  try {
    (void)read_container(r);
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("v1"), std::string::npos);
  }
}

TEST(Container, BadMagicRejected) {
  const EncodedVideo original = sample_stream();
  ByteWriter w;
  write_container(original, w);
  auto bytes = w.bytes();
  bytes[0] ^= 0xff;
  ByteReader r(std::move(bytes));
  EXPECT_THROW(read_container(r), std::invalid_argument);
}

TEST(Container, TruncationRejected) {
  const EncodedVideo original = sample_stream();
  ByteWriter w;
  write_container(original, w);
  auto bytes = w.bytes();
  bytes.resize(bytes.size() / 2);
  ByteReader r(std::move(bytes));
  EXPECT_ANY_THROW(read_container(r));
}

TEST(Container, PayloadCorruptionCaughtByCrc) {
  const EncodedVideo original = sample_stream();
  ByteWriter w;
  write_container(original, w);
  auto bytes = w.bytes();
  // Flip one bit deep inside a frame payload (past the header fields).
  bytes[bytes.size() / 2] ^= 0x10;
  ByteReader r(std::move(bytes));
  EXPECT_THROW(read_container(r), std::invalid_argument);
}

TEST(Container, ManyRandomSingleByteCorruptionsNeverDecodeGarbage) {
  // Property: for any single-byte corruption, read_container either throws
  // or (if the flip hit the CRC-protected area in a self-consistent way,
  // which CRC-32 prevents for single flips) returns the original bytes.
  const EncodedVideo original = sample_stream();
  ByteWriter w;
  write_container(original, w);
  const auto clean = w.bytes();

  Rng rng(7);
  int rejected = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    auto bytes = clean;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    ByteReader r(std::move(bytes));
    try {
      (void)read_container(r);
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  // CRC-32 detects all single-byte corruptions.
  EXPECT_EQ(rejected, kTrials);
}

TEST(Container, PerSegmentCrfSurvivesRoundTrip) {
  EncodedVideo original = sample_stream();
  original.segments[0].crf = 20;
  original.segments[1].crf = 45;
  ByteWriter w;
  write_container(original, w);
  ByteReader r(w.bytes());
  const EncodedVideo parsed = read_container(r);
  EXPECT_EQ(parsed.segments[0].crf, 20);
  EXPECT_EQ(parsed.segments[1].crf, 45);
}

TEST(Container, RejectsOutOfRangeSegmentCrf) {
  EncodedVideo original = sample_stream();
  original.segments[0].crf = 99;  // invalid
  ByteWriter w;
  write_container(original, w);
  ByteReader r(w.bytes());
  EXPECT_THROW(read_container(r), std::invalid_argument);
}

TEST(DecoderRobustness, CorruptPayloadThrowsNotCrashes) {
  // Even without the container's CRC, feeding a mangled frame payload to the
  // decoder must raise an exception (BitReader over-read / bad levels), not
  // corrupt memory. (Bit flips that only change pixel values are fine.)
  EncodedVideo stream = sample_stream(83);
  auto& payload = stream.segments[0].frames[0].payload;
  payload.resize(payload.size() / 3);  // truncate the I frame

  Decoder dec(64, 48, stream.crf);
  EXPECT_ANY_THROW(dec.decode_video(stream));
}

}  // namespace
}  // namespace dcsr::codec
