#include <gtest/gtest.h>

#include <cmath>

#include "image/convert.hpp"
#include "image/frame.hpp"
#include "image/metrics.hpp"
#include "image/resize.hpp"
#include "util/rng.hpp"

namespace dcsr {
namespace {

FrameRGB random_frame(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  FrameRGB f(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      f.r.at(x, y) = static_cast<float>(rng.uniform());
      f.g.at(x, y) = static_cast<float>(rng.uniform());
      f.b.at(x, y) = static_cast<float>(rng.uniform());
    }
  return f;
}

// Smooth frame: low-frequency content that chroma subsampling barely hurts.
FrameRGB smooth_frame(int w, int h) {
  FrameRGB f(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const float u = static_cast<float>(x) / static_cast<float>(w);
      const float v = static_cast<float>(y) / static_cast<float>(h);
      f.r.at(x, y) = 0.3f + 0.4f * u;
      f.g.at(x, y) = 0.5f - 0.2f * v;
      f.b.at(x, y) = 0.4f + 0.2f * u * v;
    }
  return f;
}

TEST(Plane, ClampedAccessReadsEdges) {
  Plane p(2, 2);
  p.at(0, 0) = 1.0f;
  p.at(1, 1) = 2.0f;
  EXPECT_EQ(p.at_clamped(-5, -5), 1.0f);
  EXPECT_EQ(p.at_clamped(7, 9), 2.0f);
}

TEST(Plane, Clamp01) {
  Plane p(2, 1);
  p.at(0, 0) = -0.5f;
  p.at(1, 0) = 1.5f;
  p.clamp01();
  EXPECT_EQ(p.at(0, 0), 0.0f);
  EXPECT_EQ(p.at(1, 0), 1.0f);
}

TEST(FrameTensor, RoundTrip) {
  const FrameRGB f = random_frame(6, 4, 1);
  const FrameRGB g = tensor_to_frame(frame_to_tensor(f));
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 6; ++x) {
      EXPECT_FLOAT_EQ(f.r.at(x, y), g.r.at(x, y));
      EXPECT_FLOAT_EQ(f.g.at(x, y), g.g.at(x, y));
      EXPECT_FLOAT_EQ(f.b.at(x, y), g.b.at(x, y));
    }
}

TEST(Convert, LumaWeightsSumToOne) {
  EXPECT_NEAR(rgb_to_luma(1.0f, 1.0f, 1.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(rgb_to_luma(0.0f, 0.0f, 0.0f), 0.0f, 1e-6f);
}

TEST(Convert, GrayRoundTripsExactly) {
  // Gray pixels have neutral chroma, so 4:2:0 subsampling is lossless.
  FrameRGB f(8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      const float v = static_cast<float>(x + y) / 14.0f;
      f.r.at(x, y) = f.g.at(x, y) = f.b.at(x, y) = v;
    }
  const FrameRGB g = yuv420_to_rgb(rgb_to_yuv420(f));
  EXPECT_GT(psnr(f, g), 45.0);
}

TEST(Convert, SmoothContentRoundTripsWell) {
  const FrameRGB f = smooth_frame(32, 32);
  const FrameRGB g = yuv420_to_rgb(rgb_to_yuv420(f));
  EXPECT_GT(psnr(f, g), 38.0);
}

TEST(Convert, ChromaPlanesAreHalfSize) {
  const FrameYUV yuv = rgb_to_yuv420(random_frame(16, 8, 2));
  EXPECT_EQ(yuv.y.width(), 16);
  EXPECT_EQ(yuv.u.width(), 8);
  EXPECT_EQ(yuv.u.height(), 4);
}

TEST(Convert, AllPlanesInUnitRange) {
  const FrameYUV yuv = rgb_to_yuv420(random_frame(16, 16, 3));
  auto check = [](const Plane& p) {
    for (int y = 0; y < p.height(); ++y)
      for (int x = 0; x < p.width(); ++x) {
        EXPECT_GE(p.at(x, y), 0.0f);
        EXPECT_LE(p.at(x, y), 1.0f);
      }
  };
  check(yuv.y);
  check(yuv.u);
  check(yuv.v);
}

TEST(Resize, BilinearPreservesConstant) {
  Plane p(8, 8);
  p.fill(0.7f);
  const Plane q = resize_bilinear(p, 5, 11);
  for (int y = 0; y < q.height(); ++y)
    for (int x = 0; x < q.width(); ++x) EXPECT_NEAR(q.at(x, y), 0.7f, 1e-6f);
}

TEST(Resize, BicubicPreservesConstant) {
  Plane p(8, 8);
  p.fill(0.3f);
  const Plane q = resize_bicubic(p, 16, 16);
  for (int y = 0; y < q.height(); ++y)
    for (int x = 0; x < q.width(); ++x) EXPECT_NEAR(q.at(x, y), 0.3f, 1e-5f);
}

TEST(Resize, UpThenDownApproximatesIdentityOnSmoothContent) {
  const FrameRGB f = smooth_frame(16, 16);
  const FrameRGB up = resize(f, 32, 32);
  const FrameRGB back = resize(up, 16, 16);
  EXPECT_GT(psnr(f, back), 40.0);
}

TEST(Resize, BoxDownscaleAveragesBlocks) {
  Plane p(4, 4);
  p.at(0, 0) = 1.0f;  // others zero in the top-left 2x2 block
  const Plane q = downscale_box(p, 2);
  EXPECT_EQ(q.width(), 2);
  EXPECT_FLOAT_EQ(q.at(0, 0), 0.25f);
  EXPECT_FLOAT_EQ(q.at(1, 1), 0.0f);
}

TEST(Resize, BoxDownscaleRejectsNonDivisible) {
  EXPECT_THROW(downscale_box(Plane(5, 4), 2), std::invalid_argument);
}

TEST(Metrics, PsnrIdenticalIsCapped) {
  const FrameRGB f = random_frame(8, 8, 4);
  EXPECT_DOUBLE_EQ(psnr(f, f), 100.0);
}

TEST(Metrics, PsnrKnownValue) {
  Plane a(4, 4), b(4, 4);
  b.fill(0.1f);  // MSE = 0.01 -> PSNR = 20 dB
  EXPECT_NEAR(psnr(a, b), 20.0, 1e-5);
}

TEST(Metrics, PsnrDecreasesWithNoise) {
  const FrameRGB f = smooth_frame(16, 16);
  Rng rng(5);
  FrameRGB n1 = f, n2 = f;
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) {
      n1.r.at(x, y) += static_cast<float>(rng.normal(0, 0.01));
      n2.r.at(x, y) += static_cast<float>(rng.normal(0, 0.1));
    }
  EXPECT_GT(psnr(f, n1), psnr(f, n2));
}

TEST(Metrics, SsimIdenticalIsOne) {
  const FrameRGB f = random_frame(16, 16, 6);
  EXPECT_NEAR(ssim(f, f), 1.0, 1e-9);
}

TEST(Metrics, SsimOrdersDegradationsLikePsnr) {
  const FrameRGB f = smooth_frame(32, 32);
  Rng rng(7);
  FrameRGB mild = f, severe = f;
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) {
      const auto e1 = static_cast<float>(rng.normal(0, 0.02));
      const auto e2 = static_cast<float>(rng.normal(0, 0.2));
      mild.r.at(x, y) = std::clamp(mild.r.at(x, y) + e1, 0.0f, 1.0f);
      severe.r.at(x, y) = std::clamp(severe.r.at(x, y) + e2, 0.0f, 1.0f);
    }
  EXPECT_GT(ssim(f, mild), ssim(f, severe));
  EXPECT_LT(ssim(f, severe), 1.0);
}

TEST(Metrics, MismatchedSizesThrow) {
  EXPECT_THROW(psnr(Plane(4, 4), Plane(5, 4)), std::invalid_argument);
}

TEST(Metrics, MsSsimIdenticalIsOne) {
  const FrameRGB f = random_frame(64, 64, 8);
  EXPECT_NEAR(ms_ssim(f, f), 1.0, 1e-9);
}

TEST(Metrics, MsSsimOrdersDegradations) {
  const FrameRGB f = smooth_frame(64, 64);
  Rng rng(9);
  FrameRGB mild = f, severe = f;
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      mild.g.at(x, y) = std::clamp(
          mild.g.at(x, y) + static_cast<float>(rng.normal(0, 0.02)), 0.0f, 1.0f);
      severe.g.at(x, y) = std::clamp(
          severe.g.at(x, y) + static_cast<float>(rng.normal(0, 0.2)), 0.0f, 1.0f);
    }
  EXPECT_GT(ms_ssim(f, mild), ms_ssim(f, severe));
}

TEST(Metrics, MsSsimSingleScaleMatchesSsim) {
  const FrameRGB a = smooth_frame(32, 32);
  const FrameRGB b = random_frame(32, 32, 10);
  EXPECT_NEAR(ms_ssim(a.r, b.r, 1), std::max(0.0, ssim(a.r, b.r)), 1e-9);
}

TEST(Metrics, MsSsimRejectsTinyPlanes) {
  EXPECT_THROW(ms_ssim(Plane(12, 12), Plane(12, 12), 3), std::invalid_argument);
  EXPECT_THROW(ms_ssim(Plane(32, 32), Plane(32, 32), 0), std::invalid_argument);
}

TEST(Metrics, PsnrLumaUsesOnlyY) {
  FrameYUV a(16, 16), b(16, 16);
  b.u.fill(0.9f);  // chroma-only difference
  EXPECT_DOUBLE_EQ(psnr_luma(a, b), 100.0);
  b.y.fill(0.5f);
  EXPECT_LT(psnr_luma(a, b), 100.0);
}

}  // namespace
}  // namespace dcsr
