#include <gtest/gtest.h>

#include "image/metrics.hpp"
#include "video/genres.hpp"
#include "video/noise.hpp"
#include "video/scene.hpp"
#include "video/source.hpp"

namespace dcsr {
namespace {

TEST(ValueNoise, DeterministicAndBounded) {
  ValueNoise n(42);
  for (float y = 0; y < 20; y += 3.7f)
    for (float x = 0; x < 20; x += 2.3f) {
      const float a = n.sample(x, y, 8.0f);
      const float b = n.sample(x, y, 8.0f);
      EXPECT_EQ(a, b);
      EXPECT_GE(a, 0.0f);
      EXPECT_LE(a, 1.0f);
    }
}

TEST(ValueNoise, DifferentSeedsDiffer) {
  ValueNoise a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i)
    if (a.sample(static_cast<float>(i) * 3.1f, 0.0f, 4.0f) !=
        b.sample(static_cast<float>(i) * 3.1f, 0.0f, 4.0f))
      ++diff;
  EXPECT_GT(diff, 12);
}

TEST(ValueNoise, FbmSmootherThanBase) {
  // fbm averages octaves, so neighbouring samples should differ less than a
  // single fine octave's neighbouring samples.
  ValueNoise n(3);
  double d_base = 0.0, d_fbm = 0.0;
  for (int i = 0; i < 256; ++i) {
    const float x = static_cast<float>(i);
    d_base += std::abs(n.sample(x, 0, 2.0f) - n.sample(x + 1, 0, 2.0f));
    d_fbm += std::abs(n.fbm(x, 0, 32.0f, 4) - n.fbm(x + 1, 0, 32.0f, 4));
  }
  EXPECT_LT(d_fbm, d_base);
}

TEST(Scene, RenderIsDeterministic) {
  Rng rng(5);
  const SceneSpec spec = random_scene(rng, 1.0f, 0.5f);
  const FrameRGB a = render_scene(spec, 1.25, 64, 48);
  const FrameRGB b = render_scene(spec, 1.25, 64, 48);
  EXPECT_DOUBLE_EQ(psnr(a, b), 100.0);
}

TEST(Scene, TimeChangesContentWhenInMotion) {
  Rng rng(6);
  SceneSpec spec = random_scene(rng, 2.0f, 0.5f);
  spec.pan_vx = 0.1f;  // force motion
  const FrameRGB a = render_scene(spec, 0.0, 64, 48);
  const FrameRGB b = render_scene(spec, 2.0, 64, 48);
  EXPECT_LT(psnr(a, b), 60.0);
}

TEST(Scene, PixelsAreInRange) {
  Rng rng(7);
  const SceneSpec spec = random_scene(rng, 1.0f, 1.0f);
  const FrameRGB f = render_scene(spec, 0.5, 32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) {
      EXPECT_GE(f.r.at(x, y), 0.0f);
      EXPECT_LE(f.r.at(x, y), 1.0f);
    }
}

TEST(SyntheticVideo, FrameCountMatchesShots) {
  Rng rng(8);
  std::vector<SceneSpec> scenes{random_scene(rng, 1, 0.5f), random_scene(rng, 1, 0.5f)};
  std::vector<Shot> shots{{0, 10, 0.0}, {1, 5, 0.0}, {0, 7, 3.0}};
  SyntheticVideo v("test", scenes, shots, 32, 32, 30.0);
  EXPECT_EQ(v.frame_count(), 22);
  EXPECT_EQ(v.shot_of_frame(0), 0);
  EXPECT_EQ(v.shot_of_frame(9), 0);
  EXPECT_EQ(v.shot_of_frame(10), 1);
  EXPECT_EQ(v.shot_of_frame(15), 2);
  EXPECT_EQ(v.scene_of_frame(15), 0);
  EXPECT_THROW(v.frame(22), std::out_of_range);
}

TEST(SyntheticVideo, RecurringSceneLooksAlike) {
  // Two shots of the same scene should be far more similar to each other
  // than to a shot of a different scene — the property clustering exploits.
  Rng rng(9);
  std::vector<SceneSpec> scenes{random_scene(rng, 0.2f, 0.5f),
                                random_scene(rng, 0.2f, 0.5f)};
  std::vector<Shot> shots{{0, 5, 0.0}, {1, 5, 0.0}, {0, 5, 1.0}};
  SyntheticVideo v("test", scenes, shots, 64, 48, 30.0);
  const FrameRGB first = v.frame(0);
  const FrameRGB other_scene = v.frame(5);
  const FrameRGB recurrence = v.frame(10);
  EXPECT_GT(psnr(first, recurrence), psnr(first, other_scene));
}

TEST(SyntheticVideo, RejectsBadShotLists) {
  Rng rng(10);
  std::vector<SceneSpec> scenes{random_scene(rng, 1, 0.5f)};
  EXPECT_THROW(SyntheticVideo("x", scenes, {}, 32, 32, 30.0), std::invalid_argument);
  EXPECT_THROW(SyntheticVideo("x", scenes, {{5, 10, 0.0}}, 32, 32, 30.0),
               std::invalid_argument);
  EXPECT_THROW(SyntheticVideo("x", scenes, {{0, 0, 0.0}}, 32, 32, 30.0),
               std::invalid_argument);
}

TEST(Genres, AllSixGenresBuild) {
  for (const Genre g : all_genres()) {
    const auto v = make_genre_video(g, 1, 64, 48, 10.0, 30.0);
    EXPECT_EQ(v->frame_count(), 300) << genre_name(g);
    EXPECT_GE(v->shots().size(), 2u) << genre_name(g);
    // Every shot must reference a valid scene; rendering must not throw.
    const FrameRGB f = v->frame(v->frame_count() - 1);
    EXPECT_EQ(f.width(), 64);
  }
}

TEST(Genres, DeterministicAcrossCalls) {
  const auto a = make_genre_video(Genre::kSports, 7, 32, 32, 5.0);
  const auto b = make_genre_video(Genre::kSports, 7, 32, 32, 5.0);
  ASSERT_EQ(a->frame_count(), b->frame_count());
  EXPECT_DOUBLE_EQ(psnr(a->frame(37), b->frame(37)), 100.0);
}

TEST(Genres, NewsRecursMoreThanDocumentary) {
  // Count repeated-scene shots; news should revisit scenes far more often.
  auto count_recurrences = [](Genre g) {
    const auto v = make_genre_video(g, 3, 32, 32, 120.0);
    std::vector<bool> seen(v->scene_count(), false);
    int rec = 0;
    for (const auto& shot : v->shots()) {
      if (seen[static_cast<std::size_t>(shot.scene_id)]) ++rec;
      seen[static_cast<std::size_t>(shot.scene_id)] = true;
    }
    return rec;
  };
  EXPECT_GT(count_recurrences(Genre::kNews),
            count_recurrences(Genre::kDocumentary));
}

TEST(Genres, ProfilesHaveSaneRanges) {
  for (const Genre g : all_genres()) {
    const GenreProfile p = profile_for(g);
    EXPECT_GT(p.scene_library_size, 0);
    EXPECT_GT(p.mean_shot_seconds, 0.0);
    EXPECT_GE(p.recurrence_prob, 0.0);
    EXPECT_LE(p.recurrence_prob, 1.0);
  }
}

}  // namespace
}  // namespace dcsr
