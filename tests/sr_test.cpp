#include <cstring>

#include <gtest/gtest.h>

#include "codec/bits.hpp"
#include "codec/frame_coding.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "image/resize.hpp"
#include "nn/serialize.hpp"
#include "nn/shape_ops.hpp"
#include "sr/edsr.hpp"
#include "sr/min_model.hpp"
#include "sr/model_zoo.hpp"
#include "sr/trainer.hpp"
#include "tensor/workspace.hpp"
#include "util/alloc_check.hpp"
#include "util/thread_pool.hpp"
#include "video/scene.hpp"

namespace dcsr::sr {
namespace {

FrameRGB textured_frame(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  SceneSpec spec = random_scene(rng, 0.0f, 0.8f);
  return render_scene(spec, 0.0, w, h);
}

// Degrades a frame (blur via down/up resize) to make (lo, hi) SR pairs.
TrainSample degraded_pair(const FrameRGB& hi) {
  TrainSample s;
  s.hi = hi;
  const FrameRGB small = resize(hi, hi.width() / 2, hi.height() / 2);
  s.lo = resize(small, hi.width(), hi.height());
  return s;
}

TEST(Edsr, Scale1PreservesShape) {
  Rng rng(1);
  Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  const Tensor y = model.forward(Tensor({1, 3, 16, 16}));
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 3, 16, 16}));
}

TEST(Edsr, Scale2DoublesResolution) {
  Rng rng(2);
  Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 2}, rng);
  const Tensor y = model.forward(Tensor({1, 3, 8, 8}));
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 3, 16, 16}));
}

TEST(Edsr, Scale4QuadruplesResolution) {
  Rng rng(3);
  Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 4}, rng);
  const Tensor y = model.forward(Tensor({1, 3, 4, 4}));
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 3, 16, 16}));
}

TEST(Edsr, UntrainedScale2IsABilinearUpsampler) {
  // Zero-initialised tail + bilinear input skip: the fresh model must act
  // as plain bilinear upsampling (the trainable part contributes zero).
  Rng rng(40);
  Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 2}, rng);
  nn::BilinearUpsample up(2);
  const Tensor x = Tensor::randn({1, 3, 6, 8}, rng, 0.2f);
  const Tensor a = model.forward(x);
  const Tensor b = up.forward(x);
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Edsr, Scale2GradCheck) {
  Rng rng(41);
  Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 2}, rng);
  // Perturb the tail away from zero so all paths carry gradient.
  for (nn::Param* p : model.params())
    for (std::size_t i = 0; i < p->value.size(); ++i)
      p->value[i] += static_cast<float>(rng.normal(0.0, 0.05));

  const Tensor x = Tensor::randn({1, 3, 5, 5}, rng, 0.3f);
  Tensor out = model.forward(x);
  const Tensor w = Tensor::randn(out.shape(), rng);
  model.zero_grad();
  const Tensor gin = model.backward(w);

  auto objective = [&](const Tensor& t) {
    const Tensor y = model.forward(t);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) s += y[i] * w[i];
    return s;
  };
  constexpr float kEps = 1e-3f;
  for (std::size_t probe = 0; probe < 8; ++probe) {
    const std::size_t i = (probe * 37) % x.size();
    Tensor xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    const double numeric = (objective(xp) - objective(xm)) / (2.0 * kEps);
    EXPECT_NEAR(gin[i], numeric, 2e-2 * std::max(1.0, std::abs(numeric)));
  }
}

TEST(Edsr, UnsupportedScaleThrows) {
  Rng rng(4);
  EXPECT_THROW(Edsr({.n_filters = 4, .n_resblocks = 1, .scale = 5}, rng),
               std::invalid_argument);
  EXPECT_THROW(Edsr({.n_filters = 0, .n_resblocks = 1}, rng), std::invalid_argument);
}

TEST(Edsr, ParamCountMatchesClosedForm) {
  for (const EdsrConfig cfg : {EdsrConfig{.n_filters = 8, .n_resblocks = 3, .scale = 1},
                               EdsrConfig{.n_filters = 16, .n_resblocks = 2, .scale = 2},
                               EdsrConfig{.n_filters = 8, .n_resblocks = 1, .scale = 4},
                               EdsrConfig{.n_filters = 4, .n_resblocks = 2, .scale = 3}}) {
    Rng rng(5);
    Edsr model(cfg, rng);
    EXPECT_EQ(model.param_count(), edsr_param_count(cfg)) << config_name(cfg);
  }
}

TEST(Edsr, ModelBytesMatchSerializedSize) {
  for (const EdsrConfig cfg : {EdsrConfig{.n_filters = 8, .n_resblocks = 3, .scale = 1},
                               EdsrConfig{.n_filters = 16, .n_resblocks = 4, .scale = 2}}) {
    Rng rng(6);
    Edsr model(cfg, rng);
    EXPECT_EQ(nn::serialized_size(model), edsr_model_bytes(cfg)) << config_name(cfg);
  }
}

TEST(Edsr, FlopsScaleWithArchitecture) {
  const EdsrConfig small{.n_filters = 8, .n_resblocks = 4};
  const EdsrConfig deep{.n_filters = 8, .n_resblocks = 8};
  const EdsrConfig wide{.n_filters = 16, .n_resblocks = 4};
  EXPECT_GT(edsr_flops(deep, 64, 64), edsr_flops(small, 64, 64));
  EXPECT_GT(edsr_flops(wide, 64, 64), edsr_flops(small, 64, 64));
  // Doubling width quadruples body FLOPs (f^2 scaling).
  EXPECT_GT(edsr_flops(wide, 64, 64), 3 * edsr_flops(small, 64, 64) / 2);
  // FLOPs are linear in pixel count.
  EXPECT_EQ(edsr_flops(small, 64, 64) * 4, edsr_flops(small, 128, 128));
}

TEST(Edsr, GradCheckTinyModel) {
  Rng rng(7);
  Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng);
  const Tensor x = Tensor::randn({1, 3, 6, 6}, rng, 0.3f);
  Tensor out = model.forward(x);
  const Tensor w = Tensor::randn(out.shape(), rng);
  model.zero_grad();
  const Tensor gin = model.backward(w);

  auto objective = [&](const Tensor& t) {
    const Tensor y = model.forward(t);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) s += y[i] * w[i];
    return s;
  };
  constexpr float kEps = 1e-3f;
  for (std::size_t probe = 0; probe < 10; ++probe) {
    const std::size_t i = (probe * 101) % x.size();
    Tensor xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    const double numeric = (objective(xp) - objective(xm)) / (2.0 * kEps);
    EXPECT_NEAR(gin[i], numeric, 2e-2 * std::max(1.0, std::abs(numeric)));
  }
}

TEST(Edsr, EnhanceRoundTripsThroughFrames) {
  Rng rng(8);
  Edsr model({.n_filters = 4, .n_resblocks = 1}, rng);
  const FrameRGB f = textured_frame(16, 16, 9);
  const FrameRGB out = model.enhance(f);
  EXPECT_EQ(out.width(), 16);
  EXPECT_EQ(out.height(), 16);
}

TEST(Trainer, MicroModelLearnsToEnhance) {
  // Train a micro enhancement model on the real dcSR task: undoing CRF-51
  // quantisation artefacts on the I frames it will later enhance (training
  // and test sets are identical by design — §A.1's memorisation argument).
  Rng rng(10);
  codec::Quantizer q(51);
  std::vector<TrainSample> pairs;
  for (const std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    TrainSample p;
    p.hi = textured_frame(48, 48, seed);
    codec::BitWriter bw;
    const FrameYUV recon = codec::encode_intra_frame(rgb_to_yuv420(p.hi), q, bw);
    p.lo = yuv420_to_rgb(recon);
    pairs.push_back(std::move(p));
  }
  double degraded_psnr = 0.0;
  for (const auto& p : pairs) degraded_psnr += psnr(p.lo, p.hi);
  degraded_psnr /= 3.0;

  Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  TrainOptions opts;
  opts.iterations = 400;
  opts.patch_size = 24;
  opts.batch_size = 4;
  opts.lr = 3e-3;
  const TrainStats stats = train_sr_model(model, pairs, opts, rng);
  EXPECT_LT(stats.final_loss, stats.loss_curve.front());

  const double enhanced_psnr = evaluate_psnr(model, pairs);
  EXPECT_GT(enhanced_psnr, degraded_psnr + 0.7);
}

TEST(Trainer, LossCurveHasRequestedLength) {
  Rng rng(12);
  const TrainSample pair = degraded_pair(textured_frame(32, 32, 13));
  Edsr model({.n_filters = 4, .n_resblocks = 1}, rng);
  TrainOptions opts;
  opts.iterations = 15;
  opts.patch_size = 16;
  const TrainStats stats = train_sr_model(model, {pair}, opts, rng);
  EXPECT_EQ(stats.loss_curve.size(), 15u);
  EXPECT_GT(stats.train_flops, 0u);
}

TEST(Trainer, AugmentationStillConverges) {
  // Dihedral augmentation must keep (lo, hi) patches aligned; if a flip
  // were applied inconsistently the loss would not drop below the input
  // error. Quick convergence check with augment on.
  Rng rng(44);
  codec::Quantizer q(51);
  TrainSample p;
  p.hi = textured_frame(48, 48, 45);
  codec::BitWriter bw;
  const FrameYUV recon = codec::encode_intra_frame(rgb_to_yuv420(p.hi), q, bw);
  p.lo = yuv420_to_rgb(recon);

  Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  TrainOptions opts;
  opts.iterations = 200;
  opts.patch_size = 24;
  opts.batch_size = 4;
  opts.lr = 3e-3;
  opts.augment = true;
  const TrainStats stats = train_sr_model(model, {p}, opts, rng);
  EXPECT_LT(stats.final_loss, stats.loss_curve.front() * 0.9);
  EXPECT_GT(evaluate_psnr(model, {p}), psnr(p.lo, p.hi) - 0.2);
}

TEST(Trainer, BitIdenticalAcrossThreadCounts) {
  // The deterministic-reduction contract: training must produce the exact
  // same floats no matter how many threads the pool runs. Conv batch items
  // parallelise over disjoint outputs and weight/bias gradients reduce in
  // item order, so DCSR_THREADS=1 and DCSR_THREADS=4 may differ only in
  // wall-clock, never in results.
  const int saved_threads = default_thread_count();
  const auto train_once = [](int threads) {
    set_default_pool_threads(threads);
    Rng rng(77);
    const TrainSample pair = degraded_pair(textured_frame(32, 32, 78));
    Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng);
    TrainOptions opts;
    opts.iterations = 25;
    opts.patch_size = 16;
    opts.batch_size = 2;
    return train_sr_model(model, {pair}, opts, rng);
  };
  const TrainStats serial = train_once(1);
  const TrainStats threaded = train_once(4);
  set_default_pool_threads(saved_threads);

  EXPECT_EQ(serial.final_loss, threaded.final_loss);
  ASSERT_EQ(serial.loss_curve.size(), threaded.loss_curve.size());
  for (std::size_t i = 0; i < serial.loss_curve.size(); ++i)
    EXPECT_EQ(serial.loss_curve[i], threaded.loss_curve[i]) << "iteration " << i;
}

TEST(Edsr, InferMatchesForwardBitwise) {
  Rng rng(91);
  Edsr model({.n_filters = 6, .n_resblocks = 2, .scale = 2}, rng);
  const Tensor x = Tensor::randn({1, 3, 12, 10}, rng, 0.2f);
  const Tensor from_forward = model.forward(x);
  const Tensor from_infer = model.infer(x);
  ASSERT_EQ(from_forward.shape(), from_infer.shape());
  for (std::size_t i = 0; i < from_forward.size(); ++i)
    EXPECT_EQ(from_forward[i], from_infer[i]) << "element " << i;
}

TEST(Edsr, InferMatchesForwardBitwiseAcrossThreadCounts) {
  // The workspace-backed infer path must stay on the PR-1 contract: the same
  // floats as forward() regardless of DCSR_THREADS.
  const int saved = default_thread_count();
  Rng rng(97);
  Edsr model({.n_filters = 6, .n_resblocks = 2, .scale = 2}, rng);
  const Tensor x = Tensor::randn({1, 3, 12, 10}, rng, 0.2f);
  const Tensor ref = model.forward(x);
  for (const int threads : {1, 4}) {
    set_default_pool_threads(threads);
    const Tensor y = model.infer(x);
    ASSERT_EQ(ref.shape(), y.shape());
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(ref[i], y[i]) << "threads=" << threads << " element " << i;
  }
  set_default_pool_threads(saved);
}

TEST(Edsr, SteadyStateEnhanceHasZeroWorkspaceMisses) {
  // The tentpole claim: after one warm-up frame, playback-style enhance runs
  // entirely out of this thread's workspace — every checkout is a hit, no
  // allocator traffic, and every buffer goes home between frames.
  Rng rng(95);
  const Edsr model({.n_filters = 4, .n_resblocks = 2, .scale = 1}, rng);
  const Edsr model2x({.n_filters = 4, .n_resblocks = 1, .scale = 2}, rng);
  const FrameRGB frame = textured_frame(24, 16, 96);
  FrameRGB out, out2x;
  model.enhance_into(frame, out);      // warm-up: misses allowed here only
  model2x.enhance_into(frame, out2x);  // (scale-2 exercises the upsampler)

  Workspace& ws = Workspace::local();
  const Workspace::Stats warm = ws.stats();
  for (int i = 0; i < 10; ++i) {
    model.enhance_into(frame, out);
    model2x.enhance_into(frame, out2x);
  }
  const Workspace::Stats after = ws.stats();
  EXPECT_EQ(after.misses, warm.misses)
      << "a warm workspace must serve every steady-state checkout";
  EXPECT_EQ(after.bytes_allocated, warm.bytes_allocated);
  EXPECT_EQ(after.outstanding, 0u) << "all checkouts return between frames";
  EXPECT_EQ(after.cached, warm.cached)
      << "zero-miss frames leave the free list exactly as found";
  EXPECT_GT(after.hits, warm.hits);
}

#if DCSR_ALLOC_CHECK
TEST(Edsr, SteadyStateEnhanceIsHeapSilent) {
  // Stronger than zero workspace misses: with the interposer compiled in,
  // the raw per-thread allocation counter must not move at all across warm
  // steady-state frames — not "amortised low", literally zero mallocs.
  Rng rng(95);
  const Edsr model({.n_filters = 8, .n_resblocks = 2, .scale = 1}, rng);
  const FrameRGB frame = textured_frame(24, 16, 96);
  FrameRGB out;
  // Warm everything the first frames lazily build: the thread pool, the
  // SIMD dispatch table, the workspace free list, the output plane.
  for (int i = 0; i < 3; ++i) model.enhance_into(frame, out);

  const AllocStats warm = thread_alloc_stats();
  for (int i = 0; i < 10; ++i) model.enhance_into(frame, out);
  const AllocStats after = thread_alloc_stats();
  EXPECT_EQ(after.allocs - warm.allocs, 0u)
      << "steady-state enhance must not touch the heap";
  EXPECT_EQ(after.frees - warm.frees, 0u);
  EXPECT_EQ(after.bytes - warm.bytes, 0u);
}
#endif

// Batched enhance must be bit-identical to per-frame enhance — batching is
// how the fleet driver coalesces concurrent I-frame SR requests, and it may
// amortise cost but never change a single float.
void expect_batch_enhance_matches_single(const Edsr& model, int w, int h,
                                         int n, std::uint64_t seed) {
  std::vector<FrameRGB> frames;
  for (int i = 0; i < n; ++i)
    frames.push_back(textured_frame(w, h, seed + static_cast<std::uint64_t>(i)));

  std::vector<const FrameRGB*> in_ptrs;
  std::vector<FrameRGB> batch_outs(static_cast<std::size_t>(n));
  std::vector<FrameRGB*> out_ptrs;
  for (int i = 0; i < n; ++i) {
    in_ptrs.push_back(&frames[static_cast<std::size_t>(i)]);
    out_ptrs.push_back(&batch_outs[static_cast<std::size_t>(i)]);
  }
  model.enhance_batch_into(in_ptrs.data(), out_ptrs.data(), n);

  for (int i = 0; i < n; ++i) {
    FrameRGB solo;
    model.enhance_into(frames[static_cast<std::size_t>(i)], solo);
    const Plane* a[3] = {&solo.r, &solo.g, &solo.b};
    const Plane* b[3] = {&batch_outs[static_cast<std::size_t>(i)].r,
                         &batch_outs[static_cast<std::size_t>(i)].g,
                         &batch_outs[static_cast<std::size_t>(i)].b};
    for (int c = 0; c < 3; ++c) {
      ASSERT_TRUE(a[c]->same_size(*b[c]));
      EXPECT_EQ(std::memcmp(a[c]->data(), b[c]->data(),
                            a[c]->size() * sizeof(float)),
                0)
          << "batch item " << i << " plane " << c;
    }
  }
}

TEST(Edsr, EnhanceBatchMatchesSingleBitwiseScale1) {
  Rng rng(181);
  const Edsr model({.n_filters = 4, .n_resblocks = 2, .scale = 1}, rng);
  expect_batch_enhance_matches_single(model, 20, 16, 4, 300);
}

TEST(Edsr, EnhanceBatchMatchesSingleBitwiseScale2) {
  Rng rng(182);
  const Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 2}, rng);
  expect_batch_enhance_matches_single(model, 12, 10, 3, 320);
}

TEST(Edsr, EnhanceBatchOfOneMatchesEnhanceInto) {
  Rng rng(183);
  const Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng);
  expect_batch_enhance_matches_single(model, 16, 16, 1, 340);
}

TEST(Edsr, EnhanceBatchRejectsBadBatches) {
  Rng rng(184);
  const Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng);
  const FrameRGB a = textured_frame(16, 16, 350);
  const FrameRGB b = textured_frame(20, 16, 351);  // mixed geometry
  FrameRGB out_a, out_b;
  const FrameRGB* ins[2] = {&a, &b};
  FrameRGB* outs[2] = {&out_a, &out_b};
  EXPECT_THROW(model.enhance_batch_into(ins, outs, 0), std::invalid_argument);
  EXPECT_THROW(model.enhance_batch_into(ins, outs, 2), std::invalid_argument);
  const FrameRGB empty;
  const FrameRGB* ins_empty[1] = {&empty};
  EXPECT_THROW(model.enhance_batch_into(ins_empty, outs, 1),
               std::invalid_argument);
}

#if DCSR_ALLOC_CHECK
TEST(Edsr, SteadyStateEnhanceBatchIsHeapSilent) {
  // The batched path inherits the single-frame contract: one warm workspace
  // checkout for the whole batch, zero allocator traffic per steady-state
  // batch.
  Rng rng(185);
  const Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng);
  std::vector<FrameRGB> frames;
  for (int i = 0; i < 3; ++i)
    frames.push_back(textured_frame(16, 12, 360 + static_cast<std::uint64_t>(i)));
  std::vector<FrameRGB> outs(3);
  const FrameRGB* ins[3] = {&frames[0], &frames[1], &frames[2]};
  FrameRGB* out_ptrs[3] = {&outs[0], &outs[1], &outs[2]};
  for (int i = 0; i < 3; ++i) model.enhance_batch_into(ins, out_ptrs, 3);

  const AllocStats warm = thread_alloc_stats();
  for (int i = 0; i < 10; ++i) model.enhance_batch_into(ins, out_ptrs, 3);
  const AllocStats after = thread_alloc_stats();
  EXPECT_EQ(after.allocs - warm.allocs, 0u)
      << "steady-state batched enhance must not touch the heap";
  EXPECT_EQ(after.frees - warm.frees, 0u);
}
#endif

TEST(Edsr, EnhanceIsConstAndPreservesTrainingMode) {
  Rng rng(92);
  Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng);
  model.set_training(true);
  const Edsr& view = model;  // enhance must be callable through const
  const FrameRGB f = textured_frame(16, 16, 93);
  const FrameRGB out = view.enhance(f);
  EXPECT_EQ(out.width(), 16);
  EXPECT_TRUE(model.training()) << "enhance must not flip train/eval state";
}

TEST(Edsr, ConcurrentEnhanceOnSharedModelMatchesSerial) {
  // One trained-model instance, many frames in flight: the client's play_nas
  // fan-out. Frame-for-frame the concurrent results must be bit-identical to
  // enhancing serially.
  Rng rng(94);
  const Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng);
  std::vector<FrameRGB> frames;
  for (int i = 0; i < 6; ++i)
    frames.push_back(textured_frame(20, 14, 100 + static_cast<std::uint64_t>(i)));

  std::vector<FrameRGB> serial;
  for (const FrameRGB& f : frames) serial.push_back(model.enhance(f));

  const int saved_threads = default_thread_count();
  set_default_pool_threads(4);
  std::vector<FrameRGB> concurrent(frames.size());
  parallel_for(0, static_cast<std::int64_t>(frames.size()), 1,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i)
                   concurrent[static_cast<std::size_t>(i)] =
                       model.enhance(frames[static_cast<std::size_t>(i)]);
               });
  set_default_pool_threads(saved_threads);

  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Plane* a[3] = {&serial[i].r, &serial[i].g, &serial[i].b};
    const Plane* b[3] = {&concurrent[i].r, &concurrent[i].g, &concurrent[i].b};
    for (int c = 0; c < 3; ++c) {
      ASSERT_EQ(a[c]->width(), b[c]->width());
      for (int y = 0; y < a[c]->height(); ++y)
        for (int x = 0; x < a[c]->width(); ++x)
          EXPECT_EQ(a[c]->at(x, y), b[c]->at(x, y))
              << "frame " << i << " plane " << c << " @(" << x << "," << y << ")";
    }
  }
}

TEST(Trainer, TrainRestoresCallerMode) {
  Rng rng(95);
  // Failure path: a bad sample throws and the caller's eval mode survives.
  Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 2}, rng);
  model.set_training(false);
  TrainSample bad;
  bad.lo = FrameRGB(16, 16);
  bad.hi = FrameRGB(16, 16);  // wrong for scale 2
  EXPECT_THROW(train_sr_model(model, {bad}, TrainOptions{}, rng),
               std::invalid_argument);
  EXPECT_FALSE(model.training());

  // Success path: training runs in train mode, then eval mode is restored.
  TrainSample good = degraded_pair(textured_frame(32, 32, 96));
  Edsr scale1({.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng);
  scale1.set_training(false);
  TrainOptions opts;
  opts.iterations = 2;
  opts.patch_size = 16;
  opts.batch_size = 1;
  train_sr_model(scale1, {good}, opts, rng);
  EXPECT_FALSE(scale1.training());
}

TEST(Trainer, EvaluateSsimInUnitRange) {
  Rng rng(46);
  Edsr model({.n_filters = 4, .n_resblocks = 1}, rng);
  const TrainSample pair = degraded_pair(textured_frame(32, 32, 47));
  const double s = evaluate_ssim(model, {pair});
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(Trainer, RejectsMismatchedPairs) {
  Rng rng(14);
  Edsr model({.n_filters = 4, .n_resblocks = 1, .scale = 2}, rng);
  TrainSample bad;
  bad.lo = FrameRGB(16, 16);
  bad.hi = FrameRGB(16, 16);  // should be 32x32 for scale 2
  EXPECT_THROW(train_sr_model(model, {bad}, TrainOptions{}, rng),
               std::invalid_argument);
  EXPECT_THROW(train_sr_model(model, {}, TrainOptions{}, rng), std::invalid_argument);
}

TEST(ModelZoo, NamedConfigsMatchPaper) {
  EXPECT_EQ(dcsr1_config().n_resblocks, 4);
  EXPECT_EQ(dcsr2_config().n_resblocks, 12);
  EXPECT_EQ(dcsr3_config().n_resblocks, 16);
  EXPECT_EQ(dcsr1_config().n_filters, 16);
  EXPECT_EQ(big_model_config().n_filters, 64);
}

TEST(ModelZoo, Table1AxesMatchPaper) {
  EXPECT_EQ(table1_filter_axis(), (std::vector<int>{4, 8, 16, 32, 64}));
  EXPECT_EQ(table1_resblock_axis(), (std::vector<int>{4, 8, 12, 16, 20}));
}

TEST(ModelZoo, SizeGrowsMonotonicallyAlongBothAxes) {
  // The structural property of Table 1: size increases along rows (filters)
  // and columns (ResBlocks).
  for (const int f : table1_filter_axis()) {
    double prev = 0.0;
    for (const int rb : table1_resblock_axis()) {
      const double mb = model_size_mb({.n_filters = f, .n_resblocks = rb});
      EXPECT_GT(mb, prev);
      prev = mb;
    }
  }
  for (const int rb : table1_resblock_axis()) {
    double prev = 0.0;
    for (const int f : table1_filter_axis()) {
      const double mb = model_size_mb({.n_filters = f, .n_resblocks = rb});
      EXPECT_GT(mb, prev);
      prev = mb;
    }
  }
}

TEST(ModelZoo, MicroModelsAreMuchSmallerThanBig) {
  const double big = model_size_mb(big_model_config());
  const double micro = model_size_mb(dcsr1_config());
  EXPECT_GT(big / micro, 10.0);
}

TEST(MinModel, BoundMatchesByteRatio) {
  const EdsrConfig big = big_model_config();
  const EdsrConfig micro = dcsr1_config();
  const int bound = max_micro_models(big, micro);
  EXPECT_EQ(bound, static_cast<int>(edsr_model_bytes(big) / edsr_model_bytes(micro)));
  EXPECT_GE(max_micro_models(micro, big), 1);  // never below 1
}

TEST(MinModel, SearchFindsSmallConfigOnEasyContent) {
  // On an easy enhancement task, a tiny config should already match the big
  // model within a generous tolerance, so the search must stop early.
  Rng rng(15);
  const TrainSample pair = degraded_pair(textured_frame(32, 32, 16));
  TrainOptions opts;
  opts.iterations = 20;
  opts.patch_size = 16;
  opts.batch_size = 2;
  const EdsrConfig big{.n_filters = 16, .n_resblocks = 8};
  const MinModelResult res = find_minimum_working_model(
      {pair}, big, /*big_psnr_db=*/20.0, /*tolerance_db=*/3.0, opts, rng);
  EXPECT_LT(edsr_model_bytes(res.config), edsr_model_bytes(big));
  ASSERT_FALSE(res.probes.empty());
  // Probes are visited in ascending size order.
  for (std::size_t i = 1; i < res.probes.size(); ++i)
    EXPECT_GE(res.probes[i].size_mb, res.probes[i - 1].size_mb);
}

}  // namespace
}  // namespace dcsr::sr
