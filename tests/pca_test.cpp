#include <gtest/gtest.h>

#include <cmath>

#include "cluster/pca.hpp"

namespace dcsr::cluster {
namespace {

// Anisotropic Gaussian: dominant axis along (3,4)/5, minor axis orthogonal.
Dataset anisotropic(Rng& rng, int n, double major = 5.0, double minor = 0.5) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    const double a = rng.normal(0.0, major);
    const double b = rng.normal(0.0, minor);
    data.push_back({static_cast<float>(0.6 * a - 0.8 * b + 10.0),
                    static_cast<float>(0.8 * a + 0.6 * b - 3.0)});
  }
  return data;
}

TEST(Pca, RecoversDominantAxis) {
  Rng rng(1);
  const Dataset data = anisotropic(rng, 500);
  const Pca pca = fit_pca(data, 1);
  const auto& v = pca.components[0];
  // Component matches (0.6, 0.8) up to sign.
  const double align = std::abs(0.6 * v[0] + 0.8 * v[1]);
  EXPECT_GT(align, 0.99);
  // Eigenvalue ~ major^2 = 25.
  EXPECT_NEAR(pca.eigenvalues[0], 25.0, 4.0);
}

TEST(Pca, ComponentsAreOrthonormal) {
  Rng rng(2);
  Dataset data;
  for (int i = 0; i < 200; ++i)
    data.push_back({static_cast<float>(rng.normal(0, 3)),
                    static_cast<float>(rng.normal(0, 2)),
                    static_cast<float>(rng.normal(0, 1)),
                    static_cast<float>(rng.normal(0, 0.5))});
  const Pca pca = fit_pca(data, 3);
  for (int i = 0; i < 3; ++i) {
    double norm = 0.0;
    for (const float x : pca.components[static_cast<std::size_t>(i)]) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-4);
    for (int j = i + 1; j < 3; ++j) {
      double d = 0.0;
      for (std::size_t k = 0; k < 4; ++k)
        d += pca.components[static_cast<std::size_t>(i)][k] *
             pca.components[static_cast<std::size_t>(j)][k];
      EXPECT_NEAR(d, 0.0, 1e-3);
    }
  }
  // Eigenvalues descend.
  EXPECT_GE(pca.eigenvalues[0], pca.eigenvalues[1]);
  EXPECT_GE(pca.eigenvalues[1], pca.eigenvalues[2]);
}

TEST(Pca, FullRankTransformIsLossless) {
  Rng rng(3);
  const Dataset data = anisotropic(rng, 100);
  const Pca pca = fit_pca(data, 2);
  const Dataset back = pca_inverse(pca, pca_transform(pca, data));
  for (std::size_t i = 0; i < data.size(); ++i)
    for (std::size_t d = 0; d < 2; ++d)
      EXPECT_NEAR(back[i][d], data[i][d], 1e-2f);
}

TEST(Pca, TruncationKeepsMostVariance) {
  Rng rng(4);
  const Dataset data = anisotropic(rng, 300, 5.0, 0.3);
  const Pca pca = fit_pca(data, 1);
  const Dataset back = pca_inverse(pca, pca_transform(pca, data));
  double err = 0.0, total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i)
    for (std::size_t d = 0; d < 2; ++d) {
      const double e = back[i][d] - data[i][d];
      const double c = data[i][d] - pca.mean[d];
      err += e * e;
      total += c * c;
    }
  EXPECT_LT(err / total, 0.02);  // minor axis carries <2% of the variance
}

TEST(Pca, TransformOutputDimensionIsK) {
  Rng rng(5);
  const Dataset data = anisotropic(rng, 50);
  const Pca pca = fit_pca(data, 1);
  const Dataset z = pca_transform(pca, data);
  ASSERT_EQ(z.size(), data.size());
  EXPECT_EQ(z[0].size(), 1u);
}

TEST(Pca, ValidatesArguments) {
  EXPECT_THROW(fit_pca({{1.0f, 2.0f}}, 1), std::invalid_argument);
  Rng rng(6);
  const Dataset data = anisotropic(rng, 10);
  EXPECT_THROW(fit_pca(data, 0), std::invalid_argument);
  EXPECT_THROW(fit_pca(data, 3), std::invalid_argument);
}

}  // namespace
}  // namespace dcsr::cluster
