#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "nn/resblock.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/shape_ops.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"
#include "util/thread_pool.hpp"

namespace dcsr::nn {
namespace {

// Scalar objective used for gradient checks: L = sum(w .* f(x)) with fixed
// random weights w, so dL/d(out) = w.
double objective(const Tensor& out, const Tensor& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) s += out[i] * w[i];
  return s;
}

// Finite-difference check of input gradients AND parameter gradients for an
// arbitrary module.
void grad_check(Module& m, const Tensor& x0, double tol = 2e-2) {
  Rng rng(99);
  Tensor x = x0;
  Tensor out = m.forward(x);
  const Tensor w = Tensor::randn(out.shape(), rng);

  m.zero_grad();
  Tensor gin = m.backward(w);

  constexpr float kEps = 1e-3f;
  // Input gradient: probe a handful of positions.
  for (std::size_t probe = 0; probe < std::min<std::size_t>(x.size(), 12); ++probe) {
    const std::size_t i = (probe * 7919) % x.size();
    Tensor xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    const double fp = objective(m.forward(xp), w);
    const double fm = objective(m.forward(xm), w);
    const double numeric = (fp - fm) / (2.0 * kEps);
    EXPECT_NEAR(gin[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "input grad mismatch at " << i;
  }

  // Parameter gradients: recompute analytic grads at x (forward state was
  // clobbered by the probes above).
  m.zero_grad();
  m.forward(x);
  m.backward(w);
  for (Param* p : m.params()) {
    // Copy analytic grads before probing (probes don't touch grads but the
    // forward cache changes).
    Tensor analytic = p->grad;
    for (std::size_t probe = 0; probe < std::min<std::size_t>(p->value.size(), 8); ++probe) {
      const std::size_t i = (probe * 104729) % p->value.size();
      const float orig = p->value[i];
      p->value[i] = orig + kEps;
      const double fp = objective(m.forward(x), w);
      p->value[i] = orig - kEps;
      const double fm = objective(m.forward(x), w);
      p->value[i] = orig;
      const double numeric = (fp - fm) / (2.0 * kEps);
      EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::abs(numeric)))
          << "param grad mismatch at " << i;
    }
  }
}

TEST(Conv2d, OutputShapeSamePadding) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, rng);
  const Tensor y = conv.forward(Tensor({2, 3, 6, 5}));
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 6, 5}));
}

TEST(Conv2d, OutputShapeStride2) {
  Rng rng(1);
  Conv2d conv(2, 4, 3, rng, /*stride=*/2, /*pad=*/1);
  const Tensor y = conv.forward(Tensor({1, 2, 8, 8}));
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 4, 4, 4}));
}

TEST(Conv2d, BiasShiftsOutput) {
  Rng rng(2);
  Conv2d conv(1, 1, 1, rng);
  conv.weight().value.fill(0.0f);
  conv.bias().value.fill(1.5f);
  const Tensor y = conv.forward(Tensor({1, 1, 2, 2}));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], 1.5f);
}

TEST(Conv2d, GradCheck) {
  Rng rng(3);
  Conv2d conv(2, 3, 3, rng);
  grad_check(conv, Tensor::randn({1, 2, 5, 4}, rng));
}

TEST(Conv2d, BackwardRejectsWrongGradShape) {
  Rng rng(9);
  Conv2d conv(2, 4, 3, rng);
  conv.forward(Tensor({2, 2, 6, 6}));
  EXPECT_THROW(conv.backward(Tensor({2, 2, 6, 6})), std::invalid_argument);
  EXPECT_THROW(conv.backward(Tensor({1, 4, 6, 6})), std::invalid_argument);
  EXPECT_THROW(conv.backward(Tensor({2, 4, 5, 6})), std::invalid_argument);
  EXPECT_THROW(conv.backward(Tensor({2, 4, 6, 6}).reshaped({2, 4, 36})),
               std::invalid_argument);
  conv.backward(Tensor({2, 4, 6, 6}));  // the matching shape still works
}

TEST(Conv2d, GradCheckStrided) {
  Rng rng(4);
  Conv2d conv(2, 2, 3, rng, /*stride=*/2, /*pad=*/1);
  grad_check(conv, Tensor::randn({1, 2, 6, 6}, rng));
}

TEST(Linear, GradCheck) {
  Rng rng(5);
  Linear lin(6, 4, rng);
  grad_check(lin, Tensor::randn({3, 6}, rng));
}

TEST(Activations, ReluForwardAndGrad) {
  ReLU relu;
  Tensor x({1, 4});
  x[0] = -1;
  x[1] = 0;
  x[2] = 2;
  x[3] = -3;
  const Tensor y = relu.forward(x.reshaped({1, 1, 1, 4}));
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Rng rng(6);
  grad_check(relu, Tensor::randn({1, 1, 2, 8}, rng));
}

TEST(Activations, LeakyReluGradCheck) {
  Rng rng(7);
  LeakyReLU lrelu(0.1f);
  grad_check(lrelu, Tensor::randn({1, 1, 3, 5}, rng));
}

TEST(Activations, SigmoidRangeAndGrad) {
  Sigmoid sig;
  Rng rng(8);
  const Tensor y = sig.forward(Tensor::randn({1, 1, 4, 4}, rng, 3.0f));
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y[i], 0.0f);
    EXPECT_LT(y[i], 1.0f);
  }
  grad_check(sig, Tensor::randn({1, 1, 3, 3}, rng));
}

TEST(Activations, TanhGradCheck) {
  Rng rng(9);
  Tanh tanh_m;
  grad_check(tanh_m, Tensor::randn({2, 5}, rng));
}

TEST(PixelShuffle, RearrangesChannelsToSpace) {
  PixelShuffle ps(2);
  Tensor x({1, 4, 1, 1});
  for (int c = 0; c < 4; ++c) x.at(0, c, 0, 0) = static_cast<float>(c);
  const Tensor y = ps.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 0, 0, 1), 1.0f);
  EXPECT_EQ(y.at(0, 0, 1, 0), 2.0f);
  EXPECT_EQ(y.at(0, 0, 1, 1), 3.0f);
}

TEST(PixelShuffle, BackwardIsInverse) {
  Rng rng(10);
  PixelShuffle ps(2);
  const Tensor x = Tensor::randn({1, 8, 3, 3}, rng);
  const Tensor y = ps.forward(x);
  const Tensor back = ps.backward(y);  // permutation => backward(forward(x)) == x
  ASSERT_TRUE(back.same_shape(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(back[i], x[i]);
}

TEST(BilinearUpsample, ConstantStaysConstant) {
  BilinearUpsample up(2);
  const Tensor y = up.forward(Tensor::full({1, 1, 3, 3}, 0.4f));
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 6, 6}));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], 0.4f, 1e-6f);
}

TEST(BilinearUpsample, InterpolatesBetweenSamples) {
  BilinearUpsample up(2);
  Tensor x({1, 1, 1, 2});
  x[0] = 0.0f;
  x[1] = 1.0f;
  const Tensor y = up.forward(x);
  // Centre-aligned x2: outputs sample at src positions -0.25, 0.25, 0.75, 1.25.
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.25f);
  EXPECT_FLOAT_EQ(y[2], 0.75f);
  EXPECT_FLOAT_EQ(y[3], 1.0f);
}

TEST(BilinearUpsample, GradCheck) {
  Rng rng(31);
  BilinearUpsample up(2);
  grad_check(up, Tensor::randn({1, 2, 3, 4}, rng));
}

TEST(BilinearUpsample, BackwardIsAdjoint) {
  // <up(x), y> == <x, up^T(y)> for random tensors.
  Rng rng(32);
  BilinearUpsample up(3);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  const Tensor y = Tensor::randn({1, 1, 12, 12}, rng);
  const Tensor ux = up.forward(x);
  const Tensor uty = up.backward(y);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < ux.size(); ++i) lhs += ux[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * uty[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(UpsampleNearest, GradCheck) {
  Rng rng(11);
  UpsampleNearest up(2);
  grad_check(up, Tensor::randn({1, 2, 3, 3}, rng));
}

TEST(FlattenReshape, RoundTrip) {
  Rng rng(12);
  Flatten flat;
  Reshape4 back(3, 4, 5);
  const Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
  const Tensor y = back.forward(flat.forward(x));
  ASSERT_TRUE(y.same_shape(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(ResBlock, IdentityWhenConvsZero) {
  Rng rng(13);
  ResBlock rb(4, rng);
  for (Param* p : rb.params()) p->value.zero();
  const Tensor x = Tensor::randn({1, 4, 5, 5}, rng);
  const Tensor y = rb.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(ResBlock, GradCheck) {
  Rng rng(14);
  ResBlock rb(2, rng, 0.5f);
  grad_check(rb, Tensor::randn({1, 2, 4, 4}, rng));
}

TEST(Sequential, ChainsAndCollectsParams) {
  Rng rng(15);
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, rng);
  seq.emplace<ReLU>();
  seq.emplace<Conv2d>(2, 1, 3, rng);
  EXPECT_EQ(seq.params().size(), 4u);
  const Tensor y = seq.forward(Tensor({1, 1, 4, 4}));
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 4, 4}));
  grad_check(seq, Tensor::randn({1, 1, 4, 4}, rng));
}

TEST(Loss, MseMatchesDefinitionAndGrad) {
  Tensor pred = Tensor::full({2, 2}, 1.0f);
  Tensor target = Tensor::full({2, 2}, 0.0f);
  const LossResult r = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.value, 1.0);
  for (std::size_t i = 0; i < r.grad.size(); ++i)
    EXPECT_FLOAT_EQ(r.grad[i], 2.0f / 4.0f);
}

TEST(Loss, L1MatchesDefinition) {
  Tensor pred = Tensor::full({4}, -2.0f);
  Tensor target = Tensor::full({4}, 1.0f);
  const LossResult r = l1_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.value, 3.0);
  EXPECT_FLOAT_EQ(r.grad[0], -0.25f);
}

TEST(Loss, KlZeroForStandardNormal) {
  const Tensor mu({2, 3});
  const Tensor logvar({2, 3});  // zeros => unit variance
  const KlResult r = kl_divergence(mu, logvar);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
  for (std::size_t i = 0; i < r.grad_mu.size(); ++i) {
    EXPECT_FLOAT_EQ(r.grad_mu[i], 0.0f);
    EXPECT_FLOAT_EQ(r.grad_logvar[i], 0.0f);
  }
}

TEST(Loss, KlGradientsByFiniteDifference) {
  Rng rng(16);
  Tensor mu = Tensor::randn({2, 4}, rng);
  Tensor logvar = Tensor::randn({2, 4}, rng, 0.5f);
  const KlResult r = kl_divergence(mu, logvar);
  constexpr float kEps = 1e-3f;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    Tensor mp = mu;
    mp[i] += kEps;
    Tensor mm = mu;
    mm[i] -= kEps;
    const double num = (kl_divergence(mp, logvar).value -
                        kl_divergence(mm, logvar).value) /
                       (2.0 * kEps);
    EXPECT_NEAR(r.grad_mu[i], num, 1e-3);
  }
  for (std::size_t i = 0; i < logvar.size(); ++i) {
    Tensor lp = logvar;
    lp[i] += kEps;
    Tensor lm = logvar;
    lm[i] -= kEps;
    const double num = (kl_divergence(mu, lp).value -
                        kl_divergence(mu, lm).value) /
                       (2.0 * kEps);
    EXPECT_NEAR(r.grad_logvar[i], num, 1e-3);
  }
}

TEST(Optim, SgdDescendsQuadratic) {
  // Minimise f(w) = ||w - 3||^2 by hand-feeding gradients.
  Param w(Tensor::full({4}, 0.0f));
  Sgd opt({&w}, 0.1);
  for (int it = 0; it < 200; ++it) {
    for (std::size_t i = 0; i < w.value.size(); ++i)
      w.grad[i] = 2.0f * (w.value[i] - 3.0f);
    opt.step();
  }
  for (std::size_t i = 0; i < w.value.size(); ++i)
    EXPECT_NEAR(w.value[i], 3.0f, 1e-3f);
}

TEST(Optim, AdamDescendsQuadratic) {
  Param w(Tensor::full({4}, 10.0f));
  Adam opt({&w}, 0.5);
  for (int it = 0; it < 300; ++it) {
    for (std::size_t i = 0; i < w.value.size(); ++i)
      w.grad[i] = 2.0f * (w.value[i] + 1.0f);
    opt.step();
  }
  for (std::size_t i = 0; i < w.value.size(); ++i)
    EXPECT_NEAR(w.value[i], -1.0f, 1e-2f);
}

TEST(Optim, WeightDecayShrinksWeightsWithZeroGrads) {
  Param w(Tensor::full({4}, 2.0f));
  Adam opt({&w}, 0.1);
  opt.set_weight_decay(0.1);
  for (int it = 0; it < 50; ++it) {
    w.grad.zero();
    opt.step();
  }
  for (std::size_t i = 0; i < w.value.size(); ++i) {
    EXPECT_LT(w.value[i], 2.0f);
    EXPECT_GT(w.value[i], 0.0f);
  }
}

TEST(Optim, GradClipBoundsTheUpdateDirectionally) {
  // With a gigantic gradient on one coordinate, clipping preserves direction
  // but reports the raw norm.
  Param w(Tensor::full({2}, 0.0f));
  Adam opt({&w}, 0.1);
  opt.set_grad_clip(1.0);
  w.grad[0] = 1e6f;
  w.grad[1] = 0.0f;
  opt.step();
  EXPECT_NEAR(opt.last_grad_norm(), 1e6, 1.0);
  EXPECT_LT(w.value[0], 0.0f);      // moved against the gradient
  EXPECT_FLOAT_EQ(w.value[1], 0.0f);  // untouched coordinate
}

TEST(Optim, ClippedAdamStillConverges) {
  Param w(Tensor::full({4}, 10.0f));
  Adam opt({&w}, 0.5);
  opt.set_grad_clip(0.5);
  for (int it = 0; it < 400; ++it) {
    for (std::size_t i = 0; i < w.value.size(); ++i)
      w.grad[i] = 2.0f * (w.value[i] + 1.0f);
    opt.step();
  }
  for (std::size_t i = 0; i < w.value.size(); ++i)
    EXPECT_NEAR(w.value[i], -1.0f, 5e-2f);
}

TEST(Optim, TrainsTinyConvToIdentity) {
  // End-to-end sanity: a 1-channel 3x3 conv can learn the identity map.
  Rng rng(17);
  Conv2d conv(1, 1, 3, rng);
  Adam opt(conv.params(), 0.05);
  const Tensor x = Tensor::randn({4, 1, 6, 6}, rng);
  double final_loss = 1e9;
  for (int it = 0; it < 200; ++it) {
    conv.zero_grad();
    const Tensor y = conv.forward(x);
    const LossResult r = mse_loss(y, x);
    conv.backward(r.grad);
    opt.step();
    final_loss = r.value;
  }
  EXPECT_LT(final_loss, 1e-3);
}

TEST(Serialize, SaveLoadRoundTrip) {
  Rng rng(18);
  Sequential a, b;
  a.emplace<Conv2d>(2, 3, 3, rng);
  a.emplace<Linear>(4, 2, rng);  // not used in forward; params only
  b.emplace<Conv2d>(2, 3, 3, rng);
  b.emplace<Linear>(4, 2, rng);

  ByteWriter w;
  save_params(a, w);
  EXPECT_EQ(w.size(), serialized_size(a));

  ByteReader r(w.bytes());
  load_params(b, r);
  const auto pa = a.params();
  const auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.size(); ++j)
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(Serialize, LoadRejectsWrongTopology) {
  Rng rng(19);
  Sequential a, b;
  a.emplace<Conv2d>(2, 3, 3, rng);
  b.emplace<Conv2d>(2, 4, 3, rng);  // different width
  ByteWriter w;
  save_params(a, w);
  ByteReader r(w.bytes());
  EXPECT_THROW(load_params(b, r), std::invalid_argument);
}

TEST(Serialize, CopyParamsMakesModelsIdentical) {
  Rng rng(20);
  Conv2d a(1, 2, 3, rng), b(1, 2, 3, rng);
  copy_params(a, b);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Module, ParamCountMatchesArchitecture) {
  Rng rng(21);
  Conv2d conv(3, 16, 3, rng);
  // 16 * (3*3*3) weights + 16 biases.
  EXPECT_EQ(conv.param_count(), 16u * 27u + 16u);
}

// The stateless contract: infer() must compute the exact same floats as
// forward() — not merely close, bit-identical — for every layer type, since
// the concurrent client paths rely on swapping one for the other.
void expect_infer_matches_forward(Module& m, const Tensor& x) {
  const Tensor from_forward = m.forward(x);
  const Tensor from_infer = m.infer(x);
  ASSERT_EQ(from_forward.shape(), from_infer.shape());
  for (std::size_t i = 0; i < from_forward.size(); ++i)
    EXPECT_EQ(from_forward[i], from_infer[i]) << "element " << i;
}

TEST(Infer, MatchesForwardBitwisePerLayer) {
  Rng rng(31);
  const Tensor x = Tensor::randn({2, 4, 6, 6}, rng);

  Conv2d conv(4, 5, 3, rng);
  expect_infer_matches_forward(conv, x);

  Conv2d strided(4, 5, 3, rng, /*stride=*/2);
  expect_infer_matches_forward(strided, x);

  ReLU relu;
  expect_infer_matches_forward(relu, x);
  LeakyReLU leaky(0.1f);
  expect_infer_matches_forward(leaky, x);
  Sigmoid sigmoid;
  expect_infer_matches_forward(sigmoid, x);
  Tanh tanh_layer;
  expect_infer_matches_forward(tanh_layer, x);

  Linear linear(24, 7, rng);
  const Tensor flat = Tensor::randn({3, 24}, rng);
  expect_infer_matches_forward(linear, flat);

  PixelShuffle shuffle(2);
  expect_infer_matches_forward(shuffle, x);
  BilinearUpsample bilinear(2);
  expect_infer_matches_forward(bilinear, x);
  UpsampleNearest nearest(2);
  expect_infer_matches_forward(nearest, x);

  ResBlock res(4, rng, 0.5f);
  expect_infer_matches_forward(res, x);

  Sequential seq;
  seq.emplace<Conv2d>(4, 4, 3, rng);
  seq.emplace<ReLU>();
  seq.emplace<Conv2d>(4, 4, 3, rng);
  expect_infer_matches_forward(seq, x);
}

// A batch through infer_into must carry, at batch index i, exactly the
// floats a batch-of-one run of item i produces — the batch dimension is a
// layout decision, never a numeric one. The batched SR serving path
// (Edsr::enhance_batch_into, fleet coalescing) relies on this bitwise.
void expect_batch_matches_items(const Module& m, const Tensor& x) {
  Workspace& ws = Workspace::local();
  Tensor batch_out(m.out_shape(x.shape()));
  m.infer_into(x, batch_out, ws);

  const int N = x.dim(0);
  ASSERT_GE(N, 2) << "batch test needs a real batch";
  Shape item_shape = x.shape();
  item_shape[0] = 1;
  const std::size_t in_stride = x.size() / static_cast<std::size_t>(N);
  const std::size_t out_stride =
      batch_out.size() / static_cast<std::size_t>(N);
  Tensor item(item_shape);
  Tensor item_out(m.out_shape(item_shape));
  for (int i = 0; i < N; ++i) {
    std::memcpy(item.data(), x.data() + static_cast<std::size_t>(i) * in_stride,
                in_stride * sizeof(float));
    m.infer_into(item, item_out, ws);
    EXPECT_EQ(std::memcmp(item_out.data(),
                          batch_out.data() +
                              static_cast<std::size_t>(i) * out_stride,
                          out_stride * sizeof(float)),
              0)
        << m.name() << " batch item " << i << " diverges from a solo run";
  }
}

TEST(Infer, BatchMatchesPerItemBitwise) {
  Rng rng(47);
  const Tensor x = Tensor::randn({3, 4, 6, 6}, rng);

  Conv2d conv(4, 5, 3, rng);
  expect_batch_matches_items(conv, x);
  Conv2d strided(4, 5, 3, rng, /*stride=*/2);
  expect_batch_matches_items(strided, x);

  ReLU relu;
  expect_batch_matches_items(relu, x);
  LeakyReLU leaky(0.1f);
  expect_batch_matches_items(leaky, x);
  Sigmoid sigmoid;
  expect_batch_matches_items(sigmoid, x);
  Tanh tanh_layer;
  expect_batch_matches_items(tanh_layer, x);

  Linear linear(24, 7, rng);
  expect_batch_matches_items(linear, Tensor::randn({3, 24}, rng));

  PixelShuffle shuffle(2);
  expect_batch_matches_items(shuffle, x);
  BilinearUpsample bilinear(2);
  expect_batch_matches_items(bilinear, x);
  UpsampleNearest nearest(2);
  expect_batch_matches_items(nearest, x);

  Flatten flatten;
  expect_batch_matches_items(flatten, x);
  Reshape4 reshape(4, 6, 6);
  expect_batch_matches_items(reshape, Tensor::randn({3, 4 * 6 * 6}, rng));

  ResBlock res(4, rng, 0.5f);
  expect_batch_matches_items(res, x);

  Sequential seq;
  seq.emplace<Conv2d>(4, 4, 3, rng);
  seq.emplace<ReLU>();
  seq.emplace<Conv2d>(4, 4, 3, rng);
  expect_batch_matches_items(seq, x);
}

TEST(Infer, IsConstAndLeavesNoBackwardState) {
  Rng rng(32);
  const Conv2d conv(3, 4, 3, rng);  // const: only infer() is callable
  const Tensor x = Tensor::randn({1, 3, 5, 5}, rng);
  const Tensor y = conv.infer(x);
  EXPECT_EQ(y.dim(1), 4);

  // infer() caches nothing, so a backward pass has nothing to consume.
  Conv2d mutable_conv(3, 4, 3, rng);
  mutable_conv.infer(x);
  EXPECT_THROW(mutable_conv.backward(Tensor({1, 4, 5, 5})), std::logic_error);
}

TEST(Infer, ConcurrentCallsOnSharedModuleMatchSerial) {
  Rng rng(33);
  Sequential seq;
  seq.emplace<Conv2d>(3, 6, 3, rng);
  seq.emplace<ReLU>();
  seq.emplace<Conv2d>(6, 3, 3, rng);

  std::vector<Tensor> inputs;
  for (int i = 0; i < 6; ++i)
    inputs.push_back(Tensor::randn({1, 3, 8, 8}, rng));

  std::vector<Tensor> serial;
  for (const Tensor& in : inputs) serial.push_back(seq.infer(in));

  const int saved_threads = default_thread_count();
  set_default_pool_threads(4);
  std::vector<Tensor> concurrent(inputs.size());
  parallel_for(0, static_cast<std::int64_t>(inputs.size()), 1,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i)
                   concurrent[static_cast<std::size_t>(i)] =
                       seq.infer(inputs[static_cast<std::size_t>(i)]);
               });
  set_default_pool_threads(saved_threads);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_EQ(serial[i].shape(), concurrent[i].shape());
    for (std::size_t j = 0; j < serial[i].size(); ++j)
      EXPECT_EQ(serial[i][j], concurrent[i][j]) << "frame " << i;
  }
}

TEST(Infer, MatchesForwardBitwiseAcrossThreadCounts) {
  // The workspace-backed infer path under different DCSR_THREADS settings
  // must reproduce forward()'s floats exactly — same pin as the per-layer
  // test, but exercising the pool-width axis the claim checker cares about.
  const int saved_threads = default_thread_count();
  Rng rng(35);
  Sequential seq;
  seq.emplace<Conv2d>(3, 6, 3, rng);
  seq.emplace<ReLU>();
  seq.emplace<Conv2d>(6, 3, 3, rng);
  const Tensor x = Tensor::randn({1, 3, 9, 7}, rng);
  const Tensor ref = seq.forward(x);
  for (const int threads : {1, 4}) {
    set_default_pool_threads(threads);
    const Tensor y = seq.infer(x);
    ASSERT_EQ(ref.shape(), y.shape());
    for (std::size_t j = 0; j < ref.size(); ++j)
      ASSERT_EQ(ref[j], y[j]) << "threads=" << threads << " element " << j;
  }
  set_default_pool_threads(saved_threads);
}

TEST(Conv2d, RejectsDegenerateOutputGeometry) {
  Rng rng(36);
  // 5x5 kernel, no padding, on a 2x2 image: the output extent would be -2.
  Conv2d conv(1, 1, 5, rng, /*stride=*/1, /*pad=*/0);
  const Tensor tiny = Tensor::randn({1, 1, 2, 2}, rng);
  try {
    conv.forward(tiny);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kernel=5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pad=0"), std::string::npos) << msg;
  }
  EXPECT_THROW(conv.infer(tiny), std::invalid_argument);
  EXPECT_THROW(conv.out_shape(tiny.shape()), std::invalid_argument);
}

TEST(TrainingModeGuard, RestoresModeWhenForwardThrows) {
  Rng rng(34);
  Conv2d conv(3, 4, 3, rng);
  conv.set_training(false);

  const Tensor bad_shape({1, 7, 5, 5});  // wrong channel count
  EXPECT_THROW(
      {
        const TrainingModeGuard guard(conv, /*training=*/true);
        EXPECT_TRUE(conv.training());
        conv.forward(bad_shape);
      },
      std::invalid_argument);
  // The guard's destructor ran during unwinding: eval mode is back.
  EXPECT_FALSE(conv.training());

  // And the trivial path: no throw, same restoration.
  conv.set_training(true);
  {
    const TrainingModeGuard guard(conv, /*training=*/false);
    EXPECT_FALSE(conv.training());
  }
  EXPECT_TRUE(conv.training());
}

// ---------------------------------------------------------------------------
// Checked-build negative tests for the finiteness scan: FiniteCheckGuard
// must fire, naming the layer, the moment a non-finite value crosses a layer
// boundary. Compiled out of release builds (tools/run_checks.sh's `checked`
// leg runs them with every check on).
// ---------------------------------------------------------------------------

#if DCSR_FINITE_CHECK
TEST(CheckedFinite, NanWeightTripsGuardNamingLayer) {
  Rng rng(11);
  Linear lin(4, 3, rng);
  lin.params()[0]->value[0] = std::numeric_limits<float>::quiet_NaN();
  const Tensor x = Tensor::randn({2, 4}, rng);
  try {
    (void)lin.infer(x);
    FAIL() << "expected NonFiniteError";
  } catch (const NonFiniteError& e) {
    EXPECT_NE(std::string(e.what()).find("Linear"), std::string::npos)
        << e.what();
  }
}

TEST(CheckedFinite, InfInputTripsGuardInsideSequential) {
  Rng rng(12);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 4, rng));
  net.add(std::make_unique<ReLU>());
  Tensor x = Tensor::randn({1, 4}, rng);
  x[2] = std::numeric_limits<float>::infinity();
  EXPECT_THROW((void)net.infer(x), NonFiniteError);
}

TEST(CheckedFinite, FiniteInferencePassesUnchanged) {
  // The guard is a pure observer: a healthy model must be untouched by it.
  Rng rng(13);
  Linear lin(4, 3, rng);
  const Tensor x = Tensor::randn({2, 4}, rng);
  EXPECT_NO_THROW((void)lin.infer(x));
}

#if DCSR_POISON_WORKSPACE
TEST(CheckedFinite, StaleWorkspaceReadTripsGuard) {
  // The two checks compose: a kernel that forgets to write part of its
  // workspace checkout reads signalling NaN (poison), and the finiteness
  // scan converts that into a typed error naming the layer instead of
  // letting garbage propagate downstream.
  Rng rng(14);
  const Linear lin(4, 3, rng);
  Workspace ws;
  WorkspaceTensor stale = ws.acquire({2, 3});  // never written: all poison
  EXPECT_THROW(FiniteCheckGuard::verify(lin, *stale), NonFiniteError);
}
#endif  // DCSR_POISON_WORKSPACE
#endif  // DCSR_FINITE_CHECK

}  // namespace
}  // namespace dcsr::nn
